package nodesentry

import (
	"net/http"

	"nodesentry/internal/obs"
)

// Observability types (internal/obs): a stdlib-only metrics registry with
// Prometheus text exposition — the collector protocol the paper's §5.1
// deployment assumes — plus span-style stage tracing for the offline
// pipeline. Both are nil-safe: a nil registry or tracer disables all
// instrumentation without changing any detection output.
type (
	// MetricsRegistry is the concurrent counter/gauge/histogram registry;
	// pass it via MonitorConfig.Metrics and scrape it with ObsHandler.
	MetricsRegistry = obs.Registry
	// StageTracer records per-stage wall time, allocations and item
	// counts; pass it via TrainInput.Trace.
	StageTracer = obs.Tracer
	// StageRecord is one completed stage span.
	StageRecord = obs.StageRecord
)

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewStageTracer builds a tracer mirroring stage spans into reg (nil keeps
// records only).
func NewStageTracer(reg *MetricsRegistry) *StageTracer { return obs.NewTracer(reg) }

// ObsHandler builds the self-scrape endpoint: /metrics (Prometheus text
// format), /healthz (the optional health check), and /debug/pprof/*.
// Extra mounts (e.g. FleetView.Mounts()) join the same mux.
func ObsHandler(reg *MetricsRegistry, health func() error, mounts ...ObsMount) http.Handler {
	return obs.Handler(reg, health, mounts...)
}

// ServeObs listens on addr and serves ObsHandler in the background,
// returning the server (close it to stop) and the resolved address —
// ":0" picks a free port.
func ServeObs(addr string, reg *MetricsRegistry, health func() error, mounts ...ObsMount) (*http.Server, string, error) {
	return obs.Serve(addr, reg, health, mounts...)
}
