package nodesentry

import "nodesentry/internal/summary"

// Alert summarization (internal/summary): the semantic tier between the
// raw alert stream and the operator. A correlated infrastructure fault
// trips the paper's per-node detectors simultaneously; the summarizer
// partitions alert tags into constant vs varying dimensions, clusters by
// time proximity and metric family, and folds N webhooks into one live
// Incident with an open/update/resolve lifecycle. Embedders feed it with
// Summarizer.Observe(SummaryEventFromAlert(a)) and drive the window
// cadence with Summarizer.Run or explicit Flush calls; sentryd wires it
// behind the -summary flag.
type (
	// Summarizer folds a stream of alert-derived events into incidents.
	Summarizer = summary.Summarizer
	// SummaryConfig parameterizes NewSummarizer; the zero value gets
	// sensible defaults.
	SummaryConfig = summary.Config
	// SummaryEvent is one normalized alert: a metric family plus tags.
	SummaryEvent = summary.Event
	// Incident is one folded alert group with its tag partition.
	Incident = summary.Incident
	// IncidentTransition labels an incident lifecycle edge.
	IncidentTransition = summary.Transition
	// IncidentSnapshot is the open+resolved view served on
	// /fleet/incidents.
	IncidentSnapshot = summary.Snapshot
	// SummaryStats is the tier's exact fold accounting
	// (observed == folded + raw).
	SummaryStats = summary.Stats
	// TagPartition splits a group's tags into constant vs varying keys.
	TagPartition = summary.TagPartition
)

// NewSummarizer returns a summarization tier for cfg. Close releases it
// and resolves every open incident in one final flush.
func NewSummarizer(cfg SummaryConfig) *Summarizer { return summary.New(cfg) }

// SummaryEventFromAlert normalizes a monitor alert into the
// summarizer's event shape (family, node/job/level tags, severity).
func SummaryEventFromAlert(a Alert) SummaryEvent { return summary.FromAlert(a) }

// PartitionSummaryTags computes the constant/varying tag split and the
// spanning dimension for a group of events.
func PartitionSummaryTags(events []SummaryEvent) TagPartition {
	return summary.PartitionTags(events)
}
