// Command sentrylint runs the repo's stdlib-only static analyzer over
// module packages and reports findings as `file:line: [check] message`.
//
// Usage:
//
//	sentrylint [-checks floatcmp,errdrop] [-cache .cache/sentrylint.json] [-list] [packages]
//
// Packages follow go-tool conventions: `./...` walks the module,
// `./internal/mat` names one package. With no arguments, `./...` is
// assumed. The exit status is 1 when findings survive suppression, 2 on
// load or usage errors, and 3 when -budget is set and the run overran it.
//
// -unused-ignores (default on) additionally reports //lint:ignore
// comments that no longer suppress anything; -serial disables the
// parallel loader (findings are byte-identical either way); -budget
// fails the run when wall time exceeds the given duration, giving CI a
// regression tripwire for analyzer performance.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"strings"
	"time"

	"nodesentry/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sentrylint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list available checks and exit")
	checksFlag := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	cachePath := fs.String("cache", "", "findings cache file: unchanged packages (and unchanged dependency closures) reuse recorded findings instead of re-type-checking")
	unusedIgnores := fs.Bool("unused-ignores", true, "report lint:ignore comments that no longer suppress any finding")
	serial := fs.Bool("serial", false, "disable the parallel loader (one package at a time, identical findings)")
	budget := fs.Duration("budget", 0, "fail with exit status 3 if the run takes longer than this (0 disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	start := time.Now()
	// One-shot process: trading heap headroom for fewer GC cycles is
	// pure wall-time win on the cold path.
	debug.SetGCPercent(400)
	if *list {
		for _, c := range analysis.Checks() {
			fmt.Printf("%-12s %s\n", c.Name, c.Doc)
		}
		return 0
	}
	checks, err := selectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentrylint:", err)
		return 2
	}
	if !*unusedIgnores {
		kept := checks[:0]
		for _, c := range checks {
			if c.Name != "unusedignore" {
				kept = append(kept, c)
			}
		}
		checks = kept
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentrylint:", err)
		return 2
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentrylint:", err)
		return 2
	}
	loader.Serial = *serial
	dirs, err := loader.Expand(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sentrylint:", err)
		return 2
	}
	var findings []analysis.Finding
	if *cachePath != "" {
		var stats analysis.CacheStats
		findings, stats, err = analysis.RunCached(loader, dirs, checks, *cachePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentrylint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "sentrylint: cache: %d package(s) reused, %d analyzed\n", stats.Hits, stats.Misses)
	} else {
		pkgs, err := loader.Load(dirs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sentrylint:", err)
			return 2
		}
		findings = analysis.Run(pkgs, checks)
	}
	for _, f := range findings {
		fmt.Println(shorten(cwd, f))
	}
	elapsed := time.Since(start)
	if *budget > 0 {
		fmt.Fprintf(os.Stderr, "sentrylint: wall time %s (budget %s)\n",
			elapsed.Round(time.Millisecond), *budget)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sentrylint: %d finding(s) in %d package(s)\n", len(findings), len(dirs))
		return 1
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "sentrylint: run exceeded the %s budget\n", *budget)
		return 3
	}
	return 0
}

// selectChecks resolves the -checks flag against the registry.
func selectChecks(spec string) ([]analysis.Check, error) {
	all := analysis.Checks()
	if spec == "" {
		return all, nil
	}
	byName := map[string]analysis.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []analysis.Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(analysis.CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// shorten renders a finding with a path relative to the working
// directory when possible.
func shorten(cwd string, f analysis.Finding) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}
