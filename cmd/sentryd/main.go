// Command sentryd runs the streaming ingestion gateway: a trained
// detector behind runtime.Monitor, fed over the network instead of by the
// in-process replay driver. It is the deployment loop of the paper's §5.1
// (Fig. 7) as one daemon: telemetry arrives by push (POST /push with
// Prometheus text exposition or JSONL batches) or by pull (a scrape
// poller against a target list), a shard router fans the stream out to
// the monitor under an explicit backpressure policy, and prioritized
// alerts leave through a retrying webhook sink. The wiring itself lives
// in internal/daemon, where the chaos soak tests drive the identical
// loop under scripted infrastructure faults.
//
// Usage:
//
//	sentryd -data ./data/d1 -train -listen :9100 -obs-listen :9090
//	sentryd -data ./data/d1 -model ./model.bin -scrape-targets http://host:9101/metrics
//	curl --data-binary 'cpu{node="cn-1"} 0.5 60000' http://localhost:9100/push
//
// With -lifecycle the daemon additionally runs the model lifecycle loop
// (internal/lifecycle): drift detection on the live stream, background
// retraining off a rolling buffer, shadow auditing, and zero-drop hot
// swap of promoted candidates, all recorded in a versioned on-disk
// registry under -registry-dir. On restart the active registry version is
// loaded instead of -model/-train:
//
//	sentryd -data ./data/d1 -train -lifecycle -registry-dir ./registry
//
// SIGINT/SIGTERM triggers a graceful drain: the intake server stops
// accepting, the scraper finishes its sweep, the shard queues empty into
// the monitor, any in-flight retraining is waited out, and the alert
// consumer runs to completion.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nodesentry"
	"nodesentry/internal/coord"
	"nodesentry/internal/daemon"
	"nodesentry/internal/fleetview"
	"nodesentry/internal/ingest"
	"nodesentry/internal/lifecycle"
	"nodesentry/internal/obs"
	"nodesentry/internal/summary"
	"nodesentry/internal/telemetry"
)

func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	data := flag.String("data", "", "dataset directory (required; supplies node layouts and, with -train, the training split)")
	train := flag.Bool("train", false, "train a detector on the dataset's training split at startup")
	modelPath := flag.String("model", "", "model file to load (or to save after -train)")
	listen := flag.String("listen", ":9100", "push intake address (POST /push, GET /healthz)")
	obsListen := flag.String("obs-listen", "", "serve /metrics, /healthz and /debug/pprof on this address (empty disables)")
	shards := flag.Int("shards", 4, "shard router worker queues")
	batchWindows := flag.Int("batch-windows", 0, "batch up to this many scoring windows across nodes into one stacked model invocation (0 or 1 = sequential; scores are byte-identical either way)")
	queue := flag.Int("queue", 256, "per-shard queue capacity")
	policy := flag.String("policy", "block", "backpressure policy: block | drop-oldest")
	scrapeTargets := flag.String("scrape-targets", "", "comma-separated /metrics URLs to poll (empty disables pull mode)")
	scrapeInterval := flag.Duration("scrape-interval", 15*time.Second, "scrape sweep interval")
	webhook := flag.String("webhook", "", "POST alerts to this URL (empty logs alerts only)")
	webhookRetries := flag.Int("webhook-retries", 2, "extra webhook delivery attempts per alert")
	summaryOn := flag.Bool("summary", false, "run the alert summarization tier: correlated alerts fold into incidents and the webhook receives one payload per incident open/resolve instead of one per alert")
	summaryWindow := flag.Duration("summary-window", 5*time.Second, "summarization clustering window (flush cadence; coordinator role flushes on -sweep-interval instead)")
	summaryResolve := flag.Duration("summary-resolve", time.Minute, "quiet time after which an open incident resolves")
	summaryMin := flag.Int("summary-min", 3, "minimum correlated alerts per window to open an incident (smaller groups deliver raw)")
	summaryRaw := flag.Bool("summary-raw", false, "with -summary, additionally deliver every raw alert next to folded incidents")
	fleet := flag.Bool("fleet", true, "run the fleet observability tier: vicinity residuals, event journal, and the /fleet/ dashboard on -obs-listen")
	vicinityThreshold := flag.Float64("vicinity-threshold", 4, "robust z vs job-peer median/MAD at which a node counts as peer-divergent")
	exemplars := flag.Bool("exemplars", false, "render (trace-id, value, ts) exemplars on histogram buckets in /metrics")
	lifecycleOn := flag.Bool("lifecycle", false, "run the model lifecycle loop: drift detection, background retraining, shadow promotion, hot swap")
	registryDir := flag.String("registry-dir", "registry", "versioned model registry directory (with -lifecycle)")
	retrainInterval := flag.Duration("retrain-interval", 0, "also retrain on this fixed period regardless of drift (0 = drift-driven only)")
	driftThreshold := flag.Float64("drift-threshold", 2.5, "multiple of the training baseline at which the rolling median counts as drifted")
	role := flag.String("role", "standalone", "fleet role: standalone | scorer | coordinator")
	coordinatorURL := flag.String("coordinator", "", "coordinator base URL (required with -role scorer)")
	scorerID := flag.String("id", "", "this scorer's stable identity (default: hostname)")
	advertisePush := flag.String("advertise-push", "", "push intake URL this scorer advertises to the coordinator")
	advertiseObs := flag.String("advertise-obs", "", "observability URL this scorer advertises (the coordinator scrapes its /metrics and /fleet/*)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "scorer lease-renewal cadence")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "coordinator: lease age at which a silent scorer's shards are reassigned")
	sweepInterval := flag.Duration("sweep-interval", 2*time.Second, "coordinator: cadence of lease sweeps and fleet fan-in scrapes")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "sentryd: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	switch *role {
	case "standalone", "scorer", "coordinator":
	default:
		fmt.Fprintf(os.Stderr, "sentryd: bad -role %q (want standalone, scorer or coordinator)\n", *role)
		os.Exit(2)
	}

	// The coordinator tier has no detector and no intake: it is pure
	// membership + model distribution + fan-in, so it branches off before
	// any dataset work. With -lifecycle it serves -registry-dir over
	// /registry/ for scorers to pull from.
	if *role == "coordinator" {
		runCoordinator(logger, coordinatorFlags{
			listen:            *listen,
			shards:            *shards,
			leaseTTL:          *leaseTTL,
			sweepInterval:     *sweepInterval,
			vicinityThreshold: *vicinityThreshold,
			registryDir:       *registryDir,
			lifecycleOn:       *lifecycleOn,
			exemplars:         *exemplars,
			webhook:           *webhook,
			summaryOn:         *summaryOn,
			summaryResolve:    *summaryResolve,
			summaryMin:        *summaryMin,
			summaryRaw:        *summaryRaw,
		})
		return
	}

	if *data == "" {
		fmt.Fprintln(os.Stderr, "sentryd: -data is required")
		os.Exit(2)
	}
	var routerPolicy ingest.Policy
	switch *policy {
	case "block":
		routerPolicy = ingest.Block
	case "drop-oldest":
		routerPolicy = ingest.DropOldest
	default:
		fmt.Fprintf(os.Stderr, "sentryd: bad -policy %q (want block or drop-oldest)\n", *policy)
		os.Exit(2)
	}

	// The gateway is always instrumented; -obs-listen only controls
	// whether the registry is additionally served for scraping. The server
	// starts after daemon.New so the /fleet/ mounts can come from the live
	// aggregator.
	reg := obs.NewRegistry()
	reg.SetExemplars(*exemplars)

	ds, err := nodesentry.ImportDataset(*data)
	if err != nil {
		fatal(logger, "load dataset", "dir", *data, "err", err)
	}
	logger.Info("dataset loaded", "summary", fmt.Sprint(ds.Summarize()))

	// Detector resolution: with -lifecycle the registry is authoritative —
	// a previously promoted model survives restarts; -train/-model only
	// seed an empty (or unreadable) registry.
	var store *lifecycle.Store
	var activeID string
	var det *nodesentry.Detector
	if *lifecycleOn {
		store, err = lifecycle.OpenStore(*registryDir, 5)
		if err != nil {
			fatal(logger, "open registry", "dir", *registryDir, "err", err)
		}
		if d, v, err := store.LoadActive(); err == nil {
			det, activeID = d, v.ID
			logger.Info("model loaded from registry", "version", v.ID,
				"clusters", det.NumClusters(), "source", v.Source)
		} else {
			logger.Info("registry has no loadable active version", "err", err)
			det = loadOrTrain(logger, ds, *train, *modelPath)
			v, err := store.SaveVersion(det, "initial")
			if err != nil {
				fatal(logger, "save initial version", "err", err)
			}
			if err := store.Activate(v.ID); err != nil {
				fatal(logger, "activate initial version", "err", err)
			}
			activeID = v.ID
			logger.Info("initial model registered", "version", v.ID)
		}
	} else {
		det = loadOrTrain(logger, ds, *train, *modelPath)
	}

	cfg := daemon.Config{
		Detector:       det,
		Step:           ds.Step,
		ScoringWorkers: 3,
		BatchWindows:   *batchWindows,
		Shards:         *shards,
		QueueSize:      *queue,
		Policy:         routerPolicy,
		WebhookURL:     *webhook,
		WebhookRetries: *webhookRetries,
		WebhookBackoff: ingest.Backoff{Base: 200 * time.Millisecond},
		Metrics:        reg,
		Logger:         logger,
	}
	cfg.Layouts = map[string][]string{}
	for node, frame := range ds.Frames {
		cfg.Layouts[node] = frame.Metrics
	}
	if *lifecycleOn {
		cfg.Lifecycle = &lifecycle.Config{
			Step:            ds.Step,
			TrainOptions:    nodesentry.DefaultOptions(),
			SemanticGroups:  telemetry.SemanticIndex(ds.Catalog),
			DriftThreshold:  *driftThreshold,
			RetrainInterval: *retrainInterval,
			Metrics:         reg,
			Logger:          logger,
		}
		cfg.Store = store
		cfg.ActiveID = activeID
	}
	if *fleet {
		cfg.FleetView = &fleetview.Config{
			VicinityThreshold: *vicinityThreshold,
			Metrics:           reg,
			Logger:            logger,
		}
	}
	if *summaryOn {
		cfg.Summary = &summary.Config{
			Window:       *summaryWindow,
			ResolveAfter: *summaryResolve,
			MinGroup:     *summaryMin,
		}
		cfg.SummaryRaw = *summaryRaw
	}
	if *role == "scorer" {
		if *coordinatorURL == "" {
			fmt.Fprintln(os.Stderr, "sentryd: -role scorer requires -coordinator")
			os.Exit(2)
		}
		id := *scorerID
		if id == "" {
			host, err := os.Hostname()
			if err != nil {
				fatal(logger, "resolve hostname for scorer id", "err", err)
			}
			id = host
		}
		cfg.Coord = &coord.AgentConfig{
			ID:                id,
			CoordinatorURL:    strings.TrimRight(*coordinatorURL, "/"),
			PushURL:           *advertisePush,
			ObsURL:            *advertiseObs,
			HeartbeatInterval: *heartbeat,
			// The registry version already running doesn't re-pull.
			ActiveModelID: activeID,
		}
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(logger, "intake listen", "addr", *listen, "err", err)
	}
	cfg.Listener = ln
	if *scrapeTargets != "" {
		cfg.ScrapeTargets = strings.Split(*scrapeTargets, ",")
		cfg.ScrapeInterval = *scrapeInterval
	}

	d, err := daemon.New(cfg)
	if err != nil {
		fatal(logger, "daemon", "err", err)
	}
	if *obsListen != "" {
		var mounts []obs.Mount
		if fv := d.FleetView(); fv != nil {
			mounts = fv.Mounts()
		}
		srv, addr, err := obs.Serve(*obsListen, reg, nil, mounts...)
		if err != nil {
			fatal(logger, "obs server", "err", err)
		}
		defer func() { _ = srv.Close() }() // process exit; shutdown error is inert
		logger.Info("observability listening", "addr", addr, "fleet", *fleet)
	}
	logger.Info("intake listening", "addr", d.Addr(),
		"shards", *shards, "queue", *queue, "policy", *policy)
	if cfg.Coord != nil {
		logger.Info("scorer role", "id", cfg.Coord.ID, "coordinator", cfg.Coord.CoordinatorURL,
			"heartbeat", *heartbeat)
	}
	if *lifecycleOn {
		logger.Info("lifecycle loop running", "registry", *registryDir,
			"drift_threshold", *driftThreshold, "retrain_interval", *retrainInterval)
	}
	if len(cfg.ScrapeTargets) > 0 {
		logger.Info("scraping", "targets", len(cfg.ScrapeTargets), "interval", *scrapeInterval)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("shutdown signal received")
	case err := <-d.ServeErr():
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(logger, "intake server", "err", err)
		}
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Close(shutdownCtx); err != nil {
		logger.Warn("daemon close", "err", err)
	}
}

// coordinatorFlags carries the subset of flags the coordinator role uses.
type coordinatorFlags struct {
	listen            string
	shards            int
	leaseTTL          time.Duration
	sweepInterval     time.Duration
	vicinityThreshold float64
	registryDir       string
	lifecycleOn       bool
	exemplars         bool
	webhook           string
	summaryOn         bool
	summaryResolve    time.Duration
	summaryMin        int
	summaryRaw        bool
}

// runCoordinator serves the coordinator tier on f.listen: /coord/*
// membership and alert intake, /registry/* model distribution (with
// -lifecycle), and the merged /fleet/* surface, until SIGINT/SIGTERM.
func runCoordinator(logger *slog.Logger, f coordinatorFlags) {
	reg := obs.NewRegistry()
	reg.SetExemplars(f.exemplars)

	var store *lifecycle.Store
	if f.lifecycleOn {
		var err error
		store, err = lifecycle.OpenStore(f.registryDir, 5)
		if err != nil {
			fatal(logger, "open registry", "dir", f.registryDir, "err", err)
		}
		logger.Info("serving model registry", "dir", f.registryDir)
	}
	ccfg := coord.Config{
		TotalShards:       f.shards,
		LeaseTTL:          f.leaseTTL,
		SweepInterval:     f.sweepInterval,
		VicinityThreshold: f.vicinityThreshold,
		Store:             store,
		Metrics:           reg,
		Logger:            logger,
		WebhookURL:        f.webhook,
		SummaryRaw:        f.summaryRaw,
	}
	if f.summaryOn {
		// The coordinator flushes on its sweep cadence, so the sweep
		// interval is the clustering window.
		ccfg.Summary = &summary.Config{
			Window:       f.sweepInterval,
			ResolveAfter: f.summaryResolve,
			MinGroup:     f.summaryMin,
		}
		logger.Info("alert summarization on", "window", f.sweepInterval,
			"resolve_after", f.summaryResolve, "min_group", f.summaryMin)
	}
	c := coord.New(ccfg)
	defer c.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go c.Run(ctx)

	srv, addr, err := obs.Serve(f.listen, reg, nil, c.Mounts()...)
	if err != nil {
		fatal(logger, "coordinator server", "err", err)
	}
	defer func() { _ = srv.Close() }() // process exit; shutdown error is inert
	logger.Info("coordinator listening", "addr", addr,
		"total_shards", f.shards, "lease_ttl", f.leaseTTL, "sweep", f.sweepInterval)

	<-ctx.Done()
	logger.Info("shutdown signal received")
}

// loadOrTrain resolves the detector from -model and/or -train, mirroring
// cmd/nodesentry's startup.
func loadOrTrain(logger *slog.Logger, ds *nodesentry.Dataset, train bool, modelPath string) *nodesentry.Detector {
	if train {
		det, err := nodesentry.Train(nodesentry.TrainInputFromDataset(ds), nodesentry.DefaultOptions())
		if err != nil {
			fatal(logger, "train", "err", err)
		}
		logger.Info("detector trained", "clusters", det.NumClusters())
		if modelPath != "" {
			f, err := os.Create(modelPath)
			if err != nil {
				fatal(logger, "create model file", "path", modelPath, "err", err)
			}
			if err := det.Save(f); err != nil {
				fatal(logger, "save model", "path", modelPath, "err", err)
			}
			if err := f.Close(); err != nil {
				fatal(logger, "close model file", "path", modelPath, "err", err)
			}
			logger.Info("model saved", "path", modelPath)
		}
		return det
	}
	if modelPath == "" {
		fatal(logger, "a detector is required: pass -train or -model")
	}
	f, err := os.Open(modelPath)
	if err != nil {
		fatal(logger, "open model", "path", modelPath, "err", err)
	}
	det, err := nodesentry.LoadDetector(f)
	_ = f.Close() // read-only; the load error below is the one that matters
	if err != nil {
		fatal(logger, "load model", "path", modelPath, "err", err)
	}
	logger.Info("model loaded", "path", modelPath, "clusters", det.NumClusters())
	return det
}
