package main

import (
	"os"
	"path/filepath"
	"testing"

	"nodesentry"
)

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "config.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigOverlays(t *testing.T) {
	path := writeConfig(t, `{
		"epochs": 7,
		"k_sigma": 3.5,
		"pca_dims": 8,
		"model": {"experts": 5, "top_k": 2}
	}`)
	opts, err := loadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Epochs != 7 || opts.KSigma != 3.5 || opts.PCADims != 8 {
		t.Errorf("overlay wrong: %+v", opts)
	}
	if opts.Model.Experts != 5 || opts.Model.TopK != 2 {
		t.Errorf("model overlay wrong: %+v", opts.Model)
	}
	// Untouched fields keep their defaults.
	def := nodesentry.DefaultOptions()
	if opts.WindowLen != def.WindowLen || opts.LR != def.LR {
		t.Error("defaults disturbed")
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	path := writeConfig(t, `{"epochz": 3}`)
	if _, err := loadConfig(path); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestLoadConfigRejectsGarbage(t *testing.T) {
	path := writeConfig(t, `{]`)
	if _, err := loadConfig(path); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := loadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadConfigEmptyObjectKeepsDefaults(t *testing.T) {
	path := writeConfig(t, `{}`)
	opts, err := loadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	def := nodesentry.DefaultOptions()
	if opts.Epochs != def.Epochs || opts.KSigma != def.KSigma || opts.Model != def.Model {
		t.Error("empty config changed defaults")
	}
}
