// Command nodesentry trains a detector on a dataset directory and runs
// online detection, printing evaluation metrics and per-node alarms.
//
// Usage:
//
//	nodesentry -data ./data/d1 -train -model ./model.bin
//	nodesentry -data ./data/d1 -model ./model.bin -detect
//	nodesentry -data ./data/d1 -train -detect            # both, in memory
//	nodesentry -data ./data/d1 -train -monitor -obs-listen :9090
//
// With -obs-listen the process serves its own Prometheus scrape endpoint
// (/metrics), a health check (/healthz), and pprof (/debug/pprof/) while it
// works — the self-observability loop the paper's §5.1 deployment assumes.
//
// The dataset directory is the layout datagen writes (or any real data
// converted to it).
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"nodesentry"
	"nodesentry/internal/labeling"
	"nodesentry/internal/obs"
)

// fatal logs the error as a structured record and exits non-zero.
func fatal(logger *slog.Logger, msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	data := flag.String("data", "", "dataset directory (required)")
	train := flag.Bool("train", false, "run the offline training phase")
	detect := flag.Bool("detect", false, "run online detection on the test split")
	update := flag.Bool("update", false, "incrementally update the model with the test split (requires -model or -train)")
	monitor := flag.Bool("monitor", false, "replay the test split through the streaming monitor and print alerts")
	modelPath := flag.String("model", "", "model file to save (after -train) / load (for -detect)")
	suggestions := flag.Bool("suggest", false, "print labeling suggestions for detected intervals")
	epochs := flag.Int("epochs", 0, "override training epochs")
	kmax := flag.Int("kmax", 0, "override the max cluster count for silhouette search")
	configPath := flag.String("config", "", "JSON config file overlaying the default options (see cmd/nodesentry/config.go)")
	obsListen := flag.String("obs-listen", "", "serve /metrics, /healthz and /debug/pprof on this address (empty disables observability)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "nodesentry: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *data == "" {
		fmt.Fprintln(os.Stderr, "nodesentry: -data is required")
		os.Exit(2)
	}

	// Observability is opt-in: without -obs-listen every handle below is a
	// nil no-op and no server is started.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *obsListen != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(reg)
		srv, addr, err := obs.Serve(*obsListen, reg, nil)
		if err != nil {
			fatal(logger, "obs server", "err", err)
		}
		defer func() { _ = srv.Close() }() // process exit; shutdown error is inert
		logger.Info("observability listening", "addr", addr,
			"endpoints", "/metrics /healthz /debug/pprof/")
	}

	ds, err := nodesentry.ImportDataset(*data)
	if err != nil {
		fatal(logger, "load dataset", "dir", *data, "err", err)
	}
	fmt.Printf("dataset: %s\n", ds.Summarize())

	var det *nodesentry.Detector
	if *train {
		opts := nodesentry.DefaultOptions()
		if *configPath != "" {
			opts, err = loadConfig(*configPath)
			if err != nil {
				fatal(logger, "load config", "path", *configPath, "err", err)
			}
		}
		if *epochs > 0 {
			opts.Epochs = *epochs
		}
		if *kmax > 0 {
			opts.KMax = *kmax
		}
		in := nodesentry.TrainInputFromDataset(ds)
		in.Trace = tracer
		det, err = nodesentry.Train(in, opts)
		if err != nil {
			fatal(logger, "train", "err", err)
		}
		st := det.Stats
		fmt.Printf("trained: %d segments -> %d clusters (silhouette %.3f), %d metrics after reduction, %v\n",
			st.Segments, st.Clusters, st.Silhouette, st.ReducedDim, st.TrainDuration.Round(1e6))
		for _, rec := range tracer.Records() {
			logger.Debug("train stage", "stage", rec.Stage, "wall", rec.Wall(),
				"allocs", rec.Allocs, "items", rec.Items)
		}
		if *modelPath != "" {
			f, err := os.Create(*modelPath)
			if err != nil {
				fatal(logger, "create model file", "path", *modelPath, "err", err)
			}
			if err := det.Save(f); err != nil {
				fatal(logger, "save model", "path", *modelPath, "err", err)
			}
			if err := f.Close(); err != nil {
				fatal(logger, "close model file", "path", *modelPath, "err", err)
			}
			fmt.Printf("model saved to %s\n", *modelPath)
		}
	} else if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			fatal(logger, "open model", "path", *modelPath, "err", err)
		}
		det, err = nodesentry.LoadDetector(f)
		_ = f.Close() // read-only; the load error below is the one that matters
		if err != nil {
			fatal(logger, "load model", "path", *modelPath, "err", err)
		}
		fmt.Printf("model loaded from %s (%d clusters)\n", *modelPath, det.NumClusters())
	}

	if *update {
		if det == nil {
			fatal(logger, "-update needs -train or -model")
		}
		matched, spawned := 0, 0
		for _, node := range ds.Nodes() {
			frame := ds.TestFrames()[node]
			spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
			rep, err := det.IncrementalUpdate(frame, spans, 2)
			if err != nil {
				fatal(logger, "incremental update", "node", node, "err", err)
			}
			matched += rep.MatchedSegments
			spawned += rep.SpawnedClusters
		}
		fmt.Printf("incremental update: %d segments matched, %d clusters spawned (library now %d)\n",
			matched, spawned, det.NumClusters())
		if *modelPath != "" {
			f, err := os.Create(*modelPath)
			if err != nil {
				fatal(logger, "rewrite model", "path", *modelPath, "err", err)
			}
			if err := det.Save(f); err != nil {
				fatal(logger, "save model", "path", *modelPath, "err", err)
			}
			if err := f.Close(); err != nil {
				fatal(logger, "close model file", "path", *modelPath, "err", err)
			}
		}
	}

	if *monitor {
		if det == nil {
			fatal(logger, "-monitor needs -train or -model")
		}
		mon, err := nodesentry.NewMonitor(det, nodesentry.MonitorConfig{
			Step: ds.Step, ScoringWorkers: 3, Metrics: reg, Logger: logger,
		})
		if err != nil {
			fatal(logger, "monitor", "err", err)
		}
		alerts := nodesentry.ReplayDataset(ds, mon, ds.SplitTime(), ds.Horizon)
		fmt.Printf("monitor replay: %d alerts (%d dropped)\n", len(alerts), mon.Dropped())
		for _, a := range alerts {
			prio := "warning "
			if a.Priority == nodesentry.Critical {
				prio = "CRITICAL"
			}
			fmt.Printf("[%s] t=%d %s job=%d score=%.1f -> %s: %s\n",
				prio, a.Time, a.Node, a.Job, a.Score, a.Diagnosis.Level, a.Diagnosis.Remediation)
		}
	}

	if !*detect {
		return
	}
	if det == nil {
		fatal(logger, "-detect needs -train or -model")
	}
	sum := nodesentry.EvaluateDetector(det, ds)
	fmt.Printf("evaluation: P=%.3f R=%.3f AUC=%.3f F1=%.3f\n",
		sum.Precision, sum.Recall, sum.AUC, sum.F1)

	if *suggestions {
		test := ds.TestFrames()
		for _, node := range ds.Nodes() {
			frame := test[node]
			spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
			res := det.Detect(frame, spans)
			for _, s := range labeling.Suggest(frame, res.Scores, res.Preds, "nodesentry") {
				fmt.Printf("suggest %-10s [%d, %d) peak=%.2f\n", s.Node, s.Span.Start, s.Span.End, s.Score)
			}
		}
	}
}
