package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"nodesentry"
)

// The paper's artifact drives its pipeline from a config.yml; this CLI
// accepts the equivalent as JSON (stdlib-only). Fields mirror
// nodesentry.Options; absent fields keep the defaults, so a config file
// only needs the knobs it changes:
//
//	{
//	  "epochs": 24,
//	  "k_sigma": 3,
//	  "model": {"experts": 3, "top_k": 1}
//	}
type fileConfig struct {
	CorrThreshold  *float64 `json:"corr_threshold"`
	Trim           *float64 `json:"trim"`
	Clip           *float64 `json:"clip"`
	MinSegmentLen  *int     `json:"min_segment_len"`
	PCADims        *int     `json:"pca_dims"`
	KMin           *int     `json:"k_min"`
	KMax           *int     `json:"k_max"`
	WindowLen      *int     `json:"window_len"`
	RepSegments    *int     `json:"rep_segments"`
	Epochs         *int     `json:"epochs"`
	LR             *float64 `json:"lr"`
	MaxWindows     *int     `json:"max_windows_per_cluster"`
	MatchPeriodSec *int64   `json:"match_period_sec"`
	ThresholdSec   *int64   `json:"threshold_window_sec"`
	KSigma         *float64 `json:"k_sigma"`
	MinConsecutive *int     `json:"min_consecutive"`
	Seed           *int64   `json:"seed"`
	Model          *struct {
		ModelDim *int `json:"model_dim"`
		Heads    *int `json:"heads"`
		Hidden   *int `json:"hidden"`
		Blocks   *int `json:"blocks"`
		Experts  *int `json:"experts"`
		TopK     *int `json:"top_k"`
	} `json:"model"`
}

// loadConfig overlays a JSON config file onto the default options.
func loadConfig(path string) (nodesentry.Options, error) {
	opts := nodesentry.DefaultOptions()
	data, err := os.ReadFile(path)
	if err != nil {
		return opts, err
	}
	var fc fileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return opts, fmt.Errorf("config %s: %w", path, err)
	}
	setF := func(dst *float64, src *float64) {
		if src != nil {
			*dst = *src
		}
	}
	setI := func(dst *int, src *int) {
		if src != nil {
			*dst = *src
		}
	}
	setI64 := func(dst *int64, src *int64) {
		if src != nil {
			*dst = *src
		}
	}
	setF(&opts.CorrThreshold, fc.CorrThreshold)
	setF(&opts.Trim, fc.Trim)
	setF(&opts.Clip, fc.Clip)
	setI(&opts.MinSegmentLen, fc.MinSegmentLen)
	setI(&opts.PCADims, fc.PCADims)
	setI(&opts.KMin, fc.KMin)
	setI(&opts.KMax, fc.KMax)
	setI(&opts.WindowLen, fc.WindowLen)
	setI(&opts.RepSegments, fc.RepSegments)
	setI(&opts.Epochs, fc.Epochs)
	setF(&opts.LR, fc.LR)
	setI(&opts.MaxWindowsPerCluster, fc.MaxWindows)
	setI64(&opts.MatchPeriodSec, fc.MatchPeriodSec)
	setI64(&opts.ThresholdWindowSec, fc.ThresholdSec)
	setF(&opts.KSigma, fc.KSigma)
	setI(&opts.MinConsecutive, fc.MinConsecutive)
	setI64(&opts.Seed, fc.Seed)
	if fc.Model != nil {
		setI(&opts.Model.ModelDim, fc.Model.ModelDim)
		setI(&opts.Model.Heads, fc.Model.Heads)
		setI(&opts.Model.Hidden, fc.Model.Hidden)
		setI(&opts.Model.Blocks, fc.Model.Blocks)
		setI(&opts.Model.Experts, fc.Model.Experts)
		setI(&opts.Model.TopK, fc.Model.TopK)
	}
	return opts, nil
}
