// Command datagen materializes a synthetic HPC dataset (scheduler +
// telemetry + fault injection) and writes it to disk in the artifact's
// CSV layout (node_data/*.csv, jobs.csv, labels.csv, catalog.csv).
//
// Usage:
//
//	datagen -preset d1 -out ./data/d1
//	datagen -nodes 8 -days 2 -step 60 -seed 7 -out ./data/custom
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"nodesentry"
)

func main() {
	preset := flag.String("preset", "", "preset: d1, d2, artifact, tiny (overrides the knobs below)")
	nodes := flag.Int("nodes", 8, "node count")
	cores := flag.Int("cores", 4, "cores per node (per-core metric expansion)")
	days := flag.Float64("days", 2, "horizon in days")
	step := flag.Int64("step", 60, "sampling interval in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	faultsPerNode := flag.Float64("faults", 2, "expected faults per node in the test window")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}
	var cfg nodesentry.DatasetConfig
	switch *preset {
	case "d1":
		cfg = nodesentry.D1Small()
	case "d2":
		cfg = nodesentry.D2Small()
	case "artifact":
		cfg = nodesentry.ArtifactSample()
	case "tiny":
		cfg = nodesentry.TinyDataset()
	case "":
		cfg = nodesentry.DatasetConfig{
			Name: "custom", Nodes: *nodes, Cores: *cores, HorizonDays: *days,
			Step: *step, TrainFrac: 0.6, MissingRate: 0.002, NoiseStd: 0.02,
			FaultsPerNode: *faultsPerNode, MeanFaultDuration: 1500,
			AffinePerSemantic: 1, ConstantMetrics: 2, Seed: *seed,
		}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	ds := nodesentry.BuildDataset(cfg)
	if err := ds.Export(*out); err != nil {
		slog.New(slog.NewTextHandler(os.Stderr, nil)).Error("export", "dir", *out, "err", err)
		os.Exit(1)
	}
	sum := ds.Summarize()
	fmt.Printf("wrote %s: %s\n", *out, sum)
	fmt.Printf("faults injected: %d (test window only)\n", len(ds.Faults))
}
