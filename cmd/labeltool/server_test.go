package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nodesentry"
	"nodesentry/internal/labeling"
)

func testTool(t *testing.T) *tool {
	t.Helper()
	cfg := nodesentry.TinyDataset()
	cfg.Nodes = 2
	cfg.HorizonDays = 0.5
	ds := nodesentry.BuildDataset(cfg)
	return newTool(ds, labeling.NewStore(), t.TempDir())
}

func get(t *testing.T, h http.HandlerFunc, url string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v", url, err)
		}
	}
	return rec
}

func post(t *testing.T, h http.HandlerFunc, url, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", url, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v", url, err)
		}
	}
	return rec
}

func TestHandleNodes(t *testing.T) {
	tl := testTool(t)
	var nodes []string
	get(t, tl.handleNodes, "/api/nodes", &nodes)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestHandleSeries(t *testing.T) {
	tl := testTool(t)
	node := tl.ds.Nodes()[0]
	var resp seriesResponse
	get(t, tl.handleSeries, "/api/series?node="+node, &resp)
	if resp.Node != node || len(resp.Times) == 0 || len(resp.Times) != len(resp.Values) {
		t.Fatalf("series response malformed: %d times %d values", len(resp.Times), len(resp.Values))
	}
	if len(resp.Times) > 2000 {
		t.Error("series not downsampled")
	}
	if rec := get(t, tl.handleSeries, "/api/series?node=nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown node returned %d", rec.Code)
	}
}

func TestLabelCancelRoundTrip(t *testing.T) {
	tl := testTool(t)
	node := tl.ds.Nodes()[0]
	var ivs []map[string]int64
	post(t, tl.handleLabel, "/api/label", `{"node":"`+node+`","start":100,"end":400}`, &ivs)
	if len(ivs) != 1 {
		t.Fatalf("after label: %v", ivs)
	}
	post(t, tl.handleCancel, "/api/cancel", `{"node":"`+node+`","start":150,"end":200}`, &ivs)
	if len(ivs) != 2 {
		t.Fatalf("after cancel split: %v", ivs)
	}
	if rec := post(t, tl.handleLabel, "/api/label", `{"node":"x","start":5,"end":5}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("empty interval accepted: %d", rec.Code)
	}
	if rec := post(t, tl.handleLabel, "/api/label", `not json`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON accepted: %d", rec.Code)
	}
}

func TestHandleSuggest(t *testing.T) {
	tl := testTool(t)
	node := tl.ds.Nodes()[0]
	var sugs []labeling.Suggestion
	get(t, tl.handleSuggest, "/api/suggest?node="+node, &sugs)
	// The statistical engine may or may not fire on this node; the
	// contract is a well-formed (possibly empty) list.
	for _, s := range sugs {
		if s.Node != node || s.Span.End <= s.Span.Start {
			t.Errorf("malformed suggestion %+v", s)
		}
	}
}

func TestHandleClustersAndMove(t *testing.T) {
	tl := testTool(t)
	var resp clustersResponse
	get(t, tl.handleClusters, "/api/clusters", &resp)
	if resp.K < 1 || len(resp.Segments) == 0 {
		t.Fatalf("clusters response %+v", resp)
	}
	var mv map[string]any
	post(t, tl.handleMove, "/api/move", `{"segment":0,"cluster":0}`, &mv)
	if mv["ok"] != true {
		t.Errorf("move response %v", mv)
	}
	if rec := post(t, tl.handleMove, "/api/move", `{"segment":-1,"cluster":0}`, nil); rec.Code != http.StatusBadRequest {
		t.Errorf("bad move accepted: %d", rec.Code)
	}
}

func TestHandleSaveAndIndex(t *testing.T) {
	tl := testTool(t)
	var ok map[string]any
	post(t, tl.handleSave, "/api/save", `{}`, &ok)
	if ok["ok"] != true {
		t.Error("save failed")
	}
	rec := get(t, tl.handleIndex, "/", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "NodeSentry") {
		t.Error("index page broken")
	}
	if rec := get(t, tl.handleIndex, "/nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path returned %d", rec.Code)
	}
}

func TestCLICommands(t *testing.T) {
	tl := testTool(t)
	node := tl.ds.Nodes()[0]
	cases := [][]string{
		{"label", node, "100", "400"},
		{"cancel", node, "150", "200"},
		{"list"},
		{"suggest", node},
		{"clusters"},
		{"move", "0", "0"},
		{"save"},
	}
	for _, args := range cases {
		if err := tl.runCLI(args); err != nil {
			t.Errorf("CLI %v: %v", args, err)
		}
	}
	for _, bad := range [][]string{
		{"unknown"}, {"label", node, "x", "y"}, {"move", "a", "b"}, {"label", node},
	} {
		if err := tl.runCLI(bad); err == nil {
			t.Errorf("CLI %v should fail", bad)
		}
	}
}
