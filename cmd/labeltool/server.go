package main

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/features"
	"nodesentry/internal/labeling"
	"nodesentry/internal/mts"
	"nodesentry/internal/preprocess"
)

// tool bundles the dataset, labeling session and (lazily built) cluster
// session behind both front ends. labeling.Store and
// labeling.ClusterSession lock internally, so handlers call them
// directly; t.mu only guards the lazy cluster-session build (and the
// dataset is read-only after startup).
type tool struct {
	mu      sync.Mutex // guards cs initialization only
	ds      *dataset.Dataset
	store   *labeling.Store
	workdir string
	cs      *labeling.ClusterSession
	// fleet, when non-nil, is a running sentryd observability endpoint;
	// its /fleet/ dashboard is reverse-proxied into this UI so the
	// labeling workflow gains the live fleet view it historically lacked.
	fleet *url.URL
}

func newTool(ds *dataset.Dataset, store *labeling.Store, workdir string) *tool {
	return &tool{ds: ds, store: store, workdir: workdir}
}

func (t *tool) save() error {
	return t.store.Save(t.workdir)
}

// clusters lazily builds the cluster session from the dataset's training
// split (cleaned frames, job segmentation, feature extraction, HAC).
// t.mu serializes the build; the returned session locks internally.
func (t *tool) clusters() *labeling.ClusterSession {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cs != nil {
		return t.cs
	}
	frames := map[string]*mts.NodeFrame{}
	var segs []mts.Segment
	for _, node := range t.ds.Nodes() {
		f := t.ds.TrainFrames()[node].Clone()
		preprocess.Clean(f)
		frames[node] = f
		segs = append(segs, preprocess.Segment(f, t.ds.SpansForNode(node, 0, t.ds.SplitTime()), 16)...)
	}
	F := features.Matrix(frames, segs)
	features.NormalizeColumns(F)
	t.cs = labeling.NewClusterSession(F, segs, 2, 12)
	return t.cs
}

// suggest runs the built-in statistical detector (per-metric z-score
// magnitude + dynamic k-sigma threshold) over a node's full frame and
// returns interval suggestions.
func (t *tool) suggest(node string) []labeling.Suggestion {
	frame, ok := t.ds.Frames[node]
	if !ok {
		return nil
	}
	f := frame.Clone()
	preprocess.Clean(f)
	std := preprocess.FitStandardizer(map[string]*mts.NodeFrame{node: f.Clone()}, 0.05, 5)
	std.Apply(f)
	scores := make([]float64, f.Len())
	for t2 := 0; t2 < f.Len(); t2++ {
		s := 0.0
		for m := range f.Data {
			v := f.Data[m][t2]
			s += v * v
		}
		scores[t2] = s / float64(f.NumMetrics())
	}
	preds := core.KSigmaThreshold(scores, f.Step, 1200, 3)
	return labeling.Suggest(f, scores, preds, "statistical-ksigma")
}

// ---- HTTP layer ----

func (t *tool) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", t.handleIndex)
	mux.HandleFunc("/api/nodes", t.handleNodes)
	mux.HandleFunc("/api/series", t.handleSeries)
	mux.HandleFunc("/api/labels", t.handleLabels)
	mux.HandleFunc("/api/label", t.handleLabel)
	mux.HandleFunc("/api/cancel", t.handleCancel)
	mux.HandleFunc("/api/suggest", t.handleSuggest)
	mux.HandleFunc("/api/clusters", t.handleClusters)
	mux.HandleFunc("/api/move", t.handleMove)
	mux.HandleFunc("/api/save", t.handleSave)
	if t.fleet != nil {
		mux.Handle("/fleet/", httputil.NewSingleHostReverseProxy(t.fleet))
	}
	return mux
}

func (t *tool) serve(addr string) error {
	return http.ListenAndServe(addr, t.handler())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (t *tool) handleNodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, t.ds.Nodes())
}

type seriesResponse struct {
	Node    string    `json:"node"`
	Metric  string    `json:"metric"`
	Times   []int64   `json:"times"`
	Values  []float64 `json:"values"`
	Metrics []string  `json:"metrics"`
}

func (t *tool) handleSeries(w http.ResponseWriter, r *http.Request) {
	node := r.URL.Query().Get("node")
	metric := r.URL.Query().Get("metric")
	frame, ok := t.ds.Frames[node]
	if !ok {
		http.Error(w, "unknown node", http.StatusNotFound)
		return
	}
	mi := 0
	for i, m := range frame.Metrics {
		if m == metric {
			mi = i
			break
		}
	}
	const maxPoints = 2000
	stride := 1
	if frame.Len() > maxPoints {
		stride = frame.Len() / maxPoints
	}
	resp := seriesResponse{Node: node, Metric: frame.Metrics[mi], Metrics: frame.Metrics}
	for i := 0; i < frame.Len(); i += stride {
		resp.Times = append(resp.Times, frame.TimeAt(i))
		resp.Values = append(resp.Values, frame.Data[mi][i])
	}
	writeJSON(w, resp)
}

func (t *tool) handleLabels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, t.store.NodeLabels(r.URL.Query().Get("node")))
}

type intervalRequest struct {
	Node  string `json:"node"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

func (t *tool) handleLabel(w http.ResponseWriter, r *http.Request) {
	var req intervalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := t.store.Label(req.Node, mts.Interval{Start: req.Start, End: req.End}); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, t.store.NodeLabels(req.Node))
}

func (t *tool) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req intervalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.store.Cancel(req.Node, mts.Interval{Start: req.Start, End: req.End})
	writeJSON(w, t.store.NodeLabels(req.Node))
}

func (t *tool) handleSuggest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, t.suggest(r.URL.Query().Get("node")))
}

type clustersResponse struct {
	K          int     `json:"k"`
	Silhouette float64 `json:"silhouette"`
	Adjusted   int     `json:"adjusted"`
	Segments   []struct {
		Index   int    `json:"index"`
		Node    string `json:"node"`
		Job     int64  `json:"job"`
		Len     int    `json:"len"`
		Cluster int    `json:"cluster"`
	} `json:"segments"`
}

func (t *tool) handleClusters(w http.ResponseWriter, r *http.Request) {
	cs := t.clusters()
	labels := cs.Labels()
	resp := clustersResponse{K: cs.NumClusters(), Silhouette: cs.Silhouette(), Adjusted: cs.Adjusted()}
	for i, seg := range cs.Segments {
		resp.Segments = append(resp.Segments, struct {
			Index   int    `json:"index"`
			Node    string `json:"node"`
			Job     int64  `json:"job"`
			Len     int    `json:"len"`
			Cluster int    `json:"cluster"`
		}{i, seg.Node, seg.Job, seg.Len(), labels[i]})
	}
	writeJSON(w, resp)
}

func (t *tool) handleMove(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Segment int `json:"segment"`
		Cluster int `json:"cluster"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cs := t.clusters()
	if err := cs.Move(req.Segment, req.Cluster); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := cs.Save(t.workdir); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"ok": true, "silhouette": cs.Silhouette()})
}

func (t *tool) handleSave(w http.ResponseWriter, r *http.Request) {
	if err := t.save(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]any{"ok": true})
}

var indexTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html><head><title>NodeSentry labeltool</title>
<style>
body { font-family: sans-serif; margin: 1.5em; }
svg { border: 1px solid #ccc; background: #fafafa; }
.label { fill: rgba(220, 60, 60, 0.25); }
.suggestion { fill: rgba(60, 60, 220, 0.18); }
table { border-collapse: collapse; } td, th { padding: 2px 8px; border: 1px solid #ddd; }
</style></head>
<body>
<h2>NodeSentry labeling &amp; cluster-adjustment tool — {{.Dataset}}</h2>
{{if .Fleet}}<p><a href="{{.Fleet}}" target="_blank">live fleet dashboard ↗</a> (proxied from sentryd)</p>{{end}}
<p>
 node <select id="node"></select>
 metric <select id="metric"></select>
 <button onclick="loadSeries()">plot</button>
 <button onclick="suggest()">suggest anomalies</button>
 <button onclick="save()">save session</button>
</p>
<svg id="chart" width="1100" height="320"></svg>
<p>drag on the chart to label an interval; shift-drag to cancel labels.</p>
<h3>clusters</h3>
<div id="clusters"></div>
<script>
let series = null, labels = [], suggestions = [];
async function getJSON(u){ const r = await fetch(u); return r.json(); }
async function postJSON(u, body){ const r = await fetch(u, {method:'POST', body: JSON.stringify(body)}); return r.json(); }
async function init(){
  const nodes = await getJSON('/api/nodes');
  const sel = document.getElementById('node');
  nodes.forEach(n => sel.add(new Option(n, n)));
  await loadSeries();
  await loadClusters();
}
async function loadSeries(){
  const node = document.getElementById('node').value;
  const metric = document.getElementById('metric').value || '';
  series = await getJSON('/api/series?node='+node+'&metric='+encodeURIComponent(metric));
  const msel = document.getElementById('metric');
  if (msel.options.length === 0) series.metrics.forEach(m => msel.add(new Option(m, m)));
  labels = await getJSON('/api/labels?node='+node) || [];
  draw();
}
function xScale(t){ const t0 = series.times[0], t1 = series.times[series.times.length-1];
  return 40 + (t - t0) / (t1 - t0) * 1040; }
function draw(){
  const svg = document.getElementById('chart');
  svg.innerHTML = '';
  if (!series || series.values.length === 0) return;
  let lo = Math.min(...series.values), hi = Math.max(...series.values);
  if (hi === lo) hi = lo + 1;
  const y = v => 300 - (v - lo) / (hi - lo) * 280;
  const rect = (iv, cls) => {
    const r = document.createElementNS('http://www.w3.org/2000/svg','rect');
    r.setAttribute('x', xScale(iv.Start)); r.setAttribute('width', Math.max(2, xScale(iv.End)-xScale(iv.Start)));
    r.setAttribute('y', 10); r.setAttribute('height', 300); r.setAttribute('class', cls);
    svg.appendChild(r);
  };
  (labels||[]).forEach(l => rect(l, 'label'));
  suggestions.forEach(s => rect(s.Span, 'suggestion'));
  const pts = series.times.map((t,i) => xScale(t)+','+y(series.values[i])).join(' ');
  const pl = document.createElementNS('http://www.w3.org/2000/svg','polyline');
  pl.setAttribute('points', pts); pl.setAttribute('fill','none'); pl.setAttribute('stroke','#333');
  svg.appendChild(pl);
}
let dragStart = null;
document.getElementById('chart').addEventListener('mousedown', e => { dragStart = {x: e.offsetX, shift: e.shiftKey}; });
document.getElementById('chart').addEventListener('mouseup', async e => {
  if (!dragStart || !series) return;
  const t0 = series.times[0], t1 = series.times[series.times.length-1];
  const toT = x => Math.round(t0 + (x - 40) / 1040 * (t1 - t0));
  const a = Math.min(dragStart.x, e.offsetX), b = Math.max(dragStart.x, e.offsetX);
  const node = document.getElementById('node').value;
  const url = dragStart.shift ? '/api/cancel' : '/api/label';
  labels = await postJSON(url, {node: node, start: toT(a), end: toT(b)});
  dragStart = null; draw();
});
async function suggest(){
  const node = document.getElementById('node').value;
  suggestions = await getJSON('/api/suggest?node='+node) || [];
  draw();
}
async function save(){ await postJSON('/api/save', {}); alert('saved'); }
async function loadClusters(){
  const c = await getJSON('/api/clusters');
  let html = '<p>k='+c.k+' silhouette='+c.silhouette.toFixed(3)+' adjusted='+c.adjusted+'</p>';
  html += '<table><tr><th>#</th><th>node</th><th>job</th><th>len</th><th>cluster</th><th>move to</th></tr>';
  c.segments.forEach(s => {
    html += '<tr><td>'+s.index+'</td><td>'+s.node+'</td><td>'+s.job+'</td><td>'+s.len+'</td><td>'+s.cluster+'</td>';
    html += '<td><input size=2 id="mv'+s.index+'"><button onclick="move('+s.index+')">go</button></td></tr>';
  });
  html += '</table>';
  document.getElementById('clusters').innerHTML = html;
}
async function move(i){
  const c = parseInt(document.getElementById('mv'+i).value);
  await postJSON('/api/move', {segment: i, cluster: c});
  await loadClusters();
}
init();
</script>
</body></html>`))

func (t *tool) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	fleet := ""
	if t.fleet != nil {
		fleet = "/fleet/"
	}
	err := indexTemplate.Execute(w, map[string]string{"Dataset": t.ds.Name, "Fleet": fleet})
	if err != nil {
		fmt.Println("labeltool: render:", err)
	}
}
