package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentClients drives overlapping label/cancel/read/save/cluster
// requests through a real HTTP server. The labeling store and cluster
// session lock internally, so this test (run with -race in the verify
// gate) pins that the library-level locking keeps lock-free handlers
// safe.
func TestConcurrentClients(t *testing.T) {
	tl := testTool(t)
	srv := httptest.NewServer(tl.handler())
	defer srv.Close()
	node := tl.ds.Nodes()[0]

	do := func(method, path, body string) error {
		var resp *http.Response
		var err error
		if method == "GET" {
			resp, err = http.Get(srv.URL + path)
		} else {
			resp, err = http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.Body.Close()
	}

	const workers = 8
	const rounds = 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lo := int64(100 * (w*rounds + i))
				var err error
				switch i % 5 {
				case 0:
					err = do("POST", "/api/label",
						fmt.Sprintf(`{"node":%q,"start":%d,"end":%d}`, node, lo, lo+50))
				case 1:
					err = do("POST", "/api/cancel",
						fmt.Sprintf(`{"node":%q,"start":%d,"end":%d}`, node, lo+10, lo+20))
				case 2:
					err = do("GET", "/api/labels?node="+node, "")
				case 3:
					err = do("POST", "/api/save", `{}`)
				case 4:
					err = do("GET", "/api/clusters", "")
				}
				if err != nil {
					t.Errorf("worker %d request %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The store must still be coherent: a final label round-trips.
	var ivs []map[string]int64
	post(t, tl.handleLabel, "/api/label",
		fmt.Sprintf(`{"node":%q,"start":1000000,"end":1000100}`, node), &ivs)
	if len(ivs) == 0 {
		t.Error("store unusable after concurrent traffic")
	}
}
