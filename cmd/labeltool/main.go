// Command labeltool is the clustering-adjustment and anomaly-labeling tool
// of the paper's artifact A₂, reimplemented as a CLI plus an HTTP UI
// (stdlib only) instead of the original Tkinter desktop app.
//
// Serve the UI:
//
//	labeltool -data ./data/d1 -workdir ./session -http :8080
//
// Or drive it from the command line:
//
//	labeltool -data ./data/d1 -workdir ./session label cn-0001 173000 174000
//	labeltool -data ./data/d1 -workdir ./session cancel cn-0001 173000 173500
//	labeltool -data ./data/d1 -workdir ./session suggest cn-0001
//	labeltool -data ./data/d1 -workdir ./session clusters
//	labeltool -data ./data/d1 -workdir ./session move 3 1
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/url"
	"os"
	"strconv"

	"nodesentry"
	"nodesentry/internal/labeling"
	"nodesentry/internal/mts"
)

func main() {
	data := flag.String("data", "", "dataset directory (required)")
	workdir := flag.String("workdir", "./labelsession", "session directory for labels and cluster files")
	httpAddr := flag.String("http", "", "serve the web UI on this address instead of running a CLI command")
	sentrydURL := flag.String("sentryd", "", "base URL of a running sentryd -obs-listen endpoint; proxies its /fleet/ dashboard into this UI")
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	fatal := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *data == "" {
		fmt.Fprintln(os.Stderr, "labeltool: -data is required")
		os.Exit(2)
	}
	ds, err := nodesentry.ImportDataset(*data)
	if err != nil {
		fatal("load dataset", "dir", *data, "err", err)
	}
	store, err := labeling.Load(*workdir)
	if err != nil {
		fatal("load session", "workdir", *workdir, "err", err)
	}
	tool := newTool(ds, store, *workdir)
	if *sentrydURL != "" {
		u, err := url.Parse(*sentrydURL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			fatal("bad -sentryd URL", "url", *sentrydURL, "err", err)
		}
		tool.fleet = u
	}

	if *httpAddr != "" {
		logger.Info("serving", "addr", *httpAddr, "data", *data, "session", *workdir)
		if err := tool.serve(*httpAddr); err != nil {
			fatal("serve", "err", err)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "labeltool: command required: list | label | cancel | suggest | clusters | move | save")
		os.Exit(2)
	}
	if err := tool.runCLI(args); err != nil {
		fatal("command failed", "cmd", args[0], "err", err)
	}
}

func (t *tool) runCLI(args []string) error {
	switch args[0] {
	case "list":
		for _, node := range t.ds.Nodes() {
			ivs := t.store.Labels()[node]
			fmt.Printf("%-10s %d labeled intervals\n", node, len(ivs))
			for _, iv := range ivs {
				fmt.Printf("  [%d, %d)\n", iv.Start, iv.End)
			}
		}
		return nil
	case "label", "cancel":
		if len(args) != 4 {
			return fmt.Errorf("%s needs: node start end", args[0])
		}
		start, err1 := strconv.ParseInt(args[2], 10, 64)
		end, err2 := strconv.ParseInt(args[3], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad interval %q %q", args[2], args[3])
		}
		iv := mts.Interval{Start: start, End: end}
		if args[0] == "label" {
			if err := t.store.Label(args[1], iv); err != nil {
				return err
			}
		} else {
			t.store.Cancel(args[1], iv)
		}
		return t.save()
	case "suggest":
		if len(args) != 2 {
			return fmt.Errorf("suggest needs: node")
		}
		for _, s := range t.suggest(args[1]) {
			fmt.Printf("%s [%d, %d) peak=%.2f via %s\n", s.Node, s.Span.Start, s.Span.End, s.Score, s.Method)
		}
		return nil
	case "clusters":
		cs := t.clusters()
		labels := cs.Labels()
		fmt.Printf("%d clusters over %d segments (silhouette %.3f, %d adjusted)\n",
			cs.NumClusters(), len(labels), cs.Silhouette(), cs.Adjusted())
		for i, seg := range cs.Segments {
			fmt.Printf("  #%-3d %-10s job=%-6d len=%-5d cluster=%d\n", i, seg.Node, seg.Job, seg.Len(), labels[i])
		}
		return nil
	case "move":
		if len(args) != 3 {
			return fmt.Errorf("move needs: segmentIndex cluster")
		}
		i, err1 := strconv.Atoi(args[1])
		c, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad arguments")
		}
		cs := t.clusters()
		if err := cs.Move(i, c); err != nil {
			return err
		}
		fmt.Printf("moved segment %d to cluster %d (silhouette now %.3f)\n", i, c, cs.Silhouette())
		return cs.Save(t.workdir)
	case "save":
		return t.save()
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
