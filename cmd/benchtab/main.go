// Command benchtab regenerates the paper's tables and figures on the
// synthetic substrate and prints the same rows/series the paper reports.
//
// Usage:
//
//	benchtab -exp table4              # one experiment at full scale
//	benchtab -exp all -quick         # everything, reduced scale
//	benchtab -exp all -quick -json   # also write stage timings to BENCH_obs.json
//
// Experiments: table2 table3 table4 table5 fig1 fig4 fig6a fig6b fig6c
// fig6d fig6e fig6f fig8 dtw incremental deploy gateway lifecycle chaos
// fleetview coord summary all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nodesentry/internal/analysis"
	"nodesentry/internal/experiments"
	"nodesentry/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table2..table5, fig1, fig4, fig6a-f, fig8, dtw, incremental, deploy, gateway, lifecycle, chaos, fleetview, coord, summary, all)")
	quick := flag.Bool("quick", false, "run at reduced scale")
	jsonOut := flag.Bool("json", false, "write per-experiment stage timings (wall, allocs, bytes) to BENCH_obs.json")
	check := flag.Bool("check", false, "compare this run's stage records against the committed BENCH_obs.json and exit 4 on drift (implies tracing; does not rewrite the baseline)")
	checkWall := flag.Float64("check-wall-pct", 20, "with -check: allowed one-sided wall-time regression in percent")
	checkAlloc := flag.Float64("check-alloc-pct", 10, "with -check: allowed two-sided allocation drift in percent (counts and bytes)")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}
	w := os.Stdout

	// Each experiment runs under a tracer span; -json persists the records
	// (wall time, allocations, bytes) as the perf trajectory's seed file.
	// The lifecycle experiment additionally adds retrain/swap sub-spans.
	var tracer *obs.Tracer
	if *jsonOut || *check {
		tracer = obs.NewTracer(nil)
	}

	runners := map[string]func() error{
		"table2": func() error { _, err := experiments.Table2(w, scale); return err },
		"table3": func() error { _, err := experiments.Table3(w); return err },
		"table4": func() error { _, err := experiments.Table4(w, scale); return err },
		"table5": func() error { _, err := experiments.Table5(w, scale); return err },
		"fig1":   func() error { _, err := experiments.Fig1(w); return err },
		"fig4":   func() error { _, err := experiments.Fig4(w); return err },
		"fig6a":  func() error { _, err := experiments.Fig6a(w, scale); return err },
		"fig6b":  func() error { _, err := experiments.Fig6b(w, scale); return err },
		"fig6c":  func() error { _, err := experiments.Fig6c(w, scale); return err },
		"fig6d":  func() error { _, err := experiments.Fig6d(w, scale); return err },
		"fig6e":  func() error { _, err := experiments.Fig6e(w, scale); return err },
		"fig6f":  func() error { _, err := experiments.Fig6f(w, scale); return err },
		"fig8":   func() error { _, err := experiments.Fig8(w, scale); return err },
		"dtw":    func() error { _, err := experiments.DTWCost(w, scale); return err },
		"incremental": func() error {
			_, err := experiments.Incremental(w, scale)
			return err
		},
		"deploy":  func() error { _, err := experiments.Deploy(w, scale); return err },
		"gateway": func() error { _, err := experiments.Gateway(w, scale); return err },
		"lifecycle": func() error {
			_, err := experiments.Lifecycle(w, scale, tracer)
			return err
		},
		"gpu": func() error { _, err := experiments.GPUExtension(w, scale); return err },
		"linkage": func() error {
			_, err := experiments.LinkageAblation(w, scale)
			return err
		},
		"domains": func() error { _, err := experiments.FeatureDomainAblation(w, scale); return err },
		"pca": func() error {
			_, err := experiments.PCAAblation(w, scale)
			return err
		},
		"wmse": func() error {
			_, _, err := experiments.WMSEAblation(w, scale)
			return err
		},
		"faultrecall": func() error {
			_, err := experiments.FaultRecall(w, scale)
			return err
		},
		"chaos": func() error {
			_, err := experiments.Chaos(w, scale, tracer)
			return err
		},
		"fleetview": func() error {
			_, err := experiments.FleetView(w, scale, tracer)
			return err
		},
		"coord": func() error {
			_, err := experiments.Coord(w, scale, tracer)
			return err
		},
		"summary": func() error {
			_, err := experiments.Summary(w, scale, tracer)
			return err
		},
		"lint": func() error { return lintBench(w, tracer) },
	}
	order := []string{
		"table2", "table3", "fig1", "fig4", "table4", "table5",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
		"fig8", "dtw", "incremental", "deploy", "gateway", "lifecycle",
		"gpu", "linkage", "domains", "pca", "wmse", "faultrecall",
		"chaos", "fleetview", "coord", "summary", "lint",
	}

	run := func(name string) {
		t0 := time.Now()
		fmt.Printf("--- %s ---\n", name)
		sp := tracer.Start(name)
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
			os.Exit(1)
		}
		sp.End()
		fmt.Printf("    (%v)\n\n", time.Since(t0).Round(time.Millisecond))
	}
	// runCheck gates the run against the committed baseline (exit 4 on
	// drift). A partial -exp run compares only its own stages; -exp all
	// also demands no baseline stage went missing.
	runCheck := func() {
		if !*check {
			return
		}
		opts := defaultCheckOpts(*checkWall, *checkAlloc)
		if !checkAgainst("BENCH_obs.json", tracer.Records(), opts, *exp == "all", os.Stdout) {
			os.Exit(4)
		}
	}
	writeJSON := func() {
		// -check never rewrites the baseline it is about to compare against.
		if !*jsonOut || *check {
			return
		}
		f, err := os.Create("BENCH_obs.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: create BENCH_obs.json: %v\n", err)
			os.Exit(1)
		}
		if err := tracer.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: write BENCH_obs.json: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: close BENCH_obs.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("stage timings written to BENCH_obs.json (%d stages)\n", len(tracer.Records()))
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		writeJSON()
		runCheck()
		return
	}
	if _, ok := runners[*exp]; !ok {
		fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	run(*exp)
	writeJSON()
	runCheck()
}

// lintBench times the repo's own analyzer over the full module: a cold run
// (fresh loader, no cache) and a warm run against a pre-populated findings
// cache. The lint_cold/lint_warm spans land in BENCH_obs.json so analyzer
// performance is tracked alongside the paper experiments, matching the
// 2.5s cold budget scripts/verify.sh enforces.
func lintBench(w io.Writer, tracer *obs.Tracer) error {
	root, err := os.Getwd()
	if err != nil {
		return err
	}

	cold := tracer.Start("lint_cold")
	t0 := time.Now()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	dirs, err := loader.Expand(root, []string{"./..."})
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		return err
	}
	findings := analysis.Run(pkgs, analysis.Checks())
	coldDur := time.Since(t0)
	cold.End()

	cacheDir, err := os.MkdirTemp("", "sentrylint-bench")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(cacheDir) }() // scratch cache; best-effort cleanup
	cachePath := filepath.Join(cacheDir, "cache.json")
	warmup, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	if _, _, err := analysis.RunCached(warmup, dirs, analysis.Checks(), cachePath); err != nil {
		return err
	}

	warm := tracer.Start("lint_warm")
	t1 := time.Now()
	cached, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	warmFindings, stats, err := analysis.RunCached(cached, dirs, analysis.Checks(), cachePath)
	if err != nil {
		return err
	}
	warmDur := time.Since(t1)
	warm.End()

	_, err = fmt.Fprintf(w, "sentrylint over %d package(s): cold %v (%d finding(s)), warm %v (%d reused, %d analyzed, %d finding(s))\n",
		len(dirs), coldDur.Round(time.Millisecond), len(findings),
		warmDur.Round(time.Millisecond), stats.Hits, stats.Misses, len(warmFindings))
	return err
}
