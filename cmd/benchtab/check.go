package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"nodesentry/internal/obs"
)

// The bench-regression gate: -check reruns the experiments and compares the
// fresh stage records against the committed BENCH_obs.json baseline. Wall
// time is a one-sided bound (a faster run is fine); allocation counts and
// bytes are two-sided, so a big *improvement* also fails the gate — that is
// deliberate: it forces the baseline to be regenerated and committed, which
// is how allocation wins get ratcheted in.

// checkOpts parameterizes the comparison.
type checkOpts struct {
	// WallPct is the one-sided wall-time drift allowance in percent.
	WallPct float64
	// AllocPct is the two-sided allocation drift allowance in percent,
	// applied to both object counts and bytes.
	AllocPct float64
	// MinAllocs skips the allocation comparison for stages whose baseline
	// allocates fewer objects — tiny stages are all noise.
	MinAllocs uint64
	// MinWall skips the wall comparison for stages shorter than this in
	// the baseline.
	MinWall time.Duration
}

func defaultCheckOpts(wallPct, allocPct float64) checkOpts {
	return checkOpts{
		WallPct:   wallPct,
		AllocPct:  allocPct,
		MinAllocs: 10000,
		MinWall:   50 * time.Millisecond,
	}
}

// violation is one gate failure, always naming the offending stage.
type violation struct {
	Stage  string
	Reason string
}

func (v violation) String() string { return fmt.Sprintf("%s: %s", v.Stage, v.Reason) }

// compareBench diffs a fresh benchmark run against the committed baseline.
// requireAll demands every baseline stage appears in the fresh run (full
// -exp all runs); partial runs compare only the stages they produced.
func compareBench(base, fresh []obs.StageRecord, o checkOpts, requireAll bool) []violation {
	baseBy := map[string]obs.StageRecord{}
	for _, r := range base {
		baseBy[r.Stage] = r
	}
	freshBy := map[string]obs.StageRecord{}
	for _, r := range fresh {
		freshBy[r.Stage] = r
	}

	var out []violation
	for _, f := range fresh {
		b, ok := baseBy[f.Stage]
		if !ok {
			out = append(out, violation{f.Stage, "not in baseline; regenerate BENCH_obs.json"})
			continue
		}
		if b.Wall() >= o.MinWall {
			limit := float64(b.WallNanos) * (1 + o.WallPct/100)
			if float64(f.WallNanos) > limit {
				out = append(out, violation{f.Stage, fmt.Sprintf(
					"wall %v exceeds baseline %v by more than %.0f%%",
					f.Wall().Round(time.Millisecond), b.Wall().Round(time.Millisecond), o.WallPct)})
			}
		}
		if b.Allocs >= o.MinAllocs {
			if v := driftViolation(f.Stage, "allocs", b.Allocs, f.Allocs, o.AllocPct); v != nil {
				out = append(out, *v)
			}
			if v := driftViolation(f.Stage, "bytes", b.Bytes, f.Bytes, o.AllocPct); v != nil {
				out = append(out, *v)
			}
		}
	}
	if requireAll {
		for _, b := range base {
			if _, ok := freshBy[b.Stage]; !ok {
				out = append(out, violation{b.Stage, "present in baseline but missing from this run"})
			}
		}
	}
	return out
}

// driftViolation applies the two-sided allocation bound to one metric.
func driftViolation(stage, metric string, base, fresh uint64, pct float64) *violation {
	if base == 0 {
		return nil
	}
	drift := (float64(fresh) - float64(base)) / float64(base) * 100
	if drift > pct {
		return &violation{stage, fmt.Sprintf("%s regressed %.1f%% (baseline %d, got %d)", metric, drift, base, fresh)}
	}
	if drift < -pct {
		return &violation{stage, fmt.Sprintf(
			"%s improved %.1f%% past the gate (baseline %d, got %d) — regenerate and commit BENCH_obs.json to ratchet the win",
			metric, -drift, base, fresh)}
	}
	return nil
}

// loadBaseline reads a committed stage-record array.
func loadBaseline(path string) ([]obs.StageRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []obs.StageRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// checkAgainst runs the comparison against the baseline file and reports
// the verdict on w. It returns false — the exit-4 path — when the gate
// fails, always naming the offending stages.
func checkAgainst(baselinePath string, fresh []obs.StageRecord, o checkOpts, requireAll bool, w io.Writer) bool {
	// Verdict writes are best-effort: a broken report writer must not mask
	// the boolean verdict, which is what gates the exit code.
	base, err := loadBaseline(baselinePath)
	if err != nil {
		_, _ = fmt.Fprintf(w, "benchtab -check: %v\n", err)
		return false
	}
	viols := compareBench(base, fresh, o, requireAll)
	if len(viols) == 0 {
		_, _ = fmt.Fprintf(w, "benchtab -check: %d stages within bounds (wall +%.0f%%, allocs ±%.0f%%)\n",
			len(fresh), o.WallPct, o.AllocPct)
		return true
	}
	_, _ = fmt.Fprintf(w, "benchtab -check: %d violation(s) against %s:\n", len(viols), baselinePath)
	for _, v := range viols {
		_, _ = fmt.Fprintf(w, "  %s\n", v)
	}
	return false
}
