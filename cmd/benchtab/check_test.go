package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nodesentry/internal/obs"
)

func rec(stage string, wall time.Duration, allocs, bytes uint64) obs.StageRecord {
	return obs.StageRecord{Stage: stage, WallNanos: int64(wall), Allocs: allocs, Bytes: bytes}
}

func baseFixture() []obs.StageRecord {
	return []obs.StageRecord{
		rec("table5", 10*time.Second, 1_000_000, 2_000_000_000),
		rec("pca", 8*time.Second, 800_000, 1_500_000_000),
		rec("table3", 80*time.Microsecond, 185, 22_992), // below both noise floors
	}
}

func opts() checkOpts { return defaultCheckOpts(20, 10) }

func stagesOf(viols []violation) string {
	var b strings.Builder
	for _, v := range viols {
		b.WriteString(v.String())
		b.WriteString("\n")
	}
	return b.String()
}

func TestCheckCleanRunPasses(t *testing.T) {
	base := baseFixture()
	fresh := []obs.StageRecord{
		rec("table5", 11*time.Second, 1_050_000, 2_100_000_000), // +10% wall, +5% allocs: within bounds
		rec("pca", 7*time.Second, 790_000, 1_400_000_000),       // faster is always fine
		rec("table3", 200*time.Microsecond, 500, 60_000),        // huge relative drift, under noise floors
	}
	if viols := compareBench(base, fresh, opts(), true); len(viols) != 0 {
		t.Fatalf("clean run flagged: %s", stagesOf(viols))
	}
}

func TestCheckWallRegressionNamesStage(t *testing.T) {
	base := baseFixture()
	fresh := []obs.StageRecord{
		rec("table5", 13*time.Second, 1_000_000, 2_000_000_000), // +30% wall
		rec("pca", 8*time.Second, 800_000, 1_500_000_000),
		rec("table3", 80*time.Microsecond, 185, 22_992),
	}
	viols := compareBench(base, fresh, opts(), true)
	if len(viols) != 1 {
		t.Fatalf("want 1 violation, got %d: %s", len(viols), stagesOf(viols))
	}
	if viols[0].Stage != "table5" || !strings.Contains(viols[0].Reason, "wall") {
		t.Fatalf("violation does not name the offending stage/metric: %s", viols[0])
	}
}

func TestCheckAllocDriftIsTwoSided(t *testing.T) {
	base := baseFixture()
	// pca regresses allocs by 25%; table5 improves bytes by 80% — both must
	// fail so improvements force a baseline regeneration.
	fresh := []obs.StageRecord{
		rec("table5", 10*time.Second, 1_000_000, 400_000_000),
		rec("pca", 8*time.Second, 1_000_000, 1_500_000_000),
		rec("table3", 80*time.Microsecond, 185, 22_992),
	}
	viols := compareBench(base, fresh, opts(), true)
	if len(viols) != 2 {
		t.Fatalf("want 2 violations, got %d: %s", len(viols), stagesOf(viols))
	}
	byStage := map[string]string{}
	for _, v := range viols {
		byStage[v.Stage] = v.Reason
	}
	if !strings.Contains(byStage["pca"], "allocs regressed") {
		t.Errorf("pca violation wrong: %q", byStage["pca"])
	}
	if !strings.Contains(byStage["table5"], "improved") || !strings.Contains(byStage["table5"], "regenerate") {
		t.Errorf("table5 improvement must demand a baseline regen: %q", byStage["table5"])
	}
}

func TestCheckMissingAndUnknownStages(t *testing.T) {
	base := baseFixture()
	fresh := []obs.StageRecord{
		rec("table5", 10*time.Second, 1_000_000, 2_000_000_000),
		rec("table3", 80*time.Microsecond, 185, 22_992),
		rec("brandnew", time.Second, 1, 1),
	}
	viols := compareBench(base, fresh, opts(), true)
	if len(viols) != 2 {
		t.Fatalf("want 2 violations, got %d: %s", len(viols), stagesOf(viols))
	}
	seen := map[string]bool{}
	for _, v := range viols {
		seen[v.Stage] = true
	}
	if !seen["pca"] || !seen["brandnew"] {
		t.Fatalf("missing/unknown stages not both named: %s", stagesOf(viols))
	}
	// A partial run (-exp pca) must not be punished for the stages it
	// skipped, only for stages the baseline has never seen.
	partial := []obs.StageRecord{rec("pca", 8*time.Second, 800_000, 1_500_000_000)}
	if viols := compareBench(base, partial, opts(), false); len(viols) != 0 {
		t.Fatalf("partial run flagged: %s", stagesOf(viols))
	}
}

// TestCheckAgainstFixtureFile drives the same path main's -check uses: a
// committed baseline on disk, a fresh run with an injected regression, and
// the exit-4 verdict naming the stage.
func TestCheckAgainstFixtureFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_obs.json")
	data, err := json.Marshal(baseFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out strings.Builder
	good := []obs.StageRecord{
		rec("table5", 10*time.Second, 1_000_000, 2_000_000_000),
		rec("pca", 8*time.Second, 800_000, 1_500_000_000),
		rec("table3", 80*time.Microsecond, 185, 22_992),
	}
	if !checkAgainst(path, good, opts(), true, &out) {
		t.Fatalf("identical run failed the gate: %s", out.String())
	}

	out.Reset()
	bad := []obs.StageRecord{
		rec("table5", 10*time.Second, 5_000_000, 2_000_000_000), // 5x allocs
		rec("pca", 8*time.Second, 800_000, 1_500_000_000),
		rec("table3", 80*time.Microsecond, 185, 22_992),
	}
	if checkAgainst(path, bad, opts(), true, &out) {
		t.Fatal("regressed run passed the gate")
	}
	if !strings.Contains(out.String(), "table5") || !strings.Contains(out.String(), "allocs regressed") {
		t.Fatalf("gate output does not name the offending stage: %s", out.String())
	}

	out.Reset()
	if checkAgainst(filepath.Join(dir, "nope.json"), good, opts(), true, &out) {
		t.Fatal("missing baseline passed the gate")
	}
}
