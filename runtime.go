package nodesentry

import (
	"nodesentry/internal/diagnose"

	"nodesentry/internal/runtime"
)

// Deployment-runtime types (the paper's §5.1 workflow, Fig. 7).
type (
	// Monitor is the streaming detection engine: per-node sample
	// ingestion, job-transition pattern matching, windowed scoring,
	// dynamic thresholding, prioritized alerts.
	Monitor = runtime.Monitor
	// MonitorConfig parameterizes a Monitor.
	MonitorConfig = runtime.Config
	// Alert is one prioritized anomaly notification with diagnosis.
	Alert = runtime.Alert
	// DiagnosisReport attributes an alarm to metrics and a Table 1 fault
	// level.
	DiagnosisReport = diagnose.Report
)

// Alert priorities.
const (
	Warning  = runtime.Warning
	Critical = runtime.Critical
)

// NewMonitor builds a streaming monitor around a trained detector, cloning
// it for the scoring worker pool.
func NewMonitor(det *Detector, cfg MonitorConfig) (*Monitor, error) {
	return runtime.NewMonitor(det, cfg)
}

// ReplayDataset streams a dataset window through a monitor in timestamp
// order and returns the alerts raised — the test harness for the
// deployment path, and a template for wiring a real collector.
func ReplayDataset(ds *Dataset, m *Monitor, from, to int64) []Alert {
	return runtime.Replay(ds, m, from, to)
}

// DiagnoseAlarm attributes an alarm at sample index `at` of a raw frame to
// the deviating metrics and a Table 1 fault level, with the suggested
// remediation (as in the paper's §5.2 case study).
func DiagnoseAlarm(det *Detector, frame *NodeFrame, at, topN int) DiagnosisReport {
	return diagnose.Alarm(det, frame, at, topN)
}

// CloneDetector returns an independent copy of a detector, safe for use
// from another goroutine.
func CloneDetector(d *Detector) (*Detector, error) { return d.Clone() }
