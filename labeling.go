package nodesentry

import (
	"nodesentry/internal/features"
	"nodesentry/internal/labeling"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/preprocess"
)

// Labeling-toolkit types (the paper's artifact A₂, §4.2).
type (
	// LabelStore is an anomaly-labeling session with history.
	LabelStore = labeling.Store
	// ClusterSession is an interactive cluster-adjustment session.
	ClusterSession = labeling.ClusterSession
	// Suggestion is a detector-proposed anomalous interval.
	Suggestion = labeling.Suggestion
)

// NewLabelStore returns an empty labeling session.
func NewLabelStore() *LabelStore { return labeling.NewStore() }

// LoadLabelSession restores a session directory written by LabelStore.Save.
func LoadLabelSession(dir string) (*LabelStore, error) { return labeling.Load(dir) }

// SuggestLabels converts a detection result into labeling suggestions.
func SuggestLabels(frame *NodeFrame, res *Result, method string) []Suggestion {
	return labeling.Suggest(frame, res.Scores, res.Preds, method)
}

// SegmentFeatures extracts the coarse-clustering inputs of a dataset's
// window [from, to): the job segments of every node and their normalized
// fixed-width feature vectors (one row per segment). Feed the result to
// NewClusterSession to reproduce the tool's cluster-adjustment workflow.
func SegmentFeatures(ds *Dataset, from, to int64, minSegmentLen int) (*mat.Matrix, []mts.Segment) {
	frames := map[string]*mts.NodeFrame{}
	var segs []mts.Segment
	for _, node := range ds.Nodes() {
		f := ds.Frames[node]
		view := f.Slice(f.IndexOf(from), f.IndexOf(to)).Clone()
		preprocess.Clean(view)
		frames[node] = view
		segs = append(segs, preprocess.Segment(view, ds.SpansForNode(node, from, to), minSegmentLen)...)
	}
	F := features.Matrix(frames, segs)
	features.NormalizeColumns(F)
	return F, segs
}

// NewClusterSession clusters segments with silhouette-guided HAC and
// returns an adjustable session (the tool's functionality (3)).
func NewClusterSession(F *mat.Matrix, segs []mts.Segment, kMin, kMax int) *ClusterSession {
	return labeling.NewClusterSession(F, segs, kMin, kMax)
}
