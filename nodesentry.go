// Package nodesentry is the public API of this NodeSentry reproduction —
// an unsupervised anomaly-detection framework for compute nodes of
// large-scale HPC systems (Xia et al., SC '25) built on coarse-grained
// segment clustering and fine-grained Transformer-MoE model sharing.
//
// The typical flow:
//
//	ds := nodesentry.BuildDataset(nodesentry.D1Small())     // or import real data
//	in := nodesentry.TrainInputFromDataset(ds)
//	det, err := nodesentry.Train(in, nodesentry.DefaultOptions())
//	res := det.Detect(testFrame, spans)                      // per-node online detection
//	sum := nodesentry.EvaluateDetector(det, ds)              // paper-protocol metrics
//
// The heavy lifting lives in internal packages (see DESIGN.md for the
// inventory); this package re-exports the surface a downstream user needs:
// dataset construction, training, online detection, incremental updates,
// model persistence, and evaluation.
package nodesentry

import (
	"io"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/eval"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

// Core framework types.
type (
	// Options configures training, detection and the ablation switches.
	Options = core.Options
	// Detector is a trained NodeSentry instance.
	Detector = core.Detector
	// TrainInput is the offline phase's input.
	TrainInput = core.TrainInput
	// Result is the per-node online detection output.
	Result = core.Result
	// TrainStats summarizes the offline phase.
	TrainStats = core.TrainStats
	// UpdateReport summarizes an incremental update.
	UpdateReport = core.UpdateReport
)

// Data types.
type (
	// NodeFrame is one node's multivariate time series.
	NodeFrame = mts.NodeFrame
	// JobSpan is a scheduler accounting record projected onto one node.
	JobSpan = mts.JobSpan
	// Interval is a half-open interval of Unix seconds.
	Interval = mts.Interval
	// Labels maps nodes to ground-truth anomaly intervals.
	Labels = mts.Labels
	// Dataset is a synthetic (or imported) evaluation dataset.
	Dataset = dataset.Dataset
	// DatasetConfig parameterizes synthetic dataset generation.
	DatasetConfig = dataset.Config
	// Summary is the aggregated evaluation result (Table 4 row).
	Summary = eval.Summary
)

// DefaultOptions returns the paper-faithful configuration at CPU-tractable
// model sizes.
func DefaultOptions() Options { return core.DefaultOptions() }

// Train runs the offline phase: preprocessing, coarse-grained clustering,
// and per-cluster shared-model training.
func Train(in TrainInput, opts Options) (*Detector, error) { return core.Train(in, opts) }

// LoadDetector restores a detector saved with Detector.Save.
func LoadDetector(r io.Reader) (*Detector, error) { return core.Load(r) }

// BuildDataset materializes a synthetic dataset (scheduler + telemetry +
// fault injection).
func BuildDataset(cfg DatasetConfig) *Dataset { return dataset.Build(cfg) }

// ImportDataset reads a dataset previously written with Dataset.Export.
func ImportDataset(dir string) (*Dataset, error) { return dataset.Import(dir) }

// Dataset presets mirroring the paper's D1/D2 at laptop scale, the public
// artifact sample, and a fast test preset.
func D1Small() DatasetConfig        { return dataset.D1Small() }
func D2Small() DatasetConfig        { return dataset.D2Small() }
func ArtifactSample() DatasetConfig { return dataset.ArtifactSample() }
func TinyDataset() DatasetConfig    { return dataset.Tiny() }

// TrainInputFromDataset assembles the offline phase's input from a
// dataset's training split: raw frames, per-node job spans, and the metric
// semantic groups that drive aggregation-based reduction.
func TrainInputFromDataset(ds *Dataset) TrainInput {
	in := TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]JobSpan{},
		SemanticGroups: SemanticGroups(ds),
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	return in
}

// SemanticGroups extracts the metric aggregation groups of a dataset's
// catalog (per-core expansions and aliases of the same physical quantity).
func SemanticGroups(ds *Dataset) map[string][]int {
	groups := map[string][]int{}
	for sem, rows := range telemetry.SemanticIndex(ds.Catalog) {
		groups[sem] = rows
	}
	return groups
}

// EvaluateDetector runs the detector over every node's test split and
// aggregates Precision/Recall/AUC/F1 under the paper's protocol
// (point-adjustment, 1-minute transition exclusion, per-node averaging).
func EvaluateDetector(d *Detector, ds *Dataset) Summary {
	var results []eval.NodeResult
	test := ds.TestFrames()
	for _, node := range ds.Nodes() {
		frame := test[node]
		spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
		res := d.Detect(frame, spans)
		results = append(results, EvaluateNodeOutput(ds, frame, spans, res.Scores, res.Preds))
	}
	return eval.Aggregate(results)
}

// EvaluateNodeOutput scores one node's detection output under the paper's
// protocol. Exposed for evaluating external detectors (the baselines use
// it through the experiment harness).
func EvaluateNodeOutput(ds *Dataset, frame *NodeFrame, spans []JobSpan, scores []float64, preds []bool) eval.NodeResult {
	label := ds.Labels.Mask(frame)
	ignore := eval.TransitionIgnoreMask(frame, spans, 60)
	return eval.EvaluateNode(scores, preds, label, ignore)
}

// AggregateNodeResults combines per-node results into a Summary.
func AggregateNodeResults(results []eval.NodeResult) Summary {
	return eval.Aggregate(results)
}
