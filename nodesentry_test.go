package nodesentry_test

import (
	"bytes"
	"math"
	"testing"

	"nodesentry"
)

// The root-package tests exercise the public API end to end, the way the
// examples and a downstream user would.

func apiFixture(t *testing.T) (*nodesentry.Dataset, *nodesentry.Detector) {
	t.Helper()
	ds := nodesentry.BuildDataset(nodesentry.TinyDataset())
	opts := nodesentry.DefaultOptions()
	opts.Epochs = 4
	opts.MaxWindowsPerCluster = 60
	det, err := nodesentry.Train(nodesentry.TrainInputFromDataset(ds), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, det
}

func TestPublicAPIEndToEnd(t *testing.T) {
	ds, det := apiFixture(t)
	sum := nodesentry.EvaluateDetector(det, ds)
	if sum.F1 <= 0 || sum.AUC <= 0.5 {
		t.Errorf("public pipeline quality too low: %+v", sum)
	}
}

func TestPublicSaveLoad(t *testing.T) {
	ds, det := apiFixture(t)
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := nodesentry.LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	node := ds.Nodes()[0]
	frame := ds.TestFrames()[node]
	spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
	a := det.Detect(frame, spans)
	b := loaded.Detect(frame, spans)
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-12 {
			t.Fatal("loaded detector diverges")
		}
	}
}

func TestPublicDatasetRoundTrip(t *testing.T) {
	cfg := nodesentry.TinyDataset()
	cfg.Nodes = 2
	cfg.HorizonDays = 0.3
	ds := nodesentry.BuildDataset(cfg)
	dir := t.TempDir()
	if err := ds.Export(dir); err != nil {
		t.Fatal(err)
	}
	got, err := nodesentry.ImportDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summarize().TotalPoints != ds.Summarize().TotalPoints {
		t.Error("round-trip changed the dataset")
	}
}

func TestPublicLabelingWorkflow(t *testing.T) {
	ds, det := apiFixture(t)
	node := ds.Nodes()[0]
	frame := ds.TestFrames()[node]
	spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
	res := det.Detect(frame, spans)
	store := nodesentry.NewLabelStore()
	for _, s := range nodesentry.SuggestLabels(frame, res, "test") {
		if err := store.Accept(s); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	if err := store.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := nodesentry.LoadLabelSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Labels()) != len(store.Labels()) {
		t.Error("label session did not round-trip")
	}
}

func TestPublicClusterSession(t *testing.T) {
	ds, _ := apiFixture(t)
	F, segs := nodesentry.SegmentFeatures(ds, 0, ds.SplitTime(), 16)
	if F.Rows != len(segs) || F.Rows == 0 {
		t.Fatalf("feature matrix %d rows for %d segments", F.Rows, len(segs))
	}
	cs := nodesentry.NewClusterSession(F, segs, 2, 8)
	if cs.NumClusters() < 2 {
		t.Errorf("clustering found %d clusters", cs.NumClusters())
	}
}

func TestPublicIncrementalUpdate(t *testing.T) {
	ds, det := apiFixture(t)
	node := ds.Nodes()[0]
	frame := ds.TestFrames()[node]
	spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
	rep, err := det.IncrementalUpdate(frame, spans, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchedSegments+rep.UnmatchedSegments == 0 {
		t.Error("incremental update processed nothing")
	}
}
