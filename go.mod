module nodesentry

go 1.22
