package summary

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"nodesentry/internal/obs"
)

// Transition names one incident lifecycle edge, delivered alongside the
// incident snapshot to OnIncident.
type Transition string

const (
	// Opened: a new incident folded its first batch of alerts.
	Opened Transition = "open"
	// Updated: an open incident absorbed more alerts (its member lists,
	// counts and severity rollup changed). Updates amend an existing
	// semantic event — sinks typically journal them without re-paging.
	Updated Transition = "update"
	// Resolved: the incident saw no new alerts for ResolveAfter (or the
	// summarizer closed) and left the open set.
	Resolved Transition = "resolve"
)

// Incident is one live (or recently resolved) semantic event: a cluster
// of alerts sharing a metric family and a time window, described by the
// constant tags (shared context) and the varying dimension it spans.
type Incident struct {
	ID    string `json:"id"`
	State string `json:"state"` // "open" | "resolved"
	// Title is the operator-facing one-liner, e.g.
	// "Memory anomaly across 24 nodes (job=8812)".
	Title string `json:"title"`
	// Metric is the family the cluster groups on.
	Metric  string `json:"metric"`
	FirstTs int64  `json:"first_ts"`
	LastTs  int64  `json:"last_ts"`
	// Count is how many alerts folded into this incident.
	Count int `json:"count"`
	// Severity is the maximum alert score seen; Priority the maximum
	// alert priority (the rollup an operator triages by).
	Severity float64 `json:"severity"`
	Priority int     `json:"priority"`
	// ConstantTags is the shared context; VaryingTags the distinct values
	// per varying key (each list capped at MemberCap, sorted).
	ConstantTags map[string]string   `json:"constant_tags"`
	VaryingTags  map[string][]string `json:"varying_tags"`
	// Dimension is the varying key the incident spans (usually "node");
	// its VaryingTags entry is the member list.
	Dimension string `json:"dimension"`
	// Truncated is set when a member list hit MemberCap and further
	// distinct values were counted but not retained.
	Truncated bool `json:"truncated,omitempty"`
}

// incState is one open incident's internal accumulator: per-key presence
// counts and capped distinct-value sets, re-partitioned into
// constant/varying on every emission.
type incState struct {
	inc  Incident
	keys map[string]*incKey
}

type incKey struct {
	seen   map[string]struct{}
	values []string // retained distinct values (≤ MemberCap)
	count  int      // events carrying this key
	extra  int      // distinct values beyond the cap (counted, not kept)
}

// Stats is the summarizer's exact accounting. At any quiescent point
// (after Close, or after a Flush with nothing pending)
//
//	Observed == Folded + Raw
//
// holds: every observed alert either folded into exactly one incident or
// was emitted raw. Overflow counts the subset of Raw spilled because the
// pending ring was full.
type Stats struct {
	Observed int64 `json:"observed"`
	Folded   int64 `json:"folded"`
	Raw      int64 `json:"raw"`
	Overflow int64 `json:"overflow"`
	Opened   int64 `json:"opened"`
	Updated  int64 `json:"updated"`
	Resolved int64 `json:"resolved"`
}

// Emissions is the number of semantic events a sink saw: one per opened
// and resolved incident plus every raw alert (updates amend an existing
// event). The compression ratio is Observed/Emissions.
func (s Stats) Emissions() int64 { return s.Opened + s.Resolved + s.Raw }

// Config parameterizes a Summarizer.
type Config struct {
	// Window is the batching horizon: Run flushes the pending ring every
	// Window, so alerts within one window cluster together (default 5s).
	Window time.Duration
	// ResolveAfter resolves an open incident once it has absorbed no new
	// alerts for this long (default 60s).
	ResolveAfter time.Duration
	// MinGroup is the smallest same-family batch that opens a new
	// incident (default 3); smaller groups emit raw unless an incident
	// for the family is already open.
	MinGroup int
	// MemberCap bounds the retained distinct values per varying key of
	// one incident (default 64); beyond it values are counted as extra
	// and the incident is marked Truncated.
	MemberCap int
	// PendingCap bounds the pending-event ring between flushes (default
	// 4096). When full, Observe spills the oldest semantics-free: the
	// incoming event is emitted raw immediately, keeping the accounting
	// exact instead of blocking the alert consumer.
	PendingCap int
	// MaxOpen bounds the live incident set (default 128); batches that
	// would exceed it emit raw.
	MaxOpen int
	// ResolvedKeep bounds the recently-resolved list served next to the
	// open set (default 64).
	ResolvedKeep int

	// OnIncident, when non-nil, observes every lifecycle transition with
	// an incident snapshot (safe to retain). OnRaw observes every event
	// that did not fold. Both run on the flushing goroutine — and, for
	// ring-overflow spills, on the Observe caller.
	OnIncident func(Incident, Transition)
	OnRaw      func(Event)

	// Metrics, when non-nil, receives the nodesentry_summary_* series.
	Metrics *obs.Registry
	// Logger, when non-nil, receives incident transitions at Info.
	Logger *slog.Logger
	// Clock overrides time.Now (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 5 * time.Second
	}
	if c.ResolveAfter <= 0 {
		c.ResolveAfter = 60 * time.Second
	}
	if c.MinGroup <= 0 {
		c.MinGroup = 3
	}
	if c.MemberCap <= 0 {
		c.MemberCap = 64
	}
	if c.PendingCap <= 0 {
		c.PendingCap = 4096
	}
	if c.MaxOpen <= 0 {
		c.MaxOpen = 128
	}
	if c.ResolvedKeep <= 0 {
		c.ResolvedKeep = 64
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

type summaryMetrics struct {
	observed *obs.Counter
	folded   *obs.Counter
	raw      *obs.Counter
	open     *obs.Gauge
	ratio    *obs.Gauge
}

func newSummaryMetrics(r *obs.Registry) summaryMetrics {
	return summaryMetrics{
		observed: r.Counter("nodesentry_summary_alerts_observed_total"),
		folded:   r.Counter("nodesentry_summary_alerts_folded_total"),
		raw:      r.Counter("nodesentry_summary_alerts_raw_total"),
		open:     r.Gauge("nodesentry_summary_incidents_open"),
		ratio:    r.Gauge("nodesentry_summary_compression_ratio"),
	}
}

// Summarizer is the streaming windowed clusterer. Feed it with Observe on
// the alert consumer's goroutine, drive batching with Run (or Flush
// directly in tests), and Close to flush the tail and resolve every open
// incident — after Close the Stats invariant Observed == Folded + Raw
// holds exactly.
type Summarizer struct {
	cfg Config
	met summaryMetrics
	log *slog.Logger

	mu       sync.Mutex
	pend     []Event // preallocated ring
	head, n  int
	open     map[string]*incState // metric family → live incident
	resolved []Incident           // most recent last, ≤ ResolvedKeep
	stats    Stats
	seq      int64

	// flushMu serializes Flush/Close so transition callbacks for one
	// incident are delivered in order even if a test races Flush calls.
	flushMu sync.Mutex

	done      chan struct{}
	closeOnce sync.Once
}

// New builds a summarizer. Nothing runs until Run is called; Observe and
// Flush work immediately.
func New(cfg Config) *Summarizer {
	cfg = cfg.withDefaults()
	return &Summarizer{
		cfg:  cfg,
		met:  newSummaryMetrics(cfg.Metrics),
		log:  cfg.Logger,
		pend: make([]Event, cfg.PendingCap),
		open: map[string]*incState{},
		done: make(chan struct{}),
	}
}

// Observe enqueues one alert-derived event for the next fold pass.
//
// not allocate. When the pending ring is full the event spills to the raw
// path via the OnRaw callback (a field call, off the lint closure) —
// accounting stays exact and the caller never blocks on a fold.
//
//perf:hot Observe sits on the alert consumer's per-alert path; it must
func (s *Summarizer) Observe(e Event) {
	s.mu.Lock()
	s.stats.Observed++
	s.met.observed.Inc()
	if s.n == len(s.pend) {
		s.stats.Raw++
		s.stats.Overflow++
		s.met.raw.Inc()
		cb := s.cfg.OnRaw
		s.mu.Unlock()
		if cb != nil {
			cb(e)
		}
		return
	}
	s.pend[(s.head+s.n)%len(s.pend)] = e
	s.n++
	s.mu.Unlock()
}

// Run flushes the pending ring every Window until ctx is canceled or
// Close is called.
func (s *Summarizer) Run(ctx ctxDone) {
	t := time.NewTicker(s.cfg.Window)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.done:
			return
		case <-t.C:
			s.Flush(s.cfg.Clock())
		}
	}
}

// ctxDone is the subset of context.Context Run needs (fleetview's idiom).
type ctxDone interface{ Done() <-chan struct{} }

// Close stops Run, folds the pending tail and resolves every open
// incident, emitting the final transitions. Idempotent.
func (s *Summarizer) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.flush(s.cfg.Clock(), true)
	})
}

// Flush runs one fold pass at now: drain the pending ring, group by
// metric family, fold each group into its open incident (or open a new
// one when the group reaches MinGroup), emit the rest raw, then resolve
// incidents quiet for ResolveAfter.
func (s *Summarizer) Flush(now time.Time) {
	s.flush(now, false)
}

// emission is one deferred callback, invoked after the state lock drops.
type emission struct {
	inc   Incident
	trans Transition
	raw   Event
	isRaw bool
}

func (s *Summarizer) flush(now time.Time, closing bool) {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()

	s.mu.Lock()
	batch := make([]Event, 0, s.n)
	for i := 0; i < s.n; i++ {
		batch = append(batch, s.pend[(s.head+i)%len(s.pend)])
	}
	s.head, s.n = 0, 0

	// Group by metric family, preserving deterministic family order.
	groups := map[string][]Event{}
	var order []string
	for _, e := range batch {
		key := e.Metric
		if key == "" {
			key = "Unknown"
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], e)
	}
	sort.Strings(order)

	var ems []emission
	for _, key := range order {
		evs := groups[key]
		st, isOpen := s.open[key]
		switch {
		case isOpen:
			s.foldLocked(st, evs)
			s.stats.Folded += int64(len(evs))
			s.met.folded.Add(int64(len(evs)))
			s.stats.Updated++
			ems = append(ems, emission{inc: st.snapshot(), trans: Updated})
		case len(evs) >= s.cfg.MinGroup && len(s.open) < s.cfg.MaxOpen:
			s.seq++
			st = &incState{
				inc: Incident{
					ID:      fmt.Sprintf("inc-%06d", s.seq),
					State:   "open",
					Metric:  key,
					FirstTs: evs[0].Ts,
					LastTs:  evs[0].Ts,
				},
				keys: map[string]*incKey{},
			}
			s.foldLocked(st, evs)
			s.open[key] = st
			s.stats.Folded += int64(len(evs))
			s.met.folded.Add(int64(len(evs)))
			s.stats.Opened++
			ems = append(ems, emission{inc: st.snapshot(), trans: Opened})
		default:
			for _, e := range evs {
				s.stats.Raw++
				s.met.raw.Inc()
				ems = append(ems, emission{raw: e, isRaw: true})
			}
		}
	}

	// Resolve pass: incidents quiet past the horizon — or all of them
	// when closing — leave the open set.
	horizon := now.Add(-s.cfg.ResolveAfter).Unix()
	families := make([]string, 0, len(s.open))
	for key := range s.open {
		families = append(families, key)
	}
	sort.Strings(families)
	for _, key := range families {
		st := s.open[key]
		if !closing && st.inc.LastTs > horizon {
			continue
		}
		delete(s.open, key)
		st.inc.State = "resolved"
		s.stats.Resolved++
		snap := st.snapshot()
		s.resolved = append(s.resolved, snap)
		if len(s.resolved) > s.cfg.ResolvedKeep {
			s.resolved = s.resolved[len(s.resolved)-s.cfg.ResolvedKeep:]
		}
		ems = append(ems, emission{inc: snap, trans: Resolved})
	}

	s.met.open.Set(float64(len(s.open)))
	if em := s.stats.Emissions(); em > 0 {
		s.met.ratio.Set(float64(s.stats.Observed) / float64(em))
	}
	s.mu.Unlock()

	for _, em := range ems {
		if em.isRaw {
			if s.cfg.OnRaw != nil {
				s.cfg.OnRaw(em.raw)
			}
			continue
		}
		if s.log != nil {
			s.log.Info("incident "+string(em.trans), "id", em.inc.ID, "title", em.inc.Title,
				"count", em.inc.Count, "dimension", em.inc.Dimension)
		}
		if s.cfg.OnIncident != nil {
			s.cfg.OnIncident(em.inc, em.trans)
		}
	}
}

// foldLocked absorbs evs into st: counts, time span, severity rollup, and
// the per-key distinct-value accumulators.
func (s *Summarizer) foldLocked(st *incState, evs []Event) {
	for _, e := range evs {
		st.inc.Count++
		if st.inc.FirstTs == 0 || e.Ts < st.inc.FirstTs {
			st.inc.FirstTs = e.Ts
		}
		if e.Ts > st.inc.LastTs {
			st.inc.LastTs = e.Ts
		}
		if e.Severity > st.inc.Severity {
			st.inc.Severity = e.Severity
		}
		if e.Priority > st.inc.Priority {
			st.inc.Priority = e.Priority
		}
		for k, v := range e.Tags {
			ik, ok := st.keys[k]
			if !ok {
				ik = &incKey{seen: map[string]struct{}{}}
				st.keys[k] = ik
			}
			ik.count++
			if _, dup := ik.seen[v]; dup {
				continue
			}
			if len(ik.values) >= s.cfg.MemberCap {
				ik.extra++
				st.inc.Truncated = true
				continue
			}
			ik.seen[v] = struct{}{}
			ik.values = append(ik.values, v)
		}
	}
}

// snapshot renders the incident's public view from the accumulators:
// re-partitioned constant/varying tags, the spanning dimension, and the
// refreshed title. The returned value shares nothing with live state.
func (st *incState) snapshot() Incident {
	inc := st.inc
	part := TagPartition{ConstantTags: map[string]string{}, VaryingTags: map[string][]string{}}
	for k, ik := range st.keys {
		if ik.count == inc.Count && len(ik.values) == 1 && ik.extra == 0 {
			part.ConstantTags[k] = ik.values[0]
			continue
		}
		vs := append([]string(nil), ik.values...)
		sort.Strings(vs)
		part.VaryingTags[k] = vs
	}
	inc.ConstantTags = part.ConstantTags
	inc.VaryingTags = part.VaryingTags
	inc.Dimension = part.Dimension()
	inc.Title = title(inc.Metric, part, inc.Count)
	return inc
}

// Snapshot is the /fleet/incidents response body: the live incident set
// (family-sorted), the recently resolved tail (oldest first) and the
// accounting totals.
type Snapshot struct {
	Open     []Incident `json:"open"`
	Resolved []Incident `json:"resolved"`
	Stats    Stats      `json:"stats"`
}

// Incidents returns the current snapshot.
func (s *Summarizer) Incidents() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{
		Open:     make([]Incident, 0, len(s.open)),
		Resolved: append([]Incident{}, s.resolved...),
		Stats:    s.stats,
	}
	families := make([]string, 0, len(s.open))
	for key := range s.open {
		families = append(families, key)
	}
	sort.Strings(families)
	for _, key := range families {
		snap.Open = append(snap.Open, s.open[key].snapshot())
	}
	return snap
}

// Stats returns the accounting totals so far.
func (s *Summarizer) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// OpenCount returns the live incident count (tests, gauges).
func (s *Summarizer) OpenCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.open)
}
