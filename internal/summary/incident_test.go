package summary

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"nodesentry/internal/obs"
	"nodesentry/internal/testutil"
)

// recorder captures every transition and raw emission.
type recorder struct {
	mu    sync.Mutex
	trans []string // "open inc-000001", ...
	incs  map[string]Incident
	raw   []Event
}

func (r *recorder) hook(cfg *Config) {
	r.incs = map[string]Incident{}
	cfg.OnIncident = func(inc Incident, tr Transition) {
		r.mu.Lock()
		r.trans = append(r.trans, string(tr)+" "+inc.ID)
		r.incs[inc.ID] = inc
		r.mu.Unlock()
	}
	cfg.OnRaw = func(e Event) {
		r.mu.Lock()
		r.raw = append(r.raw, e)
		r.mu.Unlock()
	}
}

func memEvent(ts int64, node string) Event {
	return Event{
		Ts: ts, Metric: "Memory", Severity: 5, Priority: 1,
		Tags: map[string]string{"node": node, "job": "8812", "level": "Memory"},
	}
}

// A flood of same-family alerts across many nodes folds into exactly one
// incident with node as the dimension and job/level preserved as
// constant; later batches update it; quiet resolves it.
func TestIncidentLifecycle(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	var rec recorder
	now := time.Unix(1000, 0)
	cfg := Config{
		Window:       time.Second,
		ResolveAfter: 30 * time.Second,
		MinGroup:     3,
		Clock:        func() time.Time { return now },
	}
	rec.hook(&cfg)
	s := New(cfg)
	defer s.Close()

	for i := 0; i < 20; i++ {
		s.Observe(memEvent(1000, fmt.Sprintf("cn%02d", i)))
	}
	s.Flush(now)

	snap := s.Incidents()
	if len(snap.Open) != 1 {
		t.Fatalf("open incidents = %d, want 1", len(snap.Open))
	}
	inc := snap.Open[0]
	if inc.Dimension != "node" || len(inc.VaryingTags["node"]) != 20 {
		t.Fatalf("dimension %q members %v", inc.Dimension, inc.VaryingTags["node"])
	}
	if inc.ConstantTags["job"] != "8812" || inc.ConstantTags["level"] != "Memory" {
		t.Fatalf("constant tags lost: %v", inc.ConstantTags)
	}
	if inc.Count != 20 || inc.State != "open" {
		t.Fatalf("count=%d state=%s", inc.Count, inc.State)
	}
	if !strings.Contains(inc.Title, "Memory anomaly across 20 nodes") ||
		!strings.Contains(inc.Title, "job=8812") {
		t.Fatalf("title = %q", inc.Title)
	}

	// A follow-up burst folds into the same incident (update, not a new
	// open), even below MinGroup.
	now = now.Add(5 * time.Second)
	s.Observe(memEvent(1005, "cn99"))
	s.Flush(now)
	if got := s.Incidents(); len(got.Open) != 1 || got.Open[0].Count != 21 {
		t.Fatalf("after update: %+v", got.Open)
	}

	// Quiet past ResolveAfter resolves it.
	now = now.Add(31 * time.Second)
	s.Flush(now)
	snap = s.Incidents()
	if len(snap.Open) != 0 || len(snap.Resolved) != 1 {
		t.Fatalf("open=%d resolved=%d, want 0/1", len(snap.Open), len(snap.Resolved))
	}
	if snap.Resolved[0].State != "resolved" {
		t.Fatalf("state = %q", snap.Resolved[0].State)
	}

	rec.mu.Lock()
	trans := append([]string(nil), rec.trans...)
	rec.mu.Unlock()
	want := []string{"open inc-000001", "update inc-000001", "resolve inc-000001"}
	if len(trans) != len(want) {
		t.Fatalf("transitions = %v, want %v", trans, want)
	}
	for i := range want {
		if trans[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", trans, want)
		}
	}

	st := s.Stats()
	if st.Observed != 21 || st.Folded != 21 || st.Raw != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Emissions() != 2 { // open + resolve
		t.Fatalf("emissions = %d, want 2", st.Emissions())
	}
}

// Groups below MinGroup with no open incident emit raw — and the exact
// Raw payload comes back out.
func TestSmallGroupsEmitRaw(t *testing.T) {
	var rec recorder
	now := time.Unix(1000, 0)
	cfg := Config{MinGroup: 3, Clock: func() time.Time { return now }}
	rec.hook(&cfg)
	s := New(cfg)
	defer s.Close()

	e := memEvent(1000, "cn01")
	e.Raw = "payload-1"
	s.Observe(e)
	s.Observe(Event{Ts: 1000, Metric: "CPU", Tags: map[string]string{"node": "cn02"}})
	s.Flush(now)

	if n := s.OpenCount(); n != 0 {
		t.Fatalf("open = %d, want 0", n)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.raw) != 2 {
		t.Fatalf("raw = %d, want 2", len(rec.raw))
	}
	found := false
	for _, r := range rec.raw {
		if r.Raw == "payload-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("raw payload not preserved")
	}
	st := s.Stats()
	if st.Observed != 2 || st.Raw != 2 || st.Folded != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// Different metric families stay separate incidents.
func TestFamiliesClusterSeparately(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Config{MinGroup: 2, Clock: func() time.Time { return now }})
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Observe(memEvent(1000, fmt.Sprintf("m%d", i)))
		e := memEvent(1000, fmt.Sprintf("c%d", i))
		e.Metric = "CPU"
		e.Tags["level"] = "CPU"
		s.Observe(e)
	}
	s.Flush(now)
	snap := s.Incidents()
	if len(snap.Open) != 2 {
		t.Fatalf("open = %d, want 2 (CPU + Memory)", len(snap.Open))
	}
	// Family-sorted: CPU first.
	if snap.Open[0].Metric != "CPU" || snap.Open[1].Metric != "Memory" {
		t.Fatalf("families = %s,%s", snap.Open[0].Metric, snap.Open[1].Metric)
	}
}

// Member lists stay bounded: beyond MemberCap distinct values the
// incident is marked truncated, and severity/priority roll up to maxima.
func TestMemberCapAndRollup(t *testing.T) {
	now := time.Unix(1000, 0)
	s := New(Config{MinGroup: 3, MemberCap: 8, Clock: func() time.Time { return now }})
	defer s.Close()
	for i := 0; i < 40; i++ {
		e := memEvent(1000+int64(i), fmt.Sprintf("cn%02d", i))
		e.Severity = float64(i)
		if i == 17 {
			e.Priority = 2
		}
		s.Observe(e)
	}
	s.Flush(now)
	snap := s.Incidents()
	if len(snap.Open) != 1 {
		t.Fatalf("open = %d, want 1", len(snap.Open))
	}
	inc := snap.Open[0]
	if !inc.Truncated || len(inc.VaryingTags["node"]) != 8 {
		t.Fatalf("truncated=%v members=%d, want true/8", inc.Truncated, len(inc.VaryingTags["node"]))
	}
	if inc.Severity != 39 || inc.Priority != 2 {
		t.Fatalf("severity=%v priority=%d, want 39/2", inc.Severity, inc.Priority)
	}
	if inc.FirstTs != 1000 || inc.LastTs != 1039 {
		t.Fatalf("span = [%d,%d]", inc.FirstTs, inc.LastTs)
	}
}

// Ring overflow spills raw instead of blocking or dropping: accounting
// stays exact (Observed == Folded + Raw after Close).
func TestPendingOverflowSpillsRaw(t *testing.T) {
	var rec recorder
	now := time.Unix(1000, 0)
	cfg := Config{PendingCap: 16, MinGroup: 3, Clock: func() time.Time { return now }}
	rec.hook(&cfg)
	s := New(cfg)
	for i := 0; i < 50; i++ {
		s.Observe(memEvent(1000, fmt.Sprintf("cn%02d", i)))
	}
	s.Close()

	st := s.Stats()
	if st.Observed != 50 {
		t.Fatalf("observed = %d", st.Observed)
	}
	if st.Folded+st.Raw != st.Observed {
		t.Fatalf("folded(%d) + raw(%d) != observed(%d)", st.Folded, st.Raw, st.Observed)
	}
	if st.Overflow != 50-16 {
		t.Fatalf("overflow = %d, want %d", st.Overflow, 50-16)
	}
	if s.OpenCount() != 0 {
		t.Fatal("Close must resolve every incident")
	}
}

// Close is idempotent and final: pending tail folds, all incidents
// resolve, Run exits.
func TestRunAndClose(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	s := New(Config{Window: 5 * time.Millisecond, MinGroup: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(ctx)
	}()
	for i := 0; i < 10; i++ {
		s.Observe(memEvent(time.Now().Unix(), fmt.Sprintf("cn%02d", i)))
	}
	testutil.Eventually(t, "flood folded", func() error {
		if st := s.Stats(); st.Folded != 10 {
			return fmt.Errorf("folded = %d", st.Folded)
		}
		return nil
	})
	s.Close()
	s.Close()
	<-done
	if s.OpenCount() != 0 {
		t.Fatal("open incidents survived Close")
	}
}

// The /metrics series reconcile with Stats, and the folded webhook body
// round-trips with the documented fields.
func TestMetricsAndWebhookJSON(t *testing.T) {
	reg := obs.NewRegistry()
	now := time.Unix(1000, 0)
	s := New(Config{MinGroup: 3, Metrics: reg, Clock: func() time.Time { return now }})
	for i := 0; i < 12; i++ {
		s.Observe(memEvent(1000, fmt.Sprintf("cn%02d", i)))
	}
	s.Flush(now)

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"nodesentry_summary_alerts_observed_total 12",
		"nodesentry_summary_alerts_folded_total 12",
		"nodesentry_summary_incidents_open 1",
		"nodesentry_summary_compression_ratio 12",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}

	inc := s.Incidents().Open[0]
	body, err := WebhookJSON(inc, Opened)
	if err != nil {
		t.Fatal(err)
	}
	var p map[string]any
	if err := json.Unmarshal(body, &p); err != nil {
		t.Fatal(err)
	}
	if p["kind"] != "open" || p["dimension"] != "node" || p["count"] != float64(12) {
		t.Fatalf("payload = %v", p)
	}
	if members, ok := p["members"].([]any); !ok || len(members) != 12 {
		t.Fatalf("members = %v", p["members"])
	}
	s.Close()
}
