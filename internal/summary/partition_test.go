package summary

import (
	"fmt"
	"reflect"
	"testing"
)

func ev(metric string, tags map[string]string) Event {
	return Event{Metric: metric, Tags: tags}
}

// Single-dimension variation: 6 disk events with different device values →
// VaryingTags{device: [6 values]}, host (present on all) constant.
func TestPartitionTags_SingleDimension(t *testing.T) {
	var events []Event
	for i := 0; i < 6; i++ {
		events = append(events, ev("Disk", map[string]string{
			"device": fmt.Sprintf("disk%d", i),
			"host":   "node-1",
		}))
	}
	p := PartitionTags(events)
	if want := map[string]string{"host": "node-1"}; !reflect.DeepEqual(p.ConstantTags, want) {
		t.Fatalf("constant = %v, want %v", p.ConstantTags, want)
	}
	if got := p.VaryingTags["device"]; len(got) != 6 {
		t.Fatalf("device values = %v, want 6 distinct", got)
	}
	if len(p.VaryingTags) != 1 {
		t.Fatalf("varying keys = %v, want only device", p.VaryingTags)
	}
	if dim := p.Dimension(); dim != "device" {
		t.Fatalf("dimension = %q, want device", dim)
	}
}

// Multi-dimension variation: events varying by both device and host →
// both appear in VaryingTags.
func TestPartitionTags_MultiDimension(t *testing.T) {
	var events []Event
	for i := 0; i < 4; i++ {
		events = append(events, ev("Disk", map[string]string{
			"device": fmt.Sprintf("disk%d", i),
			"host":   fmt.Sprintf("node-%d", i%2),
			"env":    "prod",
		}))
	}
	p := PartitionTags(events)
	if _, ok := p.VaryingTags["device"]; !ok {
		t.Fatalf("device missing from varying: %v", p.VaryingTags)
	}
	if _, ok := p.VaryingTags["host"]; !ok {
		t.Fatalf("host missing from varying: %v", p.VaryingTags)
	}
	if p.ConstantTags["env"] != "prod" {
		t.Fatalf("env should stay constant: %v", p.ConstantTags)
	}
	// device has 4 distinct values vs host's 2: device is the dimension.
	if dim := p.Dimension(); dim != "device" {
		t.Fatalf("dimension = %q, want device", dim)
	}
}

// Mixed constant/varying: all events share env:prod but differ in
// container_id.
func TestPartitionTags_MixedConstantVarying(t *testing.T) {
	var events []Event
	for i := 0; i < 5; i++ {
		events = append(events, ev("Memory", map[string]string{
			"env":          "prod",
			"container_id": fmt.Sprintf("c-%04d", i),
		}))
	}
	p := PartitionTags(events)
	if want := map[string]string{"env": "prod"}; !reflect.DeepEqual(p.ConstantTags, want) {
		t.Fatalf("constant = %v, want %v", p.ConstantTags, want)
	}
	if got := p.VaryingTags["container_id"]; len(got) != 5 {
		t.Fatalf("container_id values = %v, want 5", got)
	}
}

// No tags: both maps empty (and non-nil, so JSON encodes as {}).
func TestPartitionTags_NoTags(t *testing.T) {
	events := []Event{ev("CPU", nil), ev("CPU", map[string]string{})}
	p := PartitionTags(events)
	if p.ConstantTags == nil || p.VaryingTags == nil {
		t.Fatal("maps must be non-nil")
	}
	if len(p.ConstantTags) != 0 || len(p.VaryingTags) != 0 {
		t.Fatalf("want empty maps, got constant=%v varying=%v", p.ConstantTags, p.VaryingTags)
	}
	if dim := p.Dimension(); dim != "" {
		t.Fatalf("dimension = %q, want empty", dim)
	}
}

// Single event: every tag is constant — the degenerate case.
func TestPartitionTags_SingleEvent(t *testing.T) {
	p := PartitionTags([]Event{ev("Memory", map[string]string{
		"node": "node-7", "job": "8812", "level": "Memory",
	})})
	want := map[string]string{"node": "node-7", "job": "8812", "level": "Memory"}
	if !reflect.DeepEqual(p.ConstantTags, want) {
		t.Fatalf("constant = %v, want %v", p.ConstantTags, want)
	}
	if len(p.VaryingTags) != 0 {
		t.Fatalf("varying = %v, want empty", p.VaryingTags)
	}
}

// Real fleet scenario: one job's nodes all alert on memory from two
// scorers — node varies (the dimension), scorer varies, job and level
// stay constant; a key missing from some events (gpu) is varying too.
func TestPartitionTags_RealFleetScenario(t *testing.T) {
	var events []Event
	for i := 0; i < 32; i++ {
		tags := map[string]string{
			"node":   fmt.Sprintf("cn%02d", i),
			"job":    "8812",
			"level":  "Memory",
			"scorer": fmt.Sprintf("scorer-%d", i%2),
		}
		if i%4 == 0 {
			tags["gpu"] = "0"
		}
		events = append(events, ev("Memory", tags))
	}
	p := PartitionTags(events)
	if p.ConstantTags["job"] != "8812" || p.ConstantTags["level"] != "Memory" {
		t.Fatalf("job/level should be constant: %v", p.ConstantTags)
	}
	if got := p.VaryingTags["node"]; len(got) != 32 {
		t.Fatalf("node values = %d, want 32", len(got))
	}
	if got := p.VaryingTags["scorer"]; len(got) != 2 {
		t.Fatalf("scorer values = %v, want 2", got)
	}
	// gpu appears on 8 of 32 events with one value: present-on-some is
	// varying, not constant — it does not describe the whole group.
	if _, constant := p.ConstantTags["gpu"]; constant {
		t.Fatalf("gpu must not be constant: %v", p.ConstantTags)
	}
	if _, ok := p.VaryingTags["gpu"]; !ok {
		t.Fatalf("gpu missing from varying: %v", p.VaryingTags)
	}
	if dim := p.Dimension(); dim != "node" {
		t.Fatalf("dimension = %q, want node", dim)
	}
}

// Dimension tie-break: equal distinct counts prefer "node".
func TestPartitionDimensionPrefersNode(t *testing.T) {
	p := TagPartition{VaryingTags: map[string][]string{
		"zone": {"a", "b"},
		"node": {"n1", "n2"},
		"rack": {"r1", "r2"},
	}}
	if dim := p.Dimension(); dim != "node" {
		t.Fatalf("dimension = %q, want node", dim)
	}
}
