// Package summary is NodeSentry's semantic alert summarization tier: the
// layer between the raw alert stream and the operator. The paper's §5.1
// workflow deliberately alerts per node, so a correlated infrastructure
// fault — a dead switch, a failing PDU, one job OOMing every rank — fans
// out into hundreds of simultaneous webhooks. This package folds that
// flood back into meaning: it partitions alert labels into constant vs
// varying dimensions (the datadog-agent anomaly-summary staging's tag
// relationship discovery), clusters alerts by time proximity and metric
// family into bounded live Incident objects ("Memory anomaly across 24
// nodes (job=8812)") with an open/update/resolve lifecycle, and emits one
// semantic event instead of N deliveries.
//
// The partitioning contract follows the staged blueprint exactly: given a
// group of alert-derived events, a label key whose single value appears on
// every event is constant (shared context: the job, the metric family);
// a key with several values — or missing from some events — is varying,
// and the varying key with the most distinct values is the dimension the
// incident spans (usually the node list). Everything is stdlib-only, like
// the rest of the module.
package summary

import (
	"sort"
	"strconv"
	"strings"
)

// Event is one alert-derived observation entering the summarizer: the
// alert's timestamp, the metric family that drove it, its label set, and
// severity. Raw carries the original payload (a runtime.Alert, a
// coordinator envelope) so events that do not fold into an incident can be
// re-emitted on the raw path byte-identically.
type Event struct {
	// Ts is the alert's Unix timestamp.
	Ts int64
	// Metric is the metric family being clustered over ("Memory", "CPU",
	// …) — the diagnosis category of the alert's dominant finding.
	Metric string
	// Tags are the alert's labels: node, job, level, scorer of origin.
	Tags map[string]string
	// Severity is the alert's score; Priority its alert priority.
	Severity float64
	Priority int
	// Direction records whether the dominant metric deviated above
	// ("increase") or below ("decrease") its typical level.
	Direction string
	// Raw is the original alert payload for raw re-emission.
	Raw any
}

// TagPartition is the outcome of tag relationship discovery over one
// group of events: which label keys are shared context and which are the
// dimensions the group varies over.
type TagPartition struct {
	// ConstantTags maps each key present on every event with a single
	// value to that value.
	ConstantTags map[string]string
	// VaryingTags maps every other observed key to its distinct values,
	// sorted. A key missing from some events is varying: it does not
	// describe the whole group.
	VaryingTags map[string][]string
}

// PartitionTags partitions the label keys of events into constant vs
// varying. A key is constant iff it appears on every event with exactly
// one value; otherwise it is varying and carries the sorted distinct
// values seen. No events → both maps empty; a single event → all its
// tags constant (the degenerate case).
func PartitionTags(events []Event) TagPartition {
	part := TagPartition{
		ConstantTags: map[string]string{},
		VaryingTags:  map[string][]string{},
	}
	if len(events) == 0 {
		return part
	}
	type keyState struct {
		seen   map[string]struct{}
		values []string
		count  int
	}
	states := map[string]*keyState{}
	for _, e := range events {
		for k, v := range e.Tags {
			st, ok := states[k]
			if !ok {
				st = &keyState{seen: map[string]struct{}{}}
				states[k] = st
			}
			st.count++
			if _, dup := st.seen[v]; !dup {
				st.seen[v] = struct{}{}
				st.values = append(st.values, v)
			}
		}
	}
	for k, st := range states {
		if st.count == len(events) && len(st.values) == 1 {
			part.ConstantTags[k] = st.values[0]
			continue
		}
		sort.Strings(st.values)
		part.VaryingTags[k] = st.values
	}
	return part
}

// Dimension returns the varying key the partition clusters over: the key
// with the most distinct values, preferring "node" on ties (the fleet's
// natural spread dimension), then the lexicographically smallest key.
// Empty when nothing varies.
func (p TagPartition) Dimension() string {
	best, bestN := "", 0
	for k, vs := range p.VaryingTags {
		switch {
		case len(vs) > bestN:
			best, bestN = k, len(vs)
		case len(vs) == bestN && best != "node" && (k == "node" || k < best):
			best = k
		}
	}
	return best
}

// title renders the operator-facing one-liner for an incident over the
// partition: "Memory anomaly across 24 nodes (job=8812)".
func title(metric string, p TagPartition, count int) string {
	var b strings.Builder
	if metric == "" {
		metric = "Unknown"
	}
	b.WriteString(metric)
	b.WriteString(" anomaly")
	if dim := p.Dimension(); dim != "" {
		b.WriteString(" across ")
		b.WriteString(strconv.Itoa(len(p.VaryingTags[dim])))
		b.WriteString(" ")
		b.WriteString(dim)
		b.WriteString("s")
	} else if node, ok := p.ConstantTags["node"]; ok {
		b.WriteString(" on ")
		b.WriteString(node)
	}
	if extras := constantSummary(p.ConstantTags); extras != "" {
		b.WriteString(" (")
		b.WriteString(extras)
		b.WriteString(")")
	}
	if count > 1 {
		b.WriteString(" — ")
		b.WriteString(strconv.Itoa(count))
		b.WriteString(" alerts")
	}
	return b.String()
}

// constantSummary renders the shared context tags, key-sorted, skipping
// the ones the title already spends ("node" when constant is the "on X"
// clause; "level" duplicates the metric family for single-family groups).
func constantSummary(constant map[string]string) string {
	keys := make([]string, 0, len(constant))
	for k := range constant {
		if k == "node" || k == "level" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" ")
		}
		b.WriteString(k)
		b.WriteString("=")
		b.WriteString(constant[k])
	}
	return b.String()
}
