package summary

import (
	"encoding/json"
	"strconv"

	"nodesentry/internal/runtime"
)

// FamilyOf is the metric family an alert clusters on: the Table 3
// category of the diagnosis' dominant finding, falling back to the
// Table 1 fault level, then "Unknown".
func FamilyOf(a runtime.Alert) string {
	if len(a.Diagnosis.Findings) > 0 && a.Diagnosis.Findings[0].Category != "" {
		return a.Diagnosis.Findings[0].Category
	}
	if a.Diagnosis.Level != "" {
		return a.Diagnosis.Level
	}
	return "Unknown"
}

// FromAlert converts a monitor alert into a summarizer event: the family
// from the diagnosis, the node/job/level labels, and the original alert
// retained in Raw so the raw path re-emits it byte-identically.
func FromAlert(a runtime.Alert) Event {
	e := Event{
		Ts:       a.Time,
		Metric:   FamilyOf(a),
		Severity: a.Score,
		Priority: int(a.Priority),
		Raw:      a,
		Tags: map[string]string{
			"node": a.Node,
			"job":  strconv.FormatInt(a.Job, 10),
		},
	}
	if a.Diagnosis.Level != "" {
		e.Tags["level"] = a.Diagnosis.Level
	}
	if len(a.Diagnosis.Findings) > 0 {
		if a.Diagnosis.Findings[0].Direction < 0 {
			e.Direction = "decrease"
		} else {
			e.Direction = "increase"
		}
	}
	return e
}

// incidentPayload is the folded webhook wire format: one semantic event
// standing in for Count raw deliveries. Kind distinguishes it from the
// per-alert payload on a shared receiver.
type incidentPayload struct {
	Kind      Transition          `json:"kind"`
	ID        string              `json:"id"`
	Title     string              `json:"title"`
	State     string              `json:"state"`
	Metric    string              `json:"metric"`
	FirstTs   int64               `json:"first_ts"`
	LastTs    int64               `json:"last_ts"`
	Count     int                 `json:"count"`
	Severity  float64             `json:"severity"`
	Priority  string              `json:"priority"`
	Constant  map[string]string   `json:"constant_tags"`
	Varying   map[string][]string `json:"varying_tags"`
	Dimension string              `json:"dimension"`
	Members   []string            `json:"members,omitempty"`
	Truncated bool                `json:"truncated,omitempty"`
}

// WebhookJSON renders the folded webhook body for one incident
// transition — the single POST that replaces Count per-alert deliveries.
func WebhookJSON(inc Incident, trans Transition) ([]byte, error) {
	p := incidentPayload{
		Kind:      trans,
		ID:        inc.ID,
		Title:     inc.Title,
		State:     inc.State,
		Metric:    inc.Metric,
		FirstTs:   inc.FirstTs,
		LastTs:    inc.LastTs,
		Count:     inc.Count,
		Severity:  inc.Severity,
		Priority:  priorityName(inc.Priority),
		Constant:  inc.ConstantTags,
		Varying:   inc.VaryingTags,
		Dimension: inc.Dimension,
		Members:   inc.VaryingTags[inc.Dimension],
		Truncated: inc.Truncated,
	}
	return json.Marshal(p)
}

// priorityName mirrors the runtime webhook's priority naming.
func priorityName(p int) string {
	if p == int(runtime.Critical) {
		return "critical"
	}
	return "warning"
}
