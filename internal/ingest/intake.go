package ingest

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"

	"nodesentry/internal/obs"
)

// IntakeConfig parameterizes the push endpoint.
type IntakeConfig struct {
	// MaxBodyBytes caps a request body, before and after gzip
	// decompression (default 8 MiB). Oversized requests get 413.
	MaxBodyBytes int64
	// Metrics, when non-nil, receives request/byte counters.
	Metrics *obs.Registry
	// Logger, when non-nil, receives rejected-request warnings.
	Logger *slog.Logger
}

func (c IntakeConfig) withDefaults() IntakeConfig {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Intake is the push half of the gateway: POST /push accepts Prometheus
// text exposition or JSONL sample batches (see Line), optionally
// gzipped, and feeds the shared Decoder. Read/write deadlines belong to
// the enclosing http.Server (cmd/sentryd sets them); the handler
// enforces the size limits.
type Intake struct {
	dec *Decoder
	cfg IntakeConfig

	reqOK  *obs.Counter
	reqErr *obs.Counter
	bytes  *obs.Counter
}

// NewIntake builds the handler around a decoder.
func NewIntake(dec *Decoder, cfg IntakeConfig) *Intake {
	cfg = cfg.withDefaults()
	r := cfg.Metrics
	return &Intake{
		dec:    dec,
		cfg:    cfg,
		reqOK:  r.Counter("nodesentry_intake_requests_total", "status", "ok"),
		reqErr: r.Counter("nodesentry_intake_requests_total", "status", "error"),
		bytes:  r.Counter("nodesentry_intake_bytes_total"),
	}
}

// Handler returns the intake mux: POST /push plus a GET /healthz
// liveness probe (the obs server carries the full /metrics surface).
func (in *Intake) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/push", in.handlePush)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

func (in *Intake) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		in.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("ingest: %s not allowed", r.Method))
		return
	}
	data, err := in.readBody(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) || errors.Is(err, errBodyTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		in.fail(w, status, err)
		return
	}
	in.bytes.Add(int64(len(data)))
	var n int
	if isJSONL(r.Header.Get("Content-Type"), data) {
		n, err = in.dec.PushJSONL(strings.NewReader(string(data)))
	} else {
		n, err = in.dec.PushExposition(string(data))
	}
	if err != nil {
		in.fail(w, http.StatusBadRequest, err)
		return
	}
	in.reqOK.Inc()
	w.WriteHeader(http.StatusAccepted)
	// The 202 status is already on the wire; a failed body write is the
	// client's problem, not ours.
	_, _ = fmt.Fprintf(w, "accepted %d samples\n", n)
}

// errBodyTooLarge marks a gzip body that inflated past the limit.
var errBodyTooLarge = errors.New("ingest: decompressed body exceeds limit")

// readBody reads the (possibly gzipped) request body under
// MaxBodyBytes, applied to both the compressed and decompressed sizes
// so a gzip bomb cannot expand past the limit.
func (in *Intake) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	var src io.Reader = http.MaxBytesReader(w, r.Body, in.cfg.MaxBodyBytes)
	if strings.Contains(r.Header.Get("Content-Encoding"), "gzip") {
		gz, err := gzip.NewReader(src)
		if err != nil {
			return nil, fmt.Errorf("ingest: bad gzip body: %w", err)
		}
		defer func() { _ = gz.Close() }() // body fully consumed below; close error is inert
		src = io.LimitReader(gz, in.cfg.MaxBodyBytes+1)
	}
	data, err := io.ReadAll(src)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > in.cfg.MaxBodyBytes {
		return nil, errBodyTooLarge
	}
	return data, nil
}

// isJSONL sniffs the batch format: an explicit JSON content type wins,
// else a body whose first byte is '{' is JSONL (exposition lines start
// with a metric name or '#').
func isJSONL(contentType string, data []byte) bool {
	if strings.Contains(contentType, "json") {
		return true
	}
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

func (in *Intake) fail(w http.ResponseWriter, status int, err error) {
	in.reqErr.Inc()
	if in.cfg.Logger != nil {
		in.cfg.Logger.Warn("push rejected", "status", status, "err", err)
	}
	http.Error(w, err.Error(), status)
}
