package ingest

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"nodesentry/internal/obs"
)

// Backoff computes exponential retry delays: Base, Base·Factor,
// Base·Factor², … capped at Max, each optionally jittered by ±Jitter
// fraction. The zero value is usable (100 ms base, ×2 growth, 5 s cap,
// no jitter). runtime.WebhookSink shares this machinery with Factor 1
// (its historical constant backoff).
type Backoff struct {
	// Base is the first delay (default 100 ms).
	Base time.Duration
	// Max caps the delay (default 5 s).
	Max time.Duration
	// Factor is the per-attempt growth (default 2; 1 = constant).
	Factor float64
	// Jitter randomizes each delay by ±this fraction (0..1), breaking
	// retry synchronization across a fleet of agents.
	Jitter float64
}

// Delay returns the sleep before retry attempt (1-based). rng supplies
// the jitter and may be nil when Jitter is 0.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxD := b.Max
	if maxD <= 0 {
		maxD = 5 * time.Second
	}
	factor := b.Factor
	if factor <= 0 {
		factor = 2
	}
	d := float64(base) * math.Pow(factor, float64(attempt-1))
	if d > float64(maxD) {
		d = float64(maxD)
	}
	if b.Jitter > 0 && rng != nil {
		d *= 1 + b.Jitter*(2*rng.Float64()-1)
		if d < 0 {
			d = 0
		}
	}
	return time.Duration(d)
}

// ForwarderConfig parameterizes a Forwarder.
type ForwarderConfig struct {
	// URL is the gateway push endpoint (…/push).
	URL string
	// MaxBatch flushes a batch at this many lines (default 128).
	MaxBatch int
	// MaxAge flushes a non-empty batch older than this (default 2 s).
	MaxAge time.Duration
	// QueueSize bounds the send queue in batches (default 64); when the
	// gateway is unreachable long enough to fill it, new batches are
	// dropped and counted — an agent must never block the host.
	QueueSize int
	// Timeout bounds one send attempt (default 5 s).
	Timeout time.Duration
	// MaxRetries re-attempts a failed batch this many extra times
	// before dropping it (default 3).
	MaxRetries int
	// Backoff shapes the inter-attempt delays.
	Backoff Backoff
	// Seed seeds the jitter source (0 = wall clock).
	Seed int64
	// Client defaults to http.DefaultClient with Timeout applied per
	// attempt via context.
	Client *http.Client
	// Metrics, when non-nil, receives batch/retry/drop counters.
	Metrics *obs.Registry
	// Logger, when non-nil, receives send failures.
	Logger *slog.Logger
}

func (c ForwarderConfig) withDefaults() ForwarderConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxAge <= 0 {
		c.MaxAge = 2 * time.Second
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Forwarder is the agent-side client: it implements Sink, batches the
// stream into JSONL Line records by size and age, and POSTs batches to
// a gateway with context timeouts, jittered exponential backoff, and a
// bounded retry queue. Close drains gracefully. Append calls never
// block on the network — overflow is dropped and counted.
type Forwarder struct {
	cfg ForwarderConfig

	mu     sync.Mutex
	cur    []Line
	curAt  time.Time
	closed bool

	q     chan []Line
	done  chan struct{}
	abort chan struct{}
	wg    sync.WaitGroup
	rng   *rand.Rand

	// encBuf is send's grow-once encode scratch. send runs on the sender
	// goroutine, and Close drains only after wg.Wait() has joined it, so
	// the buffer is never touched concurrently.
	encBuf []byte

	batches *obs.Counter
	lines   *obs.Counter
	retries *obs.Counter
	fails   *obs.Counter
	drops   *obs.Counter
	depth   *obs.Gauge
}

// NewForwarder starts the sender goroutine. Call Close to flush and
// stop it.
func NewForwarder(cfg ForwarderConfig) *Forwarder {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	r := cfg.Metrics
	f := &Forwarder{
		cfg:     cfg,
		q:       make(chan []Line, cfg.QueueSize),
		done:    make(chan struct{}),
		abort:   make(chan struct{}),
		rng:     rand.New(rand.NewSource(seed)),
		batches: r.Counter("nodesentry_forward_batches_total"),
		lines:   r.Counter("nodesentry_forward_lines_total"),
		retries: r.Counter("nodesentry_forward_retries_total"),
		fails:   r.Counter("nodesentry_forward_failures_total"),
		drops:   r.Counter("nodesentry_forward_dropped_total"),
		depth:   r.Gauge("nodesentry_forward_queue_depth"),
	}
	f.wg.Add(1)
	go f.run(f.done)
	return f
}

// RegisterNode batches a layout declaration (Sink).
func (f *Forwarder) RegisterNode(node string, metrics []string) {
	f.append(Line{Node: node, Metrics: append([]string(nil), metrics...)})
}

// ObserveJob batches a job transition (Sink).
func (f *Forwarder) ObserveJob(node string, job int64, start int64) {
	f.append(Line{Node: node, Job: &job, Start: start})
}

// Ingest batches one sample (Sink). The vector is copied.
func (f *Forwarder) Ingest(node string, ts int64, values []float64) {
	f.append(Line{Node: node, Time: ts, Values: jsonFloats(values)})
}

func (f *Forwarder) append(l Line) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		f.drops.Inc()
		return
	}
	if len(f.cur) == 0 {
		f.curAt = time.Now()
	}
	f.cur = append(f.cur, l)
	if len(f.cur) >= f.cfg.MaxBatch {
		f.flushLocked()
	}
}

// flushLocked moves the building batch onto the send queue, dropping it
// (counted) when the queue is full. Callers hold f.mu.
func (f *Forwarder) flushLocked() {
	if len(f.cur) == 0 {
		return
	}
	select {
	case f.q <- f.cur:
		f.depth.Set(float64(len(f.q)))
	default:
		f.drops.Add(int64(len(f.cur)))
		if f.cfg.Logger != nil {
			f.cfg.Logger.Warn("forward queue full: dropping batch", "lines", len(f.cur))
		}
	}
	f.cur = nil
}

// run is the sender loop: it sends queued batches and flushes the
// building batch when it ages past MaxAge. done is its stop signal. An
// in-flight send is never cancelled by an orderly Close — re-queueing a
// batch whose delivery raced shutdown would double-deliver it — only by
// the abort channel, which Close closes when its caller's ctx expires.
func (f *Forwarder) run(done chan struct{}) {
	defer f.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-f.abort:
			cancel()
		case <-ctx.Done():
		}
	}()
	tick := f.cfg.MaxAge / 2
	if tick <= 0 {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-done:
			return
		case batch := <-f.q:
			f.depth.Set(float64(len(f.q)))
			if err := f.send(ctx, batch); err != nil {
				f.drops.Add(int64(len(batch)))
			}
		case <-ticker.C:
			f.mu.Lock()
			if len(f.cur) > 0 && time.Since(f.curAt) >= f.cfg.MaxAge {
				f.flushLocked()
			}
			f.mu.Unlock()
		}
	}
}

// send delivers one batch, retrying per the backoff policy until ctx
// expires or MaxRetries is exhausted; a batch that still fails is the
// caller's to account.
func (f *Forwarder) send(ctx context.Context, batch []Line) error {
	f.encBuf = f.encBuf[:0]
	for _, l := range batch {
		f.encBuf = appendLineJSON(f.encBuf, l)
	}
	body := f.encBuf
	var last error
	for attempt := 0; attempt <= f.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			f.retries.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.cfg.Backoff.Delay(attempt, f.rng)):
			}
		}
		if last = f.post(ctx, body); last == nil {
			f.batches.Inc()
			f.lines.Add(int64(len(batch)))
			return nil
		}
		f.fails.Inc()
		if f.cfg.Logger != nil {
			f.cfg.Logger.Warn("forward attempt failed", "attempt", attempt+1, "err", last)
		}
		if ctx.Err() != nil {
			return last
		}
	}
	return last
}

// post performs one delivery attempt under the per-attempt timeout.
func (f *Forwarder) post(ctx context.Context, body []byte) error {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.cfg.URL, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }() // body unread beyond status; close error is inert
	if resp.StatusCode >= 300 {
		return fmt.Errorf("ingest: gateway returned %s", resp.Status)
	}
	return nil
}

// Close flushes the building batch, stops the sender, and drains every
// queued batch synchronously under ctx (each with the full retry
// policy). A send already in flight is allowed to finish (it is bounded
// by the per-attempt Timeout and retry budget) rather than cancelled —
// cancellation cannot distinguish a delivered batch from a lost one, so
// aborting it risks a duplicate on resend. Only when ctx expires is the
// in-flight send aborted and everything still queued dropped, counted,
// and reported via the returned error. Idempotent.
func (f *Forwarder) Close(ctx context.Context) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.flushLocked()
	f.mu.Unlock()
	stopAbort := make(chan struct{})
	defer close(stopAbort)
	go func() {
		select {
		case <-ctx.Done():
			close(f.abort)
		case <-stopAbort:
		}
	}()
	close(f.done)
	f.wg.Wait()
	for {
		select {
		case batch := <-f.q:
			f.depth.Set(float64(len(f.q)))
			if err := f.send(ctx, batch); err != nil {
				f.drops.Add(int64(len(batch)))
				if ctx.Err() != nil {
					f.dropRemaining()
					return fmt.Errorf("ingest: drain aborted: %w", ctx.Err())
				}
			}
		default:
			return nil
		}
	}
}

// dropRemaining counts everything still queued as dropped.
func (f *Forwarder) dropRemaining() {
	for {
		select {
		case batch := <-f.q:
			f.drops.Add(int64(len(batch)))
		default:
			f.depth.Set(0)
			return
		}
	}
}
