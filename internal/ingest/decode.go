package ingest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sort"
	"sync"
	"time"

	"nodesentry/internal/obs"
	"nodesentry/internal/telemetry"
)

// DecoderConfig parameterizes a Decoder.
type DecoderConfig struct {
	// Metrics, when non-nil, receives decode counters (samples, jobs,
	// parse errors, auto-registrations, clock fallbacks).
	Metrics *obs.Registry
	// Logger, when non-nil, receives decode warnings.
	Logger *slog.Logger
	// Now supplies fallback timestamps (Unix seconds) for samples whose
	// wire form carried none. Defaults to the wall clock; tests inject.
	Now func() int64
}

// Decoder turns wire telemetry — Prometheus text exposition or JSONL
// batches — into Sink calls. It remembers each node's ordered metric
// layout: layouts arrive explicitly (Register, or a JSONL metrics
// line), and a sample for an unknown node auto-registers its sorted
// metric names. Exposition samples are re-ordered into the layout, with
// NaN for metrics a scrape dropped, exactly like
// telemetry.VectorFromScrape. Safe for concurrent use; per-node event
// order follows call order (Intake and Scraper push bodies in order).
type Decoder struct {
	sink Sink
	cfg  DecoderConfig

	mu      sync.Mutex
	layouts map[string][]string

	samples       *obs.Counter
	jobs          *obs.Counter
	parseErrs     *obs.Counter
	autoReg       *obs.Counter
	skipped       *obs.Counter
	unknown       *obs.Counter
	clockFallback *obs.Counter
	shape         *obs.Counter
}

// NewDecoder wraps a sink.
func NewDecoder(sink Sink, cfg DecoderConfig) *Decoder {
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().Unix() }
	}
	r := cfg.Metrics
	return &Decoder{
		sink:          sink,
		cfg:           cfg,
		layouts:       map[string][]string{},
		samples:       r.Counter("nodesentry_intake_samples_total"),
		jobs:          r.Counter("nodesentry_intake_jobs_total"),
		parseErrs:     r.Counter("nodesentry_intake_parse_errors_total"),
		autoReg:       r.Counter("nodesentry_intake_autoregistered_total"),
		skipped:       r.Counter("nodesentry_intake_skipped_series_total"),
		unknown:       r.Counter("nodesentry_intake_unknown_metrics_total"),
		clockFallback: r.Counter("nodesentry_intake_clock_fallback_total"),
		shape:         r.Counter("nodesentry_intake_shape_mismatch_total"),
	}
}

// Register declares a node's ordered metric layout ahead of samples —
// what cmd/sentryd does for every node of its training dataset, so
// exposition pushes score against the exact layout the detector was
// trained on rather than an auto-registered sorted one.
func (d *Decoder) Register(node string, metrics []string) {
	layout := append([]string(nil), metrics...)
	d.mu.Lock()
	d.layouts[node] = layout
	d.mu.Unlock()
	d.sink.RegisterNode(node, layout)
}

// PushExposition decodes one Prometheus text body. Series need a node
// label (others are counted and skipped — a self-scrape of the obs
// registry decodes to nothing, harmlessly); consecutive series sharing
// (node, timestamp) form one sample vector, and JobTransitionSeries
// lines become ObserveJob calls in body order. Returns the number of
// samples ingested.
func (d *Decoder) PushExposition(text string) (int, error) {
	series, err := telemetry.ParseSeries(text)
	if err != nil {
		d.parseErrs.Inc()
		return 0, err
	}
	type groupKey struct {
		node string
		tsMs int64
	}
	var (
		n      int
		curKey groupKey
		cur    map[string]float64
	)
	flush := func() {
		if len(cur) == 0 {
			return
		}
		ts := curKey.tsMs / 1000
		if curKey.tsMs == 0 {
			ts = d.cfg.Now()
			d.clockFallback.Inc()
		}
		d.sample(curKey.node, ts, cur)
		n++
		cur = nil
	}
	for _, s := range series {
		node := telemetry.LabelValue(s.Labels, "node")
		if node == "" {
			d.skipped.Inc()
			continue
		}
		if s.Name == JobTransitionSeries {
			flush()
			start := s.TimeMs / 1000
			if s.TimeMs == 0 {
				start = d.cfg.Now()
				d.clockFallback.Inc()
			}
			d.sink.ObserveJob(node, int64(s.Value), start)
			d.jobs.Inc()
			continue
		}
		k := groupKey{node: node, tsMs: s.TimeMs}
		if cur != nil && k != curKey {
			flush()
		}
		if cur == nil {
			cur = map[string]float64{}
			curKey = k
		}
		cur[s.Name] = s.Value
	}
	flush()
	return n, nil
}

// sample maps a name→value set into the node's layout and ingests it.
func (d *Decoder) sample(node string, ts int64, vals map[string]float64) {
	layout := d.layoutOf(node, vals)
	vec := make([]float64, len(layout))
	matched := 0
	for i, name := range layout {
		if v, ok := vals[name]; ok {
			vec[i] = v
			matched++
		} else {
			vec[i] = math.NaN()
		}
	}
	if extra := len(vals) - matched; extra > 0 {
		d.unknown.Add(int64(extra))
	}
	d.sink.Ingest(node, ts, vec)
	d.samples.Inc()
}

// conform fits a JSONL sample vector to the node's declared layout:
// missing trailing columns become NaN (a dropped collector) and extra
// ones are cut, both counted. Without this a hostile or buggy agent
// pushing a short vector for a registered node would reach frame
// assembly with the wrong width. Unregistered nodes pass through
// unchanged — the monitor discards their samples as unregistered.
func (d *Decoder) conform(node string, vec []float64) []float64 {
	d.mu.Lock()
	layout, known := d.layouts[node]
	d.mu.Unlock()
	if !known || len(vec) == len(layout) {
		return vec
	}
	d.shape.Inc()
	if d.cfg.Logger != nil {
		d.cfg.Logger.Warn("sample shape mismatch", "node", node,
			"got", len(vec), "want", len(layout))
	}
	out := make([]float64, len(layout))
	n := copy(out, vec)
	for i := n; i < len(out); i++ {
		out[i] = math.NaN()
	}
	return out
}

// layoutOf returns the node's layout, auto-registering the sorted
// metric names of this first sample for nodes never declared.
func (d *Decoder) layoutOf(node string, vals map[string]float64) []string {
	d.mu.Lock()
	if l, ok := d.layouts[node]; ok {
		d.mu.Unlock()
		return l
	}
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	d.layouts[node] = names
	d.mu.Unlock()
	d.autoReg.Inc()
	if d.cfg.Logger != nil {
		d.cfg.Logger.Debug("auto-registered node", "node", node, "metrics", len(names))
	}
	d.sink.RegisterNode(node, names)
	return names
}

// PushJSONL decodes a stream of Line records (see Line for the wire
// shapes). Lines are applied as they decode; the first malformed line
// aborts with its line number, everything before it already ingested.
// Returns the number of sample lines ingested.
func (d *Decoder) PushJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	n, ln := 0, 0
	for sc.Scan() {
		ln++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var l Line
		if err := json.Unmarshal(raw, &l); err != nil {
			d.parseErrs.Inc()
			return n, fmt.Errorf("ingest: jsonl line %d: %w", ln, err)
		}
		switch {
		case l.Node == "":
			d.parseErrs.Inc()
			return n, fmt.Errorf("ingest: jsonl line %d: missing node", ln)
		case len(l.Metrics) > 0:
			d.Register(l.Node, l.Metrics)
		case l.Job != nil:
			d.sink.ObserveJob(l.Node, *l.Job, l.Start)
			d.jobs.Inc()
		case l.Values != nil:
			ts := l.Time
			if ts == 0 {
				ts = d.cfg.Now()
				d.clockFallback.Inc()
			}
			d.sink.Ingest(l.Node, ts, d.conform(l.Node, floats(l.Values)))
			d.samples.Inc()
			n++
		default:
			d.parseErrs.Inc()
			return n, fmt.Errorf("ingest: jsonl line %d: no metrics, job, or values", ln)
		}
	}
	if err := sc.Err(); err != nil {
		d.parseErrs.Inc()
		return n, fmt.Errorf("ingest: jsonl: %w", err)
	}
	return n, nil
}
