package ingest_test

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/ingest"
	"nodesentry/internal/mts"
	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/telemetry"
	"nodesentry/internal/testutil"
)

var (
	fixtureDS  *dataset.Dataset
	fixtureDet *core.Detector
)

// fixture trains one small detector per test binary, mirroring the
// runtime package's fixture (we cannot import its test helpers).
func fixture(t *testing.T) (*dataset.Dataset, *core.Detector) {
	t.Helper()
	if fixtureDS != nil {
		return fixtureDS, fixtureDet
	}
	ds := dataset.Build(dataset.Tiny())
	opts := core.DefaultOptions()
	opts.Epochs = 4
	opts.MaxWindowsPerCluster = 60
	in := core.TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: map[string][]int{},
	}
	for sem, rows := range telemetry.SemanticIndex(ds.Catalog) {
		in.SemanticGroups[sem] = rows
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	det, err := core.Train(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	fixtureDS, fixtureDet = ds, det
	return ds, det
}

// collect drains a monitor's alert stream on a goroutine; the returned
// func waits for channel close and hands back everything, canonically
// sorted and formatted — the byte-identity unit of this test.
func collect(m *runtime.Monitor) func() []string {
	var mu sync.Mutex
	var out []runtime.Alert
	done := make(chan struct{})
	go func() {
		for a := range m.Alerts() {
			mu.Lock()
			out = append(out, a)
			mu.Unlock()
		}
		close(done)
	}()
	return func() []string {
		<-done
		sort.Slice(out, func(i, j int) bool {
			if out[i].Time != out[j].Time {
				return out[i].Time < out[j].Time
			}
			return out[i].Node < out[j].Node
		})
		lines := make([]string, len(out))
		for i, a := range out {
			lines[i] = fmt.Sprintf("%+v", a)
		}
		return lines
	}
}

const (
	e2eJob1 = 77
	e2eJob2 = 78
)

// views returns each node's test-window frame slice.
func views(ds *dataset.Dataset) (map[string]*mts.NodeFrame, []string) {
	out := map[string]*mts.NodeFrame{}
	for _, node := range ds.Nodes() {
		f := ds.Frames[node]
		out[node] = f.Slice(f.IndexOf(ds.SplitTime()), f.Len())
	}
	return out, ds.Nodes()
}

// feedDirect drives the monitor in-process with the canonical event
// sequence: register, job at window start, a mid-window transition,
// every sample vector.
func feedDirect(m *runtime.Monitor, view *mts.NodeFrame, node string) {
	m.RegisterNode(node, view.Metrics)
	m.ObserveJob(node, e2eJob1, view.TimeAt(0))
	mid := view.Len() / 2
	for t2 := 0; t2 < view.Len(); t2++ {
		if t2 == mid {
			m.ObserveJob(node, e2eJob2, view.TimeAt(t2))
		}
		m.Ingest(node, view.TimeAt(t2), view.Window(t2))
	}
}

// expositionBody renders the identical event sequence as Prometheus
// text: job-transition series in stream position, one scrape block per
// timestep.
func expositionBody(view *mts.NodeFrame, node string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s{node=%q} %d %d\n", ingest.JobTransitionSeries, node, e2eJob1, view.TimeAt(0)*1000)
	mid := view.Len() / 2
	for t2 := 0; t2 < view.Len(); t2++ {
		if t2 == mid {
			fmt.Fprintf(&b, "%s{node=%q} %d %d\n", ingest.JobTransitionSeries, node, e2eJob2, view.TimeAt(t2)*1000)
		}
		b.WriteString(telemetry.FormatScrape(view, t2))
	}
	return b.String()
}

// gateway assembles decoder → shard router → monitor with explicit
// pre-registered layouts, the way cmd/sentryd wires them.
func gateway(t *testing.T, det *core.Detector, ds *dataset.Dataset, reg *obs.Registry) (*runtime.Monitor, *ingest.ShardRouter, *ingest.Decoder, func() []string) {
	t.Helper()
	m, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, ScoringWorkers: 2, AlertBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	wait := collect(m)
	router := ingest.NewShardRouter(m, ingest.RouterConfig{Shards: 4, QueueSize: 512, Policy: ingest.Block, Metrics: reg})
	dec := ingest.NewDecoder(router, ingest.DecoderConfig{
		Metrics: reg,
		// Every pushed sample carries a timestamp; hitting the fallback
		// clock would silently break byte-identity, so make it loud.
		Now: func() int64 { return -12345 },
	})
	vw, nodes := views(ds)
	for _, node := range nodes {
		dec.Register(node, vw[node].Metrics)
	}
	return m, router, dec, wait
}

// TestGatewayEndToEndEquivalence is the acceptance test of the
// ingestion tier: the same synthetic exposition pushed over HTTP (and,
// separately, scraped from an exporter endpoint) through decoder →
// shard router → Monitor must yield byte-identical alerts to direct
// in-process Ingest of the same samples, with fan-out over >= 2 shards
// and forced backpressure drops accounted in /metrics.
func TestGatewayEndToEndEquivalence(t *testing.T) {
	ds, det := fixture(t)
	vw, nodes := views(ds)
	// Registered before any server defer so it runs after all of them: the
	// whole gateway topology must tear down without leaking a goroutine.
	// The shared client's keep-alive pool is drained first — pooled
	// connections are the harness's, not the gateway's.
	leaks := testutil.CheckGoroutines(t)
	defer func() {
		http.DefaultClient.CloseIdleConnections()
		leaks()
	}()

	// Baseline: direct in-process ingestion.
	direct, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, ScoringWorkers: 2, AlertBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	waitDirect := collect(direct)
	for _, node := range nodes {
		feedDirect(direct, vw[node], node)
	}
	direct.Close()
	want := waitDirect()
	if len(want) == 0 {
		t.Fatal("direct replay of the fault-injected window raised no alerts")
	}

	// Push path: the same stream as exposition bodies over POST /push.
	// Byte-identity holds only if nothing is silently repaired on the way
	// in, so the decode-side failure counters must not move at all.
	reg := obs.NewRegistry()
	decodeCounters := testutil.SnapshotCounters(map[string]*obs.Counter{
		"parse_errors": reg.Counter("nodesentry_intake_parse_errors_total"),
		"shape":        reg.Counter("nodesentry_intake_shape_mismatch_total"),
		"samples":      reg.Counter("nodesentry_intake_samples_total"),
	})
	pushMon, router, dec, waitPush := gateway(t, det, ds, reg)
	intake := ingest.NewIntake(dec, ingest.IntakeConfig{Metrics: reg})
	srv := httptest.NewServer(intake.Handler())
	defer srv.Close()
	for i, node := range nodes {
		// Exercise both plain and gzipped pushes.
		resp := postBody(t, srv.URL+"/push", expositionBody(vw[node], node), i%2 == 0)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("push %s: %s", node, resp.Status)
		}
	}
	if d := router.Drain(); d != 0 {
		t.Fatalf("blocking router dropped %d events", d)
	}
	pushMon.Close()
	got := waitPush()
	diffAlerts(t, "push", got, want)

	// Shard fan-out: the node set must spread over >= 2 shards.
	busy := 0
	for _, n := range router.ShardLoads() {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("gateway used %d shards, want >= 2", busy)
	}

	// Forced backpressure: a stalled consumer behind a 1-slot DropOldest
	// shard must shed load, and the shed must be visible in /metrics.
	stall := &stallSink{gate: make(chan struct{})}
	lossy := ingest.NewShardRouter(stall, ingest.RouterConfig{Shards: 1, QueueSize: 1, Policy: ingest.DropOldest, Metrics: reg})
	lossyDec := ingest.NewDecoder(lossy, ingest.DecoderConfig{Metrics: reg})
	lossyIntake := ingest.NewIntake(lossyDec, ingest.IntakeConfig{Metrics: reg})
	lossySrv := httptest.NewServer(lossyIntake.Handler())
	defer lossySrv.Close()
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf("cpu{node=\"stalled\"} %d %d\n", i, (int64(i)+1)*1000)
		resp := postBody(t, lossySrv.URL+"/push", body, false)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("lossy push %d: %s", i, resp.Status)
		}
	}
	close(stall.gate)
	if d := lossy.Drain(); d < 1 {
		t.Fatalf("stalled shard dropped %d events, want >= 1", d)
	}

	// The drop is accounted in the exposition the obs endpoint serves.
	obsSrv := httptest.NewServer(obs.Handler(reg, nil))
	defer obsSrv.Close()
	series := scrapeSeries(t, obsSrv.URL+"/metrics")
	dropped := int64(0)
	for key, v := range series {
		if strings.HasPrefix(key, "nodesentry_shard_dropped_total") {
			dropped += int64(v)
		}
	}
	if dropped < 1 {
		t.Errorf("/metrics accounts %d shard drops, want >= 1", dropped)
	}
	if samples := series[`nodesentry_intake_samples_total`]; samples <= 0 {
		t.Errorf("/metrics intake samples = %v, want > 0", samples)
	}
	decodeCounters.ExpectDelta(t, "parse_errors", 0)
	decodeCounters.ExpectDelta(t, "shape", 0)
	decodeCounters.ExpectDeltaAtLeast(t, "samples", int64(len(nodes)))
}

// TestGatewayScrapeEquivalence drives the same stream through the pull
// half: an exporter endpoint serves one timestep per sweep and the
// Scraper polls it into the gateway.
func TestGatewayScrapeEquivalence(t *testing.T) {
	ds, det := fixture(t)
	vw, nodes := views(ds)

	direct, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, ScoringWorkers: 2, AlertBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	waitDirect := collect(direct)
	for _, node := range nodes {
		feedDirect(direct, vw[node], node)
	}
	direct.Close()
	want := waitDirect()

	reg := obs.NewRegistry()
	scrapeMon, router, dec, waitScrape := gateway(t, det, ds, reg)

	// The exporter serves all nodes' samples for sweep k, with the job
	// transitions of the canonical sequence in stream position.
	steps := vw[nodes[0]].Len()
	var sweep atomic.Int64
	exporter := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		k := int(sweep.Load())
		var b strings.Builder
		for _, node := range nodes {
			view := vw[node]
			if k >= view.Len() {
				continue
			}
			if k == 0 {
				fmt.Fprintf(&b, "%s{node=%q} %d %d\n", ingest.JobTransitionSeries, node, e2eJob1, view.TimeAt(0)*1000)
			}
			if k == view.Len()/2 {
				fmt.Fprintf(&b, "%s{node=%q} %d %d\n", ingest.JobTransitionSeries, node, e2eJob2, view.TimeAt(k)*1000)
			}
			b.WriteString(telemetry.FormatScrape(view, k))
		}
		_, _ = w.Write([]byte(b.String()))
	}))
	defer exporter.Close()

	scraper := ingest.NewScraper(dec, ingest.ScrapeConfig{Targets: []string{exporter.URL}, Metrics: reg})
	ctx := context.Background()
	for k := 0; k < steps; k++ {
		sweep.Store(int64(k))
		scraper.Sweep(ctx)
	}
	if d := router.Drain(); d != 0 {
		t.Fatalf("blocking router dropped %d events", d)
	}
	scrapeMon.Close()
	got := waitScrape()
	diffAlerts(t, "scrape", got, want)
	if v := reg.Counter("nodesentry_scrape_total").Value(); v != int64(steps) {
		t.Errorf("scrape counter = %d, want %d", v, steps)
	}
}

// stallSink blocks every Ingest until its gate opens.
type stallSink struct {
	gate chan struct{}
}

func (s *stallSink) RegisterNode(string, []string)   {}
func (s *stallSink) ObserveJob(string, int64, int64) {}
func (s *stallSink) Ingest(string, int64, []float64) { <-s.gate }

func postBody(t *testing.T, url, body string, gzipped bool) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if gzipped {
		gz := gzip.NewWriter(&buf)
		if _, err := gz.Write([]byte(body)); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		buf.WriteString(body)
	}
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Drain and close now: callers read only the status, and an unclosed
	// body pins its connection out of the idle pool until test cleanup —
	// the goroutine leak gate would see every push as two live goroutines.
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp
}

// diffAlerts asserts byte-identical alert streams with a readable diff.
func diffAlerts(t *testing.T, path string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s path raised %d alerts, direct raised %d", path, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s path alert %d differs:\n got %s\nwant %s", path, i, got[i], want[i])
		}
	}
	t.Logf("%s path: %d alerts byte-identical to direct ingestion", path, len(want))
}

// scrapeSeries fetches and parses a /metrics endpoint.
func scrapeSeries(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series, err := telemetry.ParseSeries(string(body))
	if err != nil {
		t.Fatal(err)
	}
	return telemetry.SeriesMap(series)
}
