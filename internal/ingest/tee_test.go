package ingest

import (
	"reflect"
	"testing"
)

type teeSinkRecorder struct {
	registered map[string][]string
	jobs       []int64
	samples    int
	lastValues []float64
}

func newTeeSinkRecorder() *teeSinkRecorder {
	return &teeSinkRecorder{registered: map[string][]string{}}
}

func (r *teeSinkRecorder) RegisterNode(node string, metrics []string) {
	r.registered[node] = append([]string(nil), metrics...)
}
func (r *teeSinkRecorder) ObserveJob(node string, job int64, start int64) {
	r.jobs = append(r.jobs, job)
}
func (r *teeSinkRecorder) Ingest(node string, ts int64, values []float64) {
	r.samples++
	r.lastValues = append([]float64(nil), values...)
}

func TestTeeFansOut(t *testing.T) {
	a, b := newTeeSinkRecorder(), newTeeSinkRecorder()
	tee := Tee(a, nil, b)
	tee.RegisterNode("n0", []string{"cpu", "mem"})
	tee.ObserveJob("n0", 7, 100)
	tee.Ingest("n0", 110, []float64{1, 2})
	for name, s := range map[string]*teeSinkRecorder{"a": a, "b": b} {
		if !reflect.DeepEqual(s.registered["n0"], []string{"cpu", "mem"}) {
			t.Errorf("sink %s missed RegisterNode: %v", name, s.registered)
		}
		if len(s.jobs) != 1 || s.jobs[0] != 7 {
			t.Errorf("sink %s missed ObserveJob: %v", name, s.jobs)
		}
		if s.samples != 1 || !reflect.DeepEqual(s.lastValues, []float64{1, 2}) {
			t.Errorf("sink %s missed Ingest: %d %v", name, s.samples, s.lastValues)
		}
	}
}

func TestTeeSingleSinkPassThrough(t *testing.T) {
	a := newTeeSinkRecorder()
	if got := Tee(nil, a, nil); got != Sink(a) {
		t.Error("Tee with one live sink should return it directly")
	}
}
