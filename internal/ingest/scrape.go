package ingest

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"nodesentry/internal/obs"
)

// ScrapeConfig parameterizes the pull half of the gateway.
type ScrapeConfig struct {
	// Targets are /metrics URLs polled every Interval.
	Targets []string
	// Interval between sweeps (default 15 s).
	Interval time.Duration
	// Timeout bounds one target fetch (default 5 s).
	Timeout time.Duration
	// MaxBodyBytes caps one scrape body (default 8 MiB).
	MaxBodyBytes int64
	// Client defaults to http.DefaultClient with Timeout applied per
	// request via context.
	Client *http.Client
	// Metrics, when non-nil, receives scrape counters.
	Metrics *obs.Registry
	// Logger, when non-nil, receives scrape failures.
	Logger *slog.Logger
}

func (c ScrapeConfig) withDefaults() ScrapeConfig {
	if c.Interval <= 0 {
		c.Interval = 15 * time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Scraper polls exposition endpoints — the Prometheus-shaped pull loop
// of §5.1 — and pushes every body through the shared Decoder. One
// Scraper serves many targets; a failing target is counted and retried
// next sweep, never wedging the loop.
type Scraper struct {
	dec *Decoder
	cfg ScrapeConfig

	scrapes  *obs.Counter
	failures *obs.Counter
}

// NewScraper builds a scraper around a decoder.
func NewScraper(dec *Decoder, cfg ScrapeConfig) *Scraper {
	cfg = cfg.withDefaults()
	r := cfg.Metrics
	return &Scraper{
		dec:      dec,
		cfg:      cfg,
		scrapes:  r.Counter("nodesentry_scrape_total"),
		failures: r.Counter("nodesentry_scrape_failures_total"),
	}
}

// Run sweeps immediately, then every Interval, until ctx is canceled.
// Run it on its own goroutine; ctx is the stop signal.
func (s *Scraper) Run(ctx context.Context) {
	s.Sweep(ctx)
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.Sweep(ctx)
		}
	}
}

// Sweep scrapes every target once, returning the number of samples
// ingested across all of them.
func (s *Scraper) Sweep(ctx context.Context) int {
	total := 0
	for _, target := range s.cfg.Targets {
		if ctx.Err() != nil {
			return total
		}
		n, err := s.scrape(ctx, target)
		total += n
		if err != nil {
			s.failures.Inc()
			if s.cfg.Logger != nil {
				s.cfg.Logger.Warn("scrape failed", "target", target, "err", err)
			}
			continue
		}
		s.scrapes.Inc()
	}
	return total
}

// scrape fetches one target and decodes its body.
func (s *Scraper) scrape(ctx context.Context, target string) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return 0, err
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }() // body fully consumed; close error is inert
	if resp.StatusCode >= 300 {
		return 0, fmt.Errorf("ingest: scrape %s returned %s", target, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		return 0, err
	}
	return s.dec.PushExposition(string(body))
}
