// Package ingest is the network tier between "telemetry exists" and
// "the detector scores it" — the collection layer the paper's deployment
// workflow assumes (§5.1, Fig. 7: Prometheus scrapes every compute node
// while NodeSentry consumes the same stream). It is stdlib-only, like
// the rest of the repository.
//
// Three components compose into a gateway:
//
//   - Intake: an HTTP handler accepting pushed batches (POST /push,
//     Prometheus text exposition or JSONL, gzip-aware, size-limited),
//     plus Scraper, a poller that pulls /metrics from a target list on
//     an interval. Both feed a shared Decoder that remembers each
//     node's metric layout and turns wire samples into Sink calls.
//   - ShardRouter: consistently hashes node names onto N bounded worker
//     queues, each drained by one goroutine, with an explicit
//     backpressure policy (Block or DropOldest, counted) so one slow
//     node cannot stall the fleet.
//   - Forwarder: the agent-side client — batches samples by size and
//     age, sends with context timeouts and jittered exponential
//     Backoff, keeps a bounded retry queue, and drains gracefully on
//     shutdown.
//
// Everything is instrumented through internal/obs (nil-safe: a nil
// registry disables instrumentation). runtime.Monitor satisfies Sink,
// so cmd/sentryd can wire scrape/push intake straight into streaming
// detection; tests substitute recording sinks.
package ingest

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Sink consumes decoded telemetry. runtime.Monitor implements it; the
// ShardRouter and Forwarder both implement it too, so tiers stack
// (agent Forwarder → gateway Intake → ShardRouter → Monitor).
type Sink interface {
	// RegisterNode declares a node's ordered metric layout before
	// ingestion; values in later Ingest calls follow this order.
	RegisterNode(node string, metrics []string)
	// ObserveJob notifies of a job transition on a node at start
	// (Unix seconds).
	ObserveJob(node string, job int64, start int64)
	// Ingest feeds one sample: the node's full metric vector at ts
	// (Unix seconds), ordered per the registered layout.
	Ingest(node string, ts int64, values []float64)
}

// JobTransitionSeries is the well-known exposition series name that
// carries scheduler job transitions in pushed/scraped text bodies:
//
//	nodesentry_job_transition{node="cn-1"} <job-id> <start-ms>
//
// The value is the job id (mts.IdleJobID for idle) and the exposition
// timestamp is the transition time. JSONL batches carry transitions as
// {"node":…,"job":…,"start":…} lines instead.
const JobTransitionSeries = "nodesentry_job_transition"

// eventKind discriminates queued gateway events.
type eventKind uint8

const (
	evSample eventKind = iota
	evRegister
	evJob
)

// event is one unit of work on a shard queue.
type event struct {
	kind    eventKind
	node    string
	ts      int64     // sample time or job start (Unix seconds)
	values  []float64 // evSample
	metrics []string  // evRegister
	job     int64     // evJob
	// at is the enqueue wall time, recorded only when observability is
	// on; it feeds the intake→score latency histogram.
	at time.Time
}

// Line is one JSONL wire record, the push format the Forwarder emits
// and Intake accepts. Exactly one of the three shapes must be present:
//
//	{"node":"cn-1","metrics":["cpu_load","mem_used"]}       registration
//	{"node":"cn-1","job":7,"start":1200}                    job transition
//	{"node":"cn-1","time":1260,"values":[0.4,"NaN",1e9]}    sample
//
// Times are Unix seconds. NaN and ±Inf sample values — legal telemetry
// (a dropped collector is NaN) that encoding/json rejects as bare
// numbers — travel as the strings "NaN", "+Inf", "-Inf".
type Line struct {
	Node    string      `json:"node"`
	Time    int64       `json:"time,omitempty"`
	Values  []JSONFloat `json:"values,omitempty"`
	Metrics []string    `json:"metrics,omitempty"`
	Job     *int64      `json:"job,omitempty"`
	Start   int64       `json:"start,omitempty"`
}

// JSONFloat is a float64 whose JSON encoding round-trips NaN and ±Inf
// as quoted strings.
type JSONFloat float64

// MarshalJSON encodes finite values as bare numbers and non-finite ones
// as the strings strconv.ParseFloat accepts back.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts bare numbers and the quoted non-finite forms.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("ingest: bad sample value %s", b)
	}
	*f = JSONFloat(v)
	return nil
}

// appendLineJSON appends l's JSONL wire encoding — byte-for-byte what
// json.Encoder produces for Line, trailing newline included — without
// the per-value reflection and digit-buffer allocations that dominate a
// sustained feed. TestAppendLineJSONMatchesEncodingJSON pins the parity.
func appendLineJSON(b []byte, l Line) []byte {
	b = append(b, `{"node":`...)
	b = appendJSONString(b, l.Node)
	if l.Time != 0 {
		b = append(b, `,"time":`...)
		b = strconv.AppendInt(b, l.Time, 10)
	}
	if len(l.Values) > 0 {
		b = append(b, `,"values":[`...)
		for i, v := range l.Values {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONFloat(b, float64(v))
		}
		b = append(b, ']')
	}
	if len(l.Metrics) > 0 {
		b = append(b, `,"metrics":[`...)
		for i, m := range l.Metrics {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, m)
		}
		b = append(b, ']')
	}
	if l.Job != nil {
		b = append(b, `,"job":`...)
		b = strconv.AppendInt(b, *l.Job, 10)
	}
	if l.Start != 0 {
		b = append(b, `,"start":`...)
		b = strconv.AppendInt(b, l.Start, 10)
	}
	return append(b, '}', '\n')
}

// appendJSONFloat appends JSONFloat's encoding of v.
func appendJSONFloat(b []byte, v float64) []byte {
	switch {
	case math.IsNaN(v):
		return append(b, `"NaN"`...)
	case math.IsInf(v, 1):
		return append(b, `"+Inf"`...)
	case math.IsInf(v, -1):
		return append(b, `"-Inf"`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends the encoding/json encoding of s (HTML
// escaping on, matching json.Encoder's default). Plain ASCII takes the
// allocation-free fast path; anything needing escapes falls back to the
// library so the two encodings can never drift.
func appendJSONString(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			esc, _ := json.Marshal(s) // marshaling a string cannot fail
			return append(b, esc...)
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"')
}

// floats converts a wire vector back to plain float64s.
func floats(in []JSONFloat) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// jsonFloats wraps a plain vector for marshaling.
func jsonFloats(in []float64) []JSONFloat {
	out := make([]JSONFloat, len(in))
	for i, v := range in {
		out[i] = JSONFloat(v)
	}
	return out
}
