package ingest

import (
	"strings"
	"testing"

	"nodesentry/internal/obs"
)

// fuzzSink checks the decoder's sink-call contract under hostile input:
// no call may carry an empty node name (a phantom node), and once a
// node's layout is declared, every later sample vector must arrive at
// exactly the layout's width — the invariant frame assembly depends on.
type fuzzSink struct {
	t       *testing.T
	layouts map[string]int
}

func (s *fuzzSink) RegisterNode(node string, metrics []string) {
	if node == "" {
		s.t.Error("RegisterNode with empty node")
	}
	s.layouts[node] = len(metrics)
}

func (s *fuzzSink) ObserveJob(node string, job int64, start int64) {
	if node == "" {
		s.t.Error("ObserveJob with empty node")
	}
}

func (s *fuzzSink) Ingest(node string, ts int64, values []float64) {
	if node == "" {
		s.t.Error("Ingest with empty node")
	}
	if want, ok := s.layouts[node]; ok && len(values) != want {
		s.t.Errorf("ingest %q: vector width %d, want %d", node, len(values), want)
	}
}

// FuzzPushJSONL pins the JSONL decode path against hostile batches:
// malformed JSON, NaN/Inf values, bad UTF-8 in labels, duplicate
// timestamps, and — the historical panic — sample vectors narrower or
// wider than the node's declared layout. It must never panic, never
// emit a phantom (empty-name) node, and never hand a registered node a
// mis-shaped vector.
func FuzzPushJSONL(f *testing.F) {
	seeds := []string{
		`{"node":"a","metrics":["m0","m1"]}` + "\n" + `{"node":"a","time":60,"values":[1,2]}`,
		// Short and long vectors against a declared layout.
		`{"node":"a","metrics":["m0","m1","m2"]}` + "\n" + `{"node":"a","time":60,"values":[1]}`,
		`{"node":"a","metrics":["m0"]}` + "\n" + `{"node":"a","time":60,"values":[1,2,3]}`,
		// Non-finite values travel as quoted strings.
		`{"node":"a","time":60,"values":["NaN","+Inf","-Inf"]}`,
		// Duplicate timestamps.
		`{"node":"a","time":60,"values":[1]}` + "\n" + `{"node":"a","time":60,"values":[1]}`,
		// Job transitions, idle id, zero time (clock fallback).
		`{"node":"a","job":7,"start":1200}`,
		`{"node":"a","job":-1,"start":0}`,
		`{"node":"a","values":[0.5]}`,
		// Malformed shapes.
		`{node:`,
		`{"node":""}`,
		`{"node":"a"}`,
		`{"time":60,"values":[1]}`,
		`{"node":"a","values":[]}`,
		"{\"node\":\"\xff\xfe\",\"values\":[1]}",
		`{"node":"a","values":["nope"]}`,
		"\n\n" + `{"node":"a","metrics":["m0"]}` + "\n\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		sink := &fuzzSink{t: t, layouts: map[string]int{}}
		dec := NewDecoder(sink, DecoderConfig{
			Metrics: obs.NewRegistry(),
			Now:     func() int64 { return 1_700_000_000 },
		})
		n, err := dec.PushJSONL(strings.NewReader(body))
		if n < 0 {
			t.Errorf("negative sample count %d", n)
		}
		if err != nil && n > len(strings.Split(body, "\n")) {
			t.Errorf("counted %d samples from %d lines", n, len(strings.Split(body, "\n")))
		}
	})
}
