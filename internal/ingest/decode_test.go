package ingest

import (
	"strings"
	"testing"

	"nodesentry/internal/obs"
)

func testDecoder(sink Sink, reg *obs.Registry) *Decoder {
	return NewDecoder(sink, DecoderConfig{
		Metrics: reg,
		Now:     func() int64 { return 9999 }, // deterministic fallback clock
	})
}

func TestDecoderExpositionGrouping(t *testing.T) {
	sink := &recordSink{}
	dec := testDecoder(sink, nil)
	dec.Register("cn-1", []string{"cpu", "mem"})
	// Two timesteps with a job transition between them, mem omitted at
	// the second step (a dropped collector).
	body := strings.Join([]string{
		`cpu{node="cn-1"} 0.5 60000`,
		`mem{node="cn-1"} 100 60000`,
		`nodesentry_job_transition{node="cn-1"} 7 120000`,
		`cpu{node="cn-1"} 0.75 120000`,
	}, "\n")
	n, err := dec.PushExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ingested %d samples, want 2", n)
	}
	got := sink.all()
	want := []string{
		"reg cn-1 [cpu mem]",
		"ing cn-1 60 [0.5 100]",
		"job cn-1 7 120",
		"ing cn-1 120 [0.75 NaN]",
	}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDecoderAutoRegisterSorted(t *testing.T) {
	sink := &recordSink{}
	reg := obs.NewRegistry()
	dec := testDecoder(sink, reg)
	n, err := dec.PushExposition("zz{node=\"n\"} 1 1000\naa{node=\"n\"} 2 1000\n")
	if err != nil || n != 1 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got := sink.all()
	if got[0] != "reg n [aa zz]" {
		t.Errorf("auto-registration = %q, want sorted [aa zz]", got[0])
	}
	if got[1] != "ing n 1 [2 1]" {
		t.Errorf("sample = %q, want layout order [2 1]", got[1])
	}
	if v := reg.Counter("nodesentry_intake_autoregistered_total").Value(); v != 1 {
		t.Errorf("autoregistered counter = %d, want 1", v)
	}
}

func TestDecoderSkipsAndCounts(t *testing.T) {
	sink := &recordSink{}
	reg := obs.NewRegistry()
	dec := testDecoder(sink, reg)
	dec.Register("n", []string{"cpu"})
	// A registry self-scrape has no node labels: skipped, not an error.
	if n, err := dec.PushExposition("up 1\nhttp_requests_total{code=\"200\"} 7\n"); err != nil || n != 0 {
		t.Fatalf("self-scrape n=%d err=%v", n, err)
	}
	if v := reg.Counter("nodesentry_intake_skipped_series_total").Value(); v != 2 {
		t.Errorf("skipped = %d, want 2", v)
	}
	// A metric outside the registered layout is counted, not ingested.
	if _, err := dec.PushExposition("cpu{node=\"n\"} 1 1000\nrogue{node=\"n\"} 2 1000\n"); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("nodesentry_intake_unknown_metrics_total").Value(); v != 1 {
		t.Errorf("unknown metrics = %d, want 1", v)
	}
	// A timestamp-free sample falls back to the injected clock.
	if _, err := dec.PushExposition("cpu{node=\"n\"} 3\n"); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("nodesentry_intake_clock_fallback_total").Value(); v != 1 {
		t.Errorf("clock fallbacks = %d, want 1", v)
	}
	events := sink.forNode("n")
	last := events[len(events)-1]
	if last != "ing n 9999 [3]" {
		t.Errorf("fallback sample = %q, want ing n 9999 [3]", last)
	}
	// A malformed body errors and is counted.
	if _, err := dec.PushExposition("cpu{node=\"n\" 1"); err == nil {
		t.Error("unterminated labels accepted")
	}
	if v := reg.Counter("nodesentry_intake_parse_errors_total").Value(); v != 1 {
		t.Errorf("parse errors = %d, want 1", v)
	}
}

func TestDecoderJSONL(t *testing.T) {
	sink := &recordSink{}
	dec := testDecoder(sink, nil)
	batch := strings.Join([]string{
		`{"node":"cn-2","metrics":["cpu","mem"]}`,
		`{"node":"cn-2","job":5,"start":100}`,
		`{"node":"cn-2","time":160,"values":[0.25,"NaN"]}`,
		``,
		`{"node":"cn-2","time":220,"values":["+Inf",3]}`,
	}, "\n")
	n, err := dec.PushJSONL(strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("ingested %d samples, want 2", n)
	}
	want := []string{
		"reg cn-2 [cpu mem]",
		"job cn-2 5 100",
		"ing cn-2 160 [0.25 NaN]",
		"ing cn-2 220 [+Inf 3]",
	}
	got := sink.all()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestDecoderJSONLErrors(t *testing.T) {
	for _, tc := range []struct{ name, body string }{
		{"not json", "nope\n"},
		{"missing node", `{"time":1,"values":[1]}` + "\n"},
		{"empty line shape", `{"node":"n"}` + "\n"},
		{"bad value", `{"node":"n","time":1,"values":["wat"]}` + "\n"},
	} {
		dec := testDecoder(&recordSink{}, nil)
		if _, err := dec.PushJSONL(strings.NewReader(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Lines before the bad one are already applied.
	sink := &recordSink{}
	dec := testDecoder(sink, nil)
	body := `{"node":"n","metrics":["m"]}` + "\n" + `{"node":"n","time":5,"values":[1]}` + "\ngarbage\n"
	n, err := dec.PushJSONL(strings.NewReader(body))
	if err == nil {
		t.Fatal("garbage line accepted")
	}
	if n != 1 || len(sink.all()) != 2 {
		t.Errorf("applied %d samples, %d events before failing; want 1, 2", n, len(sink.all()))
	}
}

func TestDecoderVectorNaNSemantics(t *testing.T) {
	sink := &recordSink{}
	dec := testDecoder(sink, nil)
	dec.Register("n", []string{"a", "b", "c"})
	if _, err := dec.PushExposition("b{node=\"n\"} 2 1000\n"); err != nil {
		t.Fatal(err)
	}
	ev := sink.all()[1]
	if !strings.Contains(ev, "[NaN 2 NaN]") {
		t.Errorf("missing metrics not NaN-filled: %q", ev)
	}
}

func TestDecoderJSONLShapeConform(t *testing.T) {
	sink := &recordSink{}
	reg := obs.NewRegistry()
	dec := testDecoder(sink, reg)
	dec.Register("n", []string{"a", "b", "c"})
	body := `{"node":"n","time":5,"values":[1]}` + "\n" +
		`{"node":"n","time":6,"values":[1,2,3,4]}` + "\n" +
		`{"node":"n","time":7,"values":[1,2,3]}` + "\n" +
		`{"node":"u","time":8,"values":[9]}` + "\n"
	if _, err := dec.PushJSONL(strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	events := sink.all()
	if want := "ing n 5 [1 NaN NaN]"; events[1] != want {
		t.Errorf("short vector: got %q, want %q", events[1], want)
	}
	if want := "ing n 6 [1 2 3]"; events[2] != want {
		t.Errorf("long vector: got %q, want %q", events[2], want)
	}
	// Unregistered nodes pass through unchanged; exact-width vectors are
	// untouched; two repairs counted.
	if want := "ing u 8 [9]"; events[4] != want {
		t.Errorf("unregistered: got %q, want %q", events[4], want)
	}
	if got := reg.Counter("nodesentry_intake_shape_mismatch_total").Value(); got != 2 {
		t.Errorf("shape mismatch counter = %d, want 2", got)
	}
}
