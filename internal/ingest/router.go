package ingest

import (
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nodesentry/internal/obs"
)

// Policy selects what a full shard queue does to new work.
type Policy int

const (
	// Block applies backpressure to the producer: enqueue waits for
	// queue space. Intake HTTP handlers slow down; nothing is lost.
	Block Policy = iota
	// DropOldest evicts the oldest queued event to admit the new one,
	// counting the eviction. Fresh samples beat stale ones — the right
	// trade for live scoring, lossy by design (evictions can include
	// registration or job events if those are what is oldest).
	DropOldest
)

// RouterConfig parameterizes a ShardRouter.
type RouterConfig struct {
	// Shards is the number of worker queues (default 4).
	Shards int
	// QueueSize bounds each shard's queue (default 256 events).
	QueueSize int
	// Policy picks the backpressure behavior on a full queue.
	Policy Policy
	// Metrics, when non-nil, receives per-shard queue depth gauges and
	// processed/dropped counters plus the intake→score latency
	// histogram (see DESIGN.md's ingestion appendix).
	Metrics *obs.Registry
	// Logger, when non-nil, receives drop warnings (rate-limited to the
	// first occurrence per shard).
	Logger *slog.Logger
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	return c
}

// ShardRouter fans decoded telemetry out over N bounded worker queues,
// one drain goroutine each, keyed by a consistent hash of the node
// name — so per-node event order is preserved while one slow node can
// only stall its own shard. It implements Sink and delivers into the
// Sink it wraps (typically runtime.Monitor).
type ShardRouter struct {
	cfg  RouterConfig
	sink Sink

	queues []chan event
	wg     sync.WaitGroup

	// mu serializes enqueue against Drain so a send can never race the
	// queue close (the same discipline runtime.Monitor.Close uses).
	mu     sync.RWMutex
	closed bool

	dropped   atomic.Int64
	processed []atomic.Int64 // per-shard, for fan-out assertions

	obsOn    bool
	depth    []*obs.Gauge
	procMet  []*obs.Counter
	dropMet  []*obs.Counter
	latency  *obs.Histogram
	warnOnce []sync.Once
	log      *slog.Logger
}

// NewShardRouter builds the router and starts one drain goroutine per
// shard. Call Drain to stop.
func NewShardRouter(sink Sink, cfg RouterConfig) *ShardRouter {
	cfg = cfg.withDefaults()
	r := &ShardRouter{
		cfg:       cfg,
		sink:      sink,
		queues:    make([]chan event, cfg.Shards),
		processed: make([]atomic.Int64, cfg.Shards),
		obsOn:     cfg.Metrics != nil,
		depth:     make([]*obs.Gauge, cfg.Shards),
		procMet:   make([]*obs.Counter, cfg.Shards),
		dropMet:   make([]*obs.Counter, cfg.Shards),
		latency:   cfg.Metrics.Histogram("nodesentry_intake_to_score_seconds", obs.LatencyBuckets),
		warnOnce:  make([]sync.Once, cfg.Shards),
		log:       cfg.Logger,
	}
	for i := range r.queues {
		r.queues[i] = make(chan event, cfg.QueueSize)
		shard := strconv.Itoa(i)
		r.depth[i] = cfg.Metrics.Gauge("nodesentry_shard_queue_depth", "shard", shard)
		r.procMet[i] = cfg.Metrics.Counter("nodesentry_shard_processed_total", "shard", shard)
		r.dropMet[i] = cfg.Metrics.Counter("nodesentry_shard_dropped_total", "shard", shard)
		r.wg.Add(1)
		go r.drain(i, r.queues[i])
	}
	return r
}

// FNVShard consistently hashes a node name onto one of n shards (FNV-1a
// mod n). These are the partition lines the whole topology shares: the
// ShardRouter's worker queues, the coordinator's shard-assignment table
// (internal/coord), and the chaos topology feeder all place a node with
// this exact function, so "who owns node X" has one answer at every tier.
func FNVShard(node string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(node); i++ {
		h ^= uint32(node[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// shardOf consistently hashes a node name onto a shard (FNV-1a).
func (r *ShardRouter) shardOf(node string) int {
	return FNVShard(node, len(r.queues))
}

// RegisterNode queues a layout declaration (Sink).
func (r *ShardRouter) RegisterNode(node string, metrics []string) {
	r.enqueue(event{kind: evRegister, node: node, metrics: append([]string(nil), metrics...)})
}

// ObserveJob queues a job transition (Sink).
func (r *ShardRouter) ObserveJob(node string, job int64, start int64) {
	r.enqueue(event{kind: evJob, node: node, job: job, ts: start})
}

// Ingest queues one sample (Sink). The vector is copied; callers may
// reuse their buffer.
func (r *ShardRouter) Ingest(node string, ts int64, values []float64) {
	ev := event{kind: evSample, node: node, ts: ts, values: append([]float64(nil), values...)}
	if r.obsOn {
		ev.at = time.Now()
	}
	r.enqueue(ev)
}

func (r *ShardRouter) enqueue(ev event) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := r.shardOf(ev.node)
	if r.closed {
		// Arrived after Drain began: counted, never delivered.
		r.dropped.Add(1)
		r.dropMet[i].Inc()
		return
	}
	q := r.queues[i]
	if r.cfg.Policy == Block {
		q <- ev
	} else {
		for {
			select {
			case q <- ev:
				r.depth[i].Set(float64(len(q)))
				return
			default:
			}
			// Full: evict the oldest event (unless the drainer beat us
			// to it) and retry.
			select {
			case <-q:
				r.dropped.Add(1)
				r.dropMet[i].Inc()
				if r.log != nil {
					r.warnOnce[i].Do(func() {
						r.log.Warn("shard queue full: dropping oldest", "shard", i, "queue", r.cfg.QueueSize)
					})
				}
			default:
			}
		}
	}
	r.depth[i].Set(float64(len(q)))
}

// drain applies one shard's events to the wrapped sink in order.
func (r *ShardRouter) drain(i int, q chan event) {
	defer r.wg.Done()
	for ev := range q {
		switch ev.kind {
		case evRegister:
			r.sink.RegisterNode(ev.node, ev.metrics)
		case evJob:
			r.sink.ObserveJob(ev.node, ev.job, ev.ts)
		case evSample:
			r.sink.Ingest(ev.node, ev.ts, ev.values)
			if r.obsOn && !ev.at.IsZero() {
				r.latency.Observe(time.Since(ev.at).Seconds())
			}
		}
		r.processed[i].Add(1)
		r.procMet[i].Inc()
		r.depth[i].Set(float64(len(q)))
	}
}

// Drain stops intake, waits until every queued event has been applied,
// and returns the total number of events dropped by backpressure (or
// by arriving after Drain). Safe to call more than once.
func (r *ShardRouter) Drain() int64 {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		for _, q := range r.queues {
			close(q)
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
	return r.dropped.Load()
}

// Dropped reports events discarded so far.
func (r *ShardRouter) Dropped() int64 { return r.dropped.Load() }

// ShardLoads reports how many events each shard has applied — the
// fan-out a test or operator can assert on.
func (r *ShardRouter) ShardLoads() []int64 {
	out := make([]int64, len(r.processed))
	for i := range r.processed {
		out[i] = r.processed[i].Load()
	}
	return out
}
