package ingest

// Tee fans every sink call out to each of the given sinks, in order. Nil
// entries are skipped, so callers can write Tee(mon, maybeNil) without
// branching. The values slice is shared across sinks on the hot path —
// sinks must copy anything they retain, which every Sink in this module
// already guarantees.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	if len(kept) == 1 {
		return kept[0]
	}
	return teeSink(kept)
}

type teeSink []Sink

func (t teeSink) RegisterNode(node string, metrics []string) {
	for _, s := range t {
		s.RegisterNode(node, metrics)
	}
}

func (t teeSink) ObserveJob(node string, job int64, start int64) {
	for _, s := range t {
		s.ObserveJob(node, job, start)
	}
}

// Ingest fans one sample out to every sink.
//
//perf:hot
func (t teeSink) Ingest(node string, ts int64, values []float64) {
	for _, s := range t {
		s.Ingest(node, ts, values)
	}
}
