package ingest

import (
	"context"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodesentry/internal/obs"
)

func TestBackoffDelays(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 500 * time.Millisecond, Factor: 2}
	want := []time.Duration{100, 200, 400, 500, 500}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w*time.Millisecond {
			t.Errorf("attempt %d delay = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	// Defaults: 100 ms base, x2, 5 s cap.
	var zero Backoff
	if got := zero.Delay(1, nil); got != 100*time.Millisecond {
		t.Errorf("zero-value first delay = %v", got)
	}
	if got := zero.Delay(20, nil); got != 5*time.Second {
		t.Errorf("zero-value capped delay = %v", got)
	}
	// Jitter stays inside ±fraction and never goes negative.
	rng := rand.New(rand.NewSource(42))
	j := Backoff{Base: 100 * time.Millisecond, Factor: 1, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := j.Delay(1, rng)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v escapes [50ms,150ms]", d)
		}
	}
}

// gatewayStub records pushed JSONL bodies and can fail the first N
// requests.
type gatewayStub struct {
	mu       sync.Mutex
	bodies   []string
	failures int
	reqs     atomic.Int64
}

func (g *gatewayStub) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g.reqs.Add(1)
		g.mu.Lock()
		defer g.mu.Unlock()
		if g.failures > 0 {
			g.failures--
			http.Error(w, "unavailable", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		g.bodies = append(g.bodies, string(body))
		w.WriteHeader(http.StatusAccepted)
	})
}

func (g *gatewayStub) lines() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for _, body := range g.bodies {
		for _, ln := range strings.Split(strings.TrimSpace(body), "\n") {
			if ln != "" {
				out = append(out, ln)
			}
		}
	}
	return out
}

func TestForwarderBatchesBySize(t *testing.T) {
	stub := &gatewayStub{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	f := NewForwarder(ForwarderConfig{URL: srv.URL, MaxBatch: 3, MaxAge: time.Hour, Seed: 1})
	f.RegisterNode("n", []string{"cpu"})
	f.ObserveJob("n", 4, 100)
	f.Ingest("n", 160, []float64{0.5}) // completes the 3-line batch
	deadline := time.Now().Add(5 * time.Second)
	for stub.reqs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := f.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	lines := stub.lines()
	if len(lines) != 3 {
		t.Fatalf("gateway saw %d lines, want 3: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], `"metrics":["cpu"]`) ||
		!strings.Contains(lines[1], `"job":4`) ||
		!strings.Contains(lines[2], `"values":[0.5]`) {
		t.Errorf("wire lines wrong: %v", lines)
	}
}

func TestForwarderFlushesByAge(t *testing.T) {
	stub := &gatewayStub{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	f := NewForwarder(ForwarderConfig{URL: srv.URL, MaxBatch: 1000, MaxAge: 20 * time.Millisecond, Seed: 1})
	f.Ingest("n", 1, []float64{1})
	deadline := time.Now().Add(5 * time.Second)
	for stub.reqs.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if stub.reqs.Load() == 0 {
		t.Fatal("age flush never fired")
	}
	if err := f.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(stub.lines()) != 1 {
		t.Fatalf("gateway saw %v", stub.lines())
	}
}

func TestForwarderRetriesThenDelivers(t *testing.T) {
	stub := &gatewayStub{failures: 2}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()
	reg := obs.NewRegistry()
	f := NewForwarder(ForwarderConfig{
		URL: srv.URL, MaxBatch: 1, MaxRetries: 3, Seed: 1,
		Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 1},
		Metrics: reg,
	})
	f.Ingest("n", 1, []float64{2.5})
	// Wait for delivery before Close: closing mid-retry cancels the
	// in-flight attempt, which would count one extra failure.
	batches := reg.Counter("nodesentry_forward_batches_total")
	deadline := time.Now().Add(10 * time.Second)
	for batches.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := f.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := len(stub.lines()); got != 1 {
		t.Fatalf("delivered %d lines, want 1", got)
	}
	if v := reg.Counter("nodesentry_forward_retries_total").Value(); v != 2 {
		t.Errorf("retries = %d, want 2", v)
	}
	if v := reg.Counter("nodesentry_forward_failures_total").Value(); v != 2 {
		t.Errorf("failures = %d, want 2", v)
	}
	if v := reg.Counter("nodesentry_forward_batches_total").Value(); v != 1 {
		t.Errorf("batches = %d, want 1", v)
	}
	if v := reg.Counter("nodesentry_forward_dropped_total").Value(); v != 0 {
		t.Errorf("dropped = %d, want 0", v)
	}
}

func TestForwarderDropsWhenQueueFullAndExhausted(t *testing.T) {
	// No server listening: every attempt fails fast.
	reg := obs.NewRegistry()
	f := NewForwarder(ForwarderConfig{
		URL: "http://127.0.0.1:0/push", MaxBatch: 1, QueueSize: 1, MaxRetries: 0, Seed: 1,
		Backoff: Backoff{Base: time.Millisecond, Max: time.Millisecond, Factor: 1},
		Timeout: 50 * time.Millisecond,
		Metrics: reg,
	})
	for i := 0; i < 20; i++ {
		f.Ingest("n", int64(i), []float64{1})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = f.Close(ctx) // unreachable gateway: drain errors are expected
	dropped := reg.Counter("nodesentry_forward_dropped_total").Value()
	delivered := reg.Counter("nodesentry_forward_lines_total").Value()
	if delivered != 0 {
		t.Errorf("delivered %d lines to a dead endpoint", delivered)
	}
	if dropped != 20 {
		t.Errorf("dropped = %d, want all 20", dropped)
	}
	// Appends after Close are dropped, not queued.
	f.Ingest("n", 99, []float64{1})
	if v := reg.Counter("nodesentry_forward_dropped_total").Value(); v != dropped+1 {
		t.Errorf("post-close ingest not counted: %d", v)
	}
}

func TestForwarderCloseIsIdempotent(t *testing.T) {
	f := NewForwarder(ForwarderConfig{URL: "http://127.0.0.1:0/push", Seed: 1})
	if err := f.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
