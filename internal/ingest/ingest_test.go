package ingest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

// recordSink captures Sink calls as formatted strings so tests can
// assert exact event order and content.
type recordSink struct {
	mu     sync.Mutex
	events []string
}

func (r *recordSink) add(s string) {
	r.mu.Lock()
	r.events = append(r.events, s)
	r.mu.Unlock()
}

func (r *recordSink) RegisterNode(node string, metrics []string) {
	r.add(fmt.Sprintf("reg %s %v", node, metrics))
}

func (r *recordSink) ObserveJob(node string, job int64, start int64) {
	r.add(fmt.Sprintf("job %s %d %d", node, job, start))
}

func (r *recordSink) Ingest(node string, ts int64, values []float64) {
	r.add(fmt.Sprintf("ing %s %d %v", node, ts, values))
}

func (r *recordSink) all() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.events...)
}

// forNode filters events mentioning one node, preserving order.
func (r *recordSink) forNode(node string) []string {
	var out []string
	for _, e := range r.all() {
		if strings.Contains(e, " "+node+" ") {
			out = append(out, e)
		}
	}
	return out
}

// TestAppendLineJSONMatchesEncodingJSON pins the Forwarder's hand-rolled
// line encoder to json.Encoder byte-for-byte, across every wire shape,
// non-finite values, and strings needing escapes.
func TestAppendLineJSONMatchesEncodingJSON(t *testing.T) {
	job := int64(7)
	lines := []Line{
		{Node: "cn-1", Metrics: []string{"cpu_load", "mem_used"}},
		{Node: "cn-1", Job: &job, Start: 1200},
		{Node: "cn-1", Time: 1260, Values: []JSONFloat{0.4, JSONFloat(math.NaN()), 1e9}},
		{Node: "cn-2", Time: 60, Values: []JSONFloat{JSONFloat(math.Inf(1)), JSONFloat(math.Inf(-1)), -2.25e-9}},
		{Node: "weird \"node\"\n", Time: 1, Values: []JSONFloat{1}},
		{Node: "html<&>", Metrics: []string{"a<b", "ünïcode", "tab\there"}},
		{Node: "zero-start", Job: &job},
		{Node: "empty-vals", Time: 5, Values: []JSONFloat{}},
	}
	for _, l := range lines {
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(l); err != nil {
			t.Fatalf("encode %+v: %v", l, err)
		}
		got := appendLineJSON(nil, l)
		if string(got) != want.String() {
			t.Errorf("line %+v:\n got  %q\n want %q", l, got, want.String())
		}
	}
}

func TestJSONFloatRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.5, -2.25e9, math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, err := JSONFloat(v).MarshalJSON()
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back JSONFloat
		if err := back.UnmarshalJSON(b); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		got := float64(back)
		if math.IsNaN(v) {
			if !math.IsNaN(got) {
				t.Errorf("NaN round-tripped to %v", got)
			}
		} else if got != v {
			t.Errorf("%v round-tripped to %v via %s", v, got, b)
		}
	}
	var bad JSONFloat
	if err := bad.UnmarshalJSON([]byte(`"wat"`)); err == nil {
		t.Error("non-numeric string accepted")
	}
}
