package ingest

import (
	"fmt"
	"sync"
	"testing"

	"nodesentry/internal/obs"
)

func TestRouterPreservesPerNodeOrder(t *testing.T) {
	sink := &recordSink{}
	r := NewShardRouter(sink, RouterConfig{Shards: 4, QueueSize: 8})
	nodes := []string{"cn-1", "cn-2", "cn-3", "cn-4", "cn-5"}
	for _, n := range nodes {
		r.RegisterNode(n, []string{"cpu"})
	}
	for i := 0; i < 50; i++ {
		for _, n := range nodes {
			r.Ingest(n, int64(i), []float64{float64(i)})
		}
	}
	if d := r.Drain(); d != 0 {
		t.Fatalf("blocked router dropped %d events", d)
	}
	for _, n := range nodes {
		evs := sink.forNode(n)
		if len(evs) != 51 {
			t.Fatalf("node %s saw %d events, want 51", n, len(evs))
		}
		if evs[0] != fmt.Sprintf("reg %s [cpu]", n) {
			t.Errorf("node %s first event %q, not registration", n, evs[0])
		}
		for i, ev := range evs[1:] {
			want := fmt.Sprintf("ing %s %d [%d]", n, i, i)
			if ev != want {
				t.Fatalf("node %s event %d = %q, want %q", n, i, ev, want)
			}
		}
	}
}

func TestRouterShardingIsConsistent(t *testing.T) {
	r := NewShardRouter(&recordSink{}, RouterConfig{Shards: 8})
	defer r.Drain()
	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		for _, n := range []string{"a", "b", "c", "node-17", "node-18"} {
			s := r.shardOf(n)
			if prev, ok := seen[n]; ok && prev != s {
				t.Fatalf("node %s moved shard %d -> %d", n, prev, s)
			}
			seen[n] = s
		}
	}
}

// gateSink blocks every Ingest until the gate opens, simulating a slow
// downstream consumer.
type gateSink struct {
	recordSink
	gate chan struct{}
}

func (g *gateSink) Ingest(node string, ts int64, values []float64) {
	<-g.gate
	g.recordSink.Ingest(node, ts, values)
}

func TestRouterDropOldestUnderBackpressure(t *testing.T) {
	reg := obs.NewRegistry()
	sink := &gateSink{gate: make(chan struct{})}
	r := NewShardRouter(sink, RouterConfig{Shards: 1, QueueSize: 1, Policy: DropOldest, Metrics: reg})
	// First sample occupies the drain goroutine (blocked on the gate),
	// the second fills the 1-slot queue, each further one evicts it.
	for i := 0; i < 6; i++ {
		r.Ingest("n", int64(i), []float64{1})
	}
	close(sink.gate)
	dropped := r.Drain()
	if dropped < 3 {
		t.Fatalf("dropped %d events, want >= 3 with a 1-slot queue", dropped)
	}
	if got := len(sink.all()) + int(dropped); got != 6 {
		t.Errorf("processed+dropped = %d, want 6", got)
	}
	if v := reg.Counter("nodesentry_shard_dropped_total", "shard", "0").Value(); v != dropped {
		t.Errorf("drop counter = %d, want %d", v, dropped)
	}
	if v := reg.Counter("nodesentry_shard_processed_total", "shard", "0").Value(); v != int64(len(sink.all())) {
		t.Errorf("processed counter = %d, want %d", v, len(sink.all()))
	}
}

func TestRouterBlockPolicyLosesNothing(t *testing.T) {
	sink := &recordSink{}
	r := NewShardRouter(sink, RouterConfig{Shards: 2, QueueSize: 1, Policy: Block})
	var wg sync.WaitGroup
	const producers, each = 8, 200
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := fmt.Sprintf("cn-%d", p)
			for i := 0; i < each; i++ {
				r.Ingest(node, int64(i), []float64{0})
			}
		}()
	}
	wg.Wait()
	if d := r.Drain(); d != 0 {
		t.Fatalf("block policy dropped %d", d)
	}
	if got := len(sink.all()); got != producers*each {
		t.Fatalf("delivered %d events, want %d", got, producers*each)
	}
}

func TestRouterEnqueueAfterDrainCounted(t *testing.T) {
	r := NewShardRouter(&recordSink{}, RouterConfig{Shards: 2})
	if d := r.Drain(); d != 0 {
		t.Fatalf("fresh drain dropped %d", d)
	}
	r.Ingest("n", 1, []float64{1}) // must not panic on closed queues
	if r.Dropped() != 1 {
		t.Errorf("post-drain ingest not counted: %d", r.Dropped())
	}
	if d := r.Drain(); d != 1 {
		t.Errorf("second Drain = %d, want 1", d)
	}
}

func TestRouterShardLoadsFanOut(t *testing.T) {
	r := NewShardRouter(&recordSink{}, RouterConfig{Shards: 4})
	for i := 0; i < 32; i++ {
		r.Ingest(fmt.Sprintf("cn-%d", i), 1, []float64{1})
	}
	r.Drain()
	busy := 0
	total := int64(0)
	for _, n := range r.ShardLoads() {
		if n > 0 {
			busy++
		}
		total += n
	}
	if busy < 2 {
		t.Errorf("32 nodes landed on %d shards, want >= 2", busy)
	}
	if total != 32 {
		t.Errorf("shard loads sum to %d, want 32", total)
	}
}
