package ingest

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nodesentry/internal/obs"
)

func postPush(t *testing.T, url, contentType, body string, gzipped bool) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if gzipped {
		gz := gzip.NewWriter(&buf)
		if _, err := gz.Write([]byte(body)); err != nil {
			t.Fatal(err)
		}
		if err := gz.Close(); err != nil {
			t.Fatal(err)
		}
	} else {
		buf.WriteString(body)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/push", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = resp.Body.Close() })
	return resp
}

func TestIntakePushFormats(t *testing.T) {
	sink := &recordSink{}
	reg := obs.NewRegistry()
	dec := testDecoder(sink, reg)
	in := NewIntake(dec, IntakeConfig{Metrics: reg})
	srv := httptest.NewServer(in.Handler())
	defer srv.Close()

	// Exposition push.
	resp := postPush(t, srv.URL, "text/plain", "cpu{node=\"a\"} 1 60000\n", false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("exposition push: %s", resp.Status)
	}
	msg, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(msg), "accepted 1 samples") {
		t.Errorf("push response %q", msg)
	}
	// JSONL by content type.
	resp = postPush(t, srv.URL, "application/x-ndjson", `{"node":"a","time":120,"values":[2]}`+"\n", false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("jsonl push: %s", resp.Status)
	}
	// JSONL by sniffing (no content type).
	resp = postPush(t, srv.URL, "", `{"node":"a","time":180,"values":[3]}`+"\n", false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sniffed jsonl push: %s", resp.Status)
	}
	// Gzipped exposition.
	resp = postPush(t, srv.URL, "text/plain", "cpu{node=\"a\"} 4 240000\n", true)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("gzip push: %s", resp.Status)
	}

	events := sink.forNode("a")
	want := []string{"reg a [cpu]", "ing a 60 [1]", "ing a 120 [2]", "ing a 180 [3]", "ing a 240 [4]"}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
	if v := reg.Counter("nodesentry_intake_requests_total", "status", "ok").Value(); v != 4 {
		t.Errorf("ok requests = %d, want 4", v)
	}
}

func TestIntakeRejections(t *testing.T) {
	reg := obs.NewRegistry()
	dec := testDecoder(&recordSink{}, reg)
	in := NewIntake(dec, IntakeConfig{Metrics: reg, MaxBodyBytes: 64})
	srv := httptest.NewServer(in.Handler())
	defer srv.Close()

	// Wrong method.
	resp, err := http.Get(srv.URL + "/push")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /push: %s", resp.Status)
	}
	// Oversized plain body.
	resp = postPush(t, srv.URL, "text/plain", strings.Repeat("x", 200), false)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized push: %s, want 413", resp.Status)
	}
	// Gzip bomb: tiny compressed, inflates past the limit.
	resp = postPush(t, srv.URL, "text/plain", strings.Repeat("a", 100000), true)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("gzip bomb: %s, want 413", resp.Status)
	}
	// Corrupt gzip.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/push", strings.NewReader("not gzip"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("corrupt gzip: %s, want 400", resp.Status)
	}
	// Malformed exposition.
	resp = postPush(t, srv.URL, "text/plain", "cpu{node=\"a\" 1", false)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed exposition: %s, want 400", resp.Status)
	}
	if v := reg.Counter("nodesentry_intake_requests_total", "status", "error").Value(); v < 5 {
		t.Errorf("error requests = %d, want >= 5", v)
	}
	// Liveness endpoint still answers.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if string(body) != "ok\n" {
		t.Errorf("healthz = %q", body)
	}
}

func TestIsJSONL(t *testing.T) {
	for _, tc := range []struct {
		ct, body string
		want     bool
	}{
		{"application/json", "anything", true},
		{"application/x-ndjson", "", true},
		{"text/plain", `{"node":"a"}`, true}, // body sniffing wins over a non-JSON content type
		{"", "  \n\t{\"node\":\"a\"}", true},
		{"", "cpu{node=\"a\"} 1", false},
		{"", "# TYPE cpu gauge", false},
		{"", "", false},
	} {
		if got := isJSONL(tc.ct, []byte(tc.body)); got != tc.want {
			t.Errorf("isJSONL(%q, %q) = %v, want %v", tc.ct, tc.body, got, tc.want)
		}
	}
}
