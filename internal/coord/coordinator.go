package coord

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nodesentry/internal/fleetview"
	"nodesentry/internal/ingest"
	"nodesentry/internal/lifecycle"
	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/summary"
	"nodesentry/internal/telemetry"
)

// Config parameterizes a Coordinator.
type Config struct {
	// TotalShards is the number of partition lines the fleet is split
	// into (default 8). Must match what feeders use to place nodes.
	TotalShards int
	// LeaseTTL is how long a scorer stays a member without a heartbeat
	// (default 10s). Expiry triggers shard reassignment.
	LeaseTTL time.Duration
	// SweepInterval is Run's cadence for lease expiry + fleet fan-in
	// (default 2s).
	SweepInterval time.Duration
	// JournalSize bounds the merged event journal (default 4096).
	JournalSize int
	// DedupWindow bounds the (node, time) alert-dedup memory (default
	// 8192 keys, FIFO-evicted).
	DedupWindow int
	// LedgerSize bounds the accepted-alert ledger (default 16384).
	LedgerSize int
	// SSEBuffer / KeepAlive parameterize the merged /fleet/events SSE
	// stream exactly as fleetview.Config does.
	SSEBuffer int
	KeepAlive time.Duration
	// VicinityThreshold is only cosmetic here: the merged dashboard's
	// divergence highlight line (default 4).
	VicinityThreshold float64

	// Store, when non-nil, is the model registry served over /registry/.
	Store *lifecycle.Store

	// Summary, when non-nil, runs the semantic summarization tier over
	// the merged fan-in: every accepted envelope feeds the clusterer,
	// Sweep is the flush cadence, incidents land on the merged journal
	// and (with WebhookURL) the operator webhook as one folded payload
	// per open/resolve instead of one POST per alert.
	Summary *summary.Config
	// WebhookURL, when set, receives coordinator-side deliveries: folded
	// incident payloads when Summary is on, one raw envelope per accepted
	// alert when it is off. SummaryRaw keeps the per-envelope stream
	// flowing next to incidents (debug/migration).
	WebhookURL    string
	WebhookClient *http.Client
	SummaryRaw    bool

	// Client performs fan-in scrapes (default: 5s-timeout client).
	Client *http.Client
	// Metrics, when non-nil, receives the nodesentry_coord_* series.
	Metrics *obs.Registry
	// Logger, when non-nil, receives membership transitions.
	Logger *slog.Logger
	// Clock overrides time.Now for lease arithmetic (tests).
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TotalShards <= 0 {
		c.TotalShards = 8
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = 2 * time.Second
	}
	if c.JournalSize <= 0 {
		c.JournalSize = 4096
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 8192
	}
	if c.LedgerSize <= 0 {
		c.LedgerSize = 16384
	}
	if c.SSEBuffer <= 0 {
		c.SSEBuffer = 64
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 15 * time.Second
	}
	if c.VicinityThreshold <= 0 {
		c.VicinityThreshold = 4
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// member is one scorer's live coordinator-side record.
type member struct {
	info    ScorerInfo
	expires time.Time

	// Fan-in caches, refreshed by Sweep.
	state   fleetview.FleetState
	stateOK bool
	series  []telemetry.Series
}

// Ledger is the coordinator's exact alert accounting: every forwarded
// alert lands in exactly one bucket, so
//
//	Received == Accepted + Fenced + Deduped
//
// holds at any quiescent point — the equation the chaos partition drill
// reconciles against the scorers' own webhook ledgers.
type Ledger struct {
	Received int64 `json:"received"`
	Accepted int64 `json:"accepted"`
	Fenced   int64 `json:"fenced"`
	Deduped  int64 `json:"deduped"`
}

type coordMetrics struct {
	members    *obs.Gauge
	epoch      *obs.Gauge
	reassigns  *obs.Counter
	expiries   *obs.Counter
	sweeps     *obs.Counter
	scrapeErrs *obs.Counter
	accepted   *obs.Counter
	fenced     *obs.Counter
	deduped    *obs.Counter
}

func newCoordMetrics(r *obs.Registry) coordMetrics {
	return coordMetrics{
		members:    r.Gauge("nodesentry_coord_members"),
		epoch:      r.Gauge("nodesentry_coord_epoch"),
		reassigns:  r.Counter("nodesentry_coord_reassignments_total"),
		expiries:   r.Counter("nodesentry_coord_lease_expiries_total"),
		sweeps:     r.Counter("nodesentry_coord_sweeps_total"),
		scrapeErrs: r.Counter("nodesentry_coord_fanin_errors_total"),
		accepted:   r.Counter("nodesentry_coord_alerts_total", "status", VerdictAccepted),
		fenced:     r.Counter("nodesentry_coord_alerts_total", "status", VerdictFenced),
		deduped:    r.Counter("nodesentry_coord_alerts_total", "status", VerdictDuplicate),
	}
}

// Coordinator is the fleet control plane. Construct with New, mount its
// HTTP surface via Mounts, drive leases and fan-in with Run (or Sweep
// directly in tests), and Close when done.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*member
	epoch   int64
	owner   []string // shard → scorer ID ("" unowned)
	since   []int64  // shard → epoch at which the current owner acquired it

	dedup    map[string]struct{}
	dedupFot []string // FIFO eviction order
	ledger   Ledger
	accepted []AlertEnvelope

	journal *fleetview.Journal
	bus     *fleetview.Bus

	sum  *summary.Summarizer
	sink *runtime.WebhookSink

	met coordMetrics
	log *slog.Logger

	done      chan struct{}
	closeOnce sync.Once
}

// New builds a coordinator. Nothing runs until Run (or Sweep) is called;
// the HTTP surface from Mounts is live immediately.
func New(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		members: map[string]*member{},
		owner:   make([]string, cfg.TotalShards),
		since:   make([]int64, cfg.TotalShards),
		dedup:   map[string]struct{}{},
		journal: fleetview.NewJournal(cfg.JournalSize),
		bus:     fleetview.NewBus(),
		met:     newCoordMetrics(cfg.Metrics),
		log:     cfg.Logger,
		done:    make(chan struct{}),
	}
	c.journal.SetSource("coordinator")
	if cfg.WebhookURL != "" {
		c.sink = &runtime.WebhookSink{
			URL:     cfg.WebhookURL,
			Client:  cfg.WebhookClient,
			Metrics: cfg.Metrics,
		}
	}
	if cfg.Summary != nil {
		scfg := *cfg.Summary
		if scfg.Metrics == nil {
			scfg.Metrics = cfg.Metrics
		}
		if scfg.Logger == nil {
			scfg.Logger = cfg.Logger
		}
		if scfg.Clock == nil {
			scfg.Clock = cfg.Clock
		}
		prevRaw, prevInc := scfg.OnRaw, scfg.OnIncident
		scfg.OnRaw = func(e summary.Event) {
			if prevRaw != nil {
				prevRaw(e)
			}
			env, ok := e.Raw.(AlertEnvelope)
			if !ok || c.sink == nil {
				return
			}
			c.postEnvelope(env)
		}
		scfg.OnIncident = func(inc summary.Incident, tr summary.Transition) {
			if prevInc != nil {
				prevInc(inc, tr)
			}
			e := c.journal.Append(fleetview.Event{
				Ts:   inc.LastTs,
				Kind: fleetview.EventIncident,
				Detail: fmt.Sprintf("%s=%s id=%s count=%d dimension=%s severity=%.4f",
					tr, inc.Title, inc.ID, inc.Count, inc.Dimension, inc.Severity),
				Value: float64(inc.Count),
			})
			c.bus.Publish(e)
			// Webhooks fire on the open and resolve edges only — updates
			// amend the journaled incident, they are not re-delivered.
			if c.sink != nil && (tr == summary.Opened || tr == summary.Resolved) {
				if body, err := summary.WebhookJSON(inc, tr); err == nil {
					if err := c.sink.SendRaw(body); err != nil && c.log != nil {
						c.log.Warn("incident webhook delivery failed", "incident", inc.ID, "err", err)
					}
				}
			}
		}
		c.sum = summary.New(scfg)
	}
	return c
}

// Summarizer exposes the merged-fan-in summarization tier (nil without
// Config.Summary).
func (c *Coordinator) Summarizer() *summary.Summarizer { return c.sum }

// postEnvelope delivers one raw accepted envelope to the webhook.
func (c *Coordinator) postEnvelope(env AlertEnvelope) {
	body, err := json.Marshal(env)
	if err != nil {
		return
	}
	if err := c.sink.SendRaw(body); err != nil && c.log != nil {
		c.log.Warn("envelope webhook delivery failed", "node", env.Node, "err", err)
	}
}

// eventFromEnvelope adapts one accepted wire envelope to the clusterer's
// input shape: the metric family keys the group, the tags carry the
// dimensions incidents partition on — node (the usual varying dimension
// in a correlated flood), job, scorer and diagnosis level.
func eventFromEnvelope(env AlertEnvelope) summary.Event {
	metric := env.Family
	if metric == "" {
		metric = env.Level
	}
	tags := map[string]string{"node": env.Node}
	if env.Scorer != "" {
		tags["scorer"] = env.Scorer
	}
	if env.Job != 0 {
		tags["job"] = strconv.FormatInt(env.Job, 10)
	}
	if env.Level != "" {
		tags["level"] = env.Level
	}
	return summary.Event{
		Ts:       env.Time,
		Metric:   metric,
		Tags:     tags,
		Severity: env.Score,
		Priority: env.Priority,
		Raw:      env,
	}
}

// Close ends Run and every open SSE stream and releases the fan-in
// client's idle connections. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		// Force-flush the summarizer first: pending envelopes fold and
		// every open incident resolves while the webhook is still usable.
		if c.sum != nil {
			c.sum.Close()
		}
		c.cfg.Client.CloseIdleConnections()
	})
}

// Epoch returns the current assignment epoch.
func (c *Coordinator) Epoch() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epoch
}

// Journal exposes the merged event journal (tests, reconciliation).
func (c *Coordinator) Journal() *fleetview.Journal { return c.journal }

// LedgerSnapshot returns the alert accounting so far.
func (c *Coordinator) LedgerSnapshot() Ledger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ledger
}

// Accepted returns a copy of the accepted-alert ledger entries, in
// acceptance order.
func (c *Coordinator) Accepted() []AlertEnvelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]AlertEnvelope(nil), c.accepted...)
}

// Run sweeps leases and fans in scorer state every SweepInterval until
// ctx is canceled or Close is called.
func (c *Coordinator) Run(ctx ctxDone) {
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// ctxDone is the subset of context.Context Run needs (fleetview's idiom).
type ctxDone interface{ Done() <-chan struct{} }

// ---- membership ----

// Register admits (or refreshes) a scorer and returns its assignment.
// Re-registering an existing ID renews the lease in place — a restarted
// scorer gets its shards back without an epoch bump if the table is
// unchanged.
func (c *Coordinator) Register(info ScorerInfo) Assignment {
	now := c.cfg.Clock()
	c.mu.Lock()
	m, ok := c.members[info.ID]
	if !ok {
		m = &member{info: info}
		m.info.RegisteredUnix = now.Unix()
		c.members[info.ID] = m
		if c.log != nil {
			c.log.Info("scorer registered", "id", info.ID, "push", info.PushURL, "obs", info.ObsURL)
		}
	} else {
		// Keep the original registration time; refresh the endpoints (a
		// restarted scorer may listen elsewhere).
		m.info.PushURL, m.info.ObsURL = info.PushURL, info.ObsURL
	}
	m.info.LastSeenUnix = now.Unix()
	m.expires = now.Add(c.cfg.LeaseTTL)
	c.recomputeLocked("register " + info.ID)
	a := c.assignmentLocked(info.ID)
	c.mu.Unlock()
	return a
}

// Heartbeat renews a scorer's lease and returns its current assignment.
// Unknown IDs (expired, or the coordinator restarted) get ok=false — the
// scorer must re-register.
func (c *Coordinator) Heartbeat(id string) (Assignment, bool) {
	now := c.cfg.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[id]
	if !ok {
		return Assignment{}, false
	}
	m.info.LastSeenUnix = now.Unix()
	m.expires = now.Add(c.cfg.LeaseTTL)
	return c.assignmentLocked(id), true
}

// Leave removes a scorer immediately (graceful shutdown) and reassigns
// its shards.
func (c *Coordinator) Leave(id string) {
	c.mu.Lock()
	if _, ok := c.members[id]; ok {
		delete(c.members, id)
		if c.log != nil {
			c.log.Info("scorer left", "id", id)
		}
		c.recomputeLocked("leave " + id)
	}
	c.mu.Unlock()
}

// Scorers lists the live membership, ID-sorted.
func (c *Coordinator) Scorers() []ScorerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ScorerInfo, 0, len(c.members))
	for id, m := range c.members {
		info := m.info
		info.Shards = c.shardsOfLocked(id)
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Assignments returns every live scorer's assignment under one epoch.
func (c *Coordinator) Assignments() []Assignment {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Assignment, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.assignmentLocked(id))
	}
	return out
}

// Owner returns the scorer currently owning node's shard ("" when the
// fleet is empty) — the answer feeders route by.
func (c *Coordinator) Owner(node string) (ScorerInfo, bool) {
	shard := ingest.FNVShard(node, c.cfg.TotalShards)
	c.mu.Lock()
	defer c.mu.Unlock()
	id := c.owner[shard]
	m, ok := c.members[id]
	if !ok {
		return ScorerInfo{}, false
	}
	info := m.info
	info.Shards = c.shardsOfLocked(id)
	return info, true
}

func (c *Coordinator) shardsOfLocked(id string) []int {
	var shards []int
	for s, owner := range c.owner {
		if owner == id {
			shards = append(shards, s)
		}
	}
	return shards
}

func (c *Coordinator) assignmentLocked(id string) Assignment {
	return Assignment{
		Epoch:       c.epoch,
		Scorer:      id,
		Shards:      c.shardsOfLocked(id),
		TotalShards: c.cfg.TotalShards,
	}
}

// recomputeLocked rebuilds the shard→owner table from the sorted member
// IDs (shard i → ids[i mod n], the minimal deterministic spread over the
// FNV partition lines). Any change bumps the epoch once and re-stamps the
// acquisition epoch of every shard that changed hands — the `since` line
// the alert fence compares against.
func (c *Coordinator) recomputeLocked(cause string) {
	ids := make([]string, 0, len(c.members))
	for id := range c.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	next := make([]string, c.cfg.TotalShards)
	if len(ids) > 0 {
		for s := range next {
			next[s] = ids[s%len(ids)]
		}
	}
	changed := false
	for s := range next {
		if next[s] != c.owner[s] {
			changed = true
			break
		}
	}
	if !changed {
		c.met.members.Set(float64(len(c.members)))
		return
	}
	c.epoch++
	moved := 0
	for s := range next {
		if next[s] != c.owner[s] {
			c.since[s] = c.epoch
			moved++
		}
	}
	c.owner = next
	c.met.members.Set(float64(len(c.members)))
	c.met.epoch.Set(float64(c.epoch))
	c.met.reassigns.Inc()
	e := c.journal.Append(fleetview.Event{
		Ts:     c.cfg.Clock().Unix(),
		Kind:   EventReassign,
		Detail: fmt.Sprintf("cause=%s epoch=%d scorers=%d moved=%d", cause, c.epoch, len(ids), moved),
		Value:  float64(moved),
	})
	c.bus.Publish(e)
	if c.log != nil {
		c.log.Info("shards reassigned", "cause", cause, "epoch", c.epoch, "scorers", len(ids), "moved", moved)
	}
}

// EventReassign is the merged journal's kind for assignment-table changes.
const EventReassign = "reassign"

// ---- alert fan-in ----

// Accept runs one forwarded alert through the fence and the dedup ledger,
// returning the verdict. The fence admits an envelope iff its sender owns
// the node's shard right now AND the envelope's epoch is not older than
// the owner's acquisition epoch — a scorer that held a shard continuously
// across an unrelated epoch bump keeps landing alerts, while one that
// lost (or hasn't yet regained) the shard is fenced.
func (c *Coordinator) Accept(env AlertEnvelope) AlertVerdict {
	shard := ingest.FNVShard(env.Node, c.cfg.TotalShards)
	c.mu.Lock()
	c.ledger.Received++
	epoch := c.epoch
	if c.owner[shard] != env.Scorer || env.Epoch < c.since[shard] {
		c.ledger.Fenced++
		c.mu.Unlock()
		c.met.fenced.Inc()
		return AlertVerdict{Status: VerdictFenced, Epoch: epoch}
	}
	key := env.Node + "@" + strconv.FormatInt(env.Time, 10)
	if _, dup := c.dedup[key]; dup {
		c.ledger.Deduped++
		c.mu.Unlock()
		c.met.deduped.Inc()
		return AlertVerdict{Status: VerdictDuplicate, Epoch: epoch}
	}
	c.dedup[key] = struct{}{}
	c.dedupFot = append(c.dedupFot, key)
	if len(c.dedupFot) > c.cfg.DedupWindow {
		delete(c.dedup, c.dedupFot[0])
		c.dedupFot = c.dedupFot[1:]
	}
	c.ledger.Accepted++
	if len(c.accepted) < c.cfg.LedgerSize {
		c.accepted = append(c.accepted, env)
	}
	// Journal, bus and summarizer all have their own locks, and webhook
	// delivery blocks on HTTP — none of it belongs under c.mu.
	c.mu.Unlock()
	c.met.accepted.Inc()
	e := c.journal.Append(fleetview.Event{
		Ts:     env.Time,
		Kind:   fleetview.EventAlert,
		Node:   env.Node,
		Detail: fmt.Sprintf("scorer=%s epoch=%d job=%d priority=%d level=%s", env.Scorer, env.Epoch, env.Job, env.Priority, env.Level),
		Value:  env.Score,
	})
	c.bus.Publish(e)
	if c.sum != nil {
		if c.sink != nil && c.cfg.SummaryRaw {
			c.postEnvelope(env)
		}
		c.sum.Observe(eventFromEnvelope(env))
	} else if c.sink != nil {
		c.postEnvelope(env)
	}
	return AlertVerdict{Status: VerdictAccepted, Epoch: epoch}
}

// ---- lease + fan-in sweep ----

// Sweep runs one coordinator maintenance pass: expire lapsed leases
// (reassigning their shards), then scrape every live scorer's
// /fleet/state, /fleet/events and /metrics into the merged caches. Run
// calls it on a ticker; tests and the chaos drill call it directly for
// deterministic timing.
func (c *Coordinator) Sweep() {
	now := c.cfg.Clock()
	c.mu.Lock()
	expired := 0
	for id, m := range c.members {
		if now.After(m.expires) {
			delete(c.members, id)
			expired++
			if c.log != nil {
				c.log.Warn("scorer lease expired", "id", id, "last_seen", m.info.LastSeenUnix)
			}
		}
	}
	if expired > 0 {
		c.met.expiries.Add(int64(expired))
		c.recomputeLocked("lease expiry")
	}
	type target struct {
		id  string
		obs string
	}
	targets := make([]target, 0, len(c.members))
	for id, m := range c.members {
		if m.info.ObsURL != "" {
			targets = append(targets, target{id, m.info.ObsURL})
		}
	}
	c.mu.Unlock()

	// Scrapes run off-lock; results land under it. A scorer that vanished
	// mid-scrape simply has its result dropped.
	for _, t := range targets {
		st, stErr := c.fetchState(t.obs)
		events, evErr := c.fetchEvents(t.obs, c.journal.Cursor(t.id))
		series, seErr := c.fetchMetrics(t.obs)
		for _, err := range []error{stErr, evErr, seErr} {
			if err != nil {
				c.met.scrapeErrs.Inc()
				if c.log != nil {
					c.log.Warn("fan-in scrape failed", "scorer", t.id, "err", err)
				}
			}
		}
		for _, e := range events {
			if e.Src == "" {
				// A scorer journal without a configured source: namespace
				// it here so merged cursors stay per-daemon.
				e.Src, e.SrcSeq = t.id, e.Seq
			}
			if admitted, ok := c.journal.AppendIfNew(e); ok {
				c.bus.Publish(admitted)
			}
		}
		c.mu.Lock()
		if m, ok := c.members[t.id]; ok {
			if stErr == nil {
				m.state, m.stateOK = st, true
			}
			if seErr == nil {
				m.series = series
			}
		}
		c.mu.Unlock()
	}
	// Sweep is the coordinator's flush cadence: envelopes accepted since
	// the last pass cluster into incidents, and incidents quiet past
	// ResolveAfter resolve. Tests drive this deterministically by calling
	// Sweep with a fake Clock.
	if c.sum != nil {
		c.sum.Flush(c.cfg.Clock())
	}
	c.met.sweeps.Inc()
}

func (c *Coordinator) fetchState(base string) (fleetview.FleetState, error) {
	var st fleetview.FleetState
	body, err := c.get(base + "/fleet/state?spark=0")
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("coord: decode fleet state: %w", err)
	}
	return st, nil
}

func (c *Coordinator) fetchEvents(base string, since uint64) ([]fleetview.Event, error) {
	body, err := c.get(fmt.Sprintf("%s/fleet/events?since=%d", base, since))
	if err != nil {
		return nil, err
	}
	var events []fleetview.Event
	if err := json.Unmarshal(body, &events); err != nil {
		return nil, fmt.Errorf("coord: decode events: %w", err)
	}
	return events, nil
}

func (c *Coordinator) fetchMetrics(base string) ([]telemetry.Series, error) {
	body, err := c.get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	series, err := telemetry.ParseSeries(string(body))
	if err != nil {
		return nil, fmt.Errorf("coord: parse scorer metrics: %w", err)
	}
	return series, nil
}

func (c *Coordinator) get(url string) ([]byte, error) {
	resp, err := c.cfg.Client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("coord: get %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }() // body fully consumed below; close error is inert
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("coord: get %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("coord: read %s: %w", url, err)
	}
	return body, nil
}

// ---- merged views ----

// MergedState assembles the fleet-wide /fleet/state: every live scorer's
// cached node rows, keeping for each node only the row reported by the
// shard's current owner — a stale scorer's rows are fenced out of the
// merged view exactly as its alerts are. Epoch is the assignment epoch;
// JournalSeq indexes the merged journal.
func (c *Coordinator) MergedState() fleetview.FleetState {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := fleetview.FleetState{
		Now:        c.cfg.Clock().Unix(),
		Epoch:      c.epoch,
		JournalSeq: c.journal.Seq(),
	}
	for id, m := range c.members {
		if !m.stateOK {
			continue
		}
		st.Dropped += m.state.Dropped
		st.Seq += m.state.Seq
		for _, row := range m.state.Nodes {
			if c.owner[ingest.FNVShard(row.Node, c.cfg.TotalShards)] == id {
				st.Nodes = append(st.Nodes, row)
			}
		}
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Node < st.Nodes[j].Node })
	return st
}

// MergedMetricsText renders the fan-in metrics surface: every scraped
// scorer series summed across the fleet by series identity, in
// Prometheus text format. Gauges that shouldn't be summed (queue depths,
// etc.) still read sensibly as fleet totals; per-scorer detail stays on
// the scorers' own /metrics.
func (c *Coordinator) MergedMetricsText() string {
	c.mu.Lock()
	sums := map[string]float64{}
	scorers := 0
	for _, m := range c.members {
		if len(m.series) == 0 {
			continue
		}
		scorers++
		for _, s := range m.series {
			sums[s.Key()] += s.Value
		}
	}
	c.mu.Unlock()
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "# merged across %d scorers by nodesentry coordinator\n", scorers)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s %v\n", k, sums[k])
	}
	return b.String()
}
