package coord

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nodesentry/internal/fleetview"
	"nodesentry/internal/lifecycle"
	"nodesentry/internal/obs"
	"nodesentry/internal/testutil"
)

// serveCoordinator mounts the coordinator on an httptest server exactly
// as sentryd does: obs.Handler with the coordinator's mount seam. The
// returned closer must run via defer (not t.Cleanup) so it precedes the
// test's CheckGoroutines closer.
func serveCoordinator(t *testing.T, c *Coordinator, reg *obs.Registry) (*httptest.Server, func()) {
	t.Helper()
	srv := httptest.NewServer(obs.Handler(reg, nil, c.Mounts()...))
	return srv, func() {
		srv.Close()
		// The default client's keep-alive conns would read as leaks.
		http.DefaultClient.CloseIdleConnections()
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer func() { _ = resp.Body.Close() }()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPRegisterHeartbeatAlerts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	clk := newTestClock()
	c := New(Config{TotalShards: 8, Clock: clk.now})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	// Register two scorers over the wire.
	var a1, a2 Assignment
	decodeBody(t, postJSON(t, srv.URL+"/coord/register", ScorerInfo{ID: "scorer-a"}), &a1)
	decodeBody(t, postJSON(t, srv.URL+"/coord/register", ScorerInfo{ID: "scorer-b"}), &a2)
	if a2.Epoch != 2 || a2.TotalShards != 8 {
		t.Fatalf("second register = %+v", a2)
	}
	// Heartbeat returns the refreshed assignment.
	var hb Assignment
	decodeBody(t, postJSON(t, srv.URL+"/coord/heartbeat", map[string]string{"id": "scorer-a"}), &hb)
	if hb.Epoch != 2 || len(hb.Shards) == 0 {
		t.Fatalf("heartbeat = %+v", hb)
	}
	// Unknown heartbeat is 410 Gone (re-register signal), not 404: the
	// path exists, the lease doesn't.
	resp := postJSON(t, srv.URL+"/coord/heartbeat", map[string]string{"id": "ghost"})
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("unknown heartbeat status = %d, want 410", resp.StatusCode)
	}
	// Malformed bodies are 400.
	badResp, err := http.Post(srv.URL+"/coord/register", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	_ = badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed register status = %d, want 400", badResp.StatusCode)
	}

	// Alert intake over the wire: owner accepted, stale epoch fenced —
	// and the response is always 200 so retrying senders stand down.
	nodeB := nodeOwnedBy(t, c, "scorer-b")
	var v AlertVerdict
	decodeBody(t, postJSON(t, srv.URL+"/coord/alerts",
		AlertEnvelope{Scorer: "scorer-b", Epoch: 2, Node: nodeB, Time: 500}), &v)
	if v.Status != VerdictAccepted {
		t.Fatalf("owner alert verdict = %+v", v)
	}
	decodeBody(t, postJSON(t, srv.URL+"/coord/alerts",
		AlertEnvelope{Scorer: "scorer-a", Epoch: 2, Node: nodeB, Time: 501}), &v)
	if v.Status != VerdictFenced {
		t.Fatalf("non-owner alert verdict = %+v", v)
	}

	// The read side agrees.
	var scorers []ScorerInfo
	resp, err = http.Get(srv.URL + "/coord/scorers")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &scorers)
	if len(scorers) != 2 || scorers[0].ID != "scorer-a" {
		t.Fatalf("scorers = %+v", scorers)
	}
	var led Ledger
	resp, err = http.Get(srv.URL + "/coord/ledger")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &led)
	if led.Received != 2 || led.Accepted != 1 || led.Fenced != 1 {
		t.Fatalf("ledger = %+v", led)
	}
	var owner ScorerInfo
	resp, err = http.Get(srv.URL + "/coord/owner/" + nodeB)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &owner)
	if owner.ID != "scorer-b" {
		t.Fatalf("owner = %+v", owner)
	}
}

func TestHTTPRegistryPull(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	_, det := fixture(t)
	store, err := lifecycle.OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := store.SaveVersion(det, "initial")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate(v1.ID); err != nil {
		t.Fatal(err)
	}
	c := New(Config{TotalShards: 4, Store: store})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	var man Manifest
	resp, err := http.Get(srv.URL + "/registry/manifest")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &man)
	if !man.HasActive || man.Active.ID != v1.ID || len(man.Versions) != 1 {
		t.Fatalf("manifest = %+v", man)
	}

	resp, err = http.Get(srv.URL + "/registry/model/" + v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("model pull: status %d err %v", resp.StatusCode, err)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != man.Active.SHA256 {
		t.Fatal("served payload does not match manifest checksum")
	}
	if got := resp.Header.Get("X-Model-SHA256"); got != man.Active.SHA256 {
		t.Fatalf("X-Model-SHA256 = %s", got)
	}

	// Unknown and quarantined versions are refused.
	resp, err = http.Get(srv.URL + "/registry/model/v999999")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model status = %d", resp.StatusCode)
	}
	if err := store.Quarantine(v1.ID, "test"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/registry/model/" + v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("quarantined model status = %d", resp.StatusCode)
	}
}

// fakeScorer is a canned scorer observability surface for fan-in tests:
// a fleetview journal + static state + metrics, served over httptest.
type fakeScorer struct {
	id      string
	journal *fleetview.Journal
	state   fleetview.FleetState
	metrics string
	srv     *httptest.Server
}

func newFakeScorer(t *testing.T, id string, nodes []string) *fakeScorer {
	t.Helper()
	f := &fakeScorer{id: id, journal: fleetview.NewJournal(64)}
	f.journal.SetSource(id)
	for _, n := range nodes {
		f.state.Nodes = append(f.state.Nodes, fleetview.NodeState{Node: n, Ready: true, Score: 0.5})
	}
	f.state.Seq = 7
	f.metrics = "nodesentry_alerts_total 3\nnodesentry_shard_processed_total{shard=\"0\"} 11\n"
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(f.state)
	})
	mux.Handle("GET /fleet/events", fleetview.EventsServer{Journal: f.journal, Bus: fleetview.NewBus()})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		_, _ = fmt.Fprint(w, f.metrics)
	})
	f.srv = httptest.NewServer(mux)
	return f
}

func TestSweepFanInMergesStateEventsMetrics(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	clk := newTestClock()
	c := New(Config{TotalShards: 8, Clock: clk.now})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	// Two fake scorers; each will be asked only about nodes it owns, but
	// both *report* an overlapping node — the merged view must fence the
	// non-owner's row out.
	sA := newFakeScorer(t, "scorer-a", nil)
	defer sA.srv.Close()
	sB := newFakeScorer(t, "scorer-b", nil)
	defer sB.srv.Close()
	c.Register(ScorerInfo{ID: "scorer-a", ObsURL: sA.srv.URL})
	c.Register(ScorerInfo{ID: "scorer-b", ObsURL: sB.srv.URL})
	nodeA := nodeOwnedBy(t, c, "scorer-a")
	nodeB := nodeOwnedBy(t, c, "scorer-b")
	sA.state.Nodes = []fleetview.NodeState{{Node: nodeA, Ready: true}, {Node: nodeB, Ready: true}}
	sB.state.Nodes = []fleetview.NodeState{{Node: nodeB, Ready: true}}
	sA.journal.Append(fleetview.Event{Kind: "alert", Node: nodeA})
	sB.journal.Append(fleetview.Event{Kind: "alert", Node: nodeB})

	c.Sweep()

	// Merged state: one row per node, each from its owner.
	var st fleetview.FleetState
	resp, err := http.Get(srv.URL + "/fleet/state")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &st)
	if len(st.Nodes) != 2 {
		t.Fatalf("merged state has %d rows, want 2 (non-owner row fenced): %+v", len(st.Nodes), st.Nodes)
	}
	// Merged journal: both scorer events present, namespaced.
	bySrc := map[string]int{}
	for _, e := range c.Journal().Since(0) {
		bySrc[e.Src]++
	}
	if bySrc["scorer-a"] != 1 || bySrc["scorer-b"] != 1 {
		t.Fatalf("merged journal sources = %v", bySrc)
	}
	// A second sweep re-replays the scorer journals; per-source cursors
	// dedup them — no event appears twice.
	c.Sweep()
	if tot := c.Journal().Totals(); tot["alert"] != 2 {
		t.Fatalf("after re-sweep journal holds %d alerts, want 2 (deduped)", tot["alert"])
	}
	// New events still flow after the dedup cursor.
	sB.journal.Append(fleetview.Event{Kind: "alert", Node: nodeB, Detail: "second"})
	c.Sweep()
	if tot := c.Journal().Totals(); tot["alert"] != 3 {
		t.Fatalf("fresh event lost to dedup: %v", tot)
	}

	// Merged metrics: series summed across scorers by identity.
	resp, err = http.Get(srv.URL + "/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), "nodesentry_alerts_total 6") {
		t.Fatalf("merged metrics missing summed series:\n%s", body)
	}

	// Merged events serve over the same /fleet/events shape, SSE included.
	resp, err = http.Get(srv.URL + "/fleet/events?since=0")
	if err != nil {
		t.Fatal(err)
	}
	var events []fleetview.Event
	decodeBody(t, resp, &events)
	alerts := 0
	for _, e := range events {
		if e.Kind == "alert" {
			alerts++
		}
	}
	if alerts != 3 {
		t.Fatalf("merged events carry %d alerts, want 3: %+v", alerts, events)
	}

	// The dashboard renders over the merged surface.
	resp, err = http.Get(srv.URL + "/fleet/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "coordinator") {
		t.Fatalf("dashboard status %d", resp.StatusCode)
	}
}

func TestFanInSurvivesScorerOutage(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	clk := newTestClock()
	reg := obs.NewRegistry()
	c := New(Config{TotalShards: 4, Clock: clk.now, Metrics: reg, LeaseTTL: time.Hour})
	defer c.Close()
	s := newFakeScorer(t, "scorer-a", []string{"n1"})
	defer s.srv.Close() // idempotent with the mid-test Close
	c.Register(ScorerInfo{ID: "scorer-a", ObsURL: s.srv.URL})
	c.Sweep()
	if st := c.MergedState(); len(st.Nodes) != 1 {
		t.Fatalf("merged state rows = %d", len(st.Nodes))
	}
	// The scorer's obs endpoint dies; the sweep records errors but keeps
	// the last good state (the lease, not the scrape, decides liveness).
	s.srv.Close()
	c.Sweep()
	if st := c.MergedState(); len(st.Nodes) != 1 {
		t.Fatalf("outage evicted cached state: %d rows", len(st.Nodes))
	}
	snap := testutil.SnapshotCounters(map[string]*obs.Counter{
		"errs": reg.Counter("nodesentry_coord_fanin_errors_total"),
	})
	c.Sweep()
	snap.ExpectDelta(t, "errs", 3) // state + events + metrics all failed
}
