package coord

import (
	"sync"
	"testing"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixDet  *core.Detector
	fixErr  error
)

func fastOpts() core.Options {
	o := core.DefaultOptions()
	o.Epochs = 3
	o.MaxWindowsPerCluster = 60
	o.KMax = 4
	o.RepSegments = 3
	return o
}

// trainInputOf mirrors the public TrainInputFromDataset helper without
// importing the root package.
func trainInputOf(ds *dataset.Dataset) core.TrainInput {
	in := core.TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: telemetry.SemanticIndex(ds.Catalog),
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	return in
}

// fixture trains one detector on the tiny dataset, shared across the
// package's model-distribution tests (training dominates wall time).
func fixture(tb testing.TB) (*dataset.Dataset, *core.Detector) {
	tb.Helper()
	fixOnce.Do(func() {
		fixDS = dataset.Build(dataset.Tiny())
		fixDet, fixErr = core.Train(trainInputOf(fixDS), fastOpts())
	})
	if fixErr != nil {
		tb.Fatal(fixErr)
	}
	return fixDS, fixDet
}

// testClock is a hand-cranked Config.Clock: lease arithmetic under test
// control, no sleeps.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}
