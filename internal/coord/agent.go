package coord

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
)

// AgentConfig parameterizes the scorer-side coordinator client.
type AgentConfig struct {
	// ID is this scorer's stable name (required). It doubles as the
	// fleetview journal source, so merged event feeds stay per-daemon.
	ID string
	// CoordinatorURL is the coordinator's base URL (required).
	CoordinatorURL string
	// PushURL / ObsURL are this scorer's advertised endpoints.
	PushURL string
	ObsURL  string

	// HeartbeatInterval is the lease-renewal cadence (default 2s; keep it
	// well under the coordinator's LeaseTTL).
	HeartbeatInterval time.Duration
	// PullInterval is the model-sync cadence (default 10s; 0 keeps the
	// default, negative disables pulling).
	PullInterval time.Duration
	// ActiveModelID seeds the agent's view of which registry version it
	// already runs, so a freshly-started scorer doesn't re-pull the model
	// it was trained/loaded with.
	ActiveModelID string

	// Client overrides the HTTP client (default 5s timeout).
	Client *http.Client
	// Metrics, when non-nil, receives the nodesentry_agent_* series.
	Metrics *obs.Registry
	// Logger, when non-nil, receives membership and swap transitions.
	Logger *slog.Logger
}

func (c AgentConfig) withDefaults() AgentConfig {
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 2 * time.Second
	}
	if c.PullInterval == 0 {
		c.PullInterval = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 5 * time.Second}
	}
	return c
}

type agentMetrics struct {
	heartbeats *obs.Counter
	hbErrors   *obs.Counter
	epochG     *obs.Gauge
	fwdAcc     *obs.Counter
	fwdFenced  *obs.Counter
	fwdDup     *obs.Counter
	fwdErrors  *obs.Counter
	pulls      *obs.Counter
	swaps      *obs.Counter
}

func newAgentMetrics(r *obs.Registry) agentMetrics {
	return agentMetrics{
		heartbeats: r.Counter("nodesentry_agent_heartbeats_total"),
		hbErrors:   r.Counter("nodesentry_agent_heartbeat_errors_total"),
		epochG:     r.Gauge("nodesentry_agent_assignment_epoch"),
		fwdAcc:     r.Counter("nodesentry_agent_alerts_forwarded_total", "status", VerdictAccepted),
		fwdFenced:  r.Counter("nodesentry_agent_alerts_forwarded_total", "status", VerdictFenced),
		fwdDup:     r.Counter("nodesentry_agent_alerts_forwarded_total", "status", VerdictDuplicate),
		fwdErrors:  r.Counter("nodesentry_agent_forward_errors_total"),
		pulls:      r.Counter("nodesentry_agent_model_pulls_total"),
		swaps:      r.Counter("nodesentry_agent_model_swaps_total"),
	}
}

// Agent is a scorer's coordinator client: it registers, heartbeats the
// lease, applies every assignment to the scorer's ShardFilter, forwards
// alerts under the current epoch, and keeps the scorer's detector synced
// to the registry's active version (checksum-verified hot swap).
type Agent struct {
	cfg    AgentConfig
	filter *ShardFilter
	mon    *runtime.Monitor

	mu         sync.Mutex
	assignment Assignment
	registered bool
	modelID    string

	met agentMetrics
	log *slog.Logger
}

// NewAgent builds an agent around the scorer's shard filter and (for
// model sync; may be nil to disable) its monitor. Call Run on its own
// goroutine; stop it by canceling the context.
func NewAgent(cfg AgentConfig, filter *ShardFilter, mon *runtime.Monitor) (*Agent, error) {
	cfg = cfg.withDefaults()
	if cfg.ID == "" {
		return nil, fmt.Errorf("coord: agent needs an ID")
	}
	if cfg.CoordinatorURL == "" {
		return nil, fmt.Errorf("coord: agent needs a coordinator URL")
	}
	if filter == nil {
		return nil, fmt.Errorf("coord: agent needs a shard filter")
	}
	return &Agent{
		cfg:     cfg,
		filter:  filter,
		mon:     mon,
		modelID: cfg.ActiveModelID,
		met:     newAgentMetrics(cfg.Metrics),
		log:     cfg.Logger,
	}, nil
}

// Assignment returns the latest applied assignment (zero before the
// first successful register).
func (ag *Agent) Assignment() Assignment {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.assignment
}

// Run drives the register → heartbeat loop (and model sync) until ctx is
// canceled. Registration failures retry on the heartbeat cadence — a
// scorer outliving an unreachable coordinator keeps scoring its last
// assignment (or everything, before the first one) rather than dying.
func (ag *Agent) Run(ctx ctxDone) {
	ag.Register()
	hb := time.NewTicker(ag.cfg.HeartbeatInterval)
	defer hb.Stop()
	var pullC <-chan time.Time
	if ag.cfg.PullInterval > 0 {
		pull := time.NewTicker(ag.cfg.PullInterval)
		defer pull.Stop()
		pullC = pull.C
	}
	for {
		select {
		case <-ctx.Done():
			ag.leave()
			ag.cfg.Client.CloseIdleConnections()
			return
		case <-hb.C:
			ag.HeartbeatOnce()
		case <-pullC:
			if err := ag.SyncModel(); err != nil && ag.log != nil {
				ag.log.Warn("model sync failed", "err", err)
			}
		}
	}
}

// Register announces the scorer to the coordinator and applies the
// returned assignment. Reports success.
func (ag *Agent) Register() bool {
	var a Assignment
	err := ag.postJSON("/coord/register", ScorerInfo{
		ID: ag.cfg.ID, PushURL: ag.cfg.PushURL, ObsURL: ag.cfg.ObsURL,
	}, &a)
	if err != nil {
		ag.met.hbErrors.Inc()
		if ag.log != nil {
			ag.log.Warn("register failed", "coordinator", ag.cfg.CoordinatorURL, "err", err)
		}
		return false
	}
	ag.apply(a, true)
	if ag.log != nil {
		ag.log.Info("registered", "epoch", a.Epoch, "shards", len(a.Shards))
	}
	return true
}

// HeartbeatOnce renews the lease and applies the (possibly changed)
// assignment; a Gone answer re-registers. Reports whether the lease is
// currently held.
func (ag *Agent) HeartbeatOnce() bool {
	ag.mu.Lock()
	registered := ag.registered
	ag.mu.Unlock()
	if !registered {
		return ag.Register()
	}
	ag.met.heartbeats.Inc()
	var a Assignment
	err := ag.postJSON("/coord/heartbeat", struct {
		ID string `json:"id"`
	}{ag.cfg.ID}, &a)
	switch {
	case err == nil:
		ag.apply(a, true)
		return true
	case errIsGone(err):
		// Lease lapsed (we were partitioned past the TTL): rejoin.
		ag.mu.Lock()
		ag.registered = false
		ag.mu.Unlock()
		return ag.Register()
	default:
		ag.met.hbErrors.Inc()
		if ag.log != nil {
			ag.log.Warn("heartbeat failed", "err", err)
		}
		return false
	}
}

func (ag *Agent) apply(a Assignment, registered bool) {
	ag.filter.SetAssignment(a)
	ag.met.epochG.Set(float64(a.Epoch))
	ag.mu.Lock()
	ag.assignment = a
	ag.registered = registered
	ag.mu.Unlock()
}

// leave deregisters gracefully (best effort — the lease expires anyway).
func (ag *Agent) leave() {
	_ = ag.postJSON("/coord/leave", struct {
		ID string `json:"id"`
	}{ag.cfg.ID}, nil)
}

// ForwardAlert sends one alert to the coordinator under the current
// assignment epoch. At-least-once: transient transport errors retry
// twice; the coordinator's fence and dedup make redelivery safe. The
// returned verdict is VerdictFenced et al., or an error when delivery
// never succeeded.
func (ag *Agent) ForwardAlert(a runtime.Alert) (string, error) {
	env := Envelope(a, ag.cfg.ID, ag.Assignment().Epoch)
	var verdict AlertVerdict
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(50 * time.Millisecond)
		}
		if err = ag.postJSON("/coord/alerts", env, &verdict); err == nil {
			switch verdict.Status {
			case VerdictAccepted:
				ag.met.fwdAcc.Inc()
			case VerdictFenced:
				ag.met.fwdFenced.Inc()
			case VerdictDuplicate:
				ag.met.fwdDup.Inc()
			}
			return verdict.Status, nil
		}
	}
	ag.met.fwdErrors.Inc()
	return "", fmt.Errorf("coord: forward alert for %s: %w", a.Node, err)
}

// SyncModel pulls the registry's active version if it differs from what
// the scorer runs, verifies the payload against the manifest checksum,
// and hot-swaps the monitor's detector. A nil monitor or a registry-less
// coordinator makes it a no-op.
func (ag *Agent) SyncModel() error {
	if ag.mon == nil {
		return nil
	}
	body, err := ag.get("/registry/manifest")
	if err != nil {
		return err
	}
	var man Manifest
	if err := json.Unmarshal(body, &man); err != nil {
		return fmt.Errorf("coord: decode manifest: %w", err)
	}
	if !man.HasActive {
		return nil
	}
	ag.mu.Lock()
	current := ag.modelID
	ag.mu.Unlock()
	if man.Active.ID == current {
		return nil
	}
	ag.met.pulls.Inc()
	payload, err := ag.get("/registry/model/" + man.Active.ID)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != man.Active.SHA256 {
		return fmt.Errorf("coord: model %s checksum mismatch (have %s, manifest %s)",
			man.Active.ID, hex.EncodeToString(sum[:8]), man.Active.SHA256[:16])
	}
	det, err := core.Load(bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("coord: decode model %s: %w", man.Active.ID, err)
	}
	pause, err := ag.mon.SwapDetector(det)
	if err != nil {
		return fmt.Errorf("coord: swap model %s: %w", man.Active.ID, err)
	}
	ag.mu.Lock()
	ag.modelID = man.Active.ID
	ag.mu.Unlock()
	ag.met.swaps.Inc()
	if ag.log != nil {
		ag.log.Info("model swapped from registry", "version", man.Active.ID, "pause", pause)
	}
	return nil
}

// ModelID returns the registry version the scorer currently runs.
func (ag *Agent) ModelID() string {
	ag.mu.Lock()
	defer ag.mu.Unlock()
	return ag.modelID
}

// ---- transport ----

// goneError marks a 410 response (lease lost, must re-register).
type goneError struct{ msg string }

func (e *goneError) Error() string { return e.msg }

func errIsGone(err error) bool {
	_, ok := err.(*goneError)
	return ok
}

func (ag *Agent) postJSON(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("coord: encode %s: %w", path, err)
	}
	r, err := ag.cfg.Client.Post(ag.cfg.CoordinatorURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("coord: post %s: %w", path, err)
	}
	defer func() { _ = r.Body.Close() }() // body fully consumed below; close error is inert
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		return fmt.Errorf("coord: read %s: %w", path, err)
	}
	if r.StatusCode == http.StatusGone {
		return &goneError{msg: fmt.Sprintf("coord: %s: %s", path, http.StatusText(http.StatusGone))}
	}
	if r.StatusCode >= 300 {
		return fmt.Errorf("coord: post %s: %s", path, r.Status)
	}
	if resp != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, resp); err != nil {
			return fmt.Errorf("coord: decode %s response: %w", path, err)
		}
	}
	return nil
}

func (ag *Agent) get(path string) ([]byte, error) {
	r, err := ag.cfg.Client.Get(ag.cfg.CoordinatorURL + path)
	if err != nil {
		return nil, fmt.Errorf("coord: get %s: %w", path, err)
	}
	defer func() { _ = r.Body.Close() }() // body fully consumed below; close error is inert
	if r.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("coord: get %s: %s", path, r.Status)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("coord: read %s: %w", path, err)
	}
	return body, nil
}
