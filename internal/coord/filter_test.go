package coord

import (
	"fmt"
	"testing"

	"nodesentry/internal/ingest"
	"nodesentry/internal/obs"
)

// recordingSink counts what reaches the wrapped side of a ShardFilter.
type recordingSink struct {
	registered []string
	jobs       int
	samples    map[string]int
}

func newRecordingSink() *recordingSink { return &recordingSink{samples: map[string]int{}} }

func (s *recordingSink) RegisterNode(node string, metrics []string) {
	s.registered = append(s.registered, node)
}
func (s *recordingSink) ObserveJob(node string, job, start int64) { s.jobs++ }
func (s *recordingSink) Ingest(node string, ts int64, values []float64) {
	s.samples[node]++
}

func TestShardFilterTransparentBeforeAssignment(t *testing.T) {
	sink := newRecordingSink()
	f := NewShardFilter(sink, nil)
	var _ ingest.Sink = f // the filter slots in wherever a Sink goes

	for i := 0; i < 16; i++ {
		node := fmt.Sprintf("node-%d", i)
		f.RegisterNode(node, []string{"m"})
		f.Ingest(node, 100, []float64{1})
	}
	if len(sink.registered) != 16 || len(sink.samples) != 16 {
		t.Fatalf("standalone filter dropped traffic: %d registered, %d sampled",
			len(sink.registered), len(sink.samples))
	}
	if f.Dropped() != 0 || f.Epoch() != 0 {
		t.Fatalf("pre-assignment filter: dropped=%d epoch=%d", f.Dropped(), f.Epoch())
	}
	if !f.Owns("anything") {
		t.Fatal("pre-assignment filter must own every node")
	}
}

func TestShardFilterEnforcesAssignment(t *testing.T) {
	sink := newRecordingSink()
	reg := obs.NewRegistry()
	f := NewShardFilter(sink, reg)

	// Own shards 0 and 2 of 4.
	f.SetAssignment(Assignment{Epoch: 5, Scorer: "s", Shards: []int{0, 2}, TotalShards: 4})
	if f.Epoch() != 5 {
		t.Fatalf("epoch = %d, want 5", f.Epoch())
	}

	var passed, dropped int
	for i := 0; i < 64; i++ {
		node := fmt.Sprintf("node-%d", i)
		f.RegisterNode(node, []string{"m"}) // registrations always pass
		f.ObserveJob(node, 1, 100)          // job transitions always pass
		f.Ingest(node, 100, []float64{1})
		shard := ingest.FNVShard(node, 4)
		owned := shard == 0 || shard == 2
		if owned {
			passed++
		} else {
			dropped++
		}
		if f.Owns(node) != owned {
			t.Fatalf("Owns(%s) = %v, shard %d", node, f.Owns(node), shard)
		}
		if got := sink.samples[node]; (got == 1) != owned {
			t.Fatalf("node %s (shard %d, owned=%v) saw %d samples", node, shard, owned, got)
		}
	}
	if dropped == 0 || passed == 0 {
		t.Fatalf("degenerate partition: %d passed, %d dropped", passed, dropped)
	}
	if len(sink.registered) != 64 || sink.jobs != 64 {
		t.Fatalf("registrations/jobs filtered: %d/%d, want 64/64", len(sink.registered), sink.jobs)
	}
	if f.Dropped() != int64(dropped) {
		t.Fatalf("Dropped() = %d, want %d", f.Dropped(), dropped)
	}

	// Reassignment flips ownership: a previously dropped node passes once
	// its shard is acquired.
	f.SetAssignment(Assignment{Epoch: 6, Scorer: "s", Shards: []int{0, 1, 2, 3}, TotalShards: 4})
	for i := 0; i < 64; i++ {
		node := fmt.Sprintf("node-%d", i)
		f.Ingest(node, 200, []float64{1})
		if sink.samples[node] == 0 {
			t.Fatalf("node %s still filtered after owning all shards", node)
		}
	}
	if f.Dropped() != int64(dropped) {
		t.Fatalf("full ownership still dropping: %d", f.Dropped())
	}
}
