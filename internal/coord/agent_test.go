package coord

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"nodesentry/internal/lifecycle"
	"nodesentry/internal/runtime"
	"nodesentry/internal/testutil"
)

// newTestAgent wires an agent with its own HTTP client so the test can
// flush keep-alive conns via the returned closer (defer it before the
// goroutine check).
func newTestAgent(t *testing.T, cfg AgentConfig, filter *ShardFilter, mon *runtime.Monitor) (*Agent, func()) {
	t.Helper()
	client := &http.Client{Timeout: 5 * time.Second}
	cfg.Client = client
	ag, err := NewAgent(cfg, filter, mon)
	if err != nil {
		t.Fatal(err)
	}
	return ag, client.CloseIdleConnections
}

func TestAgentRegisterHeartbeatReRegister(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	clk := newTestClock()
	c := New(Config{TotalShards: 4, LeaseTTL: 10 * time.Second, Clock: clk.now})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	filter := NewShardFilter(newRecordingSink(), nil)
	ag, closeClient := newTestAgent(t, AgentConfig{
		ID: "scorer-a", CoordinatorURL: srv.URL, PullInterval: -1,
	}, filter, nil)
	defer closeClient()

	if !ag.Register() {
		t.Fatal("register failed")
	}
	if a := ag.Assignment(); a.Epoch != 1 || len(a.Shards) != 4 {
		t.Fatalf("applied assignment = %+v", a)
	}
	// The assignment reached the filter, not just the agent's cache.
	if filter.Epoch() != 1 {
		t.Fatalf("filter epoch = %d, want 1", filter.Epoch())
	}

	// A second scorer joins; the next heartbeat picks up the new table.
	c.Register(ScorerInfo{ID: "scorer-b"})
	if !ag.HeartbeatOnce() {
		t.Fatal("heartbeat failed")
	}
	if a := ag.Assignment(); a.Epoch != 2 || len(a.Shards) != 2 {
		t.Fatalf("post-join assignment = %+v", a)
	}

	// The lease lapses while the agent is partitioned: the coordinator
	// answers 410 and the agent re-registers in the same HeartbeatOnce.
	clk.advance(11 * time.Second)
	c.Heartbeat("scorer-b")
	c.Sweep()
	if got := len(c.Scorers()); got != 1 {
		t.Fatalf("membership after expiry = %d scorers", got)
	}
	if !ag.HeartbeatOnce() {
		t.Fatal("heartbeat after lease loss did not recover")
	}
	if got := len(c.Scorers()); got != 2 {
		t.Fatalf("agent did not re-register: %d scorers", got)
	}
	if a := ag.Assignment(); a.Epoch != c.Epoch() {
		t.Fatalf("re-registered assignment epoch = %d, coordinator at %d", a.Epoch, c.Epoch())
	}
}

func TestAgentForwardAlertVerdicts(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{TotalShards: 4})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	filter := NewShardFilter(newRecordingSink(), nil)
	ag, closeClient := newTestAgent(t, AgentConfig{
		ID: "scorer-a", CoordinatorURL: srv.URL, PullInterval: -1,
	}, filter, nil)
	defer closeClient()
	if !ag.Register() {
		t.Fatal("register failed")
	}

	node := nodeOwnedBy(t, c, "scorer-a")
	alert := runtime.Alert{Node: node, Time: 900, Score: 7.5}
	if v, err := ag.ForwardAlert(alert); err != nil || v != VerdictAccepted {
		t.Fatalf("forward = %s, %v", v, err)
	}
	// At-least-once redelivery lands as a duplicate, not a double count.
	if v, err := ag.ForwardAlert(alert); err != nil || v != VerdictDuplicate {
		t.Fatalf("redelivery = %s, %v", v, err)
	}
	led := c.LedgerSnapshot()
	if led.Accepted != 1 || led.Deduped != 1 {
		t.Fatalf("ledger = %+v", led)
	}
	// An unreachable coordinator is an error after retries, not a hang.
	closeSrv()
	if _, err := ag.ForwardAlert(runtime.Alert{Node: node, Time: 901}); err == nil {
		t.Fatal("forward to closed coordinator succeeded")
	}
}

func TestAgentSyncModelHotSwap(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	ds, det := fixture(t)
	store, err := lifecycle.OpenStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := store.SaveVersion(det, "published by coordinator")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate(v1.ID); err != nil {
		t.Fatal(err)
	}
	c := New(Config{TotalShards: 4, Store: store})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	mon, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, ScoringWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	filter := NewShardFilter(mon, nil)
	ag, closeClient := newTestAgent(t, AgentConfig{
		ID: "scorer-a", CoordinatorURL: srv.URL,
	}, filter, mon)
	defer closeClient()

	// The agent starts without a registry identity: the active version is
	// news, so it pulls, checksum-verifies, and hot-swaps.
	if err := ag.SyncModel(); err != nil {
		t.Fatal(err)
	}
	if got := ag.ModelID(); got != v1.ID {
		t.Fatalf("model id after sync = %s, want %s", got, v1.ID)
	}
	if got := mon.Epoch(); got != 2 {
		t.Fatalf("monitor epoch after swap = %d, want 2", got)
	}
	// Re-sync against an unchanged registry is a no-op.
	if err := ag.SyncModel(); err != nil {
		t.Fatal(err)
	}
	if got := mon.Epoch(); got != 2 {
		t.Fatalf("idempotent sync re-swapped: epoch %d", got)
	}

	// A newly activated version swaps again on the next sync.
	v2, err := store.SaveVersion(det, "retrained")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Activate(v2.ID); err != nil {
		t.Fatal(err)
	}
	if err := ag.SyncModel(); err != nil {
		t.Fatal(err)
	}
	if got := ag.ModelID(); got != v2.ID {
		t.Fatalf("model id after second sync = %s, want %s", got, v2.ID)
	}
	if got := mon.Epoch(); got != 3 {
		t.Fatalf("monitor epoch after second swap = %d, want 3", got)
	}
}

func TestAgentRunShutsDownClean(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{TotalShards: 4})
	defer c.Close()
	srv, closeSrv := serveCoordinator(t, c, nil)
	defer closeSrv()

	filter := NewShardFilter(newRecordingSink(), nil)
	ag, closeClient := newTestAgent(t, AgentConfig{
		ID: "scorer-a", CoordinatorURL: srv.URL,
		HeartbeatInterval: 10 * time.Millisecond, PullInterval: -1,
	}, filter, nil)
	defer closeClient()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ag.Run(ctx)
	}()
	testutil.Eventually(t, "agent registers", func() error {
		if len(c.Scorers()) != 1 {
			return fmt.Errorf("scorers = %d", len(c.Scorers()))
		}
		return nil
	})
	cancel()
	<-done
	// The shutdown path deregistered gracefully.
	if got := len(c.Scorers()); got != 0 {
		t.Fatalf("scorer still registered after Run exit: %d", got)
	}
}
