package coord

import (
	"sync"
	"sync/atomic"

	"nodesentry/internal/ingest"
	"nodesentry/internal/obs"
)

// ShardFilter is the scorer-side enforcement of the assignment table: an
// ingest.Sink that passes samples through only for nodes whose shard the
// scorer currently owns, counting the rest as drops. Registrations and
// job transitions always pass — a shard handed over mid-stream must not
// force re-registration of layouts the scorer already knows, and keeping
// cold state for unowned nodes costs nothing but lets a handover resume
// instantly.
//
// Before the first assignment arrives the filter is transparent
// (standalone behavior); SetAssignment flips it into enforcement.
type ShardFilter struct {
	sink ingest.Sink

	mu     sync.RWMutex
	active bool
	owned  []bool
	epoch  int64

	dropped atomic.Int64
	dropMet *obs.Counter
}

// NewShardFilter wraps sink. Metrics, when non-nil, receives
// nodesentry_coord_filtered_total.
func NewShardFilter(sink ingest.Sink, metrics *obs.Registry) *ShardFilter {
	return &ShardFilter{sink: sink, dropMet: metrics.Counter("nodesentry_coord_filtered_total")}
}

// SetAssignment installs a new shard set; samples for unowned shards are
// filtered from this point on.
func (f *ShardFilter) SetAssignment(a Assignment) {
	owned := make([]bool, a.TotalShards)
	for _, s := range a.Shards {
		if s >= 0 && s < len(owned) {
			owned[s] = true
		}
	}
	f.mu.Lock()
	f.active, f.owned, f.epoch = true, owned, a.Epoch
	f.mu.Unlock()
}

// Epoch returns the epoch of the installed assignment (0 before any).
func (f *ShardFilter) Epoch() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.epoch
}

// Owns reports whether node's shard is currently owned (true before the
// first assignment).
func (f *ShardFilter) Owns(node string) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.ownsLocked(node)
}

func (f *ShardFilter) ownsLocked(node string) bool {
	if !f.active {
		return true
	}
	return f.owned[ingest.FNVShard(node, len(f.owned))]
}

// Dropped reports samples filtered so far.
func (f *ShardFilter) Dropped() int64 { return f.dropped.Load() }

// RegisterNode always passes through (Sink).
func (f *ShardFilter) RegisterNode(node string, metrics []string) {
	f.sink.RegisterNode(node, metrics)
}

// ObserveJob always passes through (Sink).
func (f *ShardFilter) ObserveJob(node string, job int64, start int64) {
	f.sink.ObserveJob(node, job, start)
}

// Ingest delivers the sample iff the node's shard is owned (Sink).
func (f *ShardFilter) Ingest(node string, ts int64, values []float64) {
	f.mu.RLock()
	ok := f.ownsLocked(node)
	f.mu.RUnlock()
	if !ok {
		f.dropped.Add(1)
		f.dropMet.Inc()
		return
	}
	f.sink.Ingest(node, ts, values)
}
