package coord

import (
	"context"
	"fmt"
	"testing"
	"time"

	"nodesentry/internal/ingest"
	"nodesentry/internal/testutil"
)

// nodeOwnedBy fabricates a node name whose FNV shard is owned by want
// under the coordinator's current table.
func nodeOwnedBy(t *testing.T, c *Coordinator, want string) string {
	t.Helper()
	for i := 0; i < 10_000; i++ {
		node := fmt.Sprintf("node-%d", i)
		if info, ok := c.Owner(node); ok && info.ID == want {
			return node
		}
	}
	t.Fatalf("no probe node maps to %s", want)
	return ""
}

func TestMembershipAssignsDisjointCover(t *testing.T) {
	clk := newTestClock()
	c := New(Config{TotalShards: 8, Clock: clk.now})
	defer c.Close()

	a1 := c.Register(ScorerInfo{ID: "scorer-a"})
	if a1.Epoch != 1 || len(a1.Shards) != 8 {
		t.Fatalf("single scorer assignment = %+v, want epoch 1 owning all 8", a1)
	}
	a2 := c.Register(ScorerInfo{ID: "scorer-b"})
	if a2.Epoch != 2 {
		t.Fatalf("second join epoch = %d, want 2", a2.Epoch)
	}

	// The two assignments are disjoint and cover every shard.
	owned := map[int]string{}
	for _, a := range c.Assignments() {
		for _, s := range a.Shards {
			if prev, dup := owned[s]; dup {
				t.Fatalf("shard %d assigned to both %s and %s", s, prev, a.Scorer)
			}
			owned[s] = a.Scorer
		}
	}
	if len(owned) != 8 {
		t.Fatalf("assignments cover %d/8 shards", len(owned))
	}

	// Heartbeats renew without churning the epoch.
	if a, ok := c.Heartbeat("scorer-a"); !ok || a.Epoch != 2 {
		t.Fatalf("heartbeat = %+v, %v", a, ok)
	}
	// Re-registering an existing scorer (restart) is not a table change.
	if a := c.Register(ScorerInfo{ID: "scorer-b"}); a.Epoch != 2 {
		t.Fatalf("re-register bumped epoch to %d", a.Epoch)
	}
	// Unknown heartbeats demand re-registration.
	if _, ok := c.Heartbeat("scorer-zombie"); ok {
		t.Fatal("heartbeat for unknown scorer succeeded")
	}

	// Graceful leave: the survivor owns everything, epoch bumps once.
	c.Leave("scorer-b")
	if got := c.Epoch(); got != 3 {
		t.Fatalf("epoch after leave = %d, want 3", got)
	}
	a, ok := c.Heartbeat("scorer-a")
	if !ok || len(a.Shards) != 8 {
		t.Fatalf("survivor assignment = %+v", a)
	}
}

func TestLeaseExpiryReassigns(t *testing.T) {
	clk := newTestClock()
	c := New(Config{TotalShards: 4, LeaseTTL: 10 * time.Second, Clock: clk.now})
	defer c.Close()
	c.Register(ScorerInfo{ID: "scorer-a"})
	c.Register(ScorerInfo{ID: "scorer-b"})
	epoch := c.Epoch()

	// scorer-a keeps heartbeating; scorer-b goes dark. Sweeps inside the
	// TTL change nothing.
	clk.advance(6 * time.Second)
	c.Heartbeat("scorer-a")
	c.Sweep()
	if got := c.Epoch(); got != epoch {
		t.Fatalf("sweep inside TTL bumped epoch %d → %d", epoch, got)
	}
	// Past the TTL, b's lease lapses: its shards move to a, epoch bumps.
	clk.advance(6 * time.Second)
	c.Heartbeat("scorer-a")
	c.Sweep()
	if got := c.Epoch(); got != epoch+1 {
		t.Fatalf("epoch after expiry = %d, want %d", got, epoch+1)
	}
	if scorers := c.Scorers(); len(scorers) != 1 || scorers[0].ID != "scorer-a" {
		t.Fatalf("membership after expiry = %+v", scorers)
	}
	if a, _ := c.Heartbeat("scorer-a"); len(a.Shards) != 4 {
		t.Fatalf("survivor owns %d/4 shards", len(a.Shards))
	}
	// The expired scorer's next heartbeat is refused — it must re-register
	// and will then get fresh shards under the new epoch.
	if _, ok := c.Heartbeat("scorer-b"); ok {
		t.Fatal("expired scorer's heartbeat still honored")
	}
}

// TestEpochFencing pins the fence semantics the zero-lost/zero-duplicate
// contract rests on:
//
//   - a scorer that lost a shard is fenced on the ownership check;
//   - a scorer that re-gained a shard but stamps a pre-loss epoch is
//     fenced on the acquisition (`since`) check;
//   - a scorer that held its shard continuously across an unrelated epoch
//     bump is NOT fenced just because its heartbeat lags the bump;
//   - redelivery of an accepted alert is a duplicate, not a double count.
func TestEpochFencing(t *testing.T) {
	clk := newTestClock()
	c := New(Config{TotalShards: 8, Clock: clk.now})
	defer c.Close()
	aAsn := c.Register(ScorerInfo{ID: "scorer-a"})
	c.Register(ScorerInfo{ID: "scorer-b"})
	epoch2 := c.Epoch()

	nodeA := nodeOwnedBy(t, c, "scorer-a") // owned by a since epoch 1 or 2
	nodeB := nodeOwnedBy(t, c, "scorer-b")

	// Baseline: both owners land alerts under the current epoch.
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-a", Epoch: epoch2, Node: nodeA, Time: 100}); v.Status != VerdictAccepted {
		t.Fatalf("owner alert = %s", v.Status)
	}
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-b", Epoch: epoch2, Node: nodeB, Time: 100}); v.Status != VerdictAccepted {
		t.Fatalf("owner alert = %s", v.Status)
	}
	// Wrong owner, current epoch: fenced (split-brain claim on a shard).
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-b", Epoch: epoch2, Node: nodeA, Time: 101}); v.Status != VerdictFenced {
		t.Fatalf("non-owner alert = %s, want fenced", v.Status)
	}

	// b dies; its shards move to a at epoch 3.
	c.Leave("scorer-b")
	epoch3 := c.Epoch()
	if epoch3 != epoch2+1 {
		t.Fatalf("epoch after leave = %d", epoch3)
	}
	// A stale scorer-b keeps sending for its old node: fenced (ownership).
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-b", Epoch: epoch2, Node: nodeB, Time: 102}); v.Status != VerdictFenced {
		t.Fatalf("stale scorer alert = %s, want fenced", v.Status)
	}
	// scorer-a re-scores the handed-over node but stamps its pre-handover
	// epoch: fenced (acquisition check) until its heartbeat catches up.
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-a", Epoch: epoch2, Node: nodeB, Time: 103}); v.Status != VerdictFenced {
		t.Fatalf("pre-acquisition epoch alert = %s, want fenced", v.Status)
	}
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-a", Epoch: epoch3, Node: nodeB, Time: 103}); v.Status != VerdictAccepted {
		t.Fatalf("post-acquisition alert = %s, want accepted", v.Status)
	}
	// Continuous ownership: a has held nodeA's shard since before the
	// bump, so an alert stamped with the older epoch still lands.
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-a", Epoch: aAsn.Epoch, Node: nodeA, Time: 104}); v.Status != VerdictAccepted {
		t.Fatalf("continuous-owner lagging-epoch alert = %s, want accepted", v.Status)
	}
	// Redelivery of an accepted alert: duplicate, never double-counted.
	if v := c.Accept(AlertEnvelope{Scorer: "scorer-a", Epoch: epoch3, Node: nodeB, Time: 103}); v.Status != VerdictDuplicate {
		t.Fatalf("redelivery = %s, want duplicate", v.Status)
	}

	// The ledger partitions exactly: every received alert in one bucket.
	led := c.LedgerSnapshot()
	if led.Received != led.Accepted+led.Fenced+led.Deduped {
		t.Fatalf("ledger does not balance: %+v", led)
	}
	if led.Accepted != 4 || led.Fenced != 3 || led.Deduped != 1 {
		t.Fatalf("ledger = %+v, want 4 accepted / 3 fenced / 1 duplicate", led)
	}
	if got := len(c.Accepted()); got != 4 {
		t.Fatalf("accepted ledger holds %d entries, want 4", got)
	}
}

func TestOwnerMatchesShardRouterLines(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	clk := newTestClock()
	c := New(Config{TotalShards: 8, Clock: clk.now})
	defer c.Close()
	c.Register(ScorerInfo{ID: "scorer-a"})
	c.Register(ScorerInfo{ID: "scorer-b"})
	asn := map[string]Assignment{}
	for _, a := range c.Assignments() {
		asn[a.Scorer] = a
	}
	// The coordinator's answer for every probe node agrees with the FNV
	// partition line the in-process ShardRouter would use.
	for i := 0; i < 64; i++ {
		node := fmt.Sprintf("c%02dn%02d", i%4, i)
		shard := ingest.FNVShard(node, 8)
		info, ok := c.Owner(node)
		if !ok {
			t.Fatalf("no owner for %s", node)
		}
		if !asn[info.ID].Owns(shard) {
			t.Fatalf("owner %s of %s does not own shard %d in its own assignment", info.ID, node, shard)
		}
	}
}

func TestCoordinatorRunShutsDownClean(t *testing.T) {
	defer testutil.CheckGoroutines(t)()
	c := New(Config{TotalShards: 4, SweepInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Run(ctx)
	}()
	c.Register(ScorerInfo{ID: "scorer-a"})
	time.Sleep(30 * time.Millisecond) // let a few sweeps fire
	cancel()
	<-done
	c.Close() // idempotent with the context cancel path
}
