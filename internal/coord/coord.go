// Package coord is NodeSentry's coordinator tier: the control plane that
// turns many single-process scorer daemons into one sharded fleet,
// modeled on the agent / cluster-agent split in datadog-agent. One
// coordinator owns three things the scorers cannot decide alone:
//
//   - Membership. Scorers register over HTTP and heartbeat under a lease;
//     a missed lease reassigns the dead scorer's shards across the
//     survivors. Shards are the same FNV-1a partition lines the in-process
//     ShardRouter uses (ingest.FNVShard), so "who owns node X" has one
//     answer at every tier. Every assignment-table change increments an
//     epoch; alerts arriving from a scorer that no longer owns the node's
//     shard — or that owns it but under an older acquisition epoch — are
//     fenced, not double-counted.
//
//   - Model distribution. The coordinator publishes into the
//     sha256-manifest lifecycle.Store and serves it over /registry/;
//     scorers pull the active version, verify the checksum against the
//     manifest, and hot-swap — the fleet converges on one lineage.
//
//   - Fleet fan-in. The coordinator scrapes each scorer's /fleet/state,
//     /fleet/events and /metrics, merges them into a single fleet-wide
//     /fleet/* surface (the embedded dashboard renders the merged view
//     unchanged), and aggregates forwarded alerts with per-source journal
//     dedup and an exactly-once accepted-alert ledger.
//
// Everything is stdlib-only, like the rest of the module.
package coord

import (
	"nodesentry/internal/runtime"
	"nodesentry/internal/summary"
)

// ScorerInfo is one registered scorer as the coordinator sees it.
type ScorerInfo struct {
	// ID is the scorer's stable name (its daemon/journal source ID).
	ID string `json:"id"`
	// PushURL is the scorer's telemetry intake base URL — feeders ask the
	// coordinator where a node's owner listens.
	PushURL string `json:"push_url,omitempty"`
	// ObsURL is the scorer's observability base URL (/metrics, /fleet/*),
	// the surface the coordinator's fan-in sweep scrapes.
	ObsURL string `json:"obs_url,omitempty"`
	// RegisteredUnix / LastSeenUnix bound the scorer's lease history.
	RegisteredUnix int64 `json:"registered_unix"`
	LastSeenUnix   int64 `json:"last_seen_unix"`
	// Shards are the partition indexes currently assigned to the scorer.
	Shards []int `json:"shards"`
}

// Assignment is a scorer's view of the partition table: the shards it
// owns, out of TotalShards, as of Epoch. It is returned from register and
// every heartbeat; a scorer stamps Epoch into each alert it forwards so
// the coordinator can fence stale senders.
type Assignment struct {
	Epoch       int64  `json:"epoch"`
	Scorer      string `json:"scorer"`
	Shards      []int  `json:"shards"`
	TotalShards int    `json:"total_shards"`
}

// Owns reports whether the assignment includes shard.
func (a Assignment) Owns(shard int) bool {
	for _, s := range a.Shards {
		if s == shard {
			return true
		}
	}
	return false
}

// AlertEnvelope is one forwarded alert on the scorer→coordinator wire:
// the alert's identity plus the provenance the coordinator fences on.
type AlertEnvelope struct {
	// Scorer and Epoch record who forwarded the alert and under which
	// assignment epoch they believed they owned the node's shard.
	Scorer string `json:"scorer"`
	Epoch  int64  `json:"epoch"`

	Node     string  `json:"node"`
	Time     int64   `json:"time"`
	Job      int64   `json:"job"`
	Score    float64 `json:"score"`
	Priority int     `json:"priority"`
	Level    string  `json:"level,omitempty"`
	// Family is the alert's metric family (the dominant diagnosis
	// category) — the clustering key the coordinator's summarization
	// tier groups the merged fan-in by.
	Family string `json:"family,omitempty"`
	// ModelEpoch is the detector generation that scored the window
	// (runtime.Alert.Epoch), distinct from the assignment Epoch.
	ModelEpoch int64 `json:"model_epoch,omitempty"`
}

// Envelope wraps a runtime alert for forwarding by scorer under epoch.
func Envelope(a runtime.Alert, scorer string, epoch int64) AlertEnvelope {
	return AlertEnvelope{
		Scorer:     scorer,
		Epoch:      epoch,
		Node:       a.Node,
		Time:       a.Time,
		Job:        a.Job,
		Score:      a.Score,
		Priority:   int(a.Priority),
		Level:      a.Diagnosis.Level,
		Family:     summary.FamilyOf(a),
		ModelEpoch: a.Epoch,
	}
}

// Alert intake verdicts (the "status" field of /coord/alerts responses).
// Delivery is at-least-once and the response is always 2xx so retrying
// senders stop; the status says what the ledger did:
//
//	accepted  — counted once, exactly; in the ledger
//	fenced    — sender does not own the node's shard under a current
//	            epoch; dropped without double-counting
//	duplicate — (node, time) already accepted (a redelivery or a
//	            re-scored window after reassignment)
const (
	VerdictAccepted  = "accepted"
	VerdictFenced    = "fenced"
	VerdictDuplicate = "duplicate"
)

// AlertVerdict is the /coord/alerts response body.
type AlertVerdict struct {
	Status string `json:"status"`
	// Epoch is the coordinator's current assignment epoch — a fenced
	// scorer learns from it that it must re-sync its assignment.
	Epoch int64 `json:"epoch"`
}
