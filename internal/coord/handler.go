package coord

import (
	"encoding/json"
	"fmt"
	"net/http"

	"nodesentry/internal/fleetview"
	"nodesentry/internal/lifecycle"
	"nodesentry/internal/obs"
	"nodesentry/internal/summary"
)

// Handler returns the coordinator's full HTTP surface:
//
//	POST /coord/register     ScorerInfo JSON → Assignment
//	POST /coord/heartbeat    {"id": ...} → Assignment (410 Gone → re-register)
//	POST /coord/leave        {"id": ...} → immediate deregistration
//	POST /coord/alerts       AlertEnvelope → AlertVerdict (always 200)
//	GET  /coord/scorers      live membership
//	GET  /coord/assignments  the shard table under one epoch
//	GET  /coord/ledger       alert accounting totals
//	GET  /coord/owner/{node} the node's owning scorer (feeder routing)
//
//	GET  /registry/manifest     model registry manifest (active + lineage)
//	GET  /registry/model/{id}   checksummed payload bytes
//
//	GET  /fleet/...          merged fleet surface (dashboard, state,
//	                         events, node proxy, summed scorer metrics)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /coord/register", c.serveRegister)
	mux.HandleFunc("POST /coord/heartbeat", c.serveHeartbeat)
	mux.HandleFunc("POST /coord/leave", c.serveLeave)
	mux.HandleFunc("POST /coord/alerts", c.serveAlerts)
	mux.HandleFunc("GET /coord/scorers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Scorers())
	})
	mux.HandleFunc("GET /coord/assignments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Assignments())
	})
	mux.HandleFunc("GET /coord/ledger", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.LedgerSnapshot())
	})
	mux.HandleFunc("GET /coord/owner/{node}", c.serveOwner)

	mux.HandleFunc("GET /registry/manifest", c.serveManifest)
	mux.HandleFunc("GET /registry/model/{id}", c.serveModel)

	mux.Handle("GET /fleet/{$}", fleetview.DashboardHandler("nodesentry fleet — coordinator", c.cfg.VicinityThreshold))
	mux.Handle("GET /fleet/assets/", fleetview.AssetsHandler())
	mux.HandleFunc("GET /fleet/state", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.MergedState())
	})
	mux.HandleFunc("GET /fleet/nodes/{node}", c.serveNodeProxy)
	mux.Handle("GET /fleet/events", fleetview.EventsServer{
		Journal:   c.journal,
		Bus:       c.bus,
		Buffer:    c.cfg.SSEBuffer,
		KeepAlive: c.cfg.KeepAlive,
		Done:      c.done,
	})
	mux.HandleFunc("GET /fleet/incidents", func(w http.ResponseWriter, r *http.Request) {
		if c.sum != nil {
			writeJSON(w, c.sum.Incidents())
			return
		}
		writeJSON(w, summary.Snapshot{Open: []summary.Incident{}, Resolved: []summary.Incident{}})
	})
	mux.HandleFunc("GET /fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = fmt.Fprint(w, c.MergedMetricsText()) // header sent; nothing left to do on error
	})
	return mux
}

// Mounts adapts Handler to obs.Handler's mount seam, so the coordinator
// serves its control plane, registry and merged fleet view from the same
// listener as its own /metrics.
func (c *Coordinator) Mounts() []obs.Mount {
	h := c.Handler()
	return []obs.Mount{
		{Pattern: "/coord/", Handler: h},
		{Pattern: "/registry/", Handler: h},
		{Pattern: "/fleet/", Handler: h},
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// Header is out; an encode error has no channel left but the client's
	// truncated read.
	_ = enc.Encode(v)
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

func (c *Coordinator) serveRegister(w http.ResponseWriter, r *http.Request) {
	var info ScorerInfo
	if !decodeJSON(w, r, &info) {
		return
	}
	if info.ID == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	writeJSON(w, c.Register(info))
}

func (c *Coordinator) serveHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	a, ok := c.Heartbeat(req.ID)
	if !ok {
		// Gone: the lease lapsed (or the coordinator restarted) — the
		// scorer must re-register to rejoin.
		http.Error(w, "unknown scorer: re-register", http.StatusGone)
		return
	}
	writeJSON(w, a)
}

func (c *Coordinator) serveLeave(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	c.Leave(req.ID)
	w.WriteHeader(http.StatusNoContent)
}

// serveAlerts always answers 200: delivery is at-least-once, so a
// non-2xx would make the sender retry an alert the ledger has already
// classified — the verdict in the body is the real answer.
func (c *Coordinator) serveAlerts(w http.ResponseWriter, r *http.Request) {
	var env AlertEnvelope
	if !decodeJSON(w, r, &env) {
		return
	}
	writeJSON(w, c.Accept(env))
}

func (c *Coordinator) serveOwner(w http.ResponseWriter, r *http.Request) {
	info, ok := c.Owner(r.PathValue("node"))
	if !ok {
		http.Error(w, "no owner (empty fleet)", http.StatusNotFound)
		return
	}
	writeJSON(w, info)
}

// ---- model registry ----

// Manifest is the /registry/manifest response.
type Manifest struct {
	// Active is the version scorers should converge on (zero when no
	// version has been activated yet).
	Active    lifecycle.Version   `json:"active"`
	HasActive bool                `json:"has_active"`
	Versions  []lifecycle.Version `json:"versions"`
}

func (c *Coordinator) serveManifest(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Store == nil {
		http.Error(w, "no model registry", http.StatusNotFound)
		return
	}
	var m Manifest
	if act, ok := c.cfg.Store.Active(); ok {
		m.Active, m.HasActive = act, true
	}
	m.Versions = c.cfg.Store.Versions()
	writeJSON(w, m)
}

func (c *Coordinator) serveModel(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Store == nil {
		http.Error(w, "no model registry", http.StatusNotFound)
		return
	}
	raw, v, err := c.cfg.Store.ReadPayload(r.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Model-ID", v.ID)
	w.Header().Set("X-Model-SHA256", v.SHA256)
	_, _ = w.Write(raw) // header sent; a broken client read has no channel left
}

// serveNodeProxy relays /fleet/nodes/{node} to the node's owning scorer —
// the only per-node surface too heavy (full history rings) to cache
// fleet-wide on every sweep.
func (c *Coordinator) serveNodeProxy(w http.ResponseWriter, r *http.Request) {
	node := r.PathValue("node")
	info, ok := c.Owner(node)
	if !ok || info.ObsURL == "" {
		http.Error(w, "no owner for node", http.StatusNotFound)
		return
	}
	body, err := c.get(info.ObsURL + "/fleet/nodes/" + node)
	if err != nil {
		http.Error(w, fmt.Sprintf("owner %s: %v", info.ID, err), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body) // relayed verbatim; write errors mean the client left
}
