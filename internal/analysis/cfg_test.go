package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource type-checks one synthetic file and wraps it as a Package.
func checkSource(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: newStdImporter(fset)}
	tpkg, err := conf.Check("cfgtest", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{ImportPath: "cfgtest", Files: []*ast.File{f}, Fset: fset, Types: tpkg, Info: info}
}

// funcCFG builds the CFG of the named function.
func funcCFG(t *testing.T, pkg *Package, name string) *CFG {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return buildCFG(pkg, fd.Body)
			}
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

func TestCFGIfElseJoin(t *testing.T) {
	pkg := checkSource(t, `package p
func f(a bool) int {
	x := 1
	if a {
		x = 2
	} else {
		x = 3
	}
	return x
}`)
	g := funcCFG(t, pkg, "f")
	want := strings.Join([]string{
		"b0 entry[assign,expr] ->b2 ->b3",
		"b1 exit[]",
		"b2[assign] ->b4",
		"b3[assign] ->b4",
		"b4[return] ->b1",
		"",
	}, "\n")
	if got := g.String(); got != want {
		t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// The forward may-analysis merges both arms into the join: seeding a
	// distinct fact per block must surface every block on a path to exit.
	exit := forwardMay(g, func(b *Block, in facts) facts {
		in[fmt.Sprintf("b%d", b.Index)] = token.Pos(b.Index + 1)
		return in
	})
	for _, key := range []string{"b0", "b2", "b3", "b4"} {
		if _, ok := exit[key]; !ok {
			t.Errorf("exit facts missing %s: %v", key, exit.sortedKeys())
		}
	}
	if _, ok := exit["b1"]; ok {
		t.Errorf("exit facts contain the exit block itself")
	}
}

func TestCFGForBreakContinue(t *testing.T) {
	pkg := checkSource(t, `package p
func g(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		if i == 3 {
			break
		}
		if i%2 == 0 {
			continue
		}
		s += i
	}
	return s
}`)
	g := funcCFG(t, pkg, "g")
	cyc := g.inCycle()

	var returnBlk *Block
	onCycle := 0
	for _, b := range g.Blocks {
		if cyc[b.Index] {
			onCycle++
		}
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returnBlk = b
			}
		}
	}
	if onCycle == 0 {
		t.Fatalf("no blocks on the loop cycle:\n%s", g)
	}
	if returnBlk == nil {
		t.Fatalf("no return block:\n%s", g)
	}
	if cyc[returnBlk.Index] {
		t.Errorf("return block b%d must not be on the cycle:\n%s", returnBlk.Index, g)
	}
	// break and continue leave their blocks with exactly one successor
	// (the after-loop block and the post block respectively), never
	// falling through to the next statement.
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok {
				t.Fatalf("branch statement %v recorded as a plain node in b%d", br.Tok, b.Index)
			}
		}
	}
}

func TestCFGDeferOrdering(t *testing.T) {
	pkg := checkSource(t, `package p
func release() {}
func d(a bool) {
	defer release()
	if a {
		defer release()
	}
}`)
	g := funcCFG(t, pkg, "d")
	// Defers are registration points, not control flow: they stay plain
	// nodes inside their blocks in source order, and the conditional
	// defer sits in the then-branch block only.
	entryDefers, branchDefers := 0, 0
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				if b == g.Entry {
					entryDefers++
				} else {
					branchDefers++
				}
			}
		}
	}
	if entryDefers != 1 || branchDefers != 1 {
		t.Errorf("defers: entry=%d branch=%d, want 1 and 1\n%s", entryDefers, branchDefers, g)
	}
}

func TestCFGPanicEdges(t *testing.T) {
	pkg := checkSource(t, `package p
func p1(a bool) int {
	if a {
		panic("boom")
	}
	return 1
}
func boom() {
	panic("always")
}
func fallsOff() {
}`)
	g := funcCFG(t, pkg, "p1")
	// The panic block's only successor is the exit: control cannot flow
	// to the join.
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
				if len(b.Succs) != 1 || b.Succs[0] != g.Exit {
					t.Errorf("panic block b%d succs = %v, want only exit\n%s", b.Index, b.Succs, g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("no panic block:\n%s", g)
	}

	for _, tc := range []struct {
		fn   string
		want bool
	}{{"p1", false}, {"boom", true}, {"fallsOff", false}} {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == tc.fn {
					if got := neverReturns(pkg, fd.Body); got != tc.want {
						t.Errorf("neverReturns(%s) = %v, want %v", tc.fn, got, tc.want)
					}
				}
			}
		}
	}
}

func TestCFGGotoCycle(t *testing.T) {
	pkg := checkSource(t, `package p
func loop() int {
	i := 0
L:
	i++
	if i < 10 {
		goto L
	}
	return i
}`)
	g := funcCFG(t, pkg, "loop")
	cyc := g.inCycle()
	on := 0
	for _, b := range g.Blocks {
		if cyc[b.Index] {
			on++
		}
	}
	if on == 0 {
		t.Errorf("goto cycle not detected:\n%s", g)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	pkg := checkSource(t, `package p
func sw(n int) int {
	switch n {
	case 0:
		n = 1
		fallthrough
	case 1:
		n = 2
	default:
		n = 3
	}
	return n
}`)
	g := funcCFG(t, pkg, "sw")
	// With a default present, the head must not edge straight to the
	// after block, and the fixpoint must still reach the return.
	exit := forwardMay(g, func(b *Block, in facts) facts { return in })
	if exit == nil {
		t.Fatal("forwardMay returned nil")
	}
	var returnReached bool
	for _, b := range g.Exit.Preds {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returnReached = true
			}
		}
	}
	if !returnReached {
		t.Errorf("return does not feed exit:\n%s", g)
	}
}
