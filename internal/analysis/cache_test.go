package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// cacheModule materializes a tiny throwaway module: dep (clean) and app
// (imports dep, carries one floatcmp violation).
func cacheModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachetest\n\ngo 1.24\n",
		"dep/dep.go": `package dep

func Scale(x float64) float64 { return x * 2 }
`,
		"app/app.go": `package app

import "cachetest/dep"

func Equal(a, b float64) bool { return a == dep.Scale(b) }
`,
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runCachedOnce stands up a fresh loader (as each sentrylint invocation
// does) and runs the full check set over the module through the cache.
func runCachedOnce(t *testing.T, root, cachePath string, checks []Check) ([]Finding, CacheStats) {
	t.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	findings, stats, err := RunCached(loader, dirs, checks, cachePath)
	if err != nil {
		t.Fatal(err)
	}
	return findings, stats
}

func findingStrings(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.String())
	}
	return out
}

func TestCacheColdWarmRoundTrip(t *testing.T) {
	root := cacheModule(t)
	cachePath := filepath.Join(root, ".cache", "sentrylint.json")

	cold, stats := runCachedOnce(t, root, cachePath, Checks())
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("cold stats = %+v, want 0 hits / 2 misses", stats)
	}
	if len(cold) != 1 || cold[0].Check != "floatcmp" {
		t.Fatalf("cold findings = %v, want one floatcmp", findingStrings(cold))
	}

	warm, stats := runCachedOnce(t, root, cachePath, Checks())
	if stats.Hits != 2 || stats.Misses != 0 {
		t.Fatalf("warm stats = %+v, want 2 hits / 0 misses", stats)
	}
	if got, want := findingStrings(warm), findingStrings(cold); len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("warm findings %v != cold findings %v", got, want)
	}
}

func TestCacheInvalidatesDependents(t *testing.T) {
	root := cacheModule(t)
	cachePath := filepath.Join(root, "cache.json")
	_, _ = runCachedOnce(t, root, cachePath, Checks()) // populate

	// Editing the dependency must invalidate the dependent package too,
	// even though app's own sources are untouched.
	dep := filepath.Join(root, "dep", "dep.go")
	if err := os.WriteFile(dep, []byte("package dep\n\nfunc Scale(x float64) float64 { return x * 3 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats := runCachedOnce(t, root, cachePath, Checks())
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("after dep edit: stats = %+v, want 0 hits / 2 misses", stats)
	}

	// Editing only the leaf leaves the dependency's entry valid.
	app := filepath.Join(root, "app", "app.go")
	src, err := os.ReadFile(app)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(app, append(src, []byte("\n// trailing comment\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, stats := runCachedOnce(t, root, cachePath, Checks())
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("after app edit: stats = %+v, want 1 hit / 1 miss", stats)
	}
	if len(findings) != 1 || findings[0].Check != "floatcmp" {
		t.Fatalf("findings after edits = %v", findingStrings(findings))
	}

	// Stale entries are pruned on save: the file holds exactly the live tree.
	data, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	if len(cf.Entries) != 2 {
		t.Fatalf("cache holds %d entries after edits, want 2", len(cf.Entries))
	}
}

func TestCacheKeyedByCheckSet(t *testing.T) {
	root := cacheModule(t)
	cachePath := filepath.Join(root, "cache.json")
	_, _ = runCachedOnce(t, root, cachePath, Checks()) // populate with all checks

	subset := []Check{checkErrDrop}
	findings, stats := runCachedOnce(t, root, cachePath, subset)
	if stats.Hits != 0 || stats.Misses != 2 {
		t.Fatalf("check-subset run reused full-set entries: stats = %+v", stats)
	}
	if len(findings) != 0 {
		t.Fatalf("errdrop-only run found %v", findingStrings(findings))
	}
}

func TestCacheCorruptFileDegradesToFullRun(t *testing.T) {
	root := cacheModule(t)
	cachePath := filepath.Join(root, "cache.json")
	if err := os.WriteFile(cachePath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, stats := runCachedOnce(t, root, cachePath, Checks())
	if stats.Misses != 2 || len(findings) != 1 {
		t.Fatalf("corrupt cache: stats %+v findings %v", stats, findingStrings(findings))
	}
	// And the corrupt file was replaced with a valid one.
	if _, stats := runCachedOnce(t, root, cachePath, Checks()); stats.Hits != 2 {
		t.Fatalf("cache not rewritten after corruption: %+v", stats)
	}
}
