package analysis

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// ---- floatcmp ----
//
// Exact ==/!= between floating-point values is almost always a bug in
// numeric code: k-sigma thresholding, centroid matching and score
// comparison all accumulate rounding error, so exact equality silently
// flips outcomes between platforms and optimization levels. Two idioms
// stay legal: comparison against an exact constant zero (the ubiquitous
// division guard, exact under IEEE 754) and `x != x` (the NaN probe).

var checkFloatCmp = Check{
	Name: "floatcmp",
	Doc:  "flags ==/!= between floating-point operands (zero guards and x != x excluded)",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		inspectFiles(pkg, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pkg.Info.Types[be.X], pkg.Info.Types[be.Y]
			if !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			// Two constants fold at compile time; exact-zero guards are
			// IEEE-exact; x != x / x == x probe for NaN.
			if tx.Value != nil && ty.Value != nil {
				return true
			}
			if isZeroConst(tx) || isZeroConst(ty) {
				return true
			}
			if exprString(be.X) == exprString(be.Y) {
				return true
			}
			report(be.OpPos, "floating-point values compared with %s; use an explicit tolerance (math.Abs(a-b) <= eps) or restructure", be.Op)
			return true
		})
	},
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(tv types.TypeAndValue) bool {
	return tv.Value != nil && constant.Sign(tv.Value) == 0
}

func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}

// ---- globalrand ----
//
// Top-level math/rand functions draw from the process-global source,
// which is seeded differently on every run (and shared across
// goroutines), so any table produced through it is unreproducible.
// Constructors that build an injectable source remain legal; everything
// randomness must flow through a seed-injected *rand.Rand.

var globalRandAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 constructors, should the module migrate.
	"NewPCG":       true,
	"NewChaCha8":   true,
	"Int64Source":  true,
	"Uint64Source": true,
}

var checkGlobalRand = Check{
	Name: "globalrand",
	Doc:  "flags top-level math/rand functions; inject a seeded *rand.Rand instead",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		inspectFiles(pkg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pn.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if globalRandAllowed[sel.Sel.Name] {
				return true
			}
			report(call.Pos(), "%s.%s draws from the process-global RNG; thread a seeded *rand.Rand through options instead", id.Name, sel.Sel.Name)
			return true
		})
	},
}

// ---- errdrop ----
//
// A call whose error result is discarded implicitly (a bare expression
// statement, possibly under go/defer) swallows failures: short writes
// while emitting experiment tables, failed saves in the labeling tool.
// An explicit `_ = f()` assignment stays legal as a visible,
// greppable acknowledgment. Exempt are prints to the process's standard
// streams (fmt.Print*, and fmt.Fprint* aimed at os.Stdout/os.Stderr)
// and writers documented to never fail: strings.Builder, bytes.Buffer
// (as receivers or as fmt.Fprint* targets) and the hash.Hash
// implementations under hash/.

var errDropExempt = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
}

var errDropFprint = map[string]bool{
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

var errDropExemptRecv = map[string]bool{
	"bytes.Buffer":    true,
	"strings.Builder": true,
}

var checkErrDrop = Check{
	Name: "errdrop",
	Doc:  "flags calls whose error result is silently discarded outside test files",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		flag := func(call *ast.CallExpr) {
			if !returnsError(pkg, call) || errDropExemptCall(pkg, call) {
				return
			}
			report(call.Pos(), "error result of %s is silently discarded; handle it or assign it to _ explicitly", calleeName(pkg, call))
		}
		inspectFiles(pkg, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					flag(call)
				}
			case *ast.GoStmt:
				flag(st.Call)
			case *ast.DeferStmt:
				flag(st.Call)
			}
			return true
		})
	},
}

var errorType = types.Universe.Lookup("error").Type()

// returnsError reports whether any result of call has type error.
func returnsError(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// errDropExemptCall exempts std-stream prints and never-failing writers.
func errDropExemptCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	full := fn.FullName()
	if errDropExempt[full] {
		return true
	}
	if errDropFprint[full] && len(call.Args) > 0 && neverFailingWriter(pkg, call.Args[0]) {
		return true
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// Judge by the receiver expression's static type, so interface
		// values (hash.Hash64 from fnv.New64a) resolve to the package
		// that documents the no-error contract, not to io.Writer.
		if t := pkg.Info.Types[sel.X].Type; t != nil {
			if pkgPath, name := namedRecv(t); pkgPath != "" {
				if errDropExemptRecv[pkgPath+"."+name] {
					return true
				}
				// hash.Hash and its implementations (hash/fnv,
				// hash/crc32, ...) document that Write never fails.
				if pkgPath == "hash" || strings.HasPrefix(pkgPath, "hash/") {
					return true
				}
			}
		}
	}
	return false
}

// neverFailingWriter reports whether expr is a write destination whose
// failures are either impossible (in-memory builders/buffers) or as
// unactionable as fmt.Println's (the process's standard streams).
func neverFailingWriter(pkg *Package, expr ast.Expr) bool {
	if t := pkg.Info.Types[expr].Type; t != nil {
		if p, ok := t.(*types.Pointer); ok {
			if pkgPath, name := namedRecv(p.Elem()); errDropExemptRecv[pkgPath+"."+name] {
				return true
			}
		}
	}
	if sel, ok := expr.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok &&
				pn.Imported().Path() == "os" &&
				(sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
				return true
			}
		}
	}
	return false
}

// namedRecv unwraps pointers and returns the package path and name of a
// named type, or "", "".
func namedRecv(t types.Type) (pkgPath, name string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// calleeName renders a short name for the called function.
func calleeName(pkg *Package, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.FullName()
		}
		return exprString(fun)
	default:
		return exprString(call.Fun)
	}
}

// ---- libpanic ----
//
// Library code under internal/ is consumed by long-running services
// (the monitor, the labeltool server); a panic there takes down the
// whole process instead of failing one request or one training run.
// Invariant guards that indicate programmer error (shape mismatches in
// the mat kernels) may be suppressed explicitly with a reason.

var checkLibPanic = Check{
	Name: "libpanic",
	Doc:  "flags panic calls in internal/* packages; return errors instead",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		if !strings.Contains("/"+pkg.ImportPath+"/", "/internal/") {
			return
		}
		inspectFiles(pkg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
				return true
			}
			report(call.Pos(), "panic in library package %s; return an error so callers can recover", pkg.ImportPath)
			return true
		})
	},
}

// ---- unboundedgoroutine ----
//
// A goroutine started in library code with no visible stop signal can
// never be shut down: the monitor and the ingestion gateway run inside
// long-lived services, so every background goroutine must be cancelable
// or joinable. A goroutine is accepted when its arguments (for any call)
// or its body (for func literals) reference a shutdown carrier — a
// context.Context, a channel (any send/receive/range/select or a
// channel-typed identifier), or a sync.WaitGroup. Deliberately
// process-lived goroutines may be suppressed explicitly with a reason.

var checkUnboundedGoroutine = Check{
	Name: "unboundedgoroutine",
	Doc:  "flags go statements in internal/* with no stop signal (context, channel, or WaitGroup) in scope",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		if !strings.Contains("/"+pkg.ImportPath+"/", "/internal/") {
			return
		}
		inspectFiles(pkg, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineHasStopSignal(pkg, gs.Call) {
				report(gs.Go, "goroutine has no stop signal (no context, channel, or WaitGroup in scope); thread one through so it can shut down")
			}
			return true
		})
	},
}

// goroutineHasStopSignal reports whether the spawned call can observe a
// shutdown: a stop carrier among its arguments, or (for func literals)
// a channel operation, context reference, or WaitGroup use in the body.
func goroutineHasStopSignal(pkg *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isStopCarrier(pkg.Info.Types[arg].Type) {
			return true
		}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil && isStopCarrier(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isStopCarrier reports whether t can carry a shutdown signal: a channel,
// a context.Context, or a (pointer to) sync.WaitGroup.
func isStopCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	pkgPath, name := namedRecv(t)
	return (pkgPath == "context" && name == "Context") ||
		(pkgPath == "sync" && name == "WaitGroup")
}

// ---- contextleak ----
//
// Two context misuses that leak cancellation resources or break the
// request-scoped contract. Discarding the CancelFunc returned by
// context.WithCancel/WithTimeout/WithDeadline/WithCancelCause leaks the
// derived context — its timer and cancellation machinery live until the
// parent dies, and nothing can ever release the subtree early. Storing a
// context.Context in a struct field detaches it from the call graph: the
// stored value outlives the call that created it, so deadlines and
// cancellation propagate to the wrong work. Deliberate carriers (a
// handoff struct that documents its lifetime) may be suppressed
// explicitly with a reason.

var contextCancelFuncs = map[string]bool{
	"WithCancel":      true,
	"WithTimeout":     true,
	"WithDeadline":    true,
	"WithCancelCause": true,
}

var checkContextLeak = Check{
	Name: "contextleak",
	Doc:  "flags discarded context CancelFuncs and context.Context struct fields",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		inspectFiles(pkg, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				checkDiscardedCancel(pkg, x.Lhs, x.Rhs, report)
			case *ast.ValueSpec:
				lhs := make([]ast.Expr, len(x.Names))
				for i, name := range x.Names {
					lhs[i] = name
				}
				checkDiscardedCancel(pkg, lhs, x.Values, report)
			case *ast.StructType:
				for _, field := range x.Fields.List {
					tv, ok := pkg.Info.Types[field.Type]
					if !ok {
						continue
					}
					if pkgPath, name := namedRecv(tv.Type); pkgPath == "context" && name == "Context" {
						report(field.Type.Pos(), "context.Context stored in a struct field; pass it as a function argument so it stays call-scoped")
					}
				}
			}
			return true
		})
	},
}

// checkDiscardedCancel flags `ctx, _ := context.WithCancel(...)` and the
// WithTimeout/WithDeadline/WithCancelCause variants: the CancelFunc is
// the only way to release the derived context before its parent ends.
func checkDiscardedCancel(pkg *Package, lhs, rhs []ast.Expr, report func(pos token.Pos, format string, args ...any)) {
	if len(rhs) != 1 || len(lhs) < 2 {
		return
	}
	call, ok := rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !contextCancelFuncs[fn.Name()] {
		return
	}
	last, ok := lhs[len(lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	report(last.Pos(), "CancelFunc from context.%s is discarded; keep it and defer cancel() so the derived context can be released", fn.Name())
}
