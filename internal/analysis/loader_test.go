package analysis

import (
	"strings"
	"testing"
)

// runOnce loads the given patterns with a fresh loader and renders every
// finding in canonical order.
func runOnce(t *testing.T, serial bool, patterns []string) string {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.Serial = serial
	var dirs []string
	for _, pat := range patterns {
		d, err := l.Expand(l.ModuleRoot, []string{pat})
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, d...)
	}
	pkgs, err := l.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range Run(pkgs, Checks()) {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

// TestLoaderParallelSerialIdentical pins the loader contract: parallel
// topological waves and the serial path must produce byte-identical
// findings. The fixture packages are included deliberately — they emit
// real findings, so the comparison is not vacuous.
func TestLoaderParallelSerialIdentical(t *testing.T) {
	patterns := []string{
		"internal/analysis/testdata/lockbalance",
		"internal/analysis/testdata/deferloop",
		"internal/analysis/testdata/tickleak",
		"internal/analysis/testdata/hotalloc",
		"internal/analysis/testdata/unusedignore",
		"internal/analysis/testdata/suppress",
	}
	if !testing.Short() {
		// The full module exercises multi-wave dependency ordering.
		patterns = append([]string{"./..."}, patterns...)
	}
	par := runOnce(t, false, patterns)
	ser := runOnce(t, true, patterns)
	if par != ser {
		t.Errorf("parallel and serial findings differ\n--- parallel ---\n%s--- serial ---\n%s", par, ser)
	}
	if !strings.Contains(par, "[lockbalance]") || !strings.Contains(par, "[hotalloc]") {
		t.Errorf("fixture findings missing from comparison output:\n%s", par)
	}
}
