package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// ImportPath is the package's module-qualified import path
	// (e.g. nodesentry/internal/mat).
	ImportPath string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Fset positions all Files.
	Fset *token.FileSet
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries expression types, object resolution and selections.
	Info *types.Info
}

// Loader discovers, parses and type-checks module packages using only
// the standard library. Module-local imports resolve against packages
// the loader has already checked; everything else (the standard library)
// goes through one shared concurrent source importer (see
// stdimporter.go), so the stdlib is parsed and checked at most once per
// run no matter how many module packages import it.
//
// Load parses all discovered packages in parallel and type-checks them
// in parallel topological waves: every package in a wave has all its
// module-local imports satisfied by earlier waves, so packages within a
// wave are independent and go/types can check them concurrently. Serial
// forces one package at a time (same topological order) — findings are
// byte-identical either way; the option exists for tests to prove it.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Serial disables parallel parsing and wave checking.
	Serial bool

	fset *token.FileSet
	std  *stdImporter

	mu    sync.RWMutex
	local map[string]*Package // keyed by import path
}

// NewLoader builds a loader for the module enclosing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		local:      map[string]*Package{},
		std:        newStdImporter(fset),
	}, nil
}

// findModule ascends from dir to the nearest go.mod and returns its
// directory and declared module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if path, ok := strings.CutPrefix(line, "module "); ok {
					if unq, err := strconv.Unquote(path); err == nil {
						path = unq
					}
					return d, strings.TrimSpace(path), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Expand resolves package patterns relative to base into package
// directories. A pattern ending in "/..." walks the prefix recursively;
// other patterns name a single directory. Directories named testdata,
// hidden directories, and directories without non-test Go files are
// skipped during walks.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(dir string) {
		if abs, err := filepath.Abs(dir); err == nil && !seen[abs] {
			seen[abs] = true
			dirs = append(dirs, abs)
		}
	}
	for _, pat := range patterns {
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if prefix == "." || prefix == "" {
				prefix = base
			} else if !filepath.IsAbs(prefix) {
				prefix = filepath.Join(base, prefix)
			}
			err := filepath.WalkDir(prefix, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != prefix && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if names, err := goSources(path); err == nil && len(names) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		add(dir)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// goSources lists the non-test .go files in dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importPathFor derives the module-qualified import path of dir.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// isLocal reports whether path names a package of this module.
func (l *Loader) isLocal(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// parsedPkg is an intermediate parse result awaiting type checking.
type parsedPkg struct {
	importPath string
	dir        string
	files      []*ast.File
	imports    []string // module-local imports only
}

// Load parses and type-checks the packages in dirs plus the closure of
// their module-local imports, returning only the packages requested in
// dirs (dependencies are checked but not analyzed). Parsing proceeds in
// parallel breadth-first waves over the import closure; type-checking in
// parallel topological waves (unless Serial is set).
func (l *Loader) Load(dirs []string) ([]*Package, error) {
	parsed, requested, err := l.parseClosure(dirs)
	if err != nil {
		return nil, err
	}

	order, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}

	// Wave assignment: a package's wave is one past its deepest
	// module-local import, so each wave only depends on earlier ones.
	wave := map[string]int{}
	maxWave := 0
	for _, path := range order {
		w := 0
		for _, imp := range parsed[path].imports {
			if _, ok := parsed[imp]; ok && wave[imp]+1 > w {
				w = wave[imp] + 1
			}
		}
		wave[path] = w
		if w > maxWave {
			maxWave = w
		}
	}
	waves := make([][]string, maxWave+1)
	for _, path := range order { // topo order keeps waves deterministic
		waves[wave[path]] = append(waves[wave[path]], path)
	}

	for _, ps := range waves {
		if err := l.checkWave(parsed, ps); err != nil {
			return nil, err
		}
	}

	var out []*Package
	l.mu.RLock()
	for path := range requested {
		out = append(out, l.local[path])
	}
	l.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

// parseClosure parses dirs and, breadth-first, every module-local
// import reachable from them, parallelizing within each wave.
func (l *Loader) parseClosure(dirs []string) (parsed map[string]*parsedPkg, requested map[string]bool, err error) {
	parsed = map[string]*parsedPkg{}
	requested = map[string]bool{}
	seenDir := map[string]bool{}
	first := true
	queue := append([]string(nil), dirs...)
	for len(queue) > 0 {
		var batch []string
		for _, dir := range queue {
			if !seenDir[dir] {
				seenDir[dir] = true
				batch = append(batch, dir)
			}
		}
		queue = queue[:0]
		results := make([]*parsedPkg, len(batch))
		errs := make([]error, len(batch))
		l.forEach(len(batch), func(i int) {
			results[i], errs[i] = l.parseDir(batch[i])
		})
		for i, p := range results {
			if errs[i] != nil {
				return nil, nil, errs[i]
			}
			if first {
				requested[p.importPath] = true
			}
			parsed[p.importPath] = p
			for _, imp := range p.imports {
				if _, ok := parsed[imp]; !ok {
					queue = append(queue, l.dirFor(imp))
				}
			}
		}
		first = false
	}
	return parsed, requested, nil
}

// dirFor maps a module-local import path to its source directory.
func (l *Loader) dirFor(imp string) string {
	if imp == l.ModulePath {
		return l.ModuleRoot
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(imp, l.ModulePath+"/")))
}

// checkWave type-checks one wave of mutually independent packages.
func (l *Loader) checkWave(parsed map[string]*parsedPkg, paths []string) error {
	pkgs := make([]*Package, len(paths))
	errs := make([]error, len(paths))
	l.forEach(len(paths), func(i int) {
		pkgs[i], errs[i] = l.check(parsed[paths[i]])
		if errs[i] == nil {
			l.mu.Lock()
			l.local[paths[i]] = pkgs[i]
			l.mu.Unlock()
		}
	})
	for _, err := range errs { // first error in topo order, deterministic
		if err != nil {
			return err
		}
	}
	return nil
}

// forEach runs fn for 0..n-1, concurrently unless the loader is Serial.
func (l *Loader) forEach(n int, fn func(i int)) {
	if l.Serial || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// parseDir parses the non-test sources of one directory.
func (l *Loader) parseDir(dir string) (*parsedPkg, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	p := &parsedPkg{importPath: importPath, dir: dir}
	seenImp := map[string]bool{}
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if l.isLocal(path) && !seenImp[path] {
				seenImp[path] = true
				p.imports = append(p.imports, path)
			}
		}
	}
	return p, nil
}

// topoSort orders packages so every module-local import precedes its
// importer.
func topoSort(pkgs map[string]*parsedPkg) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("analysis: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, imp := range pkgs[path].imports {
			if _, ok := pkgs[imp]; ok {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var paths []string
	for path := range pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Import satisfies types.Importer: module-local packages must already be
// checked (by an earlier wave); everything else is type-checked from
// source via the shared concurrent stdlib importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.mu.RLock()
	pkg, ok := l.local[path]
	l.mu.RUnlock()
	if ok {
		return pkg.Types, nil
	}
	if l.isLocal(path) {
		return nil, fmt.Errorf("analysis: local package %s not loaded (import cycle?)", path)
	}
	return l.std.Import(path)
}

// check type-checks one parsed package.
func (l *Loader) check(p *parsedPkg) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(p.importPath, l.fset, p.files, info)
	if err != nil && len(errs) == 0 {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", p.importPath, errs[0])
	}
	return &Package{
		ImportPath: p.importPath,
		Dir:        p.dir,
		Files:      p.files,
		Fset:       l.fset,
		Types:      tpkg,
		Info:       info,
	}, nil
}
