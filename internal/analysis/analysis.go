// Package analysis implements sentrylint, a from-scratch static analyzer
// for this repository built only on the standard library's go/* packages
// (go/parser, go/ast, go/token, go/types, go/importer — no x/tools).
//
// The analyzer walks every package in the module with full type
// information and enforces repo-specific invariants as named checks.
// Each check targets a bug class that silently corrupts the benchmark
// numbers reproduced from the paper (float equality in threshold logic,
// unseeded global randomness, swallowed errors, library panics) or the
// safety of the concurrent hot paths (missing mutex unlocks).
//
// Findings are reported as `file:line: [check] message`. Any finding can
// be suppressed with a `//lint:ignore <check> reason` comment on the same
// line or the line directly above; see suppress.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one reported violation.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the canonical `file:line: [check] message` form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Check is a named analysis pass over one type-checked package.
type Check struct {
	Name string
	// Doc is a one-line description shown by `sentrylint -list`.
	Doc string
	// Run inspects pkg and reports findings through report. The
	// unusedignore pseudo-check has a nil Run: it reports from the
	// suppression table after every other check has executed.
	Run func(pkg *Package, report func(pos token.Pos, format string, args ...any))
}

// checkUnusedIgnore is a pseudo-check evaluated by Run after all real
// checks: a //lint:ignore directive that silenced nothing this run is
// stale and reported, so suppressions cannot outlive the finding they
// were written for.
var checkUnusedIgnore = Check{
	Name: "unusedignore",
	Doc:  "flags lint:ignore comments that no longer suppress any finding (run with every other check)",
}

// Checks returns all registered checks in a stable order.
func Checks() []Check {
	return []Check{
		checkFloatCmp,
		checkGlobalRand,
		checkErrDrop,
		checkLibPanic,
		checkLockBalance,
		checkUnboundedGoroutine,
		checkContextLeak,
		checkDeferLoop,
		checkTickLeak,
		checkHotAlloc,
		checkUnusedIgnore,
	}
}

// CheckNames returns the names of all registered checks.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Run executes the given checks over the packages and returns surviving
// findings (suppressions already applied), sorted by file, line, check.
func Run(pkgs []*Package, checks []Check) []Finding {
	var out []Finding
	registered := map[string]bool{}
	for _, c := range Checks() {
		registered[c.Name] = true
	}
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		unusedIgnores := false
		ran := map[string]bool{}
		for _, c := range checks {
			if c.Run == nil {
				if c.Name == checkUnusedIgnore.Name {
					unusedIgnores = true
				}
				continue
			}
			ran[c.Name] = true
			c := c
			report := func(pos token.Pos, format string, args ...any) {
				p := pkg.Fset.Position(pos)
				if sup.suppressed(c.Name, p) {
					return
				}
				out = append(out, Finding{Pos: p, Check: c.Name, Message: fmt.Sprintf(format, args...)})
			}
			c.Run(pkg, report)
		}
		if !unusedIgnores {
			continue
		}
		// Stale suppressions: directives naming a check that ran but
		// silenced nothing, and directives naming a check that does not
		// exist. Directives for registered checks excluded from this run
		// are left alone — we cannot tell whether they are stale.
		for _, d := range sup.all {
			switch {
			case !registered[d.check]:
				out = append(out, Finding{Pos: d.pos, Check: checkUnusedIgnore.Name,
					Message: fmt.Sprintf("lint:ignore names unknown check %q; remove or fix the directive", d.check)})
			case ran[d.check] && !d.used:
				out = append(out, Finding{Pos: d.pos, Check: checkUnusedIgnore.Name,
					Message: fmt.Sprintf("lint:ignore %s suppresses nothing here; remove the stale directive", d.check)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return out
}

// inspectFiles applies fn to every node of every file in the package.
func inspectFiles(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
