package analysis

// hotalloc.go enforces the allocation-free-scoring roadmap item: any
// function annotated //perf:hot — and every same-package function it can
// reach through the call graph — must not contain constructs that
// allocate per call. Findings are fixed or carry a reasoned
// //lint:ignore, so the annotation set is a ratchet CI holds while the
// hot path is migrated to reusable buffers.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// hotDirective is the annotation that marks a function as part of the
// per-window scoring path.
const hotDirective = "//perf:hot"

var checkHotAlloc = Check{
	Name: "hotalloc",
	Doc:  "flags allocating constructs (make, append, map literals, fmt.*, interface boxing) in //perf:hot functions and their same-package callees",
	Run: func(pkg *Package, report func(pos token.Pos, format string, args ...any)) {
		decls := map[types.Object]*ast.FuncDecl{}
		var order []*ast.FuncDecl
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
					order = append(order, fd)
				}
			}
		}

		// Seed set: functions carrying the //perf:hot directive.
		hot := map[*ast.FuncDecl]string{} // decl -> hot root it is reachable from
		var work []*ast.FuncDecl
		for _, fd := range order {
			if hasHotDirective(fd) {
				hot[fd] = fd.Name.Name
				work = append(work, fd)
			}
		}

		// Call-graph closure within the package. Callees that can never
		// return (panic-only helpers like shape-check failures) are cold
		// paths and excluded. Memoized: isCold also guards the body scan
		// below, where arguments to such helpers are skipped.
		cold := map[types.Object]*bool{}
		isCold := func(obj types.Object) bool {
			fd, ok := decls[obj]
			if !ok {
				return false
			}
			if v, done := cold[obj]; done {
				return *v
			}
			v := neverReturns(pkg, fd.Body)
			cold[obj] = &v
			return v
		}
		for len(work) > 0 {
			fd := work[0]
			work = work[1:]
			root := hot[fd]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObject(pkg, call)
				if obj == nil {
					return true
				}
				callee, ok := decls[obj]
				if !ok {
					return true // not a same-package FuncDecl
				}
				if _, seen := hot[callee]; seen {
					return true
				}
				if isCold(obj) {
					return true
				}
				hot[callee] = root
				work = append(work, callee)
				return true
			})
		}

		// Deterministic order: scan declarations in source order.
		sort.Slice(order, func(i, j int) bool { return order[i].Pos() < order[j].Pos() })
		for _, fd := range order {
			root, ok := hot[fd]
			if !ok {
				continue
			}
			where := fd.Name.Name
			if root != where {
				where += " (hot via " + root + ")"
			}
			scanHotBody(pkg, fd.Body, where, isCold, report)
		}
	},
}

// hasHotDirective reports whether the declaration's doc comment carries
// the //perf:hot directive line.
func hasHotDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
			return true
		}
	}
	return false
}

// calleeObject resolves a call to the function object it invokes, when
// statically known.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// neverReturns reports whether every path through body ends in an
// explicit panic (or the exit is unreachable): such helpers are cold
// error paths, not part of the hot loop.
func neverReturns(pkg *Package, body *ast.BlockStmt) bool {
	g := buildCFG(pkg, body)
	for _, pred := range g.Exit.Preds {
		if len(pred.Nodes) == 0 {
			return false // fall-off-the-end or empty return path
		}
		last := pred.Nodes[len(pred.Nodes)-1]
		call, ok := last.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return false
		}
		if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
			return false
		}
	}
	return true
}

// scanHotBody reports every allocating construct in one hot function.
// isCold identifies same-package callees that never return, whose
// argument subtrees are failure paths and exempt like panic's.
func scanHotBody(pkg *Package, body *ast.BlockStmt, where string, isCold func(types.Object) bool, report func(pos token.Pos, format string, args ...any)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CompositeLit:
			if t := pkg.Info.TypeOf(x); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					report(x.Pos(), "map literal allocates in hot path %s; hoist it to a package-level table or a reused field", where)
				}
			}
		case *ast.CallExpr:
			// A panic call terminates the hot path; whatever its
			// arguments allocate is cold, so skip the whole subtree.
			// Same for calls to panic-only helpers in this package.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return false
				}
			}
			if obj := calleeObject(pkg, x); obj != nil && isCold(obj) {
				return false
			}
			scanHotCall(pkg, x, where, report)
		}
		return true
	})
}

func scanHotCall(pkg *Package, call *ast.CallExpr, where string, report func(pos token.Pos, format string, args ...any)) {
	// Builtins that allocate or may grow.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				report(call.Pos(), "make allocates in hot path %s; reuse a buffer grown outside the loop", where)
			case "append":
				report(call.Pos(), "append may grow its backing array in hot path %s; pre-size the slice or reuse a buffer", where)
			}
			return
		}
	}
	// fmt.* formats through reflection and allocates on every call.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			report(call.Pos(), "fmt.%s allocates in hot path %s; format outside the scoring loop or use strconv into a reused buffer", sel.Sel.Name, where)
			return // boxing into fmt's ...any params is implied, don't double-report
		}
	}
	// Interface boxing: a concrete-typed argument passed to an interface
	// parameter escapes to the heap. Constants are materialized in static
	// data, so they are exempt. One finding per call.
	sig, ok := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				return
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.Value != nil || tv.IsNil() || tv.Type == nil {
			continue
		}
		if types.IsInterface(tv.Type.Underlying()) {
			continue
		}
		report(arg.Pos(), "argument boxes %s into %s in hot path %s; avoid interface conversions per call", tv.Type, pt, where)
		return
	}
}
