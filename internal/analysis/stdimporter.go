package analysis

// stdimporter.go is a concurrency-safe source importer for non-module
// (standard library) packages, replacing go/importer's source importer.
// Differences that matter for sentrylint's cold-run wall time:
//
//   - one shared cache serves every package type-checked in a run, and
//     concurrent importers for the same path coalesce onto a single
//     type-check (singleflight), so parallel waves never duplicate work;
//   - files are read exactly once: go/build's Context.Import tokenizes
//     every file header (build tags + imports) and then the importer
//     reads the file again to parse it — half the old cold run. Here a
//     minimal resolver lists GOROOT/src/<path>, applies the filename
//     GOOS/GOARCH convention, evaluates the //go:build line with
//     go/build/constraint, and hands the same bytes to the parser;
//   - cgo is disabled (files importing "C" are excluded, as are files
//     tagged cgo), selecting the pure-Go variants of net/os-user/etc.
//     instead of shelling out to `go tool cgo`;
//   - function bodies are skipped (types.Config.IgnoreFuncBodies): the
//     analyzer only needs exported API shapes from dependencies.
//
// Soundness trade: with cgo off, cgo-only exported symbols would be
// invisible; the stdlib keeps its exported API identical across the
// build tag, so this does not affect type-checking module code.

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// stdImporter implements types.ImporterFrom for out-of-module packages.
type stdImporter struct {
	goroot      string
	goos        string
	goarch      string
	releaseTags []string
	fset        *token.FileSet
	sizes       types.Sizes

	mu      sync.Mutex
	entries map[string]*stdEntry // keyed by import path
}

// stdEntry is the singleflight slot for one package: the first importer
// claims it and closes done when the result is in.
type stdEntry struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

func newStdImporter(fset *token.FileSet) *stdImporter {
	sizes := types.SizesFor("gc", build.Default.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	return &stdImporter{
		goroot:      build.Default.GOROOT,
		goos:        build.Default.GOOS,
		goarch:      build.Default.GOARCH,
		releaseTags: build.Default.ReleaseTags,
		fset:        fset,
		sizes:       sizes,
		entries:     map[string]*stdEntry{},
	}
}

// Import implements types.Importer.
func (s *stdImporter) Import(path string) (*types.Package, error) {
	return s.importChain(path, map[string]bool{})
}

// ImportFrom implements types.ImporterFrom.
func (s *stdImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return s.importChain(path, map[string]bool{})
}

// chainImporter threads the in-progress import stack of one goroutine's
// import chain through nested type-checks, so a dependency cycle is
// reported instead of deadlocking the singleflight wait.
type chainImporter struct {
	s     *stdImporter
	stack map[string]bool
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	return c.s.importChain(path, c.stack)
}

func (c chainImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	return c.s.importChain(path, c.stack)
}

func (s *stdImporter) importChain(path string, stack map[string]bool) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if stack[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}

	s.mu.Lock()
	entry, ok := s.entries[path]
	if ok {
		s.mu.Unlock()
		<-entry.done // either already closed or another goroutine is checking
		return entry.pkg, entry.err
	}
	entry = &stdEntry{done: make(chan struct{})}
	s.entries[path] = entry
	s.mu.Unlock()

	stack[path] = true
	entry.pkg, entry.err = s.check(path, stack)
	delete(stack, path)
	close(entry.done)
	return entry.pkg, entry.err
}

// check parses and type-checks one out-of-module package, API only.
func (s *stdImporter) check(path string, stack map[string]bool) (*types.Package, error) {
	dir, err := s.resolve(path)
	if err != nil {
		return nil, err
	}
	files, err := s.loadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %s: %w", path, err)
	}
	var firstErr error
	conf := types.Config{
		IgnoreFuncBodies: true,
		FakeImportC:      true,
		Importer:         chainImporter{s: s, stack: stack},
		Sizes:            s.sizes,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, s.fset, files, nil)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking import %s: %v", path, firstErr)
	}
	if err != nil {
		return nil, err
	}
	return pkg, nil
}

// resolve maps an import path to its GOROOT source directory, checking
// the stdlib's vendor tree for non-std paths (golang.org/x/... imports
// inside net/http and friends).
func (s *stdImporter) resolve(path string) (string, error) {
	if path == "" || strings.HasPrefix(path, ".") || filepath.IsAbs(path) {
		return "", fmt.Errorf("analysis: unsupported import path %q", path)
	}
	dir := filepath.Join(s.goroot, "src", filepath.FromSlash(path))
	if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
		return dir, nil
	}
	vdir := filepath.Join(s.goroot, "src", "vendor", filepath.FromSlash(path))
	if fi, err := os.Stat(vdir); err == nil && fi.IsDir() {
		return vdir, nil
	}
	return "", fmt.Errorf("analysis: cannot find import %q in GOROOT (module dependencies are not supported)", path)
}

// loadDir reads and parses the buildable non-test sources of dir
// concurrently, reading each file exactly once. Files are excluded by
// the _GOOS/_GOARCH filename convention, their //go:build line, or an
// `import "C"` clause (cgo is disabled).
func (s *stdImporter) loadDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		if !s.goodOSArchFile(name) {
			continue
		}
		names = append(names, name)
	}
	files := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, filename string) {
			defer wg.Done()
			src, err := os.ReadFile(filename)
			if err != nil {
				errs[i] = err
				return
			}
			if !s.shouldBuild(src) {
				return
			}
			f, err := parser.ParseFile(s.fset, filename, src, parser.SkipObjectResolution)
			if err != nil {
				errs[i] = err
				return
			}
			if importsCgo(f) {
				return
			}
			files[i] = f
		}(i, filepath.Join(dir, name))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	kept := files[:0]
	for _, f := range files {
		if f != nil {
			kept = append(kept, f)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	// A GOROOT dir can hold stray files of another package that carry no
	// excluding build tag (generators, docs). Keep the majority package.
	counts := map[string]int{}
	for _, f := range kept {
		counts[f.Name.Name]++
	}
	major, best := "", 0
	for name, c := range counts {
		if c > best || (c == best && name < major) {
			major, best = name, c
		}
	}
	if len(counts) > 1 {
		trimmed := kept[:0]
		for _, f := range kept {
			if f.Name.Name == major {
				trimmed = append(trimmed, f)
			}
		}
		kept = trimmed
	}
	return kept, nil
}

// importsCgo reports whether the file has an `import "C"` clause.
func importsCgo(f *ast.File) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value == `"C"` {
			return true
		}
	}
	return false
}

// knownOS and knownArch mirror go/build's lists for the filename
// _GOOS/_GOARCH convention.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "nacl": true, "netbsd": true,
	"openbsd": true, "plan9": true, "solaris": true, "wasip1": true,
	"windows": true, "zos": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "amd64p32": true, "arm": true,
	"armbe": true, "arm64": true, "arm64be": true, "loong64": true,
	"mips": true, "mipsle": true, "mips64": true, "mips64le": true,
	"mips64p32": true, "mips64p32le": true, "ppc": true, "ppc64": true,
	"ppc64le": true, "riscv": true, "riscv64": true, "s390": true,
	"s390x": true, "sparc": true, "sparc64": true, "wasm": true,
}

var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// goodOSArchFile applies the name_GOOS.go / name_GOARCH.go /
// name_GOOS_GOARCH.go convention (only to names with an explicit prefix,
// matching go/build: "linux.go" is not constrained).
func (s *stdImporter) goodOSArchFile(name string) bool {
	name = strings.TrimSuffix(name, ".go")
	l := strings.Split(name, "_")
	if len(l) < 2 {
		return true
	}
	n := len(l)
	if n >= 3 && knownOS[l[n-2]] && knownArch[l[n-1]] {
		return l[n-2] == s.goos && l[n-1] == s.goarch
	}
	if knownArch[l[n-1]] {
		return l[n-1] == s.goarch
	}
	if knownOS[l[n-1]] {
		return l[n-1] == s.goos
	}
	return true
}

// shouldBuild evaluates the file's //go:build line (if any) against the
// importer's tag set. Only the header before the package clause is
// scanned, per the build-constraint spec.
func (s *stdImporter) shouldBuild(src []byte) bool {
	text := string(src)
	for len(text) > 0 {
		line := text
		if i := strings.IndexByte(text, '\n'); i >= 0 {
			line, text = text[:i], text[i+1:]
		} else {
			text = ""
		}
		line = strings.TrimSpace(line)
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "//"):
			if constraint.IsGoBuild(line) {
				expr, err := constraint.Parse(line)
				if err != nil {
					return false
				}
				return expr.Eval(s.tagOK)
			}
			continue
		case strings.HasPrefix(line, "/*"):
			// Skip the block comment (build lines never sit inside one).
			rest := line[2:] + "\n" + text
			end := strings.Index(rest, "*/")
			if end < 0 {
				return true
			}
			text = rest[end+2:]
			continue
		default:
			return true // package clause (or code): header is over
		}
	}
	return true
}

// tagOK is the build-tag predicate for constraint evaluation: target
// OS/arch, compiler, release tags, and the unix alias; cgo and
// everything else are off.
func (s *stdImporter) tagOK(tag string) bool {
	switch tag {
	case s.goos, s.goarch, "gc":
		return true
	case "unix":
		return unixOS[s.goos]
	}
	for _, t := range s.releaseTags {
		if tag == t {
			return true
		}
	}
	return false
}
