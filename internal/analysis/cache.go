package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// cacheFormat invalidates every entry when the on-disk layout or the
// analyzer's reporting semantics change. Check-set changes are covered by
// the key salt, source changes by the content hashes.
const cacheFormat = "sentrylint-cache-1"

// CacheStats reports how a cached run split between reuse and analysis.
type CacheStats struct {
	// Hits is the number of requested packages whose findings were reused.
	Hits int
	// Misses is the number of requested packages that were type-checked
	// and analyzed this run.
	Misses int
}

// cacheFinding is one Finding flattened for JSON, with the filename
// stored relative to the module root so the cache survives a checkout
// move.
type cacheFinding struct {
	File    string `json:"file"`
	Offset  int    `json:"offset"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

type cacheEntry struct {
	Findings []cacheFinding `json:"findings"`
}

type cacheFile struct {
	Format  string                `json:"format"`
	Entries map[string]cacheEntry `json:"entries"`
}

// RunCached is Run plus a persistent findings cache: each requested
// package is keyed by a hash of the check set, its sources, and the
// sources of its transitive module-local imports. Key hits reuse the
// recorded findings without parsing or type-checking the package; only
// missed packages (and their dependency closure) are loaded. Entries not
// touched by this run are dropped on save, so the file tracks the
// current tree. A missing or unreadable cache file degrades to a full
// run, never an error.
func RunCached(l *Loader, dirs []string, checks []Check, cachePath string) ([]Finding, CacheStats, error) {
	var stats CacheStats
	old := readCache(cachePath)
	next := cacheFile{Format: cacheFormat, Entries: map[string]cacheEntry{}}

	h := newCacheHasher(l, checks)
	keyOf := make(map[string]string, len(dirs)) // package dir -> cache key
	var findings []Finding
	var missed []string
	for _, dir := range dirs {
		key, err := h.keyFor(dir)
		if err != nil {
			return nil, stats, err
		}
		keyOf[dir] = key
		if entry, ok := old.Entries[key]; ok {
			stats.Hits++
			next.Entries[key] = entry
			for _, cf := range entry.Findings {
				findings = append(findings, cf.finding(l.ModuleRoot))
			}
			continue
		}
		stats.Misses++
		missed = append(missed, dir)
	}

	if len(missed) > 0 {
		pkgs, err := l.Load(missed)
		if err != nil {
			return nil, stats, err
		}
		for _, pkg := range pkgs {
			fs := Run([]*Package{pkg}, checks)
			entry := cacheEntry{Findings: []cacheFinding{}}
			for _, f := range fs {
				entry.Findings = append(entry.Findings, flatten(f, l.ModuleRoot))
			}
			next.Entries[keyOf[pkg.Dir]] = entry
			findings = append(findings, fs...)
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	if err := writeCache(cachePath, next); err != nil {
		return nil, stats, err
	}
	return findings, stats, nil
}

func flatten(f Finding, root string) cacheFinding {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return cacheFinding{
		File:    file,
		Offset:  f.Pos.Offset,
		Line:    f.Pos.Line,
		Column:  f.Pos.Column,
		Check:   f.Check,
		Message: f.Message,
	}
}

func (cf cacheFinding) finding(root string) Finding {
	file := filepath.FromSlash(cf.File)
	if !filepath.IsAbs(file) {
		file = filepath.Join(root, file)
	}
	return Finding{
		Pos:     token.Position{Filename: file, Offset: cf.Offset, Line: cf.Line, Column: cf.Column},
		Check:   cf.Check,
		Message: cf.Message,
	}
}

// readCache loads the cache file; any problem (absent, unreadable,
// foreign format) yields an empty cache rather than failing the lint run.
func readCache(path string) cacheFile {
	empty := cacheFile{Entries: map[string]cacheEntry{}}
	data, err := os.ReadFile(path)
	if err != nil {
		return empty
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil || cf.Format != cacheFormat || cf.Entries == nil {
		return empty
	}
	return cf
}

// writeCache persists the cache atomically (tmp + rename), creating the
// parent directory as needed.
func writeCache(path string, cf cacheFile) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cf, "", "\t")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// cacheHasher computes per-package cache keys: a sha256 over the cache
// format, the check names, the package's import path and source bytes,
// and (recursively, memoized) the keys of its module-local imports — so
// editing a dependency invalidates every package built on it. Imports are
// discovered with parser.ImportsOnly; the full parse stays on the miss
// path.
type cacheHasher struct {
	l    *Loader
	salt string
	memo map[string]string // package dir -> key
	busy map[string]bool   // cycle guard
}

func newCacheHasher(l *Loader, checks []Check) *cacheHasher {
	sum := sha256.New()
	sum.Write([]byte(cacheFormat + "\n"))
	for _, c := range checks {
		sum.Write([]byte(c.Name + "\n"))
	}
	return &cacheHasher{
		l:    l,
		salt: hex.EncodeToString(sum.Sum(nil)),
		memo: map[string]string{},
		busy: map[string]bool{},
	}
}

func (h *cacheHasher) keyFor(dir string) (string, error) {
	if key, ok := h.memo[dir]; ok {
		return key, nil
	}
	if h.busy[dir] {
		return "", fmt.Errorf("analysis: import cycle through %s", dir)
	}
	h.busy[dir] = true
	defer delete(h.busy, dir)

	importPath, err := h.l.importPathFor(dir)
	if err != nil {
		return "", err
	}
	names, err := goSources(dir)
	if err != nil {
		return "", err
	}
	sum := sha256.New()
	sum.Write([]byte(h.salt + "\n"))
	sum.Write([]byte(importPath + "\n"))
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var imports []string
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		sum.Write([]byte(fmt.Sprintf("%s %d\n", name, len(src))))
		sum.Write(src)
		file, err := parser.ParseFile(fset, name, src, parser.ImportsOnly)
		if err != nil {
			return "", err
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if h.l.isLocal(path) && !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	sort.Strings(imports)
	for _, imp := range imports {
		depDir := h.l.ModuleRoot
		if imp != h.l.ModulePath {
			depDir = filepath.Join(h.l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(imp, h.l.ModulePath+"/")))
		}
		depKey, err := h.keyFor(depDir)
		if err != nil {
			return "", err
		}
		sum.Write([]byte("import " + imp + " " + depKey + "\n"))
	}
	key := hex.EncodeToString(sum.Sum(nil))
	h.memo[dir] = key
	return key, nil
}
