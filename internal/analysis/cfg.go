package analysis

// cfg.go is the dataflow substrate for the path-sensitive checks: a
// lightweight intra-procedural control-flow graph (basic blocks with
// branch, loop, switch/select, defer, return, panic and goto edges) and
// a forward may-analysis worklist that iterates block facts to a
// fixpoint. Built only on go/ast + go/types, no x/tools.
//
// The model is deliberately statement-grained. Each Block holds the AST
// nodes that execute when control reaches it, in source order; nested
// statements live in their own blocks, so a transfer function inspecting
// a block's nodes never sees a statement twice. Function literals are
// not inlined — each literal is analyzed as its own function by
// packageFuncs — with one exception checks may opt into: a deferred
// closure runs at the enclosing function's exit, so lock-release checks
// treat its body as exit-time effects of the registering function.
//
// Known soundness limits (documented in DESIGN.md):
//   - only explicit panic(...) statements create panic edges; every
//     other call is assumed to return,
//   - short-circuit flow inside expressions (&&, ||) is not modeled,
//   - facts merge by union (may-analysis), so a condition repeated on
//     two branches is not correlated.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Block is one basic block: the AST nodes that execute together, plus
// the control-flow successors.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body. Entry is the
// first block executed; Exit is a synthetic empty block every return,
// panic and fall-off-the-end path feeds into.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// buildCFG constructs the control-flow graph of body. pkg supplies type
// information (used to recognize the panic builtin).
func buildCFG(pkg *Package, body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{pkg: pkg, g: &CFG{}, labels: map[string]*Block{}}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmt(body)
	b.link(b.cur, b.g.Exit) // falling off the end returns
	for _, p := range b.gotos {
		if target, ok := b.labels[p.label]; ok {
			b.link(p.from, target)
		}
	}
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

// frame is one enclosing breakable construct (loop, switch or select).
type frame struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select
}

type gotoPatch struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	pkg    *Package
	g      *CFG
	cur    *Block // nil while the current point is unreachable
	frames []frame
	labels map[string]*Block
	gotos  []gotoPatch
	// pendingLabel names the label attached to the next loop/switch, so
	// `L: for ...` registers L as that loop's break/continue label.
	pendingLabel string
	// ftTarget is the next case clause's block, the fallthrough target.
	ftTarget *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a fresh block with an edge from the current one.
func (b *cfgBuilder) startBlock() *Block {
	nb := b.newBlock()
	b.link(b.cur, nb)
	b.cur = nb
	return nb
}

func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// takeLabel consumes the pending label for a loop/switch construct.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// isPanicCall reports whether e is a call of the panic builtin.
func (b *cfgBuilder) isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, ok = b.pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.ExprStmt:
		b.add(s.X)
		if b.isPanicCall(s.X) {
			b.link(b.cur, b.g.Exit)
			b.cur = nil
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		thenB := b.newBlock()
		b.link(cond, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		thenEnd := b.cur
		elseEnd := cond
		if s.Else != nil {
			elseB := b.newBlock()
			b.link(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		b.link(thenEnd, join)
		b.link(elseEnd, join)
		b.cur = join
	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock()
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		cont := head
		var postB *Block
		if s.Post != nil {
			postB = b.newBlock()
			cont = postB
		}
		body := b.newBlock()
		b.link(head, body)
		if s.Cond != nil {
			b.link(head, after) // `for {}` has no exit edge without a break
		}
		b.frames = append(b.frames, frame{label: label, brk: after, cont: cont})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, cont)
		b.frames = b.frames[:len(b.frames)-1]
		if postB != nil {
			b.cur = postB
			b.stmt(s.Post)
			b.link(b.cur, head)
		}
		b.cur = after
	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.startBlock()
		if s.Key != nil {
			b.add(s.Key)
		}
		if s.Value != nil {
			b.add(s.Value)
		}
		body := b.newBlock()
		after := b.newBlock()
		b.link(head, body)
		b.link(head, after)
		b.frames = append(b.frames, frame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmt(s.Body)
		b.link(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, frame{label: label, brk: after})
		if len(s.Body.List) == 0 {
			b.cur = nil // empty select blocks forever
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			b.link(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				b.stmt(st)
			}
			b.link(b.cur, after)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			b.link(b.cur, b.findFrame(s.Label, false))
		case token.CONTINUE:
			b.link(b.cur, b.findFrame(s.Label, true))
		case token.GOTO:
			if b.cur != nil && s.Label != nil {
				b.gotos = append(b.gotos, gotoPatch{from: b.cur, label: s.Label.Name})
			}
		case token.FALLTHROUGH:
			b.link(b.cur, b.ftTarget)
		}
		b.cur = nil
	case *ast.LabeledStmt:
		lb := b.startBlock()
		b.labels[s.Label.Name] = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.DeferStmt, *ast.GoStmt, *ast.AssignStmt, *ast.DeclStmt,
		*ast.IncDecStmt, *ast.SendStmt:
		b.add(s)
	case *ast.EmptyStmt:
		// nothing
	default:
		b.add(s)
	}
}

// switchLike builds expression and type switches: every clause branches
// from the head, break (implicit at each clause end) joins after, and
// fallthrough chains into the next clause's block.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	after := b.newBlock()
	clauses := body.List
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.link(head, blocks[i])
	}
	hasDefault := false
	b.frames = append(b.frames, frame{label: label, brk: after})
	savedFT := b.ftTarget
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.ftTarget = blocks[i+1]
		} else {
			b.ftTarget = nil
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.link(b.cur, after)
	}
	b.ftTarget = savedFT
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault {
		b.link(head, after)
	}
	b.cur = after
}

// findFrame resolves a break/continue target. needLoop restricts the
// search to loop frames (continue); a nil label matches the innermost
// eligible frame.
func (b *cfgBuilder) findFrame(label *ast.Ident, needLoop bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if needLoop && f.cont == nil {
			continue
		}
		if label != nil && f.label != label.Name {
			continue
		}
		if needLoop {
			return f.cont
		}
		return f.brk
	}
	return nil
}

// String renders the graph one block per line, for tests and debugging:
//
//	b0[assign,call] -> b1 b2
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		labels := make([]string, len(blk.Nodes))
		for i, n := range blk.Nodes {
			labels[i] = nodeLabel(n)
		}
		name := ""
		switch blk {
		case g.Entry:
			name = " entry"
		case g.Exit:
			name = " exit"
		}
		fmt.Fprintf(&sb, "b%d%s[%s]", blk.Index, name, strings.Join(labels, ","))
		for _, s := range blk.Succs {
			fmt.Fprintf(&sb, " ->b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.SendStmt:
		return "send"
	case *ast.CallExpr:
		if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
			return "panic"
		}
		return "call"
	case ast.Expr:
		return "expr"
	default:
		return "stmt"
	}
}

// facts is a may-dataflow lattice element: the keys that may hold at a
// program point, each with the position that generated it (the earliest
// across merged paths, for deterministic reporting).
type facts map[string]token.Pos

func (f facts) clone() facts {
	out := make(facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// unionInto merges src into dst, keeping the smallest position per key,
// and reports whether dst changed. Keys only accumulate and positions
// only decrease, so iteration terminates.
func (f facts) unionInto(src facts) bool {
	changed := false
	for k, pos := range src {
		if have, ok := f[k]; !ok || pos < have {
			changed = true
			f[k] = pos
		}
	}
	return changed
}

// equal reports whether two fact sets agree on keys and positions.
func (f facts) equal(g facts) bool {
	if len(f) != len(g) {
		return false
	}
	for k, v := range f {
		if gv, ok := g[k]; !ok || gv != v {
			return false
		}
	}
	return true
}

// sortedKeys returns the fact keys in deterministic (position, name) order.
func (f facts) sortedKeys() []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if f[keys[i]] != f[keys[j]] {
			return f[keys[i]] < f[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// forwardMay runs a forward may-analysis to fixpoint and returns the
// fact set flowing into the exit block: everything that may hold on some
// path reaching return/panic. transfer must not retain or mutate blocks;
// it receives its own copy of the in-facts and returns the out-facts.
func forwardMay(g *CFG, transfer func(b *Block, in facts) facts) facts {
	in := make([]facts, len(g.Blocks))
	out := make([]facts, len(g.Blocks))
	processed := make([]bool, len(g.Blocks))
	queued := make([]bool, len(g.Blocks))
	in[g.Entry.Index] = facts{}
	work := []*Block{g.Entry}
	queued[g.Entry.Index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.Index] = false
		if in[blk.Index] == nil {
			continue // unreachable
		}
		o := transfer(blk, in[blk.Index].clone())
		if processed[blk.Index] && out[blk.Index].equal(o) {
			continue
		}
		processed[blk.Index] = true
		out[blk.Index] = o
		for _, s := range blk.Succs {
			if in[s.Index] == nil {
				in[s.Index] = facts{}
			}
			if in[s.Index].unionInto(o) || !processed[s.Index] {
				if !queued[s.Index] {
					queued[s.Index] = true
					work = append(work, s)
				}
			}
		}
	}
	exit := in[g.Exit.Index]
	if exit == nil {
		exit = facts{}
	}
	return exit
}

// inCycle reports, for each block, whether it lies on a control-flow
// cycle (is reachable from itself). Used by deferloop: a defer that
// executes more than once before the function exits must sit on a cycle.
func (g *CFG) inCycle() []bool {
	// Reachability per block over the successor relation; graphs are
	// function-sized, so the quadratic sweep is fine.
	n := len(g.Blocks)
	cyc := make([]bool, n)
	for _, blk := range g.Blocks {
		seen := make([]bool, n)
		stack := append([]*Block(nil), blk.Succs...)
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if s == blk {
				cyc[blk.Index] = true
				break
			}
			if seen[s.Index] {
				continue
			}
			seen[s.Index] = true
			stack = append(stack, s.Succs...)
		}
	}
	return cyc
}
