// Package fixfloatcmp triggers only the floatcmp check.
package fixfloatcmp

// equalish exercises the allowed idioms and one violation.
func equalish(a, b float64) bool {
	if a == 0 { // allowed: exact-zero division guard
		return b == 0
	}
	if a != a { // allowed: NaN probe
		return false
	}
	return a == b // finding: exact equality
}

// countAbove exercises != between non-constant floats.
func countAbove(scores []float64, limit float64) int {
	n := 0
	for _, s := range scores {
		if s != limit { // finding: exact inequality
			n++
		}
	}
	return n
}

// constFold shows that two constants never fire.
func constFold() bool {
	const eps = 1e-9
	return eps == 1e-9 // allowed: both constant
}
