// Package fixtickleak triggers only the tickleak check.
package fixtickleak

import (
	"errors"
	"time"
)

// pollForever uses time.Tick, whose ticker has no Stop handle and lives
// for the life of the process.
func pollForever(done chan struct{}) {
	for {
		select {
		case <-time.Tick(time.Second): // finding
			continue
		case <-done:
			return
		}
	}
}

// leakOnReturn never stops the ticker on any path.
func leakOnReturn(done chan struct{}) {
	t := time.NewTicker(time.Second) // finding
	for {
		select {
		case <-t.C:
		case <-done:
			return
		}
	}
}

// stopped is the correct idiom.
func stopped(done chan struct{}) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-done:
			return
		}
	}
}

// leakOnError stops on the happy path but leaks through the early error
// return.
func leakOnError(ok bool) error {
	t := time.NewTimer(time.Second) // finding
	if !ok {
		return errors.New("not ready")
	}
	<-t.C
	t.Stop()
	return nil
}

// handoff transfers ownership: the callee is responsible for Stop.
func handoff() {
	t := time.NewTicker(time.Second)
	consume(t)
}

func consume(t *time.Ticker) { t.Stop() }
