// Package fixunbounded triggers only the unboundedgoroutine check.
package fixunbounded

import (
	"context"
	"sync"
)

func work() {}

func pump(ch chan int) { <-ch }

// spawnBad starts goroutines that nothing can ever stop.
func spawnBad() {
	go work()   // finding
	go func() { // finding
		for {
			work()
		}
	}()
}

// goodArgs hands the spawned function a channel it can block on.
func goodArgs(ch chan int) {
	go pump(ch)
}

// goodCtx watches a context inside the literal body.
func goodCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goodWait joins through a WaitGroup.
func goodWait(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

// goodSelect blocks on a quit channel in a select.
func goodSelect(quit chan struct{}) {
	go func() {
		select {
		case <-quit:
		}
	}()
}

// goodRange drains a channel until the producer closes it.
func goodRange(events chan int) {
	go func() {
		for range events {
			work()
		}
	}()
}
