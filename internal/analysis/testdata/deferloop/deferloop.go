// Package fixdeferloop triggers only the deferloop check.
package fixdeferloop

type resource struct{ closed bool }

func (r *resource) close() { r.closed = true }

// processAll defers inside the loop: every close waits until the whole
// function returns, one stacked frame per resource.
func processAll(rs []*resource) {
	for _, r := range rs {
		defer r.close() // finding
	}
}

// processEach hoists the body into a function literal, so each defer
// runs at the end of its own iteration.
func processEach(rs []*resource) {
	for _, r := range rs {
		func(r *resource) {
			defer r.close()
			r.closed = false
		}(r)
	}
}

// one defer outside any loop is the normal idiom.
func one(r *resource) {
	defer r.close()
	r.closed = false
}

// whileTrue catches the same accumulation in a condition-less loop.
func whileTrue(rs chan *resource) {
	for r := range rs {
		defer r.close() // finding
	}
}

// afterBreak sits after the loop, not on the cycle.
func afterBreak(rs []*resource) {
	for _, r := range rs {
		if r.closed {
			break
		}
	}
	defer noop()
	_ = rs
}

func noop() {}
