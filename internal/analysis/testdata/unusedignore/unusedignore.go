// Package fixunusedignore triggers only the unusedignore pseudo-check.
package fixunusedignore

// near is epsilon-based, so the directive below suppresses nothing.
func near(a, b float64) bool {
	//lint:ignore floatcmp stale: this comparison already uses an epsilon
	return a-b < 1e-9 && b-a < 1e-9 // finding: stale directive above
}

//lint:ignore nosuchcheck the named check does not exist
var version = "v1" // finding: unknown check name
