// Package fixglobalrand triggers only the globalrand check.
package fixglobalrand

import "math/rand"

// jitter mixes the legal constructor idiom with a global draw.
func jitter() float64 {
	rng := rand.New(rand.NewSource(1))    // allowed: constructors build an injectable source
	return rng.Float64() + rand.Float64() // finding: global draw
}

// shuffle uses the global source wholesale.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // finding
}
