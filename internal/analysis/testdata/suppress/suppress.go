// Package fixsuppress proves lint:ignore scoping: only the unsuppressed
// comparison survives.
package fixsuppress

// cmp suppresses one finding with a leading comment; the second
// comparison still fires.
func cmp(a, b float64) bool {
	//lint:ignore floatcmp exact bit equality is intended here
	if a == b {
		return true
	}
	return a != b // finding: not suppressed
}

// alias suppresses with a trailing comment on the same line.
func alias(a, b float64) bool {
	return a == b //lint:ignore floatcmp trailing suppression
}
