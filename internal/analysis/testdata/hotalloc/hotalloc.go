// Package fixhotalloc triggers only the hotalloc check.
package fixhotalloc

import "fmt"

var weights []float64

//perf:hot
func score(xs []float64) float64 {
	buf := make([]float64, len(xs)) // finding: make in hot path
	copy(buf, xs)
	total := 0.0
	for _, v := range buf {
		total += v
	}
	accumulate(total)
	if total < 0 {
		failNegative("total")
	}
	return total
}

// accumulate is hot via score's call graph, not its own annotation.
func accumulate(v float64) {
	weights = append(weights, v) // finding: append may grow
}

//perf:hot
func describe(n int) string {
	return fmt.Sprintf("window-%d", n) // finding: fmt in hot path
}

//perf:hot
func lookup(k string) int {
	m := map[string]int{"a": 1} // finding: map literal in hot path
	return m[k]
}

var last any

//perf:hot
func record(v float64) {
	sink(v) // finding: boxes float64 into any
}

// sink joins the hot closure but is itself allocation-free.
func sink(v any) { last = v }

// failNegative never returns, so hotalloc treats it as a cold error
// path and does not descend into it.
func failNegative(msg string) {
	//lint:ignore libpanic fixture: cold error helper
	panic(fmt.Sprint("negative ", msg))
}

// cold is unannotated and unreachable from any hot function: its
// allocations are fine.
func cold(n int) []int {
	out := make([]int, n)
	return out
}
