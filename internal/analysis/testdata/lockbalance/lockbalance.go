// Package fixlockbalance triggers only the lockbalance check.
package fixlockbalance

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// bad acquires the mutex and never releases it on any path.
func (c *counter) bad() int {
	c.mu.Lock() // finding
	return c.n
}

// good releases via defer.
func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// closure releases inside a deferred closure, which still counts.
func (c *counter) closure() int {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return c.n
}

// leakOnBranch releases on the fallthrough path but leaks through the
// early return — the case the old syntactic locksafe could not see.
func (c *counter) leakOnBranch(cond bool) int {
	c.mu.Lock() // finding
	if cond {
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

// balancedBranches releases on every path, so the same shape is clean.
func (c *counter) balancedBranches(cond bool) int {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return -1
	}
	n := c.n
	c.mu.Unlock()
	return n
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// get read-locks and never read-unlocks.
func (t *table) get(k string) int {
	t.mu.RLock() // finding
	return t.m[k]
}

// paired Lock/Unlock against a write lock is fine even when an RLock
// elsewhere in the file is not.
func (t *table) set(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

// perIteration locks and unlocks inside each loop iteration; the back
// edge carries no held lock, so the function is balanced.
func (t *table) perIteration(keys []string) {
	for _, k := range keys {
		t.mu.Lock()
		t.m[k] = 0
		t.mu.Unlock()
	}
}

// switchLeak releases in one case but not the default arm.
func (t *table) switchLeak(mode int) {
	t.mu.Lock() // finding
	switch mode {
	case 0:
		t.mu.Unlock()
	default:
		t.m["mode"] = mode
	}
}
