// Package fixcontextleak triggers only the contextleak check.
package fixcontextleak

import (
	"context"
	"time"
)

func use(ctx context.Context) {}

// bag stores a context for later, detaching it from the call graph.
type bag struct {
	ctx context.Context // finding
}

// carrier embeds one: the same leak in disguise.
type carrier struct {
	context.Context // finding
}

// leakCancel discards the only handle that can release the subtree.
func leakCancel(parent context.Context) {
	ctx, _ := context.WithCancel(parent) // finding
	use(ctx)
}

// leakTimer also leaks the deadline timer until the parent dies.
func leakTimer(parent context.Context) {
	ctx, _ := context.WithTimeout(parent, time.Second) // finding
	use(ctx)
}

// keepCancel is the legal form: the CancelFunc is kept and deferred,
// and contexts travel as arguments, not fields.
func keepCancel(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	use(ctx)
}
