// Package fixlocksafe triggers only the locksafe check.
package fixlocksafe

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// bad acquires the mutex and never releases it.
func (c *counter) bad() int {
	c.mu.Lock() // finding
	return c.n
}

// good releases via defer.
func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// closure releases inside a deferred closure, which still counts.
func (c *counter) closure() int {
	c.mu.Lock()
	defer func() { c.mu.Unlock() }()
	return c.n
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// get read-locks and never read-unlocks.
func (t *table) get(k string) int {
	t.mu.RLock() // finding
	return t.m[k]
}

// paired Lock/Unlock against a write lock is fine even when an RLock
// elsewhere in the file is not.
func (t *table) set(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}
