// Package fixlibpanic triggers only the libpanic check (it loads with an
// import path under internal/, where the check applies).
package fixlibpanic

// Mid panics instead of returning an error.
func Mid(xs []float64) float64 {
	if len(xs) == 0 {
		panic("fixlibpanic: empty input") // finding
	}
	return xs[len(xs)/2]
}
