// Package fixerrdrop triggers only the errdrop check.
package fixerrdrop

import (
	"fmt"
	"os"
	"strings"
)

// dump exercises the exemptions and two violations.
func dump(path string, lines []string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	defer f.Close() // finding: deferred Close error discarded
	var b strings.Builder
	b.WriteString(strings.Join(lines, "\n"))  // allowed: strings.Builder never fails
	fmt.Fprintf(&b, "%d lines\n", len(lines)) // allowed: Fprintf into a Builder
	f.WriteString(b.String())                 // finding: write error discarded
	_ = f.Sync()                              // allowed: explicit acknowledgment
	fmt.Println("wrote", path)                // allowed: stdout print
	fmt.Fprintln(os.Stderr, "wrote", path)    // allowed: standard stream
}
