package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//lint:ignore <check>[,<check>...] reason
//
// The comment silences the named checks on its own line and on the line
// directly below it, so both trailing and leading placements work:
//
//	foo() //lint:ignore errdrop best-effort cleanup
//
//	//lint:ignore libpanic shape mismatch is a programmer error
//	panic("mat: dimension mismatch")
const ignorePrefix = "lint:ignore"

// suppressions maps file -> line -> set of suppressed check names.
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(check string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][check]
}

func (s suppressions) add(file string, line int, check string) {
	lines := s[file]
	if lines == nil {
		lines = map[int]map[string]bool{}
		s[file] = lines
	}
	for _, l := range []int{line, line + 1} {
		if lines[l] == nil {
			lines[l] = map[string]bool{}
		}
		lines[l][check] = true
	}
}

// collectSuppressions scans every comment in the package for lint:ignore
// directives.
func collectSuppressions(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, check := range strings.Split(fields[0], ",") {
					if check = strings.TrimSpace(check); check != "" {
						sup.add(pos.Filename, pos.Line, check)
					}
				}
			}
		}
	}
	return sup
}
