package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//lint:ignore <check>[,<check>...] reason
//
// The comment silences the named checks on its own line and on the line
// directly below it, so both trailing and leading placements work:
//
//	foo() //lint:ignore errdrop best-effort cleanup
//
//	//lint:ignore libpanic shape mismatch is a programmer error
//	panic("mat: dimension mismatch")
const ignorePrefix = "lint:ignore"

// ignoreDirective is one check name from one lint:ignore comment, with a
// used flag flipped when it actually suppresses a finding. Stale
// directives are reported by the unusedignore pseudo-check.
type ignoreDirective struct {
	pos   token.Position // the directive comment's own position
	check string
	used  bool
}

// suppressions indexes every lint:ignore directive in a package by the
// lines it applies to.
type suppressions struct {
	byLine map[string]map[int][]*ignoreDirective // file -> line -> directives
	all    []*ignoreDirective                    // source order
}

// suppressed reports whether a finding of check at pos is silenced, and
// marks the matching directive as used.
func (s *suppressions) suppressed(check string, pos token.Position) bool {
	hit := false
	for _, d := range s.byLine[pos.Filename][pos.Line] {
		if d.check == check {
			d.used = true
			hit = true
		}
	}
	return hit
}

func (s *suppressions) add(pos token.Position, check string) {
	d := &ignoreDirective{pos: pos, check: check}
	s.all = append(s.all, d)
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int][]*ignoreDirective{}
		s.byLine[pos.Filename] = lines
	}
	for _, l := range []int{pos.Line, pos.Line + 1} {
		lines[l] = append(lines[l], d)
	}
}

// collectSuppressions scans every comment in the package for lint:ignore
// directives.
func collectSuppressions(pkg *Package) *suppressions {
	sup := &suppressions{byLine: map[string]map[int][]*ignoreDirective{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, check := range strings.Split(fields[0], ",") {
					if check = strings.TrimSpace(check); check != "" {
						sup.add(pos, check)
					}
				}
			}
		}
	}
	return sup
}
