package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// fixtureChecks maps each fixture to the single check it must trigger
// ("" means any check may appear, used by the suppression fixture).
var fixtureChecks = []struct {
	dir   string
	check string
}{
	{"floatcmp", "floatcmp"},
	{"globalrand", "globalrand"},
	{"errdrop", "errdrop"},
	{"libpanic", "libpanic"},
	{"lockbalance", "lockbalance"},
	{"unboundedgoroutine", "unboundedgoroutine"},
	{"contextleak", "contextleak"},
	{"deferloop", "deferloop"},
	{"tickleak", "tickleak"},
	{"hotalloc", "hotalloc"},
	{"unusedignore", "unusedignore"},
	{"suppress", "floatcmp"},
}

func loadFixture(t *testing.T, dir string) []Finding {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(".", []string{filepath.Join("testdata", dir)})
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return Run(pkgs, Checks())
}

// TestFixturesGolden runs every check over each fixture package and
// compares the full finding list against the fixture's golden file.
func TestFixturesGolden(t *testing.T) {
	for _, tc := range fixtureChecks {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			findings := loadFixture(t, tc.dir)
			if len(findings) == 0 {
				t.Fatalf("fixture %s produced no findings", tc.dir)
			}
			var b strings.Builder
			for _, f := range findings {
				if f.Check != tc.check {
					t.Errorf("fixture %s triggered unexpected check: %s", tc.dir, f)
				}
				fmt.Fprintf(&b, "%s:%d: [%s] %s\n", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Check, f.Message)
			}
			golden := filepath.Join("testdata", tc.dir, "expect.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test -update): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestSuppressionRespected pins the suppression contract precisely: the
// suppress fixture contains three float comparisons, two suppressed.
func TestSuppressionRespected(t *testing.T) {
	findings := loadFixture(t, "suppress")
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 surviving suppression: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].String(), "floatcmp") {
		t.Errorf("surviving finding is not floatcmp: %s", findings[0])
	}
}

// TestExpandSkipsTestdata ensures ./... walks never descend into
// testdata, so the intentional fixture violations cannot fail the gate.
func TestExpandSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand(".", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand descended into %s", d)
		}
	}
	if len(dirs) != 1 {
		t.Errorf("expected only the analysis package itself, got %v", dirs)
	}
}

// TestCheckRegistry pins the advertised check set.
func TestCheckRegistry(t *testing.T) {
	want := []string{
		"floatcmp", "globalrand", "errdrop", "libpanic", "lockbalance",
		"unboundedgoroutine", "contextleak", "deferloop", "tickleak",
		"hotalloc", "unusedignore",
	}
	got := CheckNames()
	if len(got) != len(want) {
		t.Fatalf("CheckNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("check %d = %s, want %s", i, got[i], want[i])
		}
	}
	for _, c := range Checks() {
		if c.Doc == "" {
			t.Errorf("check %s has no doc line", c.Name)
		}
	}
}

// TestModuleDiscovery verifies go.mod ascent from a nested directory.
func TestModuleDiscovery(t *testing.T) {
	loader, err := NewLoader("testdata/floatcmp")
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath != "nodesentry" {
		t.Errorf("ModulePath = %q, want nodesentry", loader.ModulePath)
	}
	if _, err := os.Stat(filepath.Join(loader.ModuleRoot, "go.mod")); err != nil {
		t.Errorf("ModuleRoot %s has no go.mod: %v", loader.ModuleRoot, err)
	}
}
