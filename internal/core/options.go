// Package core implements the NodeSentry framework itself (§3): the offline
// phase — preprocessing, coarse-grained HAC clustering of job segments, and
// per-cluster shared Transformer-MoE reconstruction models weighted by MAC —
// and the online phase — pattern matching against the cluster library,
// reconstruction-error scoring, k-sigma dynamic thresholding, incremental
// fine-tuning of matched patterns and cluster spawning for unmatched ones.
package core

import (
	"nodesentry/internal/cluster"
	"nodesentry/internal/nn"
)

// Options configures a Detector. The zero value is unusable; start from
// DefaultOptions.
type Options struct {
	// --- Preprocessing (§3.2) ---

	// CorrThreshold is the Pearson level at which redundant metrics are
	// dropped (0.99 in the paper).
	CorrThreshold float64
	// Trim is the tail fraction excluded when fitting standardization
	// moments (0.05 in the paper).
	Trim float64
	// Clip bounds standardized values (5 in the paper).
	Clip float64
	// MinSegmentLen drops job segments shorter than this many samples.
	MinSegmentLen int

	// --- Coarse-grained clustering (§3.3) ---

	// PCADims projects the normalized segment-feature vectors onto this
	// many principal components before clustering and matching (0
	// disables). Challenge 1 of the paper calls for exactly this:
	// Euclidean distances concentrate in the raw metrics×features space.
	PCADims int
	// Linkage is the HAC merge criterion.
	Linkage cluster.Linkage
	// KMin/KMax bound the silhouette search for the cluster count.
	KMin, KMax int
	// ClusterOverride forces an exact cluster count (hyperparameter sweep
	// Fig. 6(b)); 0 keeps the automatic silhouette selection.
	ClusterOverride int

	// --- Fine-grained model sharing (§3.4) ---

	// Model is the reconstruction architecture; InputDim is filled in by
	// Train after reduction.
	Model nn.ReconstructorConfig
	// WindowLen is the token-window length fed to the Transformer (20 in
	// the artifact).
	WindowLen int
	// RepSegments is K: how many segments nearest the centroid train each
	// cluster's shared model.
	RepSegments int
	// Epochs/LR drive Adam training (30 / 1.5e-4 in the artifact; smaller
	// defaults keep CPU runs fast).
	Epochs int
	LR     float64
	// MaxWindowsPerCluster caps each epoch's window count (0 = unlimited).
	MaxWindowsPerCluster int

	// --- Online detection (§3.5) ---

	// MatchPeriodSec is how much post-transition data feeds pattern
	// matching (3600 s in the paper).
	MatchPeriodSec int64
	// ThresholdWindowSec is the k-sigma sliding window (15-20 min
	// recommended by the paper).
	ThresholdWindowSec int64
	// KSigma is the dynamic-threshold multiplier (3 in practice).
	KSigma float64
	// MinConsecutive requires that many consecutive threshold
	// exceedances before flagging (1 = the paper's plain point rule;
	// operators commonly debounce with 2 to suppress single-sample
	// noise).
	MinConsecutive int

	// --- Ablation switches (Table 5) ---

	// DisableClustering trains a single shared model (C1).
	DisableClustering bool
	// RandomClusters replaces HAC labels with random groups of the same
	// cardinality (C2).
	RandomClusters bool
	// EqualLengthChopLen, when positive, replaces job-based segmentation
	// with fixed-length chopping (C3).
	EqualLengthChopLen int
	// FlatPositionalEncoding drops the segment-aware encoding term (C4).
	FlatPositionalEncoding bool
	// DenseFFN replaces the sparse MoE with a dense FFN (C5).
	DenseFFN bool
	// UniformLossWeights replaces the MAC-derived WMSE weights of
	// equation (5) with uniform weights — a design ablation of the
	// stability-weighted loss, beyond the paper's C1–C5 set.
	UniformLossWeights bool

	// Seed controls all stochastic choices.
	Seed int64
}

// DefaultOptions returns the paper-faithful configuration at CPU-tractable
// model sizes.
func DefaultOptions() Options {
	return Options{
		CorrThreshold: 0.99,
		Trim:          0.05,
		Clip:          5,
		MinSegmentLen: 16,

		PCADims: 0, // see the `pca` design-ablation experiment before enabling
		Linkage: cluster.Average,
		KMin:    2,
		KMax:    12,

		Model: nn.ReconstructorConfig{
			ModelDim: 48,
			Heads:    2,
			Hidden:   64,
			Blocks:   2,
			Experts:  3,
			TopK:     1,
		},
		WindowLen:            20,
		RepSegments:          8,
		Epochs:               24,
		LR:                   1.5e-3,
		MaxWindowsPerCluster: 400,

		MatchPeriodSec:     3600,
		ThresholdWindowSec: 1200,
		// The paper's operators use 3-sigma; the synthetic substrate's
		// score distribution is heavier-tailed, so 4-sigma is the
		// calibrated equivalent (see EXPERIMENTS.md).
		KSigma:         4,
		MinConsecutive: 1,

		Seed: 1,
	}
}
