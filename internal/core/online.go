package core

import (
	"math"

	"nodesentry/internal/cluster"
	"nodesentry/internal/features"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/nn"
	"nodesentry/internal/preprocess"
	"nodesentry/internal/stats"
)

// SetOnlineParams overrides the online-phase knobs after training: the
// pattern-matching period, the k-sigma sliding window, and k itself. Used
// by the Fig. 6(e)/(f) hyperparameter sweeps, which retrain nothing.
func (d *Detector) SetOnlineParams(matchPeriodSec, thresholdWindowSec int64, kSigma float64) {
	if matchPeriodSec > 0 {
		d.opts.MatchPeriodSec = matchPeriodSec
	}
	if thresholdWindowSec > 0 {
		d.opts.ThresholdWindowSec = thresholdWindowSec
	}
	if kSigma > 0 {
		d.opts.KSigma = kSigma
	}
}

// Preprocess applies the detector's fitted preprocessing (cleaning,
// reduction, standardization) to a raw frame, returning the reduced
// standardized frame the models see. Useful for inspecting what drove a
// detection (e.g. the Fig. 8 case study's per-metric attribution).
func (d *Detector) Preprocess(frame *mts.NodeFrame) *mts.NodeFrame {
	f := frame.Clone()
	preprocess.Clean(f)
	f = d.red.Apply(f)
	d.std.Apply(f)
	return f
}

// SegmentAssignment records the online pattern match of one job segment.
type SegmentAssignment struct {
	Segment  mts.Segment
	Cluster  int
	Distance float64
	// Matched is false when the pattern fell outside every cluster's match
	// radius (the detector still uses the nearest model, but incremental
	// updates would spawn a new cluster for it).
	Matched bool
}

// Result is the online phase's per-node output, aligned with the samples of
// the frame passed to Detect.
type Result struct {
	Node string
	// Scores is the per-sample anomaly score (weighted reconstruction
	// error).
	Scores []float64
	// Preds is the k-sigma thresholded decision per sample.
	Preds []bool
	// Assignments lists the pattern matches of the frame's segments.
	Assignments []SegmentAssignment
}

// Detect runs online anomaly detection on one node's raw frame. spans are
// the node's job spans over the frame's time range (from the scheduler);
// they drive segmentation and pattern matching.
func (d *Detector) Detect(frame *mts.NodeFrame, spans []mts.JobSpan) *Result {
	f := frame.Clone()
	preprocess.Clean(f)
	f = d.red.Apply(f)
	d.std.Apply(f)

	res := &Result{Node: frame.Node, Scores: make([]float64, f.Len())}
	segs := preprocess.Segment(f, spans, 2)
	if len(segs) == 0 && f.Len() >= 2 {
		// No scheduler info: treat the whole frame as one segment.
		segs = []mts.Segment{{Node: f.Node, Job: mts.IdleJobID, Lo: 0, Hi: f.Len()}}
	}
	for _, seg := range segs {
		asg := d.matchSegment(f, seg)
		res.Assignments = append(res.Assignments, asg)
		d.scoreSegment(f, seg, asg.Cluster, res.Scores)
	}
	// Threshold each segment's score stream independently: the k-sigma
	// window must not mix scores produced by different cluster models, or
	// every model switch at a job transition looks like a level shift.
	res.Preds = make([]bool, len(res.Scores))
	for _, a := range res.Assignments {
		sub := res.Scores[a.Segment.Lo:a.Segment.Hi]
		for i, p := range d.Threshold(sub, f.Step) {
			res.Preds[a.Segment.Lo+i] = p
		}
	}
	return res
}

// matchSegment extracts features from the segment's initial match period
// and assigns the nearest cluster (§3.5).
func (d *Detector) matchSegment(f *mts.NodeFrame, seg mts.Segment) SegmentAssignment {
	matchLen := int(d.opts.MatchPeriodSec / f.Step)
	if matchLen < 2 {
		matchLen = 2
	}
	probe := seg
	if probe.Len() > matchLen {
		probe.Hi = probe.Lo + matchLen
	}
	v := d.featureVector(f, probe)
	c, dist := cluster.Assign(v, d.centroids)
	return SegmentAssignment{
		Segment:  seg,
		Cluster:  c,
		Distance: dist,
		Matched:  dist <= d.library[c].radius*1.5,
	}
}

// scoreSegment reconstructs the segment with its cluster's shared model and
// writes the per-sample weighted reconstruction errors into scores.
func (d *Detector) scoreSegment(f *mts.NodeFrame, seg mts.Segment, c int, scores []float64) {
	cm := d.library[c]
	inv := 1.0
	if cm.scale > 0 {
		inv = 1 / cm.scale
	}
	for _, w := range segmentWindows(f, seg, 0, d.opts.WindowLen) {
		out := cm.model.Forward(w.x, w.positions, w.segIDs)
		errs := nn.ReconErrors(out, w.x, cm.weights)
		for i, e := range errs {
			// positions carry the job-true offset; subtract it to recover
			// the frame index.
			scores[seg.Lo+w.positions[i]-seg.Offset] = e * inv
		}
	}
}

// Threshold applies the detector's configured dynamic k-sigma rule, with
// optional debouncing (MinConsecutive).
func (d *Detector) Threshold(scores []float64, step int64) []bool {
	preds := KSigmaThreshold(scores, step, d.opts.ThresholdWindowSec, d.opts.KSigma)
	if d.opts.MinConsecutive > 1 {
		preds = Debounce(preds, d.opts.MinConsecutive)
	}
	return preds
}

// Debounce suppresses positive runs shorter than minRun samples.
func Debounce(preds []bool, minRun int) []bool {
	out := make([]bool, len(preds))
	for i := 0; i < len(preds); {
		if !preds[i] {
			i++
			continue
		}
		j := i
		for j < len(preds) && preds[j] {
			j++
		}
		if j-i >= minRun {
			for k := i; k < j; k++ {
				out[k] = true
			}
		}
		i = j
	}
	return out
}

// KSigmaThreshold is the paper's dynamic thresholding rule (§3.5): a sample
// is anomalous when its score exceeds mean + k·sigma of the scores in the
// sliding window preceding it. A sigma floor proportional to the window
// mean keeps perfectly flat windows from flagging noise. The same rule is
// applied to every baseline for a fair comparison.
func KSigmaThreshold(scores []float64, step, windowSec int64, k float64) []bool {
	w := int(windowSec / step)
	if w < 4 {
		w = 4
	}
	preds := make([]bool, len(scores))
	for t := range scores {
		lo := t - w
		if lo < 0 {
			lo = 0
		}
		win := scores[lo:t]
		if len(win) < 4 {
			// Too little history: compare against the global head.
			hi := w
			if hi > len(scores) {
				hi = len(scores)
			}
			win = scores[:hi]
		}
		mean, sd := stats.MeanStd(win)
		floor := 0.1*mean + 1e-9
		if sd < floor {
			sd = floor
		}
		preds[t] = scores[t] > mean+k*sd
	}
	return preds
}

// featureVector extracts a segment's normalized (and, when configured,
// PCA-projected) feature vector — the coordinates of the cluster library.
func (d *Detector) featureVector(f *mts.NodeFrame, seg mts.Segment) []float64 {
	v := features.SegmentVector(f, seg)
	features.ApplyNormalization(v, d.featMean, d.featStd)
	if d.pca != nil {
		v = d.pca.TransformVector(v)
	}
	return v
}

// MatchPattern matches a raw probe frame — the short period collected
// after a job transition — against the cluster library, without scoring.
// This is the streaming variant of the per-segment matching Detect does.
func (d *Detector) MatchPattern(frame *mts.NodeFrame) SegmentAssignment {
	f := d.preprocessInto(frame)
	seg := mts.Segment{Node: f.Node, Job: mts.IdleJobID, Lo: 0, Hi: f.Len()}
	return d.matchSegment(f, seg)
}

// ScoreFrame scores a raw frame with a specific cluster's model, returning
// one normalized reconstruction-error score per sample. offset is the
// frame's first-sample position within its job, so streaming windows keep
// job-aligned positional encodings.
func (d *Detector) ScoreFrame(frame *mts.NodeFrame, cluster int, offset int) []float64 {
	if cluster < 0 || cluster >= len(d.library) {
		return make([]float64, frame.Len())
	}
	f := d.preprocessInto(frame)
	n := f.Len()
	scores := make([]float64, n)
	if n > 0 && n <= d.opts.WindowLen {
		// Streaming fast path: the frame is a single model window, so the
		// window matrix is packed straight into detector scratch instead
		// of going through segmentWindows' per-call allocations. The
		// arithmetic is the window-for-window same as scoreSegment's.
		cm := d.library[cluster]
		inv := 1.0
		if cm.scale > 0 {
			inv = 1 / cm.scale
		}
		s := &d.scratch
		s.x = growMat(s.x, n, d.red.NumOutput())
		s.positions = mat.GrowInts(s.positions, n)
		s.segIDs = mat.GrowInts(s.segIDs, n)
		s.windowInto(f, 0, n, offset)
		pred := cm.model.ForwardWindows(s.x, n, s.positions, s.segIDs)
		nn.ReconErrorsInto(scores, pred, s.x, cm.weights)
		for t := range scores {
			scores[t] *= inv
		}
		return scores
	}
	seg := mts.Segment{Node: f.Node, Job: mts.IdleJobID, Lo: 0, Hi: n, Offset: offset}
	d.scoreSegment(f, seg, cluster, scores)
	return scores
}

// WindowLen returns the model's token-window length.
func (d *Detector) WindowLen() int { return d.opts.WindowLen }

// ClusterRadius returns cluster c's match radius (the p95 member-to-centroid
// feature distance), or 0 for an out-of-range index. Drift detectors use it
// to normalize observed match distances into radius multiples.
func (d *Detector) ClusterRadius(c int) float64 {
	if c < 0 || c >= len(d.library) {
		return 0
	}
	return d.library[c].radius
}

// ClusterScale returns cluster c's score scale (the median training-time
// reconstruction error), or 0 for an out-of-range index. Because online
// scores are divided by it, a healthy score stream has median ≈ 1 — the
// baseline drift detection compares against.
func (d *Detector) ClusterScale(c int) float64 {
	if c < 0 || c >= len(d.library) {
		return 0
	}
	return d.library[c].scale
}

// MatchPeriodSec returns the configured pattern-matching period.
func (d *Detector) MatchPeriodSec() int64 { return d.opts.MatchPeriodSec }

// OnlineParams returns the current online thresholding parameters.
func (d *Detector) OnlineParams() (thresholdWindowSec int64, kSigma float64) {
	return d.opts.ThresholdWindowSec, d.opts.KSigma
}

// UpdateReport summarizes an incremental update (§3.5): matched patterns
// fine-tune their cluster's model; unmatched patterns are clustered anew
// and extend the library.
type UpdateReport struct {
	MatchedSegments   int
	UnmatchedSegments int
	SpawnedClusters   int
}

// IncrementalUpdate adapts the detector to new data without retraining from
// scratch: segments matching an existing cluster fine-tune that cluster's
// model for `epochs` epochs and nudge the centroid; segments matching
// nothing are clustered among themselves and become new library entries.
func (d *Detector) IncrementalUpdate(frame *mts.NodeFrame, spans []mts.JobSpan, epochs int) (UpdateReport, error) {
	if epochs <= 0 {
		epochs = 1
	}
	f := frame.Clone()
	preprocess.Clean(f)
	f = d.red.Apply(f)
	d.std.Apply(f)

	var rep UpdateReport
	segs := preprocess.Segment(f, spans, d.opts.MinSegmentLen)
	frames := map[string]*mts.NodeFrame{f.Node: f}

	type pending struct {
		seg mts.Segment
		v   []float64
	}
	var unmatched []pending
	for _, seg := range segs {
		v := d.featureVector(f, seg)
		c, dist := cluster.Assign(v, d.centroids)
		if dist <= d.library[c].radius*1.5 {
			rep.MatchedSegments++
			d.fineTune(c, f, seg, epochs)
			// Exponential centroid drift toward the new pattern.
			crow := d.centroids.Row(c)
			for j := range crow {
				crow[j] = 0.9*crow[j] + 0.1*v[j]
			}
			continue
		}
		unmatched = append(unmatched, pending{seg, v})
	}
	rep.UnmatchedSegments = len(unmatched)
	if len(unmatched) == 0 {
		return rep, nil
	}

	// Cluster the unmatched patterns among themselves and train fresh
	// models for them.
	F := mat.New(len(unmatched), len(unmatched[0].v))
	segsNew := make([]mts.Segment, len(unmatched))
	for i, p := range unmatched {
		copy(F.Row(i), p.v)
		segsNew[i] = p.seg
	}
	var labels []int
	if len(unmatched) >= 4 {
		res := cluster.HACAuto(F, d.opts.Linkage, 2, min(4, len(unmatched)))
		labels = res.Labels
	} else {
		labels = make([]int, len(unmatched))
	}
	k := maxLabel(labels) + 1
	newCentroids := cluster.Centroids(F, labels, k)
	for c := 0; c < k; c++ {
		// Append the centroid row and train a model for the new cluster.
		d.centroids = appendRow(d.centroids, newCentroids.Row(c))
		global := len(d.library)
		var dists []float64
		for i, l := range labels {
			if l == c {
				dists = append(dists, mat.EuclideanDist(F.Row(i), newCentroids.Row(c)))
			}
		}
		radius := stats.Quantile(dists, 0.95)
		if math.IsNaN(radius) || radius == 0 {
			radius = 1
		}
		cm, err := d.trainNewClusterModel(global, F, labels, c, segsNew, frames, epochs)
		if err != nil {
			return rep, err
		}
		cm.radius = radius
		d.library = append(d.library, cm)
		rep.SpawnedClusters++
	}
	d.Stats.Clusters = len(d.library)
	return rep, nil
}

// fineTune runs a few epochs of the cluster's model on one new segment.
func (d *Detector) fineTune(c int, f *mts.NodeFrame, seg mts.Segment, epochs int) {
	cm := d.library[c]
	wins := segmentWindows(f, seg, 0, d.opts.WindowLen)
	if d.opts.MaxWindowsPerCluster > 0 && len(wins) > d.opts.MaxWindowsPerCluster {
		wins = wins[:d.opts.MaxWindowsPerCluster]
	}
	params := cm.model.Params()
	opt := nn.NewAdam(params, d.opts.LR*0.3) // gentler fine-tuning
	for e := 0; e < epochs; e++ {
		for _, w := range wins {
			out := cm.model.Forward(w.x, w.positions, w.segIDs)
			_, grad := nn.WMSE(out, w.x, cm.weights)
			cm.model.Backward(grad)
			nn.ClipGradients(params, 5)
			opt.Step()
		}
	}
}

// trainNewClusterModel builds and trains a model for a spawned cluster.
func (d *Detector) trainNewClusterModel(globalID int, F *mat.Matrix, labels []int, c int, segs []mts.Segment, frames map[string]*mts.NodeFrame, epochs int) (*clusterModel, error) {
	dim := d.red.NumOutput()
	macs := make([]float64, dim)
	var wins []trainWindow
	segID := 0
	for i, l := range labels {
		if l != c {
			continue
		}
		seg := segs[i]
		for m := 0; m < dim; m++ {
			macs[m] += stats.MAC(frames[seg.Node].Data[m][seg.Lo:seg.Hi])
		}
		wins = append(wins, segmentWindows(frames[seg.Node], seg, segID, d.opts.WindowLen)...)
		segID++
	}
	if segID > 0 {
		for m := range macs {
			macs[m] /= float64(segID)
		}
	}
	weights := nn.MACWeights(macs)
	cfg := d.opts.Model
	cfg.InputDim = dim
	cfg.UseMoE = !d.opts.DenseFFN
	cfg.SegmentAwarePE = !d.opts.FlatPositionalEncoding
	cfg.Seed = d.opts.Seed + int64(globalID)*977
	model, err := nn.NewReconstructor(cfg)
	if err != nil {
		return nil, err
	}
	params := model.Params()
	opt := nn.NewAdam(params, d.opts.LR)
	if d.opts.MaxWindowsPerCluster > 0 && len(wins) > d.opts.MaxWindowsPerCluster {
		wins = wins[:d.opts.MaxWindowsPerCluster]
	}
	for e := 0; e < epochs; e++ {
		for _, w := range wins {
			out := model.Forward(w.x, w.positions, w.segIDs)
			_, grad := nn.WMSE(out, w.x, weights)
			model.Backward(grad)
			nn.ClipGradients(params, 5)
			opt.Step()
		}
	}
	var trainErrs []float64
	for _, w := range wins {
		out := model.Forward(w.x, w.positions, w.segIDs)
		trainErrs = append(trainErrs, nn.ReconErrors(out, w.x, weights)...)
	}
	scale := stats.Median(trainErrs)
	if !(scale > 1e-9) {
		scale = 1
	}
	return &clusterModel{model: model, weights: weights, scale: scale}, nil
}

func appendRow(m *mat.Matrix, row []float64) *mat.Matrix {
	out := mat.New(m.Rows+1, m.Cols)
	copy(out.Data, m.Data)
	copy(out.Row(m.Rows), row)
	return out
}

// SetMinConsecutive overrides the debounce run length (testing hook).
func (d *Detector) SetMinConsecutive(n int) { d.opts.MinConsecutive = n }
