package core

import (
	"bytes"
	"math"
	"testing"

	"nodesentry/internal/dataset"
	"nodesentry/internal/eval"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

// fixture builds a Tiny dataset and its TrainInput once per test binary.
var fixtureCache *fixtureData

type fixtureData struct {
	ds *dataset.Dataset
	in TrainInput
}

func fixture(t testing.TB) *fixtureData {
	t.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	ds := dataset.Build(dataset.Tiny())
	in := TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: semanticGroups(ds.Catalog),
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	fixtureCache = &fixtureData{ds: ds, in: in}
	return fixtureCache
}

func semanticGroups(cat []telemetry.Metric) map[string][]int {
	groups := map[string][]int{}
	for sem, rows := range telemetry.SemanticIndex(cat) {
		groups[sem] = rows
	}
	return groups
}

func fastOptions() Options {
	o := DefaultOptions()
	o.Epochs = 4
	o.MaxWindowsPerCluster = 80
	o.KMax = 6
	o.RepSegments = 4
	return o
}

func trainFixture(t testing.TB, opts Options) (*fixtureData, *Detector) {
	t.Helper()
	fx := fixture(t)
	d, err := Train(fx.in, opts)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return fx, d
}

func TestTrainBasics(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	if d.NumClusters() < 2 {
		t.Errorf("got %d clusters, want >= 2 (multiple job kinds exist)", d.NumClusters())
	}
	if d.Stats.Segments == 0 || d.Stats.ReducedDim == 0 {
		t.Errorf("stats incomplete: %+v", d.Stats)
	}
	// Reduction must shrink the dimension substantially (the catalog has
	// per-core + affine redundancy).
	raw := len(fixture(t).ds.Catalog)
	if d.Stats.ReducedDim*2 > raw {
		t.Errorf("reduced dim %d not much below raw %d", d.Stats.ReducedDim, raw)
	}
	if d.Stats.TrainDuration <= 0 {
		t.Error("train duration not recorded")
	}
	if len(d.ReducedMetricNames()) != d.Stats.ReducedDim {
		t.Error("reduced metric names inconsistent")
	}
}

func TestDetectEndToEnd(t *testing.T) {
	fx, d := trainFixture(t, fastOptions())
	ds := fx.ds
	test := ds.TestFrames()
	var results []eval.NodeResult
	anyAssignments := false
	for _, node := range ds.Nodes() {
		frame := test[node]
		spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
		res := d.Detect(frame, spans)
		if len(res.Scores) != frame.Len() || len(res.Preds) != frame.Len() {
			t.Fatalf("node %s: result length mismatch", node)
		}
		for i, s := range res.Scores {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("node %s: score[%d] = %v", node, i, s)
			}
		}
		if len(res.Assignments) > 0 {
			anyAssignments = true
		}
		label := ds.Labels.Mask(frame)
		ignore := eval.TransitionIgnoreMask(frame, spans, 60)
		results = append(results, eval.EvaluateNode(res.Scores, res.Preds, label, ignore))
	}
	if !anyAssignments {
		t.Error("no segment assignments recorded")
	}
	s := eval.Aggregate(results)
	t.Logf("tiny end-to-end: P=%.3f R=%.3f AUC=%.3f F1=%.3f", s.Precision, s.Recall, s.AUC, s.F1)
	if s.AUC < 0.7 {
		t.Errorf("AUC = %.3f, want >= 0.7 on the easy tiny dataset", s.AUC)
	}
	if s.Recall < 0.5 {
		t.Errorf("recall = %.3f, want >= 0.5", s.Recall)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	fx, d := trainFixture(t, fastOptions())
	ds := fx.ds
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	node := ds.Nodes()[0]
	frame := ds.TestFrames()[node]
	spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
	a := d.Detect(frame, spans)
	b := d2.Detect(frame, spans)
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-12 {
			t.Fatalf("scores diverge at %d: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}
	if d2.NumClusters() != d.NumClusters() {
		t.Errorf("cluster count changed: %d vs %d", d2.NumClusters(), d.NumClusters())
	}
}

func TestAblationVariantsTrainAndDetect(t *testing.T) {
	fx := fixture(t)
	ds := fx.ds
	node := ds.Nodes()[0]
	frame := ds.TestFrames()[node]
	spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)

	variants := map[string]func(*Options){
		"C1-single-model":   func(o *Options) { o.DisableClustering = true },
		"C2-random-cluster": func(o *Options) { o.RandomClusters = true },
		"C3-equal-chop":     func(o *Options) { o.EqualLengthChopLen = 40 },
		"C4-flat-pe":        func(o *Options) { o.FlatPositionalEncoding = true },
		"C5-dense-ffn":      func(o *Options) { o.DenseFFN = true },
	}
	for name, mutate := range variants {
		opts := fastOptions()
		opts.Epochs = 2
		opts.MaxWindowsPerCluster = 40
		mutate(&opts)
		d, err := Train(fx.in, opts)
		if err != nil {
			t.Fatalf("%s: Train: %v", name, err)
		}
		if name == "C1-single-model" && d.NumClusters() != 1 {
			t.Errorf("C1 should have exactly 1 cluster, got %d", d.NumClusters())
		}
		res := d.Detect(frame, spans)
		for i, s := range res.Scores {
			if math.IsNaN(s) {
				t.Fatalf("%s: NaN score at %d", name, i)
			}
		}
	}
}

func TestClusterOverride(t *testing.T) {
	fx := fixture(t)
	opts := fastOptions()
	opts.Epochs = 1
	opts.MaxWindowsPerCluster = 20
	opts.ClusterOverride = 3
	d, err := Train(fx.in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumClusters() != 3 {
		t.Errorf("override produced %d clusters, want 3", d.NumClusters())
	}
}

func TestThresholdBehaviour(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	scores := make([]float64, 200)
	for i := range scores {
		scores[i] = 1 + 0.01*math.Sin(float64(i))
	}
	scores[150] = 10 // an obvious spike
	preds := d.Threshold(scores, 60)
	if !preds[150] {
		t.Error("spike not flagged")
	}
	flagged := 0
	for i, p := range preds {
		if p && i != 150 {
			flagged++
		}
	}
	if flagged > 4 {
		t.Errorf("%d false flags on a near-constant stream", flagged)
	}
}

func TestThresholdKMonotone(t *testing.T) {
	fx := fixture(t)
	_ = fx
	scores := make([]float64, 300)
	for i := range scores {
		scores[i] = math.Abs(math.Sin(float64(i) * 0.7))
	}
	count := func(k float64) int {
		opts := fastOptions()
		opts.KSigma = k
		d := &Detector{opts: opts}
		n := 0
		for _, p := range d.Threshold(scores, 60) {
			if p {
				n++
			}
		}
		return n
	}
	if count(1) < count(3) {
		t.Error("higher k-sigma should flag fewer points")
	}
}

func TestIncrementalUpdateMatchesAndSpawns(t *testing.T) {
	fx, d := trainFixture(t, fastOptions())
	ds := fx.ds
	before := d.NumClusters()
	node := ds.Nodes()[1]
	frame := ds.TestFrames()[node]
	spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
	rep, err := d.IncrementalUpdate(frame, spans, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchedSegments+rep.UnmatchedSegments == 0 {
		t.Fatal("incremental update saw no segments")
	}
	if rep.SpawnedClusters != d.NumClusters()-before {
		t.Errorf("spawned %d but library grew by %d", rep.SpawnedClusters, d.NumClusters()-before)
	}
	// Detection still functions after the update.
	res := d.Detect(frame, spans)
	for _, s := range res.Scores {
		if math.IsNaN(s) {
			t.Fatal("NaN score after incremental update")
		}
	}
}

func TestSegmentWindows(t *testing.T) {
	f := &mts.NodeFrame{
		Node:    "n",
		Metrics: []string{"a", "b"},
		Data: [][]float64{
			make([]float64, 50),
			make([]float64, 50),
		},
		Start: 0, Step: 60,
	}
	for i := 0; i < 50; i++ {
		f.Data[0][i] = float64(i)
	}
	seg := mts.Segment{Node: "n", Lo: 5, Hi: 48} // 43 samples
	wins := segmentWindows(f, seg, 2, 20)
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 (2 full + 1 tail)", len(wins))
	}
	// Coverage: every position in [0,43) appears at least once.
	seen := make([]bool, 43)
	for _, w := range wins {
		for i, p := range w.positions {
			seen[p] = true
			if w.segIDs[i] != 2 {
				t.Fatal("segID not propagated")
			}
			if w.x.At(i, 0) != float64(seg.Lo+p) {
				t.Fatalf("window data mismatch at pos %d", p)
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			t.Fatalf("position %d not covered", p)
		}
	}
	// Short segment: single window of its own length.
	short := segmentWindows(f, mts.Segment{Node: "n", Lo: 0, Hi: 7}, 0, 20)
	if len(short) != 1 || short[0].x.Rows != 7 {
		t.Fatalf("short segment windows = %v", len(short))
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(TrainInput{}, fastOptions()); err == nil {
		t.Error("Train with no frames should fail")
	}
}

func TestDetectWithoutSpans(t *testing.T) {
	fx, d := trainFixture(t, fastOptions())
	ds := fx.ds
	node := ds.Nodes()[0]
	frame := ds.TestFrames()[node]
	res := d.Detect(frame, nil)
	if len(res.Scores) != frame.Len() {
		t.Fatal("span-less detection did not cover the frame")
	}
	if len(res.Assignments) != 1 {
		t.Errorf("expected a single whole-frame assignment, got %d", len(res.Assignments))
	}
}
