package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"nodesentry/internal/cluster"
	"nodesentry/internal/features"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/nn"
	"nodesentry/internal/obs"
	"nodesentry/internal/preprocess"
	"nodesentry/internal/stats"
)

// TrainInput is the offline phase's input: the raw training split of each
// node plus the scheduler's job spans covering it.
type TrainInput struct {
	// Frames maps node name to its raw training frame. Frames are cloned
	// before mutation.
	Frames map[string]*mts.NodeFrame
	// Spans maps node name to its job spans (idle included), clipped to
	// the training window.
	Spans map[string][]mts.JobSpan
	// SemanticGroups optionally maps an aggregated-metric name to the raw
	// rows it should average (per-core expansions, known aliases). When
	// nil, every metric stands alone and only Pearson deduplication
	// reduces the dimension.
	SemanticGroups map[string][]int
	// Trace, when non-nil, receives one span per offline stage
	// (preprocess, segmentation, features, hac, train_models) with wall
	// time, allocations, and item counts. It never alters training.
	Trace *obs.Tracer
	// Ctx, when non-nil, lets callers cancel training: Train checks it
	// between stages and between epochs inside per-cluster training, and
	// returns ctx.Err(). A background retrainer needs this to drain
	// promptly on shutdown without waiting out a full training run.
	//lint:ignore contextleak TrainInput is a call argument bundle consumed within one Train call, not stored state
	Ctx context.Context
}

// ctx returns the input's context, defaulting to Background.
func (in TrainInput) ctx() context.Context {
	if in.Ctx != nil {
		return in.Ctx
	}
	return context.Background()
}

// clusterModel is one entry of the model library: the shared reconstruction
// model of a cluster plus its MAC-derived loss weights and match radius.
type clusterModel struct {
	model   *nn.Reconstructor
	weights []float64
	// radius is the 95th-percentile member-to-centroid feature distance,
	// used online to decide whether a new pattern matches this cluster.
	radius float64
	// scale is the median reconstruction error of the cluster's own
	// training windows; online scores are divided by it so that score
	// streams are comparable across clusters and one k-sigma threshold
	// applies to the whole node.
	scale float64
}

// TrainStats summarizes the offline phase.
type TrainStats struct {
	Segments      int
	ReducedDim    int
	Clusters      int
	Silhouette    float64
	TrainDuration time.Duration
	// ClusterSizes[c] is the number of segments assigned to cluster c.
	ClusterSizes []int
	// SkippedNodes counts training nodes excluded for not sharing the
	// fleet's majority metric layout — model sharing needs one schema,
	// and a divergent node (partial collector, foreign auto-registration)
	// must not poison or crash the shared reduction.
	SkippedNodes int
}

// Detector is a trained NodeSentry instance. Train builds it; Detect and
// IncrementalUpdate use it. A Detector is safe for concurrent Detect calls
// on different nodes only if the caller serializes access per cluster
// model; the simple rule is: Detect from one goroutine, or Clone the
// detector. (The benchmark harness detects nodes sequentially, as the
// paper's per-node online latency is the reported quantity.)
type Detector struct {
	opts Options

	red       *preprocess.Reduction
	std       *preprocess.Standardizer
	featMean  []float64
	featStd   []float64
	pca       *cluster.PCA // nil when PCADims == 0
	centroids *mat.Matrix
	library   []*clusterModel
	scratch   scoreScratch

	Stats TrainStats
}

// Train runs the offline phase and returns a ready Detector.
func Train(in TrainInput, opts Options) (*Detector, error) {
	start := time.Now()
	if len(in.Frames) == 0 {
		return nil, fmt.Errorf("core: no training frames")
	}
	ctx := in.ctx()
	d := &Detector{opts: opts}

	// --- Preprocessing ---
	sp := in.Trace.Start("preprocess")
	nodes := sortedNodes(in.Frames)
	cleaned := make(map[string]*mts.NodeFrame, len(in.Frames))
	for _, node := range nodes {
		f := in.Frames[node].Clone()
		preprocess.Clean(f)
		cleaned[node] = f
	}
	nodes, skipped := majorityLayout(nodes, cleaned)
	d.Stats.SkippedNodes = skipped
	first := cleaned[nodes[0]]
	d.red = preprocess.PlanReduction(cleaned, first.Metrics, in.SemanticGroups, opts.CorrThreshold)
	reduced := make(map[string]*mts.NodeFrame, len(cleaned))
	for node, f := range cleaned {
		reduced[node] = d.red.Apply(f)
	}
	d.std = preprocess.FitStandardizer(reduced, opts.Trim, opts.Clip)
	for _, f := range reduced {
		d.std.Apply(f)
	}
	d.Stats.ReducedDim = d.red.NumOutput()
	sp.AddItems(int64(len(nodes)))
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: training canceled: %w", err)
	}

	// --- Segmentation ---
	sp = in.Trace.Start("segmentation")
	var segments []mts.Segment
	for _, node := range nodes {
		f := reduced[node]
		if opts.EqualLengthChopLen > 0 { // ablation C3
			segments = append(segments, preprocess.EqualLengthChop(f, opts.EqualLengthChopLen)...)
		} else {
			segments = append(segments, preprocess.Segment(f, in.Spans[node], opts.MinSegmentLen)...)
		}
	}
	sp.AddItems(int64(len(segments)))
	sp.End()
	if len(segments) == 0 {
		return nil, fmt.Errorf("core: no segments after preprocessing (min length %d)", opts.MinSegmentLen)
	}
	d.Stats.Segments = len(segments)

	// --- Feature extraction & coarse clustering ---
	sp = in.Trace.Start("features")
	F := features.Matrix(reduced, segments)
	d.featMean, d.featStd = features.NormalizeColumns(F)
	if opts.PCADims > 0 {
		d.pca = cluster.FitPCA(F.Clone(), opts.PCADims)
		F = d.pca.Transform(F)
	}
	sp.AddItems(int64(F.Rows))
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: training canceled: %w", err)
	}

	sp = in.Trace.Start("hac")
	labels, k, sil := d.clusterSegments(F)
	d.Stats.Clusters = k
	d.Stats.Silhouette = sil
	d.centroids = cluster.Centroids(F, labels, k)
	d.Stats.ClusterSizes = make([]int, k)
	for _, l := range labels {
		d.Stats.ClusterSizes[l]++
	}
	sp.AddItems(int64(k))
	sp.End()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: training canceled: %w", err)
	}

	// --- Fine-grained model sharing: one shared model per cluster ---
	sp = in.Trace.Start("train_models")
	d.library = make([]*clusterModel, k)
	trainErrs := make([]error, k)
	mat.ParallelItems(k, func(c int) {
		d.library[c], trainErrs[c] = d.trainClusterModel(ctx, c, F, labels, segments, reduced)
	})
	sp.AddItems(int64(k))
	sp.End()
	for _, err := range trainErrs {
		if err != nil {
			return nil, err
		}
	}

	d.Stats.TrainDuration = time.Since(start)
	return d, nil
}

// clusterSegments produces the coarse labels, honoring the ablation
// switches: C1 (single cluster), C2 (random grouping), or the standard
// silhouette-guided HAC, optionally overridden to an exact k.
func (d *Detector) clusterSegments(F *mat.Matrix) (labels []int, k int, sil float64) {
	n := F.Rows
	switch {
	case d.opts.DisableClustering: // C1
		return make([]int, n), 1, 0
	case d.opts.RandomClusters: // C2: same k as HAC would choose, random membership
		base := d.autoOrOverride(F)
		k = maxLabel(base) + 1
		rng := rand.New(rand.NewSource(d.opts.Seed + 7))
		labels = make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		ensureNonEmpty(labels, k)
		return labels, k, 0
	default:
		labels = d.autoOrOverride(F)
		k = maxLabel(labels) + 1
		return labels, k, cluster.Silhouette(F, labels)
	}
}

func (d *Detector) autoOrOverride(F *mat.Matrix) []int {
	if d.opts.ClusterOverride > 0 {
		k := d.opts.ClusterOverride
		if k > F.Rows {
			k = F.Rows
		}
		return cluster.HAC(F, d.opts.Linkage, k)
	}
	res := cluster.HACAuto(F, d.opts.Linkage, d.opts.KMin, d.opts.KMax)
	return res.Labels
}

func maxLabel(labels []int) int {
	m := 0
	for _, l := range labels {
		if l > m {
			m = l
		}
	}
	return m
}

// ensureNonEmpty reassigns one element to every empty cluster so that the
// random-cluster ablation never produces unusable empty groups.
func ensureNonEmpty(labels []int, k int) {
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	next := 0
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			continue
		}
		// Steal from the largest cluster.
		big := 0
		for i := range counts {
			if counts[i] > counts[big] {
				big = i
			}
		}
		for ; next < len(labels); next++ {
			if labels[next] == big {
				labels[next] = c
				counts[big]--
				counts[c]++
				break
			}
		}
	}
}

// trainClusterModel trains the shared model of cluster c on the K segments
// nearest its centroid (a form of data augmentation per §3.4), with
// MAC-derived WMSE weights and segment-aware positional encoding. The
// context is checked between epochs — the granularity at which cancellation
// is cheap and deterministic.
func (d *Detector) trainClusterModel(ctx context.Context, c int, F *mat.Matrix, labels []int, segments []mts.Segment, frames map[string]*mts.NodeFrame) (*clusterModel, error) {
	reps := cluster.NearestMembers(F, labels, d.centroids.Row(c), c, d.opts.RepSegments)
	if len(reps) == 0 {
		reps = []int{0}
	}

	// Match radius: p95 member-to-centroid distance.
	var dists []float64
	for i, l := range labels {
		if l == c {
			dists = append(dists, mat.EuclideanDist(F.Row(i), d.centroids.Row(c)))
		}
	}
	radius := stats.Quantile(dists, 0.95)

	// MAC weights over the representative segments' training data.
	dim := d.red.NumOutput()
	macs := make([]float64, dim)
	for m := 0; m < dim; m++ {
		var total, n float64
		for _, ri := range reps {
			seg := segments[ri]
			row := frames[seg.Node].Data[m][seg.Lo:seg.Hi]
			total += stats.MAC(row) * float64(len(row))
			n += float64(len(row))
		}
		if n > 0 {
			macs[m] = total / n
		}
	}
	weights := nn.MACWeights(macs)
	if d.opts.UniformLossWeights {
		weights = nil
	}

	// Build training windows across the representative segments.
	var wins []trainWindow
	for segID, ri := range reps {
		seg := segments[ri]
		wins = append(wins, segmentWindows(frames[seg.Node], seg, segID, d.opts.WindowLen)...)
	}
	rng := rand.New(rand.NewSource(d.opts.Seed + int64(c)*131))
	rng.Shuffle(len(wins), func(i, j int) { wins[i], wins[j] = wins[j], wins[i] })
	if d.opts.MaxWindowsPerCluster > 0 && len(wins) > d.opts.MaxWindowsPerCluster {
		wins = wins[:d.opts.MaxWindowsPerCluster]
	}

	cfg := d.opts.Model
	cfg.InputDim = dim
	cfg.UseMoE = !d.opts.DenseFFN
	cfg.SegmentAwarePE = !d.opts.FlatPositionalEncoding
	cfg.Seed = d.opts.Seed + int64(c)*977
	model, err := nn.NewReconstructor(cfg)
	if err != nil {
		return nil, err
	}
	// Params returns stable pointers, so hoist the (allocating) walk out of
	// the step loop.
	params := model.Params()
	opt := nn.NewAdam(params, d.opts.LR)
	for epoch := 0; epoch < d.opts.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: training canceled: %w", err)
		}
		for _, w := range wins {
			out := model.Forward(w.x, w.positions, w.segIDs)
			_, grad := nn.WMSE(out, w.x, weights)
			model.Backward(grad)
			nn.ClipGradients(params, 5)
			opt.Step()
		}
	}
	// Calibrate the cluster's score scale on its own training windows.
	var trainErrs []float64
	for _, w := range wins {
		out := model.Forward(w.x, w.positions, w.segIDs)
		trainErrs = append(trainErrs, nn.ReconErrors(out, w.x, weights)...)
	}
	scale := stats.Median(trainErrs)
	if !(scale > 1e-9) {
		scale = 1
	}
	return &clusterModel{model: model, weights: weights, radius: radius, scale: scale}, nil
}

// trainWindow is one token window with its positional metadata.
type trainWindow struct {
	x         *mat.Matrix
	positions []int
	segIDs    []int
}

// segmentWindows slices a segment into non-overlapping windows of winLen
// tokens (the tail is covered by a window aligned to the segment end), with
// within-segment positions and the segment id for the enhanced positional
// encoding.
func segmentWindows(f *mts.NodeFrame, seg mts.Segment, segID, winLen int) []trainWindow {
	n := seg.Len()
	if n <= 0 {
		return nil
	}
	var out []trainWindow
	emit := func(lo, hi int) {
		w := trainWindow{
			x:         mat.New(hi-lo, f.NumMetrics()),
			positions: make([]int, hi-lo),
			segIDs:    make([]int, hi-lo),
		}
		for t := lo; t < hi; t++ {
			row := w.x.Row(t - lo)
			for m := range f.Data {
				row[m] = f.Data[m][seg.Lo+t]
			}
			w.positions[t-lo] = seg.Offset + t
			w.segIDs[t-lo] = segID
		}
		out = append(out, w)
	}
	if n <= winLen {
		emit(0, n)
		return out
	}
	lo := 0
	for ; lo+winLen <= n; lo += winLen {
		emit(lo, lo+winLen)
	}
	if lo < n {
		emit(n-winLen, n)
	}
	return out
}

func sortedNodes(frames map[string]*mts.NodeFrame) []string {
	nodes := make([]string, 0, len(frames))
	for n := range frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}

// majorityLayout keeps only the nodes sharing the most common metric
// layout, deleting the rest from cleaned, and reports how many were
// skipped. Model sharing reduces and clusters every node under one
// fleet-wide schema; a frame with a different metric set (a partial
// collector, a foreign auto-registration riding the retrain buffer)
// cannot share it, and indexing the shared semantic groups into such a
// frame would read out of range. Ties break toward the layout seen
// first in sorted node order, keeping training deterministic.
func majorityLayout(nodes []string, cleaned map[string]*mts.NodeFrame) ([]string, int) {
	sig := func(ms []string) string { return strings.Join(ms, "\x00") }
	count := map[string]int{}
	for _, node := range nodes {
		count[sig(cleaned[node].Metrics)]++
	}
	best := sig(cleaned[nodes[0]].Metrics)
	for _, node := range nodes {
		if s := sig(cleaned[node].Metrics); count[s] > count[best] {
			best = s
		}
	}
	kept := nodes[:0]
	skipped := 0
	for _, node := range nodes {
		if sig(cleaned[node].Metrics) == best {
			kept = append(kept, node)
		} else {
			delete(cleaned, node)
			skipped++
		}
	}
	return kept, skipped
}

// NumClusters returns the size of the model library.
func (d *Detector) NumClusters() int { return len(d.library) }

// ReducedMetricNames returns the names of the metrics surviving reduction.
func (d *Detector) ReducedMetricNames() []string { return d.red.OutputNames() }
