package core

import (
	"testing"

	"nodesentry/internal/obs"
)

// TestTrainStageTracing asserts that the offline pipeline emits one span
// per stage in pipeline order, with sane item counts, and that tracing is
// observation only: the trained detector serializes byte-identically with
// and without a tracer attached.
func TestTrainStageTracing(t *testing.T) {
	fx := fixture(t)
	opts := fastOptions()
	opts.Epochs = 2

	in := fx.in
	reg := obs.NewRegistry()
	in.Trace = obs.NewTracer(reg)
	traced, err := Train(in, opts)
	if err != nil {
		t.Fatalf("traced Train: %v", err)
	}
	plain, err := Train(fx.in, opts)
	if err != nil {
		t.Fatalf("plain Train: %v", err)
	}

	recs := in.Trace.Records()
	wantOrder := []string{"preprocess", "segmentation", "features", "hac", "train_models"}
	if len(recs) != len(wantOrder) {
		t.Fatalf("spans = %d (%v), want %d", len(recs), recs, len(wantOrder))
	}
	for i, rec := range recs {
		if rec.Stage != wantOrder[i] {
			t.Errorf("span %d = %q, want %q", i, rec.Stage, wantOrder[i])
		}
		if rec.WallNanos <= 0 {
			t.Errorf("span %q has no wall time", rec.Stage)
		}
	}
	byStage := map[string]obs.StageRecord{}
	for _, rec := range recs {
		byStage[rec.Stage] = rec
	}
	if got := byStage["segmentation"].Items; got != int64(traced.Stats.Segments) {
		t.Errorf("segmentation items = %d, want %d segments", got, traced.Stats.Segments)
	}
	if got := byStage["hac"].Items; got != int64(traced.Stats.Clusters) {
		t.Errorf("hac items = %d, want %d clusters", got, traced.Stats.Clusters)
	}
	if got := byStage["train_models"].Items; got != int64(traced.Stats.Clusters) {
		t.Errorf("train_models items = %d, want %d clusters", got, traced.Stats.Clusters)
	}
	// The tracer mirrored the stage series into the registry.
	if got := reg.Counter("nodesentry_stage_items_total", "stage", "segmentation").Value(); got != int64(traced.Stats.Segments) {
		t.Errorf("registry stage items = %d, want %d", got, traced.Stats.Segments)
	}

	// Tracing must be observation only. Gob bytes are not a usable
	// witness (map encoding order is nondeterministic), so compare what
	// matters: identical detection output on the test split, score for
	// score.
	if traced.Stats.Segments != plain.Stats.Segments || traced.Stats.Clusters != plain.Stats.Clusters {
		t.Fatalf("tracing changed training: %+v vs %+v", traced.Stats, plain.Stats)
	}
	for _, node := range fx.ds.Nodes() {
		frame := fx.ds.TestFrames()[node]
		spans := fx.ds.SpansForNode(node, fx.ds.SplitTime(), fx.ds.Horizon)
		a := traced.Detect(frame, spans)
		b := plain.Detect(frame, spans)
		if len(a.Scores) != len(b.Scores) {
			t.Fatalf("node %s: score lengths differ", node)
		}
		for i := range a.Scores {
			if a.Scores[i] != b.Scores[i] {
				t.Fatalf("node %s: score[%d] %v != %v with tracing on", node, i, a.Scores[i], b.Scores[i])
			}
			if a.Preds[i] != b.Preds[i] {
				t.Fatalf("node %s: pred[%d] differs with tracing on", node, i)
			}
		}
	}
}
