package core

import (
	"testing"

	"nodesentry/internal/mts"
)

// TestMajorityLayout pins the heterogeneous-fleet guard the chaos soak
// exposed: a retrain buffer can carry auto-registered nodes whose metric
// layout differs from the fleet's, and indexing the shared semantic
// groups into such a frame read out of range. Training must keep the
// majority layout, drop the rest, and stay deterministic on ties.
func TestMajorityLayout(t *testing.T) {
	frame := func(metrics ...string) *mts.NodeFrame {
		data := make([][]float64, len(metrics))
		for i := range data {
			data[i] = []float64{1, 2}
		}
		return &mts.NodeFrame{Metrics: metrics, Data: data, Step: 60}
	}

	cleaned := map[string]*mts.NodeFrame{
		"cn-01": frame("cpu", "mem"),
		"cn-02": frame("cpu", "mem"),
		"cn-03": frame("cpu", "mem"),
		"probe": frame("heartbeat"),
	}
	nodes, skipped := majorityLayout(sortedNodes(cleaned), cleaned)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(nodes) != 3 {
		t.Fatalf("kept %d nodes, want 3: %v", len(nodes), nodes)
	}
	for _, n := range nodes {
		if n == "probe" {
			t.Error("divergent node survived the filter")
		}
	}
	// The divergent frame must leave the map too: the reduction step
	// ranges over cleaned, not over the returned node list.
	if _, ok := cleaned["probe"]; ok {
		t.Error("divergent frame still in cleaned")
	}

	// A tie breaks toward the layout seen first in sorted node order.
	tied := map[string]*mts.NodeFrame{
		"aa": frame("cpu"),
		"bb": frame("gpu"),
	}
	nodes, skipped = majorityLayout(sortedNodes(tied), tied)
	if skipped != 1 || len(nodes) != 1 || nodes[0] != "aa" {
		t.Errorf("tiebreak kept %v (skipped %d), want [aa] skipping 1", nodes, skipped)
	}

	// A homogeneous fleet passes through untouched.
	uniform := map[string]*mts.NodeFrame{
		"cn-01": frame("cpu", "mem"),
		"cn-02": frame("cpu", "mem"),
	}
	nodes, skipped = majorityLayout(sortedNodes(uniform), uniform)
	if skipped != 0 || len(nodes) != 2 {
		t.Errorf("uniform fleet: kept %v, skipped %d, want all 2 and 0", nodes, skipped)
	}
}
