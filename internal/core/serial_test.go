package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty snapshot accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated snapshot accepted")
	}
}

func TestLoadRejectsArchitectureMismatch(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Re-encode with a perturbed architecture: decode to the wire struct,
	// shrink a model's parameter list, re-encode.
	d2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt in memory: drop a parameter from the snapshot round trip by
	// mutating the options so Load rebuilds a different architecture.
	d2.opts.Model.ModelDim *= 2
	var buf2 bytes.Buffer
	if err := d2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf2.Bytes())); err == nil {
		t.Error("architecture/parameter mismatch accepted")
	}
}

func TestLoadRejectsVersionSkew(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(snapshotMagic)] = snapshotVersion + 1
	_, err := Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("future-version snapshot accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("skew error does not mention version: %v", err)
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[0] ^= 0xFF
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Error("bad-magic snapshot accepted")
	}
}

func TestLoadRejectsBitFlips(t *testing.T) {
	// Flip single bytes at spread positions across a valid payload. Every
	// outcome must be either a clean error or a successful load — never a
	// panic (the registry depends on Load being total).
	_, d := trainFixture(t, fastOptions())
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	for pos := 0; pos < len(base); pos += 977 {
		raw := append([]byte(nil), base...)
		raw[pos] ^= 0x5A
		d2, err := Load(bytes.NewReader(raw))
		if err == nil && d2 == nil {
			t.Fatalf("flip at %d: nil detector with nil error", pos)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	fx, d := trainFixture(t, fastOptions())
	clone, err := d.Clone()
	if err != nil {
		t.Fatal(err)
	}
	node := fx.ds.Nodes()[0]
	frame := fx.ds.TestFrames()[node]
	spans := fx.ds.SpansForNode(node, fx.ds.SplitTime(), fx.ds.Horizon)
	a := d.Detect(frame, spans)
	b := clone.Detect(frame, spans)
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatal("clone diverges from original")
		}
	}
	// Mutating the clone's online params must not touch the original.
	clone.SetOnlineParams(0, 0, 99)
	if _, k := d.OnlineParams(); k == 99 {
		t.Error("clone shares options with the original")
	}
}
