package core

import (
	"context"
	"errors"
	"testing"
)

func TestTrainHonorsCancellation(t *testing.T) {
	fx := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := fx.in
	in.Ctx = ctx
	if _, err := Train(in, fastOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Train with canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestClusterAccessors(t *testing.T) {
	_, d := trainFixture(t, fastOptions())
	for c := 0; c < d.NumClusters(); c++ {
		if r := d.ClusterRadius(c); r < 0 {
			t.Errorf("cluster %d radius %v < 0", c, r)
		}
		if s := d.ClusterScale(c); s <= 0 {
			t.Errorf("cluster %d scale %v <= 0 (calibration floors it at 1)", c, s)
		}
	}
	if d.ClusterRadius(-1) != 0 || d.ClusterScale(d.NumClusters()) != 0 {
		t.Error("out-of-range accessors must return 0")
	}
}
