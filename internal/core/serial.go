package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"nodesentry/internal/cluster"
	"nodesentry/internal/mat"
	"nodesentry/internal/nn"
	"nodesentry/internal/preprocess"
)

// The wire format is a fixed magic + version header followed by a gob
// payload. The header exists so that Load can reject non-snapshot bytes and
// future-format snapshots with a precise error instead of a confusing gob
// decode failure — the model registry's corrupt-entry quarantine keys off
// these errors.
const (
	snapshotMagic   = "NSDM" // NodeSentry Detector Model
	snapshotVersion = byte(1)
)

// snapshot is the gob wire format of a Detector. Model weights are stored
// as flat parameter slices; the architecture is rebuilt from Options on
// load (§3.5: "we save the shared model for each cluster").
type snapshot struct {
	Opts      Options
	Reduction *preprocess.Reduction
	Std       *preprocess.Standardizer
	FeatMean  []float64
	FeatStd   []float64
	PCA       *cluster.PCA
	Centroids *mat.Matrix
	Models    []modelSnapshot
	Stats     TrainStats
	InputDim  int
}

type modelSnapshot struct {
	Weights []float64
	Radius  float64
	Scale   float64
	Params  [][]float64
}

// Save serializes the trained detector.
func (d *Detector) Save(w io.Writer) error {
	if _, err := w.Write(append([]byte(snapshotMagic), snapshotVersion)); err != nil {
		return fmt.Errorf("core: write snapshot header: %w", err)
	}
	snap := snapshot{
		Opts:      d.opts,
		Reduction: d.red,
		Std:       d.std,
		FeatMean:  d.featMean,
		FeatStd:   d.featStd,
		PCA:       d.pca,
		Centroids: d.centroids,
		Stats:     d.Stats,
		InputDim:  d.red.NumOutput(),
	}
	for _, cm := range d.library {
		ms := modelSnapshot{Weights: cm.weights, Radius: cm.radius, Scale: cm.scale}
		for _, p := range cm.model.Params() {
			ms.Params = append(ms.Params, append([]float64(nil), p.W.Data...))
		}
		snap.Models = append(snap.Models, ms)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Clone returns an independent deep copy of the detector, safe to use from
// a different goroutine than the original (layer caches are per instance).
// Mutable state — centroids, the model library, per-model loss weights —
// is copied; the preprocessing artifacts (reduction plan, standardizer,
// PCA basis) are shared, since nothing mutates them after training. Model
// weights go through the same rebuild path Load uses, so a clone scores
// bit-identically to a snapshot round-trip without paying the gob
// encode/decode (clones are minted per swap for the scoring pool, and the
// serialization dominated swap-heavy allocation profiles).
func (d *Detector) Clone() (*Detector, error) {
	c := &Detector{
		opts:     d.opts,
		red:      d.red,
		std:      d.std,
		featMean: append([]float64(nil), d.featMean...),
		featStd:  append([]float64(nil), d.featStd...),
		pca:      d.pca,
		Stats:    d.Stats,
	}
	if d.centroids != nil {
		c.centroids = d.centroids.Clone()
	}
	dim := d.red.NumOutput()
	for i, cm := range d.library {
		cfg := d.opts.Model
		cfg.InputDim = dim
		cfg.UseMoE = !d.opts.DenseFFN
		cfg.SegmentAwarePE = !d.opts.FlatPositionalEncoding
		cfg.Seed = d.opts.Seed + int64(i)*977
		model, err := nn.NewReconstructor(cfg)
		if err != nil {
			return nil, err
		}
		dst, src := model.Params(), cm.model.Params()
		if len(dst) != len(src) {
			return nil, fmt.Errorf("core: clone model %d has %d params, architecture wants %d",
				i, len(src), len(dst))
		}
		for j := range src {
			if len(dst[j].W.Data) != len(src[j].W.Data) {
				return nil, fmt.Errorf("core: clone model %d param %d size mismatch", i, j)
			}
			copy(dst[j].W.Data, src[j].W.Data)
		}
		c.library = append(c.library, &clusterModel{
			model:   model,
			weights: append([]float64(nil), cm.weights...),
			radius:  cm.radius,
			scale:   cm.scale,
		})
	}
	return c, nil
}

// Load deserializes a detector saved with Save. Malformed input — garbage,
// truncation, a future format version, or a payload whose stored parameters
// do not fit the architecture its options describe — returns an error; it
// never panics, even on adversarial bytes (pinned by FuzzLoadDetector).
func Load(r io.Reader) (d *Detector, err error) {
	// gob decodes into package types whose invariants (matrix dims, slice
	// lengths) arbitrary bytes can violate; downstream rebuilding would
	// panic on them. The recover converts any such escapee into an error so
	// callers (the registry's quarantine path) can handle corrupt entries
	// uniformly.
	defer func() {
		if rec := recover(); rec != nil {
			d, err = nil, fmt.Errorf("core: malformed snapshot: %v", rec)
		}
	}()

	header := make([]byte, len(snapshotMagic)+1)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("core: read snapshot header: %w", err)
	}
	if string(header[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("core: not a detector snapshot (bad magic %q)", header[:len(snapshotMagic)])
	}
	if v := header[len(snapshotMagic)]; v != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d not supported (want %d)", v, snapshotVersion)
	}

	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	if err := snap.validate(); err != nil {
		return nil, err
	}
	d = &Detector{
		opts:      snap.Opts,
		red:       snap.Reduction,
		std:       snap.Std,
		featMean:  snap.FeatMean,
		featStd:   snap.FeatStd,
		pca:       snap.PCA,
		centroids: snap.Centroids,
		Stats:     snap.Stats,
	}
	for i, ms := range snap.Models {
		cfg := snap.Opts.Model
		cfg.InputDim = snap.InputDim
		cfg.UseMoE = !snap.Opts.DenseFFN
		cfg.SegmentAwarePE = !snap.Opts.FlatPositionalEncoding
		cfg.Seed = snap.Opts.Seed + int64(i)*977
		model, err := nn.NewReconstructor(cfg)
		if err != nil {
			return nil, err
		}
		params := model.Params()
		if len(params) != len(ms.Params) {
			return nil, fmt.Errorf("core: snapshot model %d has %d params, architecture wants %d",
				i, len(ms.Params), len(params))
		}
		for j, p := range params {
			if len(p.W.Data) != len(ms.Params[j]) {
				return nil, fmt.Errorf("core: snapshot model %d param %d size mismatch", i, j)
			}
			copy(p.W.Data, ms.Params[j])
		}
		d.library = append(d.library, &clusterModel{
			model:   model,
			weights: ms.Weights,
			radius:  ms.Radius,
			scale:   ms.Scale,
		})
	}
	return d, nil
}

// validate bounds-checks the decoded wire struct before any architecture is
// rebuilt, so corrupt size fields fail with a clear error instead of an
// enormous allocation or an index panic deep in the model constructor. The
// caps are far above anything a real deployment produces.
func (s *snapshot) validate() error {
	const (
		maxModels   = 1 << 12
		maxInputDim = 1 << 16
		maxLayerDim = 1 << 14
		maxBlocks   = 1 << 8
	)
	if s.Reduction == nil {
		return fmt.Errorf("core: snapshot missing reduction plan")
	}
	if s.Std == nil {
		return fmt.Errorf("core: snapshot missing standardizer")
	}
	if s.InputDim <= 0 || s.InputDim > maxInputDim {
		return fmt.Errorf("core: snapshot input dim %d out of range", s.InputDim)
	}
	if len(s.Models) == 0 || len(s.Models) > maxModels {
		return fmt.Errorf("core: snapshot has %d models, want 1..%d", len(s.Models), maxModels)
	}
	if s.Centroids == nil || s.Centroids.Rows != len(s.Models) {
		rows := -1
		if s.Centroids != nil {
			rows = s.Centroids.Rows
		}
		return fmt.Errorf("core: snapshot has %d centroid rows for %d models", rows, len(s.Models))
	}
	if s.Centroids.Cols <= 0 || len(s.Centroids.Data) != s.Centroids.Rows*s.Centroids.Cols {
		return fmt.Errorf("core: snapshot centroid matrix is inconsistent")
	}
	m := s.Opts.Model
	if m.ModelDim <= 0 || m.ModelDim > maxLayerDim ||
		m.Hidden <= 0 || m.Hidden > maxLayerDim ||
		m.Heads <= 0 || m.Heads > maxLayerDim ||
		m.Blocks <= 0 || m.Blocks > maxBlocks ||
		m.Experts < 0 || m.Experts > maxLayerDim {
		return fmt.Errorf("core: snapshot model config out of range (dim=%d hidden=%d heads=%d blocks=%d experts=%d)",
			m.ModelDim, m.Hidden, m.Heads, m.Blocks, m.Experts)
	}
	if s.Opts.WindowLen <= 0 || s.Opts.WindowLen > maxInputDim {
		return fmt.Errorf("core: snapshot window length %d out of range", s.Opts.WindowLen)
	}
	for i, ms := range s.Models {
		if len(ms.Weights) != 0 && len(ms.Weights) != s.InputDim {
			return fmt.Errorf("core: snapshot model %d has %d loss weights for input dim %d",
				i, len(ms.Weights), s.InputDim)
		}
	}
	return nil
}
