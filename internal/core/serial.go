package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"nodesentry/internal/cluster"
	"nodesentry/internal/mat"
	"nodesentry/internal/nn"
	"nodesentry/internal/preprocess"
)

// snapshot is the gob wire format of a Detector. Model weights are stored
// as flat parameter slices; the architecture is rebuilt from Options on
// load (§3.5: "we save the shared model for each cluster").
type snapshot struct {
	Opts      Options
	Reduction *preprocess.Reduction
	Std       *preprocess.Standardizer
	FeatMean  []float64
	FeatStd   []float64
	PCA       *cluster.PCA
	Centroids *mat.Matrix
	Models    []modelSnapshot
	Stats     TrainStats
	InputDim  int
}

type modelSnapshot struct {
	Weights []float64
	Radius  float64
	Scale   float64
	Params  [][]float64
}

// Save serializes the trained detector.
func (d *Detector) Save(w io.Writer) error {
	snap := snapshot{
		Opts:      d.opts,
		Reduction: d.red,
		Std:       d.std,
		FeatMean:  d.featMean,
		FeatStd:   d.featStd,
		PCA:       d.pca,
		Centroids: d.centroids,
		Stats:     d.Stats,
		InputDim:  d.red.NumOutput(),
	}
	for _, cm := range d.library {
		ms := modelSnapshot{Weights: cm.weights, Radius: cm.radius, Scale: cm.scale}
		for _, p := range cm.model.Params() {
			ms.Params = append(ms.Params, append([]float64(nil), p.W.Data...))
		}
		snap.Models = append(snap.Models, ms)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Clone returns an independent deep copy of the detector, safe to use from
// a different goroutine than the original (layer caches are per instance).
// It round-trips through the snapshot encoding, so it is exact.
func (d *Detector) Clone() (*Detector, error) {
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		return nil, err
	}
	return Load(&buf)
}

// Load deserializes a detector saved with Save.
func Load(r io.Reader) (*Detector, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: decode snapshot: %w", err)
	}
	d := &Detector{
		opts:      snap.Opts,
		red:       snap.Reduction,
		std:       snap.Std,
		featMean:  snap.FeatMean,
		featStd:   snap.FeatStd,
		pca:       snap.PCA,
		centroids: snap.Centroids,
		Stats:     snap.Stats,
	}
	for i, ms := range snap.Models {
		cfg := snap.Opts.Model
		cfg.InputDim = snap.InputDim
		cfg.UseMoE = !snap.Opts.DenseFFN
		cfg.SegmentAwarePE = !snap.Opts.FlatPositionalEncoding
		cfg.Seed = snap.Opts.Seed + int64(i)*977
		model, err := nn.NewReconstructor(cfg)
		if err != nil {
			return nil, err
		}
		params := model.Params()
		if len(params) != len(ms.Params) {
			return nil, fmt.Errorf("core: snapshot model %d has %d params, architecture wants %d",
				i, len(ms.Params), len(params))
		}
		for j, p := range params {
			if len(p.W.Data) != len(ms.Params[j]) {
				return nil, fmt.Errorf("core: snapshot model %d param %d size mismatch", i, j)
			}
			copy(p.W.Data, ms.Params[j])
		}
		d.library = append(d.library, &clusterModel{
			model:   model,
			weights: ms.Weights,
			radius:  ms.Radius,
			scale:   ms.Scale,
		})
	}
	return d, nil
}
