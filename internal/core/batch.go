package core

import (
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/nn"
	"nodesentry/internal/preprocess"
)

// scoreScratch is the detector's grow-once buffer set for the streaming
// score path (ScoreFrame / ScoreFrameBatch / MatchPattern). The frames and
// matrices are reused across calls, so steady-state scoring stops paying
// the Clone + Reduction.Apply allocation tax of the cold Preprocess path.
// Detector methods are not concurrency-safe on one instance — the runtime
// Monitor hands out pooled clones with exclusive checkout — so plain reuse
// is sound.
type scoreScratch struct {
	raw       mts.NodeFrame
	red       mts.NodeFrame
	x         *mat.Matrix
	positions []int
	segIDs    []int
}

// growMat returns a rows×cols matrix backed by m's storage when it is big
// enough, else a fresh one. Contents are undefined.
func growMat(m *mat.Matrix, rows, cols int) *mat.Matrix {
	if m != nil && cap(m.Data) >= rows*cols {
		return &mat.Matrix{Rows: rows, Cols: cols, Data: m.Data[:rows*cols]}
	}
	return mat.New(rows, cols)
}

// preprocessInto is Preprocess with detector-owned scratch: the raw frame
// is copied into a reusable buffer (Clean repairs in place), reduced with
// Reduction.ApplyInto, and standardized. The returned frame is valid until
// the next preprocessInto call. Per-series cleaning and per-row reduction/
// standardization are order-independent, so the result is byte-identical
// to the allocating Preprocess.
func (d *Detector) preprocessInto(frame *mts.NodeFrame) *mts.NodeFrame {
	s := &d.scratch
	T := frame.Len()
	if cap(s.raw.Data) < len(frame.Data) {
		s.raw.Data = make([][]float64, len(frame.Data))
	}
	s.raw.Data = s.raw.Data[:len(frame.Data)]
	for m, row := range frame.Data {
		s.raw.Data[m] = mat.GrowFloats(s.raw.Data[m], T)
		copy(s.raw.Data[m], row)
	}
	s.raw.Node = frame.Node
	s.raw.Metrics = frame.Metrics
	s.raw.Start = frame.Start
	s.raw.Step = frame.Step
	for _, row := range s.raw.Data {
		preprocess.CleanSeries(row)
	}

	nOut := d.red.NumOutput()
	if cap(s.red.Data) < nOut {
		s.red.Data = make([][]float64, nOut)
	}
	s.red.Data = s.red.Data[:nOut]
	for i := range s.red.Data {
		s.red.Data[i] = mat.GrowFloats(s.red.Data[i], T)
	}
	if s.red.Metrics == nil {
		s.red.Metrics = d.red.OutputNames()
	}
	d.red.ApplyInto(&s.red, &s.raw)
	d.std.Apply(&s.red)
	return &s.red
}

// windowInto packs preprocessed frame rows [0, n) into scratch row i of a
// stacked window matrix, with job-aligned positions and segment id 0.
func (s *scoreScratch) windowInto(f *mts.NodeFrame, slot, n, offset int) {
	base := slot * n
	for t := 0; t < n; t++ {
		row := s.x.Row(base + t)
		for m := range f.Data {
			row[m] = f.Data[m][t]
		}
		s.positions[base+t] = offset + t
		s.segIDs[base+t] = 0
	}
}

// ScoreFrameBatch scores B equal-length raw frames against one cluster's
// model in a single stacked forward pass: the windows are concatenated
// row-wise and attention runs block-diagonally per window, so the returned
// scores are byte-identical to calling ScoreFrame per frame — at a fraction
// of the dispatch and allocation cost. offsets[i] is frame i's first-sample
// position within its job (as in ScoreFrame).
//
// Frames of unequal length, or longer than the model window, fall back to
// sequential ScoreFrame calls.
func (d *Detector) ScoreFrameBatch(frames []*mts.NodeFrame, cluster int, offsets []int) [][]float64 {
	out := make([][]float64, len(frames))
	if len(frames) == 0 {
		return out
	}
	if cluster < 0 || cluster >= len(d.library) {
		for i, f := range frames {
			out[i] = make([]float64, f.Len())
		}
		return out
	}
	W := frames[0].Len()
	stackable := W > 0 && W <= d.opts.WindowLen
	for _, f := range frames {
		if f.Len() != W {
			stackable = false
			break
		}
	}
	if !stackable || len(frames) == 1 {
		for i, f := range frames {
			out[i] = d.ScoreFrame(f, cluster, offsets[i])
		}
		return out
	}

	cm := d.library[cluster]
	inv := 1.0
	if cm.scale > 0 {
		inv = 1 / cm.scale
	}
	B := len(frames)
	dim := d.red.NumOutput()
	s := &d.scratch
	s.x = growMat(s.x, B*W, dim)
	s.positions = mat.GrowInts(s.positions, B*W)
	s.segIDs = mat.GrowInts(s.segIDs, B*W)
	for i, f := range frames {
		rf := d.preprocessInto(f)
		s.windowInto(rf, i, W, offsets[i])
	}
	pred := cm.model.ForwardWindows(s.x, W, s.positions, s.segIDs)
	scores := make([]float64, B*W)
	nn.ReconErrorsInto(scores, pred, s.x, cm.weights)
	for i := range frames {
		sub := scores[i*W : (i+1)*W]
		for t := range sub {
			sub[t] *= inv
		}
		out[i] = sub
	}
	return out
}
