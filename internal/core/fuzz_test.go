package core

import (
	"bytes"
	"testing"
)

// FuzzLoadDetector pins Load's totality: arbitrary bytes must produce
// (detector, nil) or (nil, error), never a panic or a runaway allocation.
// The registry's corrupt-entry quarantine and the lifecycle rollback path
// both lean on this. `go test` runs the seed corpus; `go test -fuzz
// FuzzLoadDetector` explores mutations.
func FuzzLoadDetector(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("not a snapshot at all"))
	f.Add([]byte(snapshotMagic))                          // header cut short
	f.Add(append([]byte(snapshotMagic), snapshotVersion)) // header, no payload
	f.Add(append([]byte(snapshotMagic), snapshotVersion+9))

	_, d := trainFixture(f, fastOptions())
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add(valid[:len(valid)-1])
	corrupted := append([]byte(nil), valid...)
	for i := len(snapshotMagic) + 1; i < len(corrupted); i += 301 {
		corrupted[i] ^= 0xA5
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Load(bytes.NewReader(data))
		if err == nil && d == nil {
			t.Fatal("nil detector with nil error")
		}
		if err != nil && d != nil {
			t.Fatal("non-nil detector with non-nil error")
		}
	})
}
