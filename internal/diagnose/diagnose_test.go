package diagnose

import (
	"strings"
	"testing"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/faults"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

// trainInputOf mirrors the public TrainInputFromDataset helper without
// importing the root package (which imports this one).
func trainInputOf(ds *dataset.Dataset) core.TrainInput {
	in := core.TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: map[string][]int{},
	}
	for sem, rows := range telemetry.SemanticIndex(ds.Catalog) {
		in.SemanticGroups[sem] = rows
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	return in
}

func trainedFixture(t *testing.T) (*dataset.Dataset, *core.Detector) {
	t.Helper()
	cfg := dataset.Tiny()
	cfg.FaultTypes = []string{string(faults.MemoryExhaustion)}
	cfg.FaultsPerNode = 2
	ds := dataset.Build(cfg)
	opts := core.DefaultOptions()
	opts.Epochs = 4
	opts.MaxWindowsPerCluster = 60
	det, err := core.Train(trainInputOf(ds), opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, det
}

func TestAlarmAttributesMemoryFault(t *testing.T) {
	ds, det := trainedFixture(t)
	if len(ds.Faults) == 0 {
		t.Skip("no faults drawn at this seed")
	}
	attributed := 0
	for _, f := range ds.Faults {
		frame := ds.TestFrames()[f.Node]
		mid := frame.IndexOf((f.Start + f.End) / 2)
		if mid >= frame.Len() {
			continue
		}
		rep := Alarm(det, frame, mid, 5)
		if len(rep.Findings) == 0 {
			t.Fatalf("no findings for fault %v", f)
		}
		if rep.Level == "Memory" {
			attributed++
		}
		if rep.Remediation == "" {
			t.Error("missing remediation")
		}
		// Findings must be sorted by deviation.
		for i := 1; i < len(rep.Findings); i++ {
			if rep.Findings[i].Deviation > rep.Findings[i-1].Deviation {
				t.Fatal("findings not sorted")
			}
		}
	}
	if attributed == 0 {
		t.Errorf("no memory-exhaustion fault attributed to the Memory level")
	}
	t.Logf("%d/%d faults attributed to Memory", attributed, len(ds.Faults))
}

func TestAlarmOutOfRange(t *testing.T) {
	ds, det := trainedFixture(t)
	frame := ds.TestFrames()[ds.Nodes()[0]]
	rep := Alarm(det, frame, -1, 3)
	if rep.Level != "Unknown" || len(rep.Findings) != 0 {
		t.Errorf("out-of-range alarm should yield unknown: %+v", rep)
	}
}

func TestReportString(t *testing.T) {
	ds, det := trainedFixture(t)
	frame := ds.TestFrames()[ds.Nodes()[0]]
	rep := Alarm(det, frame, frame.Len()/2, 3)
	s := rep.String()
	for _, want := range []string{"alarm on", "remediation:"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string missing %q:\n%s", want, s)
		}
	}
}

func TestLevelMapping(t *testing.T) {
	cases := map[string]string{
		"CPU": "CPU", "Memory": "Memory", "Filesystem": "Disk",
		"Network": "Network", "Process": "Kernel/OS", "System": "Kernel/OS",
		"???": "Unknown",
	}
	for cat, want := range cases {
		if got := levelOf(cat); got != want {
			t.Errorf("levelOf(%s) = %s, want %s", cat, got, want)
		}
	}
	for level := range remediations {
		if remediations[level] == "" {
			t.Errorf("level %s has no remediation", level)
		}
	}
}

func TestCategoryOfMetric(t *testing.T) {
	cases := map[string]string{
		"mem_used":             "Memory",
		"node_cpu_busy_total":  "CPU",
		"node_net_rx_alias0":   "Network",
		"completely_unrelated": "",
	}
	for name, want := range cases {
		if got := categoryOfMetric(name); got != want {
			t.Errorf("categoryOfMetric(%s) = %q, want %q", name, got, want)
		}
	}
}
