// Package diagnose attributes an alarm to the metrics and fault level that
// drove it, reproducing the operator-facing side of the paper's case study
// (§5.2): "because memory-related metrics showed significant declines,
// insufficient memory was identified as the cause". Given a detector and
// the raw frame, it ranks the reduced metrics by how far the sample
// deviates from the segment's typical behaviour, maps the leaders onto the
// Table 1 fault levels, and suggests the corresponding remediation.
package diagnose

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"nodesentry/internal/core"
	"nodesentry/internal/mts"
	"nodesentry/internal/stats"
	"nodesentry/internal/telemetry"
)

// Finding is one metric's contribution to an alarm.
type Finding struct {
	// Metric is the reduced metric name (the semantic for aggregated
	// groups).
	Metric string
	// Category is the Table 3 category ("CPU", "Memory", …), best-effort.
	Category string
	// Deviation is the robust z-score of the sample against the metric's
	// own frame behaviour: |x − median| / (1.4826·MAD). Normalizing by
	// MAD keeps metrics that are pure clipped noise (large spread, no
	// structure) from outranking genuinely deviating ones.
	Deviation float64
	// Direction is +1 when the metric is above its typical level, -1
	// below.
	Direction int
}

// Report is a full alarm diagnosis.
type Report struct {
	Node string
	// Time is the alarm's Unix timestamp.
	Time int64
	// Findings are ranked by deviation, largest first.
	Findings []Finding
	// Level is the dominant Table 1 fault level among the top findings.
	Level string
	// Remediation is the paper's suggested operator action for the level.
	Remediation string
}

// levelOf maps Table 3 categories onto Table 1 fault levels.
func levelOf(category string) string {
	switch category {
	case "CPU":
		return "CPU"
	case "Memory":
		return "Memory"
	case "Filesystem":
		return "Disk"
	case "Network":
		return "Network"
	case "Process", "System":
		return "Kernel/OS"
	case "GPU":
		return "GPU"
	default:
		return "Unknown"
	}
}

// remediations echoes the paper's §1: "Common remediation steps following
// detection include node isolation, task restarts, and detailed analysis
// by operators."
var remediations = map[string]string{
	"CPU":       "throttle or migrate the offending job; inspect co-scheduled tasks for contention",
	"Memory":    "checkpoint and restart the job on a larger-memory node before it is OOM-killed",
	"Disk":      "free or expand the filesystem; verify data integrity before the next write burst",
	"Network":   "isolate the node from the fabric and reroute traffic; check link counters",
	"Kernel/OS": "drain and reboot the node; collect kernel logs for analysis",
	"GPU":       "reset or cordon the device; rebalance the job across healthy accelerators",
	"Unknown":   "flag for detailed analysis by operators",
}

// Alarm diagnoses one alarm: frame is the node's raw frame, at the sample
// index of the alarm, topN how many findings to keep.
func Alarm(det *core.Detector, frame *mts.NodeFrame, at, topN int) Report {
	f := det.Preprocess(frame)
	names := det.ReducedMetricNames()
	rep := Report{Node: frame.Node, Time: f.TimeAt(at)}
	if at < 0 || at >= f.Len() {
		rep.Level = "Unknown"
		rep.Remediation = remediations["Unknown"]
		return rep
	}
	for m := range f.Data {
		med := stats.Median(f.Data[m])
		dev := f.Data[m][at] - med
		dir := 1
		if dev < 0 {
			dir = -1
		}
		rep.Findings = append(rep.Findings, Finding{
			Metric:    names[m],
			Category:  categoryOfMetric(names[m]),
			Deviation: math.Abs(dev) / (1.4826*medianAbsDev(f.Data[m], med) + 0.1),
			Direction: dir,
		})
	}
	sort.Slice(rep.Findings, func(i, j int) bool {
		return rep.Findings[i].Deviation > rep.Findings[j].Deviation
	})
	if topN > 0 && len(rep.Findings) > topN {
		rep.Findings = rep.Findings[:topN]
	}
	rep.Level = dominantLevel(rep.Findings)
	rep.Remediation = remediations[rep.Level]
	return rep
}

// medianAbsDev returns the median absolute deviation of x around med.
func medianAbsDev(x []float64, med float64) float64 {
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - med)
	}
	m := stats.Median(dev)
	if math.IsNaN(m) {
		return 0
	}
	return m
}

// categoryOfMetric resolves a reduced metric name to its Table 3 category:
// aggregated groups are named after their semantic; raw survivors carry
// Prometheus-style names we match by substring.
func categoryOfMetric(name string) string {
	if c := telemetry.CategoryOf(name); c != "" {
		return c
	}
	trimmed := strings.TrimSuffix(strings.TrimPrefix(name, "node_"), "_total")
	if c := telemetry.CategoryOf(trimmed); c != "" {
		return c
	}
	for _, sem := range telemetry.Semantics {
		if strings.Contains(name, sem) {
			return telemetry.CategoryOf(sem)
		}
	}
	return ""
}

// dominantLevel picks the fault level with the largest summed deviation
// among the findings.
func dominantLevel(findings []Finding) string {
	mass := map[string]float64{}
	for _, f := range findings {
		mass[levelOf(f.Category)] += f.Deviation
	}
	best, bestV := "Unknown", 0.0
	for l, v := range mass {
		if l != "Unknown" && v > bestV {
			best, bestV = l, v
		}
	}
	return best
}

// String renders the report for an operator console.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "alarm on %s at t=%d — likely %s-level fault\n", r.Node, r.Time, r.Level)
	for _, f := range r.Findings {
		arrow := "↑"
		if f.Direction < 0 {
			arrow = "↓"
		}
		fmt.Fprintf(&b, "  %-24s %s dev=%.2f (%s)\n", f.Metric, arrow, f.Deviation, f.Category)
	}
	fmt.Fprintf(&b, "  remediation: %s", r.Remediation)
	return b.String()
}
