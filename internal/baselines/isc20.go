package baselines

import (
	"time"

	"nodesentry/internal/cluster"
	"nodesentry/internal/core"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
)

// ISC20 is the Ozer et al. (ISC-HPC '20 workshops) baseline: fit a Bayesian
// Gaussian mixture to the fleet's metric vectors and score each test sample
// by its minimum Mahalanobis distance to a component. The variational
// Dirichlet prior is emulated by EM with component pruning (see
// cluster.FitGMM). It is by far the cheapest method to train — and, as in
// Table 4, the weakest detector, since a static Gaussian density cannot
// track job-dependent pattern changes.
type ISC20 struct {
	// Components is the initial mixture size before pruning.
	Components int
	// Seed controls k-means initialization.
	Seed int64

	pipe pipeline
	gmm  *cluster.GMM
	thr  float64
	dur  time.Duration
}

// NewISC20 returns the baseline with the configuration used in the paper's
// comparison.
func NewISC20(seed int64) *ISC20 { return &ISC20{Components: 8, Seed: seed} }

// Name implements Detector.
func (b *ISC20) Name() string { return "ISC 20" }

// Train implements Detector.
func (b *ISC20) Train(in core.TrainInput, step int64) error {
	start := time.Now()
	frames, err := b.pipe.fit(in)
	if err != nil {
		return err
	}
	vecs := sampleVectors(frames, 1024)
	X := mat.FromRows(vecs)
	b.gmm = cluster.FitGMM(X, b.Components, 25, b.Seed, 0.02)
	trainScores := make([]float64, len(vecs))
	for i, v := range vecs {
		trainScores[i] = b.gmm.MahalanobisMin(v)
	}
	b.thr = calibrateThreshold(sanitize(trainScores))
	b.dur = time.Since(start)
	return nil
}

// Detect implements Detector.
func (b *ISC20) Detect(frame *mts.NodeFrame, spans []mts.JobSpan) ([]float64, []bool) {
	f := b.pipe.apply(frame)
	scores := make([]float64, f.Len())
	for t := range scores {
		scores[t] = b.gmm.MahalanobisMin(f.Window(t))
	}
	sanitize(scores)
	return scores, applyThreshold(scores, b.thr)
}

// TrainDuration implements Detector.
func (b *ISC20) TrainDuration() time.Duration { return b.dur }
