package baselines

import (
	"math"
	"math/rand"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/nn"
)

// Prodigy is the Aksar et al. (SC '23) baseline: a variational autoencoder
// over per-sample feature vectors. Following Prodigy's
// feature-extraction-then-VAE design, each input concatenates the current
// metric vector with the rolling mean and standard deviation of a short
// trailing window, and a single fleet-wide VAE scores reconstruction error.
type Prodigy struct {
	// Hidden and Latent size the VAE.
	Hidden, Latent int
	// Window is the trailing feature window in samples.
	Window int
	// Beta weighs the KL term.
	Beta float64
	// Epochs and LR drive Adam.
	Epochs int
	LR     float64
	// Seed controls initialization and sampling.
	Seed int64

	pipe pipeline
	vae  *vae
	thr  float64
	dur  time.Duration
}

// NewProdigy returns the baseline at CPU-scale sizes.
func NewProdigy(seed int64) *Prodigy {
	return &Prodigy{Hidden: 48, Latent: 8, Window: 8, Beta: 0.1, Epochs: 6, LR: 2e-3, Seed: seed}
}

// Name implements Detector.
func (b *Prodigy) Name() string { return "Prodigy" }

// featurize builds the rolling-window feature matrix of a frame.
func (b *Prodigy) featurize(f *mts.NodeFrame) *mat.Matrix {
	d := f.NumMetrics()
	T := f.Len()
	X := mat.New(T, 3*d)
	for t := 0; t < T; t++ {
		row := X.Row(t)
		lo := t - b.Window
		if lo < 0 {
			lo = 0
		}
		n := float64(t - lo + 1)
		for m := 0; m < d; m++ {
			v := f.Data[m][t]
			row[m] = v
			mean := 0.0
			for s := lo; s <= t; s++ {
				mean += f.Data[m][s]
			}
			mean /= n
			vr := 0.0
			for s := lo; s <= t; s++ {
				dv := f.Data[m][s] - mean
				vr += dv * dv
			}
			row[d+m] = mean
			row[2*d+m] = math.Sqrt(vr / n)
		}
	}
	return X
}

// Train implements Detector.
func (b *Prodigy) Train(in core.TrainInput, step int64) error {
	start := time.Now()
	frames, err := b.pipe.fit(in)
	if err != nil {
		return err
	}
	var rows [][]float64
	for _, node := range sortedKeys(frames) {
		X := b.featurize(frames[node])
		stride := 1
		if X.Rows > 1024 {
			stride = X.Rows / 1024
		}
		for t := 0; t < X.Rows; t += stride {
			rows = append(rows, append([]float64(nil), X.Row(t)...))
		}
	}
	X := mat.FromRows(rows)
	rng := rand.New(rand.NewSource(b.Seed))
	b.vae = newVAE(X.Cols, b.Hidden, b.Latent, rng)
	b.vae.train(X, b.Epochs, b.LR, b.Beta, rng)
	out := b.vae.reconstructDeterministic(X)
	b.thr = calibrateThreshold(sanitize(nn.ReconErrors(out, X, nil)))
	b.dur = time.Since(start)
	return nil
}

// Detect implements Detector.
func (b *Prodigy) Detect(frame *mts.NodeFrame, spans []mts.JobSpan) ([]float64, []bool) {
	f := b.pipe.apply(frame)
	X := b.featurize(f)
	out := b.vae.reconstructDeterministic(X)
	scores := nn.ReconErrors(out, X, nil)
	sanitize(scores)
	return scores, applyThreshold(scores, b.thr)
}

// TrainDuration implements Detector.
func (b *Prodigy) TrainDuration() time.Duration { return b.dur }

func sortedKeys(m map[string]*mts.NodeFrame) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// vae is a diagonal-Gaussian VAE with hand-written backward through the
// reparameterization trick.
type vae struct {
	enc    *nn.Sequential
	muHead *nn.Dense
	lvHead *nn.Dense
	dec    *nn.Sequential
}

func newVAE(dim, hidden, latent int, rng *rand.Rand) *vae {
	return &vae{
		enc: &nn.Sequential{Layers: []nn.Layer{
			nn.NewDense(dim, hidden, rng), &nn.GELU{},
		}},
		muHead: nn.NewDense(hidden, latent, rng),
		lvHead: nn.NewDense(hidden, latent, rng),
		dec: &nn.Sequential{Layers: []nn.Layer{
			nn.NewDense(latent, hidden, rng), &nn.GELU{},
			nn.NewDense(hidden, dim, rng),
		}},
	}
}

func (v *vae) params() []*nn.Param {
	var out []*nn.Param
	out = append(out, v.enc.Params()...)
	out = append(out, v.muHead.Params()...)
	out = append(out, v.lvHead.Params()...)
	out = append(out, v.dec.Params()...)
	return out
}

// step runs one forward/backward on a batch and returns the total loss.
func (v *vae) step(xb *mat.Matrix, beta float64, rng *rand.Rand) float64 {
	h := v.enc.Forward(xb)
	mu := v.muHead.Forward(h)
	lv := v.lvHead.Forward(h)
	// Clamp logvar for numerical stability.
	for i, val := range lv.Data {
		if val > 6 {
			lv.Data[i] = 6
		} else if val < -6 {
			lv.Data[i] = -6
		}
	}
	eps := mat.New(mu.Rows, mu.Cols)
	z := mat.New(mu.Rows, mu.Cols)
	for i := range z.Data {
		eps.Data[i] = rng.NormFloat64()
		z.Data[i] = mu.Data[i] + math.Exp(0.5*lv.Data[i])*eps.Data[i]
	}
	out := v.dec.Forward(z)
	recLoss, dOut := nn.MSE(out, xb)
	dz := v.dec.Backward(dOut)

	n := float64(len(mu.Data))
	kl := 0.0
	dMu := mat.New(mu.Rows, mu.Cols)
	dLv := mat.New(mu.Rows, mu.Cols)
	for i := range mu.Data {
		ev := math.Exp(lv.Data[i])
		kl += 0.5 * (ev + mu.Data[i]*mu.Data[i] - 1 - lv.Data[i])
		// Reparameterization path.
		dMu.Data[i] = dz.Data[i]
		dLv.Data[i] = dz.Data[i] * eps.Data[i] * 0.5 * math.Exp(0.5*lv.Data[i])
		// KL path (mean-normalized).
		dMu.Data[i] += beta * mu.Data[i] / n
		dLv.Data[i] += beta * 0.5 * (ev - 1) / n
	}
	kl /= n
	dh := v.muHead.Backward(dMu)
	mat.AddInPlace(dh, v.lvHead.Backward(dLv))
	v.enc.Backward(dh)
	return recLoss + beta*kl
}

func (v *vae) train(X *mat.Matrix, epochs int, lr, beta float64, rng *rand.Rand) {
	opt := nn.NewAdam(v.params(), lr)
	const batch = 32
	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += batch {
			hi := lo + batch
			if hi > len(idx) {
				hi = len(idx)
			}
			xb := mat.New(hi-lo, X.Cols)
			for i := lo; i < hi; i++ {
				copy(xb.Row(i-lo), X.Row(idx[i]))
			}
			v.step(xb, beta, rng)
			nn.ClipGradients(v.params(), 5)
			opt.Step()
		}
	}
}

// reconstructDeterministic decodes from the posterior mean (eps = 0).
func (v *vae) reconstructDeterministic(X *mat.Matrix) *mat.Matrix {
	h := v.enc.Forward(X)
	mu := v.muHead.Forward(h)
	return v.dec.Forward(mu)
}
