package baselines

import (
	"math"
	"testing"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/eval"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

var fixtureCache *fixtureData

type fixtureData struct {
	ds *dataset.Dataset
	in core.TrainInput
}

func fixture(t *testing.T) *fixtureData {
	t.Helper()
	if fixtureCache != nil {
		return fixtureCache
	}
	ds := dataset.Build(dataset.Tiny())
	in := core.TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: map[string][]int{},
	}
	for sem, rows := range telemetry.SemanticIndex(ds.Catalog) {
		in.SemanticGroups[sem] = rows
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	fixtureCache = &fixtureData{ds: ds, in: in}
	return fixtureCache
}

func allBaselines() []Detector {
	return []Detector{NewISC20(1), NewExaMon(2), NewProdigy(3), NewRUAD(4)}
}

func TestAllBaselinesTrainAndDetect(t *testing.T) {
	fx := fixture(t)
	ds := fx.ds
	for _, b := range allBaselines() {
		if err := b.Train(fx.in, ds.Step); err != nil {
			t.Fatalf("%s: Train: %v", b.Name(), err)
		}
		if b.TrainDuration() <= 0 {
			t.Errorf("%s: no train duration recorded", b.Name())
		}
		var results []eval.NodeResult
		test := ds.TestFrames()
		for _, node := range ds.Nodes() {
			frame := test[node]
			spans := ds.SpansForNode(node, ds.SplitTime(), ds.Horizon)
			scores, preds := b.Detect(frame, spans)
			if len(scores) != frame.Len() || len(preds) != frame.Len() {
				t.Fatalf("%s: output misaligned on %s", b.Name(), node)
			}
			for i, s := range scores {
				if math.IsNaN(s) || math.IsInf(s, 0) {
					t.Fatalf("%s: bad score at %d: %v", b.Name(), i, s)
				}
			}
			label := ds.Labels.Mask(frame)
			ignore := eval.TransitionIgnoreMask(frame, spans, 60)
			results = append(results, eval.EvaluateNode(scores, preds, label, ignore))
		}
		s := eval.Aggregate(results)
		t.Logf("%s on tiny: P=%.3f R=%.3f AUC=%.3f F1=%.3f (train %v)",
			b.Name(), s.Precision, s.Recall, s.AUC, s.F1, b.TrainDuration())
		// Every baseline must at least beat coin-flip AUC on obvious faults.
		if !math.IsNaN(s.AUC) && s.AUC < 0.5 {
			t.Errorf("%s: AUC %.3f below random", b.Name(), s.AUC)
		}
	}
}

func TestBaselineNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, b := range allBaselines() {
		if seen[b.Name()] {
			t.Errorf("duplicate baseline name %q", b.Name())
		}
		seen[b.Name()] = true
	}
}

func TestTrainFailsOnEmptyInput(t *testing.T) {
	for _, b := range allBaselines() {
		if err := b.Train(core.TrainInput{}, 60); err == nil {
			t.Errorf("%s: empty Train should fail", b.Name())
		}
	}
}

func TestDetectUnseenNodeFallsBack(t *testing.T) {
	fx := fixture(t)
	ds := fx.ds
	for _, b := range []Detector{NewExaMon(5), NewRUAD(6)} {
		if err := b.Train(fx.in, ds.Step); err != nil {
			t.Fatal(err)
		}
		node := ds.Nodes()[0]
		frame := ds.TestFrames()[node].Clone()
		frame.Node = "unseen-node"
		scores, _ := b.Detect(frame, nil)
		if len(scores) != frame.Len() {
			t.Errorf("%s: fallback detection failed", b.Name())
		}
	}
}
