package baselines

import (
	"math/rand"
	"sort"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/nn"
)

// RUAD is the Molan et al. baseline: one LSTM reconstruction model per
// node, trained on sliding windows of that node's own history. The
// per-node deep models make it the most expensive method to train — the
// paper reports 18.94 days of offline training on D1 — while the lack of
// cross-node pattern sharing limits its accuracy under frequent job
// transitions.
type RUAD struct {
	// Hidden is the LSTM width.
	Hidden int
	// Window is the BPTT window length in samples.
	Window int
	// Epochs and LR drive Adam.
	Epochs int
	LR     float64
	// Seed controls initialization.
	Seed int64

	pipe   pipeline
	models map[string]*lstmAE
	global *lstmAE
	thr    float64
	dur    time.Duration
}

// NewRUAD returns the baseline at CPU-scale sizes.
func NewRUAD(seed int64) *RUAD {
	return &RUAD{Hidden: 24, Window: 20, Epochs: 4, LR: 3e-3, Seed: seed}
}

// Name implements Detector.
func (b *RUAD) Name() string { return "RUAD" }

// lstmAE reconstructs each window step from the LSTM hidden state.
type lstmAE struct {
	lstm *nn.LSTM
	head *nn.Dense
}

func newLSTMAE(dim, hidden int, rng *rand.Rand) *lstmAE {
	return &lstmAE{lstm: nn.NewLSTM(dim, hidden, rng), head: nn.NewDense(hidden, dim, rng)}
}

func (m *lstmAE) params() []*nn.Param {
	return append(m.lstm.Params(), m.head.Params()...)
}

func (m *lstmAE) forward(x *mat.Matrix) *mat.Matrix {
	return m.head.Forward(m.lstm.Forward(x))
}

func (m *lstmAE) backward(grad *mat.Matrix) {
	m.lstm.Backward(m.head.Backward(grad))
}

// windowsOf cuts the frame into non-overlapping token windows.
func windowsOf(f *mts.NodeFrame, winLen int) []*mat.Matrix {
	var out []*mat.Matrix
	for lo := 0; lo+winLen <= f.Len(); lo += winLen {
		w := mat.New(winLen, f.NumMetrics())
		for t := 0; t < winLen; t++ {
			copy(w.Row(t), f.Window(lo+t))
		}
		out = append(out, w)
	}
	return out
}

func (b *RUAD) trainOne(f *mts.NodeFrame, seed int64) *lstmAE {
	rng := rand.New(rand.NewSource(seed))
	model := newLSTMAE(f.NumMetrics(), b.Hidden, rng)
	opt := nn.NewAdam(model.params(), b.LR)
	wins := windowsOf(f, b.Window)
	for e := 0; e < b.Epochs; e++ {
		rng.Shuffle(len(wins), func(i, j int) { wins[i], wins[j] = wins[j], wins[i] })
		for _, w := range wins {
			out := model.forward(w)
			_, grad := nn.MSE(out, w)
			model.backward(grad)
			nn.ClipGradients(model.params(), 5)
			opt.Step()
		}
	}
	return model
}

// Train implements Detector: one LSTM per node, trained in parallel.
func (b *RUAD) Train(in core.TrainInput, step int64) error {
	start := time.Now()
	frames, err := b.pipe.fit(in)
	if err != nil {
		return err
	}
	nodes := make([]string, 0, len(frames))
	for n := range frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	models := make([]*lstmAE, len(nodes))
	mat.ParallelItems(len(nodes), func(i int) {
		models[i] = b.trainOne(frames[nodes[i]], b.Seed+int64(i))
	})
	b.models = make(map[string]*lstmAE, len(nodes))
	for i, node := range nodes {
		b.models[node] = models[i]
	}
	b.global = models[0]
	// Calibrate the static threshold on training reconstruction errors.
	var trainScores []float64
	for i, node := range nodes {
		for _, w := range windowsOf(frames[node], b.Window) {
			out := models[i].forward(w)
			trainScores = append(trainScores, nn.ReconErrors(out, w, nil)...)
		}
	}
	b.thr = calibrateThreshold(sanitize(trainScores))
	b.dur = time.Since(start)
	return nil
}

// Detect implements Detector.
func (b *RUAD) Detect(frame *mts.NodeFrame, spans []mts.JobSpan) ([]float64, []bool) {
	f := b.pipe.apply(frame)
	model, ok := b.models[f.Node]
	if !ok {
		model = b.global
	}
	scores := make([]float64, f.Len())
	lo := 0
	for ; lo+b.Window <= f.Len(); lo += b.Window {
		w := mat.New(b.Window, f.NumMetrics())
		for t := 0; t < b.Window; t++ {
			copy(w.Row(t), f.Window(lo+t))
		}
		out := model.forward(w)
		for t, e := range nn.ReconErrors(out, w, nil) {
			scores[lo+t] = e
		}
	}
	// Tail: score with a window aligned to the end.
	if lo < f.Len() && f.Len() >= b.Window {
		start := f.Len() - b.Window
		w := mat.New(b.Window, f.NumMetrics())
		for t := 0; t < b.Window; t++ {
			copy(w.Row(t), f.Window(start+t))
		}
		out := model.forward(w)
		errs := nn.ReconErrors(out, w, nil)
		for t := lo; t < f.Len(); t++ {
			scores[t] = errs[t-start]
		}
	}
	sanitize(scores)
	return scores, applyThreshold(scores, b.thr)
}

// TrainDuration implements Detector.
func (b *RUAD) TrainDuration() time.Duration { return b.dur }
