// Package baselines re-implements the four methods NodeSentry is compared
// against in Table 4, at the architecture level their papers describe:
//
//   - ISC'20 (Ozer et al.): Bayesian Gaussian mixture over metric vectors,
//     scored by Mahalanobis distance — fast to train, weakest detector;
//   - ExaMon (Borghesi et al.): one dense autoencoder per node (the
//     unsupervised component, as selected in the paper for fairness);
//   - Prodigy (Aksar et al.): a variational autoencoder over extracted
//     features of sliding windows;
//   - RUAD (Molan et al.): one LSTM reconstruction model per node.
//
// All baselines share NodeSentry's preprocessing (cleaning, reduction,
// standardization) and the k-sigma dynamic threshold, so differences in
// Table 4 come from the modeling strategy, not the plumbing — mirroring the
// paper's "we configure the parameters of all these methods" setup.
package baselines

import (
	"fmt"
	"math"
	"sort"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/mts"
	"nodesentry/internal/preprocess"
	"nodesentry/internal/stats"
)

// Detector is the common baseline interface. Implementations are not safe
// for concurrent use.
type Detector interface {
	// Name returns the method name as used in Table 4.
	Name() string
	// Train fits the method on the training split.
	Train(in core.TrainInput, step int64) error
	// Detect scores one node's test frame, returning per-sample anomaly
	// scores and thresholded decisions.
	Detect(frame *mts.NodeFrame, spans []mts.JobSpan) (scores []float64, preds []bool)
	// TrainDuration reports the offline cost of the last Train call.
	TrainDuration() time.Duration
}

// pipeline is the shared preprocessing front end: the same cleaning,
// reduction and standardization NodeSentry applies.
type pipeline struct {
	red *preprocess.Reduction
	std *preprocess.Standardizer
}

// fit builds the pipeline on training frames and returns the preprocessed
// frames keyed by node.
func (p *pipeline) fit(in core.TrainInput) (map[string]*mts.NodeFrame, error) {
	if len(in.Frames) == 0 {
		return nil, fmt.Errorf("baselines: no training frames")
	}
	nodes := make([]string, 0, len(in.Frames))
	for n := range in.Frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	cleaned := make(map[string]*mts.NodeFrame, len(in.Frames))
	for _, node := range nodes {
		f := in.Frames[node].Clone()
		preprocess.Clean(f)
		cleaned[node] = f
	}
	first := cleaned[nodes[0]]
	p.red = preprocess.PlanReduction(cleaned, first.Metrics, in.SemanticGroups, 0.99)
	reduced := make(map[string]*mts.NodeFrame, len(cleaned))
	for node, f := range cleaned {
		reduced[node] = p.red.Apply(f)
	}
	p.std = preprocess.FitStandardizer(reduced, 0.05, 5)
	for _, f := range reduced {
		p.std.Apply(f)
	}
	return reduced, nil
}

// apply preprocesses a test frame.
func (p *pipeline) apply(frame *mts.NodeFrame) *mts.NodeFrame {
	f := frame.Clone()
	preprocess.Clean(f)
	f = p.red.Apply(f)
	p.std.Apply(f)
	return f
}

// calibrateThreshold returns the static decision threshold the baseline
// papers use: a high quantile of the anomaly scores observed on (assumed
// normal) training data. Unlike NodeSentry's dynamic k-sigma rule (§3.5),
// a static threshold cannot adapt when a new job pattern inflates the
// model's baseline error — the main reason these methods lose precision
// under frequent job transitions.
func calibrateThreshold(trainScores []float64) float64 {
	return stats.Quantile(trainScores, 0.995)
}

// applyThreshold binarizes scores against the calibrated threshold.
func applyThreshold(scores []float64, thr float64) []bool {
	preds := make([]bool, len(scores))
	for i, s := range scores {
		preds[i] = s > thr
	}
	return preds
}

// sampleVectors collects every frame's per-sample metric vectors, striding
// so at most maxPerNode vectors come from each node.
func sampleVectors(frames map[string]*mts.NodeFrame, maxPerNode int) [][]float64 {
	nodes := make([]string, 0, len(frames))
	for n := range frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var out [][]float64
	for _, node := range nodes {
		f := frames[node]
		n := f.Len()
		stride := 1
		if maxPerNode > 0 && n > maxPerNode {
			stride = n / maxPerNode
		}
		for t := 0; t < n; t += stride {
			out = append(out, f.Window(t))
		}
	}
	return out
}

// sanitize replaces non-finite scores (which only arise from numerically
// degenerate inputs) with zero so thresholding and evaluation stay total.
func sanitize(scores []float64) []float64 {
	for i, s := range scores {
		if math.IsNaN(s) || math.IsInf(s, 0) {
			scores[i] = 0
		}
	}
	return scores
}
