package baselines

import (
	"math/rand"
	"sort"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/nn"
)

// ExaMon is the Borghesi et al. baseline's unsupervised component: one
// dense autoencoder per node, trained to reconstruct the node's own metric
// vectors; the per-sample reconstruction error is the anomaly score. The
// per-node training is what drives its offline cost up with fleet size
// (Characteristic 1 of the paper), and the lack of job awareness is what
// caps its accuracy.
type ExaMon struct {
	// Hidden and Bottleneck size the d→Hidden→Bottleneck→Hidden→d net.
	Hidden, Bottleneck int
	// Epochs and LR drive Adam.
	Epochs int
	LR     float64
	// Seed controls weight initialization.
	Seed int64

	pipe   pipeline
	models map[string]*nn.Sequential
	global *nn.Sequential // fallback for unseen nodes
	thr    float64
	dur    time.Duration
}

// NewExaMon returns the baseline at CPU-scale sizes.
func NewExaMon(seed int64) *ExaMon {
	return &ExaMon{Hidden: 32, Bottleneck: 8, Epochs: 6, LR: 2e-3, Seed: seed}
}

// Name implements Detector.
func (b *ExaMon) Name() string { return "ExaMon" }

func (b *ExaMon) newAE(dim int, rng *rand.Rand) *nn.Sequential {
	return &nn.Sequential{Layers: []nn.Layer{
		nn.NewDense(dim, b.Hidden, rng),
		&nn.GELU{},
		nn.NewDense(b.Hidden, b.Bottleneck, rng),
		&nn.GELU{},
		nn.NewDense(b.Bottleneck, b.Hidden, rng),
		&nn.GELU{},
		nn.NewDense(b.Hidden, dim, rng),
	}}
}

func trainAE(model *nn.Sequential, X *mat.Matrix, epochs int, lr float64, rng *rand.Rand) {
	opt := nn.NewAdam(model.Params(), lr)
	const batch = 32
	idx := make([]int, X.Rows)
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < len(idx); lo += batch {
			hi := lo + batch
			if hi > len(idx) {
				hi = len(idx)
			}
			xb := mat.New(hi-lo, X.Cols)
			for i := lo; i < hi; i++ {
				copy(xb.Row(i-lo), X.Row(idx[i]))
			}
			out := model.Forward(xb)
			_, grad := nn.MSE(out, xb)
			model.Backward(grad)
			nn.ClipGradients(model.Params(), 5)
			opt.Step()
		}
	}
}

// Train implements Detector: one autoencoder per node.
func (b *ExaMon) Train(in core.TrainInput, step int64) error {
	start := time.Now()
	frames, err := b.pipe.fit(in)
	if err != nil {
		return err
	}
	b.models = make(map[string]*nn.Sequential, len(frames))
	nodes := make([]string, 0, len(frames))
	for n := range frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var dim int
	// Independent models: train them in parallel across nodes.
	models := make([]*nn.Sequential, len(nodes))
	mat.ParallelItems(len(nodes), func(i int) {
		f := frames[nodes[i]]
		rng := rand.New(rand.NewSource(b.Seed + int64(i)))
		X := mat.FromRows(sampleVectors(map[string]*mts.NodeFrame{nodes[i]: f}, 2048))
		model := b.newAE(f.NumMetrics(), rng)
		trainAE(model, X, b.Epochs, b.LR, rng)
		models[i] = model
	})
	for i, node := range nodes {
		b.models[node] = models[i]
		dim = frames[node].NumMetrics()
	}
	// Fleet-level fallback for unseen nodes.
	rng := rand.New(rand.NewSource(b.Seed - 1))
	Xall := mat.FromRows(sampleVectors(frames, 256))
	b.global = b.newAE(dim, rng)
	trainAE(b.global, Xall, b.Epochs, b.LR, rng)
	// Calibrate the static threshold on training reconstruction errors.
	var trainScores []float64
	for _, node := range nodes {
		X := mat.FromRows(sampleVectors(map[string]*mts.NodeFrame{node: frames[node]}, 512))
		out := b.models[node].Forward(X)
		trainScores = append(trainScores, nn.ReconErrors(out, X, nil)...)
	}
	b.thr = calibrateThreshold(sanitize(trainScores))
	b.dur = time.Since(start)
	return nil
}

// Detect implements Detector.
func (b *ExaMon) Detect(frame *mts.NodeFrame, spans []mts.JobSpan) ([]float64, []bool) {
	f := b.pipe.apply(frame)
	model, ok := b.models[f.Node]
	if !ok {
		model = b.global
	}
	X := mat.New(f.Len(), f.NumMetrics())
	for t := 0; t < f.Len(); t++ {
		copy(X.Row(t), f.Window(t))
	}
	out := model.Forward(X)
	scores := nn.ReconErrors(out, X, nil)
	sanitize(scores)
	return scores, applyThreshold(scores, b.thr)
}

// TrainDuration implements Detector.
func (b *ExaMon) TrainDuration() time.Duration { return b.dur }
