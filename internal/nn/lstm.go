package nn

import (
	"math"
	"math/rand"

	"nodesentry/internal/mat"
)

// LSTM is a single-layer LSTM over a token sequence, used by the RUAD
// baseline (which trains an LSTM reconstruction model per node). Gates are
// packed [i f g o] along the columns of the parameter matrices.
type LSTM struct {
	In, Hidden int
	Wx         *Param // [In × 4H]
	Wh         *Param // [H × 4H]
	B          *Param // [1 × 4H]

	// forward caches
	x      *mat.Matrix
	gates  *mat.Matrix // [T × 4H] post-activation
	cells  *mat.Matrix // [T × H]
	hidden *mat.Matrix // [T × H]
}

// NewLSTM builds an in→hidden LSTM with Xavier-initialized weights and the
// customary forget-gate bias of 1.
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	l := &LSTM{
		In: in, Hidden: hidden,
		Wx: NewParam(in, 4*hidden),
		Wh: NewParam(hidden, 4*hidden),
		B:  NewParam(1, 4*hidden),
	}
	l.Wx.XavierInit(rng)
	l.Wh.XavierInit(rng)
	for j := hidden; j < 2*hidden; j++ {
		l.B.W.Data[j] = 1 // forget gate bias
	}
	return l
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward implements Layer: x [T×In] → hidden states [T×Hidden], starting
// from zero state.
func (l *LSTM) Forward(x *mat.Matrix) *mat.Matrix {
	T := x.Rows
	H := l.Hidden
	l.x = x
	l.gates = mat.New(T, 4*H)
	l.cells = mat.New(T, H)
	l.hidden = mat.New(T, H)

	pre := mat.Mul(x, l.Wx.W) // [T × 4H]
	hPrev := make([]float64, H)
	cPrev := make([]float64, H)
	for t := 0; t < T; t++ {
		z := pre.Row(t)
		// z += hPrev·Wh + b
		for j := 0; j < 4*H; j++ {
			s := l.B.W.Data[j]
			for k := 0; k < H; k++ {
				s += hPrev[k] * l.Wh.W.At(k, j)
			}
			z[j] += s
		}
		g := l.gates.Row(t)
		c := l.cells.Row(t)
		h := l.hidden.Row(t)
		for k := 0; k < H; k++ {
			i := sigmoid(z[k])
			f := sigmoid(z[H+k])
			gg := math.Tanh(z[2*H+k])
			o := sigmoid(z[3*H+k])
			g[k], g[H+k], g[2*H+k], g[3*H+k] = i, f, gg, o
			c[k] = f*cPrev[k] + i*gg
			h[k] = o * math.Tanh(c[k])
		}
		hPrev, cPrev = h, c
	}
	return l.hidden
}

// Backward implements Layer (full BPTT from zero initial state).
func (l *LSTM) Backward(grad *mat.Matrix) *mat.Matrix {
	T := grad.Rows
	H := l.Hidden
	dx := mat.New(T, l.In)
	dhNext := make([]float64, H)
	dcNext := make([]float64, H)
	dz := make([]float64, 4*H)
	for t := T - 1; t >= 0; t-- {
		g := l.gates.Row(t)
		c := l.cells.Row(t)
		var cPrev []float64
		if t > 0 {
			cPrev = l.cells.Row(t - 1)
		} else {
			cPrev = make([]float64, H)
		}
		dh := make([]float64, H)
		copy(dh, grad.Row(t))
		for k := 0; k < H; k++ {
			dh[k] += dhNext[k]
		}
		for k := 0; k < H; k++ {
			i, f, gg, o := g[k], g[H+k], g[2*H+k], g[3*H+k]
			tc := math.Tanh(c[k])
			do := dh[k] * tc
			dc := dh[k]*o*(1-tc*tc) + dcNext[k]
			di := dc * gg
			dg := dc * i
			df := dc * cPrev[k]
			dcNext[k] = dc * f
			dz[k] = di * i * (1 - i)
			dz[H+k] = df * f * (1 - f)
			dz[2*H+k] = dg * (1 - gg*gg)
			dz[3*H+k] = do * o * (1 - o)
		}
		// Parameter grads.
		xRow := l.x.Row(t)
		for a, xv := range xRow {
			if xv == 0 {
				continue
			}
			wrow := l.Wx.G.Row(a)
			for j := 0; j < 4*H; j++ {
				wrow[j] += xv * dz[j]
			}
		}
		if t > 0 {
			hPrev := l.hidden.Row(t - 1)
			for a, hv := range hPrev {
				if hv == 0 {
					continue
				}
				wrow := l.Wh.G.Row(a)
				for j := 0; j < 4*H; j++ {
					wrow[j] += hv * dz[j]
				}
			}
		}
		bg := l.B.G.Row(0)
		for j := 0; j < 4*H; j++ {
			bg[j] += dz[j]
		}
		// Input grads and recurrent grads.
		dxRow := dx.Row(t)
		for a := 0; a < l.In; a++ {
			s := 0.0
			wrow := l.Wx.W.Row(a)
			for j := 0; j < 4*H; j++ {
				s += wrow[j] * dz[j]
			}
			dxRow[a] = s
		}
		for k := 0; k < H; k++ {
			s := 0.0
			wrow := l.Wh.W.Row(k)
			for j := 0; j < 4*H; j++ {
				s += wrow[j] * dz[j]
			}
			dhNext[k] = s
		}
	}
	return dx
}

// Params implements Layer.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
