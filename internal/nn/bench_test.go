package nn

import (
	"math/rand"
	"testing"

	"nodesentry/internal/mat"
)

// Design-choice micro-benchmarks: the sparse MoE against the dense FFN it
// replaces (the paper's §2.2 claim that MoE keeps costs comparable while
// adding capacity), and the full reconstruction model's forward/backward.

func benchInput(rows, cols int) *mat.Matrix {
	rng := rand.New(rand.NewSource(1))
	x := mat.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func BenchmarkMoEForwardTop1(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	moe := mustMoE(b, 48, 64, 3, 1, rng)
	x := benchInput(20, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		moe.Forward(x)
	}
}

func BenchmarkMoEForwardTop2(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	moe := mustMoE(b, 48, 64, 3, 2, rng)
	x := benchInput(20, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		moe.Forward(x)
	}
}

func BenchmarkFFNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	ffn := NewFFN(48, 64, rng)
	x := benchInput(20, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ffn.Forward(x)
	}
}

func BenchmarkAttentionForward(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	attn := mustAttention(b, 48, 2, rng)
	x := benchInput(20, 48)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		attn.Forward(x)
	}
}

func BenchmarkReconstructorForward(b *testing.B) {
	r := mustReconstructor(b, ReconstructorConfig{InputDim: 19, UseMoE: true, Seed: 1})
	x := benchInput(20, 19)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Forward(x, nil, nil)
	}
}

func BenchmarkReconstructorTrainStep(b *testing.B) {
	r := mustReconstructor(b, ReconstructorConfig{InputDim: 19, UseMoE: true, Seed: 1})
	opt := NewAdam(r.Params(), 1.5e-3)
	x := benchInput(20, 19)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := r.Forward(x, nil, nil)
		_, grad := MSE(out, x)
		r.Backward(grad)
		ClipGradients(r.Params(), 5)
		opt.Step()
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	lstm := NewLSTM(19, 24, rng)
	x := benchInput(20, 19)
	grad := benchInput(20, 24)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lstm.Forward(x)
		lstm.Backward(grad)
	}
}
