package nn

import (
	"fmt"
	"math/rand"

	"nodesentry/internal/mat"
)

// Expert is one feed-forward expert of an MoE layer: Dense→GELU→Dense.
type Expert struct {
	net *Sequential
}

// NewExpert builds a dim→hidden→dim expert.
func NewExpert(dim, hidden int, rng *rand.Rand) *Expert {
	return &Expert{net: &Sequential{Layers: []Layer{
		NewDense(dim, hidden, rng),
		&GELU{},
		NewDense(hidden, dim, rng),
	}}}
}

// MoE is the sparse Mixture-of-Experts layer of §3.4: tokens are routed by
// a learned gate to the TopK experts with the highest gate probabilities,
// and the layer output is the gate-probability-weighted sum of the selected
// experts' outputs (equations (3) and (4) of the paper).
//
// An optional Switch-Transformer-style load-balancing auxiliary loss keeps
// experts from collapsing; its gradient is injected into the gate logits
// during Backward.
type MoE struct {
	NumExperts int
	TopK       int
	// AuxWeight scales the load-balancing loss (0 disables it).
	AuxWeight float64

	Gate    *Param // Wr in the paper: [dim × NumExperts]
	Experts []*Expert

	// forward caches
	x     *mat.Matrix
	probs *mat.Matrix // full softmax over experts, per token
	// Flat routing state, counting-sort style: selBuf holds each token's
	// TopK chosen experts token-major (ascending expert index per token);
	// tokBuf holds the token indices bucketed by expert, with expert e's
	// bucket at tokBuf[off[e]:off[e+1]] in ascending token order. All four
	// are grow-once buffers — no per-Forward allocation.
	selBuf []int
	tokBuf []int
	cnt    []int
	off    []int
	expOut []*mat.Matrix
	arena  *mat.Arena
	// LastAuxLoss is the load-balance loss of the latest Forward (for
	// monitoring).
	LastAuxLoss float64
}

// NewMoE builds an MoE layer with numExperts dim→hidden→dim experts and
// top-k routing.
func NewMoE(dim, hidden, numExperts, topK int, rng *rand.Rand) (*MoE, error) {
	if topK < 1 || topK > numExperts {
		return nil, fmt.Errorf("nn: MoE topK %d out of range [1, %d]", topK, numExperts)
	}
	m := &MoE{
		NumExperts: numExperts,
		TopK:       topK,
		AuxWeight:  0.01,
		Gate:       NewParam(dim, numExperts),
		// Fixed-length routing caches live for the layer's lifetime;
		// Forward only resets them.
		cnt:    make([]int, numExperts),
		off:    make([]int, numExperts+1),
		expOut: make([]*mat.Matrix, numExperts),
	}
	m.Gate.XavierInit(rng)
	for i := 0; i < numExperts; i++ {
		m.Experts = append(m.Experts, NewExpert(dim, hidden, rng))
	}
	return m, nil
}

// tokens returns expert e's routed token indices from the latest Forward.
func (m *MoE) tokens(e int) []int { return m.tokBuf[m.off[e]:m.off[e+1]] }

// Forward implements Layer.
//
//perf:hot
func (m *MoE) Forward(x *mat.Matrix) *mat.Matrix {
	m.x = x
	logits := alloc(m.arena, x.Rows, m.NumExperts)
	mat.MulInto(logits, x, m.Gate.W)
	m.probs = alloc(m.arena, x.Rows, m.NumExperts)
	SoftmaxRowsInto(m.probs, logits)
	T := x.Rows
	K := m.TopK

	// Routing pass 1: pick each token's TopK experts and count bucket
	// sizes. Pass 2 buckets token ids by expert; iterating tokens in
	// order keeps each bucket ascending, matching a per-expert append.
	m.selBuf = mat.GrowInts(m.selBuf, T*K)
	m.tokBuf = mat.GrowInts(m.tokBuf, T*K)
	for e := range m.cnt {
		m.cnt[e] = 0
	}
	for t := 0; t < T; t++ {
		sel := m.selBuf[t*K : (t+1)*K]
		topKFixed(sel, m.probs.Row(t))
		for _, e := range sel {
			m.cnt[e]++
		}
	}
	m.off[0] = 0
	for e := 0; e < m.NumExperts; e++ {
		m.off[e+1] = m.off[e] + m.cnt[e]
	}
	for e := range m.cnt {
		m.cnt[e] = 0
	}
	for t := 0; t < T; t++ {
		for _, e := range m.selBuf[t*K : (t+1)*K] {
			m.tokBuf[m.off[e]+m.cnt[e]] = t
			m.cnt[e]++
		}
	}

	// Run each expert on its routed tokens.
	out := alloc(m.arena, T, x.Cols)
	for e := 0; e < m.NumExperts; e++ {
		tokens := m.tokens(e)
		if len(tokens) == 0 {
			m.expOut[e] = nil
			continue
		}
		sub := alloc(m.arena, len(tokens), x.Cols)
		for i, r := range tokens {
			copy(sub.Row(i), x.Row(r))
		}
		m.expOut[e] = m.Experts[e].net.Forward(sub)
	}
	// Weighted scatter: y_t = Σ_{e ∈ sel(t)} p_te * E_e(x_t).
	for e := 0; e < m.NumExperts; e++ {
		for row, t := range m.tokens(e) {
			p := m.probs.At(t, e)
			src := m.expOut[e].Row(row)
			dst := out.Row(t)
			for j, v := range src {
				dst[j] += p * v
			}
		}
	}

	// Load-balance loss: N * Σ_e f_e * P_e (Switch Transformer eq. 4).
	if m.NumExperts > 1 {
		aux := 0.0
		for e := 0; e < m.NumExperts; e++ {
			f := float64(m.cnt[e]) / float64(T*m.TopK)
			P := 0.0
			for t := 0; t < T; t++ {
				P += m.probs.At(t, e)
			}
			P /= float64(T)
			aux += f * P
		}
		m.LastAuxLoss = aux * float64(m.NumExperts)
	} else {
		m.LastAuxLoss = 0
	}
	return out
}

// Backward implements Layer.
//
// A caveat shared with every expert-caching MoE implementation: each expert
// layer caches a single forward, so Backward must follow its Forward
// one-to-one, which Sequential training loops guarantee.
func (m *MoE) Backward(grad *mat.Matrix) *mat.Matrix {
	T := grad.Rows
	dx := alloc(m.arena, T, m.x.Cols)
	dProbs := alloc(m.arena, T, m.NumExperts)

	// Through each expert: dE_out = p * dy (gathered per expert), then
	// expert backward gives the per-token input gradient, scattered back
	// with weight p. dp = dy · E(x).
	for e := 0; e < m.NumExperts; e++ {
		tokens := m.tokens(e)
		if len(tokens) == 0 {
			continue
		}
		dOut := alloc(m.arena, len(tokens), grad.Cols)
		for row, t := range tokens {
			p := m.probs.At(t, e)
			g := grad.Row(t)
			eo := m.expOut[e].Row(row)
			d := dOut.Row(row)
			for j := range g {
				d[j] = p * g[j]
				// dp accumulates dy·E(x) for the gate.
			}
			dProbs.Set(t, e, mat.Dot(g, eo))
		}
		dIn := m.Experts[e].net.Backward(dOut)
		for row, t := range tokens {
			src := dIn.Row(row)
			dst := dx.Row(t)
			for j, v := range src {
				dst[j] += v
			}
		}
	}

	// Load-balance gradient: d(aux)/d p_te = N * f_e / T  (f treated as
	// constant: the argmax is not differentiable).
	if m.AuxWeight > 0 && m.NumExperts > 1 {
		for e := 0; e < m.NumExperts; e++ {
			f := float64(m.cnt[e]) / float64(T*m.TopK)
			g := m.AuxWeight * float64(m.NumExperts) * f / float64(T)
			for t := 0; t < T; t++ {
				dProbs.Set(t, e, dProbs.At(t, e)+g)
			}
		}
	}

	// Through the softmax gate.
	dLogits := alloc(m.arena, T, m.NumExperts)
	for t := 0; t < T; t++ {
		SoftmaxBackwardRow(dLogits.Row(t), m.probs.Row(t), dProbs.Row(t))
	}
	gg := alloc(m.arena, m.Gate.G.Rows, m.Gate.G.Cols)
	mat.TMulInto(gg, m.x, dLogits)
	mat.AddInPlace(m.Gate.G, gg)
	dxg := alloc(m.arena, T, m.x.Cols)
	mat.MulTInto(dxg, dLogits, m.Gate.W)
	mat.AddInPlace(dx, dxg)
	return dx
}

// Params implements Layer.
func (m *MoE) Params() []*Param {
	out := []*Param{m.Gate}
	for _, e := range m.Experts {
		out = append(out, e.net.Params()...)
	}
	return out
}

// ExpertLoad returns, for the latest Forward, the number of tokens routed
// to each expert — the observable behind the paper's claim that experts
// specialize on sub-patterns.
func (m *MoE) ExpertLoad() []int {
	out := make([]int, m.NumExperts)
	copy(out, m.cnt)
	return out
}

// topKFixed writes the indices of the len(dst) highest-probability experts
// into dst in ascending index order. Selection is a repeated scan with ties
// broken toward the lower index — expert counts are tiny, and the fixed
// destination means routing allocates nothing.
func topKFixed(dst []int, p []float64) {
	for n := range dst {
		best := -1
		for i, v := range p {
			taken := false
			for _, c := range dst[:n] {
				if c == i {
					taken = true
					break
				}
			}
			if taken {
				continue
			}
			if best < 0 || v > p[best] {
				best = i
			}
		}
		dst[n] = best
	}
	// Insertion sort: k is the paper's top-k (1 or 2), already near-sorted.
	for i := 1; i < len(dst); i++ {
		for j := i; j > 0 && dst[j] < dst[j-1]; j-- {
			dst[j], dst[j-1] = dst[j-1], dst[j]
		}
	}
}

// FFN is the dense feed-forward block (Dense→GELU→Dense) used by ablation
// C5, which replaces the sparse MoE layer with a dense FFN.
type FFN struct {
	net *Sequential
}

// NewFFN builds a dim→hidden→dim feed-forward block.
func NewFFN(dim, hidden int, rng *rand.Rand) *FFN {
	return &FFN{net: &Sequential{Layers: []Layer{
		NewDense(dim, hidden, rng),
		&GELU{},
		NewDense(hidden, dim, rng),
	}}}
}

// Forward implements Layer.
//
//perf:hot
func (f *FFN) Forward(x *mat.Matrix) *mat.Matrix { return f.net.Forward(x) }

// Backward implements Layer.
func (f *FFN) Backward(grad *mat.Matrix) *mat.Matrix { return f.net.Backward(grad) }

// Params implements Layer.
func (f *FFN) Params() []*Param { return f.net.Params() }
