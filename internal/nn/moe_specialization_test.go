package nn

import (
	"math"
	"math/rand"
	"testing"

	"nodesentry/internal/mat"
)

// TestMoEExpertsSpecialize trains a small MoE reconstruction model on two
// clearly distinct sub-patterns and checks the paper's §3.4 claim: the gate
// learns to route the sub-patterns to (largely) different experts.
func TestMoEExpertsSpecialize(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dim := 4
	moe := mustMoE(t, dim, 16, 2, 1, rng)
	dec := NewDense(dim, dim, rng)
	params := append(moe.Params(), dec.Params()...)
	opt := NewAdam(params, 3e-3)

	// Sub-pattern A: high positive values; sub-pattern B: oscillating
	// negatives. Separable in input space, so a useful gate can split them.
	mkWindow := func(kind int) *mat.Matrix {
		x := mat.New(8, dim)
		for i := 0; i < 8; i++ {
			for j := 0; j < dim; j++ {
				if kind == 0 {
					x.Set(i, j, 2+0.3*rng.NormFloat64())
				} else {
					x.Set(i, j, -1+math.Sin(float64(i+j))+0.3*rng.NormFloat64())
				}
			}
		}
		return x
	}
	for step := 0; step < 400; step++ {
		x := mkWindow(step % 2)
		y := dec.Forward(moe.Forward(x))
		_, grad := MSE(y, x)
		moe.Backward(dec.Backward(grad))
		ClipGradients(params, 5)
		opt.Step()
	}

	// Measure routing purity per sub-pattern.
	routing := func(kind int) []int {
		counts := make([]int, moe.NumExperts)
		for trial := 0; trial < 10; trial++ {
			moe.Forward(mkWindow(kind))
			for e, c := range moe.ExpertLoad() {
				counts[e] += c
			}
		}
		return counts
	}
	a := routing(0)
	b := routing(1)
	domA := argmax(a)
	domB := argmax(b)
	purity := func(c []int, dom int) float64 {
		tot := 0
		for _, v := range c {
			tot += v
		}
		return float64(c[dom]) / float64(tot)
	}
	t.Logf("pattern A routing %v (dom %d, purity %.2f); pattern B routing %v (dom %d, purity %.2f)",
		a, domA, purity(a, domA), b, domB, purity(b, domB))
	if domA == domB && purity(a, domA) > 0.9 && purity(b, domB) > 0.9 {
		t.Error("both sub-patterns collapsed onto one expert: no specialization")
	}
	if purity(a, domA) < 0.6 || purity(b, domB) < 0.6 {
		t.Error("routing is not decisive for either sub-pattern")
	}
}

func argmax(xs []int) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

// TestMoEDeterministicForward guards reproducibility: same weights + input
// → same routing and output.
func TestMoEDeterministicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	moe := mustMoE(t, 3, 8, 3, 1, rng)
	x := randInput(rng, 6, 3)
	y1 := moe.Forward(x)
	l1 := append([]int(nil), moe.ExpertLoad()...)
	y2 := moe.Forward(x)
	l2 := moe.ExpertLoad()
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("MoE forward not deterministic")
		}
	}
	for e := range l1 {
		if l1[e] != l2[e] {
			t.Fatal("MoE routing not deterministic")
		}
	}
}
