// Package nn is the neural substrate of NodeSentry: a small, dependency-free
// deep-learning library with hand-written backward passes, sufficient to
// train the paper's Transformer-with-MoE reconstruction model and the
// deep-learning baselines (autoencoder, VAE, LSTM).
//
// Design:
//   - Activations are mat.Matrix values shaped [tokens × features]; a token
//     is one time step of a segment window.
//   - A Layer owns parameters and forward caches. Layers are NOT safe for
//     concurrent use; parallel training uses independent model instances
//     (NodeSentry trains one model per cluster, which parallelizes at the
//     cluster level).
//   - Backward passes accumulate into Param.G; Adam consumes and zeroes
//     the gradients.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nodesentry/internal/mat"
)

// alloc returns a rows×cols zeroed matrix from the arena when one is wired,
// falling back to a fresh allocation so layers keep working standalone
// (baselines, unit tests). Hot forward paths route every temporary through
// this helper; with an arena, steady-state Forwards allocate nothing.
func alloc(a *mat.Arena, rows, cols int) *mat.Matrix {
	if a != nil {
		return a.Get(rows, cols)
	}
	return mat.New(rows, cols)
}

// failShape panics with a formatted shape-contract violation.
func failShape(format string, args ...any) {
	//lint:ignore libpanic shape violations are programmer errors; panicking matches the mat kernel contract
	panic("nn: " + fmt.Sprintf(format, args...))
}

// Param is one trainable parameter matrix with its gradient accumulator.
type Param struct {
	W *mat.Matrix
	G *mat.Matrix
}

// NewParam allocates a zeroed parameter of the given shape.
func NewParam(rows, cols int) *Param {
	return &Param{W: mat.New(rows, cols), G: mat.New(rows, cols)}
}

// XavierInit fills the parameter with Glorot-uniform values.
func (p *Param) XavierInit(rng *rand.Rand) {
	limit := math.Sqrt(6 / float64(p.W.Rows+p.W.Cols))
	for i := range p.W.Data {
		p.W.Data[i] = (2*rng.Float64() - 1) * limit
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Layer is the unit of composition: a differentiable map between token
// matrices.
type Layer interface {
	// Forward maps x [T×in] to [T×out], caching whatever Backward needs.
	Forward(x *mat.Matrix) *mat.Matrix
	// Backward receives dL/d(output) and returns dL/d(input), adding
	// parameter gradients into Params().G. Must follow the matching
	// Forward call.
	Backward(grad *mat.Matrix) *mat.Matrix
	// Params lists the layer's trainable parameters.
	Params() []*Param
}

// SoftmaxRows applies a numerically stable softmax to each row of x,
// returning a new matrix. Hot paths use SoftmaxRowsInto with a caller-owned
// destination instead.
func SoftmaxRows(x *mat.Matrix) *mat.Matrix {
	out := mat.New(x.Rows, x.Cols)
	SoftmaxRowsInto(out, x)
	return out
}

// SoftmaxRowsInto writes the row-wise softmax of x into dst. dst may alias
// x (in-place): each row's max is read before any element is written, and
// every element is read before being overwritten.
//
//perf:hot
func SoftmaxRowsInto(dst, x *mat.Matrix) {
	if dst.Rows != x.Rows || dst.Cols != x.Cols {
		failShape("SoftmaxRowsInto destination shape %dx%d, want %dx%d", dst.Rows, dst.Cols, x.Rows, x.Cols)
	}
	for i := 0; i < x.Rows; i++ {
		softmaxInto(dst.Row(i), x.Row(i))
	}
}

func softmaxInto(dst, src []float64) {
	maxV := math.Inf(-1)
	for _, v := range src {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for j, v := range src {
		e := math.Exp(v - maxV)
		dst[j] = e
		sum += e
	}
	if sum == 0 {
		for j := range dst {
			dst[j] = 1 / float64(len(dst))
		}
		return
	}
	for j := range dst {
		dst[j] /= sum
	}
}

// SoftmaxBackwardRow computes dz for one row given y = softmax(z) and
// dy: dz_j = y_j * (dy_j - Σ_k dy_k y_k).
func SoftmaxBackwardRow(dz, y, dy []float64) {
	dot := 0.0
	for k := range y {
		dot += dy[k] * y[k]
	}
	for j := range y {
		dz[j] = y[j] * (dy[j] - dot)
	}
}

// Dense is a fully connected layer: y = xW + b.
type Dense struct {
	Weight *Param
	Bias   *Param
	x      *mat.Matrix // forward cache
	arena  *mat.Arena
}

// NewDense builds an in×out dense layer with Xavier-initialized weights.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{Weight: NewParam(in, out), Bias: NewParam(1, out)}
	d.Weight.XavierInit(rng)
	return d
}

// Forward implements Layer.
//
//perf:hot
func (d *Dense) Forward(x *mat.Matrix) *mat.Matrix {
	d.x = x
	y := alloc(d.arena, x.Rows, d.Weight.W.Cols)
	mat.MulInto(y, x, d.Weight.W)
	mat.AddRowVector(y, d.Bias.W.Row(0))
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *mat.Matrix) *mat.Matrix {
	wg := alloc(d.arena, d.Weight.G.Rows, d.Weight.G.Cols)
	mat.TMulInto(wg, d.x, grad)
	mat.AddInPlace(d.Weight.G, wg)
	bg := d.Bias.G.Row(0)
	for i := 0; i < grad.Rows; i++ {
		row := grad.Row(i)
		for j, v := range row {
			bg[j] += v
		}
	}
	dx := alloc(d.arena, grad.Rows, d.Weight.W.Rows)
	mat.MulTInto(dx, grad, d.Weight.W)
	return dx
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// GELU is the Gaussian-error linear unit activation (tanh approximation).
type GELU struct {
	x     *mat.Matrix
	arena *mat.Arena
}

const geluC = 0.7978845608028654 // sqrt(2/pi)

// Forward implements Layer.
//
//perf:hot
func (g *GELU) Forward(x *mat.Matrix) *mat.Matrix {
	g.x = x
	y := alloc(g.arena, x.Rows, x.Cols)
	for i, v := range x.Data {
		y.Data[i] = 0.5 * v * (1 + math.Tanh(geluC*(v+0.044715*v*v*v)))
	}
	return y
}

// Backward implements Layer.
func (g *GELU) Backward(grad *mat.Matrix) *mat.Matrix {
	out := alloc(g.arena, grad.Rows, grad.Cols)
	for i, v := range g.x.Data {
		u := geluC * (v + 0.044715*v*v*v)
		t := math.Tanh(u)
		du := geluC * (1 + 3*0.044715*v*v)
		d := 0.5*(1+t) + 0.5*v*(1-t*t)*du
		out.Data[i] = grad.Data[i] * d
	}
	return out
}

// Params implements Layer.
func (g *GELU) Params() []*Param { return nil }

// ReLU is the rectified linear activation.
type ReLU struct {
	x     *mat.Matrix
	arena *mat.Arena
}

// Forward implements Layer.
//
//perf:hot
func (r *ReLU) Forward(x *mat.Matrix) *mat.Matrix {
	r.x = x
	y := alloc(r.arena, x.Rows, x.Cols) // zeroed: only positives written below
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *mat.Matrix) *mat.Matrix {
	out := alloc(r.arena, grad.Rows, grad.Cols)
	for i, v := range r.x.Data {
		if v > 0 {
			out.Data[i] = grad.Data[i]
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// Forward implements Layer.
//
//perf:hot
func (s *Sequential) Forward(x *mat.Matrix) *mat.Matrix {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *mat.Matrix) *mat.Matrix {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// LayerNorm normalizes each token (row) to zero mean and unit variance,
// then applies a learned affine transform.
type LayerNorm struct {
	Gamma *Param
	Beta  *Param
	Eps   float64
	// caches
	norm   *mat.Matrix
	invStd []float64
	arena  *mat.Arena
}

// NewLayerNorm builds a layer norm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	ln := &LayerNorm{Gamma: NewParam(1, dim), Beta: NewParam(1, dim), Eps: 1e-5}
	for i := range ln.Gamma.W.Data {
		ln.Gamma.W.Data[i] = 1
	}
	return ln
}

// Forward implements Layer.
//
//perf:hot
func (ln *LayerNorm) Forward(x *mat.Matrix) *mat.Matrix {
	// norm is a forward cache read by Backward; with an arena it stays
	// valid until the model's next Forward resets the arena. invStd is a
	// grow-once buffer fully overwritten below.
	ln.norm = alloc(ln.arena, x.Rows, x.Cols)
	ln.invStd = mat.GrowFloats(ln.invStd, x.Rows)
	out := alloc(ln.arena, x.Rows, x.Cols)
	gamma := ln.Gamma.W.Row(0)
	beta := ln.Beta.W.Row(0)
	n := float64(x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= n
		varSum := 0.0
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		inv := 1 / math.Sqrt(varSum/n+ln.Eps)
		ln.invStd[i] = inv
		nrow := ln.norm.Row(i)
		orow := out.Row(i)
		for j, v := range row {
			nv := (v - mean) * inv
			nrow[j] = nv
			orow[j] = nv*gamma[j] + beta[j]
		}
	}
	return out
}

// Backward implements Layer.
func (ln *LayerNorm) Backward(grad *mat.Matrix) *mat.Matrix {
	out := alloc(ln.arena, grad.Rows, grad.Cols)
	gamma := ln.Gamma.W.Row(0)
	gg := ln.Gamma.G.Row(0)
	bg := ln.Beta.G.Row(0)
	n := float64(grad.Cols)
	for i := 0; i < grad.Rows; i++ {
		grow := grad.Row(i)
		nrow := ln.norm.Row(i)
		// Parameter grads.
		for j := range grow {
			gg[j] += grow[j] * nrow[j]
			bg[j] += grow[j]
		}
		// dxhat = grad * gamma; dx = (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)) * invStd
		var sumD, sumDX float64
		for j := range grow {
			d := grow[j] * gamma[j]
			sumD += d
			sumDX += d * nrow[j]
		}
		inv := ln.invStd[i]
		orow := out.Row(i)
		for j := range grow {
			d := grow[j] * gamma[j]
			orow[j] = (d - sumD/n - nrow[j]*sumDX/n) * inv
		}
	}
	return out
}

// Params implements Layer.
func (ln *LayerNorm) Params() []*Param { return []*Param{ln.Gamma, ln.Beta} }

// Adam is the Adam optimizer over a fixed parameter set.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	t       int
	m, v    []*mat.Matrix
	targets []*Param
}

// NewAdam builds an optimizer for the given parameters.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, targets: params}
	for _, p := range params {
		a.m = append(a.m, mat.New(p.W.Rows, p.W.Cols))
		a.v = append(a.v, mat.New(p.W.Rows, p.W.Cols))
	}
	return a
}

// Step applies one update from the accumulated gradients and zeroes them.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for k, p := range a.targets {
		m, v := a.m[k], a.v[k]
		for i, g := range p.G.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ClipGradients scales all gradients down so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, g := range p.G.Data {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.G.Data {
				p.G.Data[i] *= scale
			}
		}
	}
	return norm
}
