package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nodesentry/internal/mat"
)

// MultiHeadAttention is standard multi-head self-attention over a token
// sequence: softmax(QKᵀ/√dk)V per head, heads concatenated and projected.
// The model dimension must be divisible by the head count.
//
// When blockLen is set to a divisor of the token count, attention is
// block-diagonal: tokens only attend within their own blockLen-sized block.
// That is what makes batched window scoring byte-identical to scoring the
// windows one at a time — each window is one block, and every other kernel
// in the model is already per-row.
type MultiHeadAttention struct {
	Heads int
	Dim   int // model dimension
	dk    int

	Wq, Wk, Wv, Wo *Param

	// blockLen > 0 restricts attention to blockLen×blockLen diagonal
	// blocks. 0 (or the full token count) means dense attention.
	blockLen int

	// forward caches
	x       *mat.Matrix
	q, k, v *mat.Matrix // [T × Dim], heads laid out contiguously
	attn    []*mat.Matrix
	concat  *mat.Matrix
	arena   *mat.Arena
}

// NewMultiHeadAttention builds an attention layer with the given model
// dimension and head count.
func NewMultiHeadAttention(dim, heads int, rng *rand.Rand) (*MultiHeadAttention, error) {
	if heads < 1 || dim%heads != 0 {
		return nil, fmt.Errorf("nn: attention dim %d must be divisible by heads %d", dim, heads)
	}
	a := &MultiHeadAttention{
		Heads: heads, Dim: dim, dk: dim / heads,
		Wq: NewParam(dim, dim), Wk: NewParam(dim, dim),
		Wv: NewParam(dim, dim), Wo: NewParam(dim, dim),
		// The per-head cache has a fixed length; allocating it here keeps
		// Forward allocation-free at the slice level.
		attn: make([]*mat.Matrix, heads),
	}
	for _, p := range []*Param{a.Wq, a.Wk, a.Wv, a.Wo} {
		p.XavierInit(rng)
	}
	return a, nil
}

// headViewInto copies the [T × dk] sub-matrix of m holding head h into dst.
func (a *MultiHeadAttention) headViewInto(dst, m *mat.Matrix, h int) {
	for i := 0; i < m.Rows; i++ {
		copy(dst.Row(i), m.Row(i)[h*a.dk:(h+1)*a.dk])
	}
}

// scatterHead writes src into head h's columns of dst, starting at row
// rowOff; add accumulates instead of copying.
func (a *MultiHeadAttention) scatterHead(dst *mat.Matrix, src *mat.Matrix, h, rowOff int, add bool) {
	for i := 0; i < src.Rows; i++ {
		d := dst.Row(rowOff + i)[h*a.dk : (h+1)*a.dk]
		s := src.Row(i)
		if add {
			for j := range d {
				d[j] += s[j]
			}
		} else {
			copy(d, s)
		}
	}
}

// Forward implements Layer.
//
//perf:hot
func (a *MultiHeadAttention) Forward(x *mat.Matrix) *mat.Matrix {
	a.x = x
	T := x.Rows
	a.q = alloc(a.arena, T, a.Dim)
	mat.MulInto(a.q, x, a.Wq.W)
	a.k = alloc(a.arena, T, a.Dim)
	mat.MulInto(a.k, x, a.Wk.W)
	a.v = alloc(a.arena, T, a.Dim)
	mat.MulInto(a.v, x, a.Wv.W)
	a.concat = alloc(a.arena, T, a.Dim)
	bl := a.blockLen
	if bl <= 0 || bl > T {
		bl = T
	}
	if bl == 0 {
		bl = 1 // empty input: zero blocks below
	}
	if T%bl != 0 {
		failShape("attention: %d tokens not a multiple of block length %d", T, bl)
	}
	nb := T / bl
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		qh := alloc(a.arena, T, a.dk)
		a.headViewInto(qh, a.q, h)
		kh := alloc(a.arena, T, a.dk)
		a.headViewInto(kh, a.k, h)
		vh := alloc(a.arena, T, a.dk)
		a.headViewInto(vh, a.v, h)
		if nb == 1 {
			scores := alloc(a.arena, T, T)
			mat.MulTInto(scores, qh, kh)
			mat.Scale(scores, scale)
			SoftmaxRowsInto(scores, scores)
			a.attn[h] = scores
			out := alloc(a.arena, T, a.dk)
			mat.MulInto(out, scores, vh)
			a.scatterHead(a.concat, out, h, 0, false)
			continue
		}
		// Block-diagonal: each window attends only to itself. The attn
		// cache is not kept — Backward after a batched forward is a
		// programming error (batching is inference-only).
		a.attn[h] = nil
		for bi := 0; bi < nb; bi++ {
			qb := qh.RowsView(bi*bl, (bi+1)*bl)
			kb := kh.RowsView(bi*bl, (bi+1)*bl)
			vb := vh.RowsView(bi*bl, (bi+1)*bl)
			scores := alloc(a.arena, bl, bl)
			mat.MulTInto(scores, &qb, &kb)
			mat.Scale(scores, scale)
			SoftmaxRowsInto(scores, scores)
			ob := alloc(a.arena, bl, a.dk)
			mat.MulInto(ob, scores, &vb)
			a.scatterHead(a.concat, ob, h, bi*bl, false)
		}
	}
	y := alloc(a.arena, T, a.Dim)
	mat.MulInto(y, a.concat, a.Wo.W)
	return y
}

// Backward implements Layer.
func (a *MultiHeadAttention) Backward(grad *mat.Matrix) *mat.Matrix {
	// Output projection.
	wog := alloc(a.arena, a.Wo.G.Rows, a.Wo.G.Cols)
	mat.TMulInto(wog, a.concat, grad)
	mat.AddInPlace(a.Wo.G, wog)
	dConcat := alloc(a.arena, grad.Rows, a.Dim)
	mat.MulTInto(dConcat, grad, a.Wo.W)

	T := a.q.Rows
	dq := alloc(a.arena, T, a.Dim)
	dk := alloc(a.arena, T, a.Dim)
	dv := alloc(a.arena, T, a.Dim)
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		attn := a.attn[h]
		if attn == nil {
			failShape("attention Backward after a block-diagonal (batched) Forward")
		}
		dOut := alloc(a.arena, T, a.dk)
		a.headViewInto(dOut, dConcat, h)
		qh := alloc(a.arena, T, a.dk)
		a.headViewInto(qh, a.q, h)
		kh := alloc(a.arena, T, a.dk)
		a.headViewInto(kh, a.k, h)
		vh := alloc(a.arena, T, a.dk)
		a.headViewInto(vh, a.v, h)

		dAttn := alloc(a.arena, T, T)
		mat.MulTInto(dAttn, dOut, vh) // [T×T]
		dVh := alloc(a.arena, T, a.dk)
		mat.TMulInto(dVh, attn, dOut) // [T×dk]
		dScores := alloc(a.arena, attn.Rows, attn.Cols)
		for i := 0; i < attn.Rows; i++ {
			SoftmaxBackwardRow(dScores.Row(i), attn.Row(i), dAttn.Row(i))
		}
		mat.Scale(dScores, scale)
		dQh := alloc(a.arena, T, a.dk)
		mat.MulInto(dQh, dScores, kh) // [T×dk]
		dKh := alloc(a.arena, T, a.dk)
		mat.TMulInto(dKh, dScores, qh) // [T×dk]

		a.scatterHead(dq, dQh, h, 0, true)
		a.scatterHead(dk, dKh, h, 0, true)
		a.scatterHead(dv, dVh, h, 0, true)
	}
	for _, wp := range [3]struct {
		p *Param
		d *mat.Matrix
	}{{a.Wq, dq}, {a.Wk, dk}, {a.Wv, dv}} {
		g := alloc(a.arena, wp.p.G.Rows, wp.p.G.Cols)
		mat.TMulInto(g, a.x, wp.d)
		mat.AddInPlace(wp.p.G, g)
	}

	dx := alloc(a.arena, T, a.Dim)
	mat.MulTInto(dx, dq, a.Wq.W)
	tmp := alloc(a.arena, T, a.Dim)
	mat.MulTInto(tmp, dk, a.Wk.W)
	mat.AddInPlace(dx, tmp)
	mat.MulTInto(tmp, dv, a.Wv.W)
	mat.AddInPlace(dx, tmp)
	return dx
}

// Params implements Layer.
func (a *MultiHeadAttention) Params() []*Param {
	return []*Param{a.Wq, a.Wk, a.Wv, a.Wo}
}
