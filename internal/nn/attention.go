package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nodesentry/internal/mat"
)

// MultiHeadAttention is standard multi-head self-attention over a token
// sequence: softmax(QKᵀ/√dk)V per head, heads concatenated and projected.
// The model dimension must be divisible by the head count.
type MultiHeadAttention struct {
	Heads int
	Dim   int // model dimension
	dk    int

	Wq, Wk, Wv, Wo *Param

	// forward caches
	x       *mat.Matrix
	q, k, v *mat.Matrix // [T × Dim], heads laid out contiguously
	attn    []*mat.Matrix
	concat  *mat.Matrix
}

// NewMultiHeadAttention builds an attention layer with the given model
// dimension and head count.
func NewMultiHeadAttention(dim, heads int, rng *rand.Rand) (*MultiHeadAttention, error) {
	if heads < 1 || dim%heads != 0 {
		return nil, fmt.Errorf("nn: attention dim %d must be divisible by heads %d", dim, heads)
	}
	a := &MultiHeadAttention{
		Heads: heads, Dim: dim, dk: dim / heads,
		Wq: NewParam(dim, dim), Wk: NewParam(dim, dim),
		Wv: NewParam(dim, dim), Wo: NewParam(dim, dim),
		// The per-head cache has a fixed length; allocating it here keeps
		// Forward allocation-free at the slice level.
		attn: make([]*mat.Matrix, heads),
	}
	for _, p := range []*Param{a.Wq, a.Wk, a.Wv, a.Wo} {
		p.XavierInit(rng)
	}
	return a, nil
}

// headView returns the [T × dk] sub-matrix of m holding head h.
func (a *MultiHeadAttention) headView(m *mat.Matrix, h int) *mat.Matrix {
	out := mat.New(m.Rows, a.dk)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i)[h*a.dk:(h+1)*a.dk])
	}
	return out
}

func (a *MultiHeadAttention) scatterHead(dst *mat.Matrix, src *mat.Matrix, h int, add bool) {
	for i := 0; i < dst.Rows; i++ {
		d := dst.Row(i)[h*a.dk : (h+1)*a.dk]
		s := src.Row(i)
		if add {
			for j := range d {
				d[j] += s[j]
			}
		} else {
			copy(d, s)
		}
	}
}

// Forward implements Layer.
//
//perf:hot
func (a *MultiHeadAttention) Forward(x *mat.Matrix) *mat.Matrix {
	a.x = x
	a.q = mat.Mul(x, a.Wq.W)
	a.k = mat.Mul(x, a.Wk.W)
	a.v = mat.Mul(x, a.Wv.W)
	a.concat = mat.New(x.Rows, a.Dim)
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		qh := a.headView(a.q, h)
		kh := a.headView(a.k, h)
		vh := a.headView(a.v, h)
		scores := mat.Scale(mat.MulT(qh, kh), scale)
		attn := SoftmaxRows(scores)
		a.attn[h] = attn
		out := mat.Mul(attn, vh)
		a.scatterHead(a.concat, out, h, false)
	}
	return mat.Mul(a.concat, a.Wo.W)
}

// Backward implements Layer.
func (a *MultiHeadAttention) Backward(grad *mat.Matrix) *mat.Matrix {
	// Output projection.
	mat.AddInPlace(a.Wo.G, mat.TMul(a.concat, grad))
	dConcat := mat.MulT(grad, a.Wo.W)

	dq := mat.New(a.q.Rows, a.Dim)
	dk := mat.New(a.k.Rows, a.Dim)
	dv := mat.New(a.v.Rows, a.Dim)
	scale := 1 / math.Sqrt(float64(a.dk))
	for h := 0; h < a.Heads; h++ {
		dOut := a.headView(dConcat, h)
		qh := a.headView(a.q, h)
		kh := a.headView(a.k, h)
		vh := a.headView(a.v, h)
		attn := a.attn[h]

		dAttn := mat.MulT(dOut, vh) // [T×T]
		dVh := mat.TMul(attn, dOut) // [T×dk]
		dScores := mat.New(attn.Rows, attn.Cols)
		for i := 0; i < attn.Rows; i++ {
			SoftmaxBackwardRow(dScores.Row(i), attn.Row(i), dAttn.Row(i))
		}
		mat.Scale(dScores, scale)
		dQh := mat.Mul(dScores, kh)  // [T×dk]
		dKh := mat.TMul(dScores, qh) // [T×dk]

		a.scatterHead(dq, dQh, h, true)
		a.scatterHead(dk, dKh, h, true)
		a.scatterHead(dv, dVh, h, true)
	}
	mat.AddInPlace(a.Wq.G, mat.TMul(a.x, dq))
	mat.AddInPlace(a.Wk.G, mat.TMul(a.x, dk))
	mat.AddInPlace(a.Wv.G, mat.TMul(a.x, dv))

	dx := mat.MulT(dq, a.Wq.W)
	mat.AddInPlace(dx, mat.MulT(dk, a.Wk.W))
	mat.AddInPlace(dx, mat.MulT(dv, a.Wv.W))
	return dx
}

// Params implements Layer.
func (a *MultiHeadAttention) Params() []*Param {
	return []*Param{a.Wq, a.Wk, a.Wv, a.Wo}
}
