package nn

import (
	"math"
	"math/rand"

	"nodesentry/internal/mat"
)

// PositionalEncoding adds the sinusoidal position signal of the input
// tokens, enhanced — as §3.4 describes — with a *segment* component so the
// model can distinguish positions within a segment from positions across
// the K segments concatenated into one training stream. Ablation C4
// disables the segment component.
type PositionalEncoding struct {
	Dim int
	// SegmentAware enables the inter-segment encoding component.
	SegmentAware bool
}

// Apply adds the encoding in place to x, where positions[i] is token i's
// offset within its segment and segIDs[i] is the index of the segment the
// token belongs to. positions/segIDs may be nil, meaning 0..T-1 and all-0.
func (pe *PositionalEncoding) Apply(x *mat.Matrix, positions, segIDs []int) {
	for t := 0; t < x.Rows; t++ {
		pos := t
		if positions != nil {
			pos = positions[t]
		}
		seg := 0
		if segIDs != nil {
			seg = segIDs[t]
		}
		row := x.Row(t)
		for j := 0; j < pe.Dim; j += 2 {
			freq := math.Pow(10000, -float64(j)/float64(pe.Dim))
			row[j] += math.Sin(float64(pos) * freq)
			if j+1 < pe.Dim {
				row[j+1] += math.Cos(float64(pos) * freq)
			}
		}
		if pe.SegmentAware && seg != 0 {
			// Offset the whole token by a segment-dependent sinusoid with a
			// distinct base so within- and between-segment positions are
			// separable.
			for j := 0; j < pe.Dim; j += 2 {
				freq := math.Pow(777, -float64(j)/float64(pe.Dim))
				row[j] += 0.5 * math.Sin(float64(seg)*freq)
				if j+1 < pe.Dim {
					row[j+1] += 0.5 * math.Cos(float64(seg)*freq)
				}
			}
		}
	}
}

// EncoderBlock is one pre-norm Transformer encoder block whose
// feed-forward sub-layer is either a sparse MoE (the NodeSentry design) or
// a dense FFN (ablation C5).
type EncoderBlock struct {
	ln1  *LayerNorm
	attn *MultiHeadAttention
	ln2  *LayerNorm
	ff   Layer // *MoE or *FFN

	// caches for the residual adds
	x1    *mat.Matrix
	arena *mat.Arena
}

// NewEncoderBlock builds a block; moe selects the sparse layer.
func NewEncoderBlock(dim, heads, hidden, experts, topK int, moe bool, rng *rand.Rand) (*EncoderBlock, error) {
	attn, err := NewMultiHeadAttention(dim, heads, rng)
	if err != nil {
		return nil, err
	}
	b := &EncoderBlock{
		ln1:  NewLayerNorm(dim),
		attn: attn,
		ln2:  NewLayerNorm(dim),
	}
	if moe {
		ff, err := NewMoE(dim, hidden, experts, topK, rng)
		if err != nil {
			return nil, err
		}
		b.ff = ff
	} else {
		b.ff = NewFFN(dim, hidden, rng)
	}
	return b, nil
}

// MoELayer returns the block's MoE layer, or nil in dense mode.
func (b *EncoderBlock) MoELayer() *MoE {
	if m, ok := b.ff.(*MoE); ok {
		return m
	}
	return nil
}

// Forward implements Layer.
//
//perf:hot
func (b *EncoderBlock) Forward(x *mat.Matrix) *mat.Matrix {
	// x1 = x + Attn(LN(x))
	a := b.attn.Forward(b.ln1.Forward(x))
	x1 := alloc(b.arena, x.Rows, x.Cols)
	mat.AddTo(x1, x, a)
	b.x1 = x1
	// y = x1 + FF(LN(x1))
	f := b.ff.Forward(b.ln2.Forward(x1))
	y := alloc(b.arena, x.Rows, x.Cols)
	mat.AddTo(y, x1, f)
	return y
}

// Backward implements Layer.
func (b *EncoderBlock) Backward(grad *mat.Matrix) *mat.Matrix {
	// y = x1 + FF(LN2(x1))
	dx1 := alloc(b.arena, grad.Rows, grad.Cols)
	mat.CopyInto(dx1, grad)
	mat.AddInPlace(dx1, b.ln2.Backward(b.ff.Backward(grad)))
	// x1 = x + Attn(LN1(x))
	dx := alloc(b.arena, grad.Rows, grad.Cols)
	mat.CopyInto(dx, dx1)
	mat.AddInPlace(dx, b.ln1.Backward(b.attn.Backward(dx1)))
	return dx
}

// Params implements Layer.
func (b *EncoderBlock) Params() []*Param {
	var out []*Param
	out = append(out, b.ln1.Params()...)
	out = append(out, b.attn.Params()...)
	out = append(out, b.ln2.Params()...)
	out = append(out, b.ff.Params()...)
	return out
}

// ReconstructorConfig parameterizes the reconstruction model.
type ReconstructorConfig struct {
	// InputDim is the (reduced) metric count.
	InputDim int
	// ModelDim is the token embedding width.
	ModelDim int
	// Heads is the attention head count (3 in the paper's artifact).
	Heads int
	// Hidden is the expert/FFN hidden width.
	Hidden int
	// Blocks is the encoder depth (3 in the paper's artifact).
	Blocks int
	// Experts is the MoE expert count (3 in the paper).
	Experts int
	// TopK experts are combined per token (1 in the paper).
	TopK int
	// UseMoE selects sparse MoE (true) or dense FFN (ablation C5).
	UseMoE bool
	// SegmentAwarePE enables the inter-segment positional component
	// (disabled by ablation C4).
	SegmentAwarePE bool
	// Seed initializes the weights.
	Seed int64
}

// Defaults fills unset fields with the paper's artifact configuration.
func (c ReconstructorConfig) Defaults() ReconstructorConfig {
	if c.ModelDim == 0 {
		c.ModelDim = 32
	}
	if c.Heads == 0 {
		c.Heads = 2
	}
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Blocks == 0 {
		c.Blocks = 2
	}
	if c.Experts == 0 {
		c.Experts = 3
	}
	if c.TopK == 0 {
		c.TopK = 1
	}
	return c
}

// Reconstructor is the §3.4 model: tokens (metric vectors per time step)
// are embedded, positionally encoded, passed through Transformer encoder
// blocks with sparse-MoE feed-forwards, and decoded back to metric space.
// The reconstruction error is the anomaly score.
type Reconstructor struct {
	Config ReconstructorConfig
	embed  *Dense
	pe     *PositionalEncoding
	blocks []*EncoderBlock
	decode *Dense
	arena  *mat.Arena
}

// NewReconstructor builds the model.
func NewReconstructor(cfg ReconstructorConfig) (*Reconstructor, error) {
	cfg = cfg.Defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	r := &Reconstructor{
		Config: cfg,
		embed:  NewDense(cfg.InputDim, cfg.ModelDim, rng),
		pe:     &PositionalEncoding{Dim: cfg.ModelDim, SegmentAware: cfg.SegmentAwarePE},
		decode: NewDense(cfg.ModelDim, cfg.InputDim, rng),
	}
	for i := 0; i < cfg.Blocks; i++ {
		blk, err := NewEncoderBlock(
			cfg.ModelDim, cfg.Heads, cfg.Hidden, cfg.Experts, cfg.TopK, cfg.UseMoE, rng)
		if err != nil {
			return nil, err
		}
		r.blocks = append(r.blocks, blk)
	}
	r.wireArena(mat.NewArena())
	return r, nil
}

// wireArena threads one arena through every layer of the model. The arena
// is reset at the top of each Forward, so the whole model shares one
// grow-once pool; Backward's temporaries append after Forward's, keeping
// forward caches valid through the backward pass. One arena per model
// instance preserves the package's layer concurrency contract.
func (r *Reconstructor) wireArena(a *mat.Arena) {
	r.arena = a
	wireLayer(r.embed, a)
	wireLayer(r.decode, a)
	for _, b := range r.blocks {
		b.arena = a
		b.ln1.arena = a
		b.attn.arena = a
		b.ln2.arena = a
		wireLayer(b.ff, a)
	}
}

// wireLayer points a layer (recursively) at the arena.
func wireLayer(l Layer, a *mat.Arena) {
	switch v := l.(type) {
	case *Dense:
		v.arena = a
	case *GELU:
		v.arena = a
	case *ReLU:
		v.arena = a
	case *LayerNorm:
		v.arena = a
	case *MultiHeadAttention:
		v.arena = a
	case *Sequential:
		for _, c := range v.Layers {
			wireLayer(c, a)
		}
	case *MoE:
		v.arena = a
		for _, e := range v.Experts {
			wireLayer(e.net, a)
		}
	case *FFN:
		wireLayer(v.net, a)
	}
}

// Forward reconstructs the window x [T × InputDim]; positions/segIDs feed
// the (segment-aware) positional encoding and may be nil. Embeddings are
// scaled by √ModelDim (as in the original Transformer) so the positional
// signal does not drown the value signal.
//
// The returned matrix is arena-owned: it is valid until the model's next
// Forward/ForwardWindows call. Callers that retain it longer must copy.
//
//perf:hot
func (r *Reconstructor) Forward(x *mat.Matrix, positions, segIDs []int) *mat.Matrix {
	return r.ForwardWindows(x, x.Rows, positions, segIDs)
}

// ForwardWindows reconstructs a batch of equal-length windows stacked
// row-wise into x [(B·winLen) × InputDim]. Attention is restricted to
// winLen×winLen diagonal blocks, so the output is byte-identical to B
// separate Forward calls over the individual windows — every other kernel
// in the model is per-row. positions/segIDs follow the stacked layout.
// The returned matrix is arena-owned (valid until the next forward call).
//
//perf:hot
func (r *Reconstructor) ForwardWindows(x *mat.Matrix, winLen int, positions, segIDs []int) *mat.Matrix {
	if winLen <= 0 {
		winLen = x.Rows
	}
	if winLen > 0 && x.Rows%winLen != 0 {
		failShape("ForwardWindows: %d rows not a multiple of window length %d", x.Rows, winLen)
	}
	if r.arena != nil {
		r.arena.Reset()
	}
	for _, b := range r.blocks {
		b.attn.blockLen = winLen
	}
	h := r.embed.Forward(x)
	mat.Scale(h, math.Sqrt(float64(r.Config.ModelDim)))
	r.pe.Apply(h, positions, segIDs)
	for _, b := range r.blocks {
		h = b.Forward(h)
	}
	return r.decode.Forward(h)
}

// Backward propagates the reconstruction-loss gradient.
func (r *Reconstructor) Backward(grad *mat.Matrix) {
	g := r.decode.Backward(grad)
	for i := len(r.blocks) - 1; i >= 0; i-- {
		g = r.blocks[i].Backward(g)
	}
	r.embed.Backward(mat.Scale(g, math.Sqrt(float64(r.Config.ModelDim))))
}

// Params lists all trainable parameters.
func (r *Reconstructor) Params() []*Param {
	out := r.embed.Params()
	for _, b := range r.blocks {
		out = append(out, b.Params()...)
	}
	out = append(out, r.decode.Params()...)
	return out
}

// NumParams returns the total scalar parameter count.
func (r *Reconstructor) NumParams() int {
	n := 0
	for _, p := range r.Params() {
		n += len(p.W.Data)
	}
	return n
}

// ExpertLoads aggregates per-block expert loads of the latest forward pass
// (empty in dense mode).
func (r *Reconstructor) ExpertLoads() [][]int {
	var out [][]int
	for _, b := range r.blocks {
		if m := b.MoELayer(); m != nil {
			out = append(out, m.ExpertLoad())
		}
	}
	return out
}
