package nn

import (
	"math"
	"math/rand"
	"testing"

	"nodesentry/internal/mat"
)

// scalarLoss is a fixed random linear functional of the layer output used
// for finite-difference gradient checks: L = Σ out∘R.
func scalarLoss(out, r *mat.Matrix) float64 {
	s := 0.0
	for i := range out.Data {
		s += out.Data[i] * r.Data[i]
	}
	return s
}

// gradCheck verifies a layer's input and parameter gradients against
// central finite differences.
func gradCheck(t *testing.T, name string, layer Layer, in *mat.Matrix, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := layer.Forward(in)
	r := mat.New(out.Rows, out.Cols)
	for i := range r.Data {
		r.Data[i] = rng.NormFloat64()
	}
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	din := layer.Backward(r.Clone())

	const eps = 1e-5
	// Input gradient.
	for i := range in.Data {
		orig := in.Data[i]
		in.Data[i] = orig + eps
		lp := scalarLoss(layer.Forward(in), r)
		in.Data[i] = orig - eps
		lm := scalarLoss(layer.Forward(in), r)
		in.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-din.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad [%d] = %v, numeric %v", name, i, din.Data[i], num)
		}
	}
	// Parameter gradients.
	for pi, p := range layer.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := scalarLoss(layer.Forward(in), r)
			p.W.Data[i] = orig - eps
			lm := scalarLoss(layer.Forward(in), r)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-p.G.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %d grad [%d] = %v, numeric %v", name, pi, i, p.G.Data[i], num)
			}
		}
	}
}

// Constructors that validate their configuration return errors; tests treat
// any such error as fatal via these helpers.
func mustMoE(tb testing.TB, dim, hidden, numExperts, topK int, rng *rand.Rand) *MoE {
	tb.Helper()
	m, err := NewMoE(dim, hidden, numExperts, topK, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func mustAttention(tb testing.TB, dim, heads int, rng *rand.Rand) *MultiHeadAttention {
	tb.Helper()
	a, err := NewMultiHeadAttention(dim, heads, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func mustEncoderBlock(tb testing.TB, dim, heads, hidden, experts, topK int, useMoE bool, rng *rand.Rand) *EncoderBlock {
	tb.Helper()
	b, err := NewEncoderBlock(dim, heads, hidden, experts, topK, useMoE, rng)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

func mustReconstructor(tb testing.TB, cfg ReconstructorConfig) *Reconstructor {
	tb.Helper()
	r, err := NewReconstructor(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return r
}

func randInput(rng *rand.Rand, rows, cols int) *mat.Matrix {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gradCheck(t, "dense", NewDense(4, 3, rng), randInput(rng, 5, 4), 1e-6)
}

func TestGELUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gradCheck(t, "gelu", &GELU{}, randInput(rng, 4, 3), 1e-5)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := randInput(rng, 4, 3)
	// Keep inputs away from the kink.
	for i := range in.Data {
		if math.Abs(in.Data[i]) < 0.1 {
			in.Data[i] = 0.5
		}
	}
	gradCheck(t, "relu", &ReLU{}, in, 1e-6)
}

func TestLayerNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gradCheck(t, "layernorm", NewLayerNorm(6), randInput(rng, 3, 6), 1e-4)
}

func TestAttentionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gradCheck(t, "attention", mustAttention(t, 6, 2, rng), randInput(rng, 4, 6), 1e-4)
}

func TestFFNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gradCheck(t, "ffn", NewFFN(4, 8, rng), randInput(rng, 3, 4), 1e-5)
}

func TestMoEGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	moe := mustMoE(t, 4, 6, 3, 1, rng)
	moe.AuxWeight = 0 // the aux loss is not part of the checked loss
	gradCheck(t, "moe-top1", moe, randInput(rng, 5, 4), 1e-4)

	moe2 := mustMoE(t, 4, 6, 3, 2, rng)
	moe2.AuxWeight = 0
	gradCheck(t, "moe-top2", moe2, randInput(rng, 5, 4), 1e-4)
}

func TestEncoderBlockGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := mustEncoderBlock(t, 4, 2, 6, 2, 1, true, rng)
	if m := b.MoELayer(); m != nil {
		m.AuxWeight = 0
	}
	gradCheck(t, "encoder-moe", b, randInput(rng, 3, 4), 2e-4)

	bd := mustEncoderBlock(t, 4, 2, 6, 0, 0, false, rng)
	gradCheck(t, "encoder-dense", bd, randInput(rng, 3, 4), 2e-4)
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	gradCheck(t, "lstm", NewLSTM(3, 4, rng), randInput(rng, 5, 3), 1e-4)
}

func TestSoftmaxRowsProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randInput(rng, 6, 5)
	y := SoftmaxRows(x)
	for i := 0; i < y.Rows; i++ {
		sum := 0.0
		for _, v := range y.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("softmax row sums to %v", sum)
		}
	}
	// Invariance to constant shift.
	shifted := x.Clone()
	for i := range shifted.Data {
		shifted.Data[i] += 1000
	}
	ys := SoftmaxRows(shifted)
	for i := range y.Data {
		if math.Abs(y.Data[i]-ys.Data[i]) > 1e-9 {
			t.Fatal("softmax not shift invariant")
		}
	}
}

func TestMoERoutingRespectsTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	moe := mustMoE(t, 4, 6, 4, 2, rng)
	x := randInput(rng, 10, 4)
	moe.Forward(x)
	for tok := 0; tok < x.Rows; tok++ {
		sel := moe.selBuf[tok*moe.TopK : (tok+1)*moe.TopK]
		seen := map[int]bool{}
		for _, e := range sel {
			if e < 0 || e >= moe.NumExperts || seen[e] {
				t.Fatalf("token %d routed to invalid/duplicate expert set %v", tok, sel)
			}
			seen[e] = true
		}
	}
	loads := moe.ExpertLoad()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != 20 {
		t.Fatalf("expert loads %v should total 20", loads)
	}
}

func TestMoEAuxLossComputed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	moe := mustMoE(t, 4, 6, 3, 1, rng)
	moe.Forward(randInput(rng, 30, 4))
	// For N experts the Switch aux loss is >= 1 with equality at perfect
	// balance; any routing yields a value in [1, N].
	if moe.LastAuxLoss < 0.99 || moe.LastAuxLoss > 3.01 {
		t.Errorf("aux loss = %v, want within [1, 3]", moe.LastAuxLoss)
	}
}

func TestTopKFixed(t *testing.T) {
	got := make([]int, 2)
	topKFixed(got, []float64{0.1, 0.5, 0.2, 0.9})
	if got[0] != 1 || got[1] != 3 {
		t.Errorf("topKFixed = %v, want [1 3]", got)
	}
	// A reused (dirty) destination is fully overwritten.
	got3 := []int{7, 7, 7}
	topKFixed(got3, []float64{0.9, 0.1, 0.2, 0.5})
	if got3[0] != 0 || got3[1] != 2 || got3[2] != 3 {
		t.Errorf("topKFixed reuse = %v, want [0 2 3]", got3)
	}
	// Ties break toward the lower expert index.
	got1 := []int{-1}
	topKFixed(got1, []float64{0.5, 0.5, 0.1})
	if got1[0] != 0 {
		t.Errorf("topKFixed tie = %v, want [0]", got1)
	}
}

func TestWMSE(t *testing.T) {
	recon := mat.FromRows([][]float64{{1, 2}, {3, 4}})
	target := mat.FromRows([][]float64{{1, 0}, {0, 4}})
	loss, grad := WMSE(recon, target, []float64{1, 2})
	// errors: (0,2),(3,0); weighted sq: 0+8, 9+0 → mean over 4 = 17/4
	if math.Abs(loss-17.0/4) > 1e-12 {
		t.Errorf("WMSE loss = %v, want 4.25", loss)
	}
	// grad[0][1] = 2*w*d/n = 2*2*2/4 = 2
	if math.Abs(grad.At(0, 1)-2) > 1e-12 {
		t.Errorf("WMSE grad = %v", grad.At(0, 1))
	}
}

func TestWMSEGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	recon := randInput(rng, 3, 4)
	target := randInput(rng, 3, 4)
	w := []float64{0.5, 1, 2, 1.5}
	_, grad := WMSE(recon, target, w)
	const eps = 1e-6
	for i := range recon.Data {
		orig := recon.Data[i]
		recon.Data[i] = orig + eps
		lp, _ := WMSE(recon, target, w)
		recon.Data[i] = orig - eps
		lm, _ := WMSE(recon, target, w)
		recon.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-grad.Data[i]) > 1e-6 {
			t.Fatalf("WMSE grad[%d] = %v, numeric %v", i, grad.Data[i], num)
		}
	}
}

func TestMACWeights(t *testing.T) {
	w := MACWeights([]float64{0.1, 1.0, 10.0})
	if w[0] < w[1] || w[1] < w[2] {
		t.Errorf("weights %v should decrease with MAC", w)
	}
	mean := (w[0] + w[1] + w[2]) / 3
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("weights mean = %v, want 1", mean)
	}
	if MACWeights(nil) != nil {
		t.Error("nil MACs should give nil weights")
	}
	// Near-zero MAC must not explode thanks to the floor.
	w2 := MACWeights([]float64{1e-12, 1})
	if math.IsInf(w2[0], 0) || w2[0] > 100 {
		t.Errorf("floored weight %v too large", w2[0])
	}
}

func TestReconErrors(t *testing.T) {
	recon := mat.FromRows([][]float64{{1, 1}, {0, 0}})
	target := mat.FromRows([][]float64{{1, 1}, {2, 0}})
	errs := ReconErrors(recon, target, nil)
	if errs[0] != 0 || errs[1] != 2 {
		t.Errorf("ReconErrors = %v, want [0 2]", errs)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||W - target||² with Adam.
	p := NewParam(3, 3)
	target := []float64{1, -2, 3, 0.5, 0, -1, 2, 2, -3}
	opt := NewAdam([]*Param{p}, 0.05)
	for step := 0; step < 2000; step++ {
		for i := range p.W.Data {
			p.G.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step()
	}
	for i := range target {
		if math.Abs(p.W.Data[i]-target[i]) > 0.01 {
			t.Fatalf("Adam did not converge: W[%d]=%v want %v", i, p.W.Data[i], target[i])
		}
	}
}

func TestClipGradients(t *testing.T) {
	p := NewParam(1, 2)
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	norm := ClipGradients([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm %v, want 5", norm)
	}
	if math.Abs(p.G.Data[0]-0.6) > 1e-12 || math.Abs(p.G.Data[1]-0.8) > 1e-12 {
		t.Errorf("clipped grads %v", p.G.Data)
	}
	// Below threshold: unchanged.
	p.G.Data[0], p.G.Data[1] = 0.3, 0.4
	ClipGradients([]*Param{p}, 1)
	if p.G.Data[0] != 0.3 {
		t.Error("clip modified small gradients")
	}
}

func TestPositionalEncodingDistinguishesSegments(t *testing.T) {
	pe := &PositionalEncoding{Dim: 8, SegmentAware: true}
	a := mat.New(2, 8)
	b := mat.New(2, 8)
	pe.Apply(a, []int{0, 1}, []int{0, 0})
	pe.Apply(b, []int{0, 1}, []int{3, 3})
	diff := 0.0
	for i := range a.Data {
		diff += math.Abs(a.Data[i] - b.Data[i])
	}
	if diff < 0.1 {
		t.Error("segment-aware encoding did not distinguish segments")
	}
	// Flat encoding must not.
	pe.SegmentAware = false
	c := mat.New(2, 8)
	d := mat.New(2, 8)
	pe.Apply(c, []int{0, 1}, []int{0, 0})
	pe.Apply(d, []int{0, 1}, []int{3, 3})
	for i := range c.Data {
		if c.Data[i] != d.Data[i] {
			t.Fatal("flat encoding should ignore segment ids")
		}
	}
}

func TestReconstructorShapesAndParams(t *testing.T) {
	r := mustReconstructor(t, ReconstructorConfig{InputDim: 5, UseMoE: true, SegmentAwarePE: true, Seed: 1})
	rng := rand.New(rand.NewSource(14))
	x := randInput(rng, 7, 5)
	y := r.Forward(x, nil, nil)
	if y.Rows != 7 || y.Cols != 5 {
		t.Fatalf("reconstruction shape %dx%d", y.Rows, y.Cols)
	}
	if r.NumParams() == 0 {
		t.Error("no parameters")
	}
	loads := r.ExpertLoads()
	if len(loads) != r.Config.Blocks {
		t.Errorf("expert loads for %d blocks, want %d", len(loads), r.Config.Blocks)
	}
}

func TestReconstructorLearnsIdentity(t *testing.T) {
	// Training on a repeating pattern must reduce reconstruction loss a lot.
	cfg := ReconstructorConfig{InputDim: 4, ModelDim: 16, Heads: 2, Hidden: 16,
		Blocks: 1, Experts: 2, TopK: 1, UseMoE: true, Seed: 2}
	r := mustReconstructor(t, cfg)
	opt := NewAdam(r.Params(), 3e-3)
	rng := rand.New(rand.NewSource(15))
	window := func() *mat.Matrix {
		x := mat.New(10, 4)
		phase := rng.Float64()
		for i := 0; i < 10; i++ {
			for j := 0; j < 4; j++ {
				x.Set(i, j, math.Sin(float64(i)/2+phase+float64(j)))
			}
		}
		return x
	}
	var first, last float64
	for step := 0; step < 150; step++ {
		x := window()
		y := r.Forward(x, nil, nil)
		loss, grad := MSE(y, x)
		if step == 0 {
			first = loss
		}
		last = loss
		r.Backward(grad)
		ClipGradients(r.Params(), 5)
		opt.Step()
	}
	if last > first*0.2 {
		t.Errorf("loss did not drop: first %v last %v", first, last)
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	seq := &Sequential{Layers: []Layer{
		NewDense(3, 5, rng), &ReLU{}, NewDense(5, 2, rng),
	}}
	gradCheck(t, "sequential", seq, randInput(rng, 4, 3), 1e-5)
}

func TestAttentionRejectsBadHeads(t *testing.T) {
	if _, err := NewMultiHeadAttention(5, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error for dim % heads != 0")
	}
}
