package nn

import "nodesentry/internal/mat"

// WMSE computes the Weighted Mean Squared Error of equation (5):
// (1/M) Σ_m w_m (x_m - x̂_m)², averaged over tokens, together with the
// gradient with respect to the reconstruction. weights may be nil (plain
// MSE). The paper derives w from the per-metric Mean Absolute Change of
// each cluster's training data so that stable metrics — where a deviation
// is more alarming — weigh more.
func WMSE(recon, target *mat.Matrix, weights []float64) (loss float64, grad *mat.Matrix) {
	grad = mat.New(recon.Rows, recon.Cols)
	n := float64(recon.Rows * recon.Cols)
	if n == 0 {
		return 0, grad
	}
	for i := 0; i < recon.Rows; i++ {
		rr := recon.Row(i)
		tr := target.Row(i)
		gr := grad.Row(i)
		for j := range rr {
			w := 1.0
			if weights != nil {
				w = weights[j]
			}
			d := rr[j] - tr[j]
			loss += w * d * d
			gr[j] = 2 * w * d / n
		}
	}
	return loss / n, grad
}

// MSE is WMSE with uniform weights.
func MSE(recon, target *mat.Matrix) (float64, *mat.Matrix) {
	return WMSE(recon, target, nil)
}

// MACWeights converts per-metric Mean Absolute Change values into WMSE
// weights (equation (6) context): weights are inversely proportional to
// MAC — the less a metric normally changes, the more a reconstruction
// deviation on it matters — normalized to mean 1 so the loss scale is
// comparable across clusters. A floor keeps near-constant metrics from
// dominating.
func MACWeights(macs []float64) []float64 {
	if len(macs) == 0 {
		return nil
	}
	const floor = 0.05
	w := make([]float64, len(macs))
	sum := 0.0
	for i, m := range macs {
		if m < floor {
			m = floor
		}
		w[i] = 1 / m
		sum += w[i]
	}
	mean := sum / float64(len(w))
	for i := range w {
		w[i] /= mean
	}
	return w
}

// ReconErrors returns the per-token weighted squared reconstruction error —
// NodeSentry's anomaly score stream for a window.
func ReconErrors(recon, target *mat.Matrix, weights []float64) []float64 {
	out := make([]float64, recon.Rows)
	ReconErrorsInto(out, recon, target, weights)
	return out
}

// ReconErrorsInto is ReconErrors with a caller-owned destination of length
// recon.Rows (the batched scoring path reuses one buffer per batch).
func ReconErrorsInto(dst []float64, recon, target *mat.Matrix, weights []float64) {
	m := float64(recon.Cols)
	for i := 0; i < recon.Rows; i++ {
		rr := recon.Row(i)
		tr := target.Row(i)
		s := 0.0
		for j := range rr {
			w := 1.0
			if weights != nil {
				w = weights[j]
			}
			d := rr[j] - tr[j]
			s += w * d * d
		}
		dst[i] = s / m
	}
}
