package fleetview

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/testutil"
)

// serveFixture builds a fed monitor + aggregator behind an obs.Handler
// test server — the same wiring sentryd uses.
func serveFixture(t *testing.T, reg *obs.Registry) (*runtime.Monitor, *Aggregator, *httptest.Server) {
	t.Helper()
	ds, det := fixture(t)
	mon, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, AlertBuffer: 4096, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	a := New(mon, Config{Spark: 16, VicinityThreshold: 3.5, Metrics: reg})
	src := ds.Nodes()[0]
	from, to, ok := cleanWindow(ds, src, 120)
	if !ok {
		t.Fatalf("no clean window for %s", src)
	}
	feedCohort(mon, ds, src, from, to, []string{"web-0", "web-1", "web-2"}, 9, func(string) float64 { return 1 })
	a.Evaluate()
	srv := httptest.NewServer(obs.Handler(reg, nil, a.Mounts()...))
	t.Cleanup(func() {
		srv.Close()
		a.Close()
		mon.Close()
		for range mon.Alerts() {
		}
	})
	return mon, a, srv
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, string(b)
}

func TestStateEndpoint(t *testing.T) {
	mon, _, srv := serveFixture(t, obs.NewRegistry())

	code, body := getBody(t, srv.URL+"/fleet/state?spark=4")
	if code != http.StatusOK {
		t.Fatalf("/fleet/state: %d %s", code, body)
	}
	var st FleetState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("unmarshal /fleet/state: %v\n%s", err, body)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("state has %d nodes, want 3", len(st.Nodes))
	}
	view := mon.SnapshotConsistent()
	if st.Epoch != view.Epoch {
		t.Errorf("state epoch %d, monitor %d", st.Epoch, view.Epoch)
	}
	for _, ns := range st.Nodes {
		if !ns.Ready {
			t.Errorf("node %s not ready after feeding", ns.Node)
		}
		if len(ns.Spark) == 0 || len(ns.Spark) > 4 {
			t.Errorf("node %s spark has %d points, want 1..4", ns.Node, len(ns.Spark))
		}
		if ns.Job != 9 {
			t.Errorf("node %s job %d, want 9", ns.Node, ns.Job)
		}
	}

	if code, _ := getBody(t, srv.URL+"/fleet/state?spark=nope"); code != http.StatusBadRequest {
		t.Errorf("bad spark accepted: %d", code)
	}
	if code, _ := getBody(t, srv.URL+"/fleet/state?spark=-1"); code != http.StatusBadRequest {
		t.Errorf("negative spark accepted: %d", code)
	}
}

// TestStateMetricsAgree pins the cross-surface consistency stamp: the
// nodesentry_snapshot_epoch/_seq gauges a /metrics scrape refreshes name
// the same monitor state /fleet/state reports, so the two surfaces can be
// reconciled when the monitor is quiescent.
func TestStateMetricsAgree(t *testing.T) {
	reg := obs.NewRegistry()
	_, _, srv := serveFixture(t, reg)

	// Quiescent monitor: no ingestion between the two reads.
	_, metrics := getBody(t, srv.URL+"/metrics")
	_, body := getBody(t, srv.URL+"/fleet/state?spark=0")
	var st FleetState
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}

	parse := func(name string) float64 {
		for _, line := range strings.Split(metrics, "\n") {
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
				if err != nil {
					t.Fatalf("parse %s: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("metric %s missing from scrape:\n%s", name, metrics)
		return 0
	}
	if got := parse("nodesentry_snapshot_epoch"); got != float64(st.Epoch) {
		t.Errorf("snapshot epoch gauge %v, state %d", got, st.Epoch)
	}
	if got := parse("nodesentry_snapshot_seq"); got != float64(st.Seq) {
		t.Errorf("snapshot seq gauge %v, state %d", got, st.Seq)
	}
	// The vicinity residual gauges exist per node and signal.
	if !strings.Contains(metrics, `nodesentry_vicinity_residual{node="web-0",signal="score"}`) {
		t.Errorf("vicinity residual gauge missing:\n%s", metrics)
	}
}

func TestNodeEndpoint(t *testing.T) {
	_, _, srv := serveFixture(t, obs.NewRegistry())

	code, body := getBody(t, srv.URL+"/fleet/nodes/web-1")
	if code != http.StatusOK {
		t.Fatalf("/fleet/nodes/web-1: %d %s", code, body)
	}
	var d NodeDetail
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Node != "web-1" || !d.Ready || len(d.History) == 0 {
		t.Fatalf("detail = %+v", d)
	}

	if code, _ := getBody(t, srv.URL+"/fleet/nodes/no-such-node"); code != http.StatusNotFound {
		t.Errorf("unknown node: %d, want 404", code)
	}
}

func TestEventsJSON(t *testing.T) {
	_, a, srv := serveFixture(t, obs.NewRegistry())
	a.RecordEvent("drift", "", "psi=0.9", 0.9)
	a.RecordEvent("retrain", "", "drift", 0)

	code, body := getBody(t, srv.URL+"/fleet/events")
	if code != http.StatusOK {
		t.Fatalf("/fleet/events: %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("journal has %d events, want >= 2", len(events))
	}
	cursor := events[len(events)-2].Seq

	code, body = getBody(t, srv.URL+"/fleet/events?since="+strconv.FormatUint(cursor, 10))
	if code != http.StatusOK {
		t.Fatal(code)
	}
	var tail []Event
	if err := json.Unmarshal([]byte(body), &tail); err != nil {
		t.Fatal(err)
	}
	if len(tail) != 1 || tail[0].Kind != "retrain" {
		t.Fatalf("since=%d returned %+v", cursor, tail)
	}

	if code, _ := getBody(t, srv.URL+"/fleet/events?since=nope"); code != http.StatusBadRequest {
		t.Errorf("bad since accepted: %d", code)
	}
}

func TestDashboardAndAssets(t *testing.T) {
	_, _, srv := serveFixture(t, obs.NewRegistry())

	code, body := getBody(t, srv.URL+"/fleet/")
	if code != http.StatusOK {
		t.Fatalf("/fleet/: %d", code)
	}
	for _, want := range []string{"nodesentry fleet", "data-vicinity-threshold=\"3.5\"", "dashboard.js"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	code, body = getBody(t, srv.URL+"/fleet/assets/dashboard.js")
	if code != http.StatusOK || !strings.Contains(body, "renderHeatmap") {
		t.Fatalf("/fleet/assets/dashboard.js: %d", code)
	}
}

// TestSSEStream drives a live SSE client end to end: journal replay,
// live publishes, seq dedup across the replay/live boundary, and — the
// leak check — a clean unwind on client disconnect with zero goroutines
// left behind.
func TestSSEStream(t *testing.T) {
	_, a, srv := serveFixture(t, obs.NewRegistry())
	// Snapshot after the fixture is up: the httptest accept loop and the
	// monitor live for the whole test (closed in t.Cleanup, after this
	// check), so the baseline must include them. What must NOT outlive
	// the disconnect below is anything the SSE stream itself started.
	checkG := testutil.CheckGoroutines(t)
	a.RecordEvent("drift", "", "replayed", 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/fleet/events?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	testutil.Eventually(t, "SSE client registered", func() error {
		if a.Bus().Clients() != 1 {
			return fmt.Errorf("clients = %d", a.Bus().Clients())
		}
		return nil
	})
	a.RecordEvent("retrain", "", "live", 0)

	// Read frames until both the replayed and the live event arrive.
	type frame struct{ id, event, data string }
	frames := make(chan frame, 16)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		var f frame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			case line == "" && f.data != "":
				frames <- f
				f = frame{}
			}
		}
	}()

	var got []frame
	seen := map[string]bool{}
	for f := range frames {
		got = append(got, f)
		if seen[f.id] {
			t.Fatalf("duplicate seq %s across replay/live boundary", f.id)
		}
		seen[f.id] = true
		var e Event
		if err := json.Unmarshal([]byte(f.data), &e); err != nil {
			t.Fatalf("frame data %q: %v", f.data, err)
		}
		if e.Kind != f.event {
			t.Fatalf("frame event %q carries kind %q", f.event, e.Kind)
		}
		if e.Detail == "live" {
			break
		}
	}
	if len(got) < 2 {
		t.Fatalf("received %d frames, want replay + live", len(got))
	}

	// Disconnect: the handler must unwind off the request goroutine and
	// unsubscribe; nothing may leak.
	cancel()
	testutil.Eventually(t, "SSE client unregistered", func() error {
		if n := a.Bus().Clients(); n != 0 {
			return fmt.Errorf("clients = %d", n)
		}
		return nil
	})
	resp.Body.Close()
	srv.CloseClientConnections()
	checkG()
}

// TestSSECloseEndsStreams: Aggregator.Close terminates live streams
// server-side (the daemon shutdown path).
func TestSSECloseEndsStreams(t *testing.T) {
	_, a, srv := serveFixture(t, obs.NewRegistry())

	resp, err := http.Get(srv.URL + "/fleet/events?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	testutil.Eventually(t, "SSE client registered", func() error {
		if a.Bus().Clients() != 1 {
			return fmt.Errorf("clients = %d", a.Bus().Clients())
		}
		return nil
	})

	a.Close()
	// The server handler returns on a.done; the body read then hits EOF.
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatalf("draining closed stream: %v", err)
	}
}
