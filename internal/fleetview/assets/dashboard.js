// Fleet dashboard: renders /fleet/state into a score heatmap, a cluster
// map colored by vicinity residual, and an incident timeline, keeps
// itself live off the /fleet/events SSE stream, and renders the
// summarization tier's folded incidents from /fleet/incidents. The
// replay control re-reads the whole journal (events?since=0) and scrubs
// through it. Plain d3 v7, no build step; degrades to the raw JSON
// endpoints when the CDN is unreachable.
(function () {
  "use strict";
  if (typeof d3 === "undefined") {
    document.getElementById("fallback").style.display = "block";
    return;
  }

  const vicThreshold = +document.body.dataset.vicinityThreshold || 4;
  const scoreColor = d3.scaleSequential(d3.interpolateInferno).domain([0, 1]);
  const vicColor = d3
    .scaleSequential(d3.interpolateRdYlGn)
    .domain([vicThreshold * 1.5, 0]); // green at 0, red past threshold
  const events = []; // newest last, bounded
  const MAX_EVENTS = 400;
  let replaying = false;

  function renderHeatmap(state) {
    const nodes = state.nodes;
    const cols = d3.max(nodes, (n) => (n.spark || []).length) || 0;
    const cell = 14,
      labelW = 90,
      w = labelW + cols * cell + 10,
      h = nodes.length * cell + 24;
    const svg = d3
      .select("#heatmap")
      .selectAll("svg")
      .data([null])
      .join("svg")
      .attr("width", w)
      .attr("height", h);
    const row = svg
      .selectAll("g.row")
      .data(nodes, (n) => n.node)
      .join("g")
      .attr("class", "row")
      .attr("transform", (n, i) => `translate(0,${i * cell + 16})`);
    row
      .selectAll("text")
      .data((n) => [n])
      .join("text")
      .attr("x", 0)
      .attr("y", cell - 4)
      .text((n) => n.node);
    row
      .selectAll("rect")
      .data((n) => n.spark || [])
      .join("rect")
      .attr("x", (p, i) => labelW + i * cell)
      .attr("width", cell - 1)
      .attr("height", cell - 1)
      .attr("fill", (p) => scoreColor(Math.min(1, p.score)))
      .append("title")
      .text((p) => `${new Date(p.ts * 1000).toISOString()} score=${p.score.toFixed(3)} max=${p.max.toFixed(3)}`);
  }

  function renderClusters(state) {
    const nodes = state.nodes;
    const clusters = [...new Set(nodes.map((n) => n.cluster))].sort((a, b) => a - b);
    const colW = 120,
      cell = 26,
      perCol = {},
      w = Math.max(clusters.length * colW, 200);
    let maxRows = 1;
    nodes.forEach((n) => {
      perCol[n.cluster] = (perCol[n.cluster] || 0) + 1;
      maxRows = Math.max(maxRows, perCol[n.cluster]);
    });
    const h = maxRows * cell + 40;
    const svg = d3
      .select("#clusters")
      .selectAll("svg")
      .data([null])
      .join("svg")
      .attr("width", w)
      .attr("height", h);
    svg
      .selectAll("text.cl")
      .data(clusters)
      .join("text")
      .attr("class", "cl")
      .attr("x", (c, i) => i * colW + 6)
      .attr("y", 12)
      .text((c) => (c < 0 ? "unmatched" : `cluster ${c}`));
    const rowIdx = {};
    const pos = nodes.map((n) => {
      rowIdx[n.cluster] = (rowIdx[n.cluster] || 0) + 1;
      return { n, col: clusters.indexOf(n.cluster), row: rowIdx[n.cluster] - 1 };
    });
    const g = svg
      .selectAll("g.node")
      .data(pos, (d) => d.n.node)
      .join("g")
      .attr("class", "node")
      .attr("transform", (d) => `translate(${d.col * colW + 6},${d.row * cell + 22})`);
    g.selectAll("circle")
      .data((d) => [d])
      .join("circle")
      .attr("cx", 8)
      .attr("cy", 8)
      .attr("r", 8)
      .attr("stroke", (d) =>
        Math.max(d.n.vic_score, d.n.vic_dist) >= vicThreshold ? "#f85149" : "none"
      )
      .attr("stroke-width", 2)
      .attr("fill", (d) => vicColor(Math.max(d.n.vic_score, d.n.vic_dist, 0)))
      .append("title")
      .text(
        (d) =>
          `${d.n.node} vic_score=${d.n.vic_score.toFixed(2)} vic_dist=${d.n.vic_dist.toFixed(2)} peers=${d.n.peers}`
      );
    g.selectAll("text")
      .data((d) => [d])
      .join("text")
      .attr("x", 20)
      .attr("y", 12)
      .text((d) => d.n.node);
  }

  function renderTimeline() {
    const w = document.getElementById("timeline").clientWidth || 800,
      h = 90,
      m = { l: 10, r: 10, t: 10, b: 20 };
    const svg = d3
      .select("#timeline")
      .selectAll("svg")
      .data([null])
      .join("svg")
      .attr("width", w)
      .attr("height", h);
    if (!events.length) return;
    const x = d3
      .scaleTime()
      .domain(d3.extent(events, (e) => e.ts * 1000))
      .range([m.l, w - m.r]);
    const kinds = [...new Set(events.map((e) => e.kind))];
    const y = d3.scalePoint().domain(kinds).range([m.t, h - m.b]).padding(0.5);
    const kindColor = {
      alert: "#f85149",
      vicinity: "#d29922",
      chaos_fault: "#a371f7",
      incident: "#3fb950",
    };
    svg
      .selectAll("g.axis")
      .data([null])
      .join("g")
      .attr("class", "axis")
      .attr("transform", `translate(0,${h - m.b})`)
      .call(d3.axisBottom(x).ticks(6));
    svg
      .selectAll("circle.ev")
      .data(events, (e) => e.seq)
      .join("circle")
      .attr("class", "ev")
      .attr("cx", (e) => x(e.ts * 1000))
      .attr("cy", (e) => y(e.kind))
      .attr("r", 4)
      .attr("fill", (e) => kindColor[e.kind] || "#58a6ff")
      .append("title")
      .text((e) => `#${e.seq} ${e.kind} ${e.node || ""} ${e.detail || ""}`);
  }

  function renderEventList() {
    const ul = d3.select("#events");
    ul.selectAll("li")
      .data(events.slice(-60).reverse(), (e) => e.seq)
      .join("li")
      .html(
        (e) =>
          `<span class="kind kind-${e.kind}">${e.kind}</span> ` +
          `${new Date(e.ts * 1000).toISOString().slice(11, 19)} ` +
          `${e.node ? e.node + " " : ""}${e.detail || ""}`
      );
  }

  function addEvents(list) {
    if (replaying) return; // the scrubber owns the event panes
    for (const e of list) {
      if (events.length && e.seq <= events[events.length - 1].seq) continue;
      events.push(e);
    }
    if (events.length > MAX_EVENTS) events.splice(0, events.length - MAX_EVENTS);
    renderEventList();
    renderTimeline();
  }

  function renderIncidents(snap) {
    const open = snap.open || [],
      items = open.concat((snap.resolved || []).slice(-12).reverse());
    document.getElementById("stat-incidents").textContent = open.length;
    d3.select("#incidents")
      .selectAll("li")
      .data(items, (i) => i.id)
      .join("li")
      .html(
        (i) =>
          `<span class="inc-state inc-${i.state}">${i.state}</span> ` +
          `<b>${i.title}</b> · severity ${i.severity.toFixed(2)}` +
          (i.truncated ? " · member list truncated" : "")
      );
  }

  // Replay: pull the whole retained journal in one shot and hand the
  // event panes to a scrubber; live SSE updates are held off until the
  // operator flips back.
  function showEventsUpTo(list, n) {
    events.length = 0;
    for (const e of list.slice(Math.max(0, n - MAX_EVENTS), n)) events.push(e);
    renderEventList();
    renderTimeline();
  }

  async function toggleReplay() {
    const btn = document.getElementById("replay-btn"),
      pos = document.getElementById("replay-pos");
    if (replaying) {
      replaying = false;
      btn.textContent = "replay";
      btn.classList.remove("on");
      pos.style.display = "none";
      events.length = 0;
      addEvents(await (await fetch("events")).json());
      return;
    }
    const all = await (await fetch("events?since=0")).json();
    if (!all.length) return;
    replaying = true;
    btn.textContent = "live";
    btn.classList.add("on");
    pos.max = all.length;
    pos.value = all.length;
    pos.style.display = "inline-block";
    pos.oninput = () => showEventsUpTo(all, +pos.value);
    showEventsUpTo(all, all.length);
  }

  async function refresh() {
    const res = await fetch("state?spark=48");
    const state = await res.json();
    document.getElementById("stat-nodes").textContent = state.nodes.length;
    document.getElementById("stat-epoch").textContent = state.epoch;
    document.getElementById("stat-seq").textContent = state.seq;
    document.getElementById("stat-dropped").textContent = state.dropped;
    renderHeatmap(state);
    renderClusters(state);
    renderIncidents(await (await fetch("incidents")).json());
  }

  async function start() {
    await refresh();
    const past = await (await fetch("events")).json();
    addEvents(past);
    const feed = document.getElementById("stat-feed");
    const es = new EventSource("events?stream=1");
    es.onopen = () => (feed.textContent = "live");
    es.onerror = () => (feed.textContent = "reconnecting…");
    for (const kind of [
      "alert", "vicinity", "chaos_fault", "drift", "retrain",
      "shadow", "promoted", "rejected", "swap", "incident",
    ]) {
      es.addEventListener(kind, (msg) => addEvents([JSON.parse(msg.data)]));
    }
    document.getElementById("replay-btn").onclick = () =>
      toggleReplay().catch(() => {});
    setInterval(refresh, 5000);
  }

  start().catch((err) => {
    document.getElementById("fallback").style.display = "block";
    document.getElementById("fallback").textContent = "dashboard error: " + err;
  });
})();
