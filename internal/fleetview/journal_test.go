package fleetview

import (
	"fmt"
	"testing"
)

func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	if j.Seq() != 0 {
		t.Fatalf("fresh journal seq = %d", j.Seq())
	}
	for i := 1; i <= 6; i++ {
		e := j.Append(Event{Kind: "alert", Node: fmt.Sprintf("n%d", i)})
		if e.Seq != uint64(i) {
			t.Fatalf("append %d stamped seq %d", i, e.Seq)
		}
	}
	if j.Seq() != 6 {
		t.Fatalf("seq = %d, want 6", j.Seq())
	}

	// The ring holds only the newest 4, oldest first.
	all := j.Since(0)
	if len(all) != 4 {
		t.Fatalf("Since(0) returned %d events, want 4 (ring bound)", len(all))
	}
	for i, e := range all {
		if want := uint64(i + 3); e.Seq != want {
			t.Fatalf("Since(0)[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}

	// Since filters strictly-after; a seq at or past the head yields nil.
	if got := j.Since(5); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v", got)
	}
	if got := j.Since(6); len(got) != 0 {
		t.Fatalf("Since(6) = %+v", got)
	}

	// Totals survive eviction: all 6 appends are counted even though the
	// ring kept 4 — the property chaos reconciliation depends on.
	if tot := j.Totals(); tot["alert"] != 6 {
		t.Fatalf("Totals = %v, want alert:6", tot)
	}
}

func TestBusFanOut(t *testing.T) {
	b := NewBus()
	if n := b.Clients(); n != 0 {
		t.Fatalf("fresh bus has %d clients", n)
	}
	c1 := b.Subscribe(2)
	c2 := b.Subscribe(2)
	if n := b.Clients(); n != 2 {
		t.Fatalf("clients = %d, want 2", n)
	}

	if dropped := b.Publish(Event{Seq: 1}); dropped != 0 {
		t.Fatalf("publish dropped %d with empty queues", dropped)
	}
	if e := <-c1; e.Seq != 1 {
		t.Fatalf("c1 got seq %d", e.Seq)
	}
	if e := <-c2; e.Seq != 1 {
		t.Fatalf("c2 got seq %d", e.Seq)
	}

	// A full queue drops for that client only; the publish never blocks.
	b.Publish(Event{Seq: 2})
	b.Publish(Event{Seq: 3})
	<-c1
	<-c1 // c1 drained, c2 still holds 2 and 3
	if dropped := b.Publish(Event{Seq: 4}); dropped != 1 {
		t.Fatalf("publish to one full queue dropped %d, want 1", dropped)
	}

	b.Unsubscribe(c2)
	if n := b.Clients(); n != 1 {
		t.Fatalf("clients after unsubscribe = %d, want 1", n)
	}
	if dropped := b.Publish(Event{Seq: 5}); dropped != 0 {
		t.Fatalf("publish after unsubscribe dropped %d", dropped)
	}
	if e := <-c1; e.Seq != 4 {
		t.Fatalf("c1 got seq %d, want 4", e.Seq)
	}
}

func TestRobustZ(t *testing.T) {
	// Below or at the median is never divergent.
	if z := robustZ(0.9, 1.0, 0.1); z != 0 {
		t.Fatalf("robustZ below median = %v", z)
	}
	if z := robustZ(1.0, 1.0, 0.1); z != 0 {
		t.Fatalf("robustZ at median = %v", z)
	}
	// Standard consistency scaling above the median.
	if z := robustZ(2.0, 1.0, 0.6745); z < 0.99 || z > 1.01 {
		t.Fatalf("robustZ(2,1,0.6745) = %v, want ~1", z)
	}
	// The MAD floor (5%% of |median|) caps residuals from freakishly
	// tight peer groups: identical peers cannot make z infinite.
	zTight := robustZ(1.3, 1.0, 0)
	zFloor := robustZ(1.3, 1.0, 0.05)
	if zTight != zFloor {
		t.Fatalf("MAD floor not applied: %v vs %v", zTight, zFloor)
	}
	// And still lets a genuinely divergent value through.
	if zTight < 4 {
		t.Fatalf("30%% divergence under floored MAD = %v, want >= 4", zTight)
	}
}

func TestJournalSourceNamespacing(t *testing.T) {
	j := NewJournal(8)
	j.SetSource("scorer-a")
	e := j.Append(Event{Kind: "alert", Node: "n1"})
	if e.Src != "scorer-a" || e.SrcSeq != e.Seq {
		t.Fatalf("local event not namespaced: %+v", e)
	}
	if j.Cursor("scorer-a") != e.SrcSeq {
		t.Fatalf("cursor = %d, want %d", j.Cursor("scorer-a"), e.SrcSeq)
	}

	// A merged journal re-stamps Seq but preserves the origin identity.
	merged := NewJournal(8)
	merged.SetSource("coord")
	got, ok := merged.AppendIfNew(e)
	if !ok || got.Src != "scorer-a" || got.SrcSeq != e.SrcSeq || got.Seq != 1 {
		t.Fatalf("relayed event = %+v, ok=%v", got, ok)
	}
	// Replaying the same origin event (reconnect) is deduped...
	if _, ok := merged.AppendIfNew(e); ok {
		t.Fatal("replayed (src, src_seq) must be deduped")
	}
	// ...and a later one from the same source is admitted, gap-free.
	e2 := j.Append(Event{Kind: "alert", Node: "n2"})
	if _, ok := merged.AppendIfNew(e2); !ok {
		t.Fatal("fresh src_seq rejected")
	}
	// A second source with overlapping SrcSeq values is independent.
	other := Event{Kind: "alert", Node: "n1", Src: "scorer-b", SrcSeq: 1}
	if _, ok := merged.AppendIfNew(other); !ok {
		t.Fatal("distinct source deduped against the wrong cursor")
	}
	if merged.Cursor("scorer-a") != e2.SrcSeq || merged.Cursor("scorer-b") != 1 {
		t.Fatalf("cursors = a:%d b:%d", merged.Cursor("scorer-a"), merged.Cursor("scorer-b"))
	}
	// Totals count only admitted events.
	if tot := merged.Totals(); tot["alert"] != 3 {
		t.Fatalf("Totals = %v, want alert:3", tot)
	}

	// Un-namespaced journals keep the pre-existing wire format: no src.
	plain := NewJournal(2)
	if e := plain.Append(Event{Kind: "alert"}); e.Src != "" || e.SrcSeq != 0 {
		t.Fatalf("default journal stamped namespacing: %+v", e)
	}
}
