package fleetview

import "sync"

// Event is one fleet-level incident: a monitor alert, a vicinity alert, a
// lifecycle transition (drift/retrain/shadow/promote/swap), or an injected
// chaos fault. Events carry a monotone Seq so SSE clients can detect gaps
// and re-sync from the JSON journal (`/fleet/events?since=`).
type Event struct {
	Seq uint64 `json:"seq"`
	// Src names the daemon whose journal first stamped the event and
	// SrcSeq is its sequence number there. Seq alone is only monotone
	// within one journal; when a coordinator fans several scorer journals
	// into one merged feed, (Src, SrcSeq) is the identity that stays
	// gap-free and dedupable across replays. Standalone daemons leave Src
	// empty and the fields vanish from the JSON (omitempty).
	Src    string  `json:"src,omitempty"`
	SrcSeq uint64  `json:"src_seq,omitempty"`
	Ts     int64   `json:"ts"`
	Kind   string  `json:"kind"`
	Node   string  `json:"node,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// Journal is a bounded ring of fleet events. Old events are evicted;
// Totals keeps the per-kind counts forever so ledger reconciliation (the
// chaos soak's exact-accounting check) survives eviction.
type Journal struct {
	mu      sync.Mutex
	ring    []Event
	head    int
	n       int
	seq     uint64
	source  string
	cursors map[string]uint64 // per-source high-water SrcSeq
	totals  map[string]uint64
}

// NewJournal builds a journal holding at most size events (minimum 1).
func NewJournal(size int) *Journal {
	if size < 1 {
		size = 1
	}
	return &Journal{ring: make([]Event, size), cursors: map[string]uint64{}, totals: map[string]uint64{}}
}

// SetSource names this journal's daemon; locally-appended events are
// stamped Src=source so a coordinator merging several feeds can tell them
// apart. Empty (the default) leaves events un-namespaced — the standalone
// wire format is unchanged.
func (j *Journal) SetSource(source string) {
	j.mu.Lock()
	j.source = source
	j.mu.Unlock()
}

// Append stamps e with the next sequence number, stores it (possibly
// evicting the oldest), tallies its kind, and returns the stamped event.
// A local event (empty Src) inherits the journal's source and its local
// Seq as SrcSeq; a relayed event keeps the (Src, SrcSeq) identity its
// origin journal gave it and only Seq is reassigned.
func (j *Journal) Append(e Event) Event {
	j.mu.Lock()
	e = j.appendLocked(e)
	j.mu.Unlock()
	return e
}

func (j *Journal) appendLocked(e Event) Event {
	j.seq++
	e.Seq = j.seq
	if e.Src == "" && j.source != "" {
		e.Src = j.source
		e.SrcSeq = e.Seq
	}
	if e.Src != "" && e.SrcSeq > j.cursors[e.Src] {
		j.cursors[e.Src] = e.SrcSeq
	}
	j.ring[j.head] = e
	j.head = (j.head + 1) % len(j.ring)
	if j.n < len(j.ring) {
		j.n++
	}
	j.totals[e.Kind]++
	return e
}

// AppendIfNew appends a relayed event unless its (Src, SrcSeq) is at or
// below the source's cursor — the dedup a coordinator needs when it
// re-replays a scorer's journal after a reconnect. Events without a Src
// are always appended (there is nothing to dedup against). Reports
// whether the event was admitted.
func (j *Journal) AppendIfNew(e Event) (Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if e.Src != "" && e.SrcSeq <= j.cursors[e.Src] {
		return e, false
	}
	return j.appendLocked(e), true
}

// Cursor returns the highest SrcSeq journaled for source — the `since`
// value that makes a replay of that source's feed gap-free.
func (j *Journal) Cursor(source string) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cursors[source]
}

// Seq returns the sequence number of the newest event (0 when empty).
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Since returns retained events with Seq > after, oldest first.
func (j *Journal) Since(after uint64) []Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, j.n)
	start := j.head - j.n
	if start < 0 {
		start += len(j.ring)
	}
	for i := 0; i < j.n; i++ {
		e := j.ring[(start+i)%len(j.ring)]
		if e.Seq > after {
			out = append(out, e)
		}
	}
	return out
}

// Totals returns a copy of the all-time per-kind event counts (immune to
// ring eviction).
func (j *Journal) Totals() map[string]uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string]uint64, len(j.totals))
	for k, v := range j.totals {
		out[k] = v
	}
	return out
}

// Bus fans events out to SSE subscribers without spawning any goroutines:
// Publish delivers inline with non-blocking sends, so a stalled client
// never blocks the emitter — it just loses events (counted, and visible
// to the client as a Seq gap it can heal via the JSON journal). Each
// subscriber is serviced by its own HTTP request goroutine; when that
// request ends the handler unsubscribes, so the Bus owns no lifecycle of
// its own and can't leak.
type Bus struct {
	mu   sync.Mutex
	subs map[chan Event]struct{}
}

// NewBus builds an empty bus.
func NewBus() *Bus { return &Bus{subs: map[chan Event]struct{}{}} }

// Subscribe registers a new subscriber channel with the given buffer.
// The caller must Unsubscribe when done.
func (b *Bus) Subscribe(buffer int) chan Event {
	ch := make(chan Event, buffer)
	b.mu.Lock()
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch
}

// Unsubscribe removes ch. Pending events remain readable; the channel is
// not closed (the subscriber side selects on its own done signal).
func (b *Bus) Unsubscribe(ch chan Event) {
	b.mu.Lock()
	delete(b.subs, ch)
	b.mu.Unlock()
}

// Publish offers e to every subscriber, never blocking; it returns how
// many subscribers had a full buffer and missed the event.
func (b *Bus) Publish(e Event) (dropped int) {
	b.mu.Lock()
	for ch := range b.subs {
		select {
		case ch <- e:
		default:
			dropped++
		}
	}
	b.mu.Unlock()
	return dropped
}

// Clients returns the live subscriber count.
func (b *Bus) Clients() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
