// Package fleetview is NodeSentry's fleet observability tier: the layer
// that turns per-node detection state into something an operator can *see*
// at fleet scale. It aggregates the live runtime.Monitor — per-node ring
// buffers of window scores, match distances and thresholds, fed through a
// hook tap — and adds the one signal per-node models structurally miss: a
// **vicinity residual** comparing each node's recent behavior to the
// distribution of its job-peers (Ghiasvand & Ciorba, "Anomaly Detection in
// HPC: A Vicinity Perspective"). A node whose score sits far outside its
// peer group's median — measured as a robust z against the peer median and
// MAD — fires a vicinity alert even when its own dynamic threshold never
// trips, the divergence class DeepHYDRA argues dynamically-configured
// fleets must catch at the fleet level.
//
// The aggregator additionally keeps a bounded event journal (monitor
// alerts, vicinity alerts, lifecycle drift/retrain/promotion transitions,
// chaos faults) and serves the whole state over HTTP: JSON APIs
// (/fleet/state, /fleet/nodes/{node}, /fleet/events), a Server-Sent-Events
// stream for live updates, and an embedded html/template + d3 dashboard.
// Everything is stdlib-only, like the rest of the module; detection output
// is byte-identical with the tier enabled or disabled — the tap observes,
// it never feeds back.
package fleetview

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/summary"
)

// Config parameterizes an Aggregator.
type Config struct {
	// History is the per-node ring-buffer length in scored windows
	// (default 256).
	History int
	// Spark is how many trailing ring points /fleet/state inlines per
	// node for the dashboard heatmap (default 48, capped at History).
	Spark int
	// RecentWindows is how many trailing windows the vicinity residual
	// averages into a node's "recent score" (default 8).
	RecentWindows int
	// JournalSize bounds the event journal ring (default 2048).
	JournalSize int
	// Source, when set, namespaces every journaled event with this daemon
	// ID (Event.Src/SrcSeq) so a coordinator merging several scorer feeds
	// can dedup replays per source. Empty (the default) leaves the
	// standalone wire format untouched.
	Source string
	// ResidualHistory is the per-node ring of retained vicinity residual
	// evaluations (default 64) served by /fleet/nodes/{node} — the
	// sustained-divergence trace a single latest value can't show.
	ResidualHistory int

	// MinPeers is the minimum job-peer group size for vicinity residuals
	// (default 3): below it the median/MAD are too fragile to accuse a
	// node of diverging.
	MinPeers int
	// VicinityThreshold is the robust-z at which a node counts as
	// peer-divergent (default 4).
	VicinityThreshold float64
	// VicinityCooldownSec suppresses repeat vicinity alerts per node
	// within the window (default 300 s, mirroring the monitor's alert
	// cooldown).
	VicinityCooldownSec int64
	// SustainK of the last SustainN evaluations (including the current
	// one) must put a node's residual at or above VicinityThreshold
	// before a vicinity alert fires (defaults 2 of 4) — sustained
	// divergence, not a one-sample blip. SustainK=1 restores the
	// instantaneous behavior. SustainN is clamped to ResidualHistory,
	// the ring the counts are read from.
	SustainK int
	SustainN int
	// EvalInterval is Run's vicinity evaluation cadence (default 15 s).
	EvalInterval time.Duration

	// SSEBuffer is the per-client event queue capacity (default 64).
	// A client that falls further behind has events dropped (counted);
	// the seq gap tells it to re-sync via /fleet/events?since=.
	SSEBuffer int
	// KeepAlive is the SSE comment-ping interval holding idle streams
	// open through proxies (default 15 s).
	KeepAlive time.Duration

	// OnVicinityAlert, when non-nil, receives every vicinity alert on the
	// evaluating goroutine (after journaling). The monitor's own alert
	// channel is never touched — vicinity alerts are a separate surface,
	// keeping per-node alerts byte-identical with fleetview on or off.
	OnVicinityAlert func(VicinityAlert)

	// Metrics, when non-nil, receives the nodesentry_fleet_* and
	// nodesentry_vicinity_* series plus the snapshot epoch/seq gauges
	// that let /metrics and /fleet/state be reconciled.
	Metrics *obs.Registry
	// Logger, when non-nil, receives vicinity alerts at Info.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.History <= 0 {
		c.History = 256
	}
	if c.Spark <= 0 {
		c.Spark = 48
	}
	if c.Spark > c.History {
		c.Spark = c.History
	}
	if c.RecentWindows <= 0 {
		c.RecentWindows = 8
	}
	if c.JournalSize <= 0 {
		c.JournalSize = 2048
	}
	if c.ResidualHistory <= 0 {
		c.ResidualHistory = 64
	}
	if c.MinPeers <= 0 {
		c.MinPeers = 3
	}
	if c.VicinityThreshold <= 0 {
		c.VicinityThreshold = 4
	}
	if c.VicinityCooldownSec <= 0 {
		c.VicinityCooldownSec = 300
	}
	if c.SustainK <= 0 {
		c.SustainK = 2
	}
	if c.SustainN <= 0 {
		c.SustainN = 4
	}
	if c.SustainN > c.ResidualHistory {
		c.SustainN = c.ResidualHistory
	}
	if c.SustainK > c.SustainN {
		c.SustainK = c.SustainN
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 15 * time.Second
	}
	if c.SSEBuffer <= 0 {
		c.SSEBuffer = 64
	}
	if c.KeepAlive <= 0 {
		c.KeepAlive = 15 * time.Second
	}
	return c
}

// Point is one scored window in a node's ring: the window's start
// timestamp, its mean and max normalized score, and the node's dynamic
// threshold would-be bound is carried by the surrounding status instead
// (thresholds refresh per window; the ring keeps the scores).
type Point struct {
	Ts    int64   `json:"ts"`
	Score float64 `json:"score"`
	Max   float64 `json:"max"`
}

// nodeHist is one node's aggregated streaming history.
type nodeHist struct {
	ring []Point
	head int // next write index
	n    int // filled entries (≤ len(ring))

	cluster  int
	lastDist float64
	matched  bool

	// Vicinity evaluation results (refreshed by evaluate).
	vicScore float64
	vicDist  float64
	peers    int

	// Residual evaluation history (one entry per Evaluate pass in which
	// the node had a usable peer group).
	resRing []ResidualPoint
	resHead int
	resN    int

	lastVicAlert int64

	// Per-node residual gauges (nil when metrics are disabled).
	resScoreG *obs.Gauge
	resDistG  *obs.Gauge
}

func (h *nodeHist) push(p Point) {
	h.ring[h.head] = p
	h.head = (h.head + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
}

// last returns up to k trailing points, oldest first.
func (h *nodeHist) last(k int) []Point {
	if k > h.n {
		k = h.n
	}
	out := make([]Point, 0, k)
	start := h.head - k
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < k; i++ {
		out = append(out, h.ring[(start+i)%len(h.ring)])
	}
	return out
}

// ResidualPoint is one vicinity evaluation's outcome for a node: the
// robust-z residuals of both signals against its job peers at Ts (0 when
// the signal was not evaluable) and the peer-group size.
type ResidualPoint struct {
	Ts    int64   `json:"ts"`
	Score float64 `json:"score"`
	Dist  float64 `json:"dist"`
	Peers int     `json:"peers"`
}

func (h *nodeHist) pushResidual(p ResidualPoint) {
	h.resRing[h.resHead] = p
	h.resHead = (h.resHead + 1) % len(h.resRing)
	if h.resN < len(h.resRing) {
		h.resN++
	}
}

// sustained counts how many of the node's last n residual evaluations
// (newest first) put the chosen signal at or above thr — the k-of-n
// evidence a vicinity alert needs.
func (h *nodeHist) sustained(n int, thr float64, dist bool) int {
	if n > h.resN {
		n = h.resN
	}
	over := 0
	for i := 1; i <= n; i++ {
		p := h.resRing[((h.resHead-i)%len(h.resRing)+len(h.resRing))%len(h.resRing)]
		v := p.Score
		if dist {
			v = p.Dist
		}
		if v >= thr {
			over++
		}
	}
	return over
}

// residuals returns the retained evaluation history, oldest first.
func (h *nodeHist) residuals() []ResidualPoint {
	out := make([]ResidualPoint, 0, h.resN)
	start := h.resHead - h.resN
	if start < 0 {
		start += len(h.resRing)
	}
	for i := 0; i < h.resN; i++ {
		out = append(out, h.resRing[(start+i)%len(h.resRing)])
	}
	return out
}

// recent is the mean of the last k window-mean scores (NaN when empty).
func (h *nodeHist) recent(k int) float64 {
	pts := h.last(k)
	if len(pts) == 0 {
		return nan
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.Score
	}
	return sum / float64(len(pts))
}

// fvMetrics holds the aggregator's pre-registered handles (nil no-ops
// when observability is off).
type fvMetrics struct {
	stateReqs  *obs.Counter
	stateLat   *obs.Histogram
	sseClients *obs.Gauge
	sseDropped *obs.Counter
	evals      *obs.Counter
	vicAlerts  *obs.Counter
	vicGroups  *obs.Gauge
	snapEpoch  *obs.Gauge
	snapSeq    *obs.Gauge
}

func newFvMetrics(r *obs.Registry) fvMetrics {
	return fvMetrics{
		stateReqs:  r.Counter("nodesentry_fleet_state_requests_total"),
		stateLat:   r.Histogram("nodesentry_fleet_state_seconds", obs.LatencyBuckets),
		sseClients: r.Gauge("nodesentry_fleet_sse_clients"),
		sseDropped: r.Counter("nodesentry_fleet_sse_dropped_total"),
		evals:      r.Counter("nodesentry_vicinity_evals_total"),
		vicAlerts:  r.Counter("nodesentry_vicinity_alerts_total"),
		vicGroups:  r.Gauge("nodesentry_vicinity_groups"),
		snapEpoch:  r.Gauge("nodesentry_snapshot_epoch"),
		snapSeq:    r.Gauge("nodesentry_snapshot_seq"),
	}
}

// Aggregator is the fleet-state aggregation engine around one live
// monitor. Construct with New, attach to the monitor's hook chain (New
// does this via Monitor.Tap), serve with Handler/Mounts, and drive
// periodic vicinity evaluation with Run.
type Aggregator struct {
	cfg Config
	mon *runtime.Monitor

	mu    sync.Mutex
	nodes map[string]*nodeHist

	journal *Journal
	bus     *Bus

	faultMu sync.Mutex
	faults  map[string]int64

	// sum, when attached, backs /fleet/incidents and the incident event
	// lane. An atomic pointer bridges the daemon's construction order
	// (the summarizer is built before the aggregator, but either order
	// works).
	sum atomic.Pointer[summary.Summarizer]

	reg *obs.Registry
	met fvMetrics
	log *slog.Logger

	done      chan struct{}
	closeOnce sync.Once
	evalSeq   int64
}

// New builds an aggregator over mon and chains its observation tap after
// any hooks already installed (so it composes with the lifecycle
// manager's). It also registers a scrape hook exporting the monitor's
// snapshot epoch/seq, so /metrics and /fleet/state expose the same
// consistency stamp. Call Close when done; the monitor is not owned.
func New(mon *runtime.Monitor, cfg Config) *Aggregator {
	cfg = cfg.withDefaults()
	a := &Aggregator{
		cfg:     cfg,
		mon:     mon,
		nodes:   map[string]*nodeHist{},
		journal: NewJournal(cfg.JournalSize),
		bus:     NewBus(),
		faults:  map[string]int64{},
		reg:     cfg.Metrics,
		met:     newFvMetrics(cfg.Metrics),
		log:     cfg.Logger,
		done:    make(chan struct{}),
	}
	a.journal.SetSource(cfg.Source)
	mon.Tap(runtime.Hooks{
		OnMatch:  a.onMatch,
		OnScores: a.onScores,
		OnAlert:  a.onAlert,
	})
	// The same SnapshotConsistent stamp /fleet/state reports, refreshed at
	// the top of every scrape: two surfaces showing equal seq describe the
	// same global monitor state (runtime.SnapshotView's contract).
	a.reg.OnScrape(func() {
		v := mon.SnapshotConsistent()
		a.met.snapEpoch.Set(float64(v.Epoch))
		a.met.snapSeq.Set(float64(v.Seq))
	})
	return a
}

// Close stops Run (if running) and ends every open SSE stream. It does
// not close the monitor. Idempotent.
func (a *Aggregator) Close() {
	a.closeOnce.Do(func() { close(a.done) })
}

// Journal exposes the event journal (tests, chaos reconciliation).
func (a *Aggregator) Journal() *Journal { return a.journal }

// Bus exposes the SSE fan-out bus (tests, benchmarks).
func (a *Aggregator) Bus() *Bus { return a.bus }

// Run evaluates vicinity residuals every EvalInterval until ctx is
// canceled or Close is called.
func (a *Aggregator) Run(ctx ctxDone) {
	t := time.NewTicker(a.cfg.EvalInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-a.done:
			return
		case <-t.C:
			a.Evaluate()
		}
	}
}

// ctxDone is the subset of context.Context Run needs; avoids importing
// context for one method while keeping call sites idiomatic.
type ctxDone interface{ Done() <-chan struct{} }

// ---- hook tap ----

func (a *Aggregator) state(node string) *nodeHist {
	h, ok := a.nodes[node]
	if !ok {
		h = &nodeHist{ring: make([]Point, a.cfg.History), resRing: make([]ResidualPoint, a.cfg.ResidualHistory), cluster: -1, lastDist: nan}
		if a.reg != nil {
			h.resScoreG = a.reg.Gauge("nodesentry_vicinity_residual", "node", node, "signal", "score")
			h.resDistG = a.reg.Gauge("nodesentry_vicinity_residual", "node", node, "signal", "distance")
		}
		h.vicScore, h.vicDist = nan, nan
		a.nodes[node] = h
	}
	return h
}

func (a *Aggregator) onMatch(node string, cluster int, distance float64, matched bool) {
	a.mu.Lock()
	h := a.state(node)
	h.cluster = cluster
	h.lastDist = distance
	h.matched = matched
	a.mu.Unlock()
}

func (a *Aggregator) onScores(node string, cluster int, start int64, scores []float64) {
	if len(scores) == 0 {
		return
	}
	// Reduce before taking the lock; the hook contract forbids retaining
	// the slice and runs under the node's ingest lock, so stay brief.
	sum, maxv := 0.0, scores[0]
	for _, s := range scores {
		sum += s
		if s > maxv {
			maxv = s
		}
	}
	p := Point{Ts: start, Score: sum / float64(len(scores)), Max: maxv}
	a.mu.Lock()
	h := a.state(node)
	h.cluster = cluster
	h.push(p)
	a.mu.Unlock()
}

func (a *Aggregator) onAlert(al runtime.Alert) {
	a.emit(Event{
		Ts:     al.Time,
		Kind:   EventAlert,
		Node:   al.Node,
		Detail: fmt.Sprintf("priority=%d job=%d epoch=%d level=%s", al.Priority, al.Job, al.Epoch, al.Diagnosis.Level),
		Value:  al.Score,
	})
}

// ---- event emission ----

// Journal event kinds. Lifecycle and chaos emitters pass their own kind
// strings through LifecycleEvent/RecordFault; these are the ones the
// aggregator itself produces.
const (
	EventAlert    = "alert"
	EventVicinity = "vicinity"
	EventChaos    = "chaos_fault"
	EventIncident = "incident"
)

// emit journals e (assigning its sequence number), counts it, and fans it
// out to SSE subscribers.
func (a *Aggregator) emit(e Event) {
	if e.Ts == 0 {
		e.Ts = time.Now().Unix()
	}
	e = a.journal.Append(e)
	a.reg.Counter("nodesentry_fleet_events_total", "kind", e.Kind).Inc()
	if dropped := a.bus.Publish(e); dropped > 0 {
		a.met.sseDropped.Add(int64(dropped))
	}
}

// RecordEvent journals an arbitrary event — the seam daemon wiring uses
// for lifecycle transitions and operators could use for annotations.
func (a *Aggregator) RecordEvent(kind, node, detail string, value float64) {
	a.emit(Event{Kind: kind, Node: node, Detail: detail, Value: value})
}

// LifecycleEvent adapts RecordEvent to the lifecycle.Config.OnEvent
// callback shape.
func (a *Aggregator) LifecycleEvent(kind, detail string) {
	a.RecordEvent(kind, "", detail, 0)
}

// AttachSummary exposes s on /fleet/incidents and enables the incident
// event lane. The aggregator only serves the summarizer's state; feeding
// it stays on the alert consumer's path.
func (a *Aggregator) AttachSummary(s *summary.Summarizer) {
	a.sum.Store(s)
}

// Summary returns the attached summarizer (nil before AttachSummary).
func (a *Aggregator) Summary() *summary.Summarizer {
	return a.sum.Load()
}

// RecordIncident journals one incident lifecycle transition as an
// "incident" event on the journal and SSE bus — the semantic lane the
// dashboard renders above the raw alert stream.
func (a *Aggregator) RecordIncident(inc summary.Incident, trans summary.Transition) {
	a.emit(Event{
		Ts:   inc.LastTs,
		Kind: EventIncident,
		Detail: fmt.Sprintf("%s=%s id=%s count=%d dimension=%s severity=%.4f",
			trans, inc.Title, inc.ID, inc.Count, inc.Dimension, inc.Severity),
		Value: float64(inc.Count),
	})
}

// RecordFault journals n injected chaos faults of the named kind and
// tallies them for FaultTotals — the chaos soak wires chaos.Counts.OnAdd
// here and reconciles the two ledgers after the run.
func (a *Aggregator) RecordFault(kind string, n int64) {
	a.faultMu.Lock()
	a.faults[kind] += n
	a.faultMu.Unlock()
	a.emit(Event{Kind: EventChaos, Detail: kind, Value: float64(n)})
}

// FaultTotals returns a copy of the per-kind injected-fault tally
// accumulated through RecordFault.
func (a *Aggregator) FaultTotals() map[string]int64 {
	a.faultMu.Lock()
	defer a.faultMu.Unlock()
	out := make(map[string]int64, len(a.faults))
	for k, v := range a.faults {
		out[k] = v
	}
	return out
}
