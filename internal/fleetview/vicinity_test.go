package fleetview

import (
	"bytes"
	"encoding/json"
	"testing"

	"nodesentry/internal/eval"
	"nodesentry/internal/runtime"
)

// TestVicinityPeerDivergence is the tier's reason to exist: a synthetic
// peer-divergence fault — one node running hotter than the peers executing
// the same job, but steadily enough that its own k-sigma threshold never
// trips — must be caught by the vicinity residual. The drill replays one
// clean source frame to a six-node cohort under a shared job ID, scales
// the victim's telemetry by a constant factor (anomalous vs peers, flat vs
// its own history), and pins the entity-level recall floor at 1.
func TestVicinityPeerDivergence(t *testing.T) {
	ds, det := fixture(t)
	const samples = 180
	src := ds.Nodes()[0]
	from, to, ok := cleanWindow(ds, src, samples)
	if !ok {
		t.Fatalf("no fault-free %d-sample window for %s in the test split", samples, src)
	}

	mon, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, AlertBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var vicinityCb []VicinityAlert
	a := New(mon, Config{
		MinPeers:            3,
		VicinityThreshold:   3.5,
		VicinityCooldownSec: 1,
		OnVicinityAlert:     func(al VicinityAlert) { vicinityCb = append(vicinityCb, al) },
	})
	defer a.Close()

	cohort := []string{"sim-0", "sim-1", "sim-2", "sim-3", "sim-4", "sim-odd"}
	const victim = "sim-odd"
	feedCohort(mon, ds, src, from, to, cohort, 7001, func(node string) float64 {
		if node == victim {
			return 1.3
		}
		return 1
	})
	mon.Close()

	// The victim's per-node dynamic threshold must stay silent: its score
	// history is uniformly elevated, so k-sigma over its own past sees
	// nothing. This is precisely the divergence class per-node models miss.
	for al := range mon.Alerts() {
		if al.Node == victim {
			t.Fatalf("per-node threshold fired for the victim (score %.4f at %d): the drill's premise requires a fault only peers can see",
				al.Score, al.Time)
		}
	}

	// Sustained divergence: the first evaluation records the elevated
	// residual in the ring but must not fire — one sample over the
	// threshold is a blip, not a diverging node (SustainK defaults to 2).
	if first := a.Evaluate(); len(first) != 0 {
		t.Fatalf("first evaluation fired %d alerts before the divergence was sustained", len(first))
	}
	alerts := a.Evaluate()
	var flagged []string
	for _, al := range alerts {
		flagged = append(flagged, al.Node)
		if al.Job != 7001 {
			t.Errorf("alert for %s attributes job %d, want 7001", al.Node, al.Job)
		}
		if al.Peers != len(cohort) {
			t.Errorf("alert for %s saw %d peers, want %d", al.Node, al.Peers, len(cohort))
		}
		if al.Residual < 3.5 {
			t.Errorf("alert for %s carries residual %.2f below the threshold", al.Node, al.Residual)
		}
	}

	// Entity-level floor: recall 1 (the victim is flagged) and precision 1
	// (no clean peer is accused).
	recall, precision := eval.EntityConfusion([]string{victim}, flagged)
	if recall < 1 {
		t.Fatalf("vicinity recall %.2f < 1.0: victim not flagged (alerts %v)", recall, flagged)
	}
	if precision < 1 {
		t.Fatalf("vicinity precision %.2f < 1.0: clean peers accused (alerts %v)", precision, flagged)
	}

	// The alert reached every surface: callback, journal, and metrics-free
	// residual state exposed via /fleet/state's NodeState.
	if len(vicinityCb) != len(alerts) {
		t.Fatalf("OnVicinityAlert saw %d alerts, Evaluate returned %d", len(vicinityCb), len(alerts))
	}
	tot := a.Journal().Totals()
	if tot[EventVicinity] != uint64(len(alerts)) {
		t.Fatalf("journal holds %d vicinity events, want %d", tot[EventVicinity], len(alerts))
	}
	st := a.State(0)
	foundVictim := false
	for _, ns := range st.Nodes {
		if ns.Node != victim {
			continue
		}
		foundVictim = true
		if ns.VicScore < 3.5 && ns.VicDist < 3.5 {
			t.Errorf("victim NodeState residuals (%.2f, %.2f) below threshold", ns.VicScore, ns.VicDist)
		}
	}
	if !foundVictim {
		t.Fatal("victim missing from /fleet/state")
	}

	// Cooldown: an immediate re-evaluation recomputes residuals but fires
	// no duplicate alerts.
	a2 := a.Evaluate()
	_ = a2 // cooldown is 1s; same-second re-eval must be suppressed
	if len(a2) != 0 {
		t.Fatalf("re-evaluation inside cooldown fired %d alerts", len(a2))
	}
}

// TestSustainedCounts pins the k-of-n window arithmetic on the residual
// ring: only the last n evaluations count, and both signals are read
// independently.
func TestSustainedCounts(t *testing.T) {
	h := &nodeHist{resRing: make([]ResidualPoint, 8)}
	for _, z := range []float64{5, 0, 5, 5} {
		h.pushResidual(ResidualPoint{Score: z, Dist: z / 2})
	}
	if got := h.sustained(4, 3.5, false); got != 3 {
		t.Fatalf("sustained(4) = %d, want 3", got)
	}
	if got := h.sustained(2, 3.5, false); got != 2 {
		t.Fatalf("sustained(2) = %d, want 2 (only the newest two)", got)
	}
	if got := h.sustained(16, 3.5, false); got != 3 {
		t.Fatalf("sustained beyond fill = %d, want 3", got)
	}
	if got := h.sustained(4, 2.0, true); got != 3 {
		t.Fatalf("sustained dist = %d, want 3", got)
	}
}

// TestEvaluateNeedsMinPeers: groups below MinPeers produce no residuals
// and no alerts — two nodes cannot accuse each other.
func TestEvaluateNeedsMinPeers(t *testing.T) {
	ds, det := fixture(t)
	const samples = 120
	src := ds.Nodes()[0]
	from, to, ok := cleanWindow(ds, src, samples)
	if !ok {
		t.Fatalf("no clean window for %s", src)
	}
	mon, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, AlertBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	a := New(mon, Config{MinPeers: 3, VicinityThreshold: 3.5})
	defer a.Close()

	feedCohort(mon, ds, src, from, to, []string{"duo-0", "duo-1"}, 42, func(node string) float64 {
		if node == "duo-1" {
			return 2 // wildly divergent, but unaccusable with one peer
		}
		return 1
	})
	mon.Close()
	for range mon.Alerts() {
	}

	if alerts := a.Evaluate(); len(alerts) != 0 {
		t.Fatalf("two-node group fired %d vicinity alerts", len(alerts))
	}
}

// TestAlertsByteIdenticalWithFleetview pins the tier's observer contract:
// running the same replay through a monitor with the fleetview tap
// attached (and Evaluate churning) yields byte-identical alert output to a
// bare monitor. The tap observes; it never feeds back.
func TestAlertsByteIdenticalWithFleetview(t *testing.T) {
	ds, det := fixture(t)
	from, to := ds.SplitTime(), ds.Horizon

	run := func(withFleet bool) []byte {
		mon, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, AlertBuffer: 8192})
		if err != nil {
			t.Fatal(err)
		}
		if withFleet {
			a := New(mon, Config{VicinityThreshold: 3.5, VicinityCooldownSec: 1})
			defer a.Close()
			done := make(chan struct{})
			stop := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
						a.Evaluate()
					}
				}
			}()
			defer func() { close(stop); <-done }()
		}
		feed(mon, ds, from, to, 1.35)
		mon.Close()
		var alerts []runtime.Alert
		for al := range mon.Alerts() {
			alerts = append(alerts, al)
		}
		if len(alerts) == 0 {
			t.Fatal("replay produced no alerts; the identity check would be vacuous")
		}
		b, err := json.Marshal(alerts)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	bare := run(false)
	tapped := run(true)
	if !bytes.Equal(bare, tapped) {
		t.Fatalf("alert streams diverge with fleetview attached:\nbare:   %.200s\ntapped: %.200s", bare, tapped)
	}
}

// TestResidualHistoryRing: every Evaluate pass appends one ResidualPoint
// per evaluable node, the ring is bounded by Config.ResidualHistory, and
// /fleet/nodes/{id} serves it — the sustained-divergence trace.
func TestResidualHistoryRing(t *testing.T) {
	ds, det := fixture(t)
	const samples = 120
	src := ds.Nodes()[0]
	from, to, ok := cleanWindow(ds, src, samples)
	if !ok {
		t.Fatalf("no fault-free %d-sample window for %s", samples, src)
	}
	mon, err := runtime.NewMonitor(det, runtime.Config{Step: ds.Step, AlertBuffer: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer mon.Close()
	a := New(mon, Config{MinPeers: 3, ResidualHistory: 4})
	defer a.Close()

	cohort := []string{"sim-0", "sim-1", "sim-2", "sim-3"}
	feedCohort(mon, ds, src, from, to, cohort, 7001, func(string) float64 { return 1 })

	const evals = 7
	for i := 0; i < evals; i++ {
		a.Evaluate()
	}
	d, ok := a.nodeDetail("sim-0")
	if !ok {
		t.Fatal("sim-0 missing from node detail")
	}
	// 7 evaluations through a 4-deep ring: exactly 4 retained.
	if len(d.Residuals) != 4 {
		t.Fatalf("retained %d residual points, want 4 (ring bound)", len(d.Residuals))
	}
	for i, p := range d.Residuals {
		if p.Peers != len(cohort) {
			t.Errorf("residual[%d].Peers = %d, want %d", i, p.Peers, len(cohort))
		}
		if i > 0 && p.Ts < d.Residuals[i-1].Ts {
			t.Errorf("residual history out of order at %d: %d < %d", i, p.Ts, d.Residuals[i-1].Ts)
		}
	}
}
