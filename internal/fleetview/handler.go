package fleetview

import (
	"embed"
	"encoding/json"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strconv"
	"time"

	"nodesentry/internal/obs"
	"nodesentry/internal/summary"
)

//go:embed assets
var assetsFS embed.FS

var dashboardTmpl = template.Must(template.ParseFS(assetsFS, "assets/dashboard.html"))

// FleetState is the /fleet/state response: one consistent monitor
// snapshot (Epoch/Seq match the nodesentry_snapshot_epoch/_seq gauges on
// /metrics, so the two surfaces can be reconciled) plus the aggregator's
// per-node rings and vicinity residuals.
type FleetState struct {
	Now     int64  `json:"now"`
	Epoch   int64  `json:"epoch"`
	Seq     uint64 `json:"seq"`
	Dropped int64  `json:"dropped"`
	// JournalSeq is the newest event sequence number; SSE clients use it
	// as the `since` cursor when re-syncing.
	JournalSeq uint64      `json:"journal_seq"`
	Nodes      []NodeState `json:"nodes"`
}

// NodeState is one node's row in FleetState. NaN-valued signals (before
// the first window or match) are serialized as 0 with the corresponding
// Ready flag false, keeping the JSON standard-compliant.
type NodeState struct {
	Node    string `json:"node"`
	Job     int64  `json:"job"`
	Cluster int    `json:"cluster"`
	Matched bool   `json:"matched"`
	Ready   bool   `json:"ready"`
	// Score is the recent mean window score; Distance the last centroid
	// match distance; Threshold the node's current dynamic alert bound.
	Score     float64 `json:"score"`
	Distance  float64 `json:"distance"`
	Threshold float64 `json:"threshold"`
	// VicScore/VicDist are the latest vicinity residuals (robust z vs
	// job peers) for the two signals; Peers the group size they were
	// computed against.
	VicScore float64 `json:"vic_score"`
	VicDist  float64 `json:"vic_dist"`
	Peers    int     `json:"peers"`
	Dropped  int64   `json:"dropped"`
	Spark    []Point `json:"spark,omitempty"`
}

// finite maps NaN (and infinities) to 0 for JSON encoding.
func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// State assembles the current fleet state. sparkN bounds the inline ring
// points per node (0 = none; capped at Config.Spark).
func (a *Aggregator) State(sparkN int) FleetState {
	if sparkN > a.cfg.Spark {
		sparkN = a.cfg.Spark
	}
	view := a.mon.SnapshotConsistent()
	st := FleetState{
		Now:        time.Now().Unix(),
		Epoch:      view.Epoch,
		Seq:        view.Seq,
		Dropped:    view.Dropped,
		JournalSeq: a.journal.Seq(),
		Nodes:      make([]NodeState, 0, len(view.Nodes)),
	}
	a.mu.Lock()
	for _, ns := range view.Nodes {
		row := NodeState{
			Node:      ns.Node,
			Job:       ns.Job,
			Cluster:   ns.Cluster,
			Matched:   ns.Matched,
			Threshold: finite(ns.Threshold),
			Dropped:   ns.Dropped,
		}
		if h, ok := a.nodes[ns.Node]; ok {
			row.Ready = h.n > 0
			row.Score = finite(h.recent(a.cfg.RecentWindows))
			row.Distance = finite(h.lastDist)
			row.VicScore = finite(h.vicScore)
			row.VicDist = finite(h.vicDist)
			row.Peers = h.peers
			if sparkN > 0 {
				row.Spark = h.last(sparkN)
			}
		}
		st.Nodes = append(st.Nodes, row)
	}
	a.mu.Unlock()
	return st
}

// NodeDetail is the /fleet/nodes/{node} response: the node's full
// retained ring plus its latest status row and the last R vicinity
// residual evaluations (sustained divergence, not just the latest value).
type NodeDetail struct {
	NodeState
	History   []Point         `json:"history"`
	Residuals []ResidualPoint `json:"residuals,omitempty"`
}

// nodeDetail returns the detail view, or false if the aggregator has
// never seen the node.
func (a *Aggregator) nodeDetail(node string) (NodeDetail, bool) {
	st := a.State(0)
	var row NodeState
	found := false
	for _, r := range st.Nodes {
		if r.Node == node {
			row, found = r, true
			break
		}
	}
	a.mu.Lock()
	h, ok := a.nodes[node]
	var hist []Point
	var res []ResidualPoint
	if ok {
		hist = h.last(h.n)
		res = h.residuals()
		if !found {
			// Seen by the tap but already gone from the monitor snapshot;
			// serve what the ring remembers.
			row = NodeState{Node: node, Ready: h.n > 0, Score: finite(h.recent(a.cfg.RecentWindows)),
				Distance: finite(h.lastDist), VicScore: finite(h.vicScore), VicDist: finite(h.vicDist),
				Peers: h.peers, Cluster: h.cluster, Matched: h.matched}
			found = true
		}
	}
	a.mu.Unlock()
	if !found {
		return NodeDetail{}, false
	}
	return NodeDetail{NodeState: row, History: hist, Residuals: res}, true
}

// Handler returns the /fleet/ HTTP handler tree:
//
//	GET /fleet/             embedded d3 dashboard (html/template)
//	GET /fleet/assets/...   static assets (go:embed)
//	GET /fleet/state        fleet state JSON (?spark=N trailing points)
//	GET /fleet/nodes/{node} one node's full history JSON
//	GET /fleet/events       event journal JSON (?since=seq), or a live
//	                        Server-Sent-Events stream when the client
//	                        sends Accept: text/event-stream (or ?stream=1)
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/{$}", a.serveDashboard)
	mux.Handle("GET /fleet/assets/", http.StripPrefix("/fleet/", http.FileServerFS(assetsFS)))
	mux.HandleFunc("GET /fleet/state", a.serveState)
	mux.HandleFunc("GET /fleet/nodes/{node}", a.serveNode)
	mux.HandleFunc("GET /fleet/events", a.serveEvents)
	mux.HandleFunc("GET /fleet/incidents", a.serveIncidents)
	return mux
}

// Mounts adapts Handler to obs.Handler's mount seam.
func (a *Aggregator) Mounts() []obs.Mount {
	return []obs.Mount{{Pattern: "/fleet/", Handler: a.Handler()}}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	// The header is out; an encode/write error has no channel left but the
	// client's own truncated read.
	_ = enc.Encode(v)
}

func (a *Aggregator) serveState(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	a.met.stateReqs.Inc()
	sparkN := a.cfg.Spark
	if s := r.URL.Query().Get("spark"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(w, "bad spark", http.StatusBadRequest)
			return
		}
		sparkN = n
	}
	st := a.State(sparkN)
	writeJSON(w, st)
	// The snapshot seq doubles as the exemplar trace id: it names the
	// exact fleet state this latency sample measured.
	a.met.stateLat.ObserveExemplar(time.Since(start).Seconds(),
		fmt.Sprintf("state-seq-%d", st.Seq), start.Unix())
}

func (a *Aggregator) serveNode(w http.ResponseWriter, r *http.Request) {
	d, ok := a.nodeDetail(r.PathValue("node"))
	if !ok {
		http.Error(w, "unknown node", http.StatusNotFound)
		return
	}
	writeJSON(w, d)
}

// serveIncidents reports the attached summarizer's live and recently
// resolved incident sets; without a summarizer it serves an empty
// snapshot so the dashboard's incident lane degrades gracefully.
func (a *Aggregator) serveIncidents(w http.ResponseWriter, r *http.Request) {
	if s := a.sum.Load(); s != nil {
		writeJSON(w, s.Incidents())
		return
	}
	writeJSON(w, summary.Snapshot{Open: []summary.Incident{}, Resolved: []summary.Incident{}})
}

func (a *Aggregator) serveEvents(w http.ResponseWriter, r *http.Request) {
	EventsServer{
		Journal:   a.journal,
		Bus:       a.bus,
		Buffer:    a.cfg.SSEBuffer,
		KeepAlive: a.cfg.KeepAlive,
		Done:      a.done,
		OnClients: func(delta int) { a.met.sseClients.Add(float64(delta)) },
	}.ServeHTTP(w, r)
}

// EventsServer serves a journal+bus pair as the /fleet/events endpoint:
// JSON replay (?since=seq) by default, a live Server-Sent-Events stream
// when the client asks (Accept: text/event-stream or ?stream=1). The
// aggregator's own endpoint and the coordinator's merged feed are both
// this handler over different journals.
type EventsServer struct {
	Journal *Journal
	Bus     *Bus
	// Buffer is the per-client SSE queue capacity; KeepAlive the
	// comment-ping interval.
	Buffer    int
	KeepAlive time.Duration
	// Done, when non-nil, ends every open stream when closed.
	Done <-chan struct{}
	// OnClients, when non-nil, observes stream open(+1)/close(-1) — the
	// gauge hook.
	OnClients func(delta int)
}

func (s EventsServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	since := uint64(0)
	if q := r.URL.Query().Get("since"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = n
	}
	stream := r.URL.Query().Get("stream") == "1"
	for _, accept := range r.Header.Values("Accept") {
		if accept == "text/event-stream" {
			stream = true
		}
	}
	if !stream {
		writeJSON(w, s.Journal.Since(since))
		return
	}
	s.stream(w, r, since)
}

// stream serves the SSE live feed. The whole stream runs on this
// request's own goroutine — no per-client goroutines exist anywhere in
// the path (Bus.Publish fans out inline), so a disconnect unwinds
// everything via defer and nothing can leak. Subscribe happens *before*
// the journal replay and replayed sequence numbers are deduplicated, so
// no event falls in the gap between replay and live.
func (s EventsServer) stream(w http.ResponseWriter, r *http.Request, since uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	buffer := s.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	keepAlive := s.KeepAlive
	if keepAlive <= 0 {
		keepAlive = 15 * time.Second
	}
	ch := s.Bus.Subscribe(buffer)
	defer s.Bus.Unsubscribe(ch)
	if s.OnClients != nil {
		s.OnClients(1)
		defer s.OnClients(-1)
	}

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	seen := since
	send := func(e Event) bool {
		if e.Seq <= seen {
			return true // replay overlap
		}
		seen = e.Seq
		data, err := json.Marshal(e)
		if err != nil {
			return true // unmarshalable event: skip, keep the stream up
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind, data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	for _, e := range s.Journal.Since(since) {
		if !send(e) {
			return
		}
	}
	fl.Flush()

	keep := time.NewTicker(keepAlive)
	defer keep.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.Done:
			return
		case e := <-ch:
			if !send(e) {
				return
			}
		case <-keep.C:
			// SSE comment line: holds idle connections open and surfaces
			// dead clients as write errors.
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

func (a *Aggregator) serveDashboard(w http.ResponseWriter, r *http.Request) {
	renderDashboard(w, "nodesentry fleet", a.cfg.VicinityThreshold)
}

func renderDashboard(w http.ResponseWriter, title string, threshold float64) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	err := dashboardTmpl.Execute(w, struct {
		Title             string
		VicinityThreshold float64
	}{
		Title:             title,
		VicinityThreshold: threshold,
	})
	if err != nil {
		// Template data is static and the template parses at init; an
		// error here means the client went away mid-write.
		return
	}
}

// DashboardHandler serves the embedded d3 dashboard standalone — the
// coordinator mounts it over its *merged* fleet surface, so one binary
// renders both the per-daemon and the fleet-wide view from the same
// template. The page only talks to /fleet/state, /fleet/nodes/{id} and
// /fleet/events, whatever serves them.
func DashboardHandler(title string, vicinityThreshold float64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		renderDashboard(w, title, vicinityThreshold)
	})
}

// AssetsHandler serves the embedded /fleet/assets/ tree standalone
// (companion to DashboardHandler for non-Aggregator mounts).
func AssetsHandler() http.Handler {
	return http.StripPrefix("/fleet/", http.FileServerFS(assetsFS))
}
