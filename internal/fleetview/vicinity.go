package fleetview

import (
	"fmt"
	"math"
	"time"

	"nodesentry/internal/stats"
)

var nan = math.NaN()

// VicinityAlert reports a node diverging from its job-peer group: its
// recent score or centroid distance sits more than VicinityThreshold
// robust standard deviations above the peer median. It is the fleet-level
// alert reason — fired from peer statistics, not the node's own dynamic
// threshold, so it catches a node that looks normal against its own
// history but abnormal against the machines running the same job
// (Ghiasvand & Ciorba's vicinity argument).
type VicinityAlert struct {
	Node string `json:"node"`
	Job  int64  `json:"job"`
	Ts   int64  `json:"ts"`
	// Signal names which measurement diverged: "score" or "distance".
	Signal string `json:"signal"`
	// Residual is the robust z: 0.6745·(x−median)/MAD against the peers.
	Residual float64 `json:"residual"`
	Value    float64 `json:"value"`
	Median   float64 `json:"median"`
	Peers    int     `json:"peers"`
}

// robustZ is the one-sided robust z-score of x against its peer sample:
// 0.6745·(x−median)/MAD, the standard consistency scaling that makes MAD
// comparable to a Gaussian σ. The MAD is floored at 5 % of |median| (plus
// an absolute epsilon) so a freakishly tight peer group — every node
// scoring 0.0101 vs 0.0100 — cannot manufacture huge residuals out of
// noise. Divergence below the median returns 0: a node *healthier* than
// its peers is not an anomaly.
func robustZ(x, med, mad float64) float64 {
	if x <= med {
		return 0
	}
	floor := 0.05*math.Abs(med) + 1e-9
	if mad < floor {
		mad = floor
	}
	return 0.6745 * (x - med) / mad
}

// madAround is the median absolute deviation of xs around med.
func madAround(xs []float64, med float64) float64 {
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return stats.Median(dev)
}

// peerSample is one node's contribution to its job group's distributions.
type peerSample struct {
	node  string
	score float64 // recent mean window score (NaN before first window)
	dist  float64 // last match distance (NaN before first match)
}

// Evaluate recomputes every node's vicinity residuals against its current
// job-peer group and journals/announces alerts for nodes beyond the
// threshold. It is called by Run on a ticker and directly by tests; it is
// safe concurrently with ingestion. Returns the alerts fired this pass.
func (a *Aggregator) Evaluate() []VicinityAlert {
	now := time.Now().Unix()
	view := a.mon.SnapshotConsistent()

	// Group live nodes by job. The monitor's Job assignment is the
	// vicinity: nodes running the same job are expected to behave alike.
	groups := map[int64][]peerSample{}
	a.mu.Lock()
	for _, ns := range view.Nodes {
		h, ok := a.nodes[ns.Node]
		if !ok {
			continue
		}
		groups[ns.Job] = append(groups[ns.Job], peerSample{
			node:  ns.Node,
			score: h.recent(a.cfg.RecentWindows),
			dist:  h.lastDist,
		})
	}
	a.mu.Unlock()

	type residual struct {
		sample            peerSample
		job               int64
		zScore, zDist     float64
		medScore, medDist float64
		peers             int
	}
	var res []residual
	evaluated := 0
	for job, peers := range groups {
		scores := make([]float64, 0, len(peers))
		dists := make([]float64, 0, len(peers))
		for _, p := range peers {
			if !math.IsNaN(p.score) {
				scores = append(scores, p.score)
			}
			if !math.IsNaN(p.dist) {
				dists = append(dists, p.dist)
			}
		}
		scoreOK := len(scores) >= a.cfg.MinPeers
		distOK := len(dists) >= a.cfg.MinPeers
		if !scoreOK && !distOK {
			continue
		}
		evaluated++
		var medS, madS, medD, madD float64
		if scoreOK {
			medS = stats.Median(scores)
			madS = madAround(scores, medS)
		}
		if distOK {
			medD = stats.Median(dists)
			madD = madAround(dists, medD)
		}
		for _, p := range peers {
			r := residual{sample: p, job: job, zScore: nan, zDist: nan, peers: len(peers)}
			if scoreOK && !math.IsNaN(p.score) {
				r.zScore, r.medScore = robustZ(p.score, medS, madS), medS
			}
			if distOK && !math.IsNaN(p.dist) {
				r.zDist, r.medDist = robustZ(p.dist, medD, madD), medD
			}
			res = append(res, r)
		}
	}

	// Publish residuals into node state + gauges, collect alerts under
	// cooldown. Gauges report 0 (not NaN) before a node is evaluable so
	// the exposition stays parseable.
	var alerts []VicinityAlert
	a.mu.Lock()
	for _, r := range res {
		h, ok := a.nodes[r.sample.node]
		if !ok {
			continue
		}
		h.vicScore, h.vicDist, h.peers = r.zScore, r.zDist, r.peers
		gz := func(z float64) float64 {
			if math.IsNaN(z) {
				return 0
			}
			return z
		}
		h.resScoreG.Set(gz(r.zScore))
		h.resDistG.Set(gz(r.zDist))
		h.pushResidual(ResidualPoint{Ts: now, Score: gz(r.zScore), Dist: gz(r.zDist), Peers: r.peers})

		// A signal fires only on sustained divergence: the current
		// residual is over the threshold AND at least SustainK of the
		// last SustainN evaluations (the residual ring, current pass
		// included) were too. One elevated sample is a blip; k of n is a
		// diverging node.
		thr := a.cfg.VicinityThreshold
		overNow := func(z float64) bool { return !math.IsNaN(z) && z >= thr }
		held := func(dist bool) bool {
			return h.sustained(a.cfg.SustainN, thr, dist) >= a.cfg.SustainK
		}
		signal, z, val, med := "", 0.0, 0.0, 0.0
		switch {
		case overNow(r.zScore) && held(false):
			signal, z, val, med = "score", r.zScore, r.sample.score, r.medScore
		case overNow(r.zDist) && held(true):
			signal, z, val, med = "distance", r.zDist, r.sample.dist, r.medDist
		default:
			continue
		}
		if now-h.lastVicAlert < a.cfg.VicinityCooldownSec {
			continue
		}
		h.lastVicAlert = now
		alerts = append(alerts, VicinityAlert{
			Node: r.sample.node, Job: r.job, Ts: now,
			Signal: signal, Residual: z, Value: val, Median: med, Peers: r.peers,
		})
	}
	a.mu.Unlock()

	a.met.evals.Inc()
	a.met.vicGroups.Set(float64(evaluated))
	for _, al := range alerts {
		a.met.vicAlerts.Inc()
		a.emit(Event{
			Ts:   al.Ts,
			Kind: EventVicinity,
			Node: al.Node,
			Detail: fmt.Sprintf("signal=%s residual=%.2f value=%.4f peer_median=%.4f peers=%d job=%d",
				al.Signal, al.Residual, al.Value, al.Median, al.Peers, al.Job),
			Value: al.Residual,
		})
		if a.log != nil {
			a.log.Info("vicinity alert", "node", al.Node, "job", al.Job,
				"signal", al.Signal, "residual", al.Residual, "peers", al.Peers)
		}
		if a.cfg.OnVicinityAlert != nil {
			a.cfg.OnVicinityAlert(al)
		}
	}
	return alerts
}
