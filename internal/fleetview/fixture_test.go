package fleetview

import (
	"sync"
	"testing"

	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/ingest"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

var (
	fixOnce sync.Once
	fixDS   *dataset.Dataset
	fixDet  *core.Detector
	fixErr  error
)

func fastOpts() core.Options {
	o := core.DefaultOptions()
	o.Epochs = 3
	o.MaxWindowsPerCluster = 60
	o.KMax = 4
	o.RepSegments = 3
	return o
}

func trainInputOf(ds *dataset.Dataset) core.TrainInput {
	in := core.TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: telemetry.SemanticIndex(ds.Catalog),
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	return in
}

// fixture trains one detector on the tiny dataset, shared across the
// package's tests (training dominates wall time).
func fixture(tb testing.TB) (*dataset.Dataset, *core.Detector) {
	tb.Helper()
	fixOnce.Do(func() {
		fixDS = dataset.Build(dataset.Tiny())
		fixDet, fixErr = core.Train(trainInputOf(fixDS), fastOpts())
	})
	if fixErr != nil {
		tb.Fatal(fixErr)
	}
	return fixDS, fixDet
}

// feed replays the dataset's [from, to) window into sink with every metric
// multiplied by mul.
func feed(sink ingest.Sink, ds *dataset.Dataset, from, to int64, mul float64) {
	for _, node := range ds.Nodes() {
		f := ds.Frames[node]
		view := f.Slice(f.IndexOf(from), f.IndexOf(to))
		sink.RegisterNode(node, view.Metrics)
		spans := ds.SpansForNode(node, from, to)
		si := 0
		for t := 0; t < view.Len(); t++ {
			ts := view.Start + int64(t)*view.Step
			for si < len(spans) && spans[si].Start <= ts {
				sink.ObserveJob(node, spans[si].Job, spans[si].Start)
				si++
			}
			row := make([]float64, len(view.Data))
			for m := range row {
				row[m] = view.Data[m][t] * mul
			}
			sink.Ingest(node, ts, row)
		}
	}
}

// feedCohort replays one source node's [from, to) frame into sink under
// count synthetic node names, all observing the same job — a controlled
// peer group for vicinity drills. mulFor picks the per-node multiplier, so
// one node can diverge while its peers stay on the shared baseline.
func feedCohort(sink ingest.Sink, ds *dataset.Dataset, src string, from, to int64, names []string, job int64, mulFor func(node string) float64) {
	f := ds.Frames[src]
	view := f.Slice(f.IndexOf(from), f.IndexOf(to))
	for _, node := range names {
		sink.RegisterNode(node, view.Metrics)
		sink.ObserveJob(node, job, view.Start)
	}
	for t := 0; t < view.Len(); t++ {
		ts := view.Start + int64(t)*view.Step
		for _, node := range names {
			mul := mulFor(node)
			row := make([]float64, len(view.Data))
			for m := range row {
				row[m] = view.Data[m][t] * mul
			}
			sink.Ingest(node, ts, row)
		}
	}
}

// cleanWindow finds a [from, to) span of n samples in src's test split that
// overlaps no injected fault, so threshold alerts inside it reflect only
// the synthetic divergence a drill adds. Returns ok=false when every
// window is contaminated.
func cleanWindow(ds *dataset.Dataset, src string, n int) (from, to int64, ok bool) {
	span := int64(n) * ds.Step
	for from = ds.SplitTime(); from+span <= ds.Horizon; from += span / 2 {
		to = from + span
		dirty := false
		for _, ft := range ds.Faults {
			if ft.Node == src && ft.Start < to && ft.End > from {
				dirty = true
				break
			}
		}
		if !dirty {
			return from, to, true
		}
	}
	return 0, 0, false
}
