package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nodesentry/internal/mts"
)

func TestCatalogMatchesExtractWidth(t *testing.T) {
	cat := Catalog()
	if len(cat) != NumFeatures {
		t.Fatalf("NumFeatures=%d but Catalog has %d entries", NumFeatures, len(cat))
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if got := len(Extract(x)); got != NumFeatures {
		t.Fatalf("Extract produced %d features, catalog says %d", got, NumFeatures)
	}
	// Names must be unique.
	seen := map[string]bool{}
	for _, d := range cat {
		if seen[d.Name] {
			t.Errorf("duplicate feature name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Domain != Statistical && d.Domain != Temporal && d.Domain != Spectral {
			t.Errorf("feature %q has unknown domain %q", d.Name, d.Domain)
		}
	}
}

func TestCatalogCoversThreeDomains(t *testing.T) {
	counts := map[Domain]int{}
	for _, d := range Catalog() {
		counts[d.Domain]++
	}
	for _, dom := range []Domain{Statistical, Temporal, Spectral} {
		if counts[dom] < 10 {
			t.Errorf("domain %s has only %d features, want >= 10", dom, counts[dom])
		}
	}
}

func TestExtractTotalOnDegenerateInputs(t *testing.T) {
	for name, x := range map[string][]float64{
		"empty":    {},
		"single":   {3},
		"pair":     {1, 2},
		"constant": {5, 5, 5, 5, 5, 5},
		"triple":   {1, 2, 3},
	} {
		v := Extract(x)
		if len(v) != NumFeatures {
			t.Fatalf("%s: wrong width %d", name, len(v))
		}
		for i, f := range v {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Errorf("%s: feature %d (%s) = %v", name, i, Catalog()[i].Name, f)
			}
		}
	}
}

func TestExtractFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)-3))
		}
		for _, v := range Extract(x) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestExtractDistinguishesShapes(t *testing.T) {
	// A sine and a ramp of the same mean/amplitude should yield clearly
	// different vectors; two sines of the same frequency should be close.
	n := 256
	sineA := make([]float64, n)
	sineB := make([]float64, n)
	ramp := make([]float64, n)
	for i := range sineA {
		sineA[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
		sineB[i] = math.Sin(2*math.Pi*8*float64(i)/float64(n) + 0.1)
		ramp[i] = 2*float64(i)/float64(n) - 1
	}
	dist := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	va, vb, vr := Extract(sineA), Extract(sineB), Extract(ramp)
	if dist(va, vb) >= dist(va, vr) {
		t.Errorf("similar sines dist %v should be below sine-vs-ramp dist %v",
			dist(va, vb), dist(va, vr))
	}
}

func TestSpectralPeakFeature(t *testing.T) {
	n := 256
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 16 * float64(i) / float64(n))
	}
	v := Extract(x)
	idx := featureIndex(t, "max_power_freq")
	want := 16.0 / 256.0
	if math.Abs(v[idx]-want) > 1e-9 {
		t.Errorf("max_power_freq = %v, want %v", v[idx], want)
	}
}

func featureIndex(t *testing.T, name string) int {
	t.Helper()
	for i, d := range Catalog() {
		if d.Name == name {
			return i
		}
	}
	t.Fatalf("feature %q not in catalog", name)
	return -1
}

func TestHistogramFeaturesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	v := Extract(x)
	start := featureIndex(t, "hist_bin_0")
	sum := 0.0
	for i := 0; i < histBins; i++ {
		sum += v[start+i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram features sum to %v, want 1", sum)
	}
}

func TestBandEnergiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	v := Extract(x)
	start := featureIndex(t, "band_energy_0")
	sum := 0.0
	for i := 0; i < specBands; i++ {
		sum += v[start+i]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("band energies sum to %v, want 1", sum)
	}
}

func segFrame() (*mts.NodeFrame, mts.Segment) {
	f := &mts.NodeFrame{
		Node:    "cn-1",
		Metrics: []string{"a", "b", "c"},
		Data: [][]float64{
			{1, 2, 3, 4, 5, 6, 7, 8},
			{8, 7, 6, 5, 4, 3, 2, 1},
			{0, 0, 0, 0, 1, 1, 1, 1},
		},
		Start: 0, Step: 15,
	}
	return f, mts.Segment{Node: "cn-1", Job: 1, Lo: 2, Hi: 8}
}

func TestSegmentVectorWidth(t *testing.T) {
	f, seg := segFrame()
	v := SegmentVector(f, seg)
	if len(v) != 3*NumFeatures {
		t.Fatalf("segment vector width = %d, want %d", len(v), 3*NumFeatures)
	}
}

func TestMatrixMatchesSegmentVector(t *testing.T) {
	f, seg := segFrame()
	frames := map[string]*mts.NodeFrame{"cn-1": f}
	segs := []mts.Segment{seg, {Node: "cn-1", Job: 2, Lo: 0, Hi: 4}}
	m := Matrix(frames, segs)
	if m.Rows != 2 || m.Cols != 3*NumFeatures {
		t.Fatalf("matrix shape %dx%d", m.Rows, m.Cols)
	}
	want := SegmentVector(f, segs[1])
	for j, v := range want {
		if m.At(1, j) != v {
			t.Fatalf("matrix row differs from SegmentVector at %d", j)
		}
	}
}

func TestMatrixEmpty(t *testing.T) {
	m := Matrix(nil, nil)
	if m.Rows != 0 {
		t.Error("empty segment list should give empty matrix")
	}
}

func TestNormalizeColumns(t *testing.T) {
	f, _ := segFrame()
	frames := map[string]*mts.NodeFrame{"cn-1": f}
	segs := []mts.Segment{
		{Node: "cn-1", Lo: 0, Hi: 4},
		{Node: "cn-1", Lo: 2, Hi: 6},
		{Node: "cn-1", Lo: 4, Hi: 8},
	}
	m := Matrix(frames, segs)
	means, stds := NormalizeColumns(m)
	// Every column should now have ~0 mean; constant columns exactly 0.
	for j := 0; j < m.Cols; j++ {
		s := 0.0
		for i := 0; i < m.Rows; i++ {
			s += m.At(i, j)
		}
		if math.Abs(s/float64(m.Rows)) > 1e-9 {
			t.Fatalf("column %d mean %v after normalization", j, s/float64(m.Rows))
		}
	}
	// ApplyNormalization must reproduce a row transform.
	raw := SegmentVector(f, segs[0])
	ApplyNormalization(raw, means, stds)
	for j := range raw {
		if math.Abs(raw[j]-m.At(0, j)) > 1e-9 {
			t.Fatalf("ApplyNormalization mismatch at col %d: %v vs %v", j, raw[j], m.At(0, j))
		}
	}
}

func BenchmarkExtract256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Extract(x)
	}
}
