package features

import (
	"math"

	"nodesentry/internal/stats"
)

// Extended descriptors closing more of the gap to TSFEL's 134-index
// catalog: Hjorth parameters, fractal/complexity estimates, ECDF
// percentiles, signal-change statistics and additional spectral shape
// measures. They are appended to the base catalog, so feature-vector
// layouts remain append-only stable.

// ecdfPoints is the number of ECDF percentile features.
const ecdfPoints = 5

// ExtendedCatalog lists the additional descriptors in ExtractExtended
// order. They are NOT part of the base Extract layout: enabling them is an
// opt-in (Options-level) choice because every trained artifact pins the
// feature layout it was clustered with.
func ExtendedCatalog() []Descriptor {
	d := []Descriptor{
		// Statistical.
		{"hjorth_activity", Statistical},
		{"root_sum_squares", Statistical},
		{"positive_sum", Statistical},
		{"negative_sum", Statistical},
		{"mean_crossing_rate", Statistical},
	}
	for i := 0; i < ecdfPoints; i++ {
		d = append(d, Descriptor{ecdfName(i), Statistical})
	}
	d = append(d,
		// Temporal.
		Descriptor{"hjorth_mobility", Temporal},
		Descriptor{"hjorth_complexity", Temporal},
		Descriptor{"petrosian_fd", Temporal},
		Descriptor{"slope_sign_changes", Temporal},
		Descriptor{"abs_sum_changes", Temporal},
		Descriptor{"waveform_length", Temporal},
		Descriptor{"wilson_amplitude", Temporal},
		Descriptor{"longest_above_mean", Temporal},
		Descriptor{"longest_below_mean", Temporal},
		Descriptor{"cid_ce", Temporal},
		// Spectral.
		Descriptor{"spectral_flatness", Spectral},
		Descriptor{"spectral_crest", Spectral},
		Descriptor{"spectral_rolloff25", Spectral},
		Descriptor{"spectral_decrease", Spectral},
		Descriptor{"wavelet_var_2", Spectral},
		Descriptor{"wavelet_var_4", Spectral},
		Descriptor{"wavelet_var_8", Spectral},
	)
	return d
}

func ecdfName(i int) string { return "ecdf_p" + string(rune('0'+2*i+1)) + "0" }

// ExtractExtended computes the ExtendedCatalog block.
func ExtractExtended(x []float64) []float64 {
	out := make([]float64, 0, len(ExtendedCatalog()))
	n := len(x)
	mean, sd := stats.MeanStd(x)

	// --- Statistical ---
	out = append(out, sd*sd) // Hjorth activity = variance
	out = append(out, math.Sqrt(stats.AbsEnergy(x)))
	var pos, neg float64
	for _, v := range x {
		if v > 0 {
			pos += v
		} else {
			neg += v
		}
	}
	out = append(out, pos, neg)
	out = append(out, rate(stats.ZeroCrossings(x), n)) // around the mean
	// ECDF percentiles 10/30/50/70/90.
	for i := 0; i < ecdfPoints; i++ {
		out = append(out, finite(stats.Quantile(x, float64(2*i+1)/10)))
	}

	// --- Temporal ---
	d1 := diff(x)
	d2 := diff(d1)
	mobility := ratioStd(d1, x)
	out = append(out, mobility)
	mob2 := ratioStd(d2, d1)
	if mobility > 0 {
		out = append(out, mob2/mobility) // Hjorth complexity
	} else {
		out = append(out, 0)
	}
	out = append(out, petrosianFD(x))
	out = append(out, slopeSignChanges(d1))
	out = append(out, sumAbs(d1))
	out = append(out, sumAbs(d1)) // waveform length == Σ|Δ| for unit steps
	out = append(out, wilsonAmplitude(d1, 0.5*sd))
	above, below := longestRuns(x, mean)
	out = append(out, normRun(above, n), normRun(below, n))
	out = append(out, math.Sqrt(stats.AbsEnergy(d1))) // CID complexity estimate

	// --- Spectral ---
	out = append(out, spectralExtended(x)...)
	return out
}

func ratioStd(num, den []float64) float64 {
	sd := stats.Std(den)
	if sd == 0 {
		return 0
	}
	return stats.Std(num) / sd
}

// petrosianFD is the Petrosian fractal dimension, a cheap waveform
// complexity estimate.
func petrosianFD(x []float64) float64 {
	n := len(x)
	if n < 3 {
		return 0
	}
	d := diff(x)
	changes := slopeSignChangesCount(d)
	if changes == 0 {
		return 0
	}
	nf := float64(n)
	return math.Log10(nf) / (math.Log10(nf) + math.Log10(nf/(nf+0.4*float64(changes))))
}

func slopeSignChangesCount(d []float64) int {
	c := 0
	for i := 0; i+1 < len(d); i++ {
		if d[i]*d[i+1] < 0 {
			c++
		}
	}
	return c
}

func slopeSignChanges(d []float64) float64 {
	if len(d) < 2 {
		return 0
	}
	return float64(slopeSignChangesCount(d)) / float64(len(d)-1)
}

// wilsonAmplitude counts steps whose change exceeds a threshold.
func wilsonAmplitude(d []float64, thr float64) float64 {
	if len(d) == 0 {
		return 0
	}
	c := 0
	for _, v := range d {
		if math.Abs(v) > thr {
			c++
		}
	}
	return float64(c) / float64(len(d))
}

// longestRuns returns the longest consecutive runs above and below the
// mean.
func longestRuns(x []float64, mean float64) (above, below int) {
	curA, curB := 0, 0
	for _, v := range x {
		if v > mean {
			curA++
			curB = 0
		} else {
			curB++
			curA = 0
		}
		if curA > above {
			above = curA
		}
		if curB > below {
			below = curB
		}
	}
	return above, below
}

func normRun(run, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(run) / float64(n)
}

// spectralExtended computes flatness, crest, 25 % rolloff, spectral
// decrease, and Haar-style multiscale variances at scales 2/4/8.
func spectralExtended(x []float64) []float64 {
	out := make([]float64, 0, 7)
	if len(x) < 4 {
		return make([]float64, 7)
	}
	spec, _ := powerSpectrumNoDC(x)
	total := 0.0
	maxP := 0.0
	logSum := 0.0
	nonzero := 0
	for _, v := range spec {
		total += v
		if v > maxP {
			maxP = v
		}
		if v > 0 {
			logSum += math.Log(v)
			nonzero++
		}
	}
	mean := total / float64(len(spec))
	// Flatness: geometric mean / arithmetic mean.
	if mean > 0 && nonzero == len(spec) {
		out = append(out, math.Exp(logSum/float64(len(spec)))/mean)
	} else {
		out = append(out, 0)
	}
	// Crest: peak / mean.
	if mean > 0 {
		out = append(out, maxP/mean)
	} else {
		out = append(out, 0)
	}
	// 25% rolloff.
	freqs := make([]float64, len(spec))
	for k := range freqs {
		freqs[k] = float64(k + 1)
	}
	out = append(out, rolloff(freqs, spec, total, 0.25)/float64(len(spec)))
	// Spectral decrease: energy-weighted decay from the first bin.
	out = append(out, spectralDecrease(spec))
	// Multiscale (Haar-like) variances: variance of block means.
	for _, scale := range []int{2, 4, 8} {
		out = append(out, blockMeanVariance(x, scale))
	}
	return out
}

func powerSpectrumNoDC(x []float64) ([]float64, float64) {
	spec, res := powerSpectrum(x)
	if len(spec) <= 1 {
		return nil, res
	}
	return spec[1:], res
}

func spectralDecrease(p []float64) float64 {
	if len(p) < 2 {
		return 0
	}
	den := 0.0
	num := 0.0
	for k := 1; k < len(p); k++ {
		num += (p[k] - p[0]) / float64(k)
		den += p[k]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// blockMeanVariance computes the variance of non-overlapping block means —
// a wavelet-approximation variance at the given scale.
func blockMeanVariance(x []float64, scale int) float64 {
	if len(x) < 2*scale {
		return 0
	}
	var means []float64
	for lo := 0; lo+scale <= len(x); lo += scale {
		s := 0.0
		for k := 0; k < scale; k++ {
			s += x[lo+k]
		}
		means = append(means, s/float64(scale))
	}
	return stats.Variance(means)
}
