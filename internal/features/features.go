// Package features implements the TSFEL-style feature extractor that turns
// variable-length MTS segments into fixed-width vectors for coarse-grained
// clustering (§3.3 of the paper).
//
// For each metric channel the extractor computes a battery of interpretable
// statistical, temporal and spectral descriptors (the paper uses TSFEL's 134
// indices; this package implements 62 covering the same three domains — the
// exact list is not load-bearing, the fixed-width property and domain
// coverage are). A segment's vector is the concatenation of its channels'
// descriptors, so segments of any length map to the same dimensionality and
// become clusterable with plain Euclidean distance.
package features

import (
	"math"
	"sort"

	"nodesentry/internal/fft"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/stats"
)

// Domain labels the family a feature belongs to.
type Domain string

// Feature domains, mirroring TSFEL's organization.
const (
	Statistical Domain = "statistical"
	Temporal    Domain = "temporal"
	Spectral    Domain = "spectral"
)

// Descriptor names one scalar feature of a single channel.
type Descriptor struct {
	Name   string
	Domain Domain
}

// histBins is the number of relative-frequency histogram features.
const histBins = 10

// specBands is the number of spectral band-energy features.
const specBands = 4

// Catalog returns the ordered list of per-channel descriptors computed by
// Extract. The order is stable and defines the layout of feature vectors.
func Catalog() []Descriptor {
	d := []Descriptor{
		// Statistical.
		{"mean", Statistical},
		{"median", Statistical},
		{"std", Statistical},
		{"variance", Statistical},
		{"min", Statistical},
		{"max", Statistical},
		{"range", Statistical},
		{"rms", Statistical},
		{"abs_energy", Statistical},
		{"skewness", Statistical},
		{"kurtosis", Statistical},
		{"q05", Statistical},
		{"q25", Statistical},
		{"q75", Statistical},
		{"q95", Statistical},
		{"iqr", Statistical},
		{"median_abs_dev", Statistical},
		{"mean_abs_dev", Statistical},
		{"entropy", Statistical},
	}
	for i := 0; i < histBins; i++ {
		d = append(d, Descriptor{histName(i), Statistical})
	}
	d = append(d,
		// Temporal.
		Descriptor{"mac", Temporal},
		Descriptor{"mean_diff", Temporal},
		Descriptor{"median_diff", Temporal},
		Descriptor{"sum_abs_diff", Temporal},
		Descriptor{"slope", Temporal},
		Descriptor{"intercept", Temporal},
		Descriptor{"zero_cross_rate", Temporal},
		Descriptor{"autocorr_1", Temporal},
		Descriptor{"autocorr_2", Temporal},
		Descriptor{"autocorr_5", Temporal},
		Descriptor{"autocorr_10", Temporal},
		Descriptor{"peak_to_peak", Temporal},
		Descriptor{"count_above_mean", Temporal},
		Descriptor{"first_loc_max", Temporal},
		Descriptor{"first_loc_min", Temporal},
		Descriptor{"pos_turning_rate", Temporal},
		Descriptor{"neg_turning_rate", Temporal},
		Descriptor{"signal_distance", Temporal},
		Descriptor{"area_under_curve", Temporal},
		Descriptor{"time_centroid", Temporal},
		// Spectral.
		Descriptor{"max_power", Spectral},
		Descriptor{"max_power_freq", Spectral},
		Descriptor{"spectral_centroid", Spectral},
		Descriptor{"spectral_spread", Spectral},
		Descriptor{"spectral_skewness", Spectral},
		Descriptor{"spectral_kurtosis", Spectral},
		Descriptor{"spectral_rolloff85", Spectral},
		Descriptor{"spectral_entropy", Spectral},
		Descriptor{"median_frequency", Spectral},
		Descriptor{"total_power", Spectral},
		Descriptor{"spectral_slope", Spectral},
		Descriptor{"power_ratio_low", Spectral},
		Descriptor{"spectral_variation", Spectral},
	)
	for i := 0; i < specBands; i++ {
		d = append(d, Descriptor{bandName(i), Spectral})
	}
	return d
}

func histName(i int) string { return "hist_bin_" + string(rune('0'+i)) }
func bandName(i int) string { return "band_energy_" + string(rune('0'+i)) }

// NumFeatures is the number of scalar features Extract produces per channel.
var NumFeatures = len(Catalog())

// Extract computes the per-channel feature vector of x in the Catalog order.
// It is total: any input, including empty and constant series, yields a
// finite vector (degenerate statistics are defined as 0).
func Extract(x []float64) []float64 {
	out := make([]float64, 0, NumFeatures)
	n := len(x)

	// --- Statistical ---
	mean, std := stats.MeanStd(x)
	// One sorted copy serves the median and every quantile; per-quantile
	// Quantile calls each re-copy and re-sort the channel.
	sorted := append([]float64(nil), x...)
	sort.Float64s(sorted)
	med := finite(stats.QuantileSorted(sorted, 0.5))
	mn, mx := stats.Min(x), stats.Max(x)
	if n == 0 {
		mn, mx = 0, 0
	}
	q25 := finite(stats.QuantileSorted(sorted, 0.25))
	q75 := finite(stats.QuantileSorted(sorted, 0.75))
	out = append(out,
		mean, med, std, std*std, mn, mx, mx-mn,
		stats.RMS(x), stats.AbsEnergy(x),
		stats.Skewness(x), stats.Kurtosis(x),
		finite(stats.QuantileSorted(sorted, 0.05)),
		q25,
		q75,
		finite(stats.QuantileSorted(sorted, 0.95)),
		q75-q25,
		medianAbsDev(x, med),
		meanAbsDev(x, mean),
		stats.Entropy(x, histBins),
	)
	hist := stats.Histogram(x, histBins)
	for _, c := range hist {
		if n == 0 {
			out = append(out, 0)
		} else {
			out = append(out, float64(c)/float64(n))
		}
	}

	// --- Temporal ---
	diffs := diff(x)
	slope, intercept := stats.SlopeIntercept(x)
	out = append(out,
		stats.MAC(x),
		stats.Mean(diffs),
		finite(stats.Median(diffs)),
		sumAbs(diffs),
		slope, intercept,
		rate(stats.ZeroCrossings(x), n),
		stats.Autocorr(x, 1),
		stats.Autocorr(x, 2),
		stats.Autocorr(x, 5),
		stats.Autocorr(x, 10),
		mx-mn,
		countAboveRate(x, mean),
		argLoc(x, true),
		argLoc(x, false),
		turningRate(x, true),
		turningRate(x, false),
		signalDistance(x),
		trapezoidArea(x),
		timeCentroid(x),
	)

	// --- Spectral ---
	out = append(out, spectralFeatures(x)...)

	return out
}

func finite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func diff(x []float64) []float64 {
	if len(x) < 2 {
		return nil
	}
	d := make([]float64, len(x)-1)
	for i := range d {
		d[i] = x[i+1] - x[i]
	}
	return d
}

func sumAbs(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

func rate(count, n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(count) / float64(n-1)
}

func countAboveRate(x []float64, mean float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := 0
	for _, v := range x {
		if v > mean {
			c++
		}
	}
	return float64(c) / float64(len(x))
}

// argLoc returns the relative position of the first maximum (max=true)
// or first minimum (max=false) of x.
func argLoc(x []float64, max bool) float64 {
	if len(x) == 0 {
		return 0
	}
	best := 0
	for i, v := range x {
		if (max && v > x[best]) || (!max && v < x[best]) {
			best = i
		}
	}
	return float64(best) / float64(len(x))
}

// turningRate counts local maxima (pos=true) or minima (pos=false) per sample.
func turningRate(x []float64, pos bool) float64 {
	if len(x) < 3 {
		return 0
	}
	c := 0
	for i := 1; i+1 < len(x); i++ {
		if pos && x[i] > x[i-1] && x[i] > x[i+1] {
			c++
		}
		if !pos && x[i] < x[i-1] && x[i] < x[i+1] {
			c++
		}
	}
	return float64(c) / float64(len(x)-2)
}

// signalDistance is the length of the polyline traced by the signal.
func signalDistance(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		d := x[i+1] - x[i]
		s += math.Sqrt(1 + d*d)
	}
	return s
}

func trapezoidArea(x []float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(x); i++ {
		s += (x[i] + x[i+1]) / 2
	}
	return s
}

// timeCentroid is the energy-weighted mean sample index, normalized to [0,1].
func timeCentroid(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	var num, den float64
	for i, v := range x {
		e := v * v
		num += float64(i) * e
		den += e
	}
	if den == 0 {
		return 0
	}
	return num / den / float64(len(x)-1)
}

// spectralFeatures computes the spectral block of the catalog from the
// one-sided power spectrum (DC bin excluded from moments so that a large
// constant offset does not drown the shape information).
func spectralFeatures(x []float64) []float64 {
	out := make([]float64, 0, 13+specBands)
	if len(x) < 4 {
		return make([]float64, 13+specBands)
	}
	spec, res := fft.PowerSpectrum(x)
	p := spec[1:] // drop DC
	freqs := make([]float64, len(p))
	for k := range p {
		freqs[k] = float64(k+1) * res
	}
	total := 0.0
	for _, v := range p {
		total += v
	}
	maxP, maxK := 0.0, 0
	for k, v := range p {
		if v > maxP {
			maxP, maxK = v, k
		}
	}
	centroid, spread, sskew, skurt := spectralMoments(freqs, p, total)
	out = append(out,
		maxP,
		freqs[maxK],
		centroid,
		spread,
		sskew,
		skurt,
		rolloff(freqs, p, total, 0.85),
		spectralEntropy(p, total),
		rolloff(freqs, p, total, 0.50), // median frequency
		total,
		spectralSlope(freqs, p),
		powerRatioLow(p, total),
		spectralVariation(p),
	)
	// Band energies over 4 equal-width frequency bands (fraction of total).
	nb := len(p) / specBands
	for b := 0; b < specBands; b++ {
		lo := b * nb
		hi := lo + nb
		if b == specBands-1 {
			hi = len(p)
		}
		e := 0.0
		for k := lo; k < hi; k++ {
			e += p[k]
		}
		if total > 0 {
			e /= total
		}
		out = append(out, e)
	}
	return out
}

func spectralMoments(freqs, p []float64, total float64) (centroid, spread, skew, kurt float64) {
	if total == 0 {
		return 0, 0, 0, 0
	}
	for k, v := range p {
		centroid += freqs[k] * v
	}
	centroid /= total
	for k, v := range p {
		d := freqs[k] - centroid
		spread += d * d * v
	}
	spread = math.Sqrt(spread / total)
	if spread == 0 {
		return centroid, 0, 0, 0
	}
	for k, v := range p {
		d := (freqs[k] - centroid) / spread
		skew += d * d * d * v
		kurt += d * d * d * d * v
	}
	skew /= total
	kurt = kurt/total - 3
	return centroid, spread, skew, kurt
}

// rolloff returns the frequency below which `frac` of the spectral energy
// lies.
func rolloff(freqs, p []float64, total, frac float64) float64 {
	if total == 0 {
		return 0
	}
	cum := 0.0
	for k, v := range p {
		cum += v
		if cum >= frac*total {
			return freqs[k]
		}
	}
	return freqs[len(freqs)-1]
}

func spectralEntropy(p []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, v := range p {
		if v <= 0 {
			continue
		}
		q := v / total
		h -= q * math.Log(q)
	}
	return h
}

// spectralSlope is the least-squares slope of power vs frequency.
func spectralSlope(freqs, p []float64) float64 {
	n := float64(len(p))
	if len(p) < 2 {
		return 0
	}
	fm, pm := stats.Mean(freqs), stats.Mean(p)
	var num, den float64
	for k := range p {
		df := freqs[k] - fm
		num += df * (p[k] - pm)
		den += df * df
	}
	if den == 0 {
		return 0
	}
	_ = n
	return num / den
}

// powerRatioLow is the fraction of energy in the lowest quarter of bins.
func powerRatioLow(p []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	q := len(p) / 4
	if q == 0 {
		q = 1
	}
	e := 0.0
	for k := 0; k < q && k < len(p); k++ {
		e += p[k]
	}
	return e / total
}

// spectralVariation is the normalized mean absolute difference between
// adjacent spectral bins — a flatness-of-change proxy.
func spectralVariation(p []float64) float64 {
	if len(p) < 2 {
		return 0
	}
	var s, tot float64
	for k := 0; k+1 < len(p); k++ {
		s += math.Abs(p[k+1] - p[k])
		tot += p[k]
	}
	tot += p[len(p)-1]
	if tot == 0 {
		return 0
	}
	return s / tot
}

func medianAbsDev(x []float64, med float64) float64 {
	if len(x) == 0 {
		return 0
	}
	dev := make([]float64, len(x))
	for i, v := range x {
		dev[i] = math.Abs(v - med)
	}
	// dev is local, so sort it in place instead of letting Median copy it.
	sort.Float64s(dev)
	return finite(stats.QuantileSorted(dev, 0.5))
}

func meanAbsDev(x []float64, mean float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += math.Abs(v - mean)
	}
	return s / float64(len(x))
}

// SegmentVector extracts the fixed-width vector of one segment: the
// concatenation of Extract over every metric channel of the segment's slice
// of the frame. Its length is frame.NumMetrics() * NumFeatures.
func SegmentVector(frame *mts.NodeFrame, seg mts.Segment) []float64 {
	out := make([]float64, 0, frame.NumMetrics()*NumFeatures)
	for m := range frame.Data {
		out = append(out, Extract(frame.Data[m][seg.Lo:seg.Hi])...)
	}
	return out
}

// Matrix extracts feature vectors for all segments in parallel. frames maps
// node name to its (preprocessed) frame; segments reference those frames.
// Row i of the result is the vector of segments[i].
func Matrix(frames map[string]*mts.NodeFrame, segments []mts.Segment) *mat.Matrix {
	if len(segments) == 0 {
		return mat.New(0, 0)
	}
	width := frames[segments[0].Node].NumMetrics() * NumFeatures
	out := mat.New(len(segments), width)
	mat.ParallelItems(len(segments), func(i int) {
		seg := segments[i]
		copy(out.Row(i), SegmentVector(frames[seg.Node], seg))
	})
	return out
}

// NormalizeColumns z-scores every column of m in place (columns with zero
// variance are set to 0) so that features on different scales contribute
// comparably to Euclidean distances. It returns the per-column means and
// stds used, for applying the same transform to online feature vectors.
func NormalizeColumns(m *mat.Matrix) (means, stds []float64) {
	means = make([]float64, m.Cols)
	stds = make([]float64, m.Cols)
	if m.Rows == 0 {
		return means, stds
	}
	col := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			col[i] = m.At(i, j)
		}
		mu, sd := stats.MeanStd(col)
		// Columns that are constant up to floating-point noise carry no
		// information; treat them as zero-variance rather than amplifying
		// rounding error into huge z-scores.
		if sd <= 1e-10*(1+math.Abs(mu)) {
			sd = 0
		}
		means[j], stds[j] = mu, sd
		for i := 0; i < m.Rows; i++ {
			if sd == 0 {
				m.Set(i, j, 0)
			} else {
				m.Set(i, j, (m.At(i, j)-mu)/sd)
			}
		}
	}
	return means, stds
}

// ApplyNormalization applies the column transform captured by
// NormalizeColumns to a single vector in place.
func ApplyNormalization(v, means, stds []float64) {
	for j := range v {
		if j >= len(means) {
			return
		}
		if stds[j] == 0 {
			v[j] = 0
		} else {
			v[j] = (v[j] - means[j]) / stds[j]
		}
	}
}

// powerSpectrum adapts the fft helper for the extended spectral features.
func powerSpectrum(x []float64) ([]float64, float64) {
	return fft.PowerSpectrum(x)
}
