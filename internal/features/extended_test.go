package features

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtendedCatalogMatchesExtract(t *testing.T) {
	cat := ExtendedCatalog()
	x := []float64{1, -2, 3, -4, 5, -6, 7, -8, 9, 10}
	v := ExtractExtended(x)
	if len(v) != len(cat) {
		t.Fatalf("ExtractExtended produced %d values, catalog has %d", len(v), len(cat))
	}
	seen := map[string]bool{}
	base := Catalog()
	baseNames := map[string]bool{}
	for _, d := range base {
		baseNames[d.Name] = true
	}
	for _, d := range cat {
		if seen[d.Name] {
			t.Errorf("duplicate extended feature %q", d.Name)
		}
		if baseNames[d.Name] {
			t.Errorf("extended feature %q collides with the base catalog", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestExtendedTotalOnDegenerateInputs(t *testing.T) {
	for name, x := range map[string][]float64{
		"empty":    {},
		"single":   {3},
		"pair":     {1, 2},
		"constant": {5, 5, 5, 5, 5, 5},
	} {
		v := ExtractExtended(x)
		if len(v) != len(ExtendedCatalog()) {
			t.Fatalf("%s: wrong width", name)
		}
		for i, f := range v {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				t.Errorf("%s: extended feature %d (%s) = %v", name, i, ExtendedCatalog()[i].Name, f)
			}
		}
	}
}

func TestExtendedFiniteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
		}
		for _, v := range ExtractExtended(x) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func extIndex(t *testing.T, name string) int {
	t.Helper()
	for i, d := range ExtendedCatalog() {
		if d.Name == name {
			return i
		}
	}
	t.Fatalf("extended feature %q not found", name)
	return -1
}

func TestHjorthParameters(t *testing.T) {
	// White noise has higher mobility than a slow sine.
	rng := rand.New(rand.NewSource(1))
	noise := make([]float64, 512)
	sine := make([]float64, 512)
	for i := range noise {
		noise[i] = rng.NormFloat64()
		sine[i] = math.Sin(2 * math.Pi * float64(i) / 128)
	}
	mi := extIndex(t, "hjorth_mobility")
	if ExtractExtended(noise)[mi] <= ExtractExtended(sine)[mi] {
		t.Error("noise should have higher Hjorth mobility than a slow sine")
	}
	ai := extIndex(t, "hjorth_activity")
	if got := ExtractExtended(sine)[ai]; math.Abs(got-0.5) > 0.05 {
		t.Errorf("sine activity (variance) = %v, want ~0.5", got)
	}
}

func TestSpectralFlatnessOrdering(t *testing.T) {
	// White noise is spectrally flat; a pure tone is not.
	rng := rand.New(rand.NewSource(2))
	noise := make([]float64, 256)
	tone := make([]float64, 256)
	for i := range noise {
		noise[i] = rng.NormFloat64()
		tone[i] = math.Sin(2 * math.Pi * 16 * float64(i) / 256)
	}
	fi := extIndex(t, "spectral_flatness")
	fn := ExtractExtended(noise)[fi]
	ft := ExtractExtended(tone)[fi]
	if fn <= ft {
		t.Errorf("noise flatness %v should exceed tone flatness %v", fn, ft)
	}
	ci := extIndex(t, "spectral_crest")
	if ExtractExtended(tone)[ci] <= ExtractExtended(noise)[ci] {
		t.Error("tone crest should exceed noise crest")
	}
}

func TestLongestRunFeatures(t *testing.T) {
	x := []float64{1, 1, 1, 1, -1, -1, 0, 0, 0, 0} // mean 0.2
	ai := extIndex(t, "longest_above_mean")
	bi := extIndex(t, "longest_below_mean")
	v := ExtractExtended(x)
	if v[ai] != 0.4 { // 4 samples above mean out of 10
		t.Errorf("longest above = %v, want 0.4", v[ai])
	}
	if v[bi] != 0.6 { // trailing 6 samples <= mean
		t.Errorf("longest below = %v, want 0.6", v[bi])
	}
}

func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := make([]float64, 100)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	v := ExtractExtended(x)
	lo := extIndex(t, "ecdf_p10")
	prev := math.Inf(-1)
	for i := 0; i < ecdfPoints; i++ {
		if v[lo+i] < prev {
			t.Fatal("ECDF percentiles not monotone")
		}
		prev = v[lo+i]
	}
}

func TestPetrosianFDRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	fd := petrosianFD(x)
	if fd < 0.9 || fd > 1.2 {
		t.Errorf("Petrosian FD of noise = %v, want ~1.0-1.1", fd)
	}
	if petrosianFD([]float64{1, 2, 3, 4}) != 0 {
		t.Error("monotone ramp has no slope changes -> 0")
	}
}

func BenchmarkExtractExtended256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractExtended(x)
	}
}
