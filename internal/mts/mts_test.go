package mts

import (
	"math"
	"testing"
	"testing/quick"
)

func testFrame() *NodeFrame {
	return &NodeFrame{
		Node:    "cn-1",
		Metrics: []string{"cpu", "mem"},
		Data: [][]float64{
			{0, 1, 2, 3, 4, 5},
			{10, 11, 12, 13, 14, 15},
		},
		Start: 1000,
		Step:  15,
	}
}

func TestFrameBasics(t *testing.T) {
	f := testFrame()
	if err := f.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := f.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
	if got := f.NumMetrics(); got != 2 {
		t.Errorf("NumMetrics = %d, want 2", got)
	}
	if got := f.TimeAt(2); got != 1030 {
		t.Errorf("TimeAt(2) = %d, want 1030", got)
	}
}

func TestIndexOfClamps(t *testing.T) {
	f := testFrame()
	cases := []struct {
		ts   int64
		want int
	}{
		{900, 0},    // before start
		{1000, 0},   // at start
		{1014, 0},   // within first sample
		{1015, 1},   // second sample
		{1089, 5},   // last sample
		{1090, 6},   // end of frame
		{99999, 6},  // far past end
		{-99999, 0}, // far before start
	}
	for _, c := range cases {
		if got := f.IndexOf(c.ts); got != c.want {
			t.Errorf("IndexOf(%d) = %d, want %d", c.ts, got, c.want)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	f := testFrame()
	f.Metrics = f.Metrics[:1]
	if f.Validate() == nil {
		t.Error("Validate accepted mismatched metric names")
	}
	f = testFrame()
	f.Data[1] = f.Data[1][:3]
	if f.Validate() == nil {
		t.Error("Validate accepted ragged rows")
	}
	f = testFrame()
	f.Step = 0
	if f.Validate() == nil {
		t.Error("Validate accepted zero step")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := testFrame()
	g := f.Clone()
	g.Data[0][0] = 99
	g.Metrics[0] = "x"
	if f.Data[0][0] == 99 || f.Metrics[0] == "x" {
		t.Error("Clone shares state with the original")
	}
}

func TestSliceView(t *testing.T) {
	f := testFrame()
	g := f.Slice(2, 5)
	if g.Len() != 3 {
		t.Fatalf("Slice Len = %d, want 3", g.Len())
	}
	if g.Start != f.TimeAt(2) {
		t.Errorf("Slice Start = %d, want %d", g.Start, f.TimeAt(2))
	}
	if g.Data[0][0] != 2 || g.Data[1][2] != 14 {
		t.Errorf("Slice data wrong: %v", g.Data)
	}
}

func TestWindow(t *testing.T) {
	f := testFrame()
	w := f.Window(3)
	if w[0] != 3 || w[1] != 13 {
		t.Errorf("Window(3) = %v, want [3 13]", w)
	}
}

func TestNormalizeIntervals(t *testing.T) {
	got := NormalizeIntervals([]Interval{
		{10, 20}, {5, 12}, {30, 30}, {25, 28}, {19, 22},
	})
	want := []Interval{{5, 22}, {25, 28}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestNormalizeIntervalsProperty(t *testing.T) {
	// After normalization: sorted, non-overlapping, non-empty, and total
	// coverage never exceeds input coverage bounds.
	f := func(starts []int16, lens []uint8) bool {
		n := len(starts)
		if len(lens) < n {
			n = len(lens)
		}
		ivs := make([]Interval, 0, n)
		for i := 0; i < n; i++ {
			s := int64(starts[i])
			ivs = append(ivs, Interval{s, s + int64(lens[i])})
		}
		out := NormalizeIntervals(ivs)
		for i, iv := range out {
			if iv.End <= iv.Start {
				return false
			}
			if i > 0 && out[i-1].End >= iv.Start+1 && out[i-1].End > iv.Start {
				return false
			}
			if i > 0 && out[i-1].Start >= iv.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelsMask(t *testing.T) {
	f := testFrame()
	l := Labels{}
	l.Add("cn-1", Interval{f.TimeAt(1), f.TimeAt(3)})
	mask := l.Mask(f)
	want := []bool{false, true, true, false, false, false}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestLabelsMaskForeignNode(t *testing.T) {
	f := testFrame()
	l := Labels{}
	l.Add("other", Interval{f.TimeAt(0), f.TimeAt(5)})
	for i, b := range l.Mask(f) {
		if b {
			t.Fatalf("mask[%d] set for unlabeled node", i)
		}
	}
}

func TestAnomalyRatio(t *testing.T) {
	f := testFrame()
	l := Labels{}
	l.Add("cn-1", Interval{f.TimeAt(0), f.TimeAt(3)})
	got := l.AnomalyRatio([]*NodeFrame{f})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("AnomalyRatio = %v, want 0.5", got)
	}
}

func TestIntervalPredicates(t *testing.T) {
	iv := Interval{10, 20}
	if !iv.Contains(10) || iv.Contains(20) || !iv.Contains(19) {
		t.Error("Contains is wrong at boundaries")
	}
	if !iv.Overlaps(Interval{19, 25}) || iv.Overlaps(Interval{20, 25}) {
		t.Error("Overlaps is wrong at boundaries")
	}
}

func TestCountMissing(t *testing.T) {
	f := testFrame()
	f.Data[0][1] = math.NaN()
	f.Data[1][4] = math.NaN()
	if got := CountMissing(f); got != 2 {
		t.Errorf("CountMissing = %d, want 2", got)
	}
}

func TestTotalPoints(t *testing.T) {
	f := testFrame()
	if got := TotalPoints([]*NodeFrame{f, f}); got != 24 {
		t.Errorf("TotalPoints = %d, want 24", got)
	}
}

func TestJobSpanDuration(t *testing.T) {
	s := JobSpan{Job: 1, Node: "cn-1", Start: 100, End: 400}
	if s.Duration() != 300 {
		t.Errorf("Duration = %d, want 300", s.Duration())
	}
}

func TestSegmentLen(t *testing.T) {
	s := Segment{Lo: 5, Hi: 12}
	if s.Len() != 7 {
		t.Errorf("Segment.Len = %d, want 7", s.Len())
	}
}
