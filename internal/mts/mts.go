// Package mts defines the core multivariate-time-series (MTS) types shared by
// every stage of the NodeSentry pipeline: per-node metric frames, job spans
// obtained from the scheduler, job-delimited segments, and labeled anomaly
// intervals.
//
// Conventions:
//   - Time is Unix seconds. All samples of a frame lie on a regular grid
//     Start + i*Step.
//   - Missing samples are represented as NaN and repaired by the
//     preprocessing stage.
//   - Data is laid out metric-major: Data[m][t] is metric m at sample t,
//     which is the access pattern of feature extraction and standardization.
package mts

import (
	"fmt"
	"math"
	"sort"
)

// NodeFrame holds the multivariate time series collected from one compute
// node: len(Metrics) series of equal length on a regular time grid.
type NodeFrame struct {
	// Node is the node's name, e.g. "cn-0042".
	Node string
	// Metrics names Data rows; Metrics[m] describes Data[m].
	Metrics []string
	// Data is metric-major: Data[m][t].
	Data [][]float64
	// Start is the Unix timestamp (seconds) of sample 0.
	Start int64
	// Step is the sampling interval in seconds (15 in the paper).
	Step int64
}

// Len returns the number of samples per metric, 0 for an empty frame.
func (f *NodeFrame) Len() int {
	if len(f.Data) == 0 {
		return 0
	}
	return len(f.Data[0])
}

// NumMetrics returns the number of metric rows.
func (f *NodeFrame) NumMetrics() int { return len(f.Data) }

// TimeAt returns the Unix timestamp of sample i.
func (f *NodeFrame) TimeAt(i int) int64 { return f.Start + int64(i)*f.Step }

// IndexOf returns the sample index containing Unix time ts, clamped to
// [0, Len()]. A time before Start maps to 0; a time at or past the end of
// the frame maps to Len().
func (f *NodeFrame) IndexOf(ts int64) int {
	if f.Step <= 0 {
		return 0
	}
	i := int((ts - f.Start) / f.Step)
	if i < 0 {
		return 0
	}
	if n := f.Len(); i > n {
		return n
	}
	return i
}

// Validate checks the structural invariants of the frame: metric names match
// rows, all rows have equal length, and Step is positive.
func (f *NodeFrame) Validate() error {
	if len(f.Metrics) != len(f.Data) {
		return fmt.Errorf("mts: frame %q has %d metric names but %d rows", f.Node, len(f.Metrics), len(f.Data))
	}
	if f.Step <= 0 {
		return fmt.Errorf("mts: frame %q has non-positive step %d", f.Node, f.Step)
	}
	n := f.Len()
	for m, row := range f.Data {
		if len(row) != n {
			return fmt.Errorf("mts: frame %q metric %q has %d samples, want %d", f.Node, f.Metrics[m], len(row), n)
		}
	}
	return nil
}

// Clone returns a deep copy of the frame.
func (f *NodeFrame) Clone() *NodeFrame {
	g := &NodeFrame{
		Node:    f.Node,
		Metrics: append([]string(nil), f.Metrics...),
		Data:    make([][]float64, len(f.Data)),
		Start:   f.Start,
		Step:    f.Step,
	}
	for m, row := range f.Data {
		g.Data[m] = append([]float64(nil), row...)
	}
	return g
}

// Slice returns a view of samples [lo, hi) sharing the frame's backing
// arrays. The returned frame must not be mutated independently.
func (f *NodeFrame) Slice(lo, hi int) *NodeFrame {
	g := &NodeFrame{
		Node:    f.Node,
		Metrics: f.Metrics,
		Data:    make([][]float64, len(f.Data)),
		Start:   f.Start + int64(lo)*f.Step,
		Step:    f.Step,
	}
	for m, row := range f.Data {
		g.Data[m] = row[lo:hi]
	}
	return g
}

// Window returns the t-th column of the frame: the metric vector observed at
// sample t. The result is freshly allocated.
func (f *NodeFrame) Window(t int) []float64 {
	v := make([]float64, len(f.Data))
	for m := range f.Data {
		v[m] = f.Data[m][t]
	}
	return v
}

// JobSpan is the per-node view of one scheduler accounting record: job Job
// occupied node Node from Start to End (Unix seconds, half-open). Idle gaps
// between jobs are represented by the preprocessing stage as synthetic spans
// with Job == IdleJobID, matching the paper's treatment of idle waiting as a
// special job.
type JobSpan struct {
	Job   int64
	Node  string
	Start int64
	End   int64
}

// IdleJobID marks synthetic spans covering idle waiting periods.
const IdleJobID int64 = -1

// Duration returns the span length in seconds.
func (s JobSpan) Duration() int64 { return s.End - s.Start }

// Segment is a job-delimited slice of a node's frame: the node's continuous
// pattern during one job (or one idle period). Lo/Hi are sample indices into
// the owning frame, half-open.
type Segment struct {
	Node string
	Job  int64
	Lo   int
	Hi   int
	// Offset is the position of sample Lo within the job, in samples: 0
	// when the job started inside the frame, positive when the frame
	// clips a job already in progress (e.g. a test split that begins
	// mid-job). Positional encodings use Offset so that within-job
	// positions stay aligned with the job's true timeline.
	Offset int
}

// Len returns the number of samples in the segment.
func (s Segment) Len() int { return s.Hi - s.Lo }

// Interval is a half-open interval of Unix seconds [Start, End).
type Interval struct {
	Start int64
	End   int64
}

// Contains reports whether ts lies inside the interval.
func (iv Interval) Contains(ts int64) bool { return ts >= iv.Start && ts < iv.End }

// Overlaps reports whether the two intervals intersect.
func (iv Interval) Overlaps(o Interval) bool { return iv.Start < o.End && o.Start < iv.End }

// Labels maps a node name to its ground-truth anomalous intervals, kept
// sorted by start time and non-overlapping (see Normalize).
type Labels map[string][]Interval

// Add inserts an interval for node and re-normalizes that node's list.
func (l Labels) Add(node string, iv Interval) {
	l[node] = NormalizeIntervals(append(l[node], iv))
}

// Mask rasterizes the node's intervals onto the frame's sample grid:
// out[t] is true when sample t falls inside any labeled interval.
func (l Labels) Mask(f *NodeFrame) []bool {
	out := make([]bool, f.Len())
	for _, iv := range l[f.Node] {
		lo := f.IndexOf(iv.Start)
		hi := f.IndexOf(iv.End)
		for t := lo; t < hi && t < len(out); t++ {
			out[t] = true
		}
	}
	return out
}

// AnomalyRatio returns labeled samples / total samples across the frames.
func (l Labels) AnomalyRatio(frames []*NodeFrame) float64 {
	var anom, total int
	for _, f := range frames {
		total += f.Len()
		for _, b := range l.Mask(f) {
			if b {
				anom++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(anom) / float64(total)
}

// NormalizeIntervals sorts intervals by start and merges overlapping or
// touching ones, dropping empty intervals.
func NormalizeIntervals(ivs []Interval) []Interval {
	keep := ivs[:0]
	for _, iv := range ivs {
		if iv.End > iv.Start {
			keep = append(keep, iv)
		}
	}
	sort.Slice(keep, func(i, j int) bool { return keep[i].Start < keep[j].Start })
	out := keep[:0]
	for _, iv := range keep {
		if n := len(out); n > 0 && iv.Start <= out[n-1].End {
			if iv.End > out[n-1].End {
				out[n-1].End = iv.End
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// CountMissing returns the number of NaN samples in the frame.
func CountMissing(f *NodeFrame) int {
	n := 0
	for _, row := range f.Data {
		for _, v := range row {
			if math.IsNaN(v) {
				n++
			}
		}
	}
	return n
}

// TotalPoints returns the total number of samples (metrics × time) across
// the frames, as reported in the paper's Table 2.
func TotalPoints(frames []*NodeFrame) int64 {
	var n int64
	for _, f := range frames {
		n += int64(f.NumMetrics()) * int64(f.Len())
	}
	return n
}
