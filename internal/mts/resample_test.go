package mts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rampFrame(n int, step int64) *NodeFrame {
	row := make([]float64, n)
	for i := range row {
		row[i] = float64(i)
	}
	return &NodeFrame{Node: "n", Metrics: []string{"m"}, Data: [][]float64{row}, Start: 0, Step: step}
}

func TestDownsample(t *testing.T) {
	f := rampFrame(7, 60)
	g := Downsample(f, 3)
	if g.Step != 180 || g.Len() != 2 {
		t.Fatalf("shape step=%d len=%d", g.Step, g.Len())
	}
	if g.Data[0][0] != 1 || g.Data[0][1] != 4 { // means of (0,1,2) and (3,4,5)
		t.Errorf("data = %v", g.Data[0])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDownsampleSkipsNaN(t *testing.T) {
	f := rampFrame(4, 60)
	f.Data[0][1] = math.NaN()
	g := Downsample(f, 2)
	if g.Data[0][0] != 0 { // only the 0 survives in the first bucket
		t.Errorf("bucket mean = %v, want 0", g.Data[0][0])
	}
	f.Data[0][0] = math.NaN()
	g = Downsample(f, 2)
	if !math.IsNaN(g.Data[0][0]) {
		t.Error("all-NaN bucket should stay NaN")
	}
}

func TestUpsampleInterpolates(t *testing.T) {
	f := rampFrame(3, 60) // 0, 1, 2
	g := Upsample(f, 2)
	if g.Step != 30 || g.Len() != 5 {
		t.Fatalf("shape step=%d len=%d", g.Step, g.Len())
	}
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i, w := range want {
		if math.Abs(g.Data[0][i]-w) > 1e-12 {
			t.Fatalf("data = %v, want %v", g.Data[0], want)
		}
	}
}

func TestUpsampleFactorOne(t *testing.T) {
	f := rampFrame(3, 60)
	g := Upsample(f, 1)
	if g.Len() != 3 || g.Step != 60 {
		t.Error("factor 1 should clone")
	}
	g.Data[0][0] = 99
	if f.Data[0][0] == 99 {
		t.Error("factor-1 upsample shares data")
	}
}

func TestAlignToStep(t *testing.T) {
	f := rampFrame(8, 60)
	if g, ok := AlignToStep(f, 60); !ok || g.Len() != 8 {
		t.Error("same step misbehaved")
	}
	if g, ok := AlignToStep(f, 120); !ok || g.Step != 120 || g.Len() != 4 {
		t.Error("downsample path misbehaved")
	}
	if g, ok := AlignToStep(f, 30); !ok || g.Step != 30 {
		t.Error("upsample path misbehaved")
	}
	if _, ok := AlignToStep(f, 45); ok {
		t.Error("non-multiple step should fail")
	}
}

func TestResampleRoundTripProperty(t *testing.T) {
	// Upsample then downsample by the same factor reproduces the original
	// samples exactly (the original points are preserved on the fine grid
	// and bucket means of a linear interpolation re-center... for exact
	// recovery use the identity positions: downsampling the upsampled
	// ramp averages interpolated points, so compare with tolerance).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.NormFloat64() * 10
		}
		frame := &NodeFrame{Node: "n", Metrics: []string{"m"}, Data: [][]float64{row}, Start: 0, Step: 60}
		factor := 2 + rng.Intn(3)
		up := Upsample(frame, factor)
		// Original samples survive on the fine grid.
		for i := 0; i < n; i++ {
			if math.Abs(up.Data[0][i*factor]-row[i]) > 1e-9 {
				return false
			}
		}
		// Downsampling keeps the overall mean within the interpolation
		// error bound.
		down := Downsample(up, factor)
		return down.Len() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
