package mts

import "math"

// Resampling utilities: real deployments mix sampling rates (the paper's
// systems sample at 15 s; our presets at 60 s; archived data is often
// downsampled further), and detectors trained at one rate must consume
// data at another. These helpers convert frames between steps.

// Downsample returns a new frame whose step is factor× the input's, each
// output sample averaging `factor` consecutive inputs (NaNs are skipped;
// an all-NaN bucket stays NaN). The trailing partial bucket is dropped.
func Downsample(f *NodeFrame, factor int) *NodeFrame {
	if factor <= 1 {
		return f.Clone()
	}
	outLen := f.Len() / factor
	g := &NodeFrame{
		Node:    f.Node,
		Metrics: append([]string(nil), f.Metrics...),
		Data:    make([][]float64, f.NumMetrics()),
		Start:   f.Start,
		Step:    f.Step * int64(factor),
	}
	for m, row := range f.Data {
		out := make([]float64, outLen)
		for t := 0; t < outLen; t++ {
			sum, n := 0.0, 0
			for k := 0; k < factor; k++ {
				v := row[t*factor+k]
				if math.IsNaN(v) {
					continue
				}
				sum += v
				n++
			}
			if n == 0 {
				out[t] = math.NaN()
			} else {
				out[t] = sum / float64(n)
			}
		}
		g.Data[m] = out
	}
	return g
}

// Upsample returns a new frame whose step is the input's divided by
// factor, linearly interpolating between consecutive samples (the last
// sample is repeated for the final sub-steps). NaN neighbours propagate
// NaN, matching the cleaning stage's contract that repair happens there.
func Upsample(f *NodeFrame, factor int) *NodeFrame {
	if factor <= 1 {
		return f.Clone()
	}
	n := f.Len()
	if n == 0 {
		g := f.Clone()
		g.Step = f.Step / int64(factor)
		return g
	}
	outLen := (n-1)*factor + 1
	g := &NodeFrame{
		Node:    f.Node,
		Metrics: append([]string(nil), f.Metrics...),
		Data:    make([][]float64, f.NumMetrics()),
		Start:   f.Start,
		Step:    f.Step / int64(factor),
	}
	if g.Step == 0 {
		g.Step = 1
	}
	for m, row := range f.Data {
		out := make([]float64, outLen)
		for t := 0; t+1 < n; t++ {
			a, b := row[t], row[t+1]
			for k := 0; k < factor; k++ {
				idx := t*factor + k
				if math.IsNaN(a) || math.IsNaN(b) {
					if k == 0 {
						out[idx] = a
					} else {
						out[idx] = math.NaN()
					}
					continue
				}
				frac := float64(k) / float64(factor)
				out[idx] = a + (b-a)*frac
			}
		}
		out[outLen-1] = row[n-1]
		g.Data[m] = out
	}
	return g
}

// AlignToStep converts a frame to the target step using Downsample or
// Upsample; a non-multiple relationship returns the frame unchanged with
// ok == false.
func AlignToStep(f *NodeFrame, step int64) (out *NodeFrame, ok bool) {
	switch {
	case f.Step == step:
		return f, true
	case step > f.Step && step%f.Step == 0:
		return Downsample(f, int(step/f.Step)), true
	case step < f.Step && f.Step%step == 0:
		return Upsample(f, int(f.Step/step)), true
	default:
		return f, false
	}
}
