package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for n, want := range cases {
		if got := NextPow2(n); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		want := DFTNaive(x)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-8*float64(n) {
				t.Fatalf("n=%d k=%d: FFT=%v DFT=%v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FFT should panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 6))
}

func TestIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 128)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := IFFT(FFT(x))
	for i := range x {
		if cmplx.Abs(x[i]-y[i]) > 1e-9 {
			t.Fatalf("round trip differs at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		a := complex(rng.NormFloat64(), 0)
		x := make([]complex128, n)
		y := make([]complex128, n)
		z := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			y[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			z[i] = a*x[i] + y[i]
		}
		fx, fy, fz := FFT(x), FFT(y), FFT(z)
		for k := range fz {
			if cmplx.Abs(fz[k]-(a*fx[k]+fy[k])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Σ|x|² == (1/n) Σ|X|²
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		x := make([]complex128, n)
		var tsum float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tsum += real(x[i]) * real(x[i])
		}
		var fsum float64
		for _, v := range FFT(x) {
			fsum += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tsum-fsum/float64(n)) < 1e-7*tsum+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerSpectrumPeak(t *testing.T) {
	// A sine at bin 8 of a 64-sample window should dominate the spectrum.
	n := 64
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * 8 * float64(i) / float64(n))
	}
	spec, res := PowerSpectrum(x)
	if res != 1.0/64 {
		t.Errorf("resolution = %v, want 1/64", res)
	}
	peak := 0
	for k := range spec {
		if spec[k] > spec[peak] {
			peak = k
		}
	}
	if peak != 8 {
		t.Errorf("spectral peak at bin %d, want 8", peak)
	}
}

func TestPowerSpectrumEmpty(t *testing.T) {
	spec, res := PowerSpectrum(nil)
	if spec != nil || res != 0 {
		t.Error("empty input should give nil spectrum")
	}
}

func TestRealFFTPads(t *testing.T) {
	spec, n := RealFFT(make([]float64, 100))
	if n != 128 || len(spec) != 128 {
		t.Errorf("RealFFT padded to %d, want 128", n)
	}
}

func TestFFTDCComponent(t *testing.T) {
	x := []float64{1, 1, 1, 1}
	spec, _ := RealFFT(x)
	if cmplx.Abs(spec[0]-4) > 1e-12 {
		t.Errorf("DC bin = %v, want 4", spec[0])
	}
	for k := 1; k < 4; k++ {
		if cmplx.Abs(spec[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, spec[k])
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}
