// Package fft implements the discrete Fourier transforms backing the
// spectral features of the feature extractor: an iterative radix-2
// Cooley-Tukey FFT with zero-padding for arbitrary lengths, a real-input
// helper, and power-spectrum utilities.
package fft

import "math"

// NextPow2 returns the smallest power of two >= n (minimum 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT computes the in-place-free forward DFT of x, whose length must be a
// power of two, returning a new slice. It uses the iterative bit-reversal
// Cooley-Tukey algorithm.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		//lint:ignore libpanic the power-of-two precondition is a caller bug; all callers pad via NextPow2
		panic("fft: length must be a power of two")
	}
	out := make([]complex128, n)
	// Bit-reversal permutation.
	shift := 64 - uintLog2(uint(n))
	for i := range x {
		out[reverseBits(uint(i))>>shift] = x[i]
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := -2 * math.Pi / float64(size)
		wBase := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := out[start+k]
				b := out[start+k+half] * w
				out[start+k] = a + b
				out[start+k+half] = a - b
				w *= wBase
			}
		}
	}
	return out
}

// IFFT computes the inverse DFT of x (power-of-two length), normalized by
// 1/n.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	conj := make([]complex128, n)
	for i, v := range x {
		conj[i] = complex(real(v), -imag(v))
	}
	y := FFT(conj)
	inv := 1 / float64(n)
	for i, v := range y {
		y[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return y
}

// RealFFT zero-pads x to the next power of two and returns the forward DFT
// of the padded signal together with the padded length.
func RealFFT(x []float64) ([]complex128, int) {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	return FFT(buf), n
}

// PowerSpectrum returns the one-sided power spectrum of x: |X_k|² for
// k = 0..n/2, computed on the zero-padded signal. The second return value is
// the frequency resolution in cycles per sample.
func PowerSpectrum(x []float64) ([]float64, float64) {
	if len(x) == 0 {
		return nil, 0
	}
	spec, n := RealFFT(x)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		re, im := real(spec[k]), imag(spec[k])
		out[k] = re*re + im*im
	}
	return out, 1 / float64(n)
}

// DFTNaive computes the forward DFT directly in O(n²); used as a test oracle
// and for tiny inputs.
func DFTNaive(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			s += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = s
	}
	return out
}

func uintLog2(n uint) uint {
	var l uint
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

func reverseBits(v uint) uint {
	v = v>>32 | v<<32
	v = v>>16&0x0000ffff0000ffff | v&0x0000ffff0000ffff<<16
	v = v>>8&0x00ff00ff00ff00ff | v&0x00ff00ff00ff00ff<<8
	v = v>>4&0x0f0f0f0f0f0f0f0f | v&0x0f0f0f0f0f0f0f0f<<4
	v = v>>2&0x3333333333333333 | v&0x3333333333333333<<2
	v = v>>1&0x5555555555555555 | v&0x5555555555555555<<1
	return v
}
