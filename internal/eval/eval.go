// Package eval implements the paper's evaluation protocol (§4.1.4):
// point-wise Precision, Recall, AUC and F1 with
//
//  1. the point-adjustment strategy — a ground-truth anomalous interval
//     counts as fully detected if the detector fires anywhere inside it
//     (practical, since operators react to the first alarm); and
//  2. exclusion of the first/last minute around every pattern (job)
//     transition, where metrics legitimately deviate.
//
// Per-node Precision/Recall/AUC are averaged across nodes and the reported
// F1 is derived from the averaged Precision and Recall, exactly as in the
// paper.
package eval

import (
	"math"
	"sort"

	"nodesentry/internal/mts"
)

// AdjustPredictions applies the point-adjustment strategy: for every
// maximal run of true labels, if pred fires at any sample of the run, the
// whole run is marked predicted. Samples where ignore is true are skipped
// entirely (treated as not part of any run). The input slices must have
// equal length; pred is not modified.
func AdjustPredictions(pred, label, ignore []bool) []bool {
	out := append([]bool(nil), pred...)
	n := len(label)
	for i := 0; i < n; {
		if !label[i] || skip(ignore, i) {
			i++
			continue
		}
		j := i
		hit := false
		for j < n && label[j] && !skip(ignore, j) {
			if pred[j] {
				hit = true
			}
			j++
		}
		if hit {
			for k := i; k < j; k++ {
				out[k] = true
			}
		}
		i = j
	}
	return out
}

func skip(ignore []bool, i int) bool { return ignore != nil && ignore[i] }

// Confusion counts the point-wise confusion matrix after adjustment,
// skipping ignored samples.
func Confusion(pred, label, ignore []bool) (tp, fp, fn, tn int) {
	adj := AdjustPredictions(pred, label, ignore)
	for i := range label {
		if skip(ignore, i) {
			continue
		}
		switch {
		case adj[i] && label[i]:
			tp++
		case adj[i] && !label[i]:
			fp++
		case !adj[i] && label[i]:
			fn++
		default:
			tn++
		}
	}
	return
}

// NodeResult holds one node's metrics. NaN marks undefined values (no
// predicted positives → precision undefined; no true positives → recall
// undefined; single-class ground truth → AUC undefined).
type NodeResult struct {
	Precision float64
	Recall    float64
	AUC       float64
}

// EvaluateNode scores one node's detection output.
func EvaluateNode(scores []float64, pred, label, ignore []bool) NodeResult {
	tp, fp, fn, _ := Confusion(pred, label, ignore)
	r := NodeResult{Precision: math.NaN(), Recall: math.NaN()}
	if tp+fp > 0 {
		r.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r.Recall = float64(tp) / float64(tp+fn)
	}
	r.AUC = AdjustedAUC(scores, label, ignore)
	return r
}

// AdjustedAUC computes the ROC AUC consistent with point adjustment: each
// ground-truth anomalous interval contributes one positive sample whose
// score is the interval's maximum (an interval is detected at threshold τ
// iff its max score exceeds τ), while every normal sample contributes a
// negative. Returns NaN when either class is empty.
func AdjustedAUC(scores []float64, label, ignore []bool) float64 {
	var pos, neg []float64
	n := len(label)
	for i := 0; i < n; {
		if skip(ignore, i) {
			i++
			continue
		}
		if !label[i] {
			neg = append(neg, scores[i])
			i++
			continue
		}
		maxS := math.Inf(-1)
		for i < n && label[i] && !skip(ignore, i) {
			if scores[i] > maxS {
				maxS = scores[i]
			}
			i++
		}
		pos = append(pos, maxS)
	}
	return rankAUC(pos, neg)
}

// rankAUC computes the Mann-Whitney AUC with tie correction.
func rankAUC(pos, neg []float64) float64 {
	if len(pos) == 0 || len(neg) == 0 {
		return math.NaN()
	}
	type sample struct {
		v     float64
		isPos bool
	}
	all := make([]sample, 0, len(pos)+len(neg))
	for _, v := range pos {
		all = append(all, sample{v, true})
	}
	for _, v := range neg {
		all = append(all, sample{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign average ranks to ties.
	ranks := make([]float64, len(all))
	for i := 0; i < len(all); {
		j := i
		//lint:ignore floatcmp exact equality groups tied scores for average ranks; a tolerance would merge distinct scores
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}
	var rPos float64
	for i, s := range all {
		if s.isPos {
			rPos += ranks[i]
		}
	}
	nP, nN := float64(len(pos)), float64(len(neg))
	return (rPos - nP*(nP+1)/2) / (nP * nN)
}

// Summary aggregates per-node results the way the paper reports Table 4:
// Precision, Recall and AUC averaged over the nodes where they are defined,
// and F1 derived from the averaged Precision and Recall.
type Summary struct {
	Precision float64
	Recall    float64
	AUC       float64
	F1        float64
}

// Aggregate combines node results into the reported summary.
func Aggregate(results []NodeResult) Summary {
	var s Summary
	var nP, nR, nA int
	for _, r := range results {
		if !math.IsNaN(r.Precision) {
			s.Precision += r.Precision
			nP++
		}
		if !math.IsNaN(r.Recall) {
			s.Recall += r.Recall
			nR++
		}
		if !math.IsNaN(r.AUC) {
			s.AUC += r.AUC
			nA++
		}
	}
	if nP > 0 {
		s.Precision /= float64(nP)
	}
	if nR > 0 {
		s.Recall /= float64(nR)
	}
	if nA > 0 {
		s.AUC /= float64(nA)
	}
	if s.Precision+s.Recall > 0 {
		s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// EntityConfusion measures entity-level detection: truth is the set of
// genuinely anomalous entities (e.g. the peer-divergent nodes of a
// vicinity drill), flagged the set a detector surfaced. Recall is the
// fraction of truth entities flagged; precision the fraction of flagged
// entities that are true. An empty denominator yields 1 (nothing to miss
// / nothing falsely raised) — the convention that lets tests pin floors
// without special-casing empty drills. Duplicates are collapsed.
func EntityConfusion(truth, flagged []string) (recall, precision float64) {
	ts := map[string]bool{}
	for _, t := range truth {
		ts[t] = true
	}
	fs := map[string]bool{}
	for _, f := range flagged {
		fs[f] = true
	}
	recall, precision = 1, 1
	if len(ts) > 0 {
		hit := 0
		for t := range ts {
			if fs[t] {
				hit++
			}
		}
		recall = float64(hit) / float64(len(ts))
	}
	if len(fs) > 0 {
		good := 0
		for f := range fs {
			if ts[f] {
				good++
			}
		}
		precision = float64(good) / float64(len(fs))
	}
	return recall, precision
}

// TransitionIgnoreMask builds the evaluation ignore mask of a frame: true
// for samples within margin seconds of any job-transition boundary in
// spans. The paper uses a 1-minute margin at the start and end of each
// pattern.
func TransitionIgnoreMask(f *mts.NodeFrame, spans []mts.JobSpan, margin int64) []bool {
	mask := make([]bool, f.Len())
	mark := func(from, to int64) {
		lo := f.IndexOf(from)
		hi := f.IndexOf(to)
		for i := lo; i < hi && i < len(mask); i++ {
			mask[i] = true
		}
	}
	for _, sp := range spans {
		mark(sp.Start, sp.Start+margin)
		mark(sp.End-margin, sp.End)
	}
	return mask
}
