package eval

import (
	"testing"
	"time"
)

func TestDetectionLatencies(t *testing.T) {
	label := []bool{false, true, true, true, false, true, true, false}
	pred := []bool{false, false, false, true, false, false, false, false}
	rep := DetectionLatencies(pred, label, nil, 60)
	if rep.Detected != 1 || rep.Missed != 1 {
		t.Fatalf("detected/missed = %d/%d", rep.Detected, rep.Missed)
	}
	if rep.Latencies[0] != 2*time.Minute {
		t.Errorf("latency = %v, want 2m", rep.Latencies[0])
	}
	if rep.Mean() != 2*time.Minute || rep.Max() != 2*time.Minute {
		t.Errorf("mean/max = %v/%v", rep.Mean(), rep.Max())
	}
}

func TestDetectionLatenciesImmediateHit(t *testing.T) {
	label := []bool{true, true}
	pred := []bool{true, false}
	rep := DetectionLatencies(pred, label, nil, 15)
	if rep.Detected != 1 || rep.Latencies[0] != 0 {
		t.Errorf("rep = %+v", rep)
	}
}

func TestDetectionLatenciesIgnoreSplitsRuns(t *testing.T) {
	label := []bool{true, true, true}
	pred := []bool{false, false, true}
	ignore := []bool{false, true, false} // splits into two runs
	rep := DetectionLatencies(pred, label, ignore, 60)
	if rep.Detected != 1 || rep.Missed != 1 {
		t.Errorf("rep = %+v", rep)
	}
	// The hit run starts at index 2, hit at 2 → zero latency.
	if rep.Latencies[0] != 0 {
		t.Errorf("latency = %v", rep.Latencies[0])
	}
}

func TestDetectionLatenciesEmpty(t *testing.T) {
	rep := DetectionLatencies(nil, nil, nil, 60)
	if rep.Detected != 0 || rep.Missed != 0 || rep.Mean() != 0 || rep.Max() != 0 {
		t.Errorf("rep = %+v", rep)
	}
}
