package eval

import "time"

// LatencyReport summarizes detection delay: how long after each true
// anomaly interval began the detector first fired inside it. The paper's
// case study frames this as lead time before job failure; operators frame
// it as mean time-to-detect. Intervals with no hit count as missed.
type LatencyReport struct {
	Detected int
	Missed   int
	// Latencies holds one entry per detected interval, in interval order.
	Latencies []time.Duration
}

// Mean returns the average detection latency (0 when nothing detected).
func (r LatencyReport) Mean() time.Duration {
	if len(r.Latencies) == 0 {
		return 0
	}
	var s time.Duration
	for _, l := range r.Latencies {
		s += l
	}
	return s / time.Duration(len(r.Latencies))
}

// Max returns the worst detection latency (0 when nothing detected).
func (r LatencyReport) Max() time.Duration {
	var m time.Duration
	for _, l := range r.Latencies {
		if l > m {
			m = l
		}
	}
	return m
}

// DetectionLatencies walks the label stream's maximal true runs and
// measures the delay to the first positive prediction inside each, in
// samples converted through step (seconds per sample). Ignored samples
// split runs the same way the evaluation protocol does.
func DetectionLatencies(pred, label, ignore []bool, step int64) LatencyReport {
	var rep LatencyReport
	n := len(label)
	for i := 0; i < n; {
		if !label[i] || skip(ignore, i) {
			i++
			continue
		}
		j := i
		hit := -1
		for j < n && label[j] && !skip(ignore, j) {
			if hit < 0 && pred[j] {
				hit = j
			}
			j++
		}
		if hit < 0 {
			rep.Missed++
		} else {
			rep.Detected++
			rep.Latencies = append(rep.Latencies, time.Duration(int64(hit-i)*step)*time.Second)
		}
		i = j
	}
	return rep
}
