package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nodesentry/internal/mts"
)

func TestAdjustPredictions(t *testing.T) {
	label := []bool{false, true, true, true, false, true, true, false}
	pred := []bool{false, false, true, false, false, false, false, true}
	adj := AdjustPredictions(pred, label, nil)
	want := []bool{false, true, true, true, false, false, false, true}
	for i := range want {
		if adj[i] != want[i] {
			t.Fatalf("adj = %v, want %v", adj, want)
		}
	}
	// Original slice untouched.
	if pred[1] {
		t.Error("AdjustPredictions mutated its input")
	}
}

func TestAdjustPredictionsIgnore(t *testing.T) {
	label := []bool{true, true, true}
	pred := []bool{false, true, false}
	ignore := []bool{false, true, false} // the hit sample is ignored
	adj := AdjustPredictions(pred, label, ignore)
	if adj[0] || adj[2] {
		t.Errorf("ignored hit should not adjust the run: %v", adj)
	}
}

func TestConfusionWorkedExample(t *testing.T) {
	label := []bool{false, true, true, false, false}
	pred := []bool{true, true, false, false, false}
	tp, fp, fn, tn := Confusion(pred, label, nil)
	// Adjustment marks sample 2 as predicted (run 1-2 was hit at 1).
	if tp != 2 || fp != 1 || fn != 0 || tn != 2 {
		t.Errorf("confusion = %d %d %d %d", tp, fp, fn, tn)
	}
}

func TestEvaluateNodePerfectDetector(t *testing.T) {
	label := []bool{false, false, true, true, false}
	pred := []bool{false, false, true, false, false}
	scores := []float64{0.1, 0.2, 0.9, 0.3, 0.1}
	r := EvaluateNode(scores, pred, label, nil)
	if r.Precision != 1 || r.Recall != 1 {
		t.Errorf("P/R = %v/%v, want 1/1", r.Precision, r.Recall)
	}
	if r.AUC != 1 {
		t.Errorf("AUC = %v, want 1", r.AUC)
	}
}

func TestEvaluateNodeUndefinedCases(t *testing.T) {
	// No predicted positives → precision NaN; no true positives → recall
	// NaN; single-class → AUC NaN.
	r := EvaluateNode([]float64{0, 0}, []bool{false, false}, []bool{false, false}, nil)
	if !math.IsNaN(r.Precision) || !math.IsNaN(r.Recall) || !math.IsNaN(r.AUC) {
		t.Errorf("expected NaNs, got %+v", r)
	}
}

func TestAdjustedAUCIntervalSemantics(t *testing.T) {
	// One anomalous interval with a single high sample: interval max wins,
	// so AUC should be perfect even though other interval samples are low.
	label := []bool{false, true, true, true, false, false}
	scores := []float64{0.5, 0.1, 0.9, 0.1, 0.4, 0.3}
	auc := AdjustedAUC(scores, label, nil)
	if auc != 1 {
		t.Errorf("AUC = %v, want 1 under point-adjust semantics", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	scores := make([]float64, n)
	label := make([]bool, n)
	for i := range scores {
		scores[i] = rng.Float64()
		label[i] = rng.Float64() < 0.05
	}
	auc := AdjustedAUC(scores, label, nil)
	if math.Abs(auc-0.5) > 0.08 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestAUCBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		scores := make([]float64, n)
		label := make([]bool, n)
		for i := range scores {
			scores[i] = rng.NormFloat64()
			label[i] = rng.Float64() < 0.3
		}
		auc := AdjustedAUC(scores, label, nil)
		if math.IsNaN(auc) {
			return true // single class
		}
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRankAUCTies(t *testing.T) {
	// All equal scores → AUC 0.5.
	if auc := rankAUC([]float64{1, 1}, []float64{1, 1, 1}); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
}

func TestAggregate(t *testing.T) {
	results := []NodeResult{
		{Precision: 1, Recall: 0.5, AUC: 0.9},
		{Precision: 0.5, Recall: 1, AUC: 0.7},
		{Precision: math.NaN(), Recall: math.NaN(), AUC: math.NaN()},
	}
	s := Aggregate(results)
	if math.Abs(s.Precision-0.75) > 1e-12 || math.Abs(s.Recall-0.75) > 1e-12 {
		t.Errorf("P/R = %v/%v", s.Precision, s.Recall)
	}
	if math.Abs(s.AUC-0.8) > 1e-12 {
		t.Errorf("AUC = %v", s.AUC)
	}
	if math.Abs(s.F1-0.75) > 1e-12 {
		t.Errorf("F1 = %v", s.F1)
	}
}

func TestAggregateEmpty(t *testing.T) {
	s := Aggregate(nil)
	if s.F1 != 0 || s.Precision != 0 {
		t.Errorf("empty aggregate = %+v", s)
	}
}

func TestTransitionIgnoreMask(t *testing.T) {
	f := &mts.NodeFrame{
		Node:    "n",
		Metrics: []string{"m"},
		Data:    [][]float64{make([]float64, 40)},
		Start:   0, Step: 15,
	}
	spans := []mts.JobSpan{
		{Job: 1, Start: 0, End: 300},
		{Job: 2, Start: 300, End: 600},
	}
	mask := TransitionIgnoreMask(f, spans, 60)
	// First minute of job 1: samples 0-3; last minute: 16-19; job 2 start
	// 20-23; job 2 end 36-39.
	wantTrue := []int{0, 3, 16, 19, 20, 23, 36, 39}
	wantFalse := []int{4, 10, 15, 24, 30, 35}
	for _, i := range wantTrue {
		if !mask[i] {
			t.Errorf("mask[%d] should be true", i)
		}
	}
	for _, i := range wantFalse {
		if mask[i] {
			t.Errorf("mask[%d] should be false", i)
		}
	}
}

func TestF1MatchesManualComputation(t *testing.T) {
	// One node, direct check of the derived F1 formula.
	s := Aggregate([]NodeResult{{Precision: 0.8, Recall: 0.9, AUC: 0.95}})
	want := 2 * 0.8 * 0.9 / (0.8 + 0.9)
	if math.Abs(s.F1-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", s.F1, want)
	}
}
