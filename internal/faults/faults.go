// Package faults is the ChaosBlade-equivalent fault-injection substrate: it
// plans fault campaigns over a node pool and turns each fault into a
// telemetry overlay that perturbs exactly the metric semantics the real
// fault would disturb, together with point-wise ground-truth labels for
// evaluation.
//
// The fault taxonomy follows Table 1 of the paper (CPU, Memory, Disk,
// Network, Kernel/OS levels). Perturbations are injected at the semantic
// level *before* catalog expansion, so per-core and affine-alias metrics of
// an affected semantic move consistently, as they would under a real fault.
package faults

import (
	"math"
	"math/rand"
	"sort"

	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
)

// Type identifies a fault class from the paper's Table 1.
type Type string

// Fault classes. Severity semantics are normalized: 1.0 produces a
// perturbation comparable to a busy workload's full dynamic range.
const (
	CPUOverload        Type = "cpu-overload"
	CacheFailure       Type = "cache-failure"
	MemoryLeak         Type = "memory-leak"
	MemoryExhaustion   Type = "memory-exhaustion"
	DiskFull           Type = "disk-full"
	DataCorruption     Type = "silent-data-corruption"
	NetworkCongestion  Type = "network-congestion"
	NetworkPartition   Type = "network-partition"
	ResourceContention Type = "resource-contention"
	PageAllocError     Type = "page-alloc-error"
)

// GPU-extension fault classes (§5.3); not part of AllTypes so that
// CPU-only campaigns stay reproducible — select them explicitly or via
// AllTypesWithGPU.
const (
	GPUOverload         Type = "gpu-overload"
	GPUMemoryExhaustion Type = "gpu-memory-exhaustion"
	ThermalThrottle     Type = "gpu-thermal-throttle"
)

// Additional Kernel/OS-level classes from Table 1's "etc." tail; like the
// GPU classes they are opt-in to keep default campaigns reproducible.
const (
	// ClockDrift perturbs the timekeeping status flags (timex) — subtle,
	// only visible on otherwise-constant System metrics.
	ClockDrift Type = "clock-drift"
	// IOHang stalls the I/O path: reads and writes collapse while blocked
	// process counts climb.
	IOHang Type = "io-hang"
)

// ExtraTypes lists the opt-in Kernel/OS-level classes.
func ExtraTypes() []Type { return []Type{ClockDrift, IOHang} }

// AllTypes lists every CPU-level fault class.
func AllTypes() []Type {
	return []Type{
		CPUOverload, CacheFailure, MemoryLeak, MemoryExhaustion, DiskFull,
		DataCorruption, NetworkCongestion, NetworkPartition,
		ResourceContention, PageAllocError,
	}
}

// GPUTypes lists the GPU-extension fault classes.
func GPUTypes() []Type {
	return []Type{GPUOverload, GPUMemoryExhaustion, ThermalThrottle}
}

// AllTypesWithGPU lists every fault class including the GPU extension.
func AllTypesWithGPU() []Type { return append(AllTypes(), GPUTypes()...) }

// Fault is one planned injection on one node.
type Fault struct {
	Type     Type
	Node     string
	Start    int64 // Unix seconds, inclusive
	End      int64 // Unix seconds, exclusive
	Severity float64
	// seed decorrelates the pseudo-noise of individual faults.
	seed int64
}

// Interval returns the fault's labeled interval.
func (f Fault) Interval() mts.Interval { return mts.Interval{Start: f.Start, End: f.End} }

// delta describes how one fault type transforms one semantic. The `level`
// targets are values that are legitimate for *some* workload kind, which
// makes the faults contextual: a CPU pinned at 0.92 is normal during an
// mltrain job but anomalous during idle waiting, so only detectors that
// know the node's current job pattern can separate the two — the paper's
// central argument for job-aware modeling.
type delta struct {
	sem   string
	kind  xform
	level float64 // target level / scale factor, modulated by severity
}

type xform int

const (
	// raiseTo pulls the value up toward a fixed plausible level.
	raiseTo xform = iota
	// rampTo interpolates toward the level over the fault window (leaks,
	// filling disks).
	rampTo
	// scaleBy multiplies the value by level^severity (throughput
	// collapses).
	scaleBy
	// addJitter modulates the value with a high-frequency disturbance.
	addJitter
	// spikeTo raises the value to the level intermittently (burst trains).
	spikeTo
)

// signatures maps each fault type to its metric-level footprint.
var signatures = map[Type][]delta{
	CPUOverload: {
		{"cpu_busy", raiseTo, 0.92}, {"load", raiseTo, 0.92},
		{"cpu_ctx", raiseTo, 0.70}, {"procs_running", raiseTo, 0.92},
	},
	CacheFailure: {
		{"cpu_busy", addJitter, 0.35}, {"cpu_migrations", spikeTo, 0.80},
		{"cpu_ctx", addJitter, 0.40},
	},
	MemoryLeak: {
		{"mem_used", rampTo, 0.95}, {"mem_cache", scaleBy, 0.60},
		{"numa_foreign", rampTo, 0.60},
	},
	MemoryExhaustion: {
		{"mem_used", raiseTo, 0.95}, {"mem_cache", scaleBy, 0.50},
		{"procs_blocked", raiseTo, 0.60}, {"mem_kernel", raiseTo, 0.45},
	},
	DiskFull: {
		{"fs_files", rampTo, 0.90}, {"filefd", rampTo, 0.80},
		{"disk_write", scaleBy, 0.30},
	},
	DataCorruption: {
		{"disk_read", spikeTo, 0.85}, {"disk_write", addJitter, 0.40},
	},
	NetworkCongestion: {
		{"net_rx", scaleBy, 0.35}, {"net_tx", scaleBy, 0.35},
		{"sockets", raiseTo, 0.55}, {"procs_blocked", raiseTo, 0.40},
	},
	NetworkPartition: {
		{"net_rx", scaleBy, 0.02}, {"net_tx", scaleBy, 0.02},
		{"sockets", scaleBy, 0.50},
	},
	ResourceContention: {
		{"cpu_iowait", raiseTo, 0.60}, {"procs_blocked", raiseTo, 0.50},
		{"cpu_busy", addJitter, 0.30},
	},
	PageAllocError: {
		{"mem_kernel", spikeTo, 0.60}, {"procs_blocked", raiseTo, 0.45},
		{"numa_foreign", spikeTo, 0.70},
	},
	GPUOverload: {
		{"gpu_util", raiseTo, 0.95}, {"gpu_temp", raiseTo, 0.85},
		{"nvlink_tx", raiseTo, 0.60},
	},
	GPUMemoryExhaustion: {
		{"gpu_mem", raiseTo, 0.97}, {"gpu_util", addJitter, 0.30},
	},
	ThermalThrottle: {
		{"gpu_temp", raiseTo, 0.92}, {"gpu_util", scaleBy, 0.50},
		{"nvlink_tx", scaleBy, 0.60},
	},
	ClockDrift: {
		{"timex_status", addJitter, 0.80}, {"uptime", addJitter, 0.05},
	},
	IOHang: {
		{"disk_read", scaleBy, 0.05}, {"disk_write", scaleBy, 0.05},
		{"cpu_iowait", raiseTo, 0.80}, {"procs_blocked", raiseTo, 0.70},
	},
}

// AffectedSemantics returns the semantics a fault type perturbs.
func AffectedSemantics(ft Type) []string {
	sig := signatures[ft]
	out := make([]string, 0, len(sig))
	for _, d := range sig {
		out = append(out, d.sem)
	}
	return out
}

// Overlay converts the fault into a telemetry overlay: a value transform
// on the normalized semantic signal, identity outside [Start, End).
func (f Fault) Overlay() telemetry.Overlay {
	sig := signatures[f.Type]
	dur := float64(f.End - f.Start)
	phase := float64(f.seed%997) * 0.0063
	return func(sem string, ts int64, v float64) float64 {
		if ts < f.Start || ts >= f.End {
			return v
		}
		frac := float64(ts-f.Start) / dur
		for _, d := range sig {
			if d.sem != sem {
				continue
			}
			switch d.kind {
			case raiseTo:
				if d.level > v {
					v += f.Severity * (d.level - v)
				}
			case rampTo:
				if d.level > v {
					v += f.Severity * frac * (d.level - v)
				}
			case scaleBy:
				v *= math.Pow(d.level, f.Severity)
			case addJitter:
				v *= 1 + d.level*f.Severity*math.Sin(2*math.Pi*frac*57+phase)
			case spikeTo:
				// Deterministic burst train: active ~30% of the time.
				w := math.Sin(2*math.Pi*frac*23 + phase)
				if w > 0.4 && d.level > v {
					v += f.Severity * (d.level - v) * math.Min(1, 0.5+w)
				}
			}
		}
		return v
	}
}

// CampaignConfig parameterizes PlanCampaign.
type CampaignConfig struct {
	// Nodes is the injectable node pool.
	Nodes []string
	// Window bounds all injections (typically the test split).
	Window mts.Interval
	// FaultsPerNode is the expected number of faults per node over the
	// window (Poisson-ish; the realized count varies).
	FaultsPerNode float64
	// MeanDuration is the mean fault duration in seconds (exponential,
	// clamped to [MinDuration, window]).
	MeanDuration float64
	// MinDuration floors fault durations (default 120 s).
	MinDuration float64
	// Types restricts the classes injected; AllTypes() when nil.
	Types []Type
	// Seed makes the campaign reproducible.
	Seed int64
}

// PlanCampaign schedules a reproducible fault campaign: per node, a random
// number of non-overlapping faults inside the window. The low default rates
// mirror the paper's anomaly ratios (0.04–0.16 % of samples).
func PlanCampaign(cfg CampaignConfig) []Fault {
	if cfg.Window.End <= cfg.Window.Start || len(cfg.Nodes) == 0 {
		return nil
	}
	types := cfg.Types
	if types == nil {
		types = AllTypes()
	}
	meanDur := cfg.MeanDuration
	if meanDur <= 0 {
		meanDur = 600
	}
	minDur := cfg.MinDuration
	if minDur <= 0 {
		minDur = 120
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	span := cfg.Window.End - cfg.Window.Start
	var out []Fault
	for _, node := range cfg.Nodes {
		n := poisson(rng, cfg.FaultsPerNode)
		var ivs []mts.Interval
		for i := 0; i < n; i++ {
			dur := int64(rng.ExpFloat64() * meanDur)
			if dur < int64(minDur) {
				dur = int64(minDur)
			}
			if dur >= span {
				dur = span / 2
			}
			start := cfg.Window.Start + int64(rng.Int63n(span-dur))
			iv := mts.Interval{Start: start, End: start + dur}
			if overlapsAny(iv, ivs) {
				continue // skip rather than retry: keeps the plan simple
			}
			ivs = append(ivs, iv)
			out = append(out, Fault{
				Type:     types[rng.Intn(len(types))],
				Node:     node,
				Start:    iv.Start,
				End:      iv.End,
				Severity: 0.5 + 0.5*rng.Float64(),
				seed:     rng.Int63(),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Start < out[j].Start
	})
	return out
}

func overlapsAny(iv mts.Interval, ivs []mts.Interval) bool {
	for _, o := range ivs {
		if iv.Overlaps(o) {
			return true
		}
	}
	return false
}

// poisson samples a Poisson count via inversion (fine for small lambdas).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Overlays merges the campaign into one overlay per node. Nodes without
// faults are absent from the map (nil overlay means "no anomalies").
func Overlays(faults []Fault) map[string]telemetry.Overlay {
	byNode := map[string][]Fault{}
	for _, f := range faults {
		byNode[f.Node] = append(byNode[f.Node], f)
	}
	out := make(map[string]telemetry.Overlay, len(byNode))
	for node, fs := range byNode {
		overlays := make([]telemetry.Overlay, len(fs))
		for i, f := range fs {
			overlays[i] = f.Overlay()
		}
		out[node] = func(sem string, ts int64, v float64) float64 {
			for _, o := range overlays {
				v = o(sem, ts, v)
			}
			return v
		}
	}
	return out
}

// Labels converts the campaign into ground-truth anomaly labels.
func Labels(faults []Fault) mts.Labels {
	l := mts.Labels{}
	for _, f := range faults {
		l.Add(f.Node, f.Interval())
	}
	return l
}
