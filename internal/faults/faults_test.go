package faults

import (
	"math"
	"testing"

	"nodesentry/internal/mts"
)

func testCampaign(t *testing.T) ([]Fault, CampaignConfig) {
	t.Helper()
	cfg := CampaignConfig{
		Nodes:         []string{"cn-1", "cn-2", "cn-3", "cn-4"},
		Window:        mts.Interval{Start: 100000, End: 400000},
		FaultsPerNode: 2,
		MeanDuration:  900,
		Seed:          11,
	}
	return PlanCampaign(cfg), cfg
}

func TestPlanCampaignBounds(t *testing.T) {
	faults, cfg := testCampaign(t)
	if len(faults) == 0 {
		t.Fatal("no faults planned")
	}
	for _, f := range faults {
		if f.Start < cfg.Window.Start || f.End > cfg.Window.End {
			t.Errorf("fault %v escapes window", f)
		}
		if f.End <= f.Start {
			t.Errorf("fault %v empty", f)
		}
		if f.Severity < 0.5 || f.Severity > 1 {
			t.Errorf("severity %v out of range", f.Severity)
		}
		if len(signatures[f.Type]) == 0 {
			t.Errorf("fault type %q has no signature", f.Type)
		}
	}
}

func TestPlanCampaignNoOverlapPerNode(t *testing.T) {
	faults, _ := testCampaign(t)
	byNode := map[string][]Fault{}
	for _, f := range faults {
		byNode[f.Node] = append(byNode[f.Node], f)
	}
	for node, fs := range byNode {
		for i := 1; i < len(fs); i++ {
			if fs[i].Start < fs[i-1].End {
				t.Errorf("node %s: overlapping faults %v %v", node, fs[i-1], fs[i])
			}
		}
	}
}

func TestPlanCampaignDeterministic(t *testing.T) {
	a, _ := testCampaign(t)
	b, _ := testCampaign(t)
	if len(a) != len(b) {
		t.Fatal("non-deterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs", i)
		}
	}
}

func TestPlanCampaignEmptyInputs(t *testing.T) {
	if PlanCampaign(CampaignConfig{}) != nil {
		t.Error("empty config should plan nothing")
	}
	if PlanCampaign(CampaignConfig{Nodes: []string{"a"}, Window: mts.Interval{Start: 5, End: 5}}) != nil {
		t.Error("empty window should plan nothing")
	}
}

func TestAllSignaturesComplete(t *testing.T) {
	for _, ft := range AllTypes() {
		sems := AffectedSemantics(ft)
		if len(sems) == 0 {
			t.Errorf("type %q affects nothing", ft)
		}
	}
}

func TestOverlayIdentityOutsideWindow(t *testing.T) {
	f := Fault{Type: CPUOverload, Node: "cn-1", Start: 1000, End: 2000, Severity: 1, seed: 3}
	o := f.Overlay()
	if o("cpu_busy", 999, 0.1) != 0.1 || o("cpu_busy", 2000, 0.1) != 0.1 {
		t.Error("overlay active outside window")
	}
	if o("cpu_busy", 1500, 0.1) <= 0.5 {
		t.Error("CPU overload should pin cpu_busy high inside window")
	}
	if o("net_rx", 1500, 0.5) != 0.5 {
		t.Error("CPU overload should not touch net_rx")
	}
}

func TestOverlayContextual(t *testing.T) {
	// A CPU overload targets a level that is legitimate for a busy job:
	// applied to an already-busy value it changes little; applied to an
	// idle value it changes a lot.
	f := Fault{Type: CPUOverload, Start: 0, End: 1000, Severity: 1, seed: 4}
	o := f.Overlay()
	idleDelta := o("cpu_busy", 500, 0.05) - 0.05
	busyDelta := o("cpu_busy", 500, 0.90) - 0.90
	if idleDelta < 10*busyDelta {
		t.Errorf("fault should be contextual: idle delta %v, busy delta %v", idleDelta, busyDelta)
	}
}

func TestOverlayShapes(t *testing.T) {
	leak := Fault{Type: MemoryLeak, Start: 0, End: 10000, Severity: 1, seed: 5}
	o := leak.Overlay()
	early := o("mem_used", 500, 0.3)
	late := o("mem_used", 9500, 0.3)
	if late <= early || late < 0.8 {
		t.Errorf("memory leak should ramp: early=%v late=%v", early, late)
	}
	if o("mem_cache", 9500, 0.4) >= 0.4 {
		t.Error("memory leak should depress mem_cache")
	}

	part := Fault{Type: NetworkPartition, Start: 0, End: 1000, Severity: 1, seed: 6}
	po := part.Overlay()
	if got := po("net_rx", 500, 0.6); got > 0.05 {
		t.Errorf("partition should nearly zero net_rx, got %v", got)
	}
}

func TestSpikeShapeIntermittent(t *testing.T) {
	f := Fault{Type: DataCorruption, Start: 0, End: 10000, Severity: 1, seed: 7}
	o := f.Overlay()
	active, idle := 0, 0
	for ts := int64(0); ts < 10000; ts += 15 {
		v := o("disk_read", ts, 0.1)
		if v > 0.2 {
			active++
		} else if v == 0.1 {
			idle++
		}
	}
	if active == 0 || idle == 0 {
		t.Errorf("spike train should be intermittent: active=%d idle=%d", active, idle)
	}
}

func TestOverlaysMergePerNode(t *testing.T) {
	fs := []Fault{
		{Type: CPUOverload, Node: "cn-1", Start: 0, End: 100, Severity: 1},
		{Type: ResourceContention, Node: "cn-1", Start: 200, End: 300, Severity: 1},
		{Type: CPUOverload, Node: "cn-2", Start: 0, End: 100, Severity: 1},
	}
	ov := Overlays(fs)
	if len(ov) != 2 {
		t.Fatalf("got %d node overlays, want 2", len(ov))
	}
	if ov["cn-1"]("cpu_busy", 50, 0.05) <= 0.5 {
		t.Error("first fault missing from merged overlay")
	}
	if ov["cn-1"]("cpu_iowait", 250, 0.05) <= 0.2 {
		t.Error("second fault missing from merged overlay")
	}
	if _, ok := ov["cn-3"]; ok {
		t.Error("unexpected overlay for fault-free node")
	}
}

func TestLabelsMatchFaults(t *testing.T) {
	faults, _ := testCampaign(t)
	labels := Labels(faults)
	for _, f := range faults {
		found := false
		for _, iv := range labels[f.Node] {
			if iv.Start <= f.Start && iv.End >= f.End {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %v not covered by labels", f)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	faults := PlanCampaign(CampaignConfig{
		Nodes:         make([]string, 200),
		Window:        mts.Interval{Start: 0, End: 1000000},
		FaultsPerNode: 2,
		Seed:          13,
	})
	mean := float64(len(faults)) / 200
	if math.Abs(mean-2) > 0.5 {
		t.Errorf("mean faults per node = %v, want ~2", mean)
	}
}

func TestExtraAndGPUTypesHaveSignatures(t *testing.T) {
	for _, ft := range append(GPUTypes(), ExtraTypes()...) {
		if len(AffectedSemantics(ft)) == 0 {
			t.Errorf("type %q has no signature", ft)
		}
	}
	// The opt-in classes must not leak into the default set.
	for _, def := range AllTypes() {
		for _, extra := range append(GPUTypes(), ExtraTypes()...) {
			if def == extra {
				t.Errorf("opt-in type %q leaked into AllTypes", extra)
			}
		}
	}
}

func TestIOHangSignature(t *testing.T) {
	f := Fault{Type: IOHang, Start: 0, End: 1000, Severity: 1, seed: 9}
	o := f.Overlay()
	if got := o("disk_read", 500, 0.6); got > 0.05 {
		t.Errorf("io-hang should collapse disk_read, got %v", got)
	}
	if got := o("procs_blocked", 500, 0.1); got < 0.5 {
		t.Errorf("io-hang should pile up blocked procs, got %v", got)
	}
}
