package chaos_test

import (
	"os"
	"testing"

	"nodesentry/internal/chaos"
	"nodesentry/internal/testutil"
)

// TestTopologyPartition runs one full partition cycle against a live
// 1-coordinator + 2-scorer topology: steady state, coordinator
// unreachable, lease expiry mid-flood, split-brain fencing, heal and
// rebalance — with the exact alert-ledger reconciliation (zero silently
// lost, zero duplicates) done by RunTopology itself.
func TestTopologyPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("full-topology partition drill")
	}
	ds, det := fixture(t)
	defer testutil.CheckGoroutines(t)()

	rep, err := chaos.RunTopology(chaos.TopologyConfig{DS: ds, Det: det})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("topology: scorers=%d epoch=%d reassigns=%d ledger=%+v raised=%d errored=%d recall=%.2f (%d/%d)",
		rep.Scorers, rep.FinalEpoch, rep.Reassigns, rep.Ledger,
		rep.Raised, rep.ForwardErrors, rep.Recall, rep.MatchedFaults, rep.TotalFaults)

	// Run reconciled the exact equations; assert the drill's breadth on
	// top: every partition mode left its fingerprint.
	if rep.Ledger.Fenced == 0 {
		t.Error("split-brain phase fenced nothing")
	}
	if rep.ForwardErrors == 0 {
		t.Error("coordinator-unreachable phase errored no forwards")
	}
	if rep.Reassigns < 2 {
		t.Errorf("reassignments = %d, want expiry + rejoin", rep.Reassigns)
	}
	if rep.FinalEpoch < 4 {
		t.Errorf("final epoch = %d, want ≥4 (2 joins + expiry + rejoin)", rep.FinalEpoch)
	}
}

// TestTopologySoakLong repeats the partition cycle back to back, gated
// on NODESENTRY_SOAK so CI's regular lane stays fast. Each cycle builds
// a fresh topology; surviving several proves the drill leaves nothing
// behind (the goroutine gate would trip on any residue).
func TestTopologySoakLong(t *testing.T) {
	if os.Getenv("NODESENTRY_SOAK") == "" {
		t.Skip("set NODESENTRY_SOAK=1 for the multi-cycle topology soak")
	}
	ds, det := fixture(t)
	defer testutil.CheckGoroutines(t)()

	for cycle := 0; cycle < 3; cycle++ {
		rep, err := chaos.RunTopology(chaos.TopologyConfig{DS: ds, Det: det})
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		t.Logf("cycle %d: ledger=%+v raised=%d errored=%d recall=%.2f",
			cycle, rep.Ledger, rep.Raised, rep.ForwardErrors, rep.Recall)
	}
}
