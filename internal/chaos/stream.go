package chaos

import "nodesentry/internal/ingest"

// StreamChaos rewrites a JSONL line stream with the timestamp-level
// faults a real fleet exhibits: one node's samples arrive pairwise out
// of order, another re-sends samples under an already-used timestamp,
// and a third runs on a skewed clock. Deterministic — the same input
// always yields the same output and the same fault tallies — so a soak
// knows exactly how many of each perturbation it shipped.
type StreamChaos struct {
	// SwapNode has adjacent sample pairs swapped; every SwapEvery-th
	// pair (default 8) is exchanged.
	SwapNode  string
	SwapEvery int
	// DupNode has every DupEvery-th sample (default 10) re-emitted
	// immediately with identical timestamp and values.
	DupNode  string
	DupEvery int
	// SkewNode has every sample timestamp and job start shifted by
	// SkewSec — a node whose clock runs ahead.
	SkewNode string
	SkewSec  int64
	// Counts receives one OutOfOrder per swapped pair, one DupTimestamp
	// per duplicate, and one ClockSkew per shifted line.
	Counts *Counts
}

// Perturb returns a rewritten copy of lines; the input is not modified.
// Register lines pass through untouched so layouts always precede the
// samples they describe.
func (s *StreamChaos) Perturb(lines []ingest.Line) []ingest.Line {
	swapEvery := s.SwapEvery
	if swapEvery <= 0 {
		swapEvery = 8
	}
	dupEvery := s.DupEvery
	if dupEvery <= 0 {
		dupEvery = 10
	}

	out := make([]ingest.Line, 0, len(lines)+len(lines)/dupEvery+1)
	// Positions (in out) of SwapNode's sample lines, for pair swapping
	// after assembly; dupSeen counts DupNode's samples for cadence.
	var swapPos []int
	dupSeen := 0
	for _, l := range lines {
		l := l
		isSample := l.Values != nil && len(l.Metrics) == 0 && l.Job == nil
		if s.SkewNode != "" && l.Node == s.SkewNode && s.SkewSec != 0 {
			if isSample {
				l.Time += s.SkewSec
				s.Counts.Add(ClockSkew, 1)
			} else if l.Job != nil {
				l.Start += s.SkewSec
				s.Counts.Add(ClockSkew, 1)
			}
		}
		out = append(out, l)
		if !isSample {
			continue
		}
		if l.Node == s.SwapNode {
			swapPos = append(swapPos, len(out)-1)
		}
		if l.Node == s.DupNode {
			dupSeen++
			if dupSeen%dupEvery == 0 {
				out = append(out, l)
				s.Counts.Add(DupTimestamp, 1)
			}
		}
	}
	// Swap the members of every swapEvery-th adjacent sample pair of
	// SwapNode. Pairs are disjoint (2k, 2k+1), so no sample moves twice.
	for pair := 0; 2*pair+1 < len(swapPos); pair += swapEvery {
		i, j := swapPos[2*pair], swapPos[2*pair+1]
		out[i], out[j] = out[j], out[i]
		s.Counts.Add(OutOfOrder, 1)
	}
	return out
}
