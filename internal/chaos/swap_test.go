package chaos_test

import (
	"strings"
	"sync"
	"testing"

	"nodesentry/internal/chaos"
	"nodesentry/internal/ingest"
	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/testutil"
)

// TestSwapUnderChaosIngest pins hot-swap stability under hostile load: N
// back-to-back SwapDetector calls while a perturbed stream (out-of-order,
// duplicated, skewed, plus flood clones) floods the decoder → router →
// monitor path. Nothing may drop, and every alert must carry an epoch
// that existed while it could have been scored.
func TestSwapUnderChaosIngest(t *testing.T) {
	ds, det := fixture(t)
	leaks := testutil.CheckGoroutines(t)

	reg := obs.NewRegistry()
	mon, err := runtime.NewMonitor(det, runtime.Config{
		Step: ds.Step, ScoringWorkers: 3, AlertBuffer: 4096, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	var alertMu sync.Mutex
	var alerts []runtime.Alert
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for a := range mon.Alerts() {
			alertMu.Lock()
			alerts = append(alerts, a)
			alertMu.Unlock()
		}
	}()
	router := ingest.NewShardRouter(mon, ingest.RouterConfig{
		Shards: 4, QueueSize: 64, Policy: ingest.Block, Metrics: reg,
	})
	dec := ingest.NewDecoder(router, ingest.DecoderConfig{Metrics: reg})
	for node, frame := range ds.Frames {
		dec.Register(node, frame.Metrics)
	}
	dec.Register("flood-0", ds.Frames[ds.Nodes()[0]].Metrics)
	dec.Register("flood-1", ds.Frames[ds.Nodes()[1]].Metrics)

	counters := testutil.SnapshotCounters(map[string]*obs.Counter{
		"alerts_dropped": reg.Counter("nodesentry_alerts_dropped_total"),
		"shape":          reg.Counter("nodesentry_ingest_shape_mismatch_total"),
	})

	// The perturbed stream plus two clone nodes, fed as JSONL chunks with
	// two immediate swaps after each chunk — swaps land while the shard
	// queues are still draining the previous chunk.
	counts := chaos.NewCounts()
	stream := &chaos.StreamChaos{
		SwapNode: ds.Nodes()[0], DupNode: ds.Nodes()[1],
		SkewNode: ds.Nodes()[2%len(ds.Nodes())], SkewSec: 1800,
		Counts: counts,
	}
	lines := stream.Perturb(linesForTest(ds))
	const chunks, swapsPerChunk = 8, 2
	per := (len(lines) + chunks - 1) / chunks
	swaps := 0
	for c := 0; c < chunks; c++ {
		lo, hi := c*per, min((c+1)*per, len(lines))
		if lo >= hi {
			break
		}
		var b strings.Builder
		for _, l := range lines[lo:hi] {
			writeJSONL(t, &b, l)
		}
		if _, err := dec.PushJSONL(strings.NewReader(b.String())); err != nil {
			t.Fatalf("chunk %d: %v", c, err)
		}
		for i := 0; i < swapsPerChunk; i++ {
			if _, err := mon.SwapDetector(det); err != nil {
				t.Fatalf("swap %d: %v", swaps, err)
			}
			swaps++
		}
	}
	if dropped := router.Drain(); dropped != 0 {
		t.Errorf("router dropped %d events", dropped)
	}
	mon.Close()
	<-drained
	leaks()

	if got := mon.Epoch(); got != int64(1+swaps) {
		t.Errorf("epoch = %d, want %d", got, 1+swaps)
	}
	if mon.Dropped() != 0 {
		t.Errorf("monitor dropped %d alerts", mon.Dropped())
	}
	counters.ExpectDelta(t, "alerts_dropped", 0)
	counters.ExpectDelta(t, "shape", 0)
	alertMu.Lock()
	defer alertMu.Unlock()
	if len(alerts) == 0 {
		t.Error("no alerts under chaos ingest")
	}
	for _, a := range alerts {
		if a.Epoch < 1 || a.Epoch > int64(1+swaps) {
			t.Errorf("alert on %s: epoch %d outside [1, %d]", a.Node, a.Epoch, 1+swaps)
		}
	}
	if counts.Get(chaos.OutOfOrder) == 0 || counts.Get(chaos.DupTimestamp) == 0 || counts.Get(chaos.ClockSkew) == 0 {
		t.Errorf("stream faults not injected: %v", counts.Snapshot())
	}
}
