package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nodesentry/internal/core"
	"nodesentry/internal/daemon"
	"nodesentry/internal/dataset"
	"nodesentry/internal/fleetview"
	"nodesentry/internal/ingest"
	"nodesentry/internal/lifecycle"
	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/summary"
	"nodesentry/internal/telemetry"
)

// Config parameterizes one soak scenario.
type Config struct {
	// DS supplies the telemetry and the fault ground truth (required).
	DS *dataset.Dataset
	// Det is the incumbent detector, trained on DS's training split
	// (required). Callers train it before Run so leak-checking tests can
	// snapshot goroutines after the training pools wind down.
	Det *core.Detector
	// TrainOptions configures the lifecycle's background retraining.
	TrainOptions core.Options
	// Cycles is how many full drift→retrain→shadow→swap cycles to run
	// (default 1; the nightly soak runs several).
	Cycles int
	// BatchWindows forwards to the daemon's monitor: > 1 scores that many
	// windows per stacked model invocation. The nightly soak forces it on
	// so the batched path sees chaos at full depth.
	BatchWindows int
	// RecallFloor is the minimum fault recall over the clean-phase
	// window (default 0.2) — chaos may cost detection latency, but the
	// detector must keep finding real anomalies through it.
	RecallFloor float64
	// SlackSec pads alert-to-fault matching (default 30*DS.Step; scoring
	// emits alerts at window boundaries, after the fault begins).
	SlackSec int64
	// Tracer, when non-nil, receives chaos_feed / chaos_retrain /
	// chaos_swap spans.
	Tracer *obs.Tracer
	// Summary runs the alert summarization tier inside the daemon: the
	// webhook receives folded incident payloads plus unfolded raw alerts,
	// and reconcile swaps the per-alert delivery equation for the
	// summarizer's accounting identity (Folded + Raw == Observed ==
	// alerts raised; every incident resolved at quiescence).
	Summary bool
	// Logger, when non-nil, receives component logs.
	Logger *slog.Logger
}

// Report is one soak run's evidence: the injected-fault ledger and the
// loop's observed behavior, every pair of which Run has already
// reconciled (it returns an error otherwise).
type Report struct {
	// Counts is the injected-fault ledger.
	Counts map[FaultKind]int64
	// FaultKinds is how many distinct kinds were injected.
	FaultKinds int
	// PushLines / PushSamples / PushJobs count the forwarder-fed stream;
	// ScrapeSweeps counts successful scrapes.
	PushLines, PushSamples, PushJobs int64
	ScrapeSweeps                     int64
	// Alerts is how many alerts the loop delivered end to end (monitor →
	// webhook → consumer).
	Alerts int
	// MatchedFaults / TotalFaults / Recall measure detection through the
	// chaos over the clean-phase ground truth.
	MatchedFaults, TotalFaults int
	Recall                     float64
	// ForcedSwaps counts mid-flood SwapDetector calls; Promotions counts
	// shadow-gate promotions; Epoch is the final detector generation.
	ForcedSwaps, Promotions int
	Epoch                   int64
	// Decisions records every shadow-gate outcome, last cycle last.
	Decisions []lifecycle.Decision
	// RetrainWall is the last background retraining wall time.
	RetrainWall time.Duration
	// QuarantinedID / RecoveredID record the registry-corruption drill:
	// the version whose payload was corrupted and the retired version the
	// store fell back to.
	QuarantinedID, RecoveredID string
	// FleetProbes counts successful /fleet/state probes through the chaos
	// phases; FleetEvents is the journal's all-time event total and
	// SSEEvents how many of them the live SSE client received.
	FleetProbes int
	FleetEvents uint64
	SSEEvents   int64
	// Summarization accounting (Config.Summary only): every raised alert
	// either folded into an incident or was delivered raw, and every
	// opened incident was resolved by quiescence.
	SummaryObserved, SummaryFolded, SummaryRaw int64
	IncidentsOpened, IncidentsResolved         int64
}

// faultMirror forwards every ledger injection into the fleetview journal.
// The aggregator is only constructed by daemon.New, after the seams (and
// their Counts callback) exist, so injections recorded before attach are
// buffered and flushed under the same lock — the two ledgers stay exactly
// equal with no window.
type faultMirror struct {
	mu      sync.Mutex
	fv      *fleetview.Aggregator
	pending map[FaultKind]int64
}

func (fm *faultMirror) record(kind FaultKind, n int64) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	if fm.fv != nil {
		fm.fv.RecordFault(string(kind), n)
		return
	}
	if fm.pending == nil {
		fm.pending = map[FaultKind]int64{}
	}
	fm.pending[kind] += n
}

func (fm *faultMirror) attach(fv *fleetview.Aggregator) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	fm.fv = fv
	for kind, n := range fm.pending {
		fv.RecordFault(string(kind), n)
	}
	fm.pending = nil
}

// soak is one running scenario's state.
type soak struct {
	cfg    Config
	ds     *dataset.Dataset
	reg    *obs.Registry
	counts *Counts
	rep    *Report

	d       *daemon.Daemon
	store   *lifecycle.Store
	pushURL string
	stream  *StreamChaos

	fwdClient   *http.Client
	plainClient *http.Client
	scrapeT     *Transport
	scrapeLen   int

	exporter  *exporter
	webhook   *httptest.Server
	webhookOK atomic.Int64

	alertMu sync.Mutex
	alerts  []runtime.Alert

	probes   []string
	probeSeq int64

	fm       faultMirror
	fleetSrv *httptest.Server
	sseData  atomic.Int64
	sseErr   chan error

	fwdLines, pushSamples, pushJobs int64
}

// Run executes one soak scenario: the full sentryd loop (push+scrape
// intake → decoder → shard router → monitor → drift → retrain → shadow →
// hot swap) under scripted infrastructure faults on every seam, then
// reconciles the daemon's /metrics against the injected-fault ledger.
// Any violated invariant — a dropped event, a counter that does not
// account for an injected fault, a failed drift/retrain/recovery step, a
// recall below the floor — is returned as an error listing every
// violation.
func Run(cfg Config) (*Report, error) {
	if cfg.DS == nil || cfg.Det == nil {
		return nil, errors.New("chaos: Config.DS and Config.Det are required")
	}
	if cfg.Cycles <= 0 {
		cfg.Cycles = 1
	}
	if cfg.RecallFloor == 0 {
		cfg.RecallFloor = 0.2
	}
	if cfg.SlackSec == 0 {
		cfg.SlackSec = 30 * cfg.DS.Step
	}
	s := &soak{
		cfg:    cfg,
		ds:     cfg.DS,
		reg:    obs.NewRegistry(),
		counts: NewCounts(),
		rep:    &Report{},
	}

	dir, err := os.MkdirTemp("", "nodesentry-chaos-*")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // scratch registry; best-effort cleanup

	if err := s.openRegistry(dir); err != nil {
		return nil, err
	}
	closeDaemon, err := s.start()
	if err != nil {
		return nil, err
	}

	runErr := s.drive()
	// Even a failed drive tears the loop down and reports a close error;
	// the registry drill and reconciliation need the daemon stopped.
	closeErr := closeDaemon()
	s.closeSeams()
	if runErr != nil {
		return s.rep, runErr
	}
	if closeErr != nil {
		return s.rep, closeErr
	}
	if err := s.registryDrill(); err != nil {
		return s.rep, err
	}
	return s.rep, s.reconcile()
}

// openRegistry seeds the versioned store with an active baseline *and* a
// retired predecessor, so the corruption drill always has a lineage to
// fall back through.
func (s *soak) openRegistry(dir string) error {
	store, err := lifecycle.OpenStore(dir, 5)
	if err != nil {
		return err
	}
	for _, source := range []string{"initial", "baseline"} {
		v, err := store.SaveVersion(s.cfg.Det, source)
		if err != nil {
			return err
		}
		if err := store.Activate(v.ID); err != nil {
			return err
		}
	}
	s.store = store
	return nil
}

// start wires every chaos seam and boots the daemon, returning its
// closer.
func (s *soak) start() (func() error, error) {
	s.exporter = newExporter(s.ds)
	s.webhook = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		s.webhookOK.Add(1)
		w.WriteHeader(http.StatusOK)
	}))

	// Every HTTP seam gets a scripted Transport; the schedules are cyclic
	// with each fault followed by a clean slot, so a retry of an injected
	// failure always succeeds and the retry counters reconcile exactly.
	scrapeScript := []FaultKind{
		Pass, Pass, Pass, Scrape5xx, Pass, ScrapeGarble, Pass, ScrapeTruncate, ScrapeDrop, Pass,
	}
	s.scrapeLen = len(scrapeScript)
	s.scrapeT = &Transport{Script: scrapeScript, Counts: s.counts}
	// Every injection is mirrored into the fleetview journal; reconcile
	// demands the two ledgers agree exactly.
	s.counts.OnAdd = s.fm.record
	s.fwdClient = &http.Client{Transport: &Transport{
		Script: []FaultKind{Pass, Pass, Pass, Pass, Pass, ConnDrop, Pass, Pass, Pass, Pass, Pass, Pass},
		Counts: s.counts,
	}}
	s.plainClient = &http.Client{}
	webhookClient := &http.Client{Transport: &Transport{
		Script:    []FaultKind{Pass, Pass, Pass, Webhook5xx, Pass, Pass, WebhookSlow, Pass},
		SlowDelay: 20 * time.Millisecond,
		Counts:    s.counts,
	}}

	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	const shards = 4
	s.probes = probeNames(shards)
	s.stream = &StreamChaos{
		SwapNode: s.ds.Nodes()[1%len(s.ds.Nodes())],
		DupNode:  s.ds.Nodes()[2%len(s.ds.Nodes())],
		SkewNode: s.ds.Nodes()[3%len(s.ds.Nodes())],
		SkewSec:  3600,
		Counts:   s.counts,
	}

	layouts := map[string][]string{}
	for node, frame := range s.ds.Frames {
		layouts[node] = frame.Metrics
	}
	for _, clone := range []string{"flood-0", "flood-1"} {
		layouts[clone] = s.ds.Frames[s.stream.SwapNode].Metrics
	}
	for _, node := range s.exporter.nodes {
		layouts[node] = s.exporter.metrics
	}
	for _, p := range s.probes {
		layouts[p] = []string{"chaos_probe"}
	}

	var sumCfg *summary.Config
	if s.cfg.Summary {
		sumCfg = &summary.Config{
			// The soak settles in milliseconds; flush and resolve on the
			// same timescale so incidents open and quiesce mid-run.
			Window:       25 * time.Millisecond,
			ResolveAfter: 250 * time.Millisecond,
			MinGroup:     3,
		}
	}
	active, _ := s.store.Active()
	d, err := daemon.New(daemon.Config{
		Summary:        sumCfg,
		Detector:       s.cfg.Det,
		Step:           s.ds.Step,
		Layouts:        layouts,
		ScoringWorkers: 3,
		AlertBuffer:    1024,
		BatchWindows:   s.cfg.BatchWindows,
		Shards:         shards,
		QueueSize:      256,
		Policy:         ingest.Block,
		Listener: &Listener{
			Listener: raw,
			Script:   []FaultKind{AcceptDrop, AcceptDrop},
			Counts:   s.counts,
		},
		ScrapeTargets:  []string{s.exporter.srv.URL},
		ScrapeInterval: 10 * time.Millisecond,
		ScrapeClient:   &http.Client{Transport: s.scrapeT},
		WebhookURL:     s.webhook.URL,
		WebhookRetries: 3,
		WebhookBackoff: ingest.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Factor: 2},
		WebhookClient:  webhookClient,
		OnAlert: func(a runtime.Alert) {
			s.alertMu.Lock()
			s.alerts = append(s.alerts, a)
			s.alertMu.Unlock()
		},
		Lifecycle: &lifecycle.Config{
			Step:              s.ds.Step,
			TrainOptions:      s.cfg.TrainOptions,
			SemanticGroups:    telemetry.SemanticIndex(s.ds.Catalog),
			DriftThreshold:    1.6,
			DriftWindow:       128,
			MinDriftSamples:   8,
			MinShadowWindows:  4,
			ShadowQueue:       1 << 15,
			AlertSlack:        25,
			ImprovementFactor: 0.7,
			// The soak drives drift checks and gates explicitly; the
			// manager's own ticker must never race it.
			CheckInterval: time.Hour,
			Metrics:       s.reg,
			Logger:        s.cfg.Logger,
		},
		FleetView: &fleetview.Config{
			// The soak settles in milliseconds; evaluate residuals on the
			// same timescale so vicinity passes actually run mid-chaos.
			EvalInterval: 25 * time.Millisecond,
			Metrics:      s.reg,
			Logger:       s.cfg.Logger,
		},
		Store:    s.store,
		ActiveID: active.ID,
		Metrics:  s.reg,
		Logger:   s.cfg.Logger,
	})
	if err != nil {
		_ = raw.Close()
		return nil, err
	}
	s.d = d
	s.fm.attach(d.FleetView())
	// The fleet endpoints ride the same obs handler an operator would
	// scrape; the SSE client below holds a live stream open through every
	// chaos phase.
	s.fleetSrv = httptest.NewServer(obs.Handler(s.reg, nil, d.FleetView().Mounts()...))
	s.sseErr = make(chan error, 1)
	if err := s.startSSE(); err != nil {
		s.fleetSrv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = d.Close(ctx)
		return nil, err
	}
	s.pushURL = "http://" + d.Addr() + "/push"
	return func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := d.Close(ctx); err != nil {
			return fmt.Errorf("chaos: daemon close: %w", err)
		}
		select {
		case err := <-d.ServeErr():
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return fmt.Errorf("chaos: intake server died: %w", err)
			}
		case <-time.After(5 * time.Second):
			return errors.New("chaos: intake server did not report shutdown")
		}
		return nil
	}, nil
}

// closeSeams releases client-side resources so leak checks see a quiet
// process. Closing fleetSrv blocks until the SSE handler unwinds, so by
// the time reconcile reads sseErr the stream's fate is decided.
func (s *soak) closeSeams() {
	s.webhook.Close()
	s.exporter.srv.Close()
	if s.fleetSrv != nil {
		s.fleetSrv.Close()
	}
	for _, c := range []*http.Client{s.fwdClient, s.plainClient} {
		c.CloseIdleConnections()
	}
}

// startSSE opens the live /fleet/events stream and consumes it on a
// background goroutine until the aggregator closes it (daemon shutdown).
// Every data frame is counted; the exit error lands in s.sseErr.
func (s *soak) startSSE() error {
	req, err := http.NewRequest(http.MethodGet, s.fleetSrv.URL+"/fleet/events?stream=1", nil)
	if err != nil {
		return err
	}
	resp, err := s.plainClient.Do(req)
	if err != nil {
		return fmt.Errorf("chaos: sse connect: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		_ = resp.Body.Close()
		return fmt.Errorf("chaos: sse connect returned %s", resp.Status)
	}
	go func() {
		defer func() { _ = resp.Body.Close() }()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if strings.HasPrefix(sc.Text(), "data: ") {
				s.sseData.Add(1)
			}
		}
		// EOF is the orderly end (aggregator closed); anything else is a
		// mid-stream failure reconcile flags.
		s.sseErr <- sc.Err()
	}()
	return nil
}

// fleetProbe asserts /fleet/state answers with a coherent snapshot while
// chaos is in flight.
func (s *soak) fleetProbe() error {
	resp, err := s.plainClient.Get(s.fleetSrv.URL + "/fleet/state?spark=4")
	if err != nil {
		return fmt.Errorf("chaos: fleet state probe: %w", err)
	}
	defer func() { _, _ = io.Copy(io.Discard, resp.Body); _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: fleet state probe returned %s", resp.Status)
	}
	var st fleetview.FleetState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("chaos: fleet state probe decode: %w", err)
	}
	if len(st.Nodes) == 0 || st.Seq == 0 {
		return fmt.Errorf("chaos: fleet state probe empty (nodes %d, seq %d)", len(st.Nodes), st.Seq)
	}
	s.rep.FleetProbes++
	return nil
}

// drive runs the scenario's cycles against the live daemon.
func (s *soak) drive() error {
	ds := s.ds
	split := ds.SplitTime()
	midA := split + (ds.Horizon-split)*7/10
	midA -= midA % ds.Step
	midB := split + (ds.Horizon-split)*85/100
	midB -= midB % ds.Step

	for cycle := 0; cycle < s.cfg.Cycles; cycle++ {
		offset := int64(cycle) * (ds.Horizon - split)

		// Phase A: the clean-rate stream (carrying the dataset's injected
		// anomalies) under out-of-order/dup/skew faults, a mid-stream
		// flood burst, and two forced hot swaps while the flood drains.
		lines := s.stream.Perturb(phaseLines(ds, split, midA, 1, offset))
		flood := append(
			nodeLines(ds, s.stream.SwapNode, "flood-0", split, midA, 1, offset),
			nodeLines(ds, s.stream.DupNode, "flood-1", split, midA, 1, offset)...)
		s.counts.Add(FloodBurst, int64(len(flood)))
		mid := len(lines) / 2
		withFlood := make([]ingest.Line, 0, len(lines)+len(flood))
		withFlood = append(withFlood, lines[:mid]...)
		withFlood = append(withFlood, flood...)
		withFlood = append(withFlood, lines[mid:]...)
		endFeed := s.span("chaos_feed")
		if err := s.feed(withFlood, 2); err != nil {
			endFeed()
			return err
		}
		endFeed()
		if err := s.settle(); err != nil {
			return err
		}
		if err := s.fleetProbe(); err != nil {
			return err
		}

		// Phase B: a sustained 4x workload shift drives drift; retraining
		// runs off the buffered (chaos-perturbed) stream.
		if err := s.feed(s.stream.Perturb(phaseLines(ds, midA, midB, 4, offset)), 0); err != nil {
			return err
		}
		if err := s.settle(); err != nil {
			return err
		}
		if err := s.fleetProbe(); err != nil {
			return err
		}
		mgr := s.d.Manager()
		drifted, reason := mgr.Drift().Check()
		if !drifted {
			if cycle == 0 {
				return errors.New("chaos: shifted stream did not register drift")
			}
			// A promoted candidate was trained on shifted data, so later
			// cycles may legitimately sit inside its baseline.
			reason = "chaos-scheduled"
		}
		endRetrain := s.span("chaos_retrain")
		t0 := time.Now()
		_, err := mgr.RetrainNow(context.Background(), "chaos: "+reason)
		s.rep.RetrainWall = time.Since(t0)
		endRetrain()
		if err != nil {
			return fmt.Errorf("chaos: retrain: %w", err)
		}

		// Phase C: the candidate audits the rest of the shifted stream in
		// shadow, then the gate decides under a forced verdict.
		if err := s.feed(s.stream.Perturb(phaseLines(ds, midB, ds.Horizon, 4, offset)), 0); err != nil {
			return err
		}
		if err := s.settle(); err != nil {
			return err
		}
		if err := s.fleetProbe(); err != nil {
			return err
		}
		endSwap := s.span("chaos_swap")
		dec, decided := mgr.DecideShadow(true)
		endSwap()
		if !decided {
			return errors.New("chaos: shadow gate did not decide")
		}
		s.rep.Decisions = append(s.rep.Decisions, dec)
		if dec.Promoted {
			s.rep.Promotions++
		}
	}

	// Hold the loop open until every scripted scrape fault has been
	// injected at least twice.
	deadline := time.Now().Add(20 * time.Second)
	for s.scrapeT.Requests() < 2*int64(s.scrapeLen) {
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: scrape schedule incomplete: %d requests", s.scrapeT.Requests())
		}
		time.Sleep(5 * time.Millisecond)
	}

	return nil
}

// feed streams lines through a fresh forwarder (per-phase, so Close's
// synchronous drain is the phase barrier), forcing hot swaps at chunk
// boundaries while the stream is live.
func (s *soak) feed(lines []ingest.Line, swaps int) error {
	fwd := ingest.NewForwarder(ingest.ForwarderConfig{
		URL:        s.pushURL,
		MaxBatch:   64,
		MaxAge:     20 * time.Millisecond,
		QueueSize:  1024,
		Timeout:    10 * time.Second,
		MaxRetries: 5,
		Backoff:    ingest.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Factor: 2},
		Seed:       1,
		Client:     s.fwdClient,
		Metrics:    s.reg,
		Logger:     s.cfg.Logger,
	})
	boundary := map[int]bool{}
	for i := 1; i <= swaps; i++ {
		boundary[i*len(lines)/(swaps+1)] = true
	}
	for i, l := range lines {
		if boundary[i] {
			if _, err := s.d.Monitor().SwapDetector(s.cfg.Det); err != nil {
				return fmt.Errorf("chaos: forced swap: %w", err)
			}
			s.rep.ForcedSwaps++
		}
		s.fwdLines++
		switch {
		case len(l.Metrics) > 0:
			fwd.RegisterNode(l.Node, l.Metrics)
		case l.Job != nil:
			fwd.ObserveJob(l.Node, *l.Job, l.Start)
			s.pushJobs++
		default:
			vals := make([]float64, len(l.Values))
			for i, v := range l.Values {
				vals[i] = float64(v)
			}
			fwd.Ingest(l.Node, l.Time, vals)
			s.pushSamples++
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := fwd.Close(ctx); err != nil {
		return fmt.Errorf("chaos: forwarder drain: %w", err)
	}
	return nil
}

// settle blocks until everything enqueued before it has been applied by
// the monitor. It pushes one probe sample onto every shard (outside the
// chaos client) and waits for all of them to surface in the monitor's
// snapshot: shard queues are FIFO, so a visible probe proves its shard
// drained everything ahead of it.
func (s *soak) settle() error {
	s.probeSeq++
	ts := s.ds.Horizon*2 + s.probeSeq*s.ds.Step
	var b strings.Builder
	for _, p := range s.probes {
		fmt.Fprintf(&b, `{"node":%q,"time":%d,"values":[0]}`+"\n", p, ts)
	}
	resp, err := s.plainClient.Post(s.pushURL, "application/x-ndjson", strings.NewReader(b.String()))
	if err != nil {
		return fmt.Errorf("chaos: probe push: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("chaos: probe push returned %s", resp.Status)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		seen := map[string]int{}
		for _, st := range s.d.Monitor().Snapshot() {
			seen[st.Node] = st.Buffered + st.Consumed
		}
		ok := true
		for _, p := range s.probes {
			if int64(seen[p]) < s.probeSeq {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: shards did not settle (probe %d, seen %v)", s.probeSeq, seen)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// recall matches delivered alerts against the dataset's ground-truth
// faults that fall inside [from, to), un-skewing alerts from the
// clock-skewed node.
func (s *soak) recall(alerts []runtime.Alert, from, to int64) (matched, total int, recall float64) {
	for _, f := range s.ds.Faults {
		if f.Start < from || f.End > to {
			continue
		}
		total++
		skew := int64(0)
		if f.Node == s.stream.SkewNode {
			skew = s.stream.SkewSec
		}
		for _, a := range alerts {
			if a.Node != f.Node {
				continue
			}
			at := a.Time - skew
			if at >= f.Start-2*s.ds.Step && at <= f.End+s.cfg.SlackSec {
				matched++
				break
			}
		}
	}
	if total == 0 {
		return 0, 0, 0
	}
	return matched, total, float64(matched) / float64(total)
}

// registryDrill corrupts the active model on disk and demands the store
// quarantine it and recover a loadable predecessor.
func (s *soak) registryDrill() error {
	corrupted, err := CorruptActiveModel(s.store, s.counts)
	if err != nil {
		return err
	}
	det, v, err := s.store.LoadActive()
	if err != nil {
		return fmt.Errorf("chaos: registry did not recover from corruption: %w", err)
	}
	if det == nil || v.ID == corrupted {
		return fmt.Errorf("chaos: corrupted version %s still active", corrupted)
	}
	entries, err := os.ReadDir(filepath.Join(s.store.Dir(), "quarantine"))
	if err != nil || len(entries) == 0 {
		return fmt.Errorf("chaos: corrupted payload was not quarantined (err %v)", err)
	}
	for _, rec := range s.store.Versions() {
		if rec.ID == corrupted && rec.Status != lifecycle.StatusQuarantined {
			return fmt.Errorf("chaos: version %s status %q, want quarantined", corrupted, rec.Status)
		}
	}
	s.rep.QuarantinedID, s.rep.RecoveredID = corrupted, v.ID
	return nil
}

// reconcile scrapes the daemon's own /metrics exposition and demands the
// counters account for every injected fault — the harness's core
// contract. All violations are reported together.
func (s *soak) reconcile() error {
	m, err := s.metricsSnapshot()
	if err != nil {
		return err
	}
	get := func(name string) int64 {
		var sum float64
		for key, v := range m {
			if key == name || strings.HasPrefix(key, name+"{") {
				sum += v
			}
		}
		return int64(sum + 0.5)
	}
	var errs []string
	chk := func(label string, got, want int64) {
		if got != want {
			errs = append(errs, fmt.Sprintf("%s: got %d, want %d", label, got, want))
		}
	}
	cs := s.counts.Snapshot()
	s.rep.Counts = cs
	s.rep.FaultKinds = s.counts.Kinds()
	s.rep.PushLines, s.rep.PushSamples, s.rep.PushJobs = s.fwdLines, s.pushSamples, s.pushJobs
	s.alertMu.Lock()
	alerts := append([]runtime.Alert(nil), s.alerts...)
	s.alertMu.Unlock()
	s.rep.Alerts = len(alerts)
	s.rep.Epoch = s.d.Monitor().Epoch()

	// Recall over the clean-phase ground truth: the daemon is drained, so
	// the alert list is final. Chaos may delay detection; it must not
	// blind it.
	split := s.ds.SplitTime()
	midA := split + (s.ds.Horizon-split)*7/10
	midA -= midA % s.ds.Step
	s.rep.MatchedFaults, s.rep.TotalFaults, s.rep.Recall = s.recall(alerts, split, midA)
	if s.rep.TotalFaults == 0 {
		errs = append(errs, "no ground-truth faults inside the clean phase")
	} else if s.rep.Recall < s.cfg.RecallFloor {
		errs = append(errs, fmt.Sprintf("recall %.3f below floor %.3f (%d/%d faults)",
			s.rep.Recall, s.cfg.RecallFloor, s.rep.MatchedFaults, s.rep.TotalFaults))
	}

	// Scrape path: every injected fault is a counted failure, every
	// non-faulted request a counted success. Shutdown may cancel one
	// in-flight scrape, adding a single failure outside the ledger.
	scrapeInjected := cs[Scrape5xx] + cs[ScrapeDrop] + cs[ScrapeGarble] + cs[ScrapeTruncate]
	scrapeFails := get("nodesentry_scrape_failures_total")
	if scrapeFails < scrapeInjected || scrapeFails > scrapeInjected+1 {
		errs = append(errs, fmt.Sprintf("scrape failures: got %d, want %d (+1 shutdown tolerance)",
			scrapeFails, scrapeInjected))
	}
	scrapeOK := get("nodesentry_scrape_total")
	s.rep.ScrapeSweeps = scrapeOK
	if diff := scrapeOK + scrapeFails - s.scrapeT.Requests(); diff < 0 || diff > 1 {
		errs = append(errs, fmt.Sprintf("scrape accounting: %d ok + %d failed vs %d requests",
			scrapeOK, scrapeFails, s.scrapeT.Requests()))
	}
	chk("parse errors", get("nodesentry_intake_parse_errors_total"), cs[ScrapeGarble]+cs[ScrapeTruncate])

	// Sample conservation: intake == push + probes + scrape, and the
	// monitor scored every one of them.
	probeSamples := s.probeSeq * int64(len(s.probes))
	chk("intake samples", get("nodesentry_intake_samples_total"),
		s.pushSamples+probeSamples+int64(len(s.exporter.nodes))*scrapeOK)
	chk("monitor ingest", get("nodesentry_ingest_samples_total"), get("nodesentry_intake_samples_total"))
	chk("intake jobs", get("nodesentry_intake_jobs_total"), s.pushJobs+int64(len(s.exporter.nodes)))
	chk("unregistered samples", get("nodesentry_ingest_unregistered_total"), 0)
	chk("shape mismatches", get("nodesentry_intake_shape_mismatch_total")+get("nodesentry_ingest_shape_mismatch_total"), 0)

	// Zero drop, everywhere: shard queues, forwarder, alert channel.
	chk("shard dropped", get("nodesentry_shard_dropped_total"), 0)
	chk("router dropped", s.d.Router().Dropped(), 0)
	chk("forward dropped", get("nodesentry_forward_dropped_total"), 0)
	chk("forward lines", get("nodesentry_forward_lines_total"), s.fwdLines)
	chk("monitor alert drops", s.d.Monitor().Dropped(), 0)
	chk("alerts dropped", get("nodesentry_alerts_dropped_total"), 0)

	// Every injected intake failure surfaces as exactly one forwarder
	// retry (and one counted failure), and nothing else does.
	chk("forward retries", get("nodesentry_forward_retries_total"), cs[AcceptDrop]+cs[ConnDrop])
	chk("forward failures", get("nodesentry_forward_failures_total"), cs[AcceptDrop]+cs[ConnDrop])

	// Alert path: everything the monitor delivered reached the webhook
	// receiver despite the flaky transport. With the summarization tier
	// interposed the delivery unit changes — folded alerts arrive as one
	// incident payload per open/resolve edge, unfolded ones stay
	// per-alert — but the accounting identity is exact either way.
	chk("alerts delivered", get("nodesentry_alerts_delivered_total"), int64(len(alerts)))
	if sum := s.d.Summarizer(); sum != nil {
		st := sum.Stats()
		s.rep.SummaryObserved, s.rep.SummaryFolded, s.rep.SummaryRaw = st.Observed, st.Folded, st.Raw
		s.rep.IncidentsOpened, s.rep.IncidentsResolved = st.Opened, st.Resolved
		chk("summary observed", st.Observed, int64(len(alerts)))
		chk("summary folded+raw", st.Folded+st.Raw, st.Observed)
		chk("summary metric observed", get("nodesentry_summary_alerts_observed_total"), st.Observed)
		chk("summary metric folded", get("nodesentry_summary_alerts_folded_total"), st.Folded)
		// Daemon close force-flushed and resolved everything: the fault
		// cleared, so no incident stays open and none leaks.
		chk("incidents resolved", st.Resolved, st.Opened)
		chk("open incidents after close", int64(sum.OpenCount()), 0)
		chk("summary metric open", get("nodesentry_summary_incidents_open"), 0)
		chk("webhook delivered", get("nodesentry_webhook_delivered_total"), st.Emissions())
		chk("webhook received", s.webhookOK.Load(), st.Emissions())
	} else {
		chk("webhook delivered", get("nodesentry_webhook_delivered_total"), int64(len(alerts)))
		chk("webhook received", s.webhookOK.Load(), int64(len(alerts)))
	}
	chk("webhook failures", get("nodesentry_webhook_failures_total"), cs[Webhook5xx])
	chk("webhook retries", get("nodesentry_webhook_retries_total"), cs[Webhook5xx])

	// Swap accounting: forced swaps plus promotions, every alert stamped
	// with a valid epoch.
	wantSwaps := int64(s.rep.ForcedSwaps + s.rep.Promotions)
	chk("detector swaps", get("nodesentry_detector_swaps_total"), wantSwaps)
	chk("detector epoch", s.rep.Epoch, 1+wantSwaps)
	for _, a := range alerts {
		if a.Epoch < 1 || a.Epoch > s.rep.Epoch {
			errs = append(errs, fmt.Sprintf("alert epoch %d outside [1, %d]", a.Epoch, s.rep.Epoch))
			break
		}
	}
	// Fleet tier: the event journal's fault ledger must equal the injected
	// ledger exactly (both directions), and the state/SSE surfaces must
	// have stayed live through every phase and terminated cleanly.
	fv := s.d.FleetView()
	ft := fv.FaultTotals()
	for kind, n := range cs {
		chk("fleet fault "+string(kind), ft[string(kind)], n)
	}
	for kind := range ft {
		if _, ok := cs[FaultKind(kind)]; !ok {
			errs = append(errs, fmt.Sprintf("fleet journal has fault kind %q the ledger never injected", kind))
		}
	}
	for _, n := range fv.Journal().Totals() {
		s.rep.FleetEvents += n
	}
	if s.rep.FleetEvents == 0 {
		errs = append(errs, "fleet journal recorded no events")
	}
	if s.rep.FleetProbes == 0 {
		errs = append(errs, "no /fleet/state probes succeeded")
	}
	select {
	case err := <-s.sseErr:
		if err != nil {
			errs = append(errs, "sse stream failed mid-run: "+err.Error())
		}
	case <-time.After(5 * time.Second):
		errs = append(errs, "sse stream did not terminate after daemon close")
	}
	s.rep.SSEEvents = s.sseData.Load()
	if s.rep.SSEEvents == 0 {
		errs = append(errs, "sse stream received no events")
	}

	if len(errs) > 0 {
		return fmt.Errorf("chaos: reconciliation failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

// metricsSnapshot scrapes the run's registry through a real /metrics
// exposition — the same surface an operator reconciles against.
func (s *soak) metricsSnapshot() (map[string]float64, error) {
	srv := httptest.NewServer(obs.Handler(s.reg, nil))
	defer srv.Close()
	resp, err := s.plainClient.Get(srv.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, err
	}
	series, err := telemetry.ParseSeries(string(body))
	if err != nil {
		return nil, err
	}
	return telemetry.SeriesMap(series), nil
}

func (s *soak) span(name string) func() {
	if s.cfg.Tracer == nil {
		return func() {}
	}
	sp := s.cfg.Tracer.Start(name)
	return sp.End
}

// phaseLines renders [from, to) of every real node as one JSONL stream:
// a layout line, job transitions in span order, and every sample scaled
// by mul with timestamps shifted by offset.
func phaseLines(ds *dataset.Dataset, from, to int64, mul float64, offset int64) []ingest.Line {
	var out []ingest.Line
	for _, node := range ds.Nodes() {
		out = append(out, nodeLines(ds, node, node, from, to, mul, offset)...)
	}
	return out
}

// nodeLines renders one node's [from, to) slice, optionally under an
// assumed name (the flood clones).
func nodeLines(ds *dataset.Dataset, src, as string, from, to int64, mul float64, offset int64) []ingest.Line {
	f := ds.Frames[src]
	view := f.Slice(f.IndexOf(from), f.IndexOf(to))
	out := []ingest.Line{{Node: as, Metrics: view.Metrics}}
	spans := ds.SpansForNode(src, from, to)
	si := 0
	for t := 0; t < view.Len(); t++ {
		ts := view.Start + int64(t)*view.Step
		for si < len(spans) && spans[si].Start <= ts {
			job := spans[si].Job
			out = append(out, ingest.Line{Node: as, Job: &job, Start: spans[si].Start + offset})
			si++
		}
		vals := make([]ingest.JSONFloat, len(view.Data))
		for m := range vals {
			vals[m] = ingest.JSONFloat(view.Data[m][t] * mul)
		}
		out = append(out, ingest.Line{Node: as, Time: ts + offset, Values: vals})
	}
	return out
}

// probeNames brute-forces one node name per shard under the router's
// FNV-1a placement, so a settle probe lands on every queue.
func probeNames(shards int) []string {
	names := make([]string, shards)
	for target := range names {
		for j := 0; ; j++ {
			name := fmt.Sprintf("chaos-probe-%d", j)
			if ingest.FNVShard(name, shards) == target {
				names[target] = name
				break
			}
		}
	}
	return names
}

// exporter is the scrape-side origin: a /metrics endpoint exposing two
// synthetic nodes whose bodies advance one timestep per request, with
// job-transition lines on the first body. Faults never originate here —
// the chaos Transport in front decides which requests arrive and which
// bodies are delivered intact.
type exporter struct {
	srv     *httptest.Server
	nodes   []string
	metrics []string
	data    [][]float64
	start   int64
	step    int64
	k       atomic.Int64
}

func newExporter(ds *dataset.Dataset) *exporter {
	src := ds.Nodes()[0]
	f := ds.Frames[src]
	view := f.Slice(f.IndexOf(ds.SplitTime()), f.Len())
	data := make([][]float64, len(view.Data))
	for m := range view.Data {
		data[m] = make([]float64, view.Len())
		for t := 0; t < view.Len(); t++ {
			v := view.Data[m][t]
			if v != v { // NaN would be omitted from the body; keep every
				v = 0 // line so sample accounting stays exact
			}
			data[m][t] = v
		}
	}
	e := &exporter{
		nodes:   []string{"scrape-0", "scrape-1"},
		metrics: view.Metrics,
		data:    data,
		start:   view.Start,
		step:    view.Step,
	}
	e.srv = httptest.NewServer(http.HandlerFunc(e.serve))
	return e
}

func (e *exporter) serve(w http.ResponseWriter, r *http.Request) {
	k := e.k.Add(1) - 1
	t := int(k % int64(len(e.data[0])))
	tsMs := (e.start + k*e.step) * 1000
	// Append-based formatting: a scrape body is thousands of series lines
	// and per-line fmt boxing dominated the soak's allocation profile. The
	// node names here are plain ASCII, so %q reduces to bare quotes.
	b := make([]byte, 0, 64<<10)
	series := func(name, node string, v float64) {
		b = append(b, name...)
		b = append(b, `{node="`...)
		b = append(b, node...)
		b = append(b, `"} `...)
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		b = append(b, ' ')
		b = strconv.AppendInt(b, tsMs, 10)
		b = append(b, '\n')
	}
	for _, node := range e.nodes {
		if k == 0 {
			series(ingest.JobTransitionSeries, node, 7)
		}
		for m, name := range e.metrics {
			series(name, node, e.data[m][t])
		}
	}
	_, _ = w.Write(b)
}
