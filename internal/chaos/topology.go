// Topology drill: the sharded-fleet counterpart of the single-daemon
// soak. One in-process coordinator and N scorer daemons run the real
// production wiring (daemon.New with Config.Coord against the
// coordinator's HTTP surface) while the partition fault family is
// scripted against the control plane:
//
//   - coordinator unreachable — a scorer loses the coordinator entirely;
//     it keeps scoring its last assignment and its alert forwards fail
//     loudly (counted, never silently dropped);
//   - lease expiry mid-flood — the silent scorer's shards are reassigned
//     to the survivors while the stream is still being fed;
//   - split-brain — the partitioned scorer's data plane heals first, so
//     it keeps forwarding alerts for shards it no longer owns under a
//     stale epoch, and every one must be fenced, not double-counted.
//
// Run reconciles the exact alert ledger at the end: every alert any
// scorer raised is accounted for in exactly one bucket (accepted,
// fenced, deduped, or transport-errored), the coordinator's accepted
// stream holds no (node, time) twice, and recall over the steady-phase
// ground truth stays above the floor.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nodesentry/internal/coord"
	"nodesentry/internal/core"
	"nodesentry/internal/daemon"
	"nodesentry/internal/dataset"
	"nodesentry/internal/obs"
	"nodesentry/internal/runtime"
	"nodesentry/internal/telemetry"
)

// Partition modes, per scorer, flipped atomically mid-run.
const (
	partHealthy int32 = iota
	// partControl fails only the membership endpoints: heartbeats and
	// registration are dark, alert forwards and model pulls still flow.
	// This is the split-brain shape — the scorer keeps acting on a stale
	// assignment and the coordinator must fence it.
	partControl
	// partFull fails every request to the coordinator.
	partFull
)

// partitionTransport injects coordinator-partition faults on a scorer's
// client. The zero value is healthy.
type partitionTransport struct {
	base http.RoundTripper
	mode atomic.Int32
}

func (p *partitionTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	switch p.mode.Load() {
	case partFull:
		return nil, fmt.Errorf("chaos: coordinator unreachable (injected)")
	case partControl:
		switch r.URL.Path {
		case "/coord/register", "/coord/heartbeat", "/coord/leave":
			return nil, fmt.Errorf("chaos: control plane partitioned (injected)")
		}
	}
	return p.base.RoundTrip(r)
}

// TopologyConfig parameterizes one partition drill.
type TopologyConfig struct {
	// DS supplies telemetry and fault ground truth (required).
	DS *dataset.Dataset
	// Det is the trained incumbent every scorer runs (required).
	Det *core.Detector
	// Scorers is the fleet size (default and minimum 2; scorer 1 is the
	// partition victim).
	Scorers int
	// TotalShards is the coordinator's partition-line count (default 8).
	TotalShards int
	// RecallFloor is the minimum fault recall over the steady phase
	// (default 0.2).
	RecallFloor float64
	// SlackSec pads alert-to-fault matching (default 30*DS.Step).
	SlackSec int64
	// Logger, when non-nil, receives component logs.
	Logger *slog.Logger
}

// TopologyReport is one drill's evidence, fully reconciled by Run.
type TopologyReport struct {
	// Scorers / TotalShards echo the topology.
	Scorers, TotalShards int
	// FinalEpoch is the assignment-table generation after recovery;
	// Reassigns counts reassignment events in the coordinator journal.
	FinalEpoch int64
	Reassigns  int
	// Ledger is the coordinator's exact alert accounting.
	Ledger coord.Ledger
	// Raised is every alert each scorer's own consumer delivered;
	// ForwardErrors counts forwards that exhausted their retries against
	// a partitioned coordinator. Raised == Ledger.Received+ForwardErrors.
	Raised        int
	ForwardErrors int64
	// UniqueAccepted == Ledger.Accepted (no (node, time) double-counts).
	UniqueAccepted int
	// MatchedFaults / TotalFaults / Recall measure detection over the
	// steady-phase ground truth, from the coordinator's accepted stream.
	MatchedFaults, TotalFaults int
	Recall                     float64
}

// topoScorer is one scorer daemon plus its drill-side instrumentation.
type topoScorer struct {
	id    string
	d     *daemon.Daemon
	part  *partitionTransport
	reg   *obs.Registry
	close func()

	mu     sync.Mutex
	raised []runtime.Alert
}

func (s *topoScorer) raisedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.raised)
}

// counterTotal scrapes one counter family's sum from a registry.
func counterTotal(reg *obs.Registry, name string) int64 {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return 0
	}
	series, err := telemetry.ParseSeries(buf.String())
	if err != nil {
		return 0
	}
	var sum float64
	for _, s := range series {
		if s.Name == name {
			sum += s.Value
		}
	}
	return int64(sum + 0.5)
}

// RunTopology executes one partition cycle against a live 1-coordinator
// + N-scorer topology and returns the reconciled report; any
// unaccounted alert, double count, or recall regression is an error.
func RunTopology(cfg TopologyConfig) (*TopologyReport, error) {
	if cfg.DS == nil || cfg.Det == nil {
		return nil, fmt.Errorf("chaos: topology needs DS and Det")
	}
	if cfg.Scorers < 2 {
		cfg.Scorers = 2
	}
	if cfg.TotalShards <= 0 {
		cfg.TotalShards = 8
	}
	if cfg.RecallFloor == 0 {
		cfg.RecallFloor = 0.2
	}
	if cfg.SlackSec == 0 {
		cfg.SlackSec = 30 * cfg.DS.Step
	}

	// Coordinator: short leases so expiry lands mid-drill, fast sweeps.
	c := coord.New(coord.Config{
		TotalShards:   cfg.TotalShards,
		LeaseTTL:      400 * time.Millisecond,
		SweepInterval: 50 * time.Millisecond,
		Logger:        cfg.Logger,
	})
	defer c.Close()
	srv := httptest.NewServer(obs.Handler(nil, nil, c.Mounts()...))
	defer srv.Close()
	runCtx, stopRun := context.WithCancel(context.Background())
	runDone := make(chan struct{})
	go func() {
		defer close(runDone)
		c.Run(runCtx)
	}()
	defer func() { stopRun(); <-runDone }()

	// Scorers: the real daemon wiring, each with its own partitionable
	// client and metrics registry. Every scorer is fed the full stream —
	// the shard filter is what partitions the work, exactly as a fleet
	// fed by a non-assignment-aware broadcaster would behave.
	scorers := make([]*topoScorer, cfg.Scorers)
	for i := range scorers {
		s := &topoScorer{
			id:   fmt.Sprintf("scorer-%d", i),
			part: &partitionTransport{base: http.DefaultTransport},
			reg:  obs.NewRegistry(),
		}
		client := &http.Client{Timeout: 5 * time.Second, Transport: s.part}
		d, err := daemon.New(daemon.Config{
			Detector: cfg.Det, Step: cfg.DS.Step, ScoringWorkers: 2, Shards: 4,
			Coord: &coord.AgentConfig{
				ID:                s.id,
				CoordinatorURL:    srv.URL,
				HeartbeatInterval: 50 * time.Millisecond,
				PullInterval:      -1,
				Client:            client,
			},
			OnAlert: func(a runtime.Alert) {
				s.mu.Lock()
				s.raised = append(s.raised, a)
				s.mu.Unlock()
			},
			Metrics: s.reg,
			Logger:  cfg.Logger,
		})
		if err != nil {
			for _, prev := range scorers[:i] {
				prev.close()
			}
			return nil, fmt.Errorf("chaos: topology scorer %d: %w", i, err)
		}
		s.d = d
		s.close = func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = d.Close(ctx)
			client.CloseIdleConnections()
		}
		scorers[i] = s
	}
	closeScorers := func() {
		for _, s := range scorers {
			s.close()
		}
	}
	defer closeScorers()

	t := &topo{cfg: cfg, c: c, scorers: scorers}
	if err := t.drive(); err != nil {
		return nil, err
	}
	// Quiesce fully (drain every scorer) before the final reconciliation.
	closeScorers()
	return t.reconcile()
}

type topo struct {
	cfg     TopologyConfig
	c       *coord.Coordinator
	scorers []*topoScorer
	rep     TopologyReport
}

// await polls cond until it returns nil or the deadline passes.
func await(what string, d time.Duration, cond func() error) error {
	deadline := time.Now().Add(d)
	for {
		err := cond()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s: %w", what, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// quiesce waits until the whole topology stops moving: the coordinator
// ledger, every scorer's raised count, and every scorer's forward-error
// counter unchanged for a stability window. Alert forwarding retries on
// a 50ms backoff, so the window must comfortably exceed one retry run.
func (t *topo) quiesce() error {
	snapshot := func() string {
		var b strings.Builder
		fmt.Fprintf(&b, "%+v", t.c.LedgerSnapshot())
		for _, s := range t.scorers {
			fmt.Fprintf(&b, "|%d/%d", s.raisedCount(),
				counterTotal(s.reg, "nodesentry_agent_forward_errors_total"))
		}
		return b.String()
	}
	last, since := snapshot(), time.Now()
	deadline := time.Now().Add(30 * time.Second)
	for {
		time.Sleep(25 * time.Millisecond)
		cur := snapshot()
		if cur != last {
			last, since = cur, time.Now()
			continue
		}
		if time.Since(since) > 500*time.Millisecond {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: topology did not quiesce")
		}
	}
}

// feed renders [from, to) shifted by offset and pushes the identical
// JSONL stream through every scorer's decoder.
func (t *topo) feed(from, to, offset int64) error {
	var buf bytes.Buffer
	for _, l := range phaseLines(t.cfg.DS, from, to, 1, offset) {
		raw, err := json.Marshal(l)
		if err != nil {
			return fmt.Errorf("chaos: topology feed: %w", err)
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	for _, s := range t.scorers {
		if _, err := s.d.Decoder().PushJSONL(bytes.NewReader(buf.Bytes())); err != nil {
			return fmt.Errorf("chaos: topology feed %s: %w", s.id, err)
		}
	}
	return nil
}

// filtersAtCurrentEpoch reports whether every live scorer has applied
// the coordinator's current assignment table.
func (t *topo) filtersAt(epoch int64, live func(i int) bool) func() error {
	return func() error {
		for i, s := range t.scorers {
			if live != nil && !live(i) {
				continue
			}
			if got := s.d.ShardFilter().Epoch(); got != epoch {
				return fmt.Errorf("%s filter at epoch %d, want %d", s.id, got, epoch)
			}
		}
		return nil
	}
}

func (t *topo) drive() error {
	ds := t.cfg.DS
	split := ds.SplitTime()
	midA := split + (ds.Horizon-split)*7/10
	midA -= midA % ds.Step
	span := ds.Horizon - split
	victim := t.scorers[1]

	// Every scorer joins; the table settles at one epoch per join.
	if err := await("fleet forms", 10*time.Second, func() error {
		if got := len(t.c.Scorers()); got != len(t.scorers) {
			return fmt.Errorf("members = %d", got)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := await("assignments applied", 10*time.Second,
		t.filtersAt(t.c.Epoch(), nil)); err != nil {
		return err
	}

	// Phase 1 — steady state: disjoint ownership, every alert lands.
	if err := t.feed(split, midA, 0); err != nil {
		return err
	}
	if err := t.quiesce(); err != nil {
		return err
	}
	led1 := t.c.LedgerSnapshot()
	if led1.Accepted == 0 {
		return fmt.Errorf("chaos: steady phase raised no accepted alerts")
	}
	if led1.Fenced != 0 || led1.Deduped != 0 {
		return fmt.Errorf("chaos: steady phase not clean: %+v", led1)
	}
	epochSteady := t.c.Epoch()

	// Phase 2 — coordinator unreachable + lease expiry mid-flood: the
	// victim goes fully dark while the steady slice replays (shifted past
	// the horizon, so it deterministically re-raises the phase 1 alerts).
	// Half streams while the victim's lease is still live — its alerts
	// all fail loudly against the unreachable coordinator — then its
	// shards move to the survivors mid-stream.
	victim.part.mode.Store(partFull)
	mid1 := split + (midA-split)/2
	mid1 -= mid1 % ds.Step
	if err := t.feed(split, mid1, span); err != nil {
		return err
	}
	if err := await("lease expiry reassigns", 10*time.Second, func() error {
		if got := len(t.c.Scorers()); got != len(t.scorers)-1 {
			return fmt.Errorf("members = %d", got)
		}
		if t.c.Epoch() == epochSteady {
			return fmt.Errorf("epoch still %d", epochSteady)
		}
		return nil
	}); err != nil {
		return err
	}
	// Survivors must apply the widened assignment before the flood
	// resumes — the drill's probe that handover happens mid-stream.
	if err := await("survivors own the victim's shards", 10*time.Second,
		t.filtersAt(t.c.Epoch(), func(i int) bool { return i != 1 })); err != nil {
		return err
	}
	if err := t.feed(mid1, midA, span); err != nil {
		return err
	}
	if err := t.quiesce(); err != nil {
		return err
	}
	if got := counterTotal(victim.reg, "nodesentry_agent_forward_errors_total"); got == 0 {
		return fmt.Errorf("chaos: unreachable phase errored no forwards on the victim")
	}

	// Phase 3 — split-brain: the victim's data plane heals first. It
	// still holds its steady-state assignment, so everything it forwards
	// for its lost shards carries a stale epoch and must be fenced. The
	// steady slice replays shifted past the horizon — the same faults the
	// victim alerted on in phase 1, now fenced because ownership moved.
	victim.part.mode.Store(partControl)
	fencedBefore := t.c.LedgerSnapshot().Fenced
	if err := t.feed(split, midA, 2*span); err != nil {
		return err
	}
	if err := t.quiesce(); err != nil {
		return err
	}
	if got := t.c.LedgerSnapshot().Fenced; got == fencedBefore {
		return fmt.Errorf("chaos: split-brain phase fenced nothing")
	}

	// Phase 4 — heal and recover: the victim re-registers on its next
	// heartbeat, the table rebalances, and another shifted replay lands
	// from both sides under the new epoch.
	victim.part.mode.Store(partHealthy)
	if err := await("victim rejoins", 10*time.Second, func() error {
		if got := len(t.c.Scorers()); got != len(t.scorers) {
			return fmt.Errorf("members = %d", got)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := await("rebalanced assignments applied", 10*time.Second,
		t.filtersAt(t.c.Epoch(), nil)); err != nil {
		return err
	}
	acceptedBefore := t.c.LedgerSnapshot().Accepted
	if err := t.feed(split, midA, 3*span); err != nil {
		return err
	}
	if err := t.quiesce(); err != nil {
		return err
	}
	if got := t.c.LedgerSnapshot().Accepted; got == acceptedBefore {
		return fmt.Errorf("chaos: recovered fleet accepted nothing")
	}
	return nil
}

// reconcile checks the exact ledger equations and computes recall.
func (t *topo) reconcile() (*TopologyReport, error) {
	rep := &t.rep
	rep.Scorers, rep.TotalShards = len(t.scorers), t.cfg.TotalShards
	rep.FinalEpoch = t.c.Epoch()
	rep.Ledger = t.c.LedgerSnapshot()
	for _, e := range t.c.Journal().Since(0) {
		if e.Kind == coord.EventReassign {
			rep.Reassigns++
		}
	}

	var errs []string
	for _, s := range t.scorers {
		rep.Raised += s.raisedCount()
		rep.ForwardErrors += counterTotal(s.reg, "nodesentry_agent_forward_errors_total")
	}

	// Zero lost in transit: every raised alert is accounted for exactly
	// once — delivered (and ledgered) or a counted transport error.
	if int64(rep.Raised) != rep.Ledger.Received+rep.ForwardErrors {
		errs = append(errs, fmt.Sprintf("alert conservation: raised %d != received %d + errored %d",
			rep.Raised, rep.Ledger.Received, rep.ForwardErrors))
	}
	// The coordinator's own accounting partitions exactly.
	if rep.Ledger.Received != rep.Ledger.Accepted+rep.Ledger.Fenced+rep.Ledger.Deduped {
		errs = append(errs, fmt.Sprintf("ledger does not balance: %+v", rep.Ledger))
	}
	// Zero duplicates: the accepted stream never holds (node, time) twice.
	accepted := t.c.Accepted()
	seen := map[string]bool{}
	for _, e := range accepted {
		k := fmt.Sprintf("%s@%d", e.Node, e.Time)
		if seen[k] {
			errs = append(errs, fmt.Sprintf("duplicate accepted alert %s", k))
		}
		seen[k] = true
	}
	rep.UniqueAccepted = len(seen)
	if rep.UniqueAccepted != int(rep.Ledger.Accepted) {
		errs = append(errs, fmt.Sprintf("accepted ledger %d vs %d unique envelopes",
			rep.Ledger.Accepted, rep.UniqueAccepted))
	}
	if rep.Reassigns < 2 {
		errs = append(errs, fmt.Sprintf("expected expiry+rejoin reassignments, saw %d", rep.Reassigns))
	}

	// Recall over the steady phase, from the coordinator's accepted
	// stream — the fleet-level alert surface, not any one scorer's.
	ds := t.cfg.DS
	split := ds.SplitTime()
	midA := split + (ds.Horizon-split)*7/10
	midA -= midA % ds.Step
	for _, f := range ds.Faults {
		if f.Start < split || f.End > midA {
			continue
		}
		rep.TotalFaults++
		for _, e := range accepted {
			if e.Node == f.Node && e.Time >= f.Start-2*ds.Step && e.Time <= f.End+t.cfg.SlackSec {
				rep.MatchedFaults++
				break
			}
		}
	}
	if rep.TotalFaults == 0 {
		errs = append(errs, "no ground-truth faults inside the steady phase")
	} else {
		rep.Recall = float64(rep.MatchedFaults) / float64(rep.TotalFaults)
		if rep.Recall < t.cfg.RecallFloor {
			errs = append(errs, fmt.Sprintf("recall %.3f below floor %.3f (%d/%d faults)",
				rep.Recall, t.cfg.RecallFloor, rep.MatchedFaults, rep.TotalFaults))
		}
	}

	if len(errs) != 0 {
		sort.Strings(errs)
		return rep, fmt.Errorf("chaos: topology reconciliation failed:\n  %s", strings.Join(errs, "\n  "))
	}
	return rep, nil
}
