// Package chaos is the deterministic infrastructure-fault-injection and
// soak-test harness for the sentryd loop. Where internal/faults perturbs
// the *telemetry* (the anomalies the detector must find), this package
// perturbs the *infrastructure carrying it* — connections are dropped at
// accept, webhook sinks turn flaky or slow, scrape bodies arrive
// truncated or garbled, node streams reorder, duplicate, and skew their
// timestamps, the model registry is corrupted mid-lifecycle, and bursts
// of extra nodes flood the intake — while the full production wiring
// (push+scrape intake → decoder → shard router → monitor → drift →
// retrain → shadow → hot swap) keeps running underneath.
//
// Everything is scripted, not randomized: each seam consumes an explicit
// fault schedule, so a soak run injects an exactly known number of each
// fault kind and the final reconciliation can demand that the daemon's
// /metrics counters account for every single one. That is the harness's
// core contract, mirroring the paper's §5.1 fault-drill methodology
// (ChaosBlade-style infrastructure faults against the deployed pipeline):
// chaos is only trustworthy when the injected dose is measurable at the
// other end.
package chaos

import "sync"

// FaultKind names one injectable infrastructure fault. The string value
// is the reporting key in Counts and soak reports.
type FaultKind string

const (
	// AcceptDrop closes an intake connection at accept, before any bytes
	// flow — a flaky load balancer or SYN-dropping firewall.
	AcceptDrop FaultKind = "accept_drop"
	// ConnDrop fails a forwarder POST at the transport with a connection
	// error — a mid-flight network partition.
	ConnDrop FaultKind = "conn_drop"
	// Scrape5xx answers a scrape with a synthesized 503, never reaching
	// the exporter.
	Scrape5xx FaultKind = "scrape_5xx"
	// ScrapeDrop fails a scrape at the transport with a connection error.
	ScrapeDrop FaultKind = "scrape_drop"
	// ScrapeGarble delivers the exporter's real body with bytes flipped —
	// a corrupted proxy buffer. Always unparseable.
	ScrapeGarble FaultKind = "scrape_garble"
	// ScrapeTruncate delivers only a prefix of the exporter's body — a
	// connection cut mid-transfer. Always unparseable.
	ScrapeTruncate FaultKind = "scrape_truncate"
	// Webhook5xx fails an alert delivery with a synthesized 503.
	Webhook5xx FaultKind = "webhook_5xx"
	// WebhookSlow delays an alert delivery before letting it through.
	WebhookSlow FaultKind = "webhook_slow"
	// OutOfOrder swaps adjacent samples of one node's stream.
	OutOfOrder FaultKind = "out_of_order"
	// DupTimestamp re-emits a sample with an already-used timestamp.
	DupTimestamp FaultKind = "dup_timestamp"
	// ClockSkew shifts one node's entire stream by a constant offset — an
	// unsynchronized node clock.
	ClockSkew FaultKind = "clock_skew"
	// RegistryCorrupt flips bytes inside the active model payload on disk.
	RegistryCorrupt FaultKind = "registry_corrupt"
	// FloodBurst injects a contiguous burst of extra-node samples
	// mid-stream — a backpressure spike.
	FloodBurst FaultKind = "flood_burst"
	// Pass is the no-fault schedule entry.
	Pass FaultKind = "pass"
)

// Counts tallies injected faults by kind, shared by every seam of one
// scenario so the soak's reconciliation reads a single ledger. Safe for
// concurrent use.
type Counts struct {
	mu sync.Mutex
	m  map[FaultKind]int64
	// OnAdd, when non-nil, observes every recorded injection after the
	// ledger update (outside the lock). Set it before any seam starts
	// injecting — it is not synchronized against concurrent assignment.
	// The fleetview event journal uses it to mirror the ledger.
	OnAdd func(kind FaultKind, n int64)
}

// NewCounts returns an empty ledger.
func NewCounts() *Counts { return &Counts{m: map[FaultKind]int64{}} }

// Add records n injections of kind. Pass is never recorded.
func (c *Counts) Add(kind FaultKind, n int64) {
	if kind == Pass || n == 0 {
		return
	}
	c.mu.Lock()
	c.m[kind] += n
	cb := c.OnAdd
	c.mu.Unlock()
	if cb != nil {
		cb(kind, n)
	}
}

// Get returns the tally for one kind.
func (c *Counts) Get(kind FaultKind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[kind]
}

// Snapshot returns a copy of the ledger.
func (c *Counts) Snapshot() map[FaultKind]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[FaultKind]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Kinds returns how many distinct fault kinds have been injected.
func (c *Counts) Kinds() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.m {
		if v > 0 {
			n++
		}
	}
	return n
}
