package chaos_test

import (
	"testing"

	"nodesentry/internal/chaos"
	"nodesentry/internal/ingest"
)

func sample(node string, ts int64) ingest.Line {
	return ingest.Line{Node: node, Time: ts, Values: []ingest.JSONFloat{ingest.JSONFloat(ts)}}
}

// TestStreamChaosPerturb pins the stream faults: swapped pairs, exact
// duplicates, constant skew — all deterministic, all ledgered.
func TestStreamChaosPerturb(t *testing.T) {
	var lines []ingest.Line
	lines = append(lines, ingest.Line{Node: "a", Metrics: []string{"m"}})
	job := int64(9)
	lines = append(lines, ingest.Line{Node: "c", Job: &job, Start: 60})
	for ts := int64(60); ts <= 600; ts += 60 {
		lines = append(lines, sample("a", ts), sample("b", ts), sample("c", ts))
	}
	counts := chaos.NewCounts()
	s := &chaos.StreamChaos{
		SwapNode: "a", SwapEvery: 2,
		DupNode: "b", DupEvery: 3,
		SkewNode: "c", SkewSec: 3600,
		Counts: counts,
	}
	out := s.Perturb(lines)

	var aTimes, bTimes, cTimes []int64
	var jobStart int64
	dups := 0
	seenB := map[int64]int{}
	for _, l := range out {
		switch {
		case len(l.Metrics) > 0:
		case l.Job != nil:
			jobStart = l.Start
		case l.Node == "a":
			aTimes = append(aTimes, l.Time)
		case l.Node == "b":
			bTimes = append(bTimes, l.Time)
			seenB[l.Time]++
		case l.Node == "c":
			cTimes = append(cTimes, l.Time)
		}
	}
	// a: 10 samples = 5 adjacent pairs; every 2nd pair (0, 2, 4) swapped.
	if want := []int64{120, 60, 180, 240, 360, 300, 420, 480, 600, 540}; len(aTimes) != len(want) {
		t.Fatalf("a samples = %d, want %d", len(aTimes), len(want))
	} else {
		for i := range want {
			if aTimes[i] != want[i] {
				t.Fatalf("a times = %v, want %v", aTimes, want)
			}
		}
	}
	if counts.Get(chaos.OutOfOrder) != 3 {
		t.Errorf("out_of_order = %d, want 3", counts.Get(chaos.OutOfOrder))
	}
	// b: every 3rd of 10 samples duplicated in place.
	for ts, n := range seenB {
		if n == 2 {
			dups++
		} else if n != 1 {
			t.Errorf("b sample at %d appears %d times", ts, n)
		}
	}
	if dups != 3 || counts.Get(chaos.DupTimestamp) != 3 {
		t.Errorf("dups = %d (ledger %d), want 3", dups, counts.Get(chaos.DupTimestamp))
	}
	if len(bTimes) != 13 {
		t.Errorf("b samples = %d, want 13", len(bTimes))
	}
	// c: every sample and the job start shifted by exactly the skew.
	for i, ts := range cTimes {
		if want := int64(60+60*i) + 3600; ts != want {
			t.Fatalf("c time[%d] = %d, want %d", i, ts, want)
		}
	}
	if jobStart != 60+3600 {
		t.Errorf("job start = %d, want %d", jobStart, 60+3600)
	}
	if counts.Get(chaos.ClockSkew) != 11 {
		t.Errorf("clock_skew = %d, want 11 (10 samples + 1 job)", counts.Get(chaos.ClockSkew))
	}

	// Determinism: a second pass over the same input is byte-identical.
	counts2 := chaos.NewCounts()
	s2 := &chaos.StreamChaos{
		SwapNode: "a", SwapEvery: 2,
		DupNode: "b", DupEvery: 3,
		SkewNode: "c", SkewSec: 3600,
		Counts: counts2,
	}
	again := s2.Perturb(lines)
	if len(again) != len(out) {
		t.Fatalf("second pass length %d, want %d", len(again), len(out))
	}
	for i := range out {
		a, b := out[i], again[i]
		if a.Node != b.Node || a.Time != b.Time || a.Start != b.Start {
			t.Fatalf("second pass diverged at %d: %+v vs %+v", i, a, b)
		}
	}
}
