package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"nodesentry/internal/lifecycle"
)

// CorruptActiveModel flips bytes inside the registry's active model
// payload on disk — the mid-lifecycle corruption (failing disk, botched
// sync) the store's checksummed load path exists for — and returns the
// corrupted version's id. The manifest is left intact so the damage is
// only discoverable by actually verifying the payload.
func CorruptActiveModel(store *lifecycle.Store, counts *Counts) (string, error) {
	v, ok := store.Active()
	if !ok {
		return "", errors.New("chaos: registry has no active version")
	}
	path := filepath.Join(store.Dir(), v.ID, "model.bin")
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("chaos: read model payload: %w", err)
	}
	if len(data) == 0 {
		return "", fmt.Errorf("chaos: model payload %s is empty", path)
	}
	for i := len(data) / 4; i < len(data)/4+16 && i < len(data); i++ {
		data[i] ^= 0xA5
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("chaos: write corrupted payload: %w", err)
	}
	counts.Add(RegistryCorrupt, 1)
	return v.ID, nil
}
