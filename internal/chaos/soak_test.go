package chaos_test

import (
	"os"
	"testing"

	"nodesentry/internal/chaos"
	"nodesentry/internal/core"
	"nodesentry/internal/dataset"
	"nodesentry/internal/mts"
	"nodesentry/internal/telemetry"
	"nodesentry/internal/testutil"
)

var (
	fixtureDS  *dataset.Dataset
	fixtureDet *core.Detector
)

// fixture trains one small detector per test binary. Tests snapshot
// goroutines only after it returns, so training-pool teardown never
// reads as a leak.
func fixture(t *testing.T) (*dataset.Dataset, *core.Detector) {
	t.Helper()
	if fixtureDS != nil {
		return fixtureDS, fixtureDet
	}
	ds := dataset.Build(dataset.Tiny())
	in := core.TrainInput{
		Frames:         ds.TrainFrames(),
		Spans:          map[string][]mts.JobSpan{},
		SemanticGroups: telemetry.SemanticIndex(ds.Catalog),
	}
	for _, node := range ds.Nodes() {
		in.Spans[node] = ds.SpansForNode(node, 0, ds.SplitTime())
	}
	det, err := core.Train(in, fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	fixtureDS, fixtureDet = ds, det
	return ds, det
}

func fastOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Epochs = 4
	opts.MaxWindowsPerCluster = 60
	return opts
}

// TestSoak runs the full-loop scenario once: every infrastructure fault
// kind through the live daemon, a drift→retrain→shadow→swap cycle, a
// registry-corruption drill, and the /metrics reconciliation — Run
// itself fails on any unaccounted fault, drop, or recall regression.
// The test adds the process-level invariants Run cannot see: no leaked
// goroutines, and a minimum breadth of fault coverage.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("full-loop soak")
	}
	ds, det := fixture(t)
	leaks := testutil.CheckGoroutines(t)
	rep, err := chaos.Run(chaos.Config{
		DS:           ds,
		Det:          det,
		TrainOptions: fastOptions(),
		Summary:      true,
	})
	if err != nil {
		t.Fatalf("soak: %v\nreport: %+v", err, rep)
	}
	leaks()

	if rep.FaultKinds < 6 {
		t.Errorf("only %d fault kinds injected, want >= 6: %v", rep.FaultKinds, rep.Counts)
	}
	for _, kind := range []chaos.FaultKind{
		chaos.AcceptDrop, chaos.ConnDrop,
		chaos.Scrape5xx, chaos.ScrapeDrop, chaos.ScrapeGarble, chaos.ScrapeTruncate,
		chaos.OutOfOrder, chaos.DupTimestamp, chaos.ClockSkew,
		chaos.RegistryCorrupt, chaos.FloodBurst,
	} {
		if rep.Counts[kind] == 0 {
			t.Errorf("fault kind %s was never injected", kind)
		}
	}
	if rep.Alerts == 0 {
		t.Error("soak delivered no alerts")
	}
	if rep.TotalFaults == 0 || rep.MatchedFaults == 0 {
		t.Errorf("recall evidence empty: %d/%d", rep.MatchedFaults, rep.TotalFaults)
	}
	if rep.ForcedSwaps != 2 {
		t.Errorf("forced swaps = %d, want 2", rep.ForcedSwaps)
	}
	if want := int64(1 + rep.ForcedSwaps + rep.Promotions); rep.Epoch != want {
		t.Errorf("final epoch %d, want %d", rep.Epoch, want)
	}
	if len(rep.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(rep.Decisions))
	}
	if rep.QuarantinedID == "" || rep.RecoveredID == "" || rep.QuarantinedID == rep.RecoveredID {
		t.Errorf("registry drill: quarantined %q, recovered %q", rep.QuarantinedID, rep.RecoveredID)
	}
	// Summarization accounting (Run already reconciled it against the
	// webhook receiver): every raised alert is accounted exactly once,
	// and no incident outlived the run.
	if rep.SummaryObserved != int64(rep.Alerts) {
		t.Errorf("summarizer observed %d alerts, %d were raised", rep.SummaryObserved, rep.Alerts)
	}
	if rep.SummaryFolded+rep.SummaryRaw != rep.SummaryObserved {
		t.Errorf("folded %d + raw %d != observed %d",
			rep.SummaryFolded, rep.SummaryRaw, rep.SummaryObserved)
	}
	if rep.IncidentsResolved != rep.IncidentsOpened {
		t.Errorf("%d incidents opened but %d resolved", rep.IncidentsOpened, rep.IncidentsResolved)
	}
	t.Logf("soak: %d push lines, %d scrapes, %d alerts (%d folded into %d incidents, %d raw), recall %.2f (%d/%d), epoch %d, faults %v",
		rep.PushLines, rep.ScrapeSweeps, rep.Alerts, rep.SummaryFolded, rep.IncidentsOpened,
		rep.SummaryRaw, rep.Recall, rep.MatchedFaults, rep.TotalFaults, rep.Epoch, rep.Counts)
}

// TestSoakLong is the nightly multi-cycle soak: several full lifecycle
// cycles back to back, gated on NODESENTRY_SOAK so CI's regular lane
// stays fast.
func TestSoakLong(t *testing.T) {
	if os.Getenv("NODESENTRY_SOAK") == "" {
		t.Skip("set NODESENTRY_SOAK=1 for the multi-cycle soak")
	}
	ds, det := fixture(t)
	leaks := testutil.CheckGoroutines(t)
	rep, err := chaos.Run(chaos.Config{
		DS:           ds,
		Det:          det,
		TrainOptions: fastOptions(),
		Cycles:       3,
		// The nightly soak runs with the batched scoring path forced on:
		// equivalence tests pin batched == sequential byte-for-byte, and
		// this keeps the batcher's locking honest under chaos + -race.
		BatchWindows: 4,
	})
	if err != nil {
		t.Fatalf("long soak: %v\nreport: %+v", err, rep)
	}
	leaks()
	if rep.ForcedSwaps != 6 {
		t.Errorf("forced swaps = %d, want 6", rep.ForcedSwaps)
	}
	if len(rep.Decisions) != 3 {
		t.Errorf("decisions = %d, want 3", len(rep.Decisions))
	}
	t.Logf("long soak: %d lines, %d alerts, %d promotions, epoch %d",
		rep.PushLines, rep.Alerts, rep.Promotions, rep.Epoch)
}
