package chaos_test

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"nodesentry/internal/chaos"
	"nodesentry/internal/telemetry"
)

// TestTransportScript pins the per-request schedule: synthesized faults
// never reach the origin, body mutations always unparse, and the ledger
// records exactly what was injected.
func TestTransportScript(t *testing.T) {
	var arrived atomic.Int64
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrived.Add(1)
		_, _ = io.WriteString(w, "cpu{node=\"a\"} 0.5 60000\nmem{node=\"a\"} 0.25 60000\n")
	}))
	defer origin.Close()

	counts := chaos.NewCounts()
	client := &http.Client{Transport: &chaos.Transport{
		Script: []chaos.FaultKind{
			chaos.Pass, chaos.Scrape5xx, chaos.ScrapeDrop, chaos.ScrapeGarble, chaos.ScrapeTruncate,
		},
		Counts: counts,
	}}
	defer client.CloseIdleConnections()

	type want struct {
		status  int // 0 = transport error
		parses  bool
		arrives bool
	}
	wants := []want{
		{status: 200, parses: true, arrives: true},
		{status: 503, parses: false, arrives: false},
		{status: 0, parses: false, arrives: false},
		{status: 200, parses: false, arrives: true},
		{status: 200, parses: false, arrives: true},
	}
	arrivedBefore := int64(0)
	for i, w := range wants {
		resp, err := client.Get(origin.URL)
		if w.status == 0 {
			if err == nil {
				t.Fatalf("request %d: want transport error, got status %d", i, resp.StatusCode)
			}
			continue
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != w.status {
			t.Errorf("request %d: status %d, want %d", i, resp.StatusCode, w.status)
		}
		if w.status == 200 {
			_, perr := telemetry.ParseSeries(string(body))
			if (perr == nil) != w.parses {
				t.Errorf("request %d: parse err %v, want parseable=%v", i, perr, w.parses)
			}
		}
		if got := arrived.Load(); w.arrives && got == arrivedBefore {
			t.Errorf("request %d: never reached origin", i)
		} else if !w.arrives && got != arrivedBefore {
			t.Errorf("request %d: synthesized fault reached origin", i)
		}
		arrivedBefore = arrived.Load()
	}
	for _, kind := range []chaos.FaultKind{
		chaos.Scrape5xx, chaos.ScrapeDrop, chaos.ScrapeGarble, chaos.ScrapeTruncate,
	} {
		if counts.Get(kind) != 1 {
			t.Errorf("ledger %s = %d, want 1", kind, counts.Get(kind))
		}
	}
	if counts.Kinds() != 4 {
		t.Errorf("ledger kinds = %d, want 4", counts.Kinds())
	}
}

// TestListenerAcceptDrop pins the accept-side fault: scripted
// connections die before any bytes flow, the server never sees them,
// and later connections pass untouched.
func TestListenerAcceptDrop(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	counts := chaos.NewCounts()
	ln := &chaos.Listener{
		Listener: raw,
		Script:   []chaos.FaultKind{chaos.AcceptDrop, chaos.Pass, chaos.AcceptDrop},
		Counts:   counts,
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve(ln) }()
	defer func() { _ = srv.Close(); <-done }()

	url := "http://" + raw.Addr().String() + "/"
	oks, fails := 0, 0
	for i := 0; i < 4; i++ {
		// One client per attempt: a dropped connection must not poison a
		// pooled one.
		c := &http.Client{}
		resp, err := c.Get(url)
		if err != nil {
			fails++
		} else {
			_ = resp.Body.Close()
			oks++
		}
		c.CloseIdleConnections()
	}
	if fails != 2 || oks != 2 {
		t.Errorf("got %d failures / %d successes, want 2/2", fails, oks)
	}
	if counts.Get(chaos.AcceptDrop) != 2 {
		t.Errorf("ledger accept_drop = %d, want 2", counts.Get(chaos.AcceptDrop))
	}
}
