package chaos_test

import (
	"encoding/json"
	"strings"
	"testing"

	"nodesentry/internal/dataset"
	"nodesentry/internal/ingest"
)

// linesForTest renders the dataset's full test window as a JSONL stream —
// register, jobs, samples per node — plus two flood clones of the first
// two nodes.
func linesForTest(ds *dataset.Dataset) []ingest.Line {
	var out []ingest.Line
	emit := func(src, as string) {
		f := ds.Frames[src]
		view := f.Slice(f.IndexOf(ds.SplitTime()), f.Len())
		out = append(out, ingest.Line{Node: as, Metrics: view.Metrics})
		spans := ds.SpansForNode(src, ds.SplitTime(), ds.Horizon)
		si := 0
		for t := 0; t < view.Len(); t++ {
			ts := view.Start + int64(t)*view.Step
			for si < len(spans) && spans[si].Start <= ts {
				job := spans[si].Job
				out = append(out, ingest.Line{Node: as, Job: &job, Start: spans[si].Start})
				si++
			}
			vals := make([]ingest.JSONFloat, len(view.Data))
			for m := range vals {
				vals[m] = ingest.JSONFloat(view.Data[m][t])
			}
			out = append(out, ingest.Line{Node: as, Time: ts, Values: vals})
		}
	}
	for _, node := range ds.Nodes() {
		emit(node, node)
	}
	emit(ds.Nodes()[0], "flood-0")
	emit(ds.Nodes()[1%len(ds.Nodes())], "flood-1")
	return out
}

func writeJSONL(t *testing.T, b *strings.Builder, l ingest.Line) {
	t.Helper()
	raw, err := json.Marshal(l)
	if err != nil {
		t.Fatal(err)
	}
	b.Write(raw)
	b.WriteByte('\n')
}
