package chaos_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodesentry/internal/coord"
	"nodesentry/internal/obs"
	"nodesentry/internal/summary"
	"nodesentry/internal/testutil"
)

// TestFloodFoldDrill is the summarization tier's acceptance drill: a
// flood burst raising 24 correlated alerts (one metric family, one job,
// 24 nodes) across two live scorers must surface on the coordinator as
// exactly ONE open incident on /fleet/incidents — varying dimension the
// node list, constant dimensions (job, family) preserved — and the
// operator webhook must see at least a 10x delivery reduction versus
// the per-alert stream.
func TestFloodFoldDrill(t *testing.T) {
	defer testutil.CheckGoroutines(t)()

	var delivered atomic.Int64
	var payloadMu sync.Mutex
	var payloads [][]byte
	webhook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		payloadMu.Lock()
		payloads = append(payloads, body)
		payloadMu.Unlock()
		delivered.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer webhook.Close()

	// Deterministic time: Sweep is the flush cadence and the fake clock
	// decides when "quiet" incidents resolve.
	now := time.Unix(1_700_000_000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	c := coord.New(coord.Config{
		TotalShards: 8,
		Clock:       clock,
		WebhookURL:  webhook.URL,
		Summary: &summary.Config{
			ResolveAfter: 10 * time.Second,
			MinGroup:     3,
		},
	})
	defer c.Close()
	srv := httptest.NewServer(obs.Handler(nil, nil, c.Mounts()...))
	defer srv.Close()

	// Two live scorers split the shard space; the drill routes each
	// node's envelope through its assigned owner so nothing is fenced.
	c.Register(coord.ScorerInfo{ID: "scorer-0"})
	c.Register(coord.ScorerInfo{ID: "scorer-1"})
	epoch := c.Epoch()

	// The flood: 24 nodes of one job tripping the same metric family in
	// one burst — the N-simultaneous-alerts storm the tier exists for.
	const floodNodes = 24
	nodes := make([]string, floodNodes)
	scorersSeen := map[string]bool{}
	for i := range nodes {
		nodes[i] = "flood-node-" + string(rune('a'+i/10)) + string(rune('0'+i%10))
		owner, ok := c.Owner(nodes[i])
		if !ok {
			t.Fatalf("no owner for %s", nodes[i])
		}
		scorersSeen[owner.ID] = true
		v := c.Accept(coord.AlertEnvelope{
			Scorer:   owner.ID,
			Epoch:    epoch,
			Node:     nodes[i],
			Time:     now.Unix(),
			Job:      8812,
			Score:    5 + float64(i),
			Priority: 1,
			Level:    "Memory",
			Family:   "Memory",
		})
		if v.Status != coord.VerdictAccepted {
			t.Fatalf("envelope for %s got verdict %q", nodes[i], v.Status)
		}
	}
	if len(scorersSeen) < 2 {
		t.Fatalf("flood crossed %d scorers, the drill requires >= 2", len(scorersSeen))
	}

	// One sweep folds the burst. The open set must be exactly one
	// incident, served over the same HTTP surface the dashboard reads.
	c.Sweep()
	var snap summary.Snapshot
	getIncidents := func() summary.Snapshot {
		t.Helper()
		resp, err := http.Get(srv.URL + "/fleet/incidents")
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var s summary.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			t.Fatal(err)
		}
		return s
	}
	snap = getIncidents()
	if len(snap.Open) != 1 {
		t.Fatalf("flood folded into %d open incidents, want exactly 1: %+v", len(snap.Open), snap.Open)
	}
	inc := snap.Open[0]
	if inc.Count != floodNodes {
		t.Errorf("incident folded %d alerts, want %d", inc.Count, floodNodes)
	}
	if inc.Dimension != "node" {
		t.Errorf("varying dimension = %q, want node", inc.Dimension)
	}
	if got := len(inc.VaryingTags["node"]); got != floodNodes {
		t.Errorf("incident carries %d nodes, want %d", got, floodNodes)
	}
	if inc.ConstantTags["job"] != "8812" {
		t.Errorf("constant job tag = %q, want 8812", inc.ConstantTags["job"])
	}
	if inc.Metric != "Memory" || inc.ConstantTags["level"] != "Memory" {
		t.Errorf("metric family %q / level %q, want Memory/Memory", inc.Metric, inc.ConstantTags["level"])
	}

	// Quiet past ResolveAfter: the fault cleared, the incident resolves.
	advance(11 * time.Second)
	c.Sweep()
	snap = getIncidents()
	if len(snap.Open) != 0 {
		t.Fatalf("%d incidents still open after the fault cleared", len(snap.Open))
	}
	if len(snap.Resolved) != 1 {
		t.Fatalf("resolved set holds %d incidents, want 1", len(snap.Resolved))
	}

	// Delivery reduction: the whole storm cost one open + one resolve
	// POST; the per-alert stream would have cost 24.
	if got := delivered.Load(); got != 2 {
		t.Fatalf("webhook saw %d deliveries, want 2 (open + resolve)", got)
	}
	if reduction := float64(floodNodes) / float64(delivered.Load()); reduction < 10 {
		t.Fatalf("delivery reduction %.1fx below the 10x floor", reduction)
	}
	payloadMu.Lock()
	defer payloadMu.Unlock()
	var first struct {
		Kind    string   `json:"kind"`
		Members []string `json:"members"`
	}
	if err := json.Unmarshal(payloads[0], &first); err != nil {
		t.Fatal(err)
	}
	if first.Kind != "open" || len(first.Members) != floodNodes {
		t.Errorf("first webhook payload kind=%q members=%d, want open/%d",
			first.Kind, len(first.Members), floodNodes)
	}
}
