package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// errInjected is what a dropped request surfaces to the HTTP client.
var errInjected = errors.New("chaos: injected connection drop")

// Transport is an http.RoundTripper that applies a scripted fault to
// each request by arrival index: Script[i % len(Script)] governs request
// i, so every cycle through the script injects each listed fault exactly
// once and the total dose is a pure function of the request count.
// Synthesized faults (drops, 5xx) never reach the base transport — an
// origin server behind a Transport sees only the requests that pass.
type Transport struct {
	// Base performs real requests (http.DefaultTransport when nil).
	Base http.RoundTripper
	// Script is the per-request fault schedule (empty = all Pass).
	Script []FaultKind
	// SlowDelay is the WebhookSlow hold time (default 50ms).
	SlowDelay time.Duration
	// Counts receives every injected fault.
	Counts *Counts

	n atomic.Int64
}

// Requests returns how many requests have entered the transport,
// including ones answered synthetically.
func (t *Transport) Requests() int64 { return t.n.Load() }

// RoundTrip applies the scheduled fault for this request index.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := t.n.Add(1) - 1
	kind := Pass
	if len(t.Script) > 0 {
		kind = t.Script[i%int64(len(t.Script))]
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	switch kind {
	case ConnDrop, ScrapeDrop:
		t.Counts.Add(kind, 1)
		if req.Body != nil {
			_ = req.Body.Close() // RoundTripper contract: close even on error
		}
		return nil, errInjected
	case Scrape5xx, Webhook5xx:
		t.Counts.Add(kind, 1)
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(bytes.NewReader([]byte("chaos\n"))),
			Request: req,
		}, nil
	case WebhookSlow:
		t.Counts.Add(kind, 1)
		d := t.SlowDelay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		time.Sleep(d)
		return base.RoundTrip(req)
	case ScrapeGarble, ScrapeTruncate:
		resp, err := base.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return nil, err
		}
		t.Counts.Add(kind, 1)
		resp.Body = io.NopCloser(bytes.NewReader(mutilate(kind, body)))
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	default:
		return base.RoundTrip(req)
	}
}

// mutilate corrupts a scrape body. Both shapes end with a NUL byte on
// its own line — no Prometheus exposition parser accepts that, so an
// injected corruption is guaranteed to surface as exactly one parse
// error rather than silently decoding to fewer samples.
func mutilate(kind FaultKind, body []byte) []byte {
	out := append([]byte(nil), body...)
	if kind == ScrapeTruncate {
		out = out[:len(out)/2]
	} else {
		for i := len(out) / 4; i < len(out)/2; i++ {
			out[i] ^= 0xA5
		}
	}
	return append(out, []byte("\n\x00\n")...)
}

// Listener wraps a net.Listener with scripted accept faults: the i-th
// accepted connection is closed immediately when Script[i] is
// AcceptDrop (the client sees a reset before any bytes flow), and
// passes through otherwise. Entries are consumed once — beyond the end
// of the script every accept passes — so the injected dose is exactly
// the number of AcceptDrop entries, provided at least that many
// connections arrive.
type Listener struct {
	net.Listener
	// Script is consumed one entry per accepted connection.
	Script []FaultKind
	// Counts receives every injected drop.
	Counts *Counts

	n atomic.Int64
}

// Accept applies the schedule, never surfacing an injected fault to the
// server: a dropped connection is the client's problem, the accept loop
// just moves on.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		i := l.n.Add(1) - 1
		if i < int64(len(l.Script)) && l.Script[i] == AcceptDrop {
			l.Counts.Add(AcceptDrop, 1)
			_ = c.Close()
			continue
		}
		return c, nil
	}
}
