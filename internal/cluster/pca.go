package cluster

import (
	"math"
	"math/rand"

	"nodesentry/internal/mat"
)

// PCA is a fitted principal-component projection. The paper's Challenge 1
// discussion prescribes exactly this: "dimensionality reduction methods
// help mitigate the curse of dimensionality by transforming the data into
// a lower-dimensional space while preserving important information" —
// segment feature vectors are wide (metrics × features), and Euclidean
// distances concentrate in that space, flattening the cluster structure
// HAC needs.
type PCA struct {
	// Mean is the column mean removed before projection.
	Mean []float64
	// Components holds the principal axes as rows [k × d].
	Components *mat.Matrix
	// Explained is the variance captured by each component.
	Explained []float64
}

// FitPCA computes the top-k principal components of the rows of X by
// orthogonal (simultaneous power) iteration on the covariance matrix,
// which converges quickly for the leading eigenspace and needs no external
// linear-algebra dependency. k is clamped to min(rows, cols).
func FitPCA(X *mat.Matrix, k int) *PCA {
	n, d := X.Rows, X.Cols
	if k > d {
		k = d
	}
	if k > n {
		k = n
	}
	p := &PCA{Mean: make([]float64, d)}
	if n == 0 || k <= 0 {
		p.Components = mat.New(0, d)
		return p
	}
	// Center.
	for i := 0; i < n; i++ {
		row := X.Row(i)
		for j, v := range row {
			p.Mean[j] += v
		}
	}
	for j := range p.Mean {
		p.Mean[j] /= float64(n)
	}
	C := X.Clone()
	for i := 0; i < n; i++ {
		row := C.Row(i)
		for j := range row {
			row[j] -= p.Mean[j]
		}
	}
	// Covariance (d×d, scaled by 1/n).
	cov := mat.TMul(C, C)
	mat.Scale(cov, 1/float64(n))

	// Orthogonal iteration: Q ← orth(cov · Q).
	rng := rand.New(rand.NewSource(1))
	Q := mat.New(d, k)
	for i := range Q.Data {
		Q.Data[i] = rng.NormFloat64()
	}
	gramSchmidt(Q)
	const iters = 60
	for it := 0; it < iters; it++ {
		Q = mat.Mul(cov, Q)
		gramSchmidt(Q)
	}
	// Components = Qᵀ; explained variance = diag(Qᵀ cov Q).
	p.Components = Q.T()
	CQ := mat.Mul(cov, Q)
	p.Explained = make([]float64, k)
	for c := 0; c < k; c++ {
		s := 0.0
		for j := 0; j < d; j++ {
			s += Q.At(j, c) * CQ.At(j, c)
		}
		p.Explained[c] = s
	}
	// Order components by explained variance, descending.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < k; i++ {
		for j := i; j > 0 && p.Explained[order[j]] > p.Explained[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	comp := mat.New(k, d)
	expl := make([]float64, k)
	for r, o := range order {
		copy(comp.Row(r), p.Components.Row(o))
		expl[r] = p.Explained[o]
	}
	p.Components = comp
	p.Explained = expl
	return p
}

// gramSchmidt orthonormalizes the columns of Q in place (modified
// Gram-Schmidt). Degenerate columns are re-randomized against a fixed
// source to keep the basis full rank.
func gramSchmidt(Q *mat.Matrix) {
	d, k := Q.Rows, Q.Cols
	rng := rand.New(rand.NewSource(2))
	col := func(c int) []float64 {
		out := make([]float64, d)
		for j := 0; j < d; j++ {
			out[j] = Q.At(j, c)
		}
		return out
	}
	setCol := func(c int, v []float64) {
		for j := 0; j < d; j++ {
			Q.Set(j, c, v[j])
		}
	}
	for c := 0; c < k; c++ {
		v := col(c)
		for prev := 0; prev < c; prev++ {
			u := col(prev)
			dot := mat.Dot(u, v)
			mat.Axpy(-dot, u, v)
		}
		norm := mat.Norm2(v)
		if norm < 1e-12 {
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			for prev := 0; prev < c; prev++ {
				u := col(prev)
				mat.Axpy(-mat.Dot(u, v), u, v)
			}
			norm = mat.Norm2(v)
			if norm < 1e-12 {
				norm = 1
			}
		}
		for j := range v {
			v[j] /= norm
		}
		setCol(c, v)
	}
}

// Transform projects the rows of X onto the fitted components, returning
// an [n × k] matrix.
func (p *PCA) Transform(X *mat.Matrix) *mat.Matrix {
	n := X.Rows
	k := p.Components.Rows
	out := mat.New(n, k)
	mat.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := X.Row(i)
			centered := make([]float64, len(row))
			for j, v := range row {
				centered[j] = v - p.Mean[j]
			}
			for c := 0; c < k; c++ {
				out.Set(i, c, mat.Dot(centered, p.Components.Row(c)))
			}
		}
	})
	return out
}

// TransformVector projects one vector.
func (p *PCA) TransformVector(v []float64) []float64 {
	k := p.Components.Rows
	centered := make([]float64, len(v))
	for j, x := range v {
		centered[j] = x - p.Mean[j]
	}
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		out[c] = mat.Dot(centered, p.Components.Row(c))
	}
	return out
}

// ExplainedRatio returns the fraction of total variance captured, given
// the total variance of the fitted data (sum of column variances).
func (p *PCA) ExplainedRatio(totalVariance float64) float64 {
	if totalVariance <= 0 {
		return 0
	}
	s := 0.0
	for _, e := range p.Explained {
		s += e
	}
	r := s / totalVariance
	if r > 1 {
		r = 1
	}
	return r
}

// TotalVariance computes the sum of the column variances of X (the
// denominator of ExplainedRatio).
func TotalVariance(X *mat.Matrix) float64 {
	n, d := X.Rows, X.Cols
	if n == 0 {
		return 0
	}
	total := 0.0
	for j := 0; j < d; j++ {
		mean, m2 := 0.0, 0.0
		for i := 0; i < n; i++ {
			mean += X.At(i, j)
		}
		mean /= float64(n)
		for i := 0; i < n; i++ {
			dv := X.At(i, j) - mean
			m2 += dv * dv
		}
		total += m2 / float64(n)
	}
	return total
}

// normalizeSign is a helper for tests: flips a component so its largest
// absolute coordinate is positive, fixing the sign ambiguity of
// eigenvectors.
func normalizeSign(v []float64) {
	maxJ := 0
	for j := range v {
		if math.Abs(v[j]) > math.Abs(v[maxJ]) {
			maxJ = j
		}
	}
	if v[maxJ] < 0 {
		for j := range v {
			v[j] = -v[j]
		}
	}
}
