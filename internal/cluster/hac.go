// Package cluster implements the clustering substrate of NodeSentry:
// Hierarchical Agglomerative Clustering with silhouette-based automatic
// cluster-count selection (§3.3), plus the algorithms the baselines and the
// labeling tool need — k-means, an EM Gaussian mixture standing in for the
// variational BGMM of ISC'20, DBSCAN (DeepHYDRA's coarse stage), and
// multivariate Dynamic Time Warping (the expensive shape-based alternative
// the paper rules out in Challenge 1).
package cluster

import (
	"fmt"
	"math"

	"nodesentry/internal/mat"
)

// Linkage selects the HAC merge criterion.
type Linkage int

// Supported linkages.
const (
	Single Linkage = iota
	Complete
	Average
	Ward
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case Ward:
		return "ward"
	default:
		return fmt.Sprintf("linkage(%d)", int(l))
	}
}

// PairwiseEuclidean computes the symmetric distance matrix of the rows of
// X, in parallel.
func PairwiseEuclidean(X *mat.Matrix) *mat.Matrix {
	n := X.Rows
	D := mat.New(n, n)
	mat.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ri := X.Row(i)
			for j := i + 1; j < n; j++ {
				d := mat.EuclideanDist(ri, X.Row(j))
				D.Set(i, j, d)
				D.Set(j, i, d)
			}
		}
	})
	return D
}

// HAC agglomerates the rows of X into k clusters using the given linkage
// and Euclidean distance, returning a label per row in [0, k). k must be in
// [1, X.Rows].
func HAC(X *mat.Matrix, linkage Linkage, k int) []int {
	labels, _ := hacWithSnapshots(X, linkage, k, k)
	return labels[k]
}

// AutoResult reports an automatic HAC run.
type AutoResult struct {
	Labels     []int
	K          int
	Silhouette float64
	// Scores maps each candidate k to its silhouette coefficient.
	Scores map[int]float64
}

// HACAuto agglomerates and picks the cluster count in [kMin, kMax] with the
// best silhouette coefficient, the paper's "operators do not require
// iterative attempts" property. The dendrogram is built once; every
// candidate k is a cut of it.
func HACAuto(X *mat.Matrix, linkage Linkage, kMin, kMax int) AutoResult {
	n := X.Rows
	if kMin < 2 {
		kMin = 2
	}
	if kMax > n {
		kMax = n
	}
	if kMax < kMin {
		kMax = kMin
	}
	snaps, D := hacWithSnapshots(X, linkage, kMin, kMax)
	best := AutoResult{K: kMin, Silhouette: math.Inf(-1), Scores: map[int]float64{}}
	for k := kMin; k <= kMax; k++ {
		labels, ok := snaps[k]
		if !ok {
			continue
		}
		s := silhouetteFromDist(D, labels, k)
		best.Scores[k] = s
		if s > best.Silhouette {
			best.Silhouette = s
			best.K = k
			best.Labels = labels
		}
	}
	if best.Labels == nil && n > 0 {
		// Degenerate inputs (n < kMin): everything in one cluster.
		best.K = 1
		best.Labels = make([]int, n)
		best.Silhouette = 0
	}
	return best
}

// hacWithSnapshots runs bottom-up agglomeration with Lance-Williams
// updates, snapshotting the labeling at every active-cluster count in
// [kMin, kMax]. It returns the snapshots and the original distance matrix.
func hacWithSnapshots(X *mat.Matrix, linkage Linkage, kMin, kMax int) (map[int][]int, *mat.Matrix) {
	n := X.Rows
	snaps := map[int][]int{}
	D0 := PairwiseEuclidean(X)
	if n == 0 {
		return snaps, D0
	}
	// Working copy; Ward operates on squared distances.
	W := mat.New(n, n)
	for i := range W.Data {
		if linkage == Ward {
			W.Data[i] = D0.Data[i] * D0.Data[i]
		} else {
			W.Data[i] = D0.Data[i]
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	parent := make([]int, n) // union-find to derive labels
	for i := range active {
		active[i] = true
		size[i] = 1
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	snapshot := func(clusters int) {
		if clusters < kMin || clusters > kMax {
			return
		}
		labels := make([]int, n)
		next := 0
		remap := map[int]int{}
		for i := 0; i < n; i++ {
			r := find(i)
			id, ok := remap[r]
			if !ok {
				id = next
				remap[r] = id
				next++
			}
			labels[i] = id
		}
		snaps[clusters] = labels
	}
	snapshot(n)

	for clusters := n; clusters > 1; clusters-- {
		// Find the closest active pair.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			row := W.Row(i)
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if row[j] < bd {
					bi, bj, bd = i, j, row[j]
				}
			}
		}
		if bi < 0 {
			break
		}
		// Merge bj into bi with the Lance-Williams update.
		si, sj := float64(size[bi]), float64(size[bj])
		for k := 0; k < n; k++ {
			if !active[k] || k == bi || k == bj {
				continue
			}
			dik := W.At(bi, k)
			djk := W.At(bj, k)
			var d float64
			switch linkage {
			case Single:
				d = math.Min(dik, djk)
			case Complete:
				d = math.Max(dik, djk)
			case Average:
				d = (si*dik + sj*djk) / (si + sj)
			case Ward:
				sk := float64(size[k])
				tot := si + sj + sk
				d = ((si+sk)*dik + (sj+sk)*djk - sk*bd) / tot
			}
			W.Set(bi, k, d)
			W.Set(k, bi, d)
		}
		active[bj] = false
		size[bi] += size[bj]
		parent[find(bj)] = find(bi)
		snapshot(clusters - 1)
	}
	return snaps, D0
}

// Silhouette returns the mean silhouette coefficient of the labeling over
// the rows of X (Euclidean), in [-1, 1]; higher is better. Singleton
// clusters contribute 0, and a single-cluster labeling scores 0.
func Silhouette(X *mat.Matrix, labels []int) float64 {
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	return silhouetteFromDist(PairwiseEuclidean(X), labels, k)
}

func silhouetteFromDist(D *mat.Matrix, labels []int, k int) float64 {
	n := len(labels)
	if n == 0 || k < 2 {
		return 0
	}
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	total := 0.0
	for i := 0; i < n; i++ {
		li := labels[i]
		if counts[li] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		sums := make([]float64, k)
		row := D.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += row[j]
		}
		a := sums[li] / float64(counts[li]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == li || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

// Centroids computes the mean vector of each cluster; empty clusters get
// zero vectors.
func Centroids(X *mat.Matrix, labels []int, k int) *mat.Matrix {
	C := mat.New(k, X.Cols)
	counts := make([]int, k)
	for i, l := range labels {
		mat.Axpy(1, X.Row(i), C.Row(l))
		counts[l]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			inv := 1 / float64(counts[c])
			row := C.Row(c)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return C
}

// Assign returns the index and distance of the centroid nearest to v.
func Assign(v []float64, centroids *mat.Matrix) (int, float64) {
	best, bd := -1, math.Inf(1)
	for c := 0; c < centroids.Rows; c++ {
		if d := mat.EuclideanDist(v, centroids.Row(c)); d < bd {
			best, bd = c, d
		}
	}
	return best, bd
}

// NearestMembers returns the indices of the m rows of X in cluster c that
// lie closest to the cluster centroid — the K representative segments used
// to train the shared model (§3.4).
func NearestMembers(X *mat.Matrix, labels []int, centroid []float64, c, m int) []int {
	type cand struct {
		idx int
		d   float64
	}
	var cands []cand
	for i, l := range labels {
		if l == c {
			cands = append(cands, cand{i, mat.EuclideanDist(X.Row(i), centroid)})
		}
	}
	for i := 1; i < len(cands); i++ { // insertion sort: member lists are small
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if m > len(cands) {
		m = len(cands)
	}
	out := make([]int, m)
	for i := 0; i < m; i++ {
		out[i] = cands[i].idx
	}
	return out
}
