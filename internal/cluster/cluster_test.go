package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nodesentry/internal/mat"
)

// blobs generates k well-separated Gaussian blobs of `per` points each in
// dim dimensions; returns the data and true labels.
func blobs(rng *rand.Rand, k, per, dim int, spread float64) (*mat.Matrix, []int) {
	X := mat.New(k*per, dim)
	truth := make([]int, k*per)
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for j := range center {
			center[j] = float64(c*20) + rng.NormFloat64()
		}
		for p := 0; p < per; p++ {
			i := c*per + p
			truth[i] = c
			row := X.Row(i)
			for j := range row {
				row[j] = center[j] + spread*rng.NormFloat64()
			}
		}
	}
	return X, truth
}

// sameClustering reports whether two labelings induce the same partition.
func sameClustering(a, b []int) bool {
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if m, ok := fwd[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := rev[b[i]]; ok && m != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

func TestHACRecoversBlobs(t *testing.T) {
	for _, linkage := range []Linkage{Single, Complete, Average, Ward} {
		rng := rand.New(rand.NewSource(1))
		X, truth := blobs(rng, 3, 12, 4, 0.5)
		labels := HAC(X, linkage, 3)
		if !sameClustering(labels, truth) {
			t.Errorf("%v linkage did not recover blob structure", linkage)
		}
	}
}

func TestHACHandComputed(t *testing.T) {
	// Points on a line: 0, 1, 10, 11. k=2 must split {0,1} | {10,11}.
	X := mat.FromRows([][]float64{{0}, {1}, {10}, {11}})
	labels := HAC(X, Average, 2)
	if labels[0] != labels[1] || labels[2] != labels[3] || labels[0] == labels[2] {
		t.Errorf("labels = %v", labels)
	}
	// k=1: all together.
	one := HAC(X, Average, 1)
	for _, l := range one {
		if l != 0 {
			t.Errorf("k=1 labels = %v", one)
		}
	}
	// k=n: all singletons.
	four := HAC(X, Average, 4)
	seen := map[int]bool{}
	for _, l := range four {
		if seen[l] {
			t.Errorf("k=n labels not distinct: %v", four)
		}
		seen[l] = true
	}
}

func TestHACAutoFindsK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, truth := blobs(rng, 4, 10, 3, 0.4)
	res := HACAuto(X, Average, 2, 8)
	if res.K != 4 {
		t.Errorf("auto k = %d (scores %v), want 4", res.K, res.Scores)
	}
	if !sameClustering(res.Labels, truth) {
		t.Error("auto labels do not match blob structure")
	}
	if res.Silhouette < 0.5 {
		t.Errorf("silhouette = %v, want high for separated blobs", res.Silhouette)
	}
}

func TestHACAutoDegenerate(t *testing.T) {
	X := mat.FromRows([][]float64{{1, 2}})
	res := HACAuto(X, Average, 2, 5)
	if res.K != 1 || len(res.Labels) != 1 {
		t.Errorf("single-point result %+v", res)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		X := mat.New(n, 3)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			for j := 0; j < 3; j++ {
				X.Set(i, j, rng.NormFloat64())
			}
			labels[i] = rng.Intn(3)
		}
		s := Silhouette(X, labels)
		return s >= -1.000001 && s <= 1.000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSilhouetteSeparatedBeatsMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, truth := blobs(rng, 2, 15, 3, 0.5)
	mixed := make([]int, len(truth))
	for i := range mixed {
		mixed[i] = i % 2
	}
	if Silhouette(X, truth) <= Silhouette(X, mixed) {
		t.Error("true clustering should out-silhouette a random one")
	}
}

func TestCentroidsAndAssign(t *testing.T) {
	X := mat.FromRows([][]float64{{0, 0}, {2, 0}, {10, 10}})
	labels := []int{0, 0, 1}
	C := Centroids(X, labels, 2)
	if C.At(0, 0) != 1 || C.At(0, 1) != 0 || C.At(1, 0) != 10 {
		t.Errorf("centroids = %v", C.Data)
	}
	c, d := Assign([]float64{9, 9}, C)
	if c != 1 {
		t.Errorf("assigned to %d", c)
	}
	if math.Abs(d-math.Sqrt(2)) > 1e-12 {
		t.Errorf("distance = %v", d)
	}
}

func TestNearestMembers(t *testing.T) {
	X := mat.FromRows([][]float64{{0}, {1}, {2}, {50}})
	labels := []int{0, 0, 0, 1}
	got := NearestMembers(X, labels, []float64{0.9}, 0, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("NearestMembers = %v, want [1 0]", got)
	}
	// m larger than membership.
	all := NearestMembers(X, labels, []float64{0}, 0, 10)
	if len(all) != 3 {
		t.Errorf("want all 3 members, got %v", all)
	}
}

func TestKMeansRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	X, truth := blobs(rng, 3, 20, 4, 0.5)
	labels := KMeans(X, 3, 50, 7)
	if !sameClustering(labels, truth) {
		t.Error("k-means did not recover blobs")
	}
}

func TestKMeansDegenerate(t *testing.T) {
	X := mat.FromRows([][]float64{{1}, {2}})
	if got := KMeans(X, 1, 10, 1); got[0] != 0 || got[1] != 0 {
		t.Errorf("k=1 labels = %v", got)
	}
	if got := KMeans(X, 5, 10, 1); len(got) != 2 {
		t.Errorf("k>n labels = %v", got)
	}
	if got := KMeans(mat.New(0, 3), 2, 10, 1); len(got) != 0 {
		t.Errorf("empty input labels = %v", got)
	}
}

func TestGMMFitsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, _ := blobs(rng, 2, 40, 2, 0.6)
	g := FitGMM(X, 2, 30, 9, 0)
	if g.NumComponents() != 2 {
		t.Fatalf("components = %d", g.NumComponents())
	}
	// A point near a blob center has small Mahalanobis distance; a far
	// outlier has a large one.
	near := g.MahalanobisMin(g.Means[0])
	far := g.MahalanobisMin([]float64{1000, 1000})
	if near > 1 || far < 50 {
		t.Errorf("mahalanobis near=%v far=%v", near, far)
	}
}

func TestGMMPruning(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, _ := blobs(rng, 2, 40, 2, 0.5)
	g := FitGMM(X, 6, 40, 10, 0.05)
	if g.NumComponents() > 4 {
		t.Errorf("pruning left %d components for 2 blobs", g.NumComponents())
	}
	sum := 0.0
	for _, w := range g.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v after pruning", sum)
	}
}

func TestDBSCAN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, truth := blobs(rng, 2, 20, 2, 0.3)
	labels := DBSCAN(X, 2.5, 3)
	// Two dense blobs => two clusters, no noise inside blobs.
	maxL := -1
	for _, l := range labels {
		if l > maxL {
			maxL = l
		}
	}
	if maxL != 1 {
		t.Fatalf("DBSCAN found %d clusters, want 2 (labels %v)", maxL+1, labels)
	}
	if !sameClustering(labels, truth) {
		t.Error("DBSCAN clusters do not match blobs")
	}
	// An isolated point is noise.
	X2 := mat.FromRows([][]float64{{0}, {0.1}, {0.2}, {0.15}, {100}})
	l2 := DBSCAN(X2, 0.5, 3)
	if l2[4] != -1 {
		t.Errorf("outlier labeled %d, want -1", l2[4])
	}
}

func seq(vals ...float64) [][]float64 {
	out := make([][]float64, len(vals))
	for i, v := range vals {
		out[i] = []float64{v}
	}
	return out
}

func TestDTWBasics(t *testing.T) {
	a := seq(1, 2, 3)
	if d := DTW(a, a, 0); d != 0 {
		t.Errorf("self-DTW = %v", d)
	}
	// Time-shifted copies align almost perfectly.
	b := seq(1, 1, 2, 3)
	if d := DTW(a, b, 0); d > 1e-9 {
		t.Errorf("shifted DTW = %v, want ~0", d)
	}
	c := seq(10, 10, 10)
	if d := DTW(a, c, 0); d < 10 {
		t.Errorf("distant DTW = %v, want large", d)
	}
	if !math.IsInf(DTW(nil, a, 0), 1) {
		t.Error("empty-sequence DTW should be +Inf")
	}
}

func TestDTWSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(10), 2+rng.Intn(10)
		a := make([][]float64, n)
		b := make([][]float64, m)
		for i := range a {
			a[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		for i := range b {
			b[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		d1, d2 := DTW(a, b, 0), DTW(b, a, 0)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDTWBandUpperBoundsUnconstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := make([][]float64, 20)
	b := make([][]float64, 25)
	for i := range a {
		a[i] = []float64{rng.NormFloat64()}
	}
	for i := range b {
		b[i] = []float64{rng.NormFloat64()}
	}
	free := DTW(a, b, 0)
	banded := DTW(a, b, 3)
	if banded < free-1e-9 {
		t.Errorf("banded DTW %v below unconstrained %v", banded, free)
	}
}

func TestPairwiseEuclidean(t *testing.T) {
	X := mat.FromRows([][]float64{{0, 0}, {3, 4}})
	D := PairwiseEuclidean(X)
	if D.At(0, 1) != 5 || D.At(1, 0) != 5 || D.At(0, 0) != 0 {
		t.Errorf("D = %v", D.Data)
	}
}

func BenchmarkHAC200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	X, _ := blobs(rng, 5, 40, 8, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HAC(X, Average, 5)
	}
}
