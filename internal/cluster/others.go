package cluster

import (
	"math"
	"math/rand"
	"sync/atomic"

	"nodesentry/internal/mat"
)

// KMeans clusters the rows of X into k clusters with Lloyd's algorithm and
// k-means++ seeding, returning a label per row. Used by the labeling tool's
// built-in clustering and by ablation baselines.
func KMeans(X *mat.Matrix, k, iters int, seed int64) []int {
	n := X.Rows
	labels := make([]int, n)
	if n == 0 || k <= 1 {
		return labels
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	C := kmeansPlusPlusInit(X, k, rng)
	for it := 0; it < iters; it++ {
		var changed atomic.Bool
		mat.Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c, _ := Assign(X.Row(i), C)
				if c != labels[i] {
					labels[i] = c
					changed.Store(true)
				}
			}
		})
		C = Centroids(X, labels, k)
		if !changed.Load() {
			break
		}
	}
	return labels
}

func kmeansPlusPlusInit(X *mat.Matrix, k int, rng *rand.Rand) *mat.Matrix {
	n := X.Rows
	C := mat.New(k, X.Cols)
	first := rng.Intn(n)
	copy(C.Row(0), X.Row(first))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = mat.SquaredDist(X.Row(i), C.Row(0))
	}
	for c := 1; c < k; c++ {
		sum := 0.0
		for _, v := range d2 {
			sum += v
		}
		var pick int
		if sum <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * sum
			for i, v := range d2 {
				r -= v
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		copy(C.Row(c), X.Row(pick))
		for i := range d2 {
			if d := mat.SquaredDist(X.Row(i), C.Row(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return C
}

// GMM is a diagonal-covariance Gaussian mixture. With weight pruning it
// stands in for the variational Bayesian GMM of the ISC'20 baseline: the
// Dirichlet prior's effect — shutting down superfluous components — is
// emulated by discarding components whose responsibility mass falls below
// a threshold after EM.
type GMM struct {
	Weights []float64
	Means   [][]float64
	Vars    [][]float64
}

// FitGMM fits a mixture with k initial components by EM, pruning components
// whose weight drops below prune (set 0 to disable). Variances are floored
// for numerical stability.
func FitGMM(X *mat.Matrix, k, iters int, seed int64, prune float64) *GMM {
	n, d := X.Rows, X.Cols
	if n == 0 || k < 1 {
		return &GMM{}
	}
	if k > n {
		k = n
	}
	const varFloor = 1e-6
	// Initialize from k-means.
	labels := KMeans(X, k, 20, seed)
	g := &GMM{}
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	for c := 0; c < k; c++ {
		mean := make([]float64, d)
		vr := make([]float64, d)
		cnt := 0
		for i, l := range labels {
			if l != c {
				continue
			}
			mat.Axpy(1, X.Row(i), mean)
			cnt++
		}
		if cnt == 0 {
			continue
		}
		for j := range mean {
			mean[j] /= float64(cnt)
		}
		for i, l := range labels {
			if l != c {
				continue
			}
			row := X.Row(i)
			for j := range vr {
				dv := row[j] - mean[j]
				vr[j] += dv * dv
			}
		}
		for j := range vr {
			vr[j] = vr[j]/float64(cnt) + varFloor
		}
		g.Weights = append(g.Weights, float64(cnt)/float64(n))
		g.Means = append(g.Means, mean)
		g.Vars = append(g.Vars, vr)
	}

	resp := mat.New(n, len(g.Weights))
	for it := 0; it < iters; it++ {
		// E step.
		mat.Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				row := resp.Row(i)
				maxL := math.Inf(-1)
				for c := range g.Weights {
					row[c] = math.Log(g.Weights[c]+1e-300) + g.logGaussian(X.Row(i), c)
					if row[c] > maxL {
						maxL = row[c]
					}
				}
				sum := 0.0
				for c := range row {
					row[c] = math.Exp(row[c] - maxL)
					sum += row[c]
				}
				for c := range row {
					row[c] /= sum
				}
			}
		})
		// M step.
		for c := range g.Weights {
			var wsum float64
			mean := make([]float64, d)
			for i := 0; i < n; i++ {
				r := resp.At(i, c)
				wsum += r
				mat.Axpy(r, X.Row(i), mean)
			}
			if wsum < 1e-12 {
				g.Weights[c] = 0
				continue
			}
			for j := range mean {
				mean[j] /= wsum
			}
			vr := make([]float64, d)
			for i := 0; i < n; i++ {
				r := resp.At(i, c)
				row := X.Row(i)
				for j := range vr {
					dv := row[j] - mean[j]
					vr[j] += r * dv * dv
				}
			}
			for j := range vr {
				vr[j] = vr[j]/wsum + varFloor
			}
			g.Weights[c] = wsum / float64(n)
			g.Means[c] = mean
			g.Vars[c] = vr
		}
	}
	// Dirichlet-style pruning.
	if prune > 0 {
		out := &GMM{}
		for c, w := range g.Weights {
			if w >= prune {
				out.Weights = append(out.Weights, w)
				out.Means = append(out.Means, g.Means[c])
				out.Vars = append(out.Vars, g.Vars[c])
			}
		}
		// Renormalize.
		sum := 0.0
		for _, w := range out.Weights {
			sum += w
		}
		for i := range out.Weights {
			out.Weights[i] /= sum
		}
		g = out
	}
	return g
}

func (g *GMM) logGaussian(x []float64, c int) float64 {
	mean, vr := g.Means[c], g.Vars[c]
	s := 0.0
	for j := range x {
		d := x[j] - mean[j]
		s += d*d/vr[j] + math.Log(2*math.Pi*vr[j])
	}
	return -0.5 * s
}

// MahalanobisMin returns the minimum (diagonal) Mahalanobis distance from x
// to any component — ISC'20's anomaly score.
func (g *GMM) MahalanobisMin(x []float64) float64 {
	best := math.Inf(1)
	for c := range g.Weights {
		s := 0.0
		mean, vr := g.Means[c], g.Vars[c]
		for j := range x {
			d := x[j] - mean[j]
			s += d * d / vr[j]
		}
		if s < best {
			best = s
		}
	}
	return math.Sqrt(best)
}

// NumComponents returns the surviving component count.
func (g *GMM) NumComponents() int { return len(g.Weights) }

// DBSCAN density-clusters the rows of X; the result assigns -1 to noise
// points and 0..k-1 to cluster members. Used by the DeepHYDRA-style coarse
// stage of the labeling tool's suggestion engine.
func DBSCAN(X *mat.Matrix, eps float64, minPts int) []int {
	n := X.Rows
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	D := PairwiseEuclidean(X)
	neighbors := func(i int) []int {
		var out []int
		row := D.Row(i)
		for j := 0; j < n; j++ {
			if j != i && row[j] <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		nb := neighbors(i)
		if len(nb)+1 < minPts {
			labels[i] = -1
			continue
		}
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == -1 {
				labels[q] = cluster
			}
			if labels[q] != -2 {
				continue
			}
			labels[q] = cluster
			qnb := neighbors(q)
			if len(qnb)+1 >= minPts {
				queue = append(queue, qnb...)
			}
		}
		cluster++
	}
	return labels
}

// DTW computes the multivariate Dynamic Time Warping distance between two
// sequences a and b (each [T][d], possibly of different lengths) with
// Euclidean local cost and an optional Sakoe-Chiba band of half-width
// `window` (0 = unconstrained). This is the O(len(a)·len(b)) shape-based
// distance whose cost Challenge 1 of the paper deems prohibitive at fleet
// scale — reproduced here for the cost-comparison benchmark.
func DTW(a, b [][]float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window <= 0 {
		window = max(n, m)
	}
	window = max(window, abs(n-m)) // the band must admit the corner
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = math.Inf(1)
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = math.Inf(1)
		}
		lo := max(1, i-window)
		hi := min(m, i+window)
		for j := lo; j <= hi; j++ {
			c := mat.EuclideanDist(a[i-1], b[j-1])
			cur[j] = c + math.Min(prev[j], math.Min(cur[j-1], prev[j-1]))
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
