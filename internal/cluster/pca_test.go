package cluster

import (
	"math"
	"math/rand"
	"testing"

	"nodesentry/internal/mat"
)

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data stretched along (1, 1)/√2 with small orthogonal noise.
	rng := rand.New(rand.NewSource(1))
	X := mat.New(400, 2)
	for i := 0; i < 400; i++ {
		a := 5 * rng.NormFloat64()
		b := 0.2 * rng.NormFloat64()
		X.Set(i, 0, (a+b)/math.Sqrt2)
		X.Set(i, 1, (a-b)/math.Sqrt2)
	}
	p := FitPCA(X.Clone(), 2)
	c0 := append([]float64(nil), p.Components.Row(0)...)
	normalizeSign(c0)
	want := 1 / math.Sqrt2
	if math.Abs(c0[0]-want) > 0.05 || math.Abs(c0[1]-want) > 0.05 {
		t.Errorf("first component %v, want ~[%v %v]", c0, want, want)
	}
	if p.Explained[0] < p.Explained[1] {
		t.Error("components not ordered by explained variance")
	}
	ratio := p.ExplainedRatio(TotalVariance(X))
	if ratio < 0.99 {
		t.Errorf("2 components on 2-dim data explain %v, want ~1", ratio)
	}
}

func TestPCAOrthonormalComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X := mat.New(60, 10)
	for i := range X.Data {
		X.Data[i] = rng.NormFloat64()
	}
	p := FitPCA(X.Clone(), 4)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			dot := mat.Dot(p.Components.Row(a), p.Components.Row(b))
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-6 {
				t.Fatalf("components %d,%d dot %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestPCATransformConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X := mat.New(30, 6)
	for i := range X.Data {
		X.Data[i] = rng.NormFloat64()
	}
	p := FitPCA(X.Clone(), 3)
	Y := p.Transform(X)
	if Y.Rows != 30 || Y.Cols != 3 {
		t.Fatalf("projection shape %dx%d", Y.Rows, Y.Cols)
	}
	for i := 0; i < 5; i++ {
		v := p.TransformVector(X.Row(i))
		for c := range v {
			if math.Abs(v[c]-Y.At(i, c)) > 1e-9 {
				t.Fatal("TransformVector disagrees with Transform")
			}
		}
	}
	// Projections are centered.
	for c := 0; c < 3; c++ {
		s := 0.0
		for i := 0; i < 30; i++ {
			s += Y.At(i, c)
		}
		if math.Abs(s/30) > 1e-9 {
			t.Errorf("component %d projection mean %v", c, s/30)
		}
	}
}

func TestPCAPreservesClusterStructure(t *testing.T) {
	// Blobs embedded in a high-dim space with noise dims: after PCA the
	// blob separation must survive (and HAC must recover it).
	rng := rand.New(rand.NewSource(4))
	n, noiseDims := 40, 120
	X := mat.New(n, 2+noiseDims)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		truth[i] = c
		X.Set(i, 0, float64(c*10)+rng.NormFloat64())
		X.Set(i, 1, float64(c*10)+rng.NormFloat64())
		for j := 0; j < noiseDims; j++ {
			X.Set(i, 2+j, rng.NormFloat64())
		}
	}
	p := FitPCA(X.Clone(), 4)
	Y := p.Transform(X)
	res := HACAuto(Y, Average, 2, 6)
	if res.K != 2 {
		t.Fatalf("HAC on PCA projection found %d clusters, want 2", res.K)
	}
	if !sameClustering(res.Labels, truth) {
		t.Error("PCA projection lost the blob structure")
	}
}

func TestPCADegenerate(t *testing.T) {
	p := FitPCA(mat.New(0, 5), 3)
	if p.Components.Rows != 0 {
		t.Error("empty input should give no components")
	}
	// k larger than dims clamps.
	rng := rand.New(rand.NewSource(5))
	X := mat.New(10, 3)
	for i := range X.Data {
		X.Data[i] = rng.NormFloat64()
	}
	p = FitPCA(X.Clone(), 99)
	if p.Components.Rows != 3 {
		t.Errorf("k should clamp to 3, got %d", p.Components.Rows)
	}
	// Constant data: projections are all zero.
	C := mat.New(8, 4)
	for i := range C.Data {
		C.Data[i] = 7
	}
	pc := FitPCA(C.Clone(), 2)
	Y := pc.Transform(C)
	for _, v := range Y.Data {
		if math.Abs(v) > 1e-9 {
			t.Errorf("constant data projected to %v", v)
		}
	}
}
