// Package preprocess implements the paper's four-step MTS preprocessing
// pipeline (§3.2):
//
//  1. Cleaning — linear interpolation of missing samples;
//  2. Reduction — semantic aggregation of per-core metrics followed by
//     Pearson-correlation deduplication (r >= 0.99), shrinking the metric
//     dimension to roughly a tenth;
//  3. Standardization — per node-metric z-scoring with 5 %-trimmed
//     moments and clipping to ±5;
//  4. Segmentation — splitting each node's series at job transition points
//     into job-pattern segments.
//
// The package is substrate-agnostic: semantic groups arrive as plain index
// lists, so data imported from real systems works as well as synthetic
// telemetry.
package preprocess

import (
	"math"
	"sort"

	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
	"nodesentry/internal/stats"
)

// Clean repairs missing samples (NaNs) in place by linear interpolation
// between the nearest observed neighbours; leading/trailing gaps take the
// nearest observed value, and all-missing rows become zero.
func Clean(f *mts.NodeFrame) {
	mat.ParallelItems(len(f.Data), func(m int) {
		CleanSeries(f.Data[m])
	})
}

// CleanSeries is Clean for a single series.
func CleanSeries(x []float64) {
	n := len(x)
	i := 0
	for i < n {
		if !math.IsNaN(x[i]) {
			i++
			continue
		}
		// Gap [i, j).
		j := i
		for j < n && math.IsNaN(x[j]) {
			j++
		}
		switch {
		case i == 0 && j == n:
			for k := range x {
				x[k] = 0
			}
		case i == 0:
			for k := 0; k < j; k++ {
				x[k] = x[j]
			}
		case j == n:
			for k := i; k < n; k++ {
				x[k] = x[i-1]
			}
		default:
			lo, hi := x[i-1], x[j]
			span := float64(j - i + 1)
			for k := i; k < j; k++ {
				frac := float64(k-i+1) / span
				x[k] = lo + (hi-lo)*frac
			}
		}
		i = j
	}
}

// Reduction is a fitted dimensionality-reduction plan: semantic aggregation
// groups followed by the subset of groups kept after correlation
// deduplication. Apply projects any frame with the original metric layout
// onto the reduced layout.
type Reduction struct {
	// Groups lists, per output metric candidate, the input rows averaged
	// into it and the candidate's name.
	Groups []ReductionGroup
	// Keep indexes the Groups retained after Pearson deduplication.
	Keep []int
}

// ReductionGroup is one semantic aggregation: input rows averaged under a
// shared name.
type ReductionGroup struct {
	Name string
	Rows []int
}

// NumOutput returns the reduced metric count.
func (r *Reduction) NumOutput() int { return len(r.Keep) }

// OutputNames returns the names of the retained metrics.
func (r *Reduction) OutputNames() []string {
	names := make([]string, len(r.Keep))
	for i, g := range r.Keep {
		names[i] = r.Groups[g].Name
	}
	return names
}

// PlanReduction fits a reduction on training frames. groups maps an output
// name to the input row indices that share its physical meaning (per-core
// expansions, affine aliases); metrics not covered by any group each form a
// singleton group named after themselves. corr is the Pearson threshold at
// or above which one of a metric pair is dropped (0.99 in the paper).
//
// The correlation pass concatenates up to maxSamplesPerNode samples from
// every frame so the decision reflects fleet-wide behaviour, then greedily
// keeps the first metric of each highly correlated set (ordering by group
// name makes the plan deterministic).
func PlanReduction(frames map[string]*mts.NodeFrame, metricNames []string, groups map[string][]int, corr float64) *Reduction {
	red := &Reduction{}
	covered := map[int]bool{}
	groupNames := make([]string, 0, len(groups))
	for name := range groups {
		groupNames = append(groupNames, name)
	}
	sort.Strings(groupNames)
	for _, name := range groupNames {
		// Drop rows outside the frame layout: a semantic catalog built for
		// the full fleet schema may reference rows a narrower layout lacks.
		rows := make([]int, 0, len(groups[name]))
		for _, r := range groups[name] {
			if r >= 0 && r < len(metricNames) {
				rows = append(rows, r)
			}
		}
		if len(rows) == 0 {
			continue
		}
		red.Groups = append(red.Groups, ReductionGroup{Name: name, Rows: rows})
		for _, r := range rows {
			covered[r] = true
		}
	}
	for i, name := range metricNames {
		if !covered[i] {
			red.Groups = append(red.Groups, ReductionGroup{Name: name, Rows: []int{i}})
		}
	}

	// Build one aggregated sample series per group across all frames.
	const maxSamplesPerNode = 512
	nodes := make([]string, 0, len(frames))
	for n := range frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	agg := make([][]float64, len(red.Groups))
	for gi := range agg {
		var series []float64
		for _, node := range nodes {
			f := frames[node]
			n := f.Len()
			stride := 1
			if n > maxSamplesPerNode {
				stride = n / maxSamplesPerNode
			}
			for t := 0; t < n; t += stride {
				series = append(series, aggregateAt(f, red.Groups[gi].Rows, t))
			}
		}
		agg[gi] = series
	}

	// Greedy Pearson deduplication.
	dropped := make([]bool, len(red.Groups))
	for i := range red.Groups {
		if dropped[i] {
			continue
		}
		red.Keep = append(red.Keep, i)
		for j := i + 1; j < len(red.Groups); j++ {
			if dropped[j] {
				continue
			}
			if math.Abs(stats.Pearson(agg[i], agg[j])) >= corr {
				dropped[j] = true
			}
		}
	}
	return red
}

func aggregateAt(f *mts.NodeFrame, rows []int, t int) float64 {
	s := 0.0
	c := 0
	for _, r := range rows {
		v := f.Data[r][t]
		if math.IsNaN(v) {
			continue
		}
		s += v
		c++
	}
	if c == 0 {
		return 0
	}
	return s / float64(c)
}

// Apply projects a frame onto the reduced metric set, averaging each kept
// group's input rows. The input frame is not modified.
func (r *Reduction) Apply(f *mts.NodeFrame) *mts.NodeFrame {
	out := &mts.NodeFrame{
		Node:    f.Node,
		Metrics: r.OutputNames(),
		Data:    make([][]float64, len(r.Keep)),
		Start:   f.Start,
		Step:    f.Step,
	}
	T := f.Len()
	mat.ParallelItems(len(r.Keep), func(i int) {
		g := r.Groups[r.Keep[i]]
		row := make([]float64, T)
		for t := 0; t < T; t++ {
			row[t] = aggregateAt(f, g.Rows, t)
		}
		out.Data[i] = row
	})
	return out
}

// ApplyInto is Apply with a caller-owned destination: each kept group is
// aggregated into dst.Data[i], whose rows must already hold f.Len() samples
// (the scratch frames of core's streaming score path are sized this way).
// Aggregation runs sequentially per row, which is byte-identical to Apply's
// parallel version — rows are independent. dst.Metrics is left untouched.
func (r *Reduction) ApplyInto(dst, f *mts.NodeFrame) {
	dst.Node = f.Node
	dst.Start = f.Start
	dst.Step = f.Step
	T := f.Len()
	for i, g := range r.Keep {
		rows := r.Groups[g].Rows
		row := dst.Data[i]
		for t := 0; t < T; t++ {
			row[t] = aggregateAt(f, rows, t)
		}
	}
}

// Standardizer holds per-node, per-metric z-scoring parameters fitted with
// trimmed moments (equation (2) of the paper), plus a fleet-wide fallback
// for nodes unseen at fit time.
type Standardizer struct {
	// PerNode maps node name to its fitted (mean, std) per metric.
	PerNode map[string]*NodeParams
	// Global is the fallback for unseen nodes: the average of the
	// per-node parameters.
	Global *NodeParams
	// Clip bounds standardized values to [-Clip, Clip] (5 in the paper).
	Clip float64
}

// NodeParams are the per-metric moments of one node.
type NodeParams struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer fits per node-metric trimmed moments on training frames.
// trim is the fraction of extreme samples excluded at each tail (0.05 in
// the paper); clip bounds standardized values (5 in the paper).
func FitStandardizer(frames map[string]*mts.NodeFrame, trim, clip float64) *Standardizer {
	s := &Standardizer{PerNode: make(map[string]*NodeParams, len(frames)), Clip: clip}
	nodes := make([]string, 0, len(frames))
	for n := range frames {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	var width int
	for _, node := range nodes {
		f := frames[node]
		p := &NodeParams{
			Mean: make([]float64, f.NumMetrics()),
			Std:  make([]float64, f.NumMetrics()),
		}
		mat.ParallelItems(f.NumMetrics(), func(m int) {
			p.Mean[m], p.Std[m] = stats.TrimmedMeanStd(f.Data[m], trim)
		})
		s.PerNode[node] = p
		width = f.NumMetrics()
	}
	// Fleet average as the fallback for unseen nodes.
	g := &NodeParams{Mean: make([]float64, width), Std: make([]float64, width)}
	for _, p := range s.PerNode {
		for m := range g.Mean {
			g.Mean[m] += p.Mean[m]
			g.Std[m] += p.Std[m]
		}
	}
	if n := float64(len(s.PerNode)); n > 0 {
		for m := range g.Mean {
			g.Mean[m] /= n
			g.Std[m] /= n
		}
	}
	s.Global = g
	return s
}

// Apply standardizes the frame in place using the node's fitted parameters
// (or the fleet fallback) and clips to ±Clip. Zero-variance metrics map to
// 0 rather than blowing up.
func (s *Standardizer) Apply(f *mts.NodeFrame) {
	p, ok := s.PerNode[f.Node]
	if !ok {
		p = s.Global
	}
	clip := s.Clip
	if clip <= 0 {
		clip = 5
	}
	mat.ParallelItems(len(f.Data), func(m int) {
		if m >= len(p.Mean) {
			return
		}
		mu, sd := p.Mean[m], p.Std[m]
		row := f.Data[m]
		for t, v := range row {
			var z float64
			if sd > 0 {
				z = (v - mu) / sd
			}
			if z > clip {
				z = clip
			} else if z < -clip {
				z = -clip
			}
			row[t] = z
		}
	})
}

// Segment splits a frame at job transition points. spans must tile the
// frame's time range (idle spans included) and may extend beyond it — a
// span that started before the frame yields a segment with a positive
// Offset recording how far into the job the frame begins. Segments shorter
// than minLen samples are dropped (too short to carry a pattern).
func Segment(f *mts.NodeFrame, spans []mts.JobSpan, minLen int) []mts.Segment {
	var out []mts.Segment
	for _, sp := range spans {
		lo := f.IndexOf(sp.Start)
		hi := f.IndexOf(sp.End)
		if hi-lo < minLen {
			continue
		}
		offset := 0
		if sp.Start < f.Start && f.Step > 0 {
			offset = int((f.Start - sp.Start) / f.Step)
		}
		out = append(out, mts.Segment{Node: f.Node, Job: sp.Job, Lo: lo, Hi: hi, Offset: offset})
	}
	return out
}

// EqualLengthChop cuts a frame's time range into fixed-length segments,
// ignoring job boundaries. This is ablation variant C3 of the paper
// (Table 5): treating all segments uniformly regardless of job structure.
func EqualLengthChop(f *mts.NodeFrame, chunk int) []mts.Segment {
	if chunk <= 0 {
		return nil
	}
	var out []mts.Segment
	for lo := 0; lo+chunk <= f.Len(); lo += chunk {
		out = append(out, mts.Segment{Node: f.Node, Job: mts.IdleJobID, Lo: lo, Hi: lo + chunk})
	}
	return out
}
