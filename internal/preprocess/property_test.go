package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nodesentry/internal/mts"
)

// Property tests for the preprocessing invariants the rest of the system
// relies on.

func randFrame(rng *rand.Rand, metrics, samples int, missing float64) *mts.NodeFrame {
	f := &mts.NodeFrame{
		Node:    "n",
		Metrics: make([]string, metrics),
		Data:    make([][]float64, metrics),
		Start:   0,
		Step:    60,
	}
	for m := 0; m < metrics; m++ {
		f.Metrics[m] = "m" + string(rune('a'+m))
		row := make([]float64, samples)
		for t := range row {
			if rng.Float64() < missing {
				row[t] = math.NaN()
			} else {
				row[t] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(4)))
			}
		}
		f.Data[m] = row
	}
	return f
}

func TestStandardizerClipProperty(t *testing.T) {
	// After Apply, every value lies within [-clip, clip] and is finite.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := randFrame(rng, 1+rng.Intn(4), 8+rng.Intn(100), 0)
		std := FitStandardizer(map[string]*mts.NodeFrame{"n": frame.Clone()}, 0.05, 5)
		std.Apply(frame)
		for _, row := range frame.Data {
			for _, v := range row {
				if math.IsNaN(v) || v > 5 || v < -5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCleanRemovesAllNaNsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := randFrame(rng, 1+rng.Intn(4), 1+rng.Intn(60), 0.4)
		Clean(frame)
		return mts.CountMissing(frame) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCleanPreservesObservedValuesProperty(t *testing.T) {
	// Cleaning must never alter a sample that was observed.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		frame := randFrame(rng, 2, 5+rng.Intn(50), 0.3)
		orig := frame.Clone()
		Clean(frame)
		for m := range orig.Data {
			for t, v := range orig.Data[m] {
				if !math.IsNaN(v) && frame.Data[m][t] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReductionApplyIdempotentWidthProperty(t *testing.T) {
	// Applying a reduction plan to any frame with the right layout yields
	// exactly NumOutput rows of the input length.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		metrics := 3 + rng.Intn(5)
		frame := randFrame(rng, metrics, 30+rng.Intn(40), 0)
		groups := map[string][]int{"g0": {0, 1}}
		red := PlanReduction(map[string]*mts.NodeFrame{"n": frame}, frame.Metrics, groups, 0.99)
		out := red.Apply(frame)
		if out.NumMetrics() != red.NumOutput() || out.Len() != frame.Len() {
			return false
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSegmentationCoversFrameProperty(t *testing.T) {
	// Contiguous spans over the frame produce contiguous segments covering
	// every sample (minLen 1).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		samples := 10 + rng.Intn(100)
		frame := randFrame(rng, 1, samples, 0)
		var spans []mts.JobSpan
		cursor := int64(0)
		end := frame.TimeAt(samples-1) + frame.Step
		job := int64(1)
		for cursor < end {
			d := int64(1+rng.Intn(10)) * frame.Step
			if cursor+d > end {
				d = end - cursor
			}
			spans = append(spans, mts.JobSpan{Job: job, Node: "n", Start: cursor, End: cursor + d})
			cursor += d
			job++
		}
		segs := Segment(frame, spans, 1)
		covered := make([]bool, samples)
		for _, s := range segs {
			for i := s.Lo; i < s.Hi; i++ {
				if covered[i] {
					return false // overlap
				}
				covered[i] = true
			}
		}
		for _, c := range covered {
			if !c {
				return false // gap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCleanFrame(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	frame := randFrame(rng, 96, 4320, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := frame.Clone()
		Clean(g)
	}
}

func BenchmarkStandardizerApply(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	frame := randFrame(rng, 96, 4320, 0)
	std := FitStandardizer(map[string]*mts.NodeFrame{"n": frame.Clone()}, 0.05, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := frame.Clone()
		std.Apply(g)
	}
}
