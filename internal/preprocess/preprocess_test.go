package preprocess

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nodesentry/internal/mts"
	"nodesentry/internal/stats"
)

func TestCleanSeriesInterior(t *testing.T) {
	x := []float64{1, math.NaN(), math.NaN(), 4}
	CleanSeries(x)
	want := []float64{1, 2, 3, 4}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestCleanSeriesEdges(t *testing.T) {
	x := []float64{math.NaN(), math.NaN(), 5, 6, math.NaN()}
	CleanSeries(x)
	want := []float64{5, 5, 5, 6, 6}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestCleanSeriesAllMissing(t *testing.T) {
	x := []float64{math.NaN(), math.NaN()}
	CleanSeries(x)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("all-NaN row should zero out, got %v", x)
	}
}

func TestCleanSeriesIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		x := make([]float64, n)
		for i := range x {
			if rng.Float64() < 0.3 {
				x[i] = math.NaN()
			} else {
				x[i] = rng.NormFloat64()
			}
		}
		CleanSeries(x)
		for _, v := range x {
			if math.IsNaN(v) {
				return false
			}
		}
		y := append([]float64(nil), x...)
		CleanSeries(y)
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCleanFrame(t *testing.T) {
	f := &mts.NodeFrame{
		Node:    "n",
		Metrics: []string{"a", "b"},
		Data: [][]float64{
			{1, math.NaN(), 3},
			{math.NaN(), 2, math.NaN()},
		},
		Start: 0, Step: 1,
	}
	Clean(f)
	if mts.CountMissing(f) != 0 {
		t.Error("Clean left NaNs")
	}
	if f.Data[0][1] != 2 {
		t.Errorf("interpolation wrong: %v", f.Data[0])
	}
}

// redFixture builds two frames with: a 3-row "cpu" group, an exact copy
// group "cpu_dup" (should be dropped by dedup), an independent "mem" group,
// and one ungrouped metric.
func redFixture() (map[string]*mts.NodeFrame, []string, map[string][]int) {
	T := 200
	mk := func(seed int64) *mts.NodeFrame {
		rng := rand.New(rand.NewSource(seed))
		base := make([]float64, T)
		indep := make([]float64, T)
		for t := 0; t < T; t++ {
			base[t] = math.Sin(float64(t)/7) + 0.05*rng.NormFloat64()
			indep[t] = math.Cos(float64(t)/3) + 0.05*rng.NormFloat64()
		}
		rows := make([][]float64, 6)
		for r := 0; r < 3; r++ { // cpu cores
			rows[r] = make([]float64, T)
			for t := 0; t < T; t++ {
				rows[r][t] = base[t] * (1 + 0.1*float64(r))
			}
		}
		rows[3] = append([]float64(nil), base...) // cpu_dup: correlated with cpu
		rows[4] = indep                           // mem
		extra := make([]float64, T)
		for t := range extra {
			extra[t] = float64(t % 17)
		}
		rows[5] = extra // ungrouped
		return &mts.NodeFrame{
			Node:    "n",
			Metrics: []string{"cpu0", "cpu1", "cpu2", "cpu_alias", "mem", "extra"},
			Data:    rows, Start: 0, Step: 15,
		}
	}
	frames := map[string]*mts.NodeFrame{"n1": mk(1), "n2": mk(2)}
	names := frames["n1"].Metrics
	groups := map[string][]int{
		"cpu":     {0, 1, 2},
		"cpu_dup": {3},
		"mem":     {4},
	}
	return frames, names, groups
}

func TestPlanReductionDropsDuplicates(t *testing.T) {
	frames, names, groups := redFixture()
	red := PlanReduction(frames, names, groups, 0.99)
	out := red.OutputNames()
	has := func(name string) bool {
		for _, n := range out {
			if n == name {
				return true
			}
		}
		return false
	}
	if !has("cpu") && !has("cpu_dup") {
		t.Error("one of the correlated cpu groups must survive")
	}
	if has("cpu") && has("cpu_dup") {
		t.Errorf("correlated duplicate not dropped: %v", out)
	}
	if !has("mem") {
		t.Errorf("independent metric dropped: %v", out)
	}
	if !has("extra") {
		t.Errorf("ungrouped metric should form a singleton group: %v", out)
	}
}

func TestReductionApply(t *testing.T) {
	frames, names, groups := redFixture()
	red := PlanReduction(frames, names, groups, 0.99)
	f := frames["n1"]
	g := red.Apply(f)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumMetrics() != red.NumOutput() {
		t.Fatalf("reduced frame has %d metrics, plan says %d", g.NumMetrics(), red.NumOutput())
	}
	if g.Len() != f.Len() || g.Start != f.Start {
		t.Error("reduction changed the time axis")
	}
	// The aggregated cpu row must equal the mean of its inputs.
	for i, name := range g.Metrics {
		if name != "cpu" {
			continue
		}
		for _, tt := range []int{0, 50, 199} {
			want := (f.Data[0][tt] + f.Data[1][tt] + f.Data[2][tt]) / 3
			if math.Abs(g.Data[i][tt]-want) > 1e-12 {
				t.Fatalf("aggregation wrong at t=%d: %v vs %v", tt, g.Data[i][tt], want)
			}
		}
	}
}

func TestReductionRatioOnWideCatalog(t *testing.T) {
	// A catalog with heavy per-core + alias expansion should reduce to
	// roughly its semantic count — "about a tenth" in the paper.
	T := 128
	rng := rand.New(rand.NewSource(3))
	numSem := 5
	rowsPerSem := 10
	var names []string
	var rows [][]float64
	groups := map[string][]int{}
	for s := 0; s < numSem; s++ {
		base := make([]float64, T)
		for t := range base {
			base[t] = math.Sin(float64(t)/float64(3+s)) + 0.02*rng.NormFloat64()
		}
		for r := 0; r < rowsPerSem; r++ {
			row := make([]float64, T)
			for t := range row {
				row[t] = base[t]*(1+0.05*float64(r)) + 0.001*rng.NormFloat64()
			}
			groups[groupName(s)] = append(groups[groupName(s)], len(names))
			names = append(names, groupName(s)+"_"+string(rune('a'+r)))
			rows = append(rows, row)
		}
	}
	f := &mts.NodeFrame{Node: "n", Metrics: names, Data: rows, Start: 0, Step: 15}
	red := PlanReduction(map[string]*mts.NodeFrame{"n": f}, names, groups, 0.99)
	if red.NumOutput() > numSem {
		t.Errorf("reduced to %d metrics, want <= %d", red.NumOutput(), numSem)
	}
}

func groupName(s int) string { return "sem" + string(rune('A'+s)) }

func TestStandardizerBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mkFrame := func(node string, mean, std float64) *mts.NodeFrame {
		row := make([]float64, 1000)
		for i := range row {
			row[i] = mean + std*rng.NormFloat64()
		}
		return &mts.NodeFrame{Node: node, Metrics: []string{"m"}, Data: [][]float64{row}, Start: 0, Step: 1}
	}
	train := map[string]*mts.NodeFrame{
		"a": mkFrame("a", 100, 10),
		"b": mkFrame("b", -50, 5),
	}
	s := FitStandardizer(train, 0.05, 5)
	fa := train["a"].Clone()
	s.Apply(fa)
	// Trimming 5% of each Gaussian tail shrinks the fitted std to ~0.79 of
	// the true std, so standardized data lands near std 1.26 by design.
	m, sd := stats.MeanStd(fa.Data[0])
	if math.Abs(m) > 0.1 || sd < 0.9 || sd > 1.6 {
		t.Errorf("standardized mean/std = %v/%v, want ~0/~1.26", m, sd)
	}
}

func TestStandardizerClipsAndHandlesConstant(t *testing.T) {
	f := &mts.NodeFrame{
		Node:    "a",
		Metrics: []string{"m", "const"},
		Data: [][]float64{
			{0, 0, 0, 0, 0, 0, 0, 0, 0, 1000}, // huge outlier
			{7, 7, 7, 7, 7, 7, 7, 7, 7, 7},
		},
		Start: 0, Step: 1,
	}
	s := FitStandardizer(map[string]*mts.NodeFrame{"a": f.Clone()}, 0.05, 5)
	s.Apply(f)
	for _, v := range f.Data[0] {
		if v > 5 || v < -5 {
			t.Errorf("value %v escaped clip", v)
		}
	}
	for _, v := range f.Data[1] {
		if v != 0 {
			t.Errorf("constant metric standardized to %v, want 0", v)
		}
	}
}

func TestStandardizerUnseenNodeFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	row := make([]float64, 500)
	for i := range row {
		row[i] = 10 + 2*rng.NormFloat64()
	}
	train := map[string]*mts.NodeFrame{
		"a": {Node: "a", Metrics: []string{"m"}, Data: [][]float64{append([]float64(nil), row...)}, Start: 0, Step: 1},
	}
	s := FitStandardizer(train, 0.05, 5)
	unseen := &mts.NodeFrame{Node: "zz", Metrics: []string{"m"}, Data: [][]float64{append([]float64(nil), row...)}, Start: 0, Step: 1}
	s.Apply(unseen)
	m, _ := stats.MeanStd(unseen.Data[0])
	if math.Abs(m) > 0.3 {
		t.Errorf("fallback standardization mean = %v, want ~0", m)
	}
}

func TestSegment(t *testing.T) {
	f := &mts.NodeFrame{
		Node:    "n",
		Metrics: []string{"m"},
		Data:    [][]float64{make([]float64, 100)},
		Start:   0, Step: 10,
	}
	spans := []mts.JobSpan{
		{Job: 1, Start: 0, End: 300},               // 30 samples
		{Job: mts.IdleJobID, Start: 300, End: 350}, // 5 samples, dropped at minLen 10
		{Job: 2, Start: 350, End: 1000},            // 65 samples
	}
	segs := Segment(f, spans, 10)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2: %v", len(segs), segs)
	}
	if segs[0].Job != 1 || segs[0].Lo != 0 || segs[0].Hi != 30 {
		t.Errorf("segment 0 = %+v", segs[0])
	}
	if segs[1].Job != 2 || segs[1].Lo != 35 || segs[1].Hi != 100 {
		t.Errorf("segment 1 = %+v", segs[1])
	}
}

func TestEqualLengthChop(t *testing.T) {
	f := &mts.NodeFrame{
		Node:    "n",
		Metrics: []string{"m"},
		Data:    [][]float64{make([]float64, 105)},
		Start:   0, Step: 10,
	}
	segs := EqualLengthChop(f, 25)
	if len(segs) != 4 {
		t.Fatalf("got %d chunks, want 4", len(segs))
	}
	for i, s := range segs {
		if s.Len() != 25 {
			t.Errorf("chunk %d has length %d", i, s.Len())
		}
	}
	if EqualLengthChop(f, 0) != nil {
		t.Error("chunk 0 should yield nil")
	}
}
