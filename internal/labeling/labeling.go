// Package labeling reproduces the paper's clustering-adjustment and
// anomaly-labeling toolkit (§4.2, artifact A₂) as a library: an annotation
// store with history, detector-assisted label suggestions, and interactive
// cluster adjustment with centroid updates. cmd/labeltool exposes it as a
// CLI and an HTTP UI (the original is a ~1,600-line Tkinter desktop app;
// the functionality — select metrics, label/cancel intervals with
// algorithmic assistance, move segments between clusters — is reproduced
// without the desktop canvas).
package labeling

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nodesentry/internal/mts"
)

// Store holds the labeling session state: per-node anomaly intervals plus
// an append-only annotation history. All methods are safe for concurrent
// use; accessor results are copies the caller owns.
type Store struct {
	mu      sync.RWMutex
	labels  mts.Labels
	history []HistoryEntry
}

// HistoryEntry records one labeling action.
type HistoryEntry struct {
	Time   time.Time
	Action string // "label" or "cancel"
	Node   string
	Span   mts.Interval
}

// NewStore returns an empty labeling session.
func NewStore() *Store {
	return &Store{labels: mts.Labels{}}
}

// Label marks [start, end) on node as anomalous.
func (s *Store) Label(node string, iv mts.Interval) error {
	if iv.End <= iv.Start {
		return fmt.Errorf("labeling: empty interval %v", iv)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.labels.Add(node, iv)
	s.history = append(s.history, HistoryEntry{
		Time: time.Now(), Action: "label", Node: node, Span: iv,
	})
	return nil
}

// Cancel removes any labeled overlap with [start, end) on node.
func (s *Store) Cancel(node string, iv mts.Interval) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var kept []mts.Interval
	for _, l := range s.labels[node] {
		if !l.Overlaps(iv) {
			kept = append(kept, l)
			continue
		}
		// Keep the non-overlapping remainders.
		if l.Start < iv.Start {
			kept = append(kept, mts.Interval{Start: l.Start, End: iv.Start})
		}
		if l.End > iv.End {
			kept = append(kept, mts.Interval{Start: iv.End, End: l.End})
		}
	}
	s.labels[node] = mts.NormalizeIntervals(kept)
	s.history = append(s.history, HistoryEntry{
		Time: time.Now(), Action: "cancel", Node: node, Span: iv,
	})
}

// Labels returns a deep copy of the current labels.
func (s *Store) Labels() mts.Labels {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(mts.Labels, len(s.labels))
	for node, ivs := range s.labels {
		out[node] = append([]mts.Interval(nil), ivs...)
	}
	return out
}

// NodeLabels returns a copy of one node's intervals (nil when unlabeled).
func (s *Store) NodeLabels(node string) []mts.Interval {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]mts.Interval(nil), s.labels[node]...)
}

// History returns a copy of the annotation history.
func (s *Store) History() []HistoryEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]HistoryEntry(nil), s.history...)
}

// Save writes the session in the artifact's layout: per-node CSVs under
// labels/ plus annotation_history.txt.
func (s *Store) Save(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	labelDir := filepath.Join(dir, "labels")
	if err := os.MkdirAll(labelDir, 0o755); err != nil {
		return err
	}
	nodes := make([]string, 0, len(s.labels))
	for n := range s.labels {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		var b strings.Builder
		b.WriteString("start,end\n")
		for _, iv := range s.labels[node] {
			fmt.Fprintf(&b, "%d,%d\n", iv.Start, iv.End)
		}
		if err := os.WriteFile(filepath.Join(labelDir, node+".csv"), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	var h strings.Builder
	for _, e := range s.history {
		fmt.Fprintf(&h, "%s %s %s %d %d\n", e.Time.UTC().Format(time.RFC3339), e.Action, e.Node, e.Span.Start, e.Span.End)
	}
	return os.WriteFile(filepath.Join(dir, "annotation_history.txt"), []byte(h.String()), 0o644)
}

// Load restores a session saved with Save. Missing files yield an empty
// session rather than an error (a fresh workspace is valid).
func Load(dir string) (*Store, error) {
	s := NewStore()
	labelDir := filepath.Join(dir, "labels")
	entries, err := os.ReadDir(labelDir)
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		node := strings.TrimSuffix(e.Name(), ".csv")
		data, err := os.ReadFile(filepath.Join(labelDir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			if i == 0 {
				continue // header
			}
			a, b, ok := strings.Cut(line, ",")
			if !ok {
				continue
			}
			start, err1 := strconv.ParseInt(a, 10, 64)
			end, err2 := strconv.ParseInt(b, 10, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("labeling: bad line %q in %s", line, e.Name())
			}
			s.labels.Add(node, mts.Interval{Start: start, End: end})
		}
	}
	if hist, err := os.Open(filepath.Join(dir, "annotation_history.txt")); err == nil {
		defer func() { _ = hist.Close() }() // read-only; close errors carry no data loss
		sc := bufio.NewScanner(hist)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 5 {
				continue
			}
			ts, _ := time.Parse(time.RFC3339, fields[0])
			start, _ := strconv.ParseInt(fields[3], 10, 64)
			end, _ := strconv.ParseInt(fields[4], 10, 64)
			s.history = append(s.history, HistoryEntry{
				Time: ts, Action: fields[1], Node: fields[2],
				Span: mts.Interval{Start: start, End: end},
			})
		}
	}
	return s, nil
}

// Suggestion is a detector-proposed anomalous interval for operator review.
type Suggestion struct {
	Node   string
	Span   mts.Interval
	Method string
	// Score is the peak anomaly score inside the interval.
	Score float64
}

// Suggest converts a per-sample prediction stream into interval
// suggestions: maximal runs of positive predictions become intervals,
// stamped with the detecting method's name. The paper's tool integrates
// "multiple anomaly detection methods (e.g., statistical methods and deep
// learning methods) to aid in labeling" — callers pass each method's
// output here.
func Suggest(f *mts.NodeFrame, scores []float64, preds []bool, method string) []Suggestion {
	var out []Suggestion
	for i := 0; i < len(preds); {
		if !preds[i] {
			i++
			continue
		}
		j := i
		peak := scores[i]
		for j < len(preds) && preds[j] {
			if scores[j] > peak {
				peak = scores[j]
			}
			j++
		}
		out = append(out, Suggestion{
			Node:   f.Node,
			Span:   mts.Interval{Start: f.TimeAt(i), End: f.TimeAt(j)},
			Method: method,
			Score:  peak,
		})
		i = j
	}
	return out
}

// Accept applies a suggestion to the store.
func (s *Store) Accept(sug Suggestion) error { return s.Label(sug.Node, sug.Span) }
