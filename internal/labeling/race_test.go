package labeling

import (
	"sync"
	"testing"

	"nodesentry/internal/mts"
)

// TestStoreConcurrentAccess exercises every Store method from overlapping
// goroutines; the -race verify gate turns any missing lock into a failure.
func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := "n1"
			if w%2 == 1 {
				node = "n2"
			}
			for i := 0; i < 50; i++ {
				lo := int64(100 * (w*50 + i))
				switch i % 4 {
				case 0:
					if err := s.Label(node, mts.Interval{Start: lo, End: lo + 50}); err != nil {
						t.Error(err)
					}
				case 1:
					s.Cancel(node, mts.Interval{Start: lo - 120, End: lo - 80})
				case 2:
					_ = s.Labels()
					_ = s.NodeLabels(node)
				case 3:
					_ = s.History()
				}
			}
		}()
	}
	wg.Wait()
	if len(s.NodeLabels("n1")) == 0 || len(s.NodeLabels("n2")) == 0 {
		t.Error("store lost all labels under concurrent traffic")
	}
}

// TestClusterSessionConcurrentAccess drives Move against every read
// accessor at once.
func TestClusterSessionConcurrentAccess(t *testing.T) {
	F, segs := clusterFixture()
	cs := NewClusterSession(F, segs, 2, 5)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				switch (w + i) % 5 {
				case 0:
					if err := cs.Move(i%len(segs), i%cs.NumClusters()); err != nil {
						t.Error(err)
					}
				case 1:
					_ = cs.Labels()
					_ = cs.OriginalLabels()
				case 2:
					_ = cs.Silhouette()
				case 3:
					_ = cs.Centroids()
				case 4:
					_ = cs.Adjusted()
				}
			}
		}()
	}
	wg.Wait()
	if got := len(cs.Labels()); got != len(segs) {
		t.Errorf("labels length %d, want %d", got, len(segs))
	}
}
