package labeling

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"nodesentry/internal/cluster"
	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
)

// ClusterSession is the interactive cluster-adjustment state: algorithmic
// assignments plus operator overrides, with centroids recomputed after
// every adjustment — functionality (3) of the paper's tool. All methods
// are safe for concurrent use; Features and Segments are fixed at
// construction and must not be mutated afterwards.
type ClusterSession struct {
	// Features is the segment feature matrix (row per segment).
	Features *mat.Matrix
	// Segments identifies the rows.
	Segments []mts.Segment

	mu sync.RWMutex
	// original holds the algorithmic labels; current the adjusted ones.
	original []int
	current  []int
	k        int
}

// NewClusterSession runs the built-in HAC clustering (silhouette-guided)
// and returns an adjustable session.
func NewClusterSession(F *mat.Matrix, segments []mts.Segment, kMin, kMax int) *ClusterSession {
	res := cluster.HACAuto(F, cluster.Average, kMin, kMax)
	return &ClusterSession{
		Features: F,
		Segments: segments,
		original: append([]int(nil), res.Labels...),
		current:  append([]int(nil), res.Labels...),
		k:        res.K,
	}
}

// NumClusters returns the current cluster count.
func (c *ClusterSession) NumClusters() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.k
}

// Labels returns the adjusted labels (copy).
func (c *ClusterSession) Labels() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int(nil), c.current...)
}

// OriginalLabels returns the algorithmic labels (copy).
func (c *ClusterSession) OriginalLabels() []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int(nil), c.original...)
}

// Move reassigns segment i to cluster target; targets beyond the current
// count create a new cluster. Centroids are implicitly updated (they are
// derived from labels on demand).
func (c *ClusterSession) Move(i, target int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.current) {
		return fmt.Errorf("labeling: segment %d out of range", i)
	}
	if target < 0 || target > c.k {
		return fmt.Errorf("labeling: cluster %d out of range (0..%d allowed)", target, c.k)
	}
	if target == c.k {
		c.k++
	}
	c.current[i] = target
	return nil
}

// Centroids returns the centroids of the adjusted clustering.
func (c *ClusterSession) Centroids() *mat.Matrix {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return cluster.Centroids(c.Features, c.current, c.k)
}

// Silhouette scores the adjusted clustering.
func (c *ClusterSession) Silhouette() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return cluster.Silhouette(c.Features, c.current)
}

// Adjusted reports how many segments differ from the algorithmic result.
func (c *ClusterSession) Adjusted() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for i := range c.current {
		if c.current[i] != c.original[i] {
			n++
		}
	}
	return n
}

// Save writes the artifact's two cluster files: config_files/
// cluster_result.txt (raw algorithmic output) and cluster_adjust.txt
// (operator-modified groupings). Format: one "node job cluster" line per
// segment.
func (c *ClusterSession) Save(dir string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cfgDir := filepath.Join(dir, "config_files")
	if err := os.MkdirAll(cfgDir, 0o755); err != nil {
		return err
	}
	write := func(path string, labels []int) error {
		var b strings.Builder
		for i, seg := range c.Segments {
			fmt.Fprintf(&b, "%s %d %d\n", seg.Node, seg.Job, labels[i])
		}
		return os.WriteFile(path, []byte(b.String()), 0o644)
	}
	if err := write(filepath.Join(cfgDir, "cluster_result.txt"), c.original); err != nil {
		return err
	}
	return write(filepath.Join(dir, "cluster_adjust.txt"), c.current)
}

// LoadAdjustments applies a previously saved cluster_adjust.txt to the
// session (matching rows by order).
func (c *ClusterSession) LoadAdjustments(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(c.Segments) {
		return fmt.Errorf("labeling: %s has %d rows, session has %d segments", path, len(lines), len(c.Segments))
	}
	maxK := c.k
	labels := make([]int, len(lines))
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("labeling: bad row %q", line)
		}
		l, err := strconv.Atoi(fields[2])
		if err != nil || l < 0 {
			return fmt.Errorf("labeling: bad cluster in row %q", line)
		}
		labels[i] = l
		if l+1 > maxK {
			maxK = l + 1
		}
	}
	c.current = labels
	c.k = maxK
	return nil
}
