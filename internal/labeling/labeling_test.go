package labeling

import (
	"math/rand"
	"path/filepath"
	"testing"

	"nodesentry/internal/mat"
	"nodesentry/internal/mts"
)

func TestLabelCancel(t *testing.T) {
	s := NewStore()
	if err := s.Label("n1", mts.Interval{Start: 100, End: 200}); err != nil {
		t.Fatal(err)
	}
	if err := s.Label("n1", mts.Interval{Start: 300, End: 400}); err != nil {
		t.Fatal(err)
	}
	if err := s.Label("n1", mts.Interval{Start: 150, End: 150}); err == nil {
		t.Error("empty interval should be rejected")
	}
	// Cancel the middle of the first interval: splits it.
	s.Cancel("n1", mts.Interval{Start: 120, End: 180})
	got := s.Labels()["n1"]
	want := []mts.Interval{{Start: 100, End: 120}, {Start: 180, End: 200}, {Start: 300, End: 400}}
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
	// Two accepted labels + one cancel; the rejected empty interval does
	// not enter history.
	if len(s.History()) != 3 {
		t.Errorf("history has %d entries, want 3", len(s.History()))
	}
}

func TestStoreSaveLoad(t *testing.T) {
	s := NewStore()
	s.Label("n1", mts.Interval{Start: 10, End: 20})
	s.Label("n2", mts.Interval{Start: 30, End: 40})
	s.Cancel("n2", mts.Interval{Start: 30, End: 35})
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	for node, ivs := range s.Labels() {
		g := got.Labels()[node]
		if len(g) != len(ivs) {
			t.Fatalf("node %s: %v vs %v", node, g, ivs)
		}
		for i := range ivs {
			if g[i] != ivs[i] {
				t.Fatalf("node %s label %d differs", node, i)
			}
		}
	}
	if len(got.History()) != len(s.History()) {
		t.Errorf("history: %d vs %d", len(got.History()), len(s.History()))
	}
}

func TestLoadEmptyDir(t *testing.T) {
	s, err := Load(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Labels()) != 0 {
		t.Error("fresh dir should give empty store")
	}
}

func TestSuggest(t *testing.T) {
	f := &mts.NodeFrame{Node: "n1", Metrics: []string{"m"},
		Data: [][]float64{make([]float64, 10)}, Start: 1000, Step: 60}
	scores := []float64{0, 0, 5, 9, 7, 0, 0, 3, 0, 0}
	preds := []bool{false, false, true, true, true, false, false, true, false, false}
	sugs := Suggest(f, scores, preds, "ksigma")
	if len(sugs) != 2 {
		t.Fatalf("got %d suggestions, want 2", len(sugs))
	}
	if sugs[0].Span.Start != f.TimeAt(2) || sugs[0].Span.End != f.TimeAt(5) {
		t.Errorf("first suggestion span %v", sugs[0].Span)
	}
	if sugs[0].Score != 9 || sugs[0].Method != "ksigma" {
		t.Errorf("first suggestion %+v", sugs[0])
	}
	// Accepting a suggestion labels it.
	s := NewStore()
	if err := s.Accept(sugs[0]); err != nil {
		t.Fatal(err)
	}
	if len(s.Labels()["n1"]) != 1 {
		t.Error("accept did not label")
	}
}

func clusterFixture() (*mat.Matrix, []mts.Segment) {
	rng := rand.New(rand.NewSource(1))
	F := mat.New(20, 3)
	segs := make([]mts.Segment, 20)
	for i := 0; i < 20; i++ {
		base := float64((i % 2) * 50)
		for j := 0; j < 3; j++ {
			F.Set(i, j, base+rng.NormFloat64())
		}
		segs[i] = mts.Segment{Node: "n", Job: int64(i)}
	}
	return F, segs
}

func TestClusterSessionBasics(t *testing.T) {
	F, segs := clusterFixture()
	cs := NewClusterSession(F, segs, 2, 5)
	if cs.NumClusters() != 2 {
		t.Fatalf("auto clustering found %d clusters, want 2", cs.NumClusters())
	}
	if cs.Adjusted() != 0 {
		t.Error("fresh session should have no adjustments")
	}
	before := cs.Silhouette()
	if err := cs.Move(0, 1-cs.Labels()[0]); err != nil {
		t.Fatal(err)
	}
	if cs.Adjusted() != 1 {
		t.Errorf("adjusted = %d, want 1", cs.Adjusted())
	}
	if cs.Silhouette() >= before {
		t.Error("moving a point to the wrong cluster should hurt the silhouette")
	}
	// Creating a new cluster via target == k.
	if err := cs.Move(1, cs.NumClusters()); err != nil {
		t.Fatal(err)
	}
	if cs.NumClusters() != 3 {
		t.Errorf("new cluster not created: k=%d", cs.NumClusters())
	}
	if err := cs.Move(99, 0); err == nil {
		t.Error("out-of-range segment accepted")
	}
	if err := cs.Move(0, 99); err == nil {
		t.Error("out-of-range cluster accepted")
	}
	C := cs.Centroids()
	if C.Rows != cs.NumClusters() {
		t.Errorf("centroids rows = %d", C.Rows)
	}
}

func TestClusterSessionSaveLoad(t *testing.T) {
	F, segs := clusterFixture()
	cs := NewClusterSession(F, segs, 2, 5)
	cs.Move(3, 1-cs.Labels()[3])
	dir := t.TempDir()
	if err := cs.Save(dir); err != nil {
		t.Fatal(err)
	}
	// A fresh session restores the adjustments from disk.
	cs2 := NewClusterSession(F, segs, 2, 5)
	if err := cs2.LoadAdjustments(filepath.Join(dir, "cluster_adjust.txt")); err != nil {
		t.Fatal(err)
	}
	a, b := cs.Labels(), cs2.Labels()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("restored labels differ at %d", i)
		}
	}
	// Original algorithmic labels are preserved separately.
	orig := cs2.OriginalLabels()
	if orig[3] == cs2.Labels()[3] {
		t.Error("adjustment should differ from the original")
	}
}
