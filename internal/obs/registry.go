// Package obs is NodeSentry's stdlib-only observability subsystem: a
// concurrent metrics registry with Prometheus text exposition (the format
// the paper's deployment collects through, §5.1), span-style stage tracing
// for the offline pipeline and the online hot path, and an opt-in HTTP
// server exposing /metrics, /healthz and pprof.
//
// Everything is nil-safe: a nil *Registry hands out nil metric handles,
// and every handle method no-ops on a nil receiver. Instrumented code
// therefore never branches on "is observability enabled" — it records
// unconditionally, and the disabled path costs one nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates the exposition TYPE of a metric family.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

// Registry is a concurrent metrics registry. Handles are created on first
// use and cached by (name, labels); hot paths should hold the handle rather
// than re-looking it up. The zero value is not usable — call NewRegistry —
// but a nil *Registry is a valid "observability off" registry.
type Registry struct {
	mu    sync.Mutex
	kinds map[string]kind
	// series maps canonical series id -> metric handle.
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// scrapeHooks run at the start of every WritePrometheus call (see
	// OnScrape); procRegistered makes RegisterProcessMetrics idempotent.
	scrapeHooks    []func()
	procRegistered bool
	// exemplars gates exemplar rendering in WritePrometheus (see
	// SetExemplars). Histograms always *record* exemplars handed to
	// ObserveExemplar; the flag only controls exposition, so flipping it
	// at runtime costs nothing retroactively.
	exemplars atomic.Bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    map[string]kind{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the counter series for name with the
// given label key/value pairs. Returns nil — a valid no-op handle — on a
// nil registry. A name already registered as a different kind yields a
// detached handle that works but is never exported (programmer error kept
// observable via Value, without corrupting the exposition).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	if k, ok := r.kinds[name]; ok && k != counterKind {
		return c // detached
	}
	r.kinds[name] = counterKind
	r.counters[id] = c
	return c
}

// Gauge returns the gauge series for name and labels (nil-safe, as Counter).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	if k, ok := r.kinds[name]; ok && k != gaugeKind {
		return g
	}
	r.kinds[name] = gaugeKind
	r.gauges[id] = g
	return g
}

// Histogram returns the histogram series for name and labels with the given
// fixed bucket upper bounds (ascending, +Inf implied). Buckets are fixed at
// first registration; later calls with different buckets get the existing
// series. Nil-safe, as Counter.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	h := newHistogram(name, ls, buckets)
	if k, ok := r.kinds[name]; ok && k != histogramKind {
		return h
	}
	r.kinds[name] = histogramKind
	r.hists[id] = h
	return h
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	name   string
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n; negative deltas are ignored (counters
// never decrease).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float series that can go up and down.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the gauge (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
//
// Bucket boundary semantics follow the Prometheus `le` convention exactly:
// upper bounds are INCLUSIVE, so a value equal to a bucket's upper bound is
// counted in that bucket, not the next one. Observe(0.1) with buckets
// [0.1, 0.5] lands in le="0.1". This is pinned by TestHistogramBoundary —
// code reconciling /metrics against other snapshots (fleetview, the chaos
// ledger) depends on both sides agreeing on it.
type Histogram struct {
	name   string
	labels string
	uppers []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(uppers)+1; last is the +Inf overflow
	sum    atomic.Uint64  // float64 bits
	n      atomic.Int64

	// exMu guards the bounded exemplar ring (ObserveExemplar). The ring
	// is off the Observe fast path entirely: plain Observe never touches
	// it, and instrumented code opts in per call site.
	exMu   sync.Mutex
	exRing []Exemplar
	exNext int
}

// Exemplar is one traced observation attached to a histogram: the value,
// the trace id that produced it, and the observation time (Unix seconds).
// Rendered in the exposition as OpenMetrics-style exemplar suffixes when
// the registry's SetExemplars flag is on.
type Exemplar struct {
	TraceID string
	Value   float64
	Ts      int64
}

// exemplarRingSize bounds the per-histogram exemplar ring: large enough
// that every populated bucket of a typical latency layout can surface a
// recent exemplar, small enough to stay negligible next to the counters.
const exemplarRingSize = 16

// ObserveExemplar records v like Observe and additionally attaches an
// exemplar (traceID, v, ts) to the histogram's bounded ring, overwriting
// the oldest entry when full. Nil-safe and NaN-guarded like Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string, ts int64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.Observe(v)
	h.exMu.Lock()
	if h.exRing == nil {
		h.exRing = make([]Exemplar, 0, exemplarRingSize)
	}
	e := Exemplar{TraceID: traceID, Value: v, Ts: ts}
	if len(h.exRing) < exemplarRingSize {
		h.exRing = append(h.exRing, e)
	} else {
		h.exRing[h.exNext] = e
		h.exNext = (h.exNext + 1) % exemplarRingSize
	}
	h.exMu.Unlock()
}

// Exemplars returns a copy of the histogram's exemplar ring, oldest first
// (empty on a nil handle or when no exemplars were recorded).
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	h.exMu.Lock()
	defer h.exMu.Unlock()
	out := make([]Exemplar, 0, len(h.exRing))
	if len(h.exRing) == exemplarRingSize {
		out = append(out, h.exRing[h.exNext:]...)
		out = append(out, h.exRing[:h.exNext]...)
	} else {
		out = append(out, h.exRing...)
	}
	return out
}

// bucketExemplars picks, for each bucket (uppers plus the +Inf overflow),
// the newest ringed exemplar whose value falls inside it — the per-bucket
// attachment rule OpenMetrics renders. Slots without a matching exemplar
// are zero-valued (TraceID "").
func (h *Histogram) bucketExemplars() []Exemplar {
	ring := h.Exemplars() // oldest first, so later wins below
	out := make([]Exemplar, len(h.uppers)+1)
	for _, e := range ring {
		i := sort.SearchFloat64s(h.uppers, e.Value)
		out[i] = e
	}
	return out
}

func newHistogram(name, labels string, buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	// Drop a trailing +Inf if the caller included one; it is implicit.
	for len(uppers) > 0 && math.IsInf(uppers[len(uppers)-1], 1) {
		uppers = uppers[:len(uppers)-1]
	}
	return &Histogram{
		name:   name,
		labels: labels,
		uppers: uppers,
		counts: make([]atomic.Int64, len(uppers)+1),
	}
}

// Observe records one value. A value exactly on a bucket's upper bound is
// counted in that bucket (le is inclusive; see the type comment).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v: le-inclusive
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count reports the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the total of all observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets is the default bucket layout for sub-second latencies:
// 50 µs to ~26 s in powers of 4.
var LatencyBuckets = ExpBuckets(50e-6, 4, 10)

// StageBuckets is the default layout for offline pipeline stages: 1 ms to
// ~16 minutes in powers of 4.
var StageBuckets = ExpBuckets(1e-3, 4, 11)

// ExpBuckets builds n exponential bucket bounds start, start*factor, ….
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// SetExemplars enables (or disables) exemplar rendering in WritePrometheus:
// when on, bucket lines carry OpenMetrics-style exemplar suffixes
// (`# {trace_id="…"} value ts`) for the newest recorded exemplar falling in
// each bucket. Off by default — plain Prometheus scrapers ignore the suffix,
// but the flag keeps the exposition byte-stable for consumers that diff it.
// Nil-safe.
func (r *Registry) SetExemplars(on bool) {
	if r == nil {
		return
	}
	r.exemplars.Store(on)
}

// ExemplarsEnabled reports whether exemplar rendering is on (false on nil).
func (r *Registry) ExemplarsEnabled() bool {
	return r != nil && r.exemplars.Load()
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (the same conventions internal/telemetry's promtext
// emits and parses): one TYPE comment per family, series sorted by name
// then labels, values in shortest-float form. Safe to call concurrently
// with metric updates; each series is read atomically (the scrape is not a
// global barrier, matching real exporters).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.scrapeHooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].labels < counters[j].name+counters[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		return gauges[i].name+gauges[i].labels < gauges[j].name+gauges[j].labels
	})
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})

	var b strings.Builder
	lastType := ""
	for _, c := range counters {
		if c.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s counter\n", c.name)
			lastType = c.name
		}
		fmt.Fprintf(&b, "%s%s %d\n", c.name, c.labels, c.Value())
	}
	lastType = ""
	for _, g := range gauges {
		if g.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
			lastType = g.name
		}
		fmt.Fprintf(&b, "%s%s %s\n", g.name, g.labels, formatValue(g.Value()))
	}
	lastType = ""
	withExemplars := r.exemplars.Load()
	for _, h := range hists {
		if h.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", h.name)
			lastType = h.name
		}
		var ex []Exemplar
		if withExemplars {
			ex = h.bucketExemplars()
		}
		cum := int64(0)
		for i, upper := range h.uppers {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d", h.name, withLE(h.labels, formatValue(upper)), cum)
			writeExemplar(&b, ex, i)
			b.WriteByte('\n')
		}
		cum += h.counts[len(h.uppers)].Load()
		fmt.Fprintf(&b, "%s_bucket%s %d", h.name, withLE(h.labels, "+Inf"), cum)
		writeExemplar(&b, ex, len(h.uppers))
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.name, h.labels, formatValue(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, h.labels, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeExemplar appends the OpenMetrics exemplar suffix for bucket i when
// one was recorded: ` # {trace_id="…"} value ts`.
func writeExemplar(b *strings.Builder, ex []Exemplar, i int) {
	if i >= len(ex) || ex[i].TraceID == "" {
		return
	}
	fmt.Fprintf(b, " # {trace_id=%s} %s %d", strconv.Quote(ex[i].TraceID), formatValue(ex[i].Value), ex[i].Ts)
}

// labelString canonicalizes key/value pairs into `{k="v",…}` sorted by key
// ("" when empty). An odd trailing key gets an empty value rather than
// being dropped, so mistakes stay visible in the exposition.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		p := pair{k: kv[i]}
		if i+1 < len(kv) {
			p.v = kv[i+1]
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// withLE merges an `le` label into an existing label string.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
