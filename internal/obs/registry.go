// Package obs is NodeSentry's stdlib-only observability subsystem: a
// concurrent metrics registry with Prometheus text exposition (the format
// the paper's deployment collects through, §5.1), span-style stage tracing
// for the offline pipeline and the online hot path, and an opt-in HTTP
// server exposing /metrics, /healthz and pprof.
//
// Everything is nil-safe: a nil *Registry hands out nil metric handles,
// and every handle method no-ops on a nil receiver. Instrumented code
// therefore never branches on "is observability enabled" — it records
// unconditionally, and the disabled path costs one nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// kind discriminates the exposition TYPE of a metric family.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

// Registry is a concurrent metrics registry. Handles are created on first
// use and cached by (name, labels); hot paths should hold the handle rather
// than re-looking it up. The zero value is not usable — call NewRegistry —
// but a nil *Registry is a valid "observability off" registry.
type Registry struct {
	mu    sync.Mutex
	kinds map[string]kind
	// series maps canonical series id -> metric handle.
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// scrapeHooks run at the start of every WritePrometheus call (see
	// OnScrape); procRegistered makes RegisterProcessMetrics idempotent.
	scrapeHooks    []func()
	procRegistered bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    map[string]kind{},
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the counter series for name with the
// given label key/value pairs. Returns nil — a valid no-op handle — on a
// nil registry. A name already registered as a different kind yields a
// detached handle that works but is never exported (programmer error kept
// observable via Value, without corrupting the exposition).
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[id]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	if k, ok := r.kinds[name]; ok && k != counterKind {
		return c // detached
	}
	r.kinds[name] = counterKind
	r.counters[id] = c
	return c
}

// Gauge returns the gauge series for name and labels (nil-safe, as Counter).
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[id]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	if k, ok := r.kinds[name]; ok && k != gaugeKind {
		return g
	}
	r.kinds[name] = gaugeKind
	r.gauges[id] = g
	return g
}

// Histogram returns the histogram series for name and labels with the given
// fixed bucket upper bounds (ascending, +Inf implied). Buckets are fixed at
// first registration; later calls with different buckets get the existing
// series. Nil-safe, as Counter.
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[id]; ok {
		return h
	}
	h := newHistogram(name, ls, buckets)
	if k, ok := r.kinds[name]; ok && k != histogramKind {
		return h
	}
	r.kinds[name] = histogramKind
	r.hists[id] = h
	return h
}

// Counter is a monotonically increasing integer series.
type Counter struct {
	name   string
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n; negative deltas are ignored (counters
// never decrease).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on a nil handle).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float series that can go up and down.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value reads the gauge (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets, Prometheus-style:
// cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
type Histogram struct {
	name   string
	labels string
	uppers []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(uppers)+1; last is the +Inf overflow
	sum    atomic.Uint64  // float64 bits
	n      atomic.Int64
}

func newHistogram(name, labels string, buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	// Drop a trailing +Inf if the caller included one; it is implicit.
	for len(uppers) > 0 && math.IsInf(uppers[len(uppers)-1], 1) {
		uppers = uppers[:len(uppers)-1]
	}
	return &Histogram{
		name:   name,
		labels: labels,
		uppers: uppers,
		counts: make([]atomic.Int64, len(uppers)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count reports the number of observations (0 on a nil handle).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the total of all observed values (0 on a nil handle).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// LatencyBuckets is the default bucket layout for sub-second latencies:
// 50 µs to ~26 s in powers of 4.
var LatencyBuckets = ExpBuckets(50e-6, 4, 10)

// StageBuckets is the default layout for offline pipeline stages: 1 ms to
// ~16 minutes in powers of 4.
var StageBuckets = ExpBuckets(1e-3, 4, 11)

// ExpBuckets builds n exponential bucket bounds start, start*factor, ….
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (the same conventions internal/telemetry's promtext
// emits and parses): one TYPE comment per family, series sorted by name
// then labels, values in shortest-float form. Safe to call concurrently
// with metric updates; each series is read atomically (the scrape is not a
// global barrier, matching real exporters).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.scrapeHooks...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].labels < counters[j].name+counters[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		return gauges[i].name+gauges[i].labels < gauges[j].name+gauges[j].labels
	})
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})

	var b strings.Builder
	lastType := ""
	for _, c := range counters {
		if c.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s counter\n", c.name)
			lastType = c.name
		}
		fmt.Fprintf(&b, "%s%s %d\n", c.name, c.labels, c.Value())
	}
	lastType = ""
	for _, g := range gauges {
		if g.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s gauge\n", g.name)
			lastType = g.name
		}
		fmt.Fprintf(&b, "%s%s %s\n", g.name, g.labels, formatValue(g.Value()))
	}
	lastType = ""
	for _, h := range hists {
		if h.name != lastType {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", h.name)
			lastType = h.name
		}
		cum := int64(0)
		for i, upper := range h.uppers {
			cum += h.counts[i].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, withLE(h.labels, formatValue(upper)), cum)
		}
		cum += h.counts[len(h.uppers)].Load()
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, withLE(h.labels, "+Inf"), cum)
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.name, h.labels, formatValue(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, h.labels, h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString canonicalizes key/value pairs into `{k="v",…}` sorted by key
// ("" when empty). An odd trailing key gets an empty value rather than
// being dropped, so mistakes stay visible in the exposition.
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		p := pair{k: kv[i]}
		if i+1 < len(kv) {
			p.v = kv[i+1]
		}
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`=`)
		b.WriteString(strconv.Quote(p.v))
	}
	b.WriteByte('}')
	return b.String()
}

// withLE merges an `le` label into an existing label string.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
