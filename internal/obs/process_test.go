package obs

import (
	"net/http"
	"strings"
	"testing"
)

func TestProcessMetricsAppearOnScrape(t *testing.T) {
	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"nodesentry_process_goroutines",
		"nodesentry_process_heap_alloc_bytes",
		"nodesentry_process_heap_sys_bytes",
		"nodesentry_process_gc_cycles_total",
		"nodesentry_process_gc_pause_seconds_total",
		"nodesentry_process_max_procs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %s:\n%s", want, out)
		}
	}
	// Values must be live, not zero placeholders: at least one goroutine
	// and a non-empty heap exist in any running test binary.
	if reg.Gauge("nodesentry_process_goroutines").Value() < 1 {
		t.Error("goroutine gauge not refreshed on scrape")
	}
	if reg.Gauge("nodesentry_process_heap_alloc_bytes").Value() <= 0 {
		t.Error("heap gauge not refreshed on scrape")
	}
}

func TestProcessMetricsIdempotentAndNilSafe(t *testing.T) {
	RegisterProcessMetrics(nil) // must not panic
	var nilReg *Registry
	nilReg.OnScrape(func() {})

	reg := NewRegistry()
	RegisterProcessMetrics(reg)
	RegisterProcessMetrics(reg)
	if n := len(reg.scrapeHooks); n != 1 {
		t.Fatalf("double registration installed %d hooks, want 1", n)
	}
	// A counter must not double-count cycles when registered twice.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}

func TestServeRegistersProcessMetrics(t *testing.T) {
	reg := NewRegistry()
	srv, addr, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }() // test teardown; shutdown error is inert
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown
	buf := make([]byte, 1<<20)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "nodesentry_process_goroutines") {
		t.Error("served /metrics missing process collector series")
	}
}
