package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Mount attaches an extra handler subtree to the observability endpoint —
// the seam sentryd uses to serve the fleetview APIs and dashboard from the
// same listener as /metrics. Pattern follows net/http.ServeMux rules
// (e.g. "/fleet/").
type Mount struct {
	Pattern string
	Handler http.Handler
}

// Handler builds the self-scrape endpoint: /metrics serves the registry in
// Prometheus text format, /healthz runs the optional health check (503 with
// the error text on failure, 200 "ok" otherwise), and /debug/pprof/* serves
// the standard runtime profiles. The registry may be nil (an empty scrape).
// Extra mounts are registered on the same mux after the built-in routes.
func Handler(reg *Registry, health func() error, mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is note it for the scraper.
			_, _ = fmt.Fprintf(w, "# write error: %v\n", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if health != nil {
			if err := health(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		_, _ = fmt.Fprintln(w, "ok") // best-effort body; the 200 status is the signal
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

// Serve listens on addr and serves Handler(reg, health) on a background
// goroutine, returning the bound server (shut it down with Server.Close or
// Server.Shutdown) and the resolved listen address. The explicit listener
// makes ":0" usable in tests and examples. A served registry also gets the
// process-metrics collector (RegisterProcessMetrics): anything reachable
// over the network should expose its own goroutine/heap/GC health.
func Serve(addr string, reg *Registry, health func() error, mounts ...Mount) (*http.Server, string, error) {
	RegisterProcessMetrics(reg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           Handler(reg, health, mounts...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	//lint:ignore unboundedgoroutine the returned *http.Server is the stop signal: callers shut the goroutine down via srv.Close/Shutdown
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere to go but the scrape endpoint's absence.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr().String(), nil
}
