package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"nodesentry/internal/telemetry"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }() // test teardown; read error below dominates
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExpositionRoundTrip scrapes /metrics over HTTP, parses the
// body back with internal/telemetry's exposition conventions, and asserts
// counter monotonicity across scrapes plus histogram bucket/sum/count
// consistency — the contract a real Prometheus collector depends on.
func TestMetricsExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	ingest := reg.Counter("nodesentry_ingest_samples_total")
	alerts := reg.Counter("nodesentry_alerts_total", "priority", "critical")
	thr := reg.Gauge("nodesentry_threshold_value", "node", "cn-1")
	lat := reg.Histogram("nodesentry_score_latency_seconds", []float64{0.001, 0.01, 0.1})

	ingest.Add(10)
	alerts.Inc()
	thr.Set(3.75)
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		lat.Observe(v)
	}

	first, err := telemetry.ParseSeries(scrape(t, srv.URL+"/metrics"))
	if err != nil {
		t.Fatalf("parse first scrape: %v", err)
	}
	fm := telemetry.SeriesMap(first)
	if fm["nodesentry_ingest_samples_total"] != 10 {
		t.Fatalf("ingest counter = %v, want 10", fm["nodesentry_ingest_samples_total"])
	}
	if fm[`nodesentry_alerts_total{priority="critical"}`] != 1 {
		t.Fatalf("alert counter missing: %v", fm)
	}
	if fm[`nodesentry_threshold_value{node="cn-1"}`] != 3.75 {
		t.Fatalf("gauge = %v, want 3.75", fm[`nodesentry_threshold_value{node="cn-1"}`])
	}

	// Histogram consistency: buckets cumulative, +Inf equals _count, and
	// _sum matches the observations.
	if got := fm[`nodesentry_score_latency_seconds_bucket{le="0.001"}`]; got != 1 {
		t.Fatalf("le=0.001 bucket = %v, want 1", got)
	}
	if got := fm[`nodesentry_score_latency_seconds_bucket{le="0.01"}`]; got != 2 {
		t.Fatalf("le=0.01 bucket = %v, want 2", got)
	}
	if got := fm[`nodesentry_score_latency_seconds_bucket{le="0.1"}`]; got != 3 {
		t.Fatalf("le=0.1 bucket = %v, want 3", got)
	}
	inf := fm[`nodesentry_score_latency_seconds_bucket{le="+Inf"}`]
	count := fm["nodesentry_score_latency_seconds_count"]
	if inf != 4 || count != 4 {
		t.Fatalf("+Inf bucket = %v, count = %v, want 4", inf, count)
	}
	if sum := fm["nodesentry_score_latency_seconds_sum"]; math.Abs(sum-0.5555) > 1e-9 {
		t.Fatalf("sum = %v, want 0.5555", sum)
	}

	// Monotonicity: every counter series only moves up between scrapes.
	ingest.Add(5)
	alerts.Add(2)
	lat.Observe(1)
	second, err := telemetry.ParseSeries(scrape(t, srv.URL+"/metrics"))
	if err != nil {
		t.Fatalf("parse second scrape: %v", err)
	}
	sm := telemetry.SeriesMap(second)
	for key, before := range fm {
		if strings.Contains(key, "_total") || strings.Contains(key, "_count") || strings.Contains(key, "_bucket") {
			if sm[key] < before {
				t.Errorf("series %s went backwards: %v -> %v", key, before, sm[key])
			}
		}
	}
	if sm["nodesentry_ingest_samples_total"] != 15 {
		t.Fatalf("ingest after second scrape = %v, want 15", sm["nodesentry_ingest_samples_total"])
	}
}

func TestHealthz(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	h := Handler(nil, func() error {
		if !healthy.Load() {
			return fmt.Errorf("detector pool exhausted")
		}
		return nil
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	if body := scrape(t, srv.URL+"/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz body = %q", body)
	}
	healthy.Store(false)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close() // status code is the assertion; body is discarded
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status = %d, want 503", resp.StatusCode)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	srv, addr, err := Serve("127.0.0.1:0", reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }() // test teardown; shutdown error is inert
	body := scrape(t, "http://"+addr+"/metrics")
	if !strings.Contains(body, "up_total 1") {
		t.Fatalf("metrics body:\n%s", body)
	}
	// pprof index must be wired.
	if body := scrape(t, "http://"+addr+"/debug/pprof/"); !strings.Contains(body, "profile") {
		t.Fatalf("pprof index body:\n%s", body)
	}
}
