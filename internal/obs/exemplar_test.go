package obs

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHistogramBoundary pins the le-inclusive bucket convention the
// Histogram type comment documents: a value exactly on a bucket's upper
// bound lands in that bucket, not the next one. Fleetview and the chaos
// ledger reconcile /metrics against other snapshots assuming this.
func TestHistogramBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("boundary_test", []float64{0.1, 0.5})

	h.Observe(0.1)  // exactly on the first bound → le="0.1"
	h.Observe(0.05) // below → le="0.1"
	h.Observe(0.5)  // exactly on the second bound → le="0.5"
	h.Observe(0.11) // between → le="0.5"
	h.Observe(0.51) // above all → +Inf overflow

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	// Cumulative counts: le=0.1 has 2, le=0.5 has 4, +Inf has 5.
	for _, want := range []string{
		`boundary_test_bucket{le="0.1"} 2`,
		`boundary_test_bucket{le="0.5"} 4`,
		`boundary_test_bucket{le="+Inf"} 5`,
		`boundary_test_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// A trailing +Inf in the bucket layout is implicit and must be dropped.
	h2 := r.Histogram("boundary_inf_test", []float64{1, math.Inf(1)})
	h2.Observe(2)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "boundary_inf_test_bucket") != 2 {
		t.Errorf("explicit +Inf bucket not deduplicated:\n%s", b.String())
	}
}

func TestExemplarRing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_ring_test", []float64{1})

	if got := h.Exemplars(); len(got) != 0 {
		t.Fatalf("fresh histogram has %d exemplars", len(got))
	}
	h.ObserveExemplar(0.5, "t0", 100)
	h.ObserveExemplar(math.NaN(), "nan", 101) // NaN-guarded: dropped entirely
	if got := h.Exemplars(); len(got) != 1 || got[0].TraceID != "t0" {
		t.Fatalf("after one observation: %+v", got)
	}
	if h.Count() != 1 {
		t.Fatalf("NaN exemplar observation changed count: %d", h.Count())
	}

	// Overflow the ring: only the newest exemplarRingSize survive, oldest
	// first.
	for i := 0; i < exemplarRingSize+5; i++ {
		h.ObserveExemplar(float64(i), "", int64(i))
	}
	got := h.Exemplars()
	if len(got) != exemplarRingSize {
		t.Fatalf("ring holds %d, want %d", len(got), exemplarRingSize)
	}
	for i, e := range got {
		if want := int64(i + 5); e.Ts != want {
			t.Fatalf("ring[%d].Ts = %d, want %d (oldest-first rotation)", i, e.Ts, want)
		}
	}

	// Nil handle: all exemplar methods are no-ops.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x", 1)
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}

// TestExemplarExposition covers the flag-gated OpenMetrics suffix: with
// SetExemplars(true) bucket lines carry ` # {trace_id="…"} value ts` for
// the newest exemplar falling in that bucket; with the flag off (the
// default) the exposition is byte-free of exemplar syntax.
func TestExemplarExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ex_expo_test", []float64{0.1, 0.5})
	h.ObserveExemplar(0.05, "trace-a", 111)
	h.ObserveExemplar(0.3, "trace-b", 222)
	h.ObserveExemplar(0.2, "trace-c", 333) // newer, same bucket as trace-b → wins
	h.ObserveExemplar(7, "trace-inf", 444) // overflow bucket

	render := func() string {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	if r.ExemplarsEnabled() {
		t.Fatal("exemplars enabled by default")
	}
	if text := render(); strings.Contains(text, "trace_id") {
		t.Fatalf("exemplar suffix rendered with flag off:\n%s", text)
	}

	r.SetExemplars(true)
	text := render()
	for _, want := range []string{
		`ex_expo_test_bucket{le="0.1"} 1 # {trace_id="trace-a"} 0.05 111`,
		`ex_expo_test_bucket{le="0.5"} 3 # {trace_id="trace-c"} 0.2 333`,
		`ex_expo_test_bucket{le="+Inf"} 4 # {trace_id="trace-inf"} 7 444`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "trace-b") {
		t.Errorf("older same-bucket exemplar not superseded:\n%s", text)
	}

	// A bucket without an exemplar renders without a suffix; the metric
	// still parses as plain Prometheus text (count intact).
	h2 := r.Histogram("ex_plain_test", []float64{1})
	h2.Observe(0.5)
	if text := render(); !strings.Contains(text, "ex_plain_test_bucket{le=\"1\"} 1\n") {
		t.Errorf("plain bucket line altered by exemplar mode:\n%s", text)
	}

	r.SetExemplars(false)
	if text := render(); strings.Contains(text, "trace_id") {
		t.Fatalf("exemplar suffix survives disabling:\n%s", text)
	}
}

// TestHandlerMounts verifies extra Mounts join the scrape mux alongside the
// built-in routes — the seam sentryd uses to serve /fleet/ from the same
// listener as /metrics.
func TestHandlerMounts(t *testing.T) {
	r := NewRegistry()
	r.Counter("mounted_scrape_total").Inc()
	mounted := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		_, _ = io.WriteString(w, "fleet:"+req.URL.Path)
	})
	srv := httptest.NewServer(Handler(r, nil, Mount{Pattern: "/fleet/", Handler: mounted}))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/fleet/state"); code != http.StatusOK || body != "fleet:/fleet/state" {
		t.Fatalf("mounted handler: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "mounted_scrape_total 1") {
		t.Fatalf("/metrics with mounts: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz with mounts: %d", code)
	}
}
