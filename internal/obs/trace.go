package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"sync"
	"time"
)

// Tracer records span-style stage timings — wall time, heap allocations,
// and an item count — for the offline pipeline (segment → feature → HAC →
// per-cluster training) and any other coarse stage worth accounting for.
// Completed spans are kept as StageRecords (for benchtab's JSON output)
// and mirrored into the registry as stage metrics:
//
//	nodesentry_stage_duration_seconds{stage=…}  histogram
//	nodesentry_stage_allocs_total{stage=…}      counter (heap objects)
//	nodesentry_stage_items_total{stage=…}       counter
//
// A nil *Tracer is a valid no-op tracer; Start on it returns a nil *Span
// whose methods all no-op. Spans read runtime.MemStats at the boundaries,
// which briefly stops the world — use spans for coarse stages (milliseconds
// and up), not per-sample hot paths; the hot path records straight into
// registry handles instead.
type Tracer struct {
	reg *Registry

	mu      sync.Mutex
	records []StageRecord
}

// StageRecord is one completed span.
type StageRecord struct {
	// Stage names the pipeline stage (e.g. "hac", "train_models").
	Stage string `json:"stage"`
	// WallNanos is the span's wall-clock duration.
	WallNanos int64 `json:"wall_ns"`
	// Allocs counts heap objects allocated while the span was open
	// (process-wide, so concurrent work is attributed too).
	Allocs uint64 `json:"allocs"`
	// Bytes counts heap bytes allocated while the span was open.
	Bytes uint64 `json:"bytes"`
	// Items is the stage's work-unit count (segments, windows, clusters…);
	// 0 when the stage did not report one.
	Items int64 `json:"items"`
}

// Wall returns the span duration as a time.Duration.
func (r StageRecord) Wall() time.Duration { return time.Duration(r.WallNanos) }

// NewTracer builds a tracer mirroring spans into reg (which may be nil —
// records are still kept for Records/WriteJSON).
func NewTracer(reg *Registry) *Tracer { return &Tracer{reg: reg} }

// Span is one open stage measurement.
type Span struct {
	t      *Tracer
	stage  string
	start  time.Time
	allocs uint64
	bytes  uint64
	items  int64
	done   bool
}

// Start opens a span for the named stage. Nil-safe.
func (t *Tracer) Start(stage string) *Span {
	if t == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Span{t: t, stage: stage, start: time.Now(), allocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// AddItems accumulates the stage's work-unit count.
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items += n
}

// End closes the span, appends its record to the tracer, and mirrors it
// into the registry. End is idempotent; the first call wins.
func (s *Span) End() {
	if s == nil || s.done {
		return
	}
	s.done = true
	wall := time.Since(s.start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rec := StageRecord{
		Stage:     s.stage,
		WallNanos: wall.Nanoseconds(),
		Allocs:    ms.Mallocs - s.allocs,
		Bytes:     ms.TotalAlloc - s.bytes,
		Items:     s.items,
	}
	t := s.t
	t.mu.Lock()
	t.records = append(t.records, rec)
	t.mu.Unlock()
	t.reg.Histogram("nodesentry_stage_duration_seconds", StageBuckets, "stage", s.stage).Observe(wall.Seconds())
	t.reg.Counter("nodesentry_stage_allocs_total", "stage", s.stage).Add(int64(rec.Allocs))
	t.reg.Counter("nodesentry_stage_items_total", "stage", s.stage).Add(rec.Items)
}

// Records returns a copy of the completed spans in completion order
// (nil-safe: empty on a nil tracer).
func (t *Tracer) Records() []StageRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]StageRecord(nil), t.records...)
}

// WriteJSON writes the completed spans as an indented JSON array — the
// payload benchtab saves as BENCH_obs.json.
func (t *Tracer) WriteJSON(w io.Writer) error {
	recs := t.Records()
	if recs == nil {
		recs = []StageRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
