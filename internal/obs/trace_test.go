package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTracerRecordsAndRegistryMirror(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	sp := tr.Start("segmentation")
	sp.AddItems(42)
	// Allocate something measurable so the alloc counters move.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	sp.End()
	sp.End() // idempotent

	recs := tr.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Stage != "segmentation" || rec.Items != 42 {
		t.Fatalf("record = %+v", rec)
	}
	if rec.WallNanos <= 0 {
		t.Fatalf("wall = %d, want > 0", rec.WallNanos)
	}
	if rec.Allocs == 0 || rec.Bytes == 0 {
		t.Fatalf("alloc accounting missing: %+v", rec)
	}

	if got := r.Histogram("nodesentry_stage_duration_seconds", StageBuckets, "stage", "segmentation").Count(); got != 1 {
		t.Fatalf("duration histogram count = %d, want 1", got)
	}
	if got := r.Counter("nodesentry_stage_items_total", "stage", "segmentation").Value(); got != 42 {
		t.Fatalf("items counter = %d, want 42", got)
	}
}

func TestTracerWithoutRegistry(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start("hac")
	sp.End()
	if len(tr.Records()) != 1 {
		t.Fatal("records must accumulate even without a registry")
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(nil)
	sp := tr.Start("features")
	sp.AddItems(7)
	sp.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []StageRecord
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("round-trip: %v\n%s", err, buf.String())
	}
	if len(recs) != 1 || recs[0].Stage != "features" || recs[0].Items != 7 {
		t.Fatalf("round-tripped records = %+v", recs)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}
