package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", LatencyBuckets)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles must stay zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	var tr *Tracer
	sp := tr.Start("stage")
	sp.AddItems(3)
	sp.End()
	if got := tr.Records(); got != nil {
		t.Fatalf("nil tracer records = %v", got)
	}
}

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ingest_total", "node", "cn-1")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if again := r.Counter("ingest_total", "node", "cn-1"); again != c {
		t.Fatal("same (name, labels) must return the same handle")
	}
	if other := r.Counter("ingest_total", "node", "cn-2"); other == c {
		t.Fatal("different labels must return a different series")
	}

	g := r.Gauge("threshold")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2.0 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}

	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hist sum = %v, want %v", got, want)
	}
}

func TestKindConflictReturnsDetachedHandle(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	g := r.Gauge("x_total")
	g.Set(7)
	if g.Value() != 7 {
		t.Fatal("detached handle must still record")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "# TYPE x_total gauge") {
		t.Fatalf("conflicting kind leaked into exposition:\n%s", b.String())
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
	a.Inc()
	var out strings.Builder
	if err := r.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `x_total{a="1",b="2"} 1`) {
		t.Fatalf("canonical labels missing:\n%s", out.String())
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("c_total", "w", "x").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", LatencyBuckets).Observe(0.001)
				var b strings.Builder
				if j%100 == 0 {
					if err := r.WritePrometheus(&b); err != nil {
						t.Errorf("scrape during writes: %v", err)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "w", "x").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
	if got := r.Gauge("g").Value(); got != 4000 {
		t.Fatalf("gauge = %v, want 4000", got)
	}
	if got := r.Histogram("h_seconds", LatencyBuckets).Count(); got != 4000 {
		t.Fatalf("hist count = %d, want 4000", got)
	}
}
