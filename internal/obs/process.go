package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterProcessMetrics adds the process-health series — goroutine count,
// heap usage, and GC activity — to the registry, refreshed lazily on every
// scrape via an OnScrape hook rather than by a background goroutine, so a
// registry that is never scraped costs nothing. Repeated registration is a
// no-op, and a nil registry is the usual no-op.
//
// Series (all prefixed nodesentry_process_):
//
//	goroutines              gauge    runtime.NumGoroutine
//	heap_alloc_bytes        gauge    live heap bytes (MemStats.HeapAlloc)
//	heap_sys_bytes          gauge    heap bytes held from the OS
//	heap_objects            gauge    live heap objects
//	next_gc_bytes           gauge    target heap of the next GC cycle
//	gc_cycles_total         counter  completed GC cycles
//	gc_pause_seconds_total  gauge    cumulative stop-the-world pause time
//	gc_last_pause_seconds   gauge    most recent GC pause
//	max_procs               gauge    GOMAXPROCS
//
// These make retrain CPU/memory pressure visible on /metrics while a
// background training run is underway (the lifecycle subsystem's main
// operational question: "is the daemon struggling because of retraining?").
func RegisterProcessMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.procRegistered {
		r.mu.Unlock()
		return
	}
	r.procRegistered = true
	r.mu.Unlock()

	goroutines := r.Gauge("nodesentry_process_goroutines")
	heapAlloc := r.Gauge("nodesentry_process_heap_alloc_bytes")
	heapSys := r.Gauge("nodesentry_process_heap_sys_bytes")
	heapObjects := r.Gauge("nodesentry_process_heap_objects")
	nextGC := r.Gauge("nodesentry_process_next_gc_bytes")
	gcCycles := r.Counter("nodesentry_process_gc_cycles_total")
	gcPauseTotal := r.Gauge("nodesentry_process_gc_pause_seconds_total")
	gcLastPause := r.Gauge("nodesentry_process_gc_last_pause_seconds")
	maxProcs := r.Gauge("nodesentry_process_max_procs")

	var lastCycles uint32
	var gcs debug.GCStats
	r.OnScrape(func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapSys.Set(float64(ms.HeapSys))
		heapObjects.Set(float64(ms.HeapObjects))
		nextGC.Set(float64(ms.NextGC))
		gcCycles.Add(int64(ms.NumGC - lastCycles))
		lastCycles = ms.NumGC
		gcPauseTotal.Set(float64(ms.PauseTotalNs) / 1e9)
		debug.ReadGCStats(&gcs)
		if len(gcs.Pause) > 0 {
			gcLastPause.Set(gcs.Pause[0].Seconds())
		}
		maxProcs.Set(float64(runtime.GOMAXPROCS(0)))
	})
}

// OnScrape registers fn to run at the start of every WritePrometheus call,
// before series are read — the place to refresh gauges that sample process
// state (MemStats, goroutine counts) only when someone is looking. Hooks
// run outside the registry lock and must not block; they may run
// concurrently with each other when scrapes overlap. Nil-safe.
func (r *Registry) OnScrape(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.scrapeHooks = append(r.scrapeHooks, fn)
	r.mu.Unlock()
}
