package mat

// shapeKey keys an arena pool by exact matrix shape.
type shapeKey struct{ rows, cols int }

// shapePool is one shape's grow-once free list: mats[0:next] are handed
// out, mats[next:] are available.
type shapePool struct {
	mats []*Matrix
	next int
}

// Arena is a grow-once pool of matrices keyed by shape, built for hot
// forward/backward passes that allocate the same tensor shapes on every
// invocation. Get hands out a zeroed matrix; Reset returns every matrix to
// the pool at once without freeing backing storage, so a steady-state
// Get/Reset cycle allocates nothing.
//
// Ownership contract: a matrix returned by Get belongs to the caller only
// until the next Reset — after that the arena may hand the same backing
// storage to a later Get. Callers that must retain data across a Reset
// copy it out (Matrix.Clone). An Arena is NOT safe for concurrent use;
// give each goroutine (each model instance) its own.
type Arena struct {
	pools map[shapeKey]*shapePool
	live  int
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{pools: map[shapeKey]*shapePool{}} }

// Get returns a zeroed rows×cols matrix owned by the arena until the next
// Reset. Repeated Get calls — even for the same shape — return distinct
// matrices, so two live tensors never alias.
func (a *Arena) Get(rows, cols int) *Matrix {
	k := shapeKey{rows, cols}
	p := a.pools[k]
	if p == nil {
		p = &shapePool{}
		a.pools[k] = p
	}
	a.live++
	if p.next < len(p.mats) {
		m := p.mats[p.next]
		p.next++
		m.Zero()
		return m
	}
	m := New(rows, cols)
	p.mats = append(p.mats, m)
	p.next++
	return m
}

// Reset returns every handed-out matrix to the pool. Matrices obtained
// from Get before the Reset must not be used afterwards.
func (a *Arena) Reset() {
	for _, p := range a.pools {
		p.next = 0
	}
	a.live = 0
}

// Live reports how many matrices are currently handed out (diagnostic).
func (a *Arena) Live() int { return a.live }

// GrowFloats returns a float64 slice of length n, reusing buf's backing
// array when it has capacity. Contents are undefined; callers must fully
// overwrite. The allocation lives here so //perf:hot callers in other
// packages pay it only on growth.
func GrowFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// GrowInts is GrowFloats for int slices.
func GrowInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}
