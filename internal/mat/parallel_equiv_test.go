package mat

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// TestKernelsParallelSerialEquivalence pins down two properties of every
// fan-out kernel on shapes above parallelThreshold:
//
//  1. determinism — two parallel runs on the same inputs are bit-identical
//     (TMul's chunk-ordered merge is what makes this hold);
//  2. equivalence — the parallel result matches a GOMAXPROCS=1 run. Mul and
//     MulT compute rows independently, so they must match exactly; TMul
//     reassociates the row-sum across chunks, so it gets a small tolerance.
func TestKernelsParallelSerialEquivalence(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs to exercise the parallel path")
	}
	rng := rand.New(rand.NewSource(21))
	a := randMatrix(rng, 96, 64)
	b := randMatrix(rng, 64, 96)
	bt := randMatrix(rng, 80, 64)
	c := randMatrix(rng, 96, 48)

	serially := func(f func() *Matrix) *Matrix {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		return f()
	}
	cases := []struct {
		name string
		f    func() *Matrix
		tol  float64
	}{
		{"Mul", func() *Matrix { return Mul(a, b) }, 0},
		{"MulT", func() *Matrix { return MulT(a, bt) }, 0},
		{"TMul", func() *Matrix { return TMul(a, c) }, 1e-12},
	}
	for _, tc := range cases {
		p1 := tc.f()
		p2 := tc.f()
		for i := range p1.Data {
			if p1.Data[i] != p2.Data[i] {
				t.Fatalf("%s: parallel runs disagree at %d: %v vs %v", tc.name, i, p1.Data[i], p2.Data[i])
			}
		}
		ser := serially(tc.f)
		for i := range p1.Data {
			if d := math.Abs(p1.Data[i] - ser.Data[i]); d > tc.tol {
				t.Fatalf("%s: parallel vs serial diverge at %d by %v (tol %v)", tc.name, i, d, tc.tol)
			}
		}
	}
}

func TestChunksPartition(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1001} {
		ck := chunks(n)
		covered := 0
		prev := 0
		for _, c := range ck {
			if c[0] != prev || c[1] <= c[0] {
				t.Fatalf("chunks(%d): bad range %v after %d", n, c, prev)
			}
			covered += c[1] - c[0]
			prev = c[1]
		}
		if covered != n || (n > 0 && prev != n) {
			t.Fatalf("chunks(%d) covers %d ending at %d", n, covered, prev)
		}
	}
}
