// Package mat provides the dense float64 linear-algebra kernels that back
// NodeSentry's neural substrate, plus the worker-pool helper used across the
// repository to parallelize embarrassingly parallel loops.
//
// Matrices are row-major with a contiguous backing slice so that matmul
// kernels stream memory predictably. Operations above a size threshold are
// automatically split across runtime.GOMAXPROCS(0) goroutines.
package mat

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major matrix: element (i, j) is Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix. Hot paths obtain reusable
// matrices from an Arena and call the *Into kernels instead; New is the
// cold-path constructor and is never reachable from a //perf:hot kernel.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, copying the data. All rows must
// have equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			failShape("ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols)
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// failShape reports a dimension mismatch. These kernels treat shape errors
// as caller bugs and deliberately share the panic contract of slice
// indexing rather than threading error returns through every hot loop.
func failShape(format string, args ...any) {
	//lint:ignore libpanic shape mismatches are caller bugs; the documented kernel contract panics like slice indexing
	panic(fmt.Sprintf("mat: "+format, args...))
}

// assertSameLen enforces equal vector lengths under the same contract as
// failShape.
func assertSameLen(op string, x, y []float64) {
	if len(x) != len(y) {
		failShape("%s length mismatch: %d vs %d", op, len(x), len(y))
	}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a view into the backing slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// RowsView returns rows [lo, hi) as a value Matrix sharing m's backing
// slice — the row-major layout makes any contiguous row range a valid
// matrix. Returned by value so hot block loops pay no allocation.
func (m *Matrix) RowsView(lo, hi int) Matrix {
	return Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// RowViews appends one view per row of m — truncated to the first cols
// elements — onto dst and returns the extended slice. Callers that pool
// [][]float64 frames re-slice dst to length 0 between calls so the append
// amortizes to nothing; the growth allocation lives here so //perf:hot
// callers in other packages pay it only on growth.
func (m *Matrix) RowViews(dst [][]float64, cols int) [][]float64 {
	if cols > m.Cols {
		failShape("RowViews cols %d exceeds matrix cols %d", cols, m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		dst = append(dst, m.Data[i*m.Cols:i*m.Cols+cols])
	}
	return dst
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Cols+i] = v
		}
	}
	return out
}

// parallelThreshold is the flop count above which kernels fan out to the
// worker pool; below it the goroutine overhead dominates.
const parallelThreshold = 1 << 16

// sharesBacking reports whether two slices come from the same backing
// array. Extending both to capacity makes them end at the same final
// element exactly when they share an allocation, so overlap is detected
// without unsafe — including row and block views of the same matrix.
func sharesBacking(x, y []float64) bool {
	if cap(x) == 0 || cap(y) == 0 {
		return false
	}
	xe := x[:cap(x)]
	ye := y[:cap(y)]
	return &xe[len(xe)-1] == &ye[len(ye)-1]
}

// checkNoAlias rejects a destination that shares backing storage with a
// source the kernel still reads while writing dst. Same-index elementwise
// kernels (AddTo and friends) tolerate aliasing and skip this check; the
// matmul kernels do not.
func checkNoAlias(op string, dst, src *Matrix) {
	if sharesBacking(dst.Data, src.Data) {
		failShape("%s destination aliases a source operand", op)
	}
}

// Mul returns a×b as a fresh matrix. Hot paths use MulInto with an
// arena-owned destination instead.
func Mul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes dst = a×b, parallelizing over row blocks of a when the
// product is large. dst is fully overwritten and must not alias a or b.
// Panics on dimension or aliasing errors.
//
//perf:hot
func MulInto(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		failShape("Mul dimension mismatch: %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		failShape("MulInto destination shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	}
	checkNoAlias("MulInto", dst, a)
	checkNoAlias("MulInto", dst, b)
	dst.Zero()
	work := a.Rows * a.Cols * b.Cols
	if work < parallelThreshold {
		mulRange(a, b, dst, 0, a.Rows)
		return
	}
	Parallel(a.Rows, func(lo, hi int) { mulRange(a, b, dst, lo, hi) })
}

// mulRange computes out rows [lo, hi) of a×b with an ikj loop order that
// streams rows of b.
func mulRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulT returns a×bᵀ as a fresh matrix. Hot paths use MulTInto.
func MulT(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MulTInto(out, a, b)
	return out
}

// MulTInto computes dst = a×bᵀ without materializing the transpose. dst is
// fully overwritten and must not alias a or b.
//
//perf:hot
func MulTInto(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		failShape("MulT dimension mismatch: %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		failShape("MulTInto destination shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Rows)
	}
	checkNoAlias("MulTInto", dst, a)
	checkNoAlias("MulTInto", dst, b)
	if a.Rows*a.Cols*b.Rows < parallelThreshold {
		mulTRange(a, b, dst, 0, a.Rows)
		return
	}
	Parallel(a.Rows, func(lo, hi int) { mulTRange(a, b, dst, lo, hi) })
}

// mulTRange computes out rows [lo, hi) of a×bᵀ. A top-level function (not a
// closure) so the serial path of MulTInto allocates nothing.
func mulTRange(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			orow[j] = Dot(arow, b.Row(j))
		}
	}
}

// TMul returns aᵀ×b without materializing the transpose. Backward passes
// use TMulInto with an arena destination.
func TMul(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	TMulInto(out, a, b)
	return out
}

// TMulInto computes dst = aᵀ×b. dst is fully overwritten and must not
// alias a or b. Not //perf:hot: the parallel path allocates per-chunk
// locals (the deterministic chunk-ordered reduction needs them), and the
// kernel sits on backward passes only.
func TMulInto(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		failShape("TMul dimension mismatch: (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		failShape("TMulInto destination shape %dx%d, want %dx%d", dst.Rows, dst.Cols, a.Cols, b.Cols)
	}
	checkNoAlias("TMulInto", dst, a)
	checkNoAlias("TMulInto", dst, b)
	out := dst
	out.Zero()
	if a.Rows*a.Cols*b.Cols < parallelThreshold {
		tmulRange(a, b, out, 0, a.Rows)
		return
	}
	// Every output element sums over all rows of a, so workers accumulate
	// into per-chunk locals that are merged in chunk order after the fan-out:
	// the floating-point addition order — and therefore the result — depends
	// only on the chunking, not on goroutine scheduling.
	ck := chunks(a.Rows)
	locals := make([]*Matrix, len(ck))
	var wg sync.WaitGroup
	for ci, c := range ck {
		wg.Add(1)
		go func(ci int, lo, hi int) {
			defer wg.Done()
			locals[ci] = New(out.Rows, out.Cols)
			tmulRange(a, b, locals[ci], lo, hi)
		}(ci, c[0], c[1])
	}
	wg.Wait()
	for _, local := range locals {
		for i, v := range local.Data {
			out.Data[i] += v
		}
	}
}

// tmulRange accumulates rows [lo, hi) of a into dst += aᵀ×b. A top-level
// function (not a closure) so the serial path of TMulInto allocates nothing.
func tmulRange(a, b, dst *Matrix, lo, hi int) {
	for k := lo; k < hi; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Add returns a+b elementwise.
func Add(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	AddTo(out, a, b)
	return out
}

// AddTo computes dst = a+b elementwise. dst may alias a or b: every
// element is written exactly once from same-index reads.
//
//perf:hot
func AddTo(dst, a, b *Matrix) {
	checkSameShape("Add", a, b)
	checkSameShape("AddTo", dst, a)
	for i, v := range b.Data {
		dst.Data[i] = a.Data[i] + v
	}
}

// Sub returns a-b elementwise.
func Sub(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	SubTo(out, a, b)
	return out
}

// SubTo computes dst = a-b elementwise. dst may alias a or b.
//
//perf:hot
func SubTo(dst, a, b *Matrix) {
	checkSameShape("Sub", a, b)
	checkSameShape("SubTo", dst, a)
	for i, v := range b.Data {
		dst.Data[i] = a.Data[i] - v
	}
}

// CopyInto copies src's elements into dst (shapes must match).
//
//perf:hot
func CopyInto(dst, src *Matrix) {
	checkSameShape("CopyInto", dst, src)
	copy(dst.Data, src.Data)
}

// AddInPlace adds b into a.
func AddInPlace(a, b *Matrix) {
	checkSameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale multiplies every element of m by s in place and returns m.
func Scale(m *Matrix, s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Hadamard returns the elementwise product a∘b.
func Hadamard(a, b *Matrix) *Matrix {
	out := New(a.Rows, a.Cols)
	HadamardTo(out, a, b)
	return out
}

// HadamardTo computes dst = a∘b elementwise. dst may alias a or b.
//
//perf:hot
func HadamardTo(dst, a, b *Matrix) {
	checkSameShape("Hadamard", a, b)
	checkSameShape("HadamardTo", dst, a)
	for i, v := range b.Data {
		dst.Data[i] = a.Data[i] * v
	}
}

// AddRowVector adds vector v to every row of m in place. len(v) must equal
// m.Cols.
//
//perf:hot
func AddRowVector(m *Matrix, v []float64) {
	if len(v) != m.Cols {
		failShape("AddRowVector length mismatch: %d vs %d cols", len(v), m.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, w := range v {
			row[j] += w
		}
	}
}

func checkSameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		failShape("%s shape mismatch: %dx%d vs %dx%d", op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
}

// Dot returns the inner product of equal-length vectors x and y.
//
//perf:hot
func Dot(x, y []float64) float64 {
	assertSameLen("Dot", x, y)
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += a*x in place.
//
//perf:hot
func Axpy(a float64, x, y []float64) {
	assertSameLen("Axpy", x, y)
	for i, v := range x {
		y[i] += a * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// EuclideanDist returns the Euclidean distance between x and y.
//
//perf:hot
func EuclideanDist(x, y []float64) float64 {
	assertSameLen("EuclideanDist", x, y)
	s := 0.0
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredDist returns the squared Euclidean distance between x and y.
//
//perf:hot
func SquaredDist(x, y []float64) float64 {
	assertSameLen("SquaredDist", x, y)
	s := 0.0
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// Parallel splits the range [0, n) into one contiguous chunk per available
// CPU and invokes fn(lo, hi) for each chunk on its own goroutine, returning
// when all chunks finish. fn must be safe to run concurrently on disjoint
// ranges. For n == 0 it returns immediately; for a single worker it calls fn
// inline.
//
// The chunk bounds are computed inline rather than via chunks: this sits on
// every hot kernel's path, and materializing the partition slice would be
// one allocation per matmul. The math mirrors chunks exactly, so kernels
// that need the explicit partition (TMul's chunk-ordered reduction) see the
// same split.
func Parallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk >= n {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// chunks partitions [0, n) into one contiguous {lo, hi} range per available
// CPU (fewer when n is small). The partition depends only on n and
// GOMAXPROCS, which keeps chunk-ordered reductions deterministic.
func chunks(n int) [][2]int {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (n + workers - 1) / workers
	out := make([][2]int, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// ParallelItems invokes fn(i) for every i in [0, n) using the worker pool.
// Convenience wrapper over Parallel for per-item workloads whose cost is
// large enough that chunk granularity does not matter.
func ParallelItems(n int, fn func(i int)) {
	Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
