package mat

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// mulNaive is the reference ijk triple loop.
func mulNaive(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matricesEqual(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 9, 23}, {64, 64, 64}, {100, 3, 77}} {
		a := randMatrix(rng, dims[0], dims[1])
		b := randMatrix(rng, dims[1], dims[2])
		if !matricesEqual(Mul(a, b), mulNaive(a, b), 1e-9) {
			t.Errorf("Mul mismatch for %v", dims)
		}
	}
}

func TestMulParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMatrix(rng, 80, 90)
	b := randMatrix(rng, 90, 70) // 80*90*70 > parallelThreshold
	if !matricesEqual(Mul(a, b), mulNaive(a, b), 1e-9) {
		t.Error("parallel Mul mismatch")
	}
}

func TestMulTAndTMul(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 13, 7)
	b := randMatrix(rng, 11, 7)
	if !matricesEqual(MulT(a, b), Mul(a, b.T()), 1e-9) {
		t.Error("MulT mismatch")
	}
	c := randMatrix(rng, 13, 5)
	if !matricesEqual(TMul(a, c), Mul(a.T(), c), 1e-9) {
		t.Error("TMul mismatch")
	}
}

func TestTMulParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randMatrix(rng, 120, 60)
	b := randMatrix(rng, 120, 40)
	if !matricesEqual(TMul(a, b), Mul(a.T(), b), 1e-8) {
		t.Error("parallel TMul mismatch")
	}
}

func TestMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mul should panic on dimension mismatch")
		}
	}()
	Mul(New(2, 3), New(4, 5))
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		return matricesEqual(m.T().T(), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	if !matricesEqual(Add(a, b), FromRows([][]float64{{11, 22}, {33, 44}}), 0) {
		t.Error("Add wrong")
	}
	if !matricesEqual(Sub(b, a), FromRows([][]float64{{9, 18}, {27, 36}}), 0) {
		t.Error("Sub wrong")
	}
	if !matricesEqual(Hadamard(a, b), FromRows([][]float64{{10, 40}, {90, 160}}), 0) {
		t.Error("Hadamard wrong")
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !matricesEqual(c, Add(a, b), 0) {
		t.Error("AddInPlace wrong")
	}
}

func TestScaleAddRowVector(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	Scale(m, 2)
	if !matricesEqual(m, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Error("Scale wrong")
	}
	AddRowVector(m, []float64{1, -1})
	if !matricesEqual(m, FromRows([][]float64{{3, 3}, {7, 7}}), 0) {
		t.Error("AddRowVector wrong")
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromRows should panic on ragged input")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	y := []float64{1, 2}
	if Dot(x, y) != 11 {
		t.Error("Dot wrong")
	}
	if Norm2(x) != 5 {
		t.Error("Norm2 wrong")
	}
	if EuclideanDist(x, y) != math.Sqrt(8) {
		t.Error("EuclideanDist wrong")
	}
	if SquaredDist(x, y) != 8 {
		t.Error("SquaredDist wrong")
	}
	z := []float64{1, 1}
	Axpy(2, x, z)
	if z[0] != 7 || z[1] != 9 {
		t.Error("Axpy wrong")
	}
}

func TestParallelCoversRangeExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		seen := make([]int32, n)
		Parallel(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestParallelItems(t *testing.T) {
	var sum int64
	ParallelItems(100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Errorf("ParallelItems sum = %d, want 4950", sum)
	}
}

func TestCloneAndZero(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] == 9 {
		t.Error("Clone shares backing data")
	}
	a.Zero()
	if a.Data[0] != 0 || a.Data[1] != 0 {
		t.Error("Zero did not clear")
	}
}

func BenchmarkMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix(rng, 128, 128)
	y := randMatrix(rng, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(x, y)
	}
}

func BenchmarkMulNaive128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := randMatrix(rng, 128, 128)
	y := randMatrix(rng, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mulNaive(x, y)
	}
}
